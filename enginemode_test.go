package repro_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/litmus"
	"repro/internal/mesi"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// fingerprint flattens every simulation-visible quantity of a Result
// into a comparable string. Mem (a pointer) and CheckErr are reduced to
// their observable content.
func fingerprint(r *system.Result) string {
	check := "<nil>"
	if r.CheckErr != nil {
		check = r.CheckErr.Error()
	}
	return fmt.Sprintf(
		"proto=%s wl=%s cycles=%d msgs=%d flits=%d hops=%d data=%d ctrl=%d "+
			"ld=%d st=%d rmw=%d fence=%d instr=%d "+
			"acc=%d miss=%d selfinv=%d selfinvlines=%d datarsp=%d rmwlat=%.6f "+
			"hitS=%d hitSRO=%d hitP=%d whit=%d invrecv=%d tsresets=%d "+
			"sro=%d decay=%d bcast=%d l2rs=%d poollive=%d txlive=%d check=%s",
		r.Protocol, r.Workload, r.Cycles, r.Msgs, r.Flits, r.FlitHops, r.DataFlits, r.CtrlFlits,
		r.Loads, r.Stores, r.RMWs, r.Fences, r.Instructions,
		r.L1.Accesses(), r.L1.Misses(), r.L1.SelfInvTotal(), r.L1.SelfInvLines.Value(),
		r.L1.DataResponses.Value(), r.L1.MeanRMWLatency(),
		r.L1.ReadHitShared.Value(), r.L1.ReadHitSRO.Value(), r.L1.ReadHitPrivate.Value(),
		r.L1.WriteHitPrivate.Value(), r.L1.InvalidationsReceived.Value(), r.L1.TimestampResets.Value(),
		r.SROTransitions, r.DecayEvents, r.SROInvBcasts, r.L2TSResets, r.PoolLive, r.TxLive, check)
}

// engineModes is the A/B conformance cross: both time-advancement modes
// crossed against both core execution models. Every combination must
// produce bit-identical results; index 0 (per-cycle, unbatched) is the
// reference.
var engineModes = []struct {
	name     string
	perCycle bool
	batched  bool
}{
	{"per-cycle/unbatched", true, false},
	{"per-cycle/batched", true, true},
	{"event/unbatched", false, false},
	{"event/batched", false, true},
}

// TestEngineModesBitIdentical is the tentpole conformance gate: the
// event-driven (idle-skip) engine and the batched core model must
// reproduce the per-cycle, instruction-at-a-time ticker's results bit
// for bit — identical cycle counts and identical statistics — across
// protocols and workloads, in every mode combination.
func TestEngineModesBitIdentical(t *testing.T) {
	protos := []system.Protocol{
		mesi.New(),
		tsocc.New(config.Basic()),
		tsocc.New(config.C12x3()),
		tsocc.New(config.CCSharedToL2()),
	}
	benches := []string{"canneal", "x264", "ssca2", "lu-noncont"}
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, proto := range protos {
		for _, bench := range benches {
			t.Run(proto.Name()+"/"+bench, func(t *testing.T) {
				e := workloads.ByName(bench)
				if e == nil {
					t.Fatalf("unknown benchmark %q", bench)
				}
				fps := make([]string, len(engineModes))
				for i, mode := range engineModes {
					cfg := config.Small(4)
					cfg.PerCycleEngine = mode.perCycle
					cfg.BatchedCore = mode.batched
					r, err := system.Run(cfg, proto, e.Gen(p))
					if err != nil {
						t.Fatalf("%s: %v", mode.name, err)
					}
					if r.CheckErr != nil {
						t.Fatalf("%s: functional check: %v", mode.name, r.CheckErr)
					}
					fps[i] = fingerprint(r)
				}
				for i := 1; i < len(fps); i++ {
					if fps[i] != fps[0] {
						t.Fatalf("engine modes diverged:\n %s: %s\n %s: %s",
							engineModes[0].name, fps[0], engineModes[i].name, fps[i])
					}
				}
			})
		}
	}
}

// TestEngineModesLitmusIdentical runs the full litmus suite under both
// engine modes and requires identical outcome histograms (not merely
// "no violations": the exact multiset of observed outcomes must match).
func TestEngineModesLitmusIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("litmus A/B sweep is slow")
	}
	protos := []system.Protocol{mesi.New(), tsocc.New(config.C12x3())}
	for _, proto := range protos {
		for _, test := range litmus.Suite() {
			t.Run(proto.Name()+"/"+test.Name, func(t *testing.T) {
				outcomes := make([]map[string]int, len(engineModes))
				for i, mode := range engineModes {
					cfg := config.Small(4)
					cfg.PerCycleEngine = mode.perCycle
					cfg.BatchedCore = mode.batched
					res, err := litmus.Run(test, proto, cfg, 20, 42)
					if err != nil {
						t.Fatalf("%s: %v", mode.name, err)
					}
					if !res.Ok() {
						t.Fatalf("%s: forbidden outcomes: %v", mode.name, res.Violations)
					}
					outcomes[i] = res.Outcomes
				}
				for i := 1; i < len(outcomes); i++ {
					if !reflect.DeepEqual(outcomes[0], outcomes[i]) {
						t.Fatalf("litmus outcome histograms diverged:\n %s: %v\n %s: %v",
							engineModes[0].name, outcomes[0], engineModes[i].name, outcomes[i])
					}
				}
			})
		}
	}
}

// TestEngineModesDenseComputeIdentical pins the workload the batched
// core model targets: long straight-line ALU runs where nothing is
// idle. The checksum check inside the workload already proves the
// register semantics; this gate additionally proves the cycle counts
// and stats are untouched by batching.
func TestEngineModesDenseComputeIdentical(t *testing.T) {
	fps := make([]string, len(engineModes))
	for i, mode := range engineModes {
		cfg := config.Small(4)
		cfg.PerCycleEngine = mode.perCycle
		cfg.BatchedCore = mode.batched
		w := workloads.DenseCompute(workloads.Params{Threads: 4, Scale: 1, Seed: 7})
		r, err := system.Run(cfg, tsocc.New(config.C12x3()), w)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if r.CheckErr != nil {
			t.Fatalf("%s: checksum: %v", mode.name, r.CheckErr)
		}
		fps[i] = fingerprint(r)
	}
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatalf("dense-compute diverged:\n %s: %s\n %s: %s",
				engineModes[0].name, fps[0], engineModes[i].name, fps[i])
		}
	}
}

// TestEngineModesSpinlockIdentical covers the contended-RMW path (the
// spinlock example's shape) plus write-buffer pressure.
func TestEngineModesSpinlockIdentical(t *testing.T) {
	fps := make([]string, len(engineModes))
	for i, mode := range engineModes {
		cfg := config.Scaled(4)
		cfg.PerCycleEngine = mode.perCycle
		cfg.BatchedCore = mode.batched
		w := spinWorkload(4, 40)
		r, err := system.Run(cfg, tsocc.New(config.C12x3()), w)
		if err != nil {
			t.Fatal(err)
		}
		if r.CheckErr != nil {
			t.Fatal(r.CheckErr)
		}
		fps[i] = fingerprint(r)
	}
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatalf("spinlock diverged:\n %s: %s\n %s: %s",
				engineModes[0].name, fps[0], engineModes[i].name, fps[i])
		}
	}
}
