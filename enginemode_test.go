package repro_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/litmus"
	"repro/internal/mesi"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// fingerprint flattens every simulation-visible quantity of a Result
// into a comparable string. Mem (a pointer) and CheckErr are reduced to
// their observable content.
func fingerprint(r *system.Result) string {
	check := "<nil>"
	if r.CheckErr != nil {
		check = r.CheckErr.Error()
	}
	return fmt.Sprintf(
		"proto=%s wl=%s cycles=%d msgs=%d flits=%d hops=%d data=%d ctrl=%d "+
			"ld=%d st=%d rmw=%d fence=%d instr=%d "+
			"acc=%d miss=%d selfinv=%d selfinvlines=%d datarsp=%d rmwlat=%.6f "+
			"hitS=%d hitSRO=%d hitP=%d whit=%d invrecv=%d tsresets=%d "+
			"sro=%d decay=%d bcast=%d l2rs=%d check=%s",
		r.Protocol, r.Workload, r.Cycles, r.Msgs, r.Flits, r.FlitHops, r.DataFlits, r.CtrlFlits,
		r.Loads, r.Stores, r.RMWs, r.Fences, r.Instructions,
		r.L1.Accesses(), r.L1.Misses(), r.L1.SelfInvTotal(), r.L1.SelfInvLines.Value(),
		r.L1.DataResponses.Value(), r.L1.MeanRMWLatency(),
		r.L1.ReadHitShared.Value(), r.L1.ReadHitSRO.Value(), r.L1.ReadHitPrivate.Value(),
		r.L1.WriteHitPrivate.Value(), r.L1.InvalidationsReceived.Value(), r.L1.TimestampResets.Value(),
		r.SROTransitions, r.DecayEvents, r.SROInvBcasts, r.L2TSResets, check)
}

// TestEngineModesBitIdentical is the tentpole conformance gate: the
// event-driven (idle-skip) engine must reproduce the per-cycle ticker's
// results bit for bit — identical cycle counts and identical statistics
// — across protocols and workloads.
func TestEngineModesBitIdentical(t *testing.T) {
	protos := []system.Protocol{
		mesi.New(),
		tsocc.New(config.Basic()),
		tsocc.New(config.C12x3()),
		tsocc.New(config.CCSharedToL2()),
	}
	benches := []string{"canneal", "x264", "ssca2", "lu-noncont"}
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, proto := range protos {
		for _, bench := range benches {
			t.Run(proto.Name()+"/"+bench, func(t *testing.T) {
				e := workloads.ByName(bench)
				if e == nil {
					t.Fatalf("unknown benchmark %q", bench)
				}
				var fps [2]string
				for i, pc := range []bool{true, false} {
					cfg := config.Small(4)
					cfg.PerCycleEngine = pc
					r, err := system.Run(cfg, proto, e.Gen(p))
					if err != nil {
						t.Fatalf("perCycle=%v: %v", pc, err)
					}
					if r.CheckErr != nil {
						t.Fatalf("perCycle=%v: functional check: %v", pc, r.CheckErr)
					}
					fps[i] = fingerprint(r)
				}
				if fps[0] != fps[1] {
					t.Fatalf("engine modes diverged:\n per-cycle: %s\n event:     %s", fps[0], fps[1])
				}
			})
		}
	}
}

// TestEngineModesLitmusIdentical runs the full litmus suite under both
// engine modes and requires identical outcome histograms (not merely
// "no violations": the exact multiset of observed outcomes must match).
func TestEngineModesLitmusIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("litmus A/B sweep is slow")
	}
	protos := []system.Protocol{mesi.New(), tsocc.New(config.C12x3())}
	for _, proto := range protos {
		for _, test := range litmus.Suite() {
			t.Run(proto.Name()+"/"+test.Name, func(t *testing.T) {
				var outcomes [2]map[string]int
				for i, pc := range []bool{true, false} {
					cfg := config.Small(4)
					cfg.PerCycleEngine = pc
					res, err := litmus.Run(test, proto, cfg, 20, 42)
					if err != nil {
						t.Fatalf("perCycle=%v: %v", pc, err)
					}
					if !res.Ok() {
						t.Fatalf("perCycle=%v: forbidden outcomes: %v", pc, res.Violations)
					}
					outcomes[i] = res.Outcomes
				}
				if !reflect.DeepEqual(outcomes[0], outcomes[1]) {
					t.Fatalf("litmus outcome histograms diverged:\n per-cycle: %v\n event:     %v",
						outcomes[0], outcomes[1])
				}
			})
		}
	}
}

// TestEngineModesSpinlockIdentical covers the contended-RMW path (the
// spinlock example's shape) plus write-buffer pressure.
func TestEngineModesSpinlockIdentical(t *testing.T) {
	var fps [2]string
	for i, pc := range []bool{true, false} {
		cfg := config.Scaled(4)
		cfg.PerCycleEngine = pc
		w := spinWorkload(4, 40)
		r, err := system.Run(cfg, tsocc.New(config.C12x3()), w)
		if err != nil {
			t.Fatal(err)
		}
		if r.CheckErr != nil {
			t.Fatal(r.CheckErr)
		}
		fps[i] = fingerprint(r)
	}
	if fps[0] != fps[1] {
		t.Fatalf("spinlock diverged:\n per-cycle: %s\n event:     %s", fps[0], fps[1])
	}
}
