// Trace-subsystem conformance gates: recording must not perturb a run,
// the captured trace must be independent of engine mode and core model,
// and replaying a trace on the recording protocol and geometry must
// reproduce the original Result bit for bit — the fourth conformance
// axis next to the engine-mode, batched-core and litmus A/B gates.
package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// recordTrace runs bench under cfg with capture on and returns the
// run's fingerprint plus the encoded trace.
func recordTrace(t *testing.T, cfg config.System, proto system.Protocol,
	bench string, p workloads.Params) (string, []byte) {
	t.Helper()
	e := workloads.ByName(bench)
	if e == nil {
		t.Fatalf("unknown benchmark %q", bench)
	}
	res, tr, err := system.RunRecorded(cfg, proto, e.Gen(p), p.Seed)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if res.CheckErr != nil {
		t.Fatalf("record: functional check: %v", res.CheckErr)
	}
	data, err := trace.Encode(tr)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return fingerprint(res), data
}

// TestTraceReplayBitIdentical is the tentpole acceptance gate: for
// every registered protocol and both engine modes, a recorded run (a)
// matches the unrecorded baseline, (b) captures the same trace bytes
// under all four engine-mode × core-model combinations, and (c) replays
// through trace.ReplayCore — after a full encode/decode round trip —
// to an identical Result: same cycle count, same L1/L2/network
// statistics, same core counters.
func TestTraceReplayBitIdentical(t *testing.T) {
	benches := []string{"x264", "ssca2"}
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, proto := range coherence.Protocols() {
		for _, bench := range benches {
			t.Run(proto.Name()+"/"+bench, func(t *testing.T) {
				e := workloads.ByName(bench)
				base, err := system.Run(config.Small(4), proto, e.Gen(p))
				if err != nil {
					t.Fatal(err)
				}
				baseFP := fingerprint(base)

				// Record under every conformance combination: capture must
				// not perturb the run, and the trace must not depend on
				// how the recording machine advanced time.
				var traceBytes []byte
				for _, mode := range engineModes {
					cfg := config.Small(4)
					cfg.PerCycleEngine = mode.perCycle
					cfg.BatchedCore = mode.batched
					fp, data := recordTrace(t, cfg, proto, bench, p)
					if fp != baseFP {
						t.Fatalf("recording perturbed the run under %s:\n base: %s\n rec:  %s",
							mode.name, baseFP, fp)
					}
					if traceBytes == nil {
						traceBytes = data
					} else if !bytes.Equal(traceBytes, data) {
						t.Fatalf("trace bytes differ under %s (%d vs %d bytes)",
							mode.name, len(traceBytes), len(data))
					}
				}

				tr, err := trace.Decode(traceBytes)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				for _, mode := range engineModes {
					cfg := tr.Meta.Sys
					cfg.PerCycleEngine = mode.perCycle
					cfg.BatchedCore = mode.batched
					rep, err := system.Replay(cfg, proto, tr)
					if err != nil {
						t.Fatalf("replay (%s): %v", mode.name, err)
					}
					if fp := fingerprint(rep); fp != baseFP {
						t.Fatalf("replay diverged under %s:\n base:   %s\n replay: %s",
							mode.name, baseFP, fp)
					}
				}
			})
		}
	}
}

// TestTraceReplayCrossProtocol pins the elastic-replay contract: a
// trace recorded under one protocol must complete under every other
// registered protocol (cycle counts legitimately differ; the run must
// still quiesce with the recorded op counts).
func TestTraceReplayCrossProtocol(t *testing.T) {
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 3}
	rec := coherence.Protocols()[0]
	e := workloads.ByName("ssca2")
	res, tr, err := system.RunRecorded(config.Small(4), rec, e.Gen(p), p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range coherence.Protocols() {
		rep, err := system.Replay(tr.Meta.Sys, proto, tr)
		if err != nil {
			t.Fatalf("replay on %s: %v", proto.Name(), err)
		}
		if rep.Loads != res.Loads || rep.Stores != res.Stores ||
			rep.RMWs != res.RMWs || rep.Fences != res.Fences ||
			rep.Instructions != res.Instructions {
			t.Fatalf("replay on %s dropped ops: got ld=%d st=%d rmw=%d fence=%d instr=%d, want ld=%d st=%d rmw=%d fence=%d instr=%d",
				proto.Name(), rep.Loads, rep.Stores, rep.RMWs, rep.Fences, rep.Instructions,
				res.Loads, res.Stores, res.RMWs, res.Fences, res.Instructions)
		}
	}
}
