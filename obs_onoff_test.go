package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/mesi"
	"repro/internal/obs"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// TestObsOnOffBitIdentical is the no-perturbation gate for the
// observability layer: arming the full metrics registry and timeline
// sink must leave every simulation-visible quantity bit-identical to
// an unobserved run, across engine mode × batched core × shard count,
// on both protocol families. Observation reads simulation state and
// writes only obs-owned storage; any divergence here means a hook leaked
// a value back into scheduling, protocol, or timing.
func TestObsOnOffBitIdentical(t *testing.T) {
	protos := []system.Protocol{
		mesi.New(),
		tsocc.New(config.C12x3()),
	}
	benches := []string{"canneal", "x264"}
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, proto := range protos {
		for _, bench := range benches {
			e := workloads.ByName(bench)
			if e == nil {
				t.Fatalf("unknown benchmark %q", bench)
			}
			for _, mode := range engineModes {
				for _, shards := range []int{1, 4} {
					name := fmt.Sprintf("%s/%s/%s/shards%d", proto.Name(), bench, mode.name, shards)
					t.Run(name, func(t *testing.T) {
						var fps [2]string
						for i, observed := range []bool{false, true} {
							cfg := config.Small(4)
							cfg.PerCycleEngine = mode.perCycle
							cfg.BatchedCore = mode.batched
							cfg.Shards = shards
							if observed {
								cfg.Obs = &obs.Obs{
									Metrics:  obs.NewRegistry(),
									Timeline: obs.NewTimeline(),
								}
							}
							r, err := system.Run(cfg, proto, e.Gen(p))
							if err != nil {
								t.Fatalf("obs=%v: %v", observed, err)
							}
							if r.CheckErr != nil {
								t.Fatalf("obs=%v: functional check: %v", observed, r.CheckErr)
							}
							fps[i] = fingerprint(r)
						}
						if fps[1] != fps[0] {
							t.Fatalf("observation perturbed the run:\n off: %s\n on:  %s", fps[0], fps[1])
						}
					})
				}
			}
		}
	}
}

// TestNoUnnamedCounters builds observed machines of every flavor
// (both protocol families, serial and sharded, program and replay
// frontends) and asserts that every counter registered with the
// metrics registry carries a name — an unnamed series would silently
// merge into the "" key of every dump.
func TestNoUnnamedCounters(t *testing.T) {
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	w := workloads.ByName("canneal")
	if w == nil {
		t.Fatal("canneal workload missing")
	}

	checkReg := func(t *testing.T, reg *obs.Registry) {
		t.Helper()
		names := reg.CounterNames()
		if len(names) == 0 {
			t.Fatal("no counters registered at all")
		}
		for i, n := range names {
			if n == "" {
				t.Errorf("registered counter %d has no name", i)
			}
		}
	}

	for _, proto := range []system.Protocol{mesi.New(), tsocc.New(config.C12x3())} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards%d", proto.Name(), shards), func(t *testing.T) {
				cfg := config.Small(4)
				cfg.Shards = shards
				reg := obs.NewRegistry()
				cfg.Obs = &obs.Obs{Metrics: reg}
				if _, err := system.NewMachine(cfg, proto, w.Gen(p)); err != nil {
					t.Fatal(err)
				}
				checkReg(t, reg)
			})
		}
	}

	t.Run("replay", func(t *testing.T) {
		proto := tsocc.New(config.C12x3())
		cfg := config.Small(4)
		_, tr, err := system.RunRecorded(cfg, proto, w.Gen(p), 1)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		cfg.Obs = &obs.Obs{Metrics: reg}
		if _, err := newReplayMachine(cfg, proto, tr); err != nil {
			t.Fatal(err)
		}
		checkReg(t, reg)
	})
}

// newReplayMachine keeps the test body readable.
func newReplayMachine(cfg config.System, proto system.Protocol, tr *trace.Trace) (*system.Machine, error) {
	return system.NewReplayMachine(cfg, proto, tr)
}
