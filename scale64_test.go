package repro_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// TestScale64Conformance extends every conformance axis to a 64-core
// machine: engine mode, batched core, shard count, runtime checks, and
// observability must all reproduce the per-cycle unbatched reference
// bit for bit on a 8x8 mesh, where the per-link contention model, the
// wide sharing vector, and the sharded tile partitioning all operate
// far outside the 4-core geometry the per-axis suites use. One
// workload per real benchmark keeps the sweep bounded; the axes
// themselves are each exhaustively crossed at 4 cores elsewhere.
func TestScale64Conformance(t *testing.T) {
	proto := func() system.Protocol { return tsocc.New(config.C12x3()) }
	p := workloads.Params{Threads: 64, Scale: 1, Seed: 1}
	variants := []struct {
		name     string
		perCycle bool
		batched  bool
		shards   int
		checks   bool
		observed bool
	}{
		{name: "per-cycle/unbatched", perCycle: true}, // reference
		{name: "per-cycle/batched", perCycle: true, batched: true},
		{name: "event/unbatched"},
		{name: "event/batched", batched: true},
		{name: "event/batched/shards4", batched: true, shards: 4},
		{name: "event/batched/shards7", batched: true, shards: 7}, // not a divisor of 64
		{name: "event/batched/checks", batched: true, checks: true},
		{name: "event/batched/obs", batched: true, observed: true},
	}
	for _, bench := range []string{"canneal", "ssca2"} {
		t.Run(bench, func(t *testing.T) {
			e := workloads.ByName(bench)
			if e == nil {
				t.Fatalf("unknown benchmark %q", bench)
			}
			want := ""
			for _, v := range variants {
				cfg := config.Small(64)
				cfg.PerCycleEngine = v.perCycle
				cfg.BatchedCore = v.batched
				cfg.Shards = v.shards
				cfg.Checks = v.checks
				if v.observed {
					cfg.Obs = &obs.Obs{Metrics: obs.NewRegistry(), Timeline: obs.NewTimeline()}
				}
				r, err := system.Run(cfg, proto(), e.Gen(p))
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if r.CheckErr != nil {
					t.Fatalf("%s: functional check: %v", v.name, r.CheckErr)
				}
				fp := fingerprint(r)
				if want == "" {
					want = fp
					continue
				}
				if fp != want {
					t.Fatalf("%s diverged at 64 cores:\n reference: %s\n variant:   %s",
						v.name, want, fp)
				}
			}
		})
	}
}

// TestScale64FaultModesBitIdentical crosses the fault-injection axis
// with 64-core sharding: an injected run on the sharded engine must
// reproduce the serial injected run exactly. The injector's decision
// streams are per-(src,dst)-pair and per-tile, so neither the wider
// mesh nor the tile-to-shard assignment may perturb them.
func TestScale64FaultModesBitIdentical(t *testing.T) {
	proto := tsocc.New(config.C12x3())
	e := workloads.ByName("ssca2")
	p := workloads.Params{Threads: 64, Scale: 1, Seed: 1}
	cfg := config.Small(64)
	cfg.FaultProfile = "jitter+evict"
	cfg.FaultSeed = 7
	ref, err := system.Run(cfg, proto, e.Gen(p))
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	want := fingerprint(ref)
	for _, shards := range []int{4, 7} {
		cfg.Shards = shards
		r, err := system.Run(cfg, tsocc.New(config.C12x3()), e.Gen(p))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := fingerprint(r); got != want {
			t.Fatalf("shards=%d diverged under faults at 64 cores:\n serial: %s\n sharded: %s",
				shards, want, got)
		}
	}
}

// TestScale64TraceReplayBitIdentical closes the trace axis at 64
// cores: a trace recorded on the sharded engine replays — serial and
// sharded — to the recording run's fingerprint, and a composed trace
// (the scaling workloads' mechanism) replays identically on both
// engines.
func TestScale64TraceReplayBitIdentical(t *testing.T) {
	e := workloads.ByName("canneal")
	w := e.Gen(workloads.Params{Threads: 64, Scale: 1, Seed: 3})
	cfg := config.Small(64)
	cfg.Shards = 4
	res, tr, err := system.RunRecorded(cfg, tsocc.New(config.C12x3()), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(res)
	for _, shards := range []int{1, 4} {
		rcfg := config.Small(64)
		rcfg.Shards = shards
		got, err := system.Replay(rcfg, tsocc.New(config.C12x3()), tr)
		if err != nil {
			t.Fatalf("replay shards=%d: %v", shards, err)
		}
		if fp := fingerprint(got); fp != want {
			t.Fatalf("replay shards=%d diverged at 64 cores:\n recorded: %s\n replayed: %s",
				shards, want, fp)
		}
	}
}
