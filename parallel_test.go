package repro_test

import (
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/litmus"
	"repro/internal/mesi"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// shardCounts are the parallel-engine configurations conformance runs
// against the single-threaded reference. 3 is deliberately not a
// divisor of the 4-core geometry, so uneven tile-to-shard assignment is
// always exercised.
var shardCounts = []int{2, 3, 4}

// TestParallelEngineBitIdentical is the sixth conformance axis: the
// sharded parallel engine must reproduce the single-threaded wake-set
// engine's results bit for bit — identical cycle counts and identical
// statistics — for every shard count, protocol, and workload, and
// crossed with the batched core model. Scheduling inside a shard is the
// same wake-set algorithm; cross-shard traffic merges at epoch barriers
// in serial send order, so goroutine interleaving must never show
// through.
func TestParallelEngineBitIdentical(t *testing.T) {
	protos := []system.Protocol{
		mesi.New(),
		tsocc.New(config.Basic()),
		tsocc.New(config.C12x3()),
		tsocc.New(config.CCSharedToL2()),
	}
	benches := []string{"canneal", "ssca2"}
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, proto := range protos {
		for _, bench := range benches {
			for _, batched := range []bool{false, true} {
				name := proto.Name() + "/" + bench
				if batched {
					name += "/batched"
				}
				t.Run(name, func(t *testing.T) {
					e := workloads.ByName(bench)
					if e == nil {
						t.Fatalf("unknown benchmark %q", bench)
					}
					cfg := config.Small(4)
					cfg.BatchedCore = batched
					ref, err := system.Run(cfg, proto, e.Gen(p))
					if err != nil {
						t.Fatalf("serial: %v", err)
					}
					if ref.CheckErr != nil {
						t.Fatalf("serial: functional check: %v", ref.CheckErr)
					}
					want := fingerprint(ref)
					for _, shards := range shardCounts {
						cfg.Shards = shards
						r, err := system.Run(cfg, proto, e.Gen(p))
						if err != nil {
							t.Fatalf("shards=%d: %v", shards, err)
						}
						if r.CheckErr != nil {
							t.Fatalf("shards=%d: functional check: %v", shards, r.CheckErr)
						}
						if got := fingerprint(r); got != want {
							t.Fatalf("shards=%d diverged:\n serial: %s\n sharded: %s",
								shards, want, got)
						}
					}
				})
			}
		}
	}
}

// TestParallelTraceReplayBitIdentical closes the loop with the trace
// subsystem: a trace recorded on the sharded engine replays — on both
// the serial and the sharded engine — to the recording run's result.
func TestParallelTraceReplayBitIdentical(t *testing.T) {
	proto := tsocc.New(config.C12x3())
	e := workloads.ByName("ssca2")
	w := e.Gen(workloads.Params{Threads: 4, Scale: 1, Seed: 3})
	cfg := config.Small(4)
	cfg.Shards = 4
	res, tr, err := system.RunRecorded(cfg, proto, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(res)
	for _, shards := range []int{1, 4} {
		rcfg := config.Small(4)
		rcfg.Shards = shards
		got, err := system.Replay(rcfg, tsocc.New(config.C12x3()), tr)
		if err != nil {
			t.Fatalf("replay shards=%d: %v", shards, err)
		}
		// The replay result fingerprint differs from the recording run
		// only in nothing: same protocol, geometry, and streams.
		if fp := fingerprint(got); fp != want {
			t.Fatalf("replay shards=%d diverged:\n recorded: %s\n replayed: %s",
				shards, want, fp)
		}
	}
}

// TestParallelFaultModesBitIdentical crosses the shards axis with fault
// injection: for every profile, the sharded engine must reproduce the
// serial fault-injected run exactly (the injector's decision streams
// are per-(src,dst)-pair and per-tile, so sharding must not perturb
// them).
func TestParallelFaultModesBitIdentical(t *testing.T) {
	proto := tsocc.New(config.C12x3())
	e := workloads.ByName("ssca2")
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, profile := range []string{"jitter", "pressure", "burst", "evict", "reset-storm", "victim", "jitter:rate=200+evict:rate=80"} {
		t.Run(profile, func(t *testing.T) {
			cfg := config.Small(4)
			cfg.FaultProfile = profile
			cfg.FaultSeed = 7
			ref, err := system.Run(cfg, proto, e.Gen(p))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			want := fingerprint(ref)
			for _, shards := range shardCounts {
				cfg.Shards = shards
				r, err := system.Run(cfg, proto, e.Gen(p))
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got := fingerprint(r); got != want {
					t.Fatalf("shards=%d diverged under %s:\n serial: %s\n sharded: %s",
						shards, profile, want, got)
				}
			}
		})
	}
}

// TestParallelLitmusEveryProtocol drives the sharded engine through a
// litmus subset for EVERY registered protocol at 4 shards, asserting
// memory-model conformance (no forbidden outcomes) and agreement with
// the serial outcome histogram. It is deliberately small: this is the
// test the CI race job runs under `-race` with GOMAXPROCS=4, where each
// run costs ~100x wall time.
func TestParallelLitmusEveryProtocol(t *testing.T) {
	suite := litmus.Suite()
	if len(suite) > 3 {
		suite = suite[:3]
	}
	for _, proto := range coherence.Protocols() {
		for _, test := range suite {
			t.Run(proto.Name()+"/"+test.Name, func(t *testing.T) {
				cfg := config.Small(4)
				ref, err := litmus.Run(test, proto, cfg, 10, 42)
				if err != nil {
					t.Fatal(err)
				}
				if !ref.Ok() {
					t.Fatalf("serial: forbidden outcomes: %v", ref.Violations)
				}
				scfg := config.Small(4)
				scfg.Shards = 4
				res, err := litmus.Run(test, proto, scfg, 10, 42)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Ok() {
					t.Fatalf("sharded: forbidden outcomes: %v", res.Violations)
				}
				if !reflect.DeepEqual(ref.Outcomes, res.Outcomes) {
					t.Fatalf("litmus outcome histograms diverged:\n serial: %v\n sharded: %v",
						ref.Outcomes, res.Outcomes)
				}
			})
		}
	}
}

// TestParallelLitmusIdentical runs the litmus suite on the sharded
// engine for every protocol and requires the exact serial outcome
// histograms — memory-model observability must not change under
// parallel execution.
func TestParallelLitmusIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("litmus sweep is slow")
	}
	protos := []system.Protocol{mesi.New(), tsocc.New(config.C12x3())}
	for _, proto := range protos {
		for _, test := range litmus.Suite() {
			t.Run(proto.Name()+"/"+test.Name, func(t *testing.T) {
				cfg := config.Small(4)
				ref, err := litmus.Run(test, proto, cfg, 20, 42)
				if err != nil {
					t.Fatal(err)
				}
				if !ref.Ok() {
					t.Fatalf("serial: forbidden outcomes: %v", ref.Violations)
				}
				cfg.Shards = 4
				res, err := litmus.Run(test, proto, cfg, 20, 42)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Ok() {
					t.Fatalf("sharded: forbidden outcomes: %v", res.Violations)
				}
				if !reflect.DeepEqual(ref.Outcomes, res.Outcomes) {
					t.Fatalf("litmus outcome histograms diverged:\n serial: %v\n sharded: %v",
						ref.Outcomes, res.Outcomes)
				}
			})
		}
	}
}
