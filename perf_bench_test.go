// Throughput benchmarks for the simulation kernel: raw engine stepping,
// mesh delivery, and the L1 hit path. The acceptance bar for the
// event-driven rebuild: BenchmarkL1HitPath reports 0 allocs/op and
// BenchmarkEngineIdleSkip shows the event engine >= 2x faster than the
// per-cycle ticker on an idle-heavy (memory-latency-bound) workload.
package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/mesh"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// benchSystem returns the benchmark machine configuration, honoring the
// BATCHED_CORE environment override (set BATCHED_CORE=0 to bench the
// instruction-at-a-time core model; CI smokes both settings).
func benchSystem(cores int) config.System {
	cfg := config.Scaled(cores)
	if os.Getenv("BATCHED_CORE") == "0" {
		cfg.BatchedCore = false
	}
	return cfg
}

// spinWorkload is the examples/spinlock shape: contended
// test-and-test-and-set with paused probes, a shared counter in the
// critical section, and a functional mutual-exclusion check.
func spinWorkload(threads, rounds int) *program.Workload {
	progs := make([]*program.Program, threads)
	for t := 0; t < threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("locker-%d", t))
		b.Li(3, 0)
		b.Li(4, int64(rounds))
		b.Label("loop")
		b.Li(10, 0x1000)
		b.LockAcquirePause(8, 9, 10, 0, 16)
		b.Li(6, 0x2000)
		b.Ld(7, 6, 0)
		b.Addi(7, 7, 1)
		b.St(6, 0, 7)
		b.Li(10, 0x1000)
		b.LockRelease(10, 0)
		b.Nop(int64(t)*3 + 5)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Fence()
		b.Halt()
		progs[t] = b.MustBuild()
	}
	return &program.Workload{
		Name:     "spinlock",
		Programs: progs,
		Check: func(mem program.MemReader) error {
			want := uint64(threads * rounds)
			if got := mem.ReadWord(0x2000); got != want {
				return fmt.Errorf("counter = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// chaseWorkload is a single-thread cold-miss stream: memory-latency
// bound, so almost every cycle is idle — the shape the idle-skip
// scheduler exists for.
func chaseWorkload(words int64) *program.Workload {
	b := program.NewBuilder("chase")
	b.Li(1, 0x400000)
	b.Li(3, 0)
	b.Li(4, words)
	b.Label("loop")
	b.Ld(2, 1, 0)
	b.Addi(1, 1, 64)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, "loop")
	b.Halt()
	return &program.Workload{Name: "chase", Programs: []*program.Program{b.MustBuild()}}
}

func runWorkload(b *testing.B, perCycle bool, gen func() *program.Workload) (simCycles int64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchSystem(8)
		cfg.PerCycleEngine = perCycle
		m, err := system.NewMachine(cfg, tsocc.New(config.C12x3()), gen())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		cyc, err := m.Engine.Run()
		if err != nil {
			b.Fatal(err)
		}
		simCycles = int64(cyc)
	}
	return simCycles
}

// BenchmarkEngineStep measures the full-system step rate (simulated
// cycles per second of host time) on the contended-spinlock machine in
// both engine modes.
func BenchmarkEngineStep(b *testing.B) {
	for _, mode := range []struct {
		name     string
		perCycle bool
	}{{"per-cycle", true}, {"event", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			cycles := runWorkload(b, mode.perCycle, func() *program.Workload { return spinWorkload(8, 100) })
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(cycles)/(perOp/1e9), "simcycles/s")
			}
		})
	}
}

// BenchmarkEngineIdleSkip is the idle-heavy acceptance benchmark: the
// event-driven engine must beat per-cycle by >= 2x here (observed ~7x;
// ~95% of cycles are skipped).
func BenchmarkEngineIdleSkip(b *testing.B) {
	for _, mode := range []struct {
		name     string
		perCycle bool
	}{{"per-cycle", true}, {"event", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			cycles := runWorkload(b, mode.perCycle, func() *program.Workload { return chaseWorkload(2000) })
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(cycles)/(perOp/1e9), "simcycles/s")
			}
		})
	}
}

// BenchmarkLowIdleWorkload is the wake-set scheduler's acceptance
// benchmark: the x264 pipeline shape keeps some core active on most
// cycles (~13% idle-skip), so the old scan-all event engine paid the
// tick-all/rescan-all overhead on nearly every cycle and ran *slower*
// than per-cycle here. The wake-set engine must keep the event mode at
// least at parity with per-cycle on this shape (it dispatches only the
// handful of due components per active cycle).
func BenchmarkLowIdleWorkload(b *testing.B) {
	e := workloads.ByName("x264")
	if e == nil {
		b.Fatal("x264 missing from registry")
	}
	for _, mode := range []struct {
		name     string
		perCycle bool
	}{{"per-cycle", true}, {"event", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			cycles := runWorkload(b, mode.perCycle, func() *program.Workload {
				return e.Gen(workloads.Params{Threads: 8, Scale: 1, Seed: 1})
			})
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(cycles)/(perOp/1e9), "simcycles/s")
			}
		})
	}
}

// BenchmarkDenseCompute is the batched-core acceptance benchmark: an
// ALU-dense workload (back-to-back register instructions, one maximal
// straight-line run per loop iteration) where the event engine alone
// cannot skip anything — every cycle has a core retiring an
// instruction. The batched core model must beat the unbatched event
// engine by >= 3x host time here, while remaining bit-identical (the
// workload's checksum check and the engine-mode A/B gates enforce it).
func BenchmarkDenseCompute(b *testing.B) {
	for _, mode := range []struct {
		name     string
		perCycle bool
		batched  bool
	}{
		{"per-cycle", true, false},
		{"event-unbatched", false, false},
		{"event-batched", false, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := config.Scaled(8)
				cfg.PerCycleEngine = mode.perCycle
				cfg.BatchedCore = mode.batched
				w := workloads.DenseCompute(workloads.Params{Threads: 8, Scale: 1, Seed: 1})
				m, err := system.NewMachine(cfg, tsocc.New(config.C12x3()), w)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				cyc, err := m.Engine.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = int64(cyc)
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(cycles)/(perOp/1e9), "simcycles/s")
			}
		})
	}
}

// benchTrace records the 8-core ssca2 run once per process: the shared
// input for the trace-subsystem benchmarks.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	e := workloads.ByName("ssca2")
	if e == nil {
		b.Fatal("ssca2 missing from registry")
	}
	w := e.Gen(workloads.Params{Threads: 8, Scale: 1, Seed: 1})
	_, tr, err := system.RunRecorded(config.Scaled(8), tsocc.New(config.C12x3()), w, 1)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkTraceReplay measures trace-driven execution throughput: one
// full replay of the recorded ssca2 stream through the event engine per
// op, reported as trace ops replayed per second of host time.
func BenchmarkTraceReplay(b *testing.B) {
	tr := benchTrace(b)
	cfg := benchSystem(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := system.NewReplayMachine(cfg, tsocc.New(config.C12x3()), tr)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := m.Engine.Run(); err != nil {
			b.Fatal(err)
		}
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(tr.Ops())/(perOp/1e9), "traceops/s")
	}
}

// BenchmarkTraceCodec measures the binary codec on the recorded ssca2
// trace: bytes/op via SetBytes (throughput) plus the encoded size per
// trace op as a custom metric.
func BenchmarkTraceCodec(b *testing.B) {
	tr := benchTrace(b)
	data, err := trace.Encode(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := trace.Encode(tr); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(data))/float64(tr.Ops()), "bytes/traceop")
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := trace.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// poolSink is a mesh endpoint that recycles delivered messages,
// completing the zero-allocation send/deliver cycle.
type poolSink struct {
	net      *mesh.Network
	received int
}

func (s *poolSink) Deliver(now sim.Cycle, m *coherence.Msg) {
	s.received++
	s.net.Pool.Put(m)
}

// BenchmarkMeshDelivery measures scheduling + delivery through the
// calendar-queue ring buffer: one data message per op, fully pooled.
// Expect 0 allocs/op in steady state.
func BenchmarkMeshDelivery(b *testing.B) {
	net := mesh.New(mesh.Config{Routers: 16})
	sinks := make([]*poolSink, 16)
	for i := range sinks {
		sinks[i] = &poolSink{net: net}
		net.Attach(coherence.NodeID(i), i, sinks[i])
	}
	payload := make([]byte, 64)
	now := sim.Cycle(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := net.Pool.Get()
		m.Type = coherence.MsgDataS
		m.Src = coherence.NodeID(i % 16)
		m.Dst = coherence.NodeID((i*7 + 3) % 16)
		m.SetData(payload)
		if m.Src == m.Dst {
			m.Dst = coherence.NodeID((int(m.Dst) + 1) % 16)
		}
		net.Send(now, m)
		for net.Pending() > 0 {
			now++
			net.Tick(now)
		}
	}
	b.ReportMetric(float64(sinks[0].received), "sink0-msgs")
}

// TestHotPathZeroAlloc is the alloc-regression gate: the two paths the
// ROADMAP guarantees allocation-free (L1 hits through the CorePort, mesh
// scheduling + delivery through the calendar queue) are measured with
// the real benchmark bodies and must report exactly 0 allocs/op. This
// fails in plain `go test`, so a regression cannot hide behind a
// benchmark nobody reads.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, bench := range []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"L1HitPath", BenchmarkL1HitPath},
		{"L1HitPathFaultsChecksOff", BenchmarkL1HitPathFaultsChecksOff},
		{"MeshDelivery", BenchmarkMeshDelivery},
		{"MeshDeliveryFaultsOff", BenchmarkMeshDeliveryFaultsOff},
	} {
		t.Run(bench.name, func(t *testing.T) {
			res := testing.Benchmark(bench.fn)
			if allocs := res.AllocsPerOp(); allocs != 0 {
				t.Fatalf("%s allocates %d allocs/op (%d B/op), want 0",
					bench.name, allocs, res.AllocedBytesPerOp())
			}
		})
	}
}

// BenchmarkL1HitPathFaultsChecksOff is BenchmarkL1HitPath driven through
// the machine's wired port chain with fault injection and invariant
// oracles explicitly disabled: portFor must hand back the raw L1 (no
// decorator) and the hit path must stay allocation-free.
func BenchmarkL1HitPathFaultsChecksOff(b *testing.B) {
	cfg := config.Scaled(1)
	cfg.FaultProfile = ""
	cfg.Checks = false
	warm := program.NewBuilder("warm")
	warm.Li(1, 0x1000)
	warm.Ld(2, 1, 0)
	warm.Halt()
	w := &program.Workload{Name: "warm", Programs: []*program.Program{warm.MustBuild()}}
	m, err := system.NewMachine(cfg, tsocc.New(config.C12x3()), w)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Engine.Run(); err != nil {
		b.Fatal(err)
	}
	port := m.CorePort(0)
	l1 := m.L1s[0]
	now := m.Engine.Now() + 1
	var sink uint64
	cb := func(val uint64) { sink = val }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !port.Load(now, 0x1000, cb) {
			b.Fatal("port refused a hit load")
		}
		now += cfg.L1HitLat
		l1.Tick(now)
		now++
	}
	_ = sink
}

// BenchmarkMeshDeliveryFaultsOff drives the pooled send/deliver cycle
// through the mesh of a machine built with fault injection disabled:
// system wiring must install no delay hook and the calendar-queue path
// must stay allocation-free.
func BenchmarkMeshDeliveryFaultsOff(b *testing.B) {
	cfg := config.Scaled(16)
	cfg.FaultProfile = ""
	idle := program.NewBuilder("idle")
	idle.Halt()
	w := &program.Workload{Name: "idle", Programs: []*program.Program{idle.MustBuild()}}
	m, err := system.NewMachine(cfg, tsocc.New(config.C12x3()), w)
	if err != nil {
		b.Fatal(err)
	}
	net := m.Net
	base := coherence.NodeID(0x7000)
	sinks := make([]*poolSink, 16)
	for i := range sinks {
		sinks[i] = &poolSink{net: net}
		net.Attach(base+coherence.NodeID(i), i, sinks[i])
	}
	payload := make([]byte, 64)
	now := sim.Cycle(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := net.Pool.Get()
		msg.Type = coherence.MsgDataS
		msg.Src = base + coherence.NodeID(i%16)
		msg.Dst = base + coherence.NodeID((i*7+3)%16)
		msg.SetData(payload)
		if msg.Src == msg.Dst {
			msg.Dst = base + coherence.NodeID((i%16+1)%16)
		}
		net.Send(now, msg)
		for net.Pending() > 0 {
			now++
			net.Tick(now)
		}
	}
	b.ReportMetric(float64(sinks[0].received), "sink0-msgs")
}

// BenchmarkDataResponsePath stresses the L1 data-response path: a reader
// whose Shared loads always miss (SharedAlwaysMiss) with timestamps
// enabled, so every response walks the lastSeen table lookups on both
// the L2 (respTS) and L1 (maybeSelfInvalidate) sides.
func BenchmarkDataResponsePath(b *testing.B) {
	tscfg := config.TSOCC{SharedAlwaysMiss: true, TimestampBits: 12,
		WriteGroupBits: 3, EpochBits: 3}
	gen := func() *program.Workload {
		writer := program.NewBuilder("writer")
		writer.Li(1, 0x1000)
		writer.Li(3, 0)
		writer.Li(4, 32)
		writer.Label("wl")
		writer.St(1, 0, 3)
		writer.Addi(1, 1, 64)
		writer.Addi(3, 3, 1)
		writer.Blt(3, 4, "wl")
		writer.Fence()
		writer.Halt()
		reader := program.NewBuilder("reader")
		reader.Li(5, 0)
		reader.Li(6, 400)
		reader.Label("rounds")
		reader.Li(1, 0x1000)
		reader.Li(3, 0)
		reader.Li(4, 32)
		reader.Label("rl")
		reader.Ld(2, 1, 0)
		reader.Addi(1, 1, 64)
		reader.Addi(3, 3, 1)
		reader.Blt(3, 4, "rl")
		reader.Addi(5, 5, 1)
		reader.Blt(5, 6, "rounds")
		reader.Halt()
		return &program.Workload{Name: "dataresp",
			Programs: []*program.Program{writer.MustBuild(), reader.MustBuild()}}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := system.NewMachine(config.Scaled(2), tsocc.New(tscfg), gen())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := m.Engine.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL1HitPath drives load hits against a warmed Exclusive line
// through the real CorePort interface. The acceptance bar is 0
// allocs/op: no closures, no timer-heap churn, no message traffic.
func BenchmarkL1HitPath(b *testing.B) {
	cfg := config.Scaled(1)
	warm := program.NewBuilder("warm")
	warm.Li(1, 0x1000)
	warm.Ld(2, 1, 0)
	warm.Halt()
	w := &program.Workload{Name: "warm", Programs: []*program.Program{warm.MustBuild()}}
	m, err := system.NewMachine(cfg, tsocc.New(config.C12x3()), w)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Engine.Run(); err != nil {
		b.Fatal(err)
	}
	l1 := m.L1s[0]
	now := m.Engine.Now() + 1
	var sink uint64
	cb := func(val uint64) { sink = val }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !l1.Load(now, 0x1000, cb) {
			b.Fatal("L1 refused a hit load")
		}
		now += cfg.L1HitLat
		l1.Tick(now)
		now++
	}
	_ = sink
}
