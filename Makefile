GO ?= go

.PHONY: all vet build test race race-parallel bench-smoke bench bench-json bench-gate perf fuzz-smoke trace-gate fault-smoke oracle-sweep parallel-smoke obs-smoke scale-smoke ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Unit-test packages under the race detector with the TxTable lifecycle
# assertions compiled in (mirrors the CI race job).
race:
	$(GO) test -race -tags txdebug ./internal/...

# Race-detect the sharded parallel engine on 4 scheduler threads
# (mirrors the CI race job's parallel leg): the bounded litmus
# conformance subset at 4 shards plus the sharded-engine property test.
# The full conformance suite under -race costs ~100x wall time, so the
# race leg deliberately runs these small, protocol-complete targets.
race-parallel:
	GOMAXPROCS=4 $(GO) test -race -run 'TestParallelLitmusEveryProtocol' .
	GOMAXPROCS=4 $(GO) test -race ./internal/sim/

# Quick benchmark smoke: exercises the perf-critical paths without the
# full figure grids.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEngineStep|BenchmarkEngineIdleSkip|BenchmarkDenseCompute|BenchmarkMeshDelivery|BenchmarkL1HitPath|BenchmarkTraceCodec' -benchtime 2000x .

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Simulator throughput JSON (for BENCH_*.json trajectories).
perf:
	$(GO) run ./cmd/tsocc-bench -perf -cores 8

# Dated engine + hot-path throughput snapshot (per-cycle, event, and
# batched-core numbers for the standard benches plus dense-compute,
# with trace replay/codec throughput and host metadata per benchmark,
# plus the 8->256-core scaling curve), then a delta report against the
# latest committed snapshot and the event>=per-cycle regression gate —
# which also requires event >= per-cycle on every scaling point at
# >= 64 cores.
bench-json:
	@set -e; tmp=$$(mktemp); trap 'rm -f $$tmp' EXIT; \
	latest=$$(git ls-files 'BENCH_*.json' | sort | tail -1); \
	out=BENCH_$$(date +%Y-%m-%d).json; \
	$(GO) run ./cmd/tsocc-bench -perf -cores 8 -scaling 8,64,128,256 > $$out; \
	echo "wrote $$out"; \
	if [ -n "$$latest" ]; then \
	  git show HEAD:$$latest > $$tmp; \
	  echo "delta vs committed $$latest:"; \
	  $(GO) run ./cmd/tsocc-benchdiff -gate $$tmp $$out; \
	else \
	  $(GO) run ./cmd/tsocc-benchdiff -gate $$out; \
	fi

# Regression gate without writing a snapshot: the event engine must be
# at least as fast as the per-cycle conformance ticker on every Table-3
# benchmark (speedup is a within-run ratio, so this is stable across
# machines; mirrors the CI bench job). -scale 4 lengthens each timed
# run (x264 is only ~8k cycles at scale 1 — a few ms of wall time) so
# one scheduler blip on a noisy runner cannot flip the ratio.
bench-gate:
	@set -e; tmp=$$(mktemp); trap 'rm -f $$tmp' EXIT; \
	$(GO) run ./cmd/tsocc-bench -perf -cores 8 -scale 4 > $$tmp; \
	$(GO) run ./cmd/tsocc-benchdiff -gate $$tmp

# Short fuzz iteration of the trace codec round-trip property (the CI
# fuzz smoke; the corpus grows under internal/trace/testdata).
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzTraceRoundTrip -fuzztime 10s ./internal/trace

# Fault-injection smoke: the litmus suite with invariant oracles armed
# under two fault profiles × two protocols (mirrors the CI fault job);
# any TSO-forbidden outcome, oracle violation or deadlock fails.
fault-smoke:
	@set -e; for prof in jitter pressure; do for proto in MESI TSO-CC-4-12-3; do \
	  echo "fault smoke: $$prof / $$proto"; \
	  $(GO) run ./cmd/tsocc-litmus -iters 25 -proto $$proto \
	    -faults $$prof -fault-seed 7 -checks > /dev/null; \
	done; done; echo "fault smoke: all oracles clean"

# Protocol-legality oracle sweep: the litmus suite with the
# state-transition legality tables, TxTable lifecycle audit, and memory
# oracles armed under the directory-side fault profiles (forced
# self-evictions, timestamp-reset storms, delayed PutAcks, and a
# composite) × two protocols. Any illegal state transition, leaked
# transaction, oracle violation or deadlock fails. The randomized
# 20-seed version runs in `go test ./...` as TestFaultSweepOracles, and
# the seeded-bug end-to-end gate (oracle catches a planted illegal
# transition, shrinker reduces it) as TestSeededLegalityBugShrinks.
oracle-sweep:
	@set -e; for prof in evict reset-storm victim "jitter:rate=200+evict:rate=80"; do \
	for proto in MESI TSO-CC-4-12-3; do \
	  echo "oracle sweep: $$prof / $$proto"; \
	  $(GO) run ./cmd/tsocc-litmus -iters 25 -proto $$proto \
	    -faults "$$prof" -fault-seed 11 -checks > /dev/null; \
	done; done; echo "oracle sweep: all legality tables and lifecycle audits clean"

# Parallel-engine smoke: the litmus suite through the tsocc-litmus CLI
# at 1, 2 and 4 shards × two protocols (mirrors the CI parallel job).
# Shards=1 is the single-threaded engine, so the sweep covers both
# engine flavors end to end; any TSO-forbidden outcome fails. Stats
# bit-identity across shard counts is pinned by TestParallel* in the
# test suite.
parallel-smoke:
	@set -e; for shards in 1 2 4; do for proto in MESI TSO-CC-4-12-3; do \
	  echo "parallel smoke: shards=$$shards / $$proto"; \
	  $(GO) run ./cmd/tsocc-litmus -iters 25 -proto $$proto -shards $$shards > /dev/null; \
	done; done; echo "parallel smoke: all shard counts TSO-clean"

# Record → replay → diff-stats conformance over a small grid (mirrors
# the CI trace gate).
trace-gate:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	for bench in x264 ssca2; do for proto in MESI TSO-CC-4-12-3; do \
	  echo "trace gate: $$bench / $$proto"; \
	  $(GO) run ./cmd/tsocc-trace record -bench $$bench -proto $$proto -cores 8 \
	    -o $$tmp/t.trc -stats $$tmp/rec.txt > /dev/null; \
	  $(GO) run ./cmd/tsocc-trace replay -i $$tmp/t.trc -stats $$tmp/rep.txt > /dev/null; \
	  diff $$tmp/rec.txt $$tmp/rep.txt; \
	done; done; echo "trace gate: record/replay stats identical"

# Observability smoke (mirrors the CI obs job): an 8-core canneal run
# and a bounded litmus run each emit a metrics-registry dump and a
# Chrome trace-event timeline; both timelines must be well-formed
# (matched async begin/end — the validator is the same check Perfetto
# applies on load) and both metrics dumps must carry counter and
# histogram series. Then the bounded no-perturbation gate: obs-on vs
# obs-off fingerprints bit-identical, plus the timeline unit tests
# (golden file, fuzz-lite, early-termination flush).
obs-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	echo "obs smoke: tsocc-sim canneal / 8 cores"; \
	$(GO) run ./cmd/tsocc-sim -bench canneal -cores 8 \
	  -metrics $$tmp/sim-metrics.json -timeline $$tmp/sim-timeline.json > /dev/null; \
	echo "obs smoke: tsocc-litmus / TSO-CC-4-12-3"; \
	$(GO) run ./cmd/tsocc-litmus -iters 10 -proto TSO-CC-4-12-3 \
	  -metrics $$tmp/lit-metrics.json -timeline $$tmp/lit-timeline.json > /dev/null; \
	$(GO) run ./internal/obs/validate $$tmp/sim-timeline.json $$tmp/lit-timeline.json; \
	$(GO) run ./internal/obs/validate -metrics $$tmp/sim-metrics.json $$tmp/lit-metrics.json; \
	$(GO) test -run 'TestObsOnOffBitIdentical' . ; \
	$(GO) test -run 'TestTimeline|TestRegistry' ./internal/obs/; \
	echo "obs smoke: timelines well-formed, metrics populated, on/off bit-identical"

# Scaling smoke (mirrors the CI scale job): the 64-core conformance
# fingerprint — canneal and ssca2 end to end on an 8x8 mesh, crossed
# over engine mode × batched core × shard count × checks × obs × faults
# × trace replay (TestScale64*) — plus the per-link contention
# properties (flit-hop conservation, HopDistance/XY agreement) at 64,
# 128 and 256 tiles, and a race-detector leg over the contention path:
# the mesh property tests plus one sharded real-workload conformance
# cell, where the coordinator goroutine replays cross-tile sends into
# the shared link-reservation table while shard goroutines tick. The
# race cell stays at 4 cores — 64-core runs under -race cost tens of
# minutes and race coverage depends on the code paths, not the
# geometry. Bounded by design; the full scaling curve lives in
# `tsocc-bench -perf -scaling`, not CI.
scale-smoke:
	$(GO) test -run 'TestScale64' .
	$(GO) test -run 'TestFlitHopConservation|TestHopDistanceMatchesXYRoute|TestLinkEpochRebase' ./internal/mesh/
	GOMAXPROCS=4 $(GO) test -race -run 'TestFlitHopConservation|TestLinkEpochRebase' ./internal/mesh/
	GOMAXPROCS=4 $(GO) test -race -run 'TestParallelEngineBitIdentical/TSO-CC-4-12-3/canneal$$' .

ci: vet build test race race-parallel bench-smoke bench-gate trace-gate fault-smoke oracle-sweep parallel-smoke obs-smoke scale-smoke
