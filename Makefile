GO ?= go

.PHONY: all vet build test race bench-smoke bench bench-json perf ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Unit-test packages under the race detector with the TxTable lifecycle
# assertions compiled in (mirrors the CI race job).
race:
	$(GO) test -race -tags txdebug ./internal/...

# Quick benchmark smoke: exercises the perf-critical paths without the
# full figure grids.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEngineStep|BenchmarkEngineIdleSkip|BenchmarkDenseCompute|BenchmarkMeshDelivery|BenchmarkL1HitPath' -benchtime 2000x .

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Simulator throughput JSON (for BENCH_*.json trajectories).
perf:
	$(GO) run ./cmd/tsocc-bench -perf -cores 8

# Dated engine + hot-path throughput snapshot (per-cycle, event, and
# batched-core numbers for the standard benches plus dense-compute).
bench-json:
	$(GO) run ./cmd/tsocc-bench -perf -cores 8 > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

ci: vet build test race bench-smoke
