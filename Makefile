GO ?= go

.PHONY: all vet build test race bench-smoke bench bench-json perf fuzz-smoke trace-gate ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Unit-test packages under the race detector with the TxTable lifecycle
# assertions compiled in (mirrors the CI race job).
race:
	$(GO) test -race -tags txdebug ./internal/...

# Quick benchmark smoke: exercises the perf-critical paths without the
# full figure grids.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEngineStep|BenchmarkEngineIdleSkip|BenchmarkDenseCompute|BenchmarkMeshDelivery|BenchmarkL1HitPath|BenchmarkTraceCodec' -benchtime 2000x .

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Simulator throughput JSON (for BENCH_*.json trajectories).
perf:
	$(GO) run ./cmd/tsocc-bench -perf -cores 8

# Dated engine + hot-path throughput snapshot (per-cycle, event, and
# batched-core numbers for the standard benches plus dense-compute,
# with trace replay/codec throughput per benchmark).
bench-json:
	$(GO) run ./cmd/tsocc-bench -perf -cores 8 > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

# Short fuzz iteration of the trace codec round-trip property (the CI
# fuzz smoke; the corpus grows under internal/trace/testdata).
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzTraceRoundTrip -fuzztime 10s ./internal/trace

# Record → replay → diff-stats conformance over a small grid (mirrors
# the CI trace gate).
trace-gate:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	for bench in x264 ssca2; do for proto in MESI TSO-CC-4-12-3; do \
	  echo "trace gate: $$bench / $$proto"; \
	  $(GO) run ./cmd/tsocc-trace record -bench $$bench -proto $$proto -cores 8 \
	    -o $$tmp/t.trc -stats $$tmp/rec.txt > /dev/null; \
	  $(GO) run ./cmd/tsocc-trace replay -i $$tmp/t.trc -stats $$tmp/rep.txt > /dev/null; \
	  diff $$tmp/rec.txt $$tmp/rep.txt; \
	done; done; echo "trace gate: record/replay stats identical"

ci: vet build test race bench-smoke trace-gate
