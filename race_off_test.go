//go:build !race

package repro_test

// raceEnabled reports whether the race detector is compiled in (it adds
// instrumentation allocations that would fail the zero-alloc gates).
const raceEnabled = false
