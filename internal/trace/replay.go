package trace

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ReplayCore drives a recorded (or synthesized) per-core operation
// stream through a coherence.CorePort. It implements the same
// sim.Ticker + sim.WakeHinter scheduling contract as cpu.Core and
// models the identical TSO front end — FIFO write buffer with
// store→load forwarding, drain-before-atomic/fence, port-busy retries —
// so that replaying a trace on the machine it was recorded under
// reproduces every port call on its original cycle:
//
//   - After a synchronous completion (a store entering the write
//     buffer, a forwarded load) the next op becomes ready Gap cycles
//     later; Gap includes the completing op's own cycle.
//   - After an asynchronous completion (load/RMW/fence callback) the
//     next op becomes ready Gap cycles after the callback fires; a Gap
//     of 0 issues on the callback cycle itself, exactly as cpu.Core
//     dispatches the next instruction the cycle a callback lands.
//   - A ready op is attempted every ticked cycle until the port (or the
//     write-buffer precondition) accepts it, mirroring cpu.Core's retry
//     behaviour; the gap clock does not advance during retries.
//
// Between ready times the core reports NextWake = readyAt, so the
// idle-skip engine leaps the recorded compute gaps just as it leaps a
// batched core's straight-line runs.
type ReplayCore struct {
	ID   int
	ops  []Op
	idx  int
	port coherence.CorePort

	wb         []wbEntry
	wbHead     int
	wbLen      int
	wbInFlight bool
	wbStalled  bool

	waiting bool
	halted  bool

	// readyAt is the earliest cycle ops[idx] may issue. gapArmed defers
	// the anchor for async completions: the callback cycle is not known
	// until the core ticks on it, at which point readyAt = now + Gap.
	readyAt  sim.Cycle
	gapArmed bool

	// waker marks the core due when a completion callback fires (the
	// wake-set contract, mirroring cpu.Core).
	waker sim.Waker

	loadCb  func(val uint64)
	rmwCb   func(old uint64)
	storeCb func()
	fenceCb func()

	fAdd, fXchg, fCas func(old uint64) (uint64, bool)
	rmwA, rmwB        uint64

	Loads        stats.Counter
	Stores       stats.Counter
	RMWs         stats.Counter
	Fences       stats.Counter
	Instructions stats.Counter
	WBForwards   stats.Counter
	FinishCycle  sim.Cycle

	// Stall attribution (internal/obs), nil when disabled; the same
	// interval-episode scheme as cpu.Core (recorded compute gaps are not
	// stalls and are never attributed).
	stalls     *obs.CoreStalls
	stallWhy   obs.StallReason
	stallStart sim.Cycle
}

type wbEntry struct {
	addr uint64
	val  uint64
}

// NewReplayCore builds a replay frontend for one stream against port,
// with a write buffer of wbEntries slots (use the recording geometry's
// WriteBuffer for bit-identical replay).
func NewReplayCore(id int, ops []Op, port coherence.CorePort, wbEntries int) *ReplayCore {
	if wbEntries <= 0 {
		panic("trace: replay write buffer must have at least one entry")
	}
	c := &ReplayCore{ID: id, ops: ops, port: port, wb: make([]wbEntry, wbEntries)}
	c.Loads.SetName(fmt.Sprintf("replay%d.loads", id))
	c.Stores.SetName(fmt.Sprintf("replay%d.stores", id))
	c.RMWs.SetName(fmt.Sprintf("replay%d.rmws", id))
	c.Fences.SetName(fmt.Sprintf("replay%d.fences", id))
	c.Instructions.SetName(fmt.Sprintf("replay%d.instructions", id))
	c.WBForwards.SetName(fmt.Sprintf("replay%d.wb_forwards", id))
	if len(ops) > 0 {
		// The stream's anchor is cycle 0; the first op's Gap is its
		// absolute first-attempt cycle.
		c.readyAt = sim.Cycle(ops[0].Gap)
	} else {
		c.halted = true
	}
	c.loadCb = func(uint64) {
		c.waiting = false
		c.waker.Wake()
	}
	c.rmwCb = func(uint64) {
		c.waiting = false
		c.waker.Wake()
	}
	c.storeCb = func() {
		c.wbHead = (c.wbHead + 1) % len(c.wb)
		c.wbLen--
		c.wbInFlight = false
		c.waker.Wake()
	}
	c.fenceCb = func() {
		c.waiting = false
		c.waker.Wake()
	}
	c.fAdd = func(old uint64) (uint64, bool) { return old + c.rmwA, true }
	c.fXchg = func(old uint64) (uint64, bool) { return c.rmwA, true }
	c.fCas = func(old uint64) (uint64, bool) {
		if old == c.rmwA {
			return c.rmwB, true
		}
		return 0, false
	}
	return c
}

// BindWaker implements sim.WakeSink (see the waker field).
func (c *ReplayCore) BindWaker(w sim.Waker) { c.waker = w }

// SetStalls attaches the stall-attribution histograms (see the stalls
// field).
func (c *ReplayCore) SetStalls(s *obs.CoreStalls) {
	c.stalls = s
	c.stallWhy = obs.StallNone
}

func (c *ReplayCore) stallOpen(now sim.Cycle, why obs.StallReason) {
	if c.stalls == nil || c.stallWhy != obs.StallNone {
		return
	}
	c.stallWhy = why
	c.stallStart = now
}

func (c *ReplayCore) stallClose(now sim.Cycle) {
	if c.stalls == nil || c.stallWhy == obs.StallNone {
		return
	}
	c.stalls.Observe(c.stallWhy, int64(now-c.stallStart))
	c.stallWhy = obs.StallNone
}

// Done reports whether the stream is exhausted and all writes drained.
func (c *ReplayCore) Done() bool {
	return c.halted && c.wbLen == 0 && !c.wbInFlight && !c.waiting
}

// Counts implements system.Frontend.
func (c *ReplayCore) Counts() (loads, stores, rmws, fences, instrs int64) {
	return c.Loads.Value(), c.Stores.Value(), c.RMWs.Value(),
		c.Fences.Value(), c.Instructions.Value()
}

// ObsCounters implements coherence.ObsCounterProvider.
func (c *ReplayCore) ObsCounters() []*stats.Counter {
	return []*stats.Counter{&c.Loads, &c.Stores, &c.RMWs, &c.Fences,
		&c.Instructions, &c.WBForwards}
}

// Tick advances the replay core one cycle. Structure mirrors
// cpu.Core.Tick: drain the write buffer first, then dispatch.
func (c *ReplayCore) Tick(now sim.Cycle) {
	c.drainWriteBuffer(now)

	if c.halted {
		if c.Done() && c.FinishCycle == 0 {
			c.FinishCycle = now
		}
		return
	}
	if c.waiting {
		return
	}
	if c.gapArmed {
		// The async callback fired earlier this cycle; anchor the next
		// op's ready time on it.
		c.readyAt = now + sim.Cycle(c.ops[c.idx].Gap)
		c.gapArmed = false
	}
	if now < c.readyAt {
		return
	}
	if c.stalls != nil {
		c.stallClose(now)
	}
	c.attempt(now)
}

// attempt issues ops[idx]; on rejection the op stays current and is
// retried next tick.
func (c *ReplayCore) attempt(now sim.Cycle) {
	op := &c.ops[c.idx]
	switch op.Kind {
	case config.TraceLoad:
		c.doLoad(now, op)
	case config.TraceStore:
		c.doStore(now, op)
	case config.TraceRMWAdd, config.TraceRMWXchg, config.TraceCAS:
		c.doAtomic(now, op)
	case config.TraceFence:
		c.doFence(now, op)
	case config.TraceHalt:
		c.halted = true
		c.Instructions.Add(op.Instrs)
		c.idx++
	default:
		panic(fmt.Sprintf("trace: replay core %d: bad op kind %d", c.ID, op.Kind))
	}
}

// finishSync completes a synchronously-retiring op: the next op's gap is
// anchored on the current cycle (the gap already covers this op's own
// cycle).
func (c *ReplayCore) finishSync(now sim.Cycle, op *Op) {
	c.Instructions.Add(op.Instrs)
	c.idx++
	if c.idx < len(c.ops) {
		c.readyAt = now + sim.Cycle(c.ops[c.idx].Gap)
	}
}

// finishAsync completes an op whose callback will arrive later: the
// next op's gap is anchored on the callback cycle, resolved by the
// gapArmed step in Tick.
func (c *ReplayCore) finishAsync(op *Op) {
	c.Instructions.Add(op.Instrs)
	c.idx++
	c.waiting = true
	if c.idx < len(c.ops) {
		c.gapArmed = true
	}
}

func (c *ReplayCore) doLoad(now sim.Cycle, op *Op) {
	// Store→load forwarding against the replayed write buffer: the
	// buffer holds the same entries the recorded core's did, so the
	// forwarding decision reproduces.
	for i := c.wbLen - 1; i >= 0; i-- {
		e := &c.wb[(c.wbHead+i)%len(c.wb)]
		if e.addr == op.Addr {
			c.Loads.Inc()
			c.WBForwards.Inc()
			c.finishSync(now, op)
			return
		}
	}
	if !c.port.Load(now, op.Addr, c.loadCb) {
		c.stallOpen(now, obs.StallPortBusy)
		return // port busy; retry next tick
	}
	c.stallOpen(now, obs.StallMissOutstanding)
	c.Loads.Inc()
	c.finishAsync(op)
}

func (c *ReplayCore) doStore(now sim.Cycle, op *Op) {
	if c.wbLen >= len(c.wb) {
		c.stallOpen(now, obs.StallWBFull)
		return // write buffer full; retry
	}
	c.wb[(c.wbHead+c.wbLen)%len(c.wb)] = wbEntry{addr: op.Addr, val: op.Val}
	c.wbLen++
	c.Stores.Inc()
	c.finishSync(now, op)
}

func (c *ReplayCore) doAtomic(now sim.Cycle, op *Op) {
	if c.wbLen > 0 || c.wbInFlight {
		c.stallOpen(now, obs.StallFenceDrain)
		return // locked ops drain the write buffer first
	}
	var f func(old uint64) (uint64, bool)
	c.rmwA = op.Val
	switch op.Kind {
	case config.TraceRMWAdd:
		f = c.fAdd
	case config.TraceRMWXchg:
		f = c.fXchg
	default:
		c.rmwB = op.Val2
		f = c.fCas
	}
	if !c.port.RMW(now, op.Addr, f, c.rmwCb) {
		c.stallOpen(now, obs.StallPortBusy)
		return
	}
	c.stallOpen(now, obs.StallMissOutstanding)
	c.RMWs.Inc()
	c.finishAsync(op)
}

func (c *ReplayCore) doFence(now sim.Cycle, op *Op) {
	if c.wbLen > 0 || c.wbInFlight {
		c.stallOpen(now, obs.StallFenceDrain)
		return
	}
	if !c.port.Fence(now, c.fenceCb) {
		c.stallOpen(now, obs.StallPortBusy)
		return
	}
	c.stallOpen(now, obs.StallFenceDrain)
	c.Fences.Inc()
	c.finishAsync(op)
}

func (c *ReplayCore) drainWriteBuffer(now sim.Cycle) {
	if c.wbInFlight || c.wbLen == 0 {
		return
	}
	head := c.wb[c.wbHead]
	if c.port.Store(now, head.addr, head.val, c.storeCb) {
		c.wbInFlight = true
		c.wbStalled = false
	} else {
		// Same invariant as cpu.Core.drainWriteBuffer: every L1 decline
		// reason is one of this core's own in-flight transactions, whose
		// completion callback wakes the core on the cycle the L1 frees —
		// required for the retry to be dispatched under wake-set
		// scheduling while the core reports WakeNever.
		c.wbStalled = true
	}
}

// NextWake implements sim.WakeHinter; the cases mirror cpu.Core's, with
// readyAt standing in for the instruction stall.
func (c *ReplayCore) NextWake(now sim.Cycle) sim.Cycle {
	if c.wbLen > 0 && !c.wbInFlight && !c.wbStalled {
		return now + 1 // a freshly buffered store to issue
	}
	if c.halted || c.waiting {
		return sim.WakeNever
	}
	if c.gapArmed {
		return now + 1 // anchor resolves on the next tick
	}
	if now+1 < c.readyAt {
		return c.readyAt
	}
	return now + 1
}

// ComponentLabel implements sim.Labeled (forensic reports).
func (c *ReplayCore) ComponentLabel() string { return fmt.Sprintf("replay core %d", c.ID) }

// Debug renders the replay state (deadlock diagnostics).
func (c *ReplayCore) Debug() string {
	return fmt.Sprintf("replay core %d: op %d/%d halted=%v waiting=%v wb=%d inflight=%v readyAt=%d",
		c.ID, c.idx, len(c.ops), c.halted, c.waiting, c.wbLen, c.wbInFlight, c.readyAt)
}
