// Package trace is the memory-trace subsystem: it captures the memory
// operation stream of a simulated run (via config.System.TraceOut),
// stores it in a compact varint-delta binary format, replays it through
// the coherence stack bit-identically (ReplayCore), and synthesizes
// parameterized access patterns (Zipf, Migratory, Scan) as traces.
//
// A trace is the complete data-side description of a run: per-core
// operation streams with compute-gap deltas, the initial memory image
// (required because CAS outcomes — and therefore cache-state
// transitions — depend on observed values), and a versioned header
// carrying the recording geometry and protocol. Replaying a trace on
// the configuration it was recorded under reproduces the original
// system.Result exactly; replaying it elsewhere (another protocol,
// another engine mode) is an elastic re-execution that preserves the
// per-core op order and inter-op compute gaps.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/config"
)

// Op is one decoded trace operation. Gap and Instrs follow the
// config.TraceEvent contract: Gap is the cycle distance from the
// previous op's completion to this op's first issue attempt, Instrs the
// instructions retired since the previous op (this one included).
type Op struct {
	Kind   config.TraceOp
	Addr   uint64
	Val    uint64 // store value / RMW operand / CAS expected value
	Val2   uint64 // CAS swap value
	Gap    int64
	Instrs int64
}

// Stream is one core's operation sequence. A well-formed stream ends
// with exactly one TraceHalt record (and contains no other), so replay
// knows the cycle on which the core goes quiescent.
type Stream struct {
	Core int
	Ops  []Op
}

// MemWord is one word of the initial memory image.
type MemWord struct {
	Addr uint64
	Val  uint64
}

// Meta is the trace header: where the trace came from and the machine
// geometry it was recorded under. Sys carries only geometry fields —
// run-mode toggles (engine mode, batched core, TraceOut) are normalized
// to their zero values, since the captured stream is identical across
// all of them.
type Meta struct {
	Protocol string
	Workload string
	Seed     uint64
	Sys      config.System
}

// Trace is a fully decoded trace file.
type Trace struct {
	Meta    Meta
	InitMem []MemWord // sorted by strictly ascending address
	Streams []Stream  // sorted by strictly ascending core id
}

// Ops reports the total operation count across all streams (halt
// records included).
func (t *Trace) Ops() int {
	n := 0
	for _, s := range t.Streams {
		n += len(s.Ops)
	}
	return n
}

// normalizeSys strips the run-mode fields a trace must not depend on.
func normalizeSys(sys config.System) config.System {
	sys.PerCycleEngine = false
	sys.BatchedCore = false
	sys.TraceOut = nil
	return sys
}

// Validate checks structural well-formedness: stream and memory
// ordering, address alignment, gap/instr sanity, and halt placement.
// Both the encoder and the decoder run it, so a malformed trace can
// neither be written nor replayed.
func (t *Trace) Validate() error {
	if t.Meta.Sys.Cores <= 0 {
		return fmt.Errorf("trace: header cores must be positive, got %d", t.Meta.Sys.Cores)
	}
	for i, w := range t.InitMem {
		if w.Addr%8 != 0 {
			return fmt.Errorf("trace: init word %d at %#x not 8-aligned", i, w.Addr)
		}
		if i > 0 && w.Addr <= t.InitMem[i-1].Addr {
			return fmt.Errorf("trace: init memory not strictly ascending at %d (%#x after %#x)",
				i, w.Addr, t.InitMem[i-1].Addr)
		}
	}
	for i, s := range t.Streams {
		if s.Core < 0 || s.Core >= t.Meta.Sys.Cores {
			return fmt.Errorf("trace: stream %d core %d outside [0,%d)", i, s.Core, t.Meta.Sys.Cores)
		}
		if i > 0 && s.Core <= t.Streams[i-1].Core {
			return fmt.Errorf("trace: streams not strictly ascending at %d (core %d after %d)",
				i, s.Core, t.Streams[i-1].Core)
		}
		if len(s.Ops) == 0 {
			return fmt.Errorf("trace: core %d stream is empty", s.Core)
		}
		for j, op := range s.Ops {
			if op.Kind >= config.NumTraceOps {
				return fmt.Errorf("trace: core %d op %d has bad kind %d", s.Core, j, op.Kind)
			}
			if op.Gap < 0 || op.Instrs < 0 {
				return fmt.Errorf("trace: core %d op %d has negative gap/instrs", s.Core, j)
			}
			if op.Kind.HasAddr() && op.Addr%8 != 0 {
				return fmt.Errorf("trace: core %d op %d address %#x not 8-aligned", s.Core, j, op.Addr)
			}
			if op.Kind == config.TraceHalt && j != len(s.Ops)-1 {
				return fmt.Errorf("trace: core %d has halt at op %d before end of stream", s.Core, j)
			}
		}
		if last := s.Ops[len(s.Ops)-1]; last.Kind != config.TraceHalt {
			return fmt.Errorf("trace: core %d stream does not end in halt", s.Core)
		}
	}
	return nil
}

// Recorder is the config.TraceSink that accumulates capture events into
// per-core streams. It is single-goroutine (the simulation loop) and
// assembles a Trace once the run completes.
type Recorder struct {
	meta    Meta
	initMem []MemWord
	streams [][]Op // indexed by core id
}

// NewRecorder returns a recorder for a machine with cfg's geometry
// running protocol on workload.
func NewRecorder(cfg config.System, protocol, workload string, seed uint64) *Recorder {
	return &Recorder{
		meta:    Meta{Protocol: protocol, Workload: workload, Seed: seed, Sys: normalizeSys(cfg)},
		streams: make([][]Op, cfg.Cores),
	}
}

// RecordOp implements config.TraceSink.
func (r *Recorder) RecordOp(ev config.TraceEvent) {
	if ev.Core < 0 || ev.Core >= len(r.streams) {
		panic(fmt.Sprintf("trace: recorded event for core %d outside geometry (%d cores)",
			ev.Core, len(r.streams)))
	}
	r.streams[ev.Core] = append(r.streams[ev.Core], Op{
		Kind: ev.Op, Addr: ev.Addr, Val: ev.Val, Val2: ev.Val2,
		Gap: ev.Gap, Instrs: ev.Instrs,
	})
}

// SetInitMem captures the workload's initial memory image (sorted into
// the canonical encoding order).
func (r *Recorder) SetInitMem(mem map[uint64]uint64) {
	r.initMem = r.initMem[:0]
	for a, v := range mem {
		r.initMem = append(r.initMem, MemWord{Addr: a, Val: v})
	}
	sort.Slice(r.initMem, func(i, j int) bool { return r.initMem[i].Addr < r.initMem[j].Addr })
}

// Trace assembles the recorded streams into a validated Trace.
func (r *Recorder) Trace() (*Trace, error) {
	t := &Trace{Meta: r.meta, InitMem: r.initMem}
	for core, ops := range r.streams {
		if len(ops) == 0 {
			continue // idle core (no program loaded)
		}
		t.Streams = append(t.Streams, Stream{Core: core, Ops: ops})
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("recorded run produced a malformed trace (incomplete run?): %w", err)
	}
	return t, nil
}
