package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tsocc"
)

var synthGens = []struct {
	name string
	gen  func(trace.SynthParams) *trace.Trace
}{
	{"zipf", trace.Zipf},
	{"migratory", trace.Migratory},
	{"scan", trace.Scan},
}

// TestSynthDeterministic: identical parameters produce byte-identical
// traces; a different seed produces a different stream.
func TestSynthDeterministic(t *testing.T) {
	for _, g := range synthGens {
		t.Run(g.name, func(t *testing.T) {
			p := trace.SynthParams{Cores: 4, OpsPerCore: 64, Seed: 11}
			a, err := trace.Encode(g.gen(p))
			if err != nil {
				t.Fatal(err)
			}
			b, err := trace.Encode(g.gen(p))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatal("same parameters produced different traces")
			}
			p.Seed = 12
			c, err := trace.Encode(g.gen(p))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(a, c) {
				t.Fatal("different seeds produced identical traces")
			}
		})
	}
}

// TestSynthReplayAndConvert runs each generator's output both ways: as
// a ReplayCore-driven machine and through the trace→program conversion.
// Both must complete, and both must issue every synthesized operation.
func TestSynthReplayAndConvert(t *testing.T) {
	for _, g := range synthGens {
		t.Run(g.name, func(t *testing.T) {
			tr := g.gen(trace.SynthParams{Cores: 2, OpsPerCore: 48, Seed: 5})
			var wantLoads, wantStores int64
			for _, s := range tr.Streams {
				for _, op := range s.Ops {
					switch op.Kind {
					case config.TraceLoad:
						wantLoads++
					case config.TraceStore:
						wantStores++
					}
				}
			}
			cfg := config.Small(2)
			rep, err := system.Replay(cfg, tsocc.New(config.C12x3()), tr)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if rep.Loads != wantLoads || rep.Stores != wantStores {
				t.Fatalf("replay issued ld=%d st=%d, want ld=%d st=%d",
					rep.Loads, rep.Stores, wantLoads, wantStores)
			}
			w := tr.Workload()
			run, err := system.Run(cfg, tsocc.New(config.C12x3()), w)
			if err != nil {
				t.Fatalf("converted workload: %v", err)
			}
			if run.Loads != wantLoads || run.Stores != wantStores {
				t.Fatalf("converted workload issued ld=%d st=%d, want ld=%d st=%d",
					run.Loads, run.Stores, wantLoads, wantStores)
			}
		})
	}
}
