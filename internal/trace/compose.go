package trace

import (
	"fmt"
	"strings"
)

// Compose splices recorded (or synthesized) traces onto a larger
// machine: instances of the source traces are tiled across the target
// core count, each instance's streams re-homed onto the next contiguous
// core group and its address space shifted by a per-instance stride so
// instances never share data. The result is a validated, replayable
// trace with the target geometry — the mechanism behind the Large64/128/
// 256 scaling workloads, which re-use small recorded runs instead of
// re-recording hundreds of cores.
//
// Placement is deterministic: instances cycle through parts in argument
// order (part 0, part 1, ..., part 0, ...), each occupying its recorded
// geometry's worth of cores, until no further instance fits; leftover
// cores stay idle (a trace need not carry a stream for every core).
// Sharing still crosses the whole mesh — the address stride moves data
// between L2 home tiles, so instance i's traffic traverses links far
// from its own core group.
//
// The stride is the smallest power of two strictly greater than every
// part's highest touched address, so instance address spaces are
// disjoint and the composed InitMem stays strictly ascending. Values
// (store payloads, CAS operands) are not rewritten: composition assumes
// data values are not reused as pointers, which holds for every
// workload and synthesizer in this repository.
func Compose(cores int, parts ...*Trace) (*Trace, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("trace: compose target cores must be positive, got %d", cores)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: compose needs at least one part")
	}
	var span uint64
	names := make([]string, 0, len(parts))
	for i, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("trace: compose part %d invalid: %w", i, err)
		}
		if s := p.addrSpan(); s > span {
			span = s
		}
		names = append(names, p.Meta.Workload)
	}
	stride := uint64(1)
	for stride <= span {
		stride <<= 1
	}

	out := &Trace{Meta: parts[0].Meta}
	out.Meta.Sys.Cores = cores
	out.Meta.Sys.MeshRows = 0 // let the mesh pick its own factorization
	out.Meta.Workload = fmt.Sprintf("compose[%s]x%d", strings.Join(names, "+"), cores)

	base, inst := 0, 0
	for {
		p := parts[inst%len(parts)]
		pc := p.Meta.Sys.Cores
		if base+pc > cores {
			break
		}
		off := stride * uint64(inst)
		for _, s := range p.Streams {
			ops := make([]Op, len(s.Ops))
			for j, op := range s.Ops {
				if op.Kind.HasAddr() {
					op.Addr += off
				}
				ops[j] = op
			}
			out.Streams = append(out.Streams, Stream{Core: base + s.Core, Ops: ops})
		}
		for _, w := range p.InitMem {
			out.InitMem = append(out.InitMem, MemWord{Addr: w.Addr + off, Val: w.Val})
		}
		base += pc
		inst++
	}
	if inst == 0 {
		return nil, fmt.Errorf("trace: compose target of %d cores cannot fit one instance of %q (%d cores)",
			cores, parts[0].Meta.Workload, parts[0].Meta.Sys.Cores)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("trace: composed trace invalid: %w", err)
	}
	return out, nil
}

// addrSpan reports one past the highest address the trace touches
// (streams and initial memory).
func (t *Trace) addrSpan() uint64 {
	var hi uint64
	for _, s := range t.Streams {
		for _, op := range s.Ops {
			if op.Kind.HasAddr() && op.Addr >= hi {
				hi = op.Addr + 8
			}
		}
	}
	for _, w := range t.InitMem {
		if w.Addr >= hi {
			hi = w.Addr + 8
		}
	}
	return hi
}
