package trace

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/program"
)

// Workload converts the trace into an equivalent program-based
// workload: each stream becomes a straight-line program of address
// materializations, memory operations and pauses. This makes traces —
// synthetic ones especially — name-resolvable workloads runnable by
// every existing harness and CLI path, on any protocol and core count
// that fits.
//
// The conversion approximates timing rather than reproducing it: the
// materializing li instructions cost cycles the original gap did not
// include, so each op's pause is shortened by the op's own emitted
// instruction count. Bit-identical replay is ReplayCore's job; the
// program form trades a few cycles of fidelity for universal
// compatibility.
func (t *Trace) Workload() *program.Workload {
	maxCore := 0
	for _, s := range t.Streams {
		if s.Core > maxCore {
			maxCore = s.Core
		}
	}
	byCore := make([]*program.Program, maxCore+1)
	for _, s := range t.Streams {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", t.Meta.Workload, s.Core))
		for _, op := range s.Ops {
			emitted := opProgramLen(op.Kind)
			if pad := op.Gap - emitted; pad > 0 {
				b.Nop(pad)
			}
			switch op.Kind {
			case config.TraceLoad:
				b.Li(1, int64(op.Addr))
				b.Ld(2, 1, 0)
			case config.TraceStore:
				b.Li(1, int64(op.Addr))
				b.Li(3, int64(op.Val))
				b.St(1, 0, 3)
			case config.TraceRMWAdd:
				b.Li(1, int64(op.Addr))
				b.Li(3, int64(op.Val))
				b.RmwAdd(2, 1, 0, 3)
			case config.TraceRMWXchg:
				b.Li(1, int64(op.Addr))
				b.Li(3, int64(op.Val))
				b.RmwXchg(2, 1, 0, 3)
			case config.TraceCAS:
				b.Li(1, int64(op.Addr))
				b.Li(3, int64(op.Val))
				b.Li(4, int64(op.Val2))
				b.Cas(2, 1, 0, 3, 4)
			case config.TraceFence:
				b.Fence()
			case config.TraceHalt:
				b.Halt()
			}
		}
		byCore[s.Core] = b.MustBuild()
	}

	var initMem map[uint64]uint64
	if len(t.InitMem) > 0 {
		initMem = make(map[uint64]uint64, len(t.InitMem))
		for _, w := range t.InitMem {
			initMem[w.Addr] = w.Val
		}
	}
	return &program.Workload{Name: t.Meta.Workload, Programs: byCore, InitMem: initMem}
}

// opProgramLen is the instruction count Workload emits for an op,
// subtracted from the op's gap so converted programs keep roughly the
// recorded pacing.
func opProgramLen(kind config.TraceOp) int64 {
	switch kind {
	case config.TraceLoad:
		return 2
	case config.TraceStore, config.TraceRMWAdd, config.TraceRMWXchg:
		return 3
	case config.TraceCAS:
		return 4
	default: // fence, halt
		return 1
	}
}
