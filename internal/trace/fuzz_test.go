package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// traceFromBytes deterministically derives a structurally valid Trace
// from arbitrary fuzz input: the bytes seed an RNG that draws sizes,
// kinds, addresses and values, so every input maps to some well-formed
// trace while small input mutations explore very different shapes.
func traceFromBytes(data []byte) *Trace {
	seed := uint64(len(data))
	for i, b := range data {
		seed = seed*1099511628211 + uint64(b)<<(uint(i)%56)
	}
	rng := sim.NewRNG(seed)
	cores := 1 + rng.Intn(6)
	sys := normalizeSys(config.Small(cores))
	t := &Trace{Meta: Meta{
		Protocol: "fuzz-proto",
		Workload: "fuzz",
		Seed:     rng.Uint64(),
		Sys:      sys,
	}}
	addr := uint64(0)
	for i := 0; i < rng.Intn(20); i++ {
		addr += uint64(8 * (1 + rng.Intn(1000)))
		t.InitMem = append(t.InitMem, MemWord{Addr: addr, Val: rng.Uint64()})
	}
	for core := 0; core < cores; core++ {
		if rng.Intn(4) == 0 && core != cores-1 {
			continue // some cores idle
		}
		var ops []Op
		for i := 0; i < rng.Intn(40); i++ {
			op := Op{
				Kind:   config.TraceOp(rng.Intn(int(config.TraceHalt))),
				Gap:    rng.Int63n(1 << 20),
				Instrs: rng.Int63n(1 << 20),
			}
			if op.Kind.HasAddr() {
				op.Addr = uint64(rng.Int63n(1<<40)) &^ 7
			}
			if op.Kind.HasVal() {
				op.Val = rng.Uint64()
			}
			if op.Kind == config.TraceCAS {
				op.Val2 = rng.Uint64()
			}
			ops = append(ops, op)
		}
		g := 1 + rng.Int63n(100)
		ops = append(ops, Op{Kind: config.TraceHalt, Gap: g, Instrs: g})
		t.Streams = append(t.Streams, Stream{Core: core, Ops: ops})
	}
	return t
}

// FuzzTraceRoundTrip is the codec's fuzz gate with three properties:
//
//  1. For any structurally valid trace (derived from the fuzz input),
//     encode → decode → re-encode is byte-identical and the decoded
//     trace deep-equals the original (version 2, the current format).
//  2. The same trace's legacy version-1 encoding (no RLE) decodes to a
//     deep-equal trace — both format versions stay covered.
//  3. Decoding the raw fuzz input itself — almost always garbage —
//     must return an error or a valid trace, and must never panic.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("TSOCCTRC"))
	if seed, err := Encode(sampleTrace()); err == nil {
		f.Add(seed)
	}
	if seed, err := encodeV1(sampleTrace()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := traceFromBytes(data)
		if err := tr.Validate(); err != nil {
			t.Fatalf("generator emitted invalid trace: %v", err)
		}
		enc, err := Encode(tr)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding: %v", err)
		}
		if !reflect.DeepEqual(tr, dec) {
			t.Fatal("decode does not deep-equal the original")
		}
		enc2, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encode not byte-identical (%d vs %d bytes)", len(enc), len(enc2))
		}

		// Legacy version-1 payloads must keep decoding to the same trace.
		v1, err := encodeV1(tr)
		if err != nil {
			t.Fatalf("v1 encode: %v", err)
		}
		decV1, err := Decode(v1)
		if err != nil {
			t.Fatalf("decode of valid v1 encoding: %v", err)
		}
		if !reflect.DeepEqual(tr, decV1) {
			t.Fatal("v1 decode does not deep-equal the original")
		}

		// Raw input: decode must never panic.
		if tr2, err := Decode(data); err == nil {
			if err := tr2.Validate(); err != nil {
				t.Fatalf("decode accepted a structurally invalid trace: %v", err)
			}
		}
	})
}
