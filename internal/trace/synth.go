package trace

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/sim"
)

// Synthetic trace generators: parameterized, seeded, deterministic
// access-pattern synthesizers for the access classes whose locality the
// paper's lazy self-invalidation exploits. Each returns a validated
// Trace replayable through ReplayCore (or convertible to a
// program-based workload with Trace.Workload). Identical parameters
// always produce byte-identical traces.

// Shared address regions for synthesized traces; far from the workload
// package's regions so mixed experiments never collide.
const (
	synthZipfBase = 0x2000_0000
	synthMigrBase = 0x2100_0000
	synthScanBase = 0x2200_0000
)

// SynthParams sizes a synthetic trace.
type SynthParams struct {
	Cores      int
	OpsPerCore int    // memory operations per core (halt record excluded)
	Seed       uint64 // RNG seed; forked per core
	Blocks     int    // working-set size in cache blocks (0 = per-pattern default)
	MaxGap     int64  // compute gap upper bound in cycles (0 = default 12)
}

func (p SynthParams) defaults(blocks int) SynthParams {
	if p.Cores <= 0 {
		p.Cores = 4
	}
	if p.OpsPerCore <= 0 {
		p.OpsPerCore = 256
	}
	if p.Blocks <= 0 {
		p.Blocks = blocks
	}
	if p.MaxGap <= 0 {
		p.MaxGap = 12
	}
	return p
}

func synthMeta(name string, p SynthParams) Meta {
	return Meta{
		Protocol: "synthetic",
		Workload: name,
		Seed:     p.Seed,
		Sys:      normalizeSys(config.Scaled(p.Cores)),
	}
}

// synthGap draws a compute gap in [1, MaxGap]. Gaps of at least 1 are
// valid after both synchronous and asynchronous ops, so generators need
// not track the previous op's completion kind.
func synthGap(rng *sim.RNG, p SynthParams) int64 {
	return 1 + rng.Int63n(p.MaxGap)
}

// endStream appends the closing halt record with a final compute tail.
func endStream(ops []Op, rng *sim.RNG, p SynthParams) []Op {
	g := synthGap(rng, p)
	return append(ops, Op{Kind: config.TraceHalt, Gap: g, Instrs: g})
}

// Zipf synthesizes a shared working set with Zipf-distributed block
// popularity (exponent 1): a few hot blocks absorb most accesses, the
// long tail is touched rarely — the read-mostly sharing shape where
// TSO-CC's Shared access-counter and SharedRO decay pay off. One access
// in four is a store.
func Zipf(p SynthParams) *Trace {
	p = p.defaults(4096)
	// Zipf CDF over block ranks (exponent 1: weight 1/(rank+1)).
	cdf := make([]float64, p.Blocks)
	sum := 0.0
	for i := range cdf {
		sum += 1 / float64(i+1)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	t := &Trace{Meta: synthMeta("synth-zipf", p)}
	root := sim.NewRNG(p.Seed ^ 0x5A1F)
	for core := 0; core < p.Cores; core++ {
		rng := root.Fork()
		ops := make([]Op, 0, p.OpsPerCore+1)
		for i := 0; i < p.OpsPerCore; i++ {
			blk := sort.SearchFloat64s(cdf, rng.Float64())
			if blk >= p.Blocks {
				blk = p.Blocks - 1
			}
			addr := uint64(synthZipfBase + blk*64 + rng.Intn(8)*8)
			op := Op{Kind: config.TraceLoad, Addr: addr, Gap: synthGap(rng, p)}
			if rng.Intn(4) == 0 {
				op.Kind = config.TraceStore
				op.Val = rng.Uint64()
			}
			op.Instrs = op.Gap
			ops = append(ops, op)
		}
		t.Streams = append(t.Streams, Stream{Core: core, Ops: endStream(ops, rng, p)})
	}
	mustValid(t)
	return t
}

// Migratory synthesizes the migratory-sharing pattern: a pool of
// objects each read-then-written by one core at a time, with ownership
// rotating across cores — the access class where an eager protocol
// ping-pongs invalidations and TSO-CC's lazy scheme rides the
// exclusive-state fast path.
func Migratory(p SynthParams) *Trace {
	p = p.defaults(64)
	t := &Trace{Meta: synthMeta("synth-migratory", p)}
	root := sim.NewRNG(p.Seed ^ 0x316)
	for core := 0; core < p.Cores; core++ {
		rng := root.Fork()
		ops := make([]Op, 0, p.OpsPerCore+1)
		for i := 0; len(ops) < p.OpsPerCore; i++ {
			// Visit objects in a rotating schedule so each is handed
			// core-to-core; read the object header then write it back.
			obj := (i + core) % p.Blocks
			addr := uint64(synthMigrBase + obj*64)
			g := synthGap(rng, p)
			ops = append(ops, Op{Kind: config.TraceLoad, Addr: addr, Gap: g, Instrs: g})
			if len(ops) < p.OpsPerCore {
				g = synthGap(rng, p)
				ops = append(ops, Op{Kind: config.TraceStore, Addr: addr,
					Val: rng.Uint64(), Gap: g, Instrs: g})
			}
		}
		t.Streams = append(t.Streams, Stream{Core: core, Ops: endStream(ops, rng, p)})
	}
	mustValid(t)
	return t
}

// Scan synthesizes streaming sequential scans over one shared array:
// every core walks the region block-by-block from a staggered start,
// storing every 16th block — no temporal locality, the canneal-like
// shape that defeats any sharing optimization and stresses eviction and
// self-invalidation sweeps.
func Scan(p SynthParams) *Trace {
	p = p.defaults(8192)
	t := &Trace{Meta: synthMeta("synth-scan", p)}
	root := sim.NewRNG(p.Seed ^ 0x5CA7)
	for core := 0; core < p.Cores; core++ {
		rng := root.Fork()
		start := (core * p.Blocks) / p.Cores
		ops := make([]Op, 0, p.OpsPerCore+1)
		for i := 0; i < p.OpsPerCore; i++ {
			blk := (start + i) % p.Blocks
			addr := uint64(synthScanBase + blk*64)
			op := Op{Kind: config.TraceLoad, Addr: addr, Gap: synthGap(rng, p)}
			if i%16 == 15 {
				op.Kind = config.TraceStore
				op.Val = uint64(core)<<32 | uint64(i)
			}
			op.Instrs = op.Gap
			ops = append(ops, op)
		}
		t.Streams = append(t.Streams, Stream{Core: core, Ops: endStream(ops, rng, p)})
	}
	mustValid(t)
	return t
}

// mustValid guards generator invariants: a generator emitting an
// invalid trace is a programming error, not an input error.
func mustValid(t *Trace) {
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("trace: generator produced invalid trace: %v", err))
	}
}
