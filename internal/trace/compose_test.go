package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tsocc"
)

// TestComposeStructure: composing small traces onto a larger core count
// tiles full instances, re-homes streams contiguously, keeps instance
// address spaces disjoint, and is deterministic.
func TestComposeStructure(t *testing.T) {
	p := trace.SynthParams{Cores: 2, OpsPerCore: 32, Seed: 9}
	zipf := trace.Zipf(p)
	migr := trace.Migratory(p)

	out, err := trace.Compose(7, zipf, migr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Meta.Sys.Cores != 7 {
		t.Fatalf("composed geometry has %d cores, want 7", out.Meta.Sys.Cores)
	}
	// 3 two-core instances fit in 7 cores; core 6 stays idle.
	if len(out.Streams) != 6 {
		t.Fatalf("composed trace has %d streams, want 6", len(out.Streams))
	}
	for i, s := range out.Streams {
		if s.Core != i {
			t.Fatalf("stream %d on core %d, want contiguous re-homing", i, s.Core)
		}
	}

	// Instance address spaces must be disjoint: collect per-instance
	// address ranges (instance = core pair) and check they never overlap.
	type rng struct{ lo, hi uint64 }
	ranges := make([]rng, 3)
	for i := range ranges {
		ranges[i].lo = ^uint64(0)
	}
	for _, s := range out.Streams {
		inst := s.Core / 2
		for _, op := range s.Ops {
			if !op.Kind.HasAddr() {
				continue
			}
			if op.Addr < ranges[inst].lo {
				ranges[inst].lo = op.Addr
			}
			if op.Addr > ranges[inst].hi {
				ranges[inst].hi = op.Addr
			}
		}
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].lo <= ranges[i-1].hi {
			t.Fatalf("instance %d address range [%#x,%#x] overlaps instance %d (hi %#x)",
				i, ranges[i].lo, ranges[i].hi, i-1, ranges[i-1].hi)
		}
	}

	// Determinism: same inputs, byte-identical encoding.
	a, err := trace.Encode(out)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := trace.Compose(7, trace.Zipf(p), trace.Migratory(p))
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.Encode(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("composition is not deterministic")
	}

	// Error cases: target too small for one instance, and no parts.
	if _, err := trace.Compose(1, zipf); err == nil {
		t.Fatal("composing a 2-core trace onto 1 core should fail")
	}
	if _, err := trace.Compose(4); err == nil {
		t.Fatal("composing zero parts should fail")
	}
}

// TestComposeReplay: a composed trace replays end-to-end and issues
// exactly instance-count multiples of the source operations — the
// instances are independent, so nothing is lost or double-counted.
func TestComposeReplay(t *testing.T) {
	src := trace.Zipf(trace.SynthParams{Cores: 2, OpsPerCore: 40, Seed: 3})
	var wantLoads, wantStores int64
	for _, s := range src.Streams {
		for _, op := range s.Ops {
			switch op.Kind {
			case config.TraceLoad:
				wantLoads++
			case config.TraceStore:
				wantStores++
			}
		}
	}
	out, err := trace.Compose(6, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := system.Replay(config.Small(6), tsocc.New(config.C12x3()), out)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Loads != 3*wantLoads || rep.Stores != 3*wantStores {
		t.Fatalf("composed replay issued ld=%d st=%d, want ld=%d st=%d",
			rep.Loads, rep.Stores, 3*wantLoads, 3*wantStores)
	}
}
