package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
)

// sampleTrace builds a small trace exercising every op kind, both value
// widths and the address-delta paths (forward and backward).
func sampleTrace() *Trace {
	return &Trace{
		Meta: Meta{
			Protocol: "TSO-CC-4-12-3",
			Workload: "sample",
			Seed:     42,
			Sys:      normalizeSys(config.Small(2)),
		},
		InitMem: []MemWord{{Addr: 0x1000, Val: 7}, {Addr: 0x2000, Val: 1 << 60}},
		Streams: []Stream{
			{Core: 0, Ops: []Op{
				{Kind: config.TraceLoad, Addr: 0x1000, Gap: 1, Instrs: 3},
				{Kind: config.TraceStore, Addr: 0x2000, Val: 99, Gap: 4, Instrs: 5},
				{Kind: config.TraceRMWAdd, Addr: 0x1000, Val: 1, Gap: 2, Instrs: 2},
				{Kind: config.TraceCAS, Addr: 0x1008, Val: 0, Val2: 1, Gap: 0, Instrs: 1},
				{Kind: config.TraceFence, Gap: 6, Instrs: 7},
				{Kind: config.TraceHalt, Gap: 12, Instrs: 13},
			}},
			{Core: 1, Ops: []Op{
				{Kind: config.TraceRMWXchg, Addr: 0x2000, Val: 5, Gap: 9, Instrs: 9},
				{Kind: config.TraceLoad, Addr: 0x1000, Gap: 0, Instrs: 1}, // backward delta
				{Kind: config.TraceHalt, Gap: 1, Instrs: 1},
			}},
		},
	}
}

// encodeV1 emits the legacy version-1 encoding (no run-length markers):
// the generator for decoder coverage of traces written before the v2
// compaction. It mirrors Encode byte for byte apart from the version
// number and the absence of RLE.
func encodeV1(t *Trace) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	e := encoder{buf: make([]byte, 0, 256+16*t.Ops())}
	e.buf = append(e.buf, magic[:]...)
	e.uvarint(formatVersionV1)
	e.str(t.Meta.Protocol)
	e.str(t.Meta.Workload)
	e.uvarint(t.Meta.Seed)
	for _, v := range geometryFields(t.Meta.Sys) {
		e.uvarint(uint64(v))
	}
	e.uvarint(uint64(len(t.InitMem)))
	prevAddr := uint64(0)
	for i, w := range t.InitMem {
		if i == 0 {
			e.uvarint(w.Addr)
		} else {
			e.uvarint(w.Addr - prevAddr)
		}
		prevAddr = w.Addr
		e.uvarint(w.Val)
	}
	e.uvarint(uint64(len(t.Streams)))
	for _, s := range t.Streams {
		e.uvarint(uint64(s.Core))
		e.uvarint(uint64(len(s.Ops)))
		prev := uint64(0)
		for _, op := range s.Ops {
			e.buf = append(e.buf, byte(op.Kind))
			e.uvarint(uint64(op.Gap))
			e.uvarint(uint64(op.Instrs))
			if op.Kind.HasAddr() {
				e.zigzag(int64(op.Addr - prev))
				prev = op.Addr
			}
			if op.Kind.HasVal() {
				e.uvarint(op.Val)
			}
			if op.Kind == config.TraceCAS {
				e.uvarint(op.Val2)
			}
		}
	}
	return e.buf, nil
}

// spinTrace builds a lock-probe-shaped stream: long bursts of identical
// same-address/same-gap loads and CAS probes — the shape v2's RLE
// exists for.
func spinTrace(probes int) *Trace {
	var ops []Op
	for round := 0; round < 4; round++ {
		ops = append(ops, Op{Kind: config.TraceCAS, Addr: 0x1000, Val: 0, Val2: 1, Gap: 3, Instrs: 2})
		for i := 0; i < probes; i++ {
			ops = append(ops, Op{Kind: config.TraceLoad, Addr: 0x1000, Gap: 17, Instrs: 4})
		}
		ops = append(ops, Op{Kind: config.TraceStore, Addr: 0x2000, Val: uint64(round), Gap: 1, Instrs: 2})
	}
	ops = append(ops, Op{Kind: config.TraceHalt, Gap: 1, Instrs: 1})
	return &Trace{
		Meta: Meta{Protocol: "TSO-CC-4-12-3", Workload: "spin",
			Seed: 7, Sys: normalizeSys(config.Small(1))},
		Streams: []Stream{{Core: 0, Ops: ops}},
	}
}

// TestCodecV1Decodes pins backward compatibility: a version-1 encoding
// decodes to the same trace as the version-2 encoding of the same data,
// and a repeat marker inside a version-1 payload is rejected as a bad
// kind (v1 never contained one).
func TestCodecV1Decodes(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), spinTrace(50)} {
		v1, err := encodeV1(tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(v1)
		if err != nil {
			t.Fatalf("decode of v1 encoding: %v", err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatal("v1 decode mismatch")
		}
		v2, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := Decode(v2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, got2) {
			t.Fatal("v1 -> v2 re-encode round trip mismatch")
		}
	}
}

// TestCodecRLECompression checks v2 actually compacts the spin shape:
// the run-length encoding must shrink a probe-heavy stream by an order
// of magnitude relative to v1, and the bytes-per-op headline must drop
// below one.
func TestCodecRLECompression(t *testing.T) {
	tr := spinTrace(200)
	v1, err := encodeV1(tr)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Decode(v2); err != nil || !reflect.DeepEqual(tr, got) {
		t.Fatalf("v2 round trip broken: %v", err)
	}
	if len(v2)*10 > len(v1) {
		t.Fatalf("RLE shrank %d -> %d bytes; want >= 10x on the spin shape", len(v1), len(v2))
	}
	perOp := float64(len(v2)) / float64(tr.Ops())
	if perOp >= 1 {
		t.Fatalf("v2 bytes/op = %.2f on the spin shape, want < 1", perOp)
	}
	t.Logf("spin stream: v1 %d bytes (%.2f B/op), v2 %d bytes (%.2f B/op)",
		len(v1), float64(len(v1))/float64(tr.Ops()), len(v2), perOp)
}

// TestCodecRLEIgnoresUnencodedFields pins the run comparison to the
// wire format: ops differing only in fields their kind never encodes
// (a stray Addr on a fence) must still form a run, keeping
// encode ∘ decode ∘ encode byte-identical.
func TestCodecRLEIgnoresUnencodedFields(t *testing.T) {
	tr := &Trace{
		Meta: Meta{Protocol: "MESI", Workload: "junkfields",
			Seed: 1, Sys: normalizeSys(config.Small(1))},
		Streams: []Stream{{Core: 0, Ops: []Op{
			{Kind: config.TraceFence, Addr: 0x1000, Gap: 2, Instrs: 1},
			{Kind: config.TraceFence, Addr: 0x2000, Gap: 2, Instrs: 1},
			{Kind: config.TraceLoad, Addr: 0x1000, Val: 99, Gap: 3, Instrs: 1},
			{Kind: config.TraceLoad, Addr: 0x1000, Val: 7, Gap: 3, Instrs: 1},
			{Kind: config.TraceHalt, Gap: 1, Instrs: 1},
		}}},
	}
	enc, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encode not byte-identical (%d vs %d bytes): unencoded fields split a run", len(enc), len(enc2))
	}
}

// TestCodecDecodeOpBudget pins the allocation guard: a crafted file
// declaring more total ops than the decoder budget is rejected at the
// count, before any expansion loop runs — RLE decouples op counts from
// input size, so this cap is what stands between a ~20-byte corrupt
// file and a multi-GB allocation.
func TestCodecDecodeOpBudget(t *testing.T) {
	e := encoder{}
	e.buf = append(e.buf, magic[:]...)
	e.uvarint(formatVersion)
	e.str("MESI")
	e.str("evil")
	e.uvarint(1)
	for _, v := range geometryFields(normalizeSys(config.Small(1))) {
		e.uvarint(uint64(v))
	}
	e.uvarint(0)                // initmem count
	e.uvarint(1)                // stream count
	e.uvarint(0)                // core 0
	e.uvarint(maxDecodeOps + 1) // declared ops past the budget
	e.buf = append(e.buf, 0)    // one op would follow...
	_, err := Decode(e.buf)
	if err == nil {
		t.Fatal("decode accepted an op count past the decoder budget")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	orig := sampleTrace()
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("decode mismatch:\n orig: %+v\n got:  %+v", orig, got)
	}
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode not byte-identical: %d vs %d bytes", len(data), len(again))
	}
}

// TestCodecTruncation feeds every strict prefix of a valid encoding to
// the decoder: all must error, none may panic.
func TestCodecTruncation(t *testing.T) {
	data, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte trace", n, len(data))
		}
	}
}

func TestCodecCorruption(t *testing.T) {
	valid, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), valid...)
		if _, err := Decode(mutate(b)); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad version", func(b []byte) []byte { b[magicLen] = 0x7F; return b })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0xAA) })
	corrupt("bad op kind", func(b []byte) []byte {
		// Corrupt the first stream's first op kind byte by scanning for
		// the known kind value after the header; safer: flip every byte
		// position one at a time and require no panic (errors optional).
		return append(b[:len(b)-1], 0xFF)
	})
	// No byte flip anywhere in the file may cause a panic.
	for i := range valid {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xFF
		_, _ = Decode(b) // must not panic; error or sheer luck both fine
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *Trace)
	}{
		{"no halt", func(t *Trace) {
			s := &t.Streams[0]
			s.Ops = s.Ops[:len(s.Ops)-1]
		}},
		{"halt mid-stream", func(t *Trace) {
			s := &t.Streams[0]
			s.Ops[1] = Op{Kind: config.TraceHalt}
		}},
		{"unsorted initmem", func(t *Trace) {
			t.InitMem[0], t.InitMem[1] = t.InitMem[1], t.InitMem[0]
		}},
		{"unaligned op addr", func(t *Trace) {
			t.Streams[0].Ops[0].Addr = 0x1001
		}},
		{"unsorted streams", func(t *Trace) {
			t.Streams[0].Core, t.Streams[1].Core = 1, 0
		}},
		{"core out of range", func(t *Trace) {
			t.Streams[1].Core = t.Meta.Sys.Cores
		}},
		{"empty stream", func(t *Trace) {
			t.Streams[1].Ops = nil
		}},
		{"negative gap", func(t *Trace) {
			t.Streams[0].Ops[0].Gap = -1
		}},
	}
	for _, tc := range cases {
		tr := sampleTrace()
		tc.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid trace", tc.name)
		}
		if _, err := Encode(tr); err == nil {
			t.Errorf("%s: Encode accepted an invalid trace", tc.name)
		}
	}
}

func TestReadWriteFile(t *testing.T) {
	path := t.TempDir() + "/sample.trc"
	orig := sampleTrace()
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("file round trip mismatch")
	}
}
