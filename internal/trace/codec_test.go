package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
)

// sampleTrace builds a small trace exercising every op kind, both value
// widths and the address-delta paths (forward and backward).
func sampleTrace() *Trace {
	return &Trace{
		Meta: Meta{
			Protocol: "TSO-CC-4-12-3",
			Workload: "sample",
			Seed:     42,
			Sys:      normalizeSys(config.Small(2)),
		},
		InitMem: []MemWord{{Addr: 0x1000, Val: 7}, {Addr: 0x2000, Val: 1 << 60}},
		Streams: []Stream{
			{Core: 0, Ops: []Op{
				{Kind: config.TraceLoad, Addr: 0x1000, Gap: 1, Instrs: 3},
				{Kind: config.TraceStore, Addr: 0x2000, Val: 99, Gap: 4, Instrs: 5},
				{Kind: config.TraceRMWAdd, Addr: 0x1000, Val: 1, Gap: 2, Instrs: 2},
				{Kind: config.TraceCAS, Addr: 0x1008, Val: 0, Val2: 1, Gap: 0, Instrs: 1},
				{Kind: config.TraceFence, Gap: 6, Instrs: 7},
				{Kind: config.TraceHalt, Gap: 12, Instrs: 13},
			}},
			{Core: 1, Ops: []Op{
				{Kind: config.TraceRMWXchg, Addr: 0x2000, Val: 5, Gap: 9, Instrs: 9},
				{Kind: config.TraceLoad, Addr: 0x1000, Gap: 0, Instrs: 1}, // backward delta
				{Kind: config.TraceHalt, Gap: 1, Instrs: 1},
			}},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	orig := sampleTrace()
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("decode mismatch:\n orig: %+v\n got:  %+v", orig, got)
	}
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode not byte-identical: %d vs %d bytes", len(data), len(again))
	}
}

// TestCodecTruncation feeds every strict prefix of a valid encoding to
// the decoder: all must error, none may panic.
func TestCodecTruncation(t *testing.T) {
	data, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte trace", n, len(data))
		}
	}
}

func TestCodecCorruption(t *testing.T) {
	valid, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), valid...)
		if _, err := Decode(mutate(b)); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad version", func(b []byte) []byte { b[magicLen] = 0x7F; return b })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0xAA) })
	corrupt("bad op kind", func(b []byte) []byte {
		// Corrupt the first stream's first op kind byte by scanning for
		// the known kind value after the header; safer: flip every byte
		// position one at a time and require no panic (errors optional).
		return append(b[:len(b)-1], 0xFF)
	})
	// No byte flip anywhere in the file may cause a panic.
	for i := range valid {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xFF
		_, _ = Decode(b) // must not panic; error or sheer luck both fine
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *Trace)
	}{
		{"no halt", func(t *Trace) {
			s := &t.Streams[0]
			s.Ops = s.Ops[:len(s.Ops)-1]
		}},
		{"halt mid-stream", func(t *Trace) {
			s := &t.Streams[0]
			s.Ops[1] = Op{Kind: config.TraceHalt}
		}},
		{"unsorted initmem", func(t *Trace) {
			t.InitMem[0], t.InitMem[1] = t.InitMem[1], t.InitMem[0]
		}},
		{"unaligned op addr", func(t *Trace) {
			t.Streams[0].Ops[0].Addr = 0x1001
		}},
		{"unsorted streams", func(t *Trace) {
			t.Streams[0].Core, t.Streams[1].Core = 1, 0
		}},
		{"core out of range", func(t *Trace) {
			t.Streams[1].Core = t.Meta.Sys.Cores
		}},
		{"empty stream", func(t *Trace) {
			t.Streams[1].Ops = nil
		}},
		{"negative gap", func(t *Trace) {
			t.Streams[0].Ops[0].Gap = -1
		}},
	}
	for _, tc := range cases {
		tr := sampleTrace()
		tc.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid trace", tc.name)
		}
		if _, err := Encode(tr); err == nil {
			t.Errorf("%s: Encode accepted an invalid trace", tc.name)
		}
	}
}

func TestReadWriteFile(t *testing.T) {
	path := t.TempDir() + "/sample.trc"
	orig := sampleTrace()
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("file round trip mismatch")
	}
}
