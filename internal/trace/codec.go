package trace

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/sim"
)

// Binary trace format, version 2. All integers are unsigned varints
// (encoding/binary) unless marked zigzag (signed varint). Layout:
//
//	magic     8 bytes "TSOCCTRC"
//	version   uvarint (1 or 2)
//	protocol  string (uvarint length + bytes)
//	workload  string
//	seed      uvarint
//	geometry  12 uvarints: cores, l1size, l1ways, l2tilesize, l2ways,
//	          l1hitlat, l2accesslat, membase, memspread, writebuffer,
//	          meshrows, maxcycles
//	initmem   uvarint count, then per word:
//	            addr   uvarint delta from the previous address
//	                   (strictly ascending; first word is absolute)
//	            value  uvarint
//	streams   uvarint count, then per stream:
//	            core   uvarint (strictly ascending across streams)
//	            ops    uvarint count, then per op record:
//	              kind    1 byte
//	              gap     uvarint
//	              instrs  uvarint
//	              addr    zigzag delta from the stream's previous
//	                      address (ops with an address only)
//	              val     uvarint (store/rmw/cas only)
//	              val2    uvarint (cas only)
//
// Version 2 adds run-length encoding of repeated operations: an op
// record may be followed by a repeat marker
//
//	rle       1 byte 0xFF, then
//	count     uvarint (>= 1)
//
// meaning "the previous op occurs count more times" — same kind,
// address, values, gap and instruction delta. Spin-heavy streams (lock
// probes re-polling one address on a fixed cadence) collapse from one
// record per probe to one record per probe *burst*. The marker byte
// cannot collide with a kind byte (kinds are < config.NumTraceOps), so
// version-1 payloads — which never contain markers — decode unchanged
// through the same loop; the encoder always writes version 2.
//
// The encoding is canonical: runs are maximal, so Encode is a pure
// function of the trace and encode → decode → re-encode is
// byte-identical (FuzzTraceRoundTrip enforces it, over both versions),
// which is what lets the conformance gates diff trace files across
// engine modes and core models directly.
const (
	formatVersion   = 2
	formatVersionV1 = 1 // still decoded; see encodeV1 in codec_test.go
	magicLen        = 8
	rleMarker       = 0xFF

	// maxDecodeOps floors the decoder's total-op budget (see
	// decodeOpBudget) — far above any trace the simulator produces
	// today, and what stands between a ~20-byte corrupt file and a
	// multi-GB allocation.
	maxDecodeOps = 4 << 20
)

// decodeOpBudget is the total op count, across all streams, a decoder
// will expand from an n-byte file: one shared budget (a corrupt file
// cannot multiply a per-stream allowance by a fabricated stream count)
// that scales with input size, so legitimately large traces keep
// decoding — a real capture spends several bytes per op outside its
// RLE runs — while the allocation from a tiny corrupt file stays
// bounded by the maxDecodeOps floor. Encode enforces the same formula
// against its own output, so the codec never produces a file it would
// refuse to read back.
func decodeOpBudget(n int) int {
	if b := 4096 * n; b > maxDecodeOps {
		return b
	}
	return maxDecodeOps
}

var magic = [magicLen]byte{'T', 'S', 'O', 'C', 'C', 'T', 'R', 'C'}

// Encode serializes a validated trace to its canonical binary form.
func Encode(t *Trace) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	sys := t.Meta.Sys
	for _, v := range geometryFields(sys) {
		if v < 0 {
			return nil, fmt.Errorf("trace: negative geometry field in header")
		}
	}
	e := encoder{buf: make([]byte, 0, 256+16*t.Ops())}
	e.buf = append(e.buf, magic[:]...)
	e.uvarint(formatVersion)
	e.str(t.Meta.Protocol)
	e.str(t.Meta.Workload)
	e.uvarint(t.Meta.Seed)
	for _, v := range geometryFields(sys) {
		e.uvarint(uint64(v))
	}
	e.uvarint(uint64(len(t.InitMem)))
	prevAddr := uint64(0)
	for i, w := range t.InitMem {
		if i == 0 {
			e.uvarint(w.Addr)
		} else {
			e.uvarint(w.Addr - prevAddr)
		}
		prevAddr = w.Addr
		e.uvarint(w.Val)
	}
	e.uvarint(uint64(len(t.Streams)))
	for _, s := range t.Streams {
		e.uvarint(uint64(s.Core))
		e.uvarint(uint64(len(s.Ops)))
		prev := uint64(0)
		for i := 0; i < len(s.Ops); {
			op := s.Ops[i]
			e.buf = append(e.buf, byte(op.Kind))
			e.uvarint(uint64(op.Gap))
			e.uvarint(uint64(op.Instrs))
			if op.Kind.HasAddr() {
				e.zigzag(int64(op.Addr - prev))
				prev = op.Addr
			}
			if op.Kind.HasVal() {
				e.uvarint(op.Val)
			}
			if op.Kind == config.TraceCAS {
				e.uvarint(op.Val2)
			}
			// Maximal run of wire-identical ops, emitted as one repeat
			// marker. Maximality keeps the encoding canonical, and the
			// comparison covers exactly the fields the format encodes for
			// this kind — a full struct compare would see fields the wire
			// drops (e.g. a stray Addr on a fence), split the run, and
			// break encode ∘ decode ∘ encode byte-identity.
			run := 0
			for i+1+run < len(s.Ops) && sameWire(s.Ops[i+1+run], op) {
				run++
			}
			if run > 0 {
				e.buf = append(e.buf, rleMarker)
				e.uvarint(uint64(run))
			}
			i += 1 + run
		}
	}
	// Self-check against the decoder's budget (see decodeOpBudget): only
	// a degenerate trace — millions of ops collapsing into a few runs —
	// can trip this, and refusing here beats writing a file no decoder
	// will accept.
	if total := t.Ops(); total > decodeOpBudget(len(e.buf)) {
		return nil, fmt.Errorf("trace: %d total ops exceeds the decode budget for a %d-byte encoding",
			total, len(e.buf))
	}
	return e.buf, nil
}

// sameWire reports whether two ops have identical wire encodings: the
// always-encoded fields plus whichever optional fields a's kind
// serializes. Fields the format drops for this kind are ignored.
func sameWire(a, b Op) bool {
	if a.Kind != b.Kind || a.Gap != b.Gap || a.Instrs != b.Instrs {
		return false
	}
	if a.Kind.HasAddr() && a.Addr != b.Addr {
		return false
	}
	if a.Kind.HasVal() && a.Val != b.Val {
		return false
	}
	if a.Kind == config.TraceCAS && a.Val2 != b.Val2 {
		return false
	}
	return true
}

// geometryFields lists the header's machine-geometry values in encoding
// order.
func geometryFields(sys config.System) [12]int64 {
	return [12]int64{
		int64(sys.Cores), int64(sys.L1Size), int64(sys.L1Ways),
		int64(sys.L2TileSize), int64(sys.L2Ways),
		int64(sys.L1HitLat), int64(sys.L2AccessLat),
		int64(sys.MemBase), int64(sys.MemSpread),
		int64(sys.WriteBuffer), int64(sys.MeshRows), int64(sys.MaxCycles),
	}
}

type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) zigzag(v int64) {
	e.uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decode parses a binary trace. It never panics on malformed input:
// truncated data, corrupt headers, bad varints and structurally invalid
// traces all return errors.
func Decode(data []byte) (*Trace, error) {
	d := decoder{buf: data}
	if len(data) < magicLen || string(data[:magicLen]) != string(magic[:]) {
		return nil, fmt.Errorf("trace: bad magic (not a trace file)")
	}
	d.pos = magicLen
	version, err := d.uvarint("version")
	if err != nil {
		return nil, err
	}
	if version != formatVersion && version != formatVersionV1 {
		return nil, fmt.Errorf("trace: unsupported format version %d (have %d)", version, formatVersion)
	}
	t := &Trace{}
	if t.Meta.Protocol, err = d.str("protocol"); err != nil {
		return nil, err
	}
	if t.Meta.Workload, err = d.str("workload"); err != nil {
		return nil, err
	}
	if t.Meta.Seed, err = d.uvarint("seed"); err != nil {
		return nil, err
	}
	var geo [12]int64
	for i := range geo {
		v, err := d.uvarint("geometry")
		if err != nil {
			return nil, err
		}
		if v > 1<<62 {
			return nil, fmt.Errorf("trace: geometry field %d out of range", i)
		}
		geo[i] = int64(v)
	}
	t.Meta.Sys = config.System{
		Cores: int(geo[0]), L1Size: int(geo[1]), L1Ways: int(geo[2]),
		L2TileSize: int(geo[3]), L2Ways: int(geo[4]),
		L1HitLat: sim.Cycle(geo[5]), L2AccessLat: sim.Cycle(geo[6]),
		MemBase: sim.Cycle(geo[7]), MemSpread: sim.Cycle(geo[8]),
		WriteBuffer: int(geo[9]), MeshRows: int(geo[10]), MaxCycles: sim.Cycle(geo[11]),
	}
	nmem, err := d.count("initmem")
	if err != nil {
		return nil, err
	}
	addr := uint64(0)
	for i := 0; i < nmem; i++ {
		delta, err := d.uvarint("initmem addr")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			addr = delta
		} else {
			next := addr + delta
			if next < addr {
				return nil, fmt.Errorf("trace: init memory address overflow")
			}
			addr = next
		}
		val, err := d.uvarint("initmem value")
		if err != nil {
			return nil, err
		}
		t.InitMem = append(t.InitMem, MemWord{Addr: addr, Val: val})
	}
	nstreams, err := d.count("streams")
	if err != nil {
		return nil, err
	}
	opBudget := decodeOpBudget(len(data))
	for i := 0; i < nstreams; i++ {
		core, err := d.uvarint("stream core")
		if err != nil {
			return nil, err
		}
		if core > 1<<20 {
			return nil, fmt.Errorf("trace: stream core id %d out of range", core)
		}
		// The op count cannot be bounded by the remaining input: run-length
		// markers expand to arbitrarily many ops by design. A decoder-side
		// sanity budget — shared across every stream in the file — keeps
		// corrupt counts from driving huge allocations, and the capacity
		// hint never trusts the count beyond the bytes actually present
		// (append grows as markers expand).
		nopsU, err := d.uvarint("ops")
		if err != nil {
			return nil, err
		}
		if nopsU > uint64(opBudget) {
			return nil, fmt.Errorf("trace: ops count %d exceeds remaining decoder budget %d",
				nopsU, opBudget)
		}
		nops := int(nopsU)
		opBudget -= nops
		capHint := nops
		if rem := len(d.buf) - d.pos; capHint > rem {
			capHint = rem
		}
		s := Stream{Core: int(core), Ops: make([]Op, 0, capHint)}
		prev := uint64(0)
		for j := 0; j < nops; j++ {
			if d.pos >= len(d.buf) {
				return nil, fmt.Errorf("trace: truncated at core %d op %d", core, j)
			}
			if version >= 2 && d.buf[d.pos] == rleMarker {
				// Repeat marker: replicate the previous op. Bounded by the
				// declared op count, so corrupt repeats cannot blow up the
				// allocation.
				d.pos++
				if j == 0 {
					return nil, fmt.Errorf("trace: core %d: repeat marker before any op", core)
				}
				count, err := d.uvarint("op repeat")
				if err != nil {
					return nil, err
				}
				if count < 1 || count > uint64(nops-j) {
					return nil, fmt.Errorf("trace: core %d op %d: repeat count %d exceeds declared ops", core, j, count)
				}
				last := s.Ops[len(s.Ops)-1]
				for k := uint64(0); k < count; k++ {
					s.Ops = append(s.Ops, last)
				}
				j += int(count) - 1
				continue
			}
			op := Op{Kind: config.TraceOp(d.buf[d.pos])}
			d.pos++
			if op.Kind >= config.NumTraceOps {
				return nil, fmt.Errorf("trace: core %d op %d: bad kind %d", core, j, op.Kind)
			}
			gap, err := d.uvarint("op gap")
			if err != nil {
				return nil, err
			}
			instrs, err := d.uvarint("op instrs")
			if err != nil {
				return nil, err
			}
			if gap > 1<<62 || instrs > 1<<62 {
				return nil, fmt.Errorf("trace: core %d op %d: gap/instrs out of range", core, j)
			}
			op.Gap, op.Instrs = int64(gap), int64(instrs)
			if op.Kind.HasAddr() {
				delta, err := d.zigzag("op addr")
				if err != nil {
					return nil, err
				}
				prev += uint64(delta)
				op.Addr = prev
			}
			if op.Kind.HasVal() {
				if op.Val, err = d.uvarint("op val"); err != nil {
					return nil, err
				}
			}
			if op.Kind == config.TraceCAS {
				if op.Val2, err = d.uvarint("op val2"); err != nil {
					return nil, err
				}
			}
			s.Ops = append(s.Ops, op)
		}
		t.Streams = append(t.Streams, s)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("trace: %d trailing bytes after streams", len(d.buf)-d.pos)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: bad or truncated varint (%s) at offset %d", what, d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) zigzag(what string) (int64, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return "", fmt.Errorf("trace: string (%s) length %d exceeds remaining input", what, n)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// count reads an element count and bounds it against the remaining
// input (every element costs at least one byte), so corrupt counts
// cannot drive huge allocations.
func (d *decoder) count(what string) (int, error) {
	n, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return 0, fmt.Errorf("trace: %s count %d exceeds remaining input", what, n)
	}
	return int(n), nil
}

// WriteFile encodes t and writes it to path.
func WriteFile(path string, t *Trace) error {
	data, err := Encode(t)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile reads and decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
