package coherence

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkTimersValPath isolates the L1 hit-path timer sequence:
// schedule one closure-free callback, fire it next cycle.
func BenchmarkTimersValPath(b *testing.B) {
	var tm Timers
	var sink uint64
	cb := func(v uint64) { sink = v }
	now := sim.Cycle(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.AtVal(now+1, cb, uint64(i))
		now++
		tm.Tick(now)
	}
	_ = sink
}
