package coherence

import (
	"testing"

	"repro/internal/config"
)

type fakeProto struct{ name string }

func (p fakeProto) Name() string { return p.name }
func (p fakeProto) Build(config.System, Network, Memory) ([]L1Like, []Controller) {
	return nil, nil
}

// withCleanRegistry runs f against a scratch registry, restoring the
// real one after (protocol packages register through init, so the live
// registry must survive the test).
func withCleanRegistry(t *testing.T, f func()) {
	t.Helper()
	saved := registry
	registry = nil
	defer func() { registry = saved }()
	f()
}

func TestProtocolRegistryOrderAndLookup(t *testing.T) {
	withCleanRegistry(t, func() {
		// Register out of order; enumeration must sort by (order, name).
		RegisterProtocol("beta", 2, func() Protocol { return fakeProto{"beta"} })
		RegisterProtocol("alpha", 1, func() Protocol { return fakeProto{"alpha"} })
		RegisterProtocol("base", 0, func() Protocol { return fakeProto{"base"} })

		names := ProtocolNames()
		if len(names) != 3 || names[0] != "base" || names[1] != "alpha" || names[2] != "beta" {
			t.Fatalf("names = %v", names)
		}
		ps := Protocols()
		if len(ps) != 3 || ps[0].Name() != "base" {
			t.Fatalf("Protocols() = %v", ps)
		}
		p, err := ProtocolByName("alpha")
		if err != nil || p.Name() != "alpha" {
			t.Fatalf("ByName(alpha) = %v, %v", p, err)
		}
		if _, err := ProtocolByName("nope"); err == nil {
			t.Fatal("unknown name did not error")
		}
	})
}

func TestProtocolRegistryDuplicatePanics(t *testing.T) {
	withCleanRegistry(t, func() {
		RegisterProtocol("dup", 0, func() Protocol { return fakeProto{"dup"} })
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate registration did not panic")
			}
		}()
		RegisterProtocol("dup", 1, func() Protocol { return fakeProto{"dup"} })
	})
}
