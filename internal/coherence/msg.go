// Package coherence defines the node naming, message vocabulary and wire
// sizing shared by every coherence protocol in this repository (the MESI
// baseline and all TSO-CC variants). Protocols exchange only these
// messages over the on-chip mesh, so network traffic accounting is
// protocol independent.
package coherence

import "fmt"

// NodeID names a protocol endpoint. L1 controllers (one per core) occupy
// IDs [0, N); the NUCA L2 tiles occupy [N, 2N). L1 i and L2 tile i are
// co-located at mesh router i, matching a tiled CMP floorplan.
type NodeID int

// L1ID returns the NodeID of core i's L1 controller.
func L1ID(core int) NodeID { return NodeID(core) }

// L2ID returns the NodeID of L2 tile t in a system with n cores.
func L2ID(tile, n int) NodeID { return NodeID(n + tile) }

// IsL1 reports whether id names an L1 controller in an n-core system.
func IsL1(id NodeID, n int) bool { return int(id) < n }

// Router returns the mesh router index for id in an n-core system.
func Router(id NodeID, n int) int {
	r := int(id)
	if r >= n {
		r -= n
	}
	return r
}

// MsgType enumerates every coherence message class.
type MsgType uint8

// Message classes. Data-carrying classes occupy BlockFlits flits on the
// wire; all others are single-flit control messages.
const (
	// Requests, L1 -> home L2 tile.
	MsgGetS MsgType = iota // read request
	MsgGetX                // write / RMW request
	MsgPutE                // clean-exclusive eviction notice
	MsgPutM                // dirty eviction, carries data
	MsgPutS                // sharer eviction notice (MESI only)

	// Responses, L2 -> L1.
	MsgDataE   // data, exclusive grant (receiver must Ack)
	MsgDataS   // data, shared
	MsgDataSRO // data, shared read-only (TSO-CC only)
	MsgPutAck  // eviction acknowledged

	// Directory-initiated, L2 -> L1.
	MsgFwdGetS // forward read to current owner
	MsgFwdGetX // forward write to current owner
	MsgInv     // invalidate (MESI sharer inv, TSO-CC recall / SRO bcast)

	// Owner / sharer replies.
	MsgDataOwner // owner -> requester, data
	MsgWBData    // owner -> L2, data writeback on downgrade/recall
	MsgAck       // L1 -> L2 transaction finalization
	MsgInvAck    // invalidation acknowledgement

	// Timestamp maintenance broadcasts (TSO-CC only).
	MsgTSResetL1 // an L1's timestamp source wrapped
	MsgTSResetL2 // an L2 tile's timestamp source wrapped

	// MsgUpgAck is a data-less exclusive upgrade grant (MESI: requester
	// already holds valid Shared data).
	MsgUpgAck

	numMsgTypes
)

var msgNames = [numMsgTypes]string{
	"GetS", "GetX", "PutE", "PutM", "PutS",
	"DataE", "DataS", "DataSRO", "PutAck",
	"FwdGetS", "FwdGetX", "Inv",
	"DataOwner", "WBData", "Ack", "InvAck",
	"TSResetL1", "TSResetL2", "UpgAck",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// CarriesData reports whether messages of this type include a cache block.
func (t MsgType) CarriesData() bool {
	switch t {
	case MsgDataE, MsgDataS, MsgDataSRO, MsgDataOwner, MsgWBData, MsgPutM:
		return true
	}
	return false
}

// Wire sizing, matching the paper's GARNET configuration (Table 2).
const (
	BlockSize  = 64 // bytes per cache block
	BlockShift = 6
	FlitBytes  = 16
	// BlockFlits is the flit count of a data-carrying message:
	// one head/control flit plus the block payload.
	BlockFlits   = 1 + BlockSize/FlitBytes
	ControlFlits = 1
)

// Flits reports the wire size of a message of this type.
func (t MsgType) Flits() int {
	if t.CarriesData() {
		return BlockFlits
	}
	return ControlFlits
}

// Msg is a single coherence message. The generic metadata fields are
// interpreted per protocol; unused fields are zero.
type Msg struct {
	Type MsgType
	Src  NodeID
	Dst  NodeID
	Addr uint64 // block-aligned address
	Data []byte // BlockSize payload for data-carrying messages

	Requestor NodeID // original requester, for forwarded messages
	Owner     NodeID // last writer / owner conveyed in data responses
	AckCount  int    // invalidation acks the receiver should expect
	Dirty     bool   // data modified relative to L2/memory copy
	NoCopy    bool   // WBData: the sender retains no copy (served from its eviction buffer)

	// TSO-CC timestamp metadata.
	TS      uint32 // line timestamp (0 = invalid)
	Epoch   uint8  // epoch-id of the timestamp source
	TSValid bool   // whether TS carries a meaningful timestamp

	// FaultStalls is injector scratch (internal/faults): how many times
	// a pressure-profile stall has deferred this message's TxTable
	// consumption. Zeroed with the rest of the message on pool Put; no
	// protocol logic may read it.
	FaultStalls uint8
}

// BlockAddr masks addr down to its containing block address.
func BlockAddr(addr uint64) uint64 { return addr &^ uint64(BlockSize-1) }

// String renders a short human-readable form, used in traces and tests.
func (m *Msg) String() string {
	return fmt.Sprintf("%s src=%d dst=%d addr=%#x req=%d own=%d ts=%d ep=%d",
		m.Type, m.Src, m.Dst, m.Addr, m.Requestor, m.Owner, m.TS, m.Epoch)
}
