package coherence

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// CorePort is the memory interface an L1 controller presents to its core.
// All calls are non-blocking: they return false when the controller
// cannot accept the request this cycle (the core retries). Completion is
// signalled through the callback, at which point the operation is
// globally ordered per the protocol's rules.
type CorePort interface {
	// Load requests the 8-byte word at addr (8-aligned).
	Load(now sim.Cycle, addr uint64, cb func(val uint64)) bool
	// Store writes the 8-byte word at addr. The callback fires when the
	// write has retired per the protocol (for TSO-CC, when the write's
	// state change has been acknowledged locally, gating the next write).
	Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool
	// RMW atomically applies f to the word at addr and returns the old
	// value. f may decline the write by returning (0, false) — used by
	// compare-and-swap.
	RMW(now sim.Cycle, addr uint64, f func(old uint64) (uint64, bool), cb func(old uint64)) bool
	// Fence performs protocol fence actions (TSO-CC: self-invalidate
	// all Shared lines). The core drains its write buffer first.
	Fence(now sim.Cycle, cb func()) bool
}

// SelfInvCause classifies why a self-invalidation sweep ran (Figures 7/9).
type SelfInvCause int

// Self-invalidation causes, matching the paper's breakdown.
const (
	CauseInvalidTS     SelfInvCause = iota // invalid ts / no table entry / stale epoch
	CauseAcquireNonSRO                     // potential acquire, non-SharedRO response
	CauseAcquireSRO                        // potential acquire, SharedRO response
	CauseFence                             // explicit fence or atomic barrier
	NumSelfInvCauses
)

var causeNames = [NumSelfInvCauses]string{
	"invalid timestamp", "p. acquire (non-SharedRO)", "p. acquire (SharedRO)", "fence",
}

func (c SelfInvCause) String() string { return causeNames[c] }

// L1Stats aggregates the per-L1 event counts from which Figures 5–7 and 9
// are built. The MESI baseline populates only the fields that exist in an
// eager protocol.
type L1Stats struct {
	// Hits, split by line state (Figure 6).
	ReadHitPrivate  stats.Counter // Exclusive / Modified
	ReadHitShared   stats.Counter
	ReadHitSRO      stats.Counter
	WriteHitPrivate stats.Counter

	// Misses, split by the state the line was in (Figure 5).
	ReadMissInvalid  stats.Counter
	ReadMissShared   stats.Counter // Shared access-counter exhaustion (TSO-CC)
	WriteMissInvalid stats.Counter
	WriteMissShared  stats.Counter
	WriteMissSRO     stats.Counter

	// Self-invalidation accounting (Figures 7 and 9).
	DataResponses   stats.Counter // L1 data response messages received
	SelfInvEvents   [NumSelfInvCauses]stats.Counter
	SelfInvLines    stats.Counter // Shared lines actually dropped
	TimestampResets stats.Counter // local timestamp-source wraps

	// Eager-protocol events (MESI).
	InvalidationsReceived stats.Counter

	// RMWLat records issue-to-completion latency of atomic operations
	// (Figure 8).
	RMWLat stats.Latency

	rmwMergeCount int64
	rmwMergeSum   int64
}

// SetNames labels every counter in s with the given prefix (e.g.
// "l1.3"), so the metrics registry can render and sum them by name.
func (s *L1Stats) SetNames(prefix string) {
	s.ReadHitPrivate.SetName(prefix + ".read_hit_private")
	s.ReadHitShared.SetName(prefix + ".read_hit_shared")
	s.ReadHitSRO.SetName(prefix + ".read_hit_sro")
	s.WriteHitPrivate.SetName(prefix + ".write_hit_private")
	s.ReadMissInvalid.SetName(prefix + ".read_miss_invalid")
	s.ReadMissShared.SetName(prefix + ".read_miss_shared")
	s.WriteMissInvalid.SetName(prefix + ".write_miss_invalid")
	s.WriteMissShared.SetName(prefix + ".write_miss_shared")
	s.WriteMissSRO.SetName(prefix + ".write_miss_sro")
	s.DataResponses.SetName(prefix + ".data_responses")
	for i := range s.SelfInvEvents {
		s.SelfInvEvents[i].SetName(prefix + ".selfinv_events." + selfInvSlugs[i])
	}
	s.SelfInvLines.SetName(prefix + ".selfinv_lines")
	s.TimestampResets.SetName(prefix + ".timestamp_resets")
	s.InvalidationsReceived.SetName(prefix + ".invalidations_received")
}

var selfInvSlugs = [NumSelfInvCauses]string{
	"invalid_ts", "acquire_non_sro", "acquire_sro", "fence",
}

// Counters returns every counter in s, for registry registration.
func (s *L1Stats) Counters() []*stats.Counter {
	cs := []*stats.Counter{
		&s.ReadHitPrivate, &s.ReadHitShared, &s.ReadHitSRO, &s.WriteHitPrivate,
		&s.ReadMissInvalid, &s.ReadMissShared,
		&s.WriteMissInvalid, &s.WriteMissShared, &s.WriteMissSRO,
		&s.DataResponses, &s.SelfInvLines, &s.TimestampResets,
		&s.InvalidationsReceived,
	}
	for i := range s.SelfInvEvents {
		cs = append(cs, &s.SelfInvEvents[i])
	}
	return cs
}

// Reads reports total read accesses.
func (s *L1Stats) Reads() int64 {
	return s.ReadHitPrivate.Value() + s.ReadHitShared.Value() + s.ReadHitSRO.Value() +
		s.ReadMissInvalid.Value() + s.ReadMissShared.Value()
}

// Writes reports total write accesses.
func (s *L1Stats) Writes() int64 {
	return s.WriteHitPrivate.Value() +
		s.WriteMissInvalid.Value() + s.WriteMissShared.Value() + s.WriteMissSRO.Value()
}

// Accesses reports total L1 accesses.
func (s *L1Stats) Accesses() int64 { return s.Reads() + s.Writes() }

// Misses reports total L1 misses.
func (s *L1Stats) Misses() int64 {
	return s.ReadMissInvalid.Value() + s.ReadMissShared.Value() +
		s.WriteMissInvalid.Value() + s.WriteMissShared.Value() + s.WriteMissSRO.Value()
}

// SelfInvTotal reports total self-invalidation sweep events.
func (s *L1Stats) SelfInvTotal() int64 {
	var t int64
	for i := range s.SelfInvEvents {
		t += s.SelfInvEvents[i].Value()
	}
	return t
}

// Merge accumulates other into s (for whole-system aggregation).
func (s *L1Stats) Merge(other *L1Stats) {
	s.ReadHitPrivate.Add(other.ReadHitPrivate.Value())
	s.ReadHitShared.Add(other.ReadHitShared.Value())
	s.ReadHitSRO.Add(other.ReadHitSRO.Value())
	s.WriteHitPrivate.Add(other.WriteHitPrivate.Value())
	s.ReadMissInvalid.Add(other.ReadMissInvalid.Value())
	s.ReadMissShared.Add(other.ReadMissShared.Value())
	s.WriteMissInvalid.Add(other.WriteMissInvalid.Value())
	s.WriteMissShared.Add(other.WriteMissShared.Value())
	s.WriteMissSRO.Add(other.WriteMissSRO.Value())
	s.DataResponses.Add(other.DataResponses.Value())
	for i := range s.SelfInvEvents {
		s.SelfInvEvents[i].Add(other.SelfInvEvents[i].Value())
	}
	s.SelfInvLines.Add(other.SelfInvLines.Value())
	s.TimestampResets.Add(other.TimestampResets.Value())
	s.InvalidationsReceived.Add(other.InvalidationsReceived.Value())
	s.rmwMergeCount += other.RMWLat.Count() + other.rmwMergeCount
	s.rmwMergeSum += other.RMWLat.Sum() + other.rmwMergeSum
}

// MeanRMWLatency reports the mean RMW latency across merged stats.
func (s *L1Stats) MeanRMWLatency() float64 {
	count := s.RMWLat.Count() + s.rmwMergeCount
	sum := s.RMWLat.Sum() + s.rmwMergeSum
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}
