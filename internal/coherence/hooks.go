package coherence

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Optional controller hooks, discovered by interface assertion at
// system build time (the same pattern as the TxTable stall hook): a
// controller that implements one inherits the corresponding fault
// profile or oracle without the system layer knowing the protocol.
// All hooks are nil-guarded function fields inside the controllers, so
// a run without faults or checks pays nothing on the hot path.

// EvictFaulter is implemented by L1 controllers that can force their
// own eviction path early (the "evict" fault profile). The hook is
// consulted on accesses that hit a valid, unpinned line; a true return
// makes the controller evict the line through its normal victim
// machinery and take the miss path instead.
type EvictFaulter interface {
	SetEvictFault(f func() bool)
}

// ResetFaulter is implemented by controllers with bounded-timestamp
// state that can roll over early (the "reset-storm" fault profile).
// The hook is consulted at each timestamp assignment; a true return
// forces the controller's reset/rollover broadcast as if the timestamp
// space were exhausted. Protocols without timestamps (MESI) simply
// don't implement the interface.
type ResetFaulter interface {
	SetResetFault(f func() bool)
}

// AckDelayFaulter is implemented by directory controllers that can
// hold back eviction acknowledgements (the "victim" fault profile).
// The hook is consulted when a PutAck is about to be scheduled and
// returns extra cycles to add (0 = on time).
type AckDelayFaulter interface {
	SetAckDelayFault(f func() sim.Cycle)
}

// TransitionReporter is implemented by controllers that report
// per-line state transitions to the protocol-legality oracle. The sink
// is called at every state mutation with the line address and the
// (from, to) state ids — direct hops only, using the protocol's own
// state encodings (0 = invalid/absent). Self-loops are not reported.
type TransitionReporter interface {
	SetTransitionSink(f func(addr uint64, from, to int))
}

// StoragePrewarmer is implemented by controllers whose cache arrays
// materialize lazily (memsys.Cache chunks). Timing harnesses prewarm
// every controller before starting the clock so first-touch chunk
// allocation lands in setup, not the measured run; everything else
// keeps the lazy footprint.
type StoragePrewarmer interface {
	PrewarmStorage()
}

// TxAuditor is implemented by controllers that own a TxTable and can
// arm its continuous lifecycle audit (see TxTable.ArmAudit).
type TxAuditor interface {
	ArmTxAudit(maxAge sim.Cycle, report func(string))
}

// TxDebugger exposes a controller's transaction-table state dump for
// forensic reports.
type TxDebugger interface {
	TxDebug() string
}

// MissLatencyReporter is implemented by L1 controllers that can report
// per-miss issue-to-completion latency to the observability layer. The
// sink is called once per completed miss with whether it was a read and
// how many cycles the request was outstanding. A nil sink (the default)
// leaves the hot path untouched.
type MissLatencyReporter interface {
	SetMissLatencySink(f func(read bool, cycles sim.Cycle))
}

// TxObserver is implemented by directory controllers that own a TxTable
// and can forward its transaction lifecycle to the observability layer:
// lat receives each transaction's birth-to-death latency, span receives
// begin/end edges (see TxTable.SetObsSinks). Either may be nil.
type TxObserver interface {
	SetTxObs(lat func(cycles sim.Cycle), span func(begin bool, now sim.Cycle, addr uint64, kind int))
}

// TxKindNamer optionally names a directory controller's transaction
// kinds for timeline span labels (protocol state terms, e.g.
// "await-acks"). Controllers without it get numeric kinds.
type TxKindNamer interface {
	TxKindName(kind int) string
}

// ObsCounterProvider is implemented by components that expose named
// event counters for metrics-registry registration. Every returned
// counter must carry a name (stats.Counter.SetName) — the registry's
// unnamed-counter test enforces this.
type ObsCounterProvider interface {
	ObsCounters() []*stats.Counter
}
