package coherence

import "fmt"

// MsgPool is a free-list allocator for coherence messages, eliminating
// steady-state allocation on the message path. Simulations are
// single-goroutine, so the pool is deliberately unsynchronized.
//
// Ownership discipline: the sender obtains a message with Get (or lets a
// helper like NewMsg fill it), the network delivers it, and the final
// receiver returns it with Put once the message can no longer be
// referenced — immediately after handling for messages consumed inline,
// or at transaction completion for requests a directory retains. Putting
// a message twice, or using it after Put, corrupts the simulation; the
// pool zeroes returned messages so stale reads fail loudly rather than
// leaking old field values.
//
// Messages allocated outside the pool (tests, tools) may be handed to
// Put as well; the pool adopts them.
type MsgPool struct {
	free []*Msg

	// Gets/News/Puts count pool traffic: News is the number of Gets that
	// had to allocate (after warm-up it stops growing); Puts counts
	// returns, so Gets-Puts is the number of live pooled messages.
	Gets int64
	News int64
	Puts int64
}

// Get returns a zeroed message. The Data slice of a recycled message
// keeps its capacity (len 0), so refilling a block payload does not
// reallocate.
func (p *MsgPool) Get() *Msg {
	p.Gets++
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return m
	}
	p.News++
	return &Msg{}
}

// NewFrom returns a pooled message stamped from tmpl, with the payload
// copied from data (tmpl.Data is ignored). The recycled buffer's
// capacity is preserved across the struct copy, so refills do not
// reallocate. This is the one place that knows the buffer-preserving
// stamp dance; senders must not hand-roll it.
func (p *MsgPool) NewFrom(tmpl Msg, data []byte) *Msg {
	m := p.Get()
	buf := m.Data
	*m = tmpl
	m.Data = buf
	m.SetData(data)
	return m
}

// Put recycles m. The caller must hold the only live reference.
func (p *MsgPool) Put(m *Msg) {
	if m == nil {
		return
	}
	p.Puts++
	data := m.Data[:0]
	*m = Msg{}
	m.Data = data
	p.free = append(p.free, m)
}

// Live reports the number of messages currently checked out of the pool.
func (p *MsgPool) Live() int64 { return p.Gets - p.Puts }

// LeakCheck returns an error if any pooled message is still live. On a
// quiesced system every message has been consumed and returned (the
// TxTable ownership discipline), so integration tests call this after a
// run to catch ownership bugs that would otherwise surface as silent
// pool growth.
func (p *MsgPool) LeakCheck() error {
	if live := p.Live(); live != 0 {
		return fmt.Errorf("coherence: MsgPool leak: %d message(s) not returned (gets=%d puts=%d)",
			live, p.Gets, p.Puts)
	}
	return nil
}

// SetData fills m's payload with a copy of src, reusing m's buffer
// capacity when possible.
func (m *Msg) SetData(src []byte) {
	m.Data = append(m.Data[:0], src...)
}
