package coherence

import "math/bits"

// MaxCores is the widest machine the fixed-width core bit-sets support.
// It bounds protocols that keep a full per-core sharing vector (MESI);
// TSO-CC's directory state is coarse (log2(cores) bits) and timestamped
// and does not consume a CoreSet per line.
const MaxCores = 256

// CoreSet is a fixed-width bit-set over core ids [0, MaxCores). It is a
// value type sized for embedding in directory line metadata: four words,
// no pointers, so cache arrays holding it stay off the GC scan path.
type CoreSet [4]uint64

// Add inserts core c.
func (s *CoreSet) Add(c int) { s[c>>6] |= 1 << (uint(c) & 63) }

// Remove deletes core c.
func (s *CoreSet) Remove(c int) { s[c>>6] &^= 1 << (uint(c) & 63) }

// Has reports whether core c is in the set.
func (s *CoreSet) Has(c int) bool { return s[c>>6]&(1<<(uint(c)&63)) != 0 }

// Empty reports whether no core is in the set.
func (s *CoreSet) Empty() bool { return s[0]|s[1]|s[2]|s[3] == 0 }

// Count reports the number of cores in the set.
func (s *CoreSet) Count() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}
