package coherence

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// txHarness binds a TxTable to a scripted handler.
type txHarness struct {
	pool    MsgPool
	txs     TxTable
	handler func(now sim.Cycle, m *Msg)
	handled []*Msg
}

func newTxHarness() *txHarness {
	h := &txHarness{}
	h.txs.Init(&h.pool, func(now sim.Cycle, m *Msg) {
		h.handled = append(h.handled, m)
		if h.handler != nil {
			h.handler(now, m)
		}
	})
	return h
}

func TestTxTableLifecycle(t *testing.T) {
	h := newTxHarness()
	req := h.pool.Get()
	req.Addr = 0x40

	tx := h.txs.New(0x40, 1, req, 2)
	if !h.txs.BusyLine(0x40) || h.txs.BusyLine(0x80) {
		t.Fatal("BusyLine wrong")
	}
	got, ok := h.txs.Get(0x40)
	if !ok || got != tx || got.Req != req || got.AcksLeft != 2 {
		t.Fatalf("Get returned %+v", got)
	}
	if !h.txs.Outstanding() {
		t.Fatal("open transaction not outstanding")
	}
	h.txs.Del(0x40, tx, true)
	if h.txs.Outstanding() {
		t.Fatal("still outstanding after Del")
	}
	if h.pool.Live() != 0 {
		t.Fatalf("retained request leaked: live=%d", h.pool.Live())
	}
	// The record is recycled through the free list.
	tx2 := h.txs.New(0x80, 2, nil, 0)
	if tx2 != tx {
		t.Fatal("transaction record not recycled")
	}
	if tx2.NextOwner != 0 || tx2.IsUpgrade {
		t.Fatal("recycled record not cleared")
	}
	h.txs.Del(0x80, tx2, true)
}

// TestTxTableConsumeRecycles: a message the handler does not retain goes
// straight back to the pool; a retained one survives until its
// transaction retires.
func TestTxTableConsumeRecycles(t *testing.T) {
	h := newTxHarness()

	m1 := h.pool.Get()
	h.txs.Consume(1, m1)
	if h.pool.Live() != 0 {
		t.Fatalf("unretained message not recycled: live=%d", h.pool.Live())
	}

	m2 := h.pool.Get()
	m2.Addr = 0x100
	h.handler = func(now sim.Cycle, m *Msg) { h.txs.New(m.Addr, 1, m, 0) }
	h.txs.Consume(2, m2)
	if h.pool.Live() != 1 {
		t.Fatalf("retained message recycled early: live=%d", h.pool.Live())
	}
	tx, _ := h.txs.Get(0x100)
	h.handler = nil
	h.txs.Del(0x100, tx, true)
	if err := h.pool.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestTxTableWaitingAndRetry: parked messages re-dispatch in arrival
// order, and the nested-consumption save/restore keeps an outer retained
// flag intact while waiters drain.
func TestTxTableWaitingAndRetry(t *testing.T) {
	h := newTxHarness()
	mk := func(addr uint64, req NodeID) *Msg {
		m := h.pool.Get()
		m.Addr, m.Requestor = addr, req
		return m
	}

	// Open a transaction, park two waiters behind it.
	h.handler = func(now sim.Cycle, m *Msg) {
		if h.txs.BusyLine(m.Addr) {
			h.txs.EnqueueWaiting(m)
		}
	}
	h.txs.New(0x40, 1, nil, 0)
	h.txs.Consume(1, mk(0x40, 7))
	h.txs.Consume(1, mk(0x40, 8))
	if h.pool.Live() != 2 {
		t.Fatalf("waiters not retained: live=%d", h.pool.Live())
	}

	// Retire the transaction; waiters drain in arrival order and recycle.
	tx, _ := h.txs.Get(0x40)
	h.txs.Del(0x40, tx, true)
	var order []NodeID
	h.handler = func(now sim.Cycle, m *Msg) { order = append(order, m.Requestor) }
	h.txs.DrainWaiting(2, 0x40)
	if len(order) != 2 || order[0] != 7 || order[1] != 8 || h.pool.Live() != 0 {
		t.Fatalf("waiters drained wrong: order=%v live=%d", order, h.pool.Live())
	}

	// Retry queue: enqueued messages re-dispatch on the next Drain, and
	// a handler re-retrying does not corrupt the in-flight batch.
	retries := 0
	h.handler = func(now sim.Cycle, m *Msg) {
		if retries == 0 {
			retries++
			h.txs.EnqueueRetry(m)
		}
	}
	h.txs.EnqueueRetry(mk(0x80, 9))
	if !h.txs.QueuedWork() {
		t.Fatal("retry not queued")
	}
	h.txs.Drain(3) // first pass re-enqueues
	h.txs.Drain(4) // second pass consumes
	if h.txs.QueuedWork() || h.pool.Live() != 0 {
		t.Fatalf("retry not settled: queued=%v live=%d", h.txs.QueuedWork(), h.pool.Live())
	}
}

// TestTxTableInboxDrain: delivered messages consume in arrival order.
func TestTxTableInboxDrain(t *testing.T) {
	h := newTxHarness()
	var order []uint64
	h.handler = func(now sim.Cycle, m *Msg) { order = append(order, m.Addr) }
	for i := uint64(1); i <= 3; i++ {
		m := h.pool.Get()
		m.Addr = i * 0x40
		h.txs.Deliver(m)
	}
	if !h.txs.QueuedWork() || !h.txs.Outstanding() {
		t.Fatal("inbox not visible")
	}
	h.txs.Drain(1)
	if len(order) != 3 || order[0] != 0x40 || order[1] != 0x80 || order[2] != 0xc0 {
		t.Fatalf("inbox order %v", order)
	}
	if err := h.pool.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestTxTableLifecycleAudit: LiveTx tracks births vs retirements, and
// the armed audit reports an over-age transaction (re-arming so a
// still-stuck one re-reports once per age window, not every sweep),
// while retired transactions never report.
func TestTxTableLifecycleAudit(t *testing.T) {
	h := newTxHarness()
	var reports []string
	h.txs.SetLabel("test.l2")
	h.txs.ArmAudit(100, func(msg string) { reports = append(reports, msg) })

	h.txs.Drain(1) // anchors lastNow so births stamp cycle 1
	txA := h.txs.New(0x40, 3, nil, 0)
	h.txs.New(0x80, 4, nil, 0)
	if live := h.txs.LiveTx(); live != 2 {
		t.Fatalf("LiveTx = %d, want 2", live)
	}

	// Retire one young: it must never be reported.
	h.txs.Del(0x40, txA, true)
	if live := h.txs.LiveTx(); live != 1 {
		t.Fatalf("LiveTx after Del = %d, want 1", live)
	}

	// Age past maxAge: exactly the stuck transaction reports, with its
	// address, kind, and age.
	h.txs.Drain(150)
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want exactly one", reports)
	}
	if !strings.Contains(reports[0], "0x80") || !strings.Contains(reports[0], "kind=4") {
		t.Fatalf("report %q does not name the stuck transaction", reports[0])
	}

	// The birth re-armed at 150: a sweep shortly after stays quiet, and
	// another full age window later it re-reports.
	h.txs.Drain(200)
	if len(reports) != 1 {
		t.Fatalf("re-reported before a full age window: %v", reports)
	}
	h.txs.Drain(300)
	if len(reports) != 2 {
		t.Fatalf("stuck transaction did not re-report: %v", reports)
	}

	txB, _ := h.txs.Get(0x80)
	h.txs.Del(0x80, txB, true)
	if live := h.txs.LiveTx(); live != 0 {
		t.Fatalf("LiveTx after full retirement = %d", live)
	}
	h.txs.Drain(500)
	if len(reports) != 2 {
		t.Fatalf("retired transaction reported: %v", reports)
	}
}

func TestMsgPoolLeakCheck(t *testing.T) {
	var p MsgPool
	m := p.Get()
	if err := p.LeakCheck(); err == nil {
		t.Fatal("live message not reported as leak")
	}
	p.Put(m)
	if err := p.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if p.Live() != 0 {
		t.Fatalf("live = %d", p.Live())
	}
}
