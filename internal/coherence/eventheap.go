package coherence

import "repro/internal/sim"

// EventItem is one entry of an EventHeap: a payload ordered by
// (Cycle, Seq). Seq breaks same-cycle ties deterministically — either a
// caller-supplied sequence (the mesh's global send order) or the heap's
// own push order (timers).
type EventItem[T any] struct {
	Cycle sim.Cycle
	Seq   uint64
	Item  T
}

// EventHeap is the shared (cycle, seq) binary min-heap used by every
// time-ordered store in the simulator: controller timers and the mesh
// calendar queue's overflow region. It is generic over a concrete
// payload type — no interface boxing — so pushing and popping allocate
// nothing in steady state (the backing slice is reused after pops).
type EventHeap[T any] struct {
	h       []EventItem[T]
	autoSeq uint64
}

// Push inserts item at cycle c with an explicit tie-break sequence.
// The body is kept small enough to inline: sifting only happens when
// the new item does not already belong at the end (the common hot-path
// case is a near-empty heap, where append is the whole cost).
func (eh *EventHeap[T]) Push(c sim.Cycle, seq uint64, item T) {
	eh.h = append(eh.h, EventItem[T]{Cycle: c, Seq: seq, Item: item})
	if i := len(eh.h) - 1; i > 0 && eh.less(i, (i-1)/2) {
		eh.siftUp(i)
	}
}

// PushAuto inserts item at cycle c, tie-broken by push order: same-cycle
// items pop in the order they were pushed.
func (eh *EventHeap[T]) PushAuto(c sim.Cycle, item T) {
	seq := eh.autoSeq
	eh.autoSeq++
	eh.Push(c, seq, item)
}

func (eh *EventHeap[T]) less(i, j int) bool {
	a, b := &eh.h[i], &eh.h[j]
	if a.Cycle != b.Cycle {
		return a.Cycle < b.Cycle
	}
	return a.Seq < b.Seq
}

func (eh *EventHeap[T]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !eh.less(i, p) {
			break
		}
		eh.h[i], eh.h[p] = eh.h[p], eh.h[i]
		i = p
	}
}

// Pop removes and returns the earliest (cycle, seq) item. It panics on
// an empty heap. The vacated slot is zeroed so popped payloads drop any
// pointer references (callbacks, messages) they held.
func (eh *EventHeap[T]) Pop() EventItem[T] {
	top := eh.h[0]
	eh.DropMin()
	return top
}

// DropMin removes the earliest item without returning it. Callers that
// already read the head through MinItem use this to avoid copying the
// payload out of the heap a second time.
func (eh *EventHeap[T]) DropMin() {
	n := len(eh.h) - 1
	eh.h[0] = eh.h[n]
	eh.h[n] = EventItem[T]{}
	eh.h = eh.h[:n]
	if n > 1 {
		eh.siftDown(n)
	}
}

func (eh *EventHeap[T]) siftDown(n int) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && eh.less(l, s) {
			s = l
		}
		if r < n && eh.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		eh.h[i], eh.h[s] = eh.h[s], eh.h[i]
		i = s
	}
}

// Min reports the earliest scheduled cycle without popping.
func (eh *EventHeap[T]) Min() (sim.Cycle, bool) {
	if len(eh.h) == 0 {
		return 0, false
	}
	return eh.h[0].Cycle, true
}

// MinItem returns a pointer to the earliest item (valid until the next
// heap mutation), letting callers inspect the head without copying.
func (eh *EventHeap[T]) MinItem() *EventItem[T] {
	if len(eh.h) == 0 {
		return nil
	}
	return &eh.h[0]
}

// Len reports the number of scheduled items.
func (eh *EventHeap[T]) Len() int { return len(eh.h) }

// Scan visits every item in heap (not chronological) order —
// diagnostics only.
func (eh *EventHeap[T]) Scan(f func(c sim.Cycle, item *T)) {
	for i := range eh.h {
		f(eh.h[i].Cycle, &eh.h[i].Item)
	}
}
