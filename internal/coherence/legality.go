package coherence

import (
	"fmt"
	"strconv"
)

// Edge is one directed state transition (From → To) in a controller's
// state machine. State ids are the protocol's own compact encodings;
// id 0 is the invalid/absent state by convention in both L1s and L2
// directories.
type Edge struct{ From, To int }

// StateTable is the legality table for one controller class: the named
// states and the set of transitions the protocol's specification
// allows. Transitions are reported at mutation time (every edge is a
// direct hop, never a composite), so Edges is exact — an unlisted edge
// is a protocol bug, not a gap in the table.
type StateTable struct {
	Names map[int]string
	Edges map[Edge]bool
}

// Legal reports whether from → to is an allowed transition. Self-loops
// are never reported by controllers, so they need no table entries.
func (t *StateTable) Legal(from, to int) bool { return t.Edges[Edge{from, to}] }

// Allow adds from → to edges for every listed destination (table
// construction sugar for the protocols' init functions).
func (t *StateTable) Allow(from int, tos ...int) {
	for _, to := range tos {
		t.Edges[Edge{from, to}] = true
	}
}

// Name renders a state id for violation messages.
func (t *StateTable) Name(s int) string {
	if n, ok := t.Names[s]; ok {
		return n
	}
	return "state" + strconv.Itoa(s)
}

// Legality is a protocol's registered state-transition specification:
// one table for its L1 controllers, one for its L2 directory
// controllers. Protocols register it alongside their Protocol factory
// (RegisterLegality from the same init function) so the legality
// oracle in internal/check can arm itself for any protocol resolved by
// name.
type Legality struct {
	L1, L2 StateTable
}

var legalities = map[string]*Legality{}

// RegisterLegality records the legality tables for a registered
// protocol name. Presets that share a state machine may register the
// same *Legality under each preset name. A duplicate name panics, like
// RegisterProtocol.
func RegisterLegality(proto string, l *Legality) {
	if _, dup := legalities[proto]; dup {
		panic(fmt.Sprintf("coherence: legality for %q registered twice", proto))
	}
	legalities[proto] = l
}

// LegalityByName returns the legality tables registered for a protocol
// name, or nil if the protocol never registered any (the oracle then
// has nothing to check).
func LegalityByName(proto string) *Legality { return legalities[proto] }
