package coherence

import "repro/internal/sim"

// Controller is the engine-facing interface of any coherence endpoint
// (L1 or L2). Deliver is the mesh endpoint hook; Busy reports whether
// transactions, queued messages or timers are still outstanding (used by
// the system-level completion and deadlock checks); NextWake is the
// sim.WakeHinter scheduling contract (the earliest cycle the controller
// may act on its own, or sim.WakeNever); BindWaker is the sim.WakeSink
// hook — controllers must wake themselves whenever work lands on them
// from outside their own Tick (a delivered message, a timer scheduled
// by the core's port call), since the wake-set engine ticks only due
// components and re-polls NextWake only after a tick.
type Controller interface {
	Deliver(now sim.Cycle, m *Msg)
	Tick(now sim.Cycle)
	NextWake(now sim.Cycle) sim.Cycle
	BindWaker(w sim.Waker)
	Busy() bool
	// SnoopBlock returns the controller's copy of the block at addr if it
	// holds an authoritative one (L1: Exclusive/Modified; L2: any valid
	// line). Used after a run completes so functional checks observe the
	// freshest value without forcing writebacks.
	SnoopBlock(addr uint64) ([]byte, bool)
}

// L1Like is the full interface of a private-cache controller: a
// Controller that also serves its core's memory operations and exposes
// the standard statistics block.
type L1Like interface {
	Controller
	CorePort
	L1Stats() *L1Stats
}
