//go:build txdebug

package coherence

// txDebug enables the TxTable lifecycle assertions (see txdebug_off.go).
const txDebug = true
