package coherence

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/sim"
)

// Network is the interconnect surface a protocol builds against: message
// injection plus the message free lists. Implemented by mesh.Network;
// controllers hold this interface so protocol packages depend only on
// the coherence layer, not on the mesh model. Controllers must draw
// messages from MsgPoolFor(tile) for their own tile — under a sharded
// engine each shard's tiles share a private pool, keeping the
// allocation fast path unsynchronized; in single-threaded mode every
// tile maps to the one shared pool (MsgPool).
type Network interface {
	Send(now sim.Cycle, m *Msg)
	MsgPool() *MsgPool
	MsgPoolFor(tile int) *MsgPool
}

// Memory is the backing-store surface protocols fill from and write back
// to. Implemented by memsys.Memory.
type Memory interface {
	Latency(addr uint64) sim.Cycle
	ReadBlock(addr uint64, dst []byte)
	WriteBlock(addr uint64, src []byte)
}

// Protocol builds the coherence machinery for a system configuration:
// one L1 controller per core and one directory (L2) controller per tile.
// Implementations register themselves with RegisterProtocol so systems,
// harnesses and CLIs resolve protocols by name instead of hard-coding
// the known set.
type Protocol interface {
	Name() string
	Build(sys config.System, net Network, mem Memory) ([]L1Like, []Controller)
}

// registryEntry pairs a factory with its plotting order.
type registryEntry struct {
	name    string
	order   int
	factory func() Protocol
}

var registry []registryEntry

// RegisterProtocol adds a protocol factory under a unique name. The
// order key sorts Protocols()/ProtocolNames() deterministically (the
// paper's plotting order) regardless of package-init sequence; ties
// break by name. Called from protocol package init functions; a
// duplicate name panics.
func RegisterProtocol(name string, order int, factory func() Protocol) {
	for _, e := range registry {
		if e.name == name {
			panic(fmt.Sprintf("coherence: protocol %q registered twice", name))
		}
	}
	registry = append(registry, registryEntry{name: name, order: order, factory: factory})
	sort.SliceStable(registry, func(i, j int) bool {
		if registry[i].order != registry[j].order {
			return registry[i].order < registry[j].order
		}
		return registry[i].name < registry[j].name
	})
}

// ProtocolByName instantiates the registered protocol with that name.
func ProtocolByName(name string) (Protocol, error) {
	for _, e := range registry {
		if e.name == name {
			return e.factory(), nil
		}
	}
	return nil, fmt.Errorf("coherence: unknown protocol %q (registered: %v)", name, ProtocolNames())
}

// ProtocolNames lists every registered protocol name in order.
func ProtocolNames() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

// Protocols instantiates every registered protocol in order.
func Protocols() []Protocol {
	out := make([]Protocol, len(registry))
	for i, e := range registry {
		out[i] = e.factory()
	}
	return out
}
