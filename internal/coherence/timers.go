package coherence

import "repro/internal/sim"

// timerKind selects which of an event's callback shapes fires. The
// split exists so the hot paths (L1 hit completions) can schedule a
// pre-existing callback value with a payload instead of allocating a
// fresh closure per operation.
type timerKind uint8

const (
	timerFn   timerKind = iota // fn(now)
	timerVal                   // valCb(val)
	timerDone                  // doneCb()
	timerMsg                   // msgCb(now, msg)
)

type timerEvent struct {
	kind  timerKind
	val   uint64
	msg   *Msg
	fn    func(now sim.Cycle)
	valCb func(val uint64)
	done  func()
	msgCb func(now sim.Cycle, m *Msg)
}

// Timers schedules deferred actions inside a controller (array access
// latencies, memory fills). Actions scheduled for the same cycle run in
// scheduling order, keeping controllers deterministic. The store is the
// shared EventHeap ordered by (cycle, scheduling sequence), so the
// earliest deadline is exposed in O(1) for the engine's wake hints and
// firing is allocation-free in steady state.
//
// Every scheduled action also wakes the owning controller at its due
// cycle through the bound sim.Waker: timers are frequently pushed from
// outside the owner's own Tick (an L1 hit scheduled during the core's
// tick), and under wake-set scheduling the engine will not re-poll the
// owner's NextWake until it next ticks.
type Timers struct {
	heap  EventHeap[timerEvent]
	waker sim.Waker
}

// SetWaker binds the owning controller's wake handle; every subsequent
// schedule marks the owner due at the action's cycle.
func (t *Timers) SetWaker(w sim.Waker) { t.waker = w }

// At schedules f to run at cycle c (or the next tick if c is in the past).
func (t *Timers) At(c sim.Cycle, f func(now sim.Cycle)) {
	t.heap.PushAuto(c, timerEvent{kind: timerFn, fn: f})
	t.waker.WakeAt(c)
}

// AtVal schedules cb(val) at cycle c. Unlike At with a capturing
// closure, this allocates nothing: cb is an existing callback value and
// val rides in the event.
func (t *Timers) AtVal(c sim.Cycle, cb func(val uint64), val uint64) {
	t.heap.PushAuto(c, timerEvent{kind: timerVal, valCb: cb, val: val})
	t.waker.WakeAt(c)
}

// AtDone schedules cb() at cycle c without allocating.
func (t *Timers) AtDone(c sim.Cycle, cb func()) {
	t.heap.PushAuto(c, timerEvent{kind: timerDone, done: cb})
	t.waker.WakeAt(c)
}

// AtMsg schedules cb(now, m) at cycle c without allocating (cb should be
// a callback value stored once by the controller, e.g. its send method).
func (t *Timers) AtMsg(c sim.Cycle, cb func(now sim.Cycle, m *Msg), m *Msg) {
	t.heap.PushAuto(c, timerEvent{kind: timerMsg, msgCb: cb, msg: m})
	t.waker.WakeAt(c)
}

// Tick runs every action due at or before now, in (cycle, scheduling)
// order.
func (t *Timers) Tick(now sim.Cycle) {
	for {
		it := t.heap.MinItem()
		if it == nil || it.Cycle > now {
			return
		}
		// Copy the payload out before dropping the slot: the callback may
		// schedule new timers, which reuses the heap storage.
		ev := it.Item
		t.heap.DropMin()
		switch ev.kind {
		case timerFn:
			ev.fn(now)
		case timerVal:
			ev.valCb(ev.val)
		case timerDone:
			ev.done()
		case timerMsg:
			ev.msgCb(now, ev.msg)
		}
	}
}

// NextDue reports the earliest scheduled cycle (engine wake hint).
func (t *Timers) NextDue() (sim.Cycle, bool) { return t.heap.Min() }

// Pending reports the number of scheduled actions (deadlock diagnostics).
func (t *Timers) Pending() int { return t.heap.Len() }

// DueCycles lists the cycles with scheduled actions (diagnostics).
func (t *Timers) DueCycles() []sim.Cycle {
	var out []sim.Cycle
	t.heap.Scan(func(c sim.Cycle, _ *timerEvent) { out = append(out, c) })
	return out
}
