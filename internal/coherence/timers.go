package coherence

import "repro/internal/sim"

// timerKind selects which of an event's callback shapes fires. The
// split exists so the hot paths (L1 hit completions) can schedule a
// pre-existing callback value with a payload instead of allocating a
// fresh closure per operation.
type timerKind uint8

const (
	timerFn   timerKind = iota // fn(now)
	timerVal                   // valCb(val)
	timerDone                  // doneCb()
	timerMsg                   // msgCb(now, msg)
)

type timerEvent struct {
	cycle sim.Cycle
	seq   uint64
	kind  timerKind
	val   uint64
	msg   *Msg
	fn    func(now sim.Cycle)
	valCb func(val uint64)
	done  func()
	msgCb func(now sim.Cycle, m *Msg)
}

// Timers schedules deferred actions inside a controller (array access
// latencies, memory fills). Actions scheduled for the same cycle run in
// scheduling order, keeping controllers deterministic. The store is a
// binary min-heap ordered by (cycle, scheduling sequence), so the
// earliest deadline is exposed in O(1) for the engine's idle-skip
// scheduling and firing is allocation-free in steady state.
type Timers struct {
	heap []timerEvent
	seq  uint64
}

func (t *Timers) push(ev timerEvent) {
	ev.seq = t.seq
	t.seq++
	t.heap = append(t.heap, ev)
	i := len(t.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(i, p) {
			break
		}
		t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
		i = p
	}
}

func (t *Timers) less(i, j int) bool {
	a, b := &t.heap[i], &t.heap[j]
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

func (t *Timers) pop() timerEvent {
	top := t.heap[0]
	n := len(t.heap) - 1
	t.heap[0] = t.heap[n]
	t.heap[n] = timerEvent{} // drop callback refs
	t.heap = t.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && t.less(l, s) {
			s = l
		}
		if r < n && t.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		t.heap[i], t.heap[s] = t.heap[s], t.heap[i]
		i = s
	}
	return top
}

// At schedules f to run at cycle c (or the next tick if c is in the past).
func (t *Timers) At(c sim.Cycle, f func(now sim.Cycle)) {
	t.push(timerEvent{cycle: c, kind: timerFn, fn: f})
}

// AtVal schedules cb(val) at cycle c. Unlike At with a capturing
// closure, this allocates nothing: cb is an existing callback value and
// val rides in the event.
func (t *Timers) AtVal(c sim.Cycle, cb func(val uint64), val uint64) {
	t.push(timerEvent{cycle: c, kind: timerVal, valCb: cb, val: val})
}

// AtDone schedules cb() at cycle c without allocating.
func (t *Timers) AtDone(c sim.Cycle, cb func()) {
	t.push(timerEvent{cycle: c, kind: timerDone, done: cb})
}

// AtMsg schedules cb(now, m) at cycle c without allocating (cb should be
// a callback value stored once by the controller, e.g. its send method).
func (t *Timers) AtMsg(c sim.Cycle, cb func(now sim.Cycle, m *Msg), m *Msg) {
	t.push(timerEvent{cycle: c, kind: timerMsg, msgCb: cb, msg: m})
}

// Tick runs every action due at or before now, in (cycle, scheduling)
// order.
func (t *Timers) Tick(now sim.Cycle) {
	for len(t.heap) > 0 && t.heap[0].cycle <= now {
		ev := t.pop()
		switch ev.kind {
		case timerFn:
			ev.fn(now)
		case timerVal:
			ev.valCb(ev.val)
		case timerDone:
			ev.done()
		case timerMsg:
			ev.msgCb(now, ev.msg)
		}
	}
}

// NextDue reports the earliest scheduled cycle (engine wake hint).
func (t *Timers) NextDue() (sim.Cycle, bool) {
	if len(t.heap) == 0 {
		return 0, false
	}
	return t.heap[0].cycle, true
}

// Pending reports the number of scheduled actions (deadlock diagnostics).
func (t *Timers) Pending() int { return len(t.heap) }

// DueCycles lists the cycles with scheduled actions (diagnostics).
func (t *Timers) DueCycles() []sim.Cycle {
	var out []sim.Cycle
	for i := range t.heap {
		out = append(out, t.heap[i].cycle)
	}
	return out
}
