package coherence

import "repro/internal/sim"

// Timers schedules deferred actions inside a controller (array access
// latencies, memory fills). Actions scheduled for the same cycle run in
// scheduling order, keeping controllers deterministic.
type Timers struct {
	due map[sim.Cycle][]func(now sim.Cycle)
}

// At schedules f to run at cycle c (or the next tick if c is in the past).
func (t *Timers) At(c sim.Cycle, f func(now sim.Cycle)) {
	if t.due == nil {
		t.due = make(map[sim.Cycle][]func(now sim.Cycle))
	}
	t.due[c] = append(t.due[c], f)
}

// Tick runs every action due at now.
func (t *Timers) Tick(now sim.Cycle) {
	fns, ok := t.due[now]
	if !ok {
		return
	}
	delete(t.due, now)
	for _, f := range fns {
		f(now)
	}
}

// Pending reports the number of scheduled actions (deadlock diagnostics).
func (t *Timers) Pending() int {
	n := 0
	for _, fns := range t.due {
		n += len(fns)
	}
	return n
}

// DueCycles lists the cycles with scheduled actions (diagnostics).
func (t *Timers) DueCycles() []sim.Cycle {
	var out []sim.Cycle
	for c := range t.due {
		out = append(out, c)
	}
	return out
}
