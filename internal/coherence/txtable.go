package coherence

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Tx is one outstanding directory transaction. Kind is a protocol-defined
// discriminant; Req is the request message the transaction retains (the
// table recycles it at retirement unless told otherwise); AcksLeft counts
// outstanding acknowledgements. NextOwner and IsUpgrade are optional
// protocol scratch (used by MESI's invalidation collection; zero for
// protocols that don't need them).
type Tx struct {
	Kind      int
	Req       *Msg
	AcksLeft  int
	NextOwner NodeID
	IsUpgrade bool
}

// TxTable owns the transaction lifecycle and message-ownership
// discipline of a directory controller. Both L2 implementations used to
// duplicate this machinery (newTx/delTx, waiter lists, retry queues, the
// consume/retained recycling dance over MsgPool); it now lives here once.
//
// Ownership rules:
//
//   - A delivered message is owned by the table from Deliver until the
//     bound handler returns inside Consume; it is then recycled to the
//     pool unless the handler retained it.
//   - Retaining happens implicitly through the table: New(addr, ..., req)
//     with a non-nil req, EnqueueWaiting, and EnqueueRetry all mark the
//     in-flight message retained. Handlers never touch the flag directly.
//   - A retained request is recycled when its transaction retires
//     (Del with freeReq=true), or re-enters the dispatch path via
//     Consume when re-dispatched (waiters, retries, fetch completions),
//     restoring single ownership.
//
// Build-tagged assertions (-tags txdebug) verify the lifecycle: no
// transaction is double-registered and retired transactions match the
// registered record.
type TxTable struct {
	pool   *MsgPool
	handle func(now sim.Cycle, m *Msg)

	tx      map[uint64]*Tx
	free    []*Tx
	waiting map[uint64][]*Msg

	inbox []*Msg

	// retryQ swaps with retryScratch each Drain: handlers may re-append
	// to retryQ while the drained batch is still being iterated.
	retryQ       []*Msg
	retryScratch []*Msg

	// retained marks whether the message currently being handled was
	// stored (tx request, waiting queue, retry queue) and must not be
	// recycled by the Consume wrapper.
	retained bool

	// waker marks the owning controller due when a message is delivered
	// into the inbox from outside its Tick (the wake-set scheduling
	// contract; retry/waiting queues need no wake — they are only
	// appended to from inside the owner's own tick, whose post-tick
	// NextWake refresh reports them via QueuedWork).
	waker sim.Waker

	// stall, when set, is consulted before each Drain consumption; a true
	// return defers the message to the next drain round (fault
	// injection). The deferred message stays table-owned in retryQ —
	// Consume never runs, so the retained discipline is untouched — and
	// QueuedWork keeps reporting it, so the owner re-ticks next cycle.
	stall func(m *Msg) bool

	// News/Dels count transaction registrations and retirements. They
	// always run (one increment per transaction boundary), so a leak is
	// visible as News != Dels on any completed run, and they carry names
	// (SetLabel) so forensic dumps identify the table. Waits/Retries
	// count messages parked behind a busy line and messages re-queued
	// for the next drain — the directory's back-pressure signals.
	News    stats.Counter
	Dels    stats.Counter
	Waits   stats.Counter
	Retries stats.Counter

	// Observability sinks (SetObsSinks), nil when disabled: latSink
	// receives each transaction's birth-to-death latency, spanSink its
	// begin/end edges.
	latSink  func(cycles sim.Cycle)
	spanSink func(begin bool, now sim.Cycle, addr uint64, kind int)

	// Continuous lifecycle audit (ArmAudit): birth cycles per
	// registered address, the age bound past which a transaction is
	// reported leaked, and the report sink. lastNow tracks the latest
	// cycle the table saw so New (which has no now parameter) can stamp
	// births; lastSweep rate-limits the age scan.
	births    map[uint64]sim.Cycle
	auditAge  sim.Cycle
	auditFn   func(string)
	lastNow   sim.Cycle
	lastSweep sim.Cycle
}

// SetLabel names the table's lifecycle counters so negative-delta
// panics and forensic dumps identify which tile's table misbehaved.
func (t *TxTable) SetLabel(label string) {
	t.News.SetName(label + ".tx_news")
	t.Dels.SetName(label + ".tx_dels")
	t.Waits.SetName(label + ".tx_waits")
	t.Retries.SetName(label + ".tx_retries")
}

// Counters returns the table's lifecycle counters for metrics-registry
// registration (name them with SetLabel first).
func (t *TxTable) Counters() []*stats.Counter {
	return []*stats.Counter{&t.News, &t.Dels, &t.Waits, &t.Retries}
}

// LiveTx reports registered-minus-retired transactions; nonzero after a
// completed run means a leaked transaction record.
func (t *TxTable) LiveTx() int64 { return t.News.Value() - t.Dels.Value() }

// ArmAudit turns on the continuous transaction-lifecycle audit:
// double registration and unregistered retirement report immediately at
// runtime (not only under -tags txdebug), and any transaction
// outstanding longer than maxAge cycles is reported as leaked (then
// re-armed, so a still-stuck transaction re-reports once per maxAge).
// report receives a one-line description; the table keeps running so
// the engine's own deadlock detection still fires.
func (t *TxTable) ArmAudit(maxAge sim.Cycle, report func(string)) {
	t.auditAge = maxAge
	t.auditFn = report
	t.births = make(map[uint64]sim.Cycle)
}

// SetObsSinks installs the observability sinks: lat receives each
// transaction's birth-to-death latency in cycles, span receives
// begin/end edges (begin carries the registered kind, end the kind at
// retirement). Arming lat allocates the birth map shared with
// ArmAudit; both sinks are nil-guarded, so an un-observed table's hot
// path is untouched.
func (t *TxTable) SetObsSinks(lat func(cycles sim.Cycle), span func(begin bool, now sim.Cycle, addr uint64, kind int)) {
	t.latSink = lat
	t.spanSink = span
	if lat != nil && t.births == nil {
		t.births = make(map[uint64]sim.Cycle)
	}
}

// SetStall installs a consumption-stall hook (see the stall field);
// nil removes it.
func (t *TxTable) SetStall(f func(m *Msg) bool) { t.stall = f }

// SetWaker binds the owning controller's wake handle (see waker).
func (t *TxTable) SetWaker(w sim.Waker) { t.waker = w }

// Init prepares the table: pool is the message free list, handle the
// controller's dispatch function (bound once — Consume calls it for
// every owned message).
func (t *TxTable) Init(pool *MsgPool, handle func(now sim.Cycle, m *Msg)) {
	t.pool = pool
	t.handle = handle
	t.tx = make(map[uint64]*Tx)
	t.waiting = make(map[uint64][]*Msg)
}

// New builds a transaction record from the free list and registers it
// for addr. A non-nil req is retained by the transaction.
func (t *TxTable) New(addr uint64, kind int, req *Msg, acks int) *Tx {
	if txDebug {
		if _, dup := t.tx[addr]; dup {
			panic(fmt.Sprintf("coherence: TxTable: double transaction for %#x", addr))
		}
	}
	t.News.Inc()
	if t.auditFn != nil {
		if _, dup := t.tx[addr]; dup {
			t.auditFn(fmt.Sprintf("double transaction registered for %#x (new kind=%d)", addr, kind))
		}
	}
	if t.births != nil {
		t.births[addr] = t.lastNow
	}
	if t.spanSink != nil {
		t.spanSink(true, t.lastNow, addr, kind)
	}
	var tx *Tx
	if n := len(t.free); n > 0 {
		tx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		tx = &Tx{}
	}
	tx.Kind, tx.Req, tx.AcksLeft = kind, req, acks
	tx.NextOwner, tx.IsUpgrade = 0, false
	t.tx[addr] = tx
	if req != nil {
		t.retained = true
	}
	return tx
}

// Del retires a transaction, recycling the record and (when freeReq) the
// request message it retained. With freeReq false the caller takes over
// ownership of tx.Req before the call (e.g. to re-dispatch it).
func (t *TxTable) Del(addr uint64, tx *Tx, freeReq bool) {
	if txDebug {
		if reg, ok := t.tx[addr]; !ok || reg != tx {
			panic(fmt.Sprintf("coherence: TxTable: retiring unregistered transaction for %#x", addr))
		}
	}
	t.Dels.Inc()
	if t.auditFn != nil {
		if reg, ok := t.tx[addr]; !ok || reg != tx {
			t.auditFn(fmt.Sprintf("retiring unregistered transaction for %#x (kind=%d)", addr, tx.Kind))
		}
	}
	if t.births != nil {
		if b, ok := t.births[addr]; ok {
			if t.latSink != nil {
				t.latSink(t.lastNow - b)
			}
			delete(t.births, addr)
		}
	}
	if t.spanSink != nil {
		t.spanSink(false, t.lastNow, addr, tx.Kind)
	}
	delete(t.tx, addr)
	if freeReq && tx.Req != nil {
		t.pool.Put(tx.Req)
	}
	tx.Req = nil
	t.free = append(t.free, tx)
}

// Get returns the transaction registered for addr, if any.
func (t *TxTable) Get(addr uint64) (*Tx, bool) {
	tx, ok := t.tx[addr]
	return tx, ok
}

// BusyLine reports whether a transaction is outstanding for addr.
func (t *TxTable) BusyLine(addr uint64) bool {
	_, ok := t.tx[addr]
	return ok
}

// EnqueueWaiting parks m behind a busy line; DrainWaiting re-dispatches
// it when the transaction retires. Owns the retained flag.
func (t *TxTable) EnqueueWaiting(m *Msg) {
	t.Waits.Inc()
	t.waiting[m.Addr] = append(t.waiting[m.Addr], m)
	t.retained = true
}

// EnqueueRetry re-queues m for the next Drain. Owns the retained flag.
func (t *TxTable) EnqueueRetry(m *Msg) {
	t.Retries.Inc()
	t.retryQ = append(t.retryQ, m)
	t.retained = true
}

// Deliver appends a delivered message to the inbox (mesh.Endpoint hook)
// and marks the owning controller due this cycle.
func (t *TxTable) Deliver(m *Msg) {
	t.inbox = append(t.inbox, m)
	t.waker.Wake()
}

// Consume dispatches a message the controller owns through the bound
// handler, recycling it unless a handler retained it. Save/restore keeps
// nested consumption (a handler draining the waiting queue) from
// clobbering the caller's flag.
func (t *TxTable) Consume(now sim.Cycle, m *Msg) {
	t.lastNow = now
	saved := t.retained
	t.retained = false
	t.handle(now, m)
	if !t.retained {
		t.pool.Put(m)
	}
	t.retained = saved
}

// Drain processes the retry queue, then the inbox, consuming each
// message in arrival order. Call once per controller Tick. When the
// lifecycle audit is armed it also sweeps for over-age transactions
// (rate-limited to every auditAge/4 cycles).
func (t *TxTable) Drain(now sim.Cycle) {
	t.lastNow = now
	if t.auditFn != nil && now-t.lastSweep >= t.auditAge/4 {
		t.lastSweep = now
		t.sweepAges(now)
	}
	if len(t.retryQ) > 0 {
		rq := t.retryQ
		t.retryQ = t.retryScratch[:0]
		for _, m := range rq {
			if t.stall != nil && t.stall(m) {
				t.retryQ = append(t.retryQ, m)
				continue
			}
			t.Consume(now, m)
		}
		t.retryScratch = rq[:0]
	}
	if len(t.inbox) == 0 {
		return
	}
	// Deliveries happen only inside Network.Tick, so nothing appends to
	// the inbox while this batch drains; the backing array is reusable.
	msgs := t.inbox
	t.inbox = t.inbox[:0]
	for _, m := range msgs {
		if t.stall != nil && t.stall(m) {
			t.retryQ = append(t.retryQ, m)
			continue
		}
		t.Consume(now, m)
	}
}

// DrainWaiting re-dispatches every message parked behind addr (after its
// transaction retired), in arrival order.
func (t *TxTable) DrainWaiting(now sim.Cycle, addr uint64) {
	q, ok := t.waiting[addr]
	if !ok || len(q) == 0 {
		delete(t.waiting, addr)
		return
	}
	delete(t.waiting, addr)
	for _, m := range q {
		t.Consume(now, m)
	}
}

// QueuedWork reports whether messages are queued for the next tick
// (sim.WakeHinter input: queued work needs the very next cycle).
func (t *TxTable) QueuedWork() bool { return len(t.inbox) > 0 || len(t.retryQ) > 0 }

// Outstanding reports whether any transaction, queued retry or inbox
// message is pending (completion/deadlock checks).
func (t *TxTable) Outstanding() bool {
	return len(t.tx) > 0 || len(t.retryQ) > 0 || len(t.inbox) > 0
}

// sweepAges reports every audited transaction older than auditAge,
// in address order so the report stream is deterministic, and re-arms
// each reported birth so a still-stuck transaction re-reports once per
// auditAge rather than every sweep.
func (t *TxTable) sweepAges(now sim.Cycle) {
	var stale []uint64
	for a, b := range t.births {
		if now-b > t.auditAge {
			stale = append(stale, a)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, a := range stale {
		kind := -1
		if tx, ok := t.tx[a]; ok {
			kind = tx.Kind
		}
		t.auditFn(fmt.Sprintf("transaction for %#x (kind=%d) outstanding %d cycles (born cycle %d)",
			a, kind, now-t.births[a], t.births[a]))
		t.births[a] = now
	}
}

// Debug renders outstanding transaction state (deadlock diagnostics),
// in address order; birth cycles are included when the lifecycle audit
// is armed.
func (t *TxTable) Debug() string {
	addrs := make([]uint64, 0, len(t.tx))
	for a := range t.tx {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	s := ""
	for _, a := range addrs {
		tx := t.tx[a]
		s += fmt.Sprintf(" tx=%#x(kind=%d acks=%d", a, tx.Kind, tx.AcksLeft)
		if b, ok := t.births[a]; ok {
			s += fmt.Sprintf(" born=%d", b)
		}
		s += ")"
	}
	waits := make([]uint64, 0, len(t.waiting))
	for a := range t.waiting {
		waits = append(waits, a)
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	for _, a := range waits {
		s += fmt.Sprintf(" wait=%#x(%d)", a, len(t.waiting[a]))
	}
	s += fmt.Sprintf(" retry=%d inbox=%d live=%d", len(t.retryQ), len(t.inbox), t.LiveTx())
	return s
}
