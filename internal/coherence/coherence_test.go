package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNodeIDMapping(t *testing.T) {
	const n = 32
	for core := 0; core < n; core++ {
		l1 := L1ID(core)
		l2 := L2ID(core, n)
		if !IsL1(l1, n) || IsL1(l2, n) {
			t.Fatalf("IsL1 wrong for core %d", core)
		}
		if Router(l1, n) != core || Router(l2, n) != core {
			t.Fatalf("router mismatch for core %d", core)
		}
	}
}

func TestMsgFlits(t *testing.T) {
	if BlockFlits != 5 {
		t.Fatalf("BlockFlits = %d, want 5 (1 head + 64B/16B)", BlockFlits)
	}
	dataTypes := []MsgType{MsgDataE, MsgDataS, MsgDataSRO, MsgDataOwner, MsgWBData, MsgPutM}
	for _, mt := range dataTypes {
		if !mt.CarriesData() || mt.Flits() != BlockFlits {
			t.Fatalf("%v should be a %d-flit data message", mt, BlockFlits)
		}
	}
	ctrlTypes := []MsgType{MsgGetS, MsgGetX, MsgPutE, MsgPutS, MsgPutAck, MsgFwdGetS,
		MsgFwdGetX, MsgInv, MsgAck, MsgInvAck, MsgTSResetL1, MsgTSResetL2, MsgUpgAck}
	for _, mt := range ctrlTypes {
		if mt.CarriesData() || mt.Flits() != ControlFlits {
			t.Fatalf("%v should be a control message", mt)
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := MsgType(0); mt < numMsgTypes; mt++ {
		if s := mt.String(); s == "" || s[0] == 'M' && len(s) > 20 {
			t.Fatalf("missing name for message type %d", mt)
		}
	}
}

func TestBlockAddr(t *testing.T) {
	cases := map[uint64]uint64{
		0x0:    0x0,
		0x3f:   0x0,
		0x40:   0x40,
		0x1234: 0x1200,
	}
	for in, want := range cases {
		if got := BlockAddr(in); got != want {
			t.Fatalf("BlockAddr(%#x) = %#x, want %#x", in, got, want)
		}
	}
}

func TestBlockAddrIdempotent(t *testing.T) {
	check := func(addr uint64) bool {
		b := BlockAddr(addr)
		return BlockAddr(b) == b && b <= addr && addr-b < BlockSize
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	var tm Timers
	var fired []int
	tm.At(5, func(sim.Cycle) { fired = append(fired, 1) })
	tm.At(3, func(sim.Cycle) { fired = append(fired, 0) })
	tm.At(5, func(sim.Cycle) { fired = append(fired, 2) })
	if tm.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", tm.Pending())
	}
	for c := sim.Cycle(0); c <= 6; c++ {
		tm.Tick(c)
	}
	if len(fired) != 3 || fired[0] != 0 || fired[1] != 1 || fired[2] != 2 {
		t.Fatalf("fired order %v", fired)
	}
	if tm.Pending() != 0 {
		t.Fatal("timers not drained")
	}
}

func TestTimersSameCycleScheduling(t *testing.T) {
	var tm Timers
	ran := false
	tm.At(2, func(now sim.Cycle) {
		tm.At(now+1, func(sim.Cycle) { ran = true })
	})
	tm.Tick(2)
	tm.Tick(3)
	if !ran {
		t.Fatal("timer scheduled from a timer did not run")
	}
}

func TestSelfInvCauseStrings(t *testing.T) {
	for c := SelfInvCause(0); c < NumSelfInvCauses; c++ {
		if c.String() == "" {
			t.Fatalf("cause %d has no name", c)
		}
	}
}

func TestL1StatsAggregates(t *testing.T) {
	var s L1Stats
	s.ReadHitPrivate.Add(10)
	s.ReadHitShared.Add(5)
	s.ReadHitSRO.Add(3)
	s.ReadMissInvalid.Add(2)
	s.ReadMissShared.Add(1)
	s.WriteHitPrivate.Add(7)
	s.WriteMissInvalid.Add(4)
	s.WriteMissShared.Add(2)
	s.WriteMissSRO.Add(1)
	if s.Reads() != 21 {
		t.Fatalf("reads = %d, want 21", s.Reads())
	}
	if s.Writes() != 14 {
		t.Fatalf("writes = %d, want 14", s.Writes())
	}
	if s.Accesses() != 35 {
		t.Fatalf("accesses = %d, want 35", s.Accesses())
	}
	if s.Misses() != 10 {
		t.Fatalf("misses = %d, want 10", s.Misses())
	}
}

func TestL1StatsMerge(t *testing.T) {
	var a, b L1Stats
	a.ReadHitPrivate.Add(1)
	a.SelfInvEvents[CauseFence].Add(2)
	a.RMWLat.Observe(100)
	b.ReadHitPrivate.Add(2)
	b.SelfInvEvents[CauseFence].Add(3)
	b.RMWLat.Observe(200)
	b.RMWLat.Observe(300)

	var total L1Stats
	total.Merge(&a)
	total.Merge(&b)
	if total.ReadHitPrivate.Value() != 3 {
		t.Fatalf("merged hits = %d", total.ReadHitPrivate.Value())
	}
	if total.SelfInvEvents[CauseFence].Value() != 5 {
		t.Fatalf("merged fence self-invs = %d", total.SelfInvEvents[CauseFence].Value())
	}
	if got := total.MeanRMWLatency(); got != 200 {
		t.Fatalf("merged mean RMW latency = %v, want 200", got)
	}
	if total.SelfInvTotal() != 5 {
		t.Fatalf("self-inv total = %d", total.SelfInvTotal())
	}
}

func TestMsgString(t *testing.T) {
	m := &Msg{Type: MsgGetS, Src: 1, Dst: 34, Addr: 0x1000}
	if s := m.String(); s == "" {
		t.Fatal("empty string rendering")
	}
}
