package coherence

import "testing"

func TestMsgPoolRecycles(t *testing.T) {
	var p MsgPool
	m := p.Get()
	if p.News != 1 || p.Gets != 1 {
		t.Fatalf("fresh pool: Gets=%d News=%d", p.Gets, p.News)
	}
	m.Type = MsgDataS
	m.Src, m.Dst, m.Addr = 1, 2, 0x1000
	m.SetData(make([]byte, BlockSize))
	dataCap := cap(m.Data)
	p.Put(m)

	m2 := p.Get()
	if m2 != m {
		t.Fatal("pool did not reuse the freed message")
	}
	if p.News != 1 {
		t.Fatalf("reuse allocated: News=%d", p.News)
	}
	// Zeroed on return, buffer capacity preserved.
	if m2.Type != 0 || m2.Src != 0 || m2.Dst != 0 || m2.Addr != 0 || m2.TSValid {
		t.Fatalf("recycled message not zeroed: %+v", m2)
	}
	if len(m2.Data) != 0 || cap(m2.Data) != dataCap {
		t.Fatalf("data buffer: len=%d cap=%d, want 0/%d", len(m2.Data), cap(m2.Data), dataCap)
	}
	m2.SetData([]byte{1, 2, 3})
	if cap(m2.Data) != dataCap {
		t.Fatal("SetData reallocated despite spare capacity")
	}
}

func TestMsgPoolSteadyState(t *testing.T) {
	var p MsgPool
	live := make([]*Msg, 0, 8)
	payload := make([]byte, BlockSize)
	for round := 0; round < 1000; round++ {
		// Up to 8 messages in flight, then all returned.
		for i := 0; i < 8; i++ {
			m := p.Get()
			m.Type = MsgDataE
			m.SetData(payload)
			live = append(live, m)
		}
		for _, m := range live {
			p.Put(m)
		}
		live = live[:0]
	}
	if p.News > 8 {
		t.Fatalf("steady state allocated: News=%d, want <= 8", p.News)
	}
	if p.Gets != 8000 {
		t.Fatalf("Gets=%d, want 8000", p.Gets)
	}
}

func TestMsgPoolAdoptsForeignMessages(t *testing.T) {
	var p MsgPool
	p.Put(&Msg{Type: MsgInv, Addr: 42})
	m := p.Get()
	if m.Type != 0 || m.Addr != 0 {
		t.Fatal("adopted message not zeroed")
	}
	if p.News != 0 {
		t.Fatal("Get should have reused the adopted message")
	}
}
