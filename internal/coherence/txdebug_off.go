//go:build !txdebug

package coherence

// txDebug gates the TxTable lifecycle assertions. The default build
// compiles them out of the hot path; `go test -tags txdebug` turns them
// on (CI's race job runs the unit packages with this tag).
const txDebug = false
