package coherence

import (
	"sort"
	"testing"

	"repro/internal/sim"
)

// TestEventHeapPopOrder is the property test: for any push sequence,
// pops come out in exactly sorted (cycle, seq) order.
func TestEventHeapPopOrder(t *testing.T) {
	rng := sim.NewRNG(11)
	type key struct {
		c sim.Cycle
		s uint64
	}
	var eh EventHeap[int]
	var want []key
	for i := 0; i < 5000; i++ {
		c := sim.Cycle(rng.Intn(64)) // dense cycles force seq tie-breaks
		eh.PushAuto(c, i)
		want = append(want, key{c: c, s: uint64(i)})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].c != want[j].c {
			return want[i].c < want[j].c
		}
		return want[i].s < want[j].s
	})
	for i, w := range want {
		min, ok := eh.Min()
		if !ok || min != w.c {
			t.Fatalf("pop %d: Min = %d,%v, want %d", i, min, ok, w.c)
		}
		it := eh.Pop()
		if it.Cycle != w.c || it.Seq != w.s {
			t.Fatalf("pop %d: (%d,%d), want (%d,%d)", i, it.Cycle, it.Seq, w.c, w.s)
		}
		if it.Item != int(w.s) {
			t.Fatalf("pop %d: payload %d, want %d", i, it.Item, w.s)
		}
	}
	if eh.Len() != 0 {
		t.Fatalf("heap not drained: %d left", eh.Len())
	}
}

// TestEventHeapInterleaved mixes pushes and pops (the timers' usage
// pattern) and checks the popped stream never goes backwards.
func TestEventHeapInterleaved(t *testing.T) {
	rng := sim.NewRNG(23)
	var eh EventHeap[uint64]
	var lastC sim.Cycle = -1
	var lastS uint64
	popped := 0
	for round := 0; round < 2000; round++ {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			eh.PushAuto(sim.Cycle(rng.Intn(1000)), uint64(round))
		}
		for k := rng.Intn(5); k > 0 && eh.Len() > 0; k-- {
			it := eh.Pop()
			// Pops must be monotone in (cycle, seq) only among items
			// present simultaneously; a later push may rewind the cycle.
			// The strong invariant that always holds: Min() == popped key.
			if it.Cycle == lastC && it.Seq < lastS {
				t.Fatalf("same-cycle seq went backwards: (%d,%d) after (%d,%d)",
					it.Cycle, it.Seq, lastC, lastS)
			}
			lastC, lastS = it.Cycle, it.Seq
			popped++
		}
	}
	for eh.Len() > 0 {
		eh.Pop()
		popped++
	}
	if popped == 0 {
		t.Fatal("no pops exercised")
	}
}

// FuzzEventHeap feeds arbitrary byte strings as push/pop scripts and
// checks the heap invariant (Min never decreases across a pop-only
// stretch, Len stays consistent) plus full drain ordering.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 0, 0})
	f.Add([]byte{255, 0, 255, 0})
	f.Add([]byte{7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, script []byte) {
		var eh EventHeap[int]
		live := 0
		for i, b := range script {
			if b == 0 && eh.Len() > 0 {
				before, _ := eh.Min()
				it := eh.Pop()
				if it.Cycle != before {
					t.Fatalf("Pop cycle %d != Min %d", it.Cycle, before)
				}
				live--
			} else {
				eh.PushAuto(sim.Cycle(b), i)
				live++
			}
			if eh.Len() != live {
				t.Fatalf("Len = %d, want %d", eh.Len(), live)
			}
		}
		// Drain: the remaining stream must be sorted by (cycle, seq).
		prevC, prevS := sim.Cycle(-1), uint64(0)
		for eh.Len() > 0 {
			it := eh.Pop()
			if it.Cycle < prevC || (it.Cycle == prevC && it.Seq <= prevS && prevC >= 0) {
				t.Fatalf("drain out of order: (%d,%d) after (%d,%d)", it.Cycle, it.Seq, prevC, prevS)
			}
			prevC, prevS = it.Cycle, it.Seq
		}
	})
}
