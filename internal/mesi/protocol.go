package mesi

import (
	"repro/internal/coherence"
	"repro/internal/config"
)

// Protocol is the MESI directory protocol factory.
type Protocol struct{}

// New returns the MESI baseline protocol.
func New() Protocol { return Protocol{} }

// init publishes the baseline in the protocol registry; order 0 keeps it
// first (the paper plots everything normalized against MESI).
func init() {
	coherence.RegisterProtocol("MESI", 0, func() coherence.Protocol { return New() })
	coherence.RegisterLegality("MESI", legality())
}

// legality builds the MESI state-transition legality table consumed by
// the protocol-legality oracle (see coherence.RegisterLegality). Every
// direct hop a correct run can take is enumerated; anything else — e.g.
// Modified silently downgrading to Exclusive — is a violation.
func legality() *coherence.Legality {
	l1 := coherence.StateTable{
		Names: map[int]string{stateS: "S", stateE: "E", stateM: "M"},
		Edges: map[coherence.Edge]bool{},
	}
	l1.Allow(0, stateS, stateE, stateM) // fills (DataS / DataE / DataOwner)
	l1.Allow(stateS, stateM, 0)         // upgrade; invalidation/eviction
	l1.Allow(stateE, stateM, stateS, 0)
	l1.Allow(stateM, stateS, 0) // FwdGetS downgrade; recall/eviction

	l2 := coherence.StateTable{
		Names: map[int]string{dirV: "V", dirS: "Sh", dirX: "X"},
		Edges: map[coherence.Edge]bool{},
	}
	l2.Allow(0, dirV)       // memory fetch
	l2.Allow(dirV, dirX, 0) // exclusive grant; eviction
	l2.Allow(dirS, dirX, dirV, 0)
	l2.Allow(dirX, dirS, dirV, 0) // owner downgrade; writeback; recall
	return &coherence.Legality{L1: l1, L2: l2}
}

// Name implements coherence.Protocol.
func (Protocol) Name() string { return "MESI" }

// Build implements coherence.Protocol: one L1 per core and one directory
// tile per core.
func (Protocol) Build(cfg config.System, net coherence.Network, mem coherence.Memory) ([]coherence.L1Like, []coherence.Controller) {
	l1s := make([]coherence.L1Like, cfg.Cores)
	l2s := make([]coherence.Controller, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		l1s[i] = NewL1(i, cfg.Cores, cfg.L1Size, cfg.L1Ways, cfg.L1HitLat, net)
		l2s[i] = NewL2(i, cfg.Cores, cfg.L2TileSize, cfg.L2Ways, cfg.L2AccessLat, net, mem)
	}
	return l1s, l2s
}

// L1Stats implements coherence.L1Like.
func (l *L1) L1Stats() *coherence.L1Stats { return &l.Stats }

// SnoopBlock implements coherence.Controller: L1s are authoritative for
// Exclusive/Modified lines.
func (l *L1) SnoopBlock(addr uint64) ([]byte, bool) {
	if w := l.cache.Peek(addr); w != nil && w.Meta.state != stateS {
		return w.Data[:], true
	}
	return nil, false
}

// SnoopBlock implements coherence.Controller: a valid L2 line is
// authoritative unless an L1 holds it exclusively.
func (t *L2) SnoopBlock(addr uint64) ([]byte, bool) {
	if w := t.cache.Peek(addr); w != nil && w.Meta.state != dirX {
		return w.Data[:], true
	}
	return nil, false
}

// SnoopOwner reports the L1 holding addr exclusively, if any (used by
// post-run functional reads to snoop only the cache that can hold the
// freshest copy).
func (t *L2) SnoopOwner(addr uint64) (coherence.NodeID, bool) {
	if w := t.cache.Peek(addr); w != nil && w.Meta.state == dirX {
		return w.Meta.owner, true
	}
	return 0, false
}
