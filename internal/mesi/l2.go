package mesi

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/stats"
)

// L2 directory line states (invalid way = not present).
const (
	dirV = iota + 1 // valid at L2, no L1 copies
	dirS            // shared by the cores in the sharing vector
	dirX            // exclusive at owner (E or M in its L1)
)

type l2Line struct {
	state   int
	sharers coherence.CoreSet // full sharing vector (bit per core)
	owner   coherence.NodeID
	dirty   bool // data newer than memory
}

// Transaction kinds (coherence.Tx.Kind).
const (
	txMemFetch = iota + 1
	txAwaitAck // exclusive grant sent; waiting for requester Ack
	txFwdGetS  // forwarded read; waiting for owner WBData
	txFwdGetX  // forwarded write; waiting for requester Ack
	txInvColl  // invalidations outstanding; counting InvAcks
	txEvict    // evicting this line; waiting for acks/WBData
)

// L2 is one NUCA directory tile.
type L2 struct {
	id    coherence.NodeID
	tile  int
	cores int
	cache *memsys.Cache[l2Line]
	net   coherence.Network
	pool  *coherence.MsgPool
	mem   coherence.Memory

	accessLat sim.Cycle

	timers coherence.Timers
	sendFn func(now sim.Cycle, m *coherence.Msg) // bound once; see sendAfterAccess

	// txs owns the transaction lifecycle and message-ownership
	// discipline (see coherence.TxTable).
	txs coherence.TxTable

	// Optional hooks, nil in nominal runs (see coherence hooks doc):
	// ackDelayFault holds back PutAck scheduling (victim fault profile),
	// transSink reports directory-state transitions to the legality oracle.
	ackDelayFault func() sim.Cycle
	transSink     func(addr uint64, from, to int)
}

// SetAckDelayFault implements coherence.AckDelayFaulter.
func (t *L2) SetAckDelayFault(f func() sim.Cycle) { t.ackDelayFault = f }

// SetTransitionSink implements coherence.TransitionReporter.
func (t *L2) SetTransitionSink(f func(addr uint64, from, to int)) { t.transSink = f }

// trans reports a directory-state transition to the legality oracle.
func (t *L2) trans(addr uint64, from, to int) {
	if t.transSink != nil && from != to {
		t.transSink(addr, from, to)
	}
}

// ArmTxAudit implements coherence.TxAuditor.
func (t *L2) ArmTxAudit(maxAge sim.Cycle, report func(string)) { t.txs.ArmAudit(maxAge, report) }

// TxDebug implements coherence.TxDebugger.
func (t *L2) TxDebug() string { return fmt.Sprintf("mesi L2 tile %d:%s", t.tile, t.txs.Debug()) }

// SetTxObs implements coherence.TxObserver.
func (t *L2) SetTxObs(lat func(cycles sim.Cycle), span func(begin bool, now sim.Cycle, addr uint64, kind int)) {
	t.txs.SetObsSinks(lat, span)
}

var txKindNames = [...]string{
	txMemFetch: "mem-fetch",
	txAwaitAck: "await-ack",
	txFwdGetS:  "fwd-gets",
	txFwdGetX:  "fwd-getx",
	txInvColl:  "inv-collect",
	txEvict:    "evict",
}

// TxKindName implements coherence.TxKindNamer.
func (t *L2) TxKindName(kind int) string {
	if kind > 0 && kind < len(txKindNames) {
		return txKindNames[kind]
	}
	return fmt.Sprintf("kind-%d", kind)
}

// TxLive reports registered-but-unretired transactions (leak check).
func (t *L2) TxLive() int64 { return t.txs.LiveTx() }

// ObsCounters implements coherence.ObsCounterProvider.
func (t *L2) ObsCounters() []*stats.Counter { return t.txs.Counters() }

// NewL2 builds directory tile `tile`.
func NewL2(tile, cores int, sizeBytes, ways int, accessLat sim.Cycle, net coherence.Network, mem coherence.Memory) *L2 {
	if cores > coherence.MaxCores {
		panic(fmt.Sprintf("mesi: full sharing vector limited to %d cores in this model", coherence.MaxCores))
	}
	l2 := &L2{
		id:        coherence.L2ID(tile, cores),
		tile:      tile,
		cores:     cores,
		cache:     memsys.NewCache[l2Line](sizeBytes, ways),
		net:       net,
		pool:      net.MsgPoolFor(tile),
		mem:       mem,
		accessLat: accessLat,
	}
	l2.sendFn = l2.send
	l2.txs.Init(l2.pool, l2.handle)
	l2.txs.SetLabel(fmt.Sprintf("mesi.l2.%d", tile))
	return l2
}

func (t *L2) send(now sim.Cycle, m *coherence.Msg) {
	m.Src = t.id
	t.net.Send(now, m)
}

// sendAfterAccess sends m after the tile access latency. Every
// directory-originated message to an L1 must leave through the same
// delay so that per-destination FIFO order matches processing order —
// an invalidation must never overtake an earlier data response.
func (t *L2) sendAfterAccess(now sim.Cycle, tmpl coherence.Msg, data []byte) {
	t.timers.AtMsg(now+t.accessLat, t.sendFn, t.pool.NewFrom(tmpl, data))
}

// BindWaker implements sim.WakeSink: the wake handle flows into the
// timer heap and the transaction table, which mark this tile due for
// scheduled actions and delivered messages respectively.
func (t *L2) BindWaker(w sim.Waker) {
	t.timers.SetWaker(w)
	t.txs.SetWaker(w)
}

// Deliver implements mesh.Endpoint.
func (t *L2) Deliver(now sim.Cycle, m *coherence.Msg) { t.txs.Deliver(m) }

// SetStall installs a TxTable consumption-stall hook (fault injection;
// see faults.Injector.TxStall).
func (t *L2) SetStall(f func(m *coherence.Msg) bool) { t.txs.SetStall(f) }

// ComponentLabel implements sim.Labeled (forensic reports).
func (t *L2) ComponentLabel() string { return fmt.Sprintf("mesi L2 tile %d", t.tile) }

// Busy reports outstanding work (completion/deadlock checks).
func (t *L2) Busy() bool {
	return t.txs.Outstanding() || t.timers.Pending() > 0
}

// NextWake implements sim.WakeHinter: queued messages and retries need
// the very next cycle; otherwise the earliest due timer.
func (t *L2) NextWake(now sim.Cycle) sim.Cycle {
	if t.txs.QueuedWork() {
		return now + 1
	}
	if due, ok := t.timers.NextDue(); ok {
		return due
	}
	return sim.WakeNever
}

// Tick processes timers, retries and inbox messages.
func (t *L2) Tick(now sim.Cycle) {
	t.timers.Tick(now)
	t.txs.Drain(now)
}

func (t *L2) handle(now sim.Cycle, m *coherence.Msg) {
	switch m.Type {
	case coherence.MsgGetS, coherence.MsgGetX:
		t.handleRequest(now, m)
	case coherence.MsgPutS:
		t.handlePutS(now, m)
	case coherence.MsgPutE, coherence.MsgPutM:
		t.handlePut(now, m)
	case coherence.MsgAck:
		t.handleAck(now, m)
	case coherence.MsgInvAck:
		t.handleInvAck(now, m)
	case coherence.MsgWBData:
		t.handleWBData(now, m)
	default:
		panic(fmt.Sprintf("mesi: L2 %d cycle %d: unexpected message %s", t.id, now, m))
	}
}

func (t *L2) handleRequest(now sim.Cycle, m *coherence.Msg) {
	if t.txs.BusyLine(m.Addr) {
		t.txs.EnqueueWaiting(m)
		return
	}
	w := t.cache.Peek(m.Addr)
	if w == nil {
		t.startFetch(now, m)
		return
	}
	if m.Type == coherence.MsgGetS {
		t.serveGetS(now, m, w)
	} else {
		t.serveGetX(now, m, w)
	}
}

// startFetch allocates a line and fills it from memory.
func (t *L2) startFetch(now sim.Cycle, m *coherence.Msg) {
	v := t.cache.Victim(m.Addr)
	if v == nil {
		// Every way busy: retry next cycle.
		t.txs.EnqueueRetry(m)
		return
	}
	if v.Valid {
		if t.cache.AnyBusy(m.Addr) {
			// Another transaction (possibly an eviction) is active in
			// this set; wait rather than evicting way after way.
			t.txs.EnqueueRetry(m)
			return
		}
		if !t.evictLine(now, v) {
			// Asynchronous eviction started; retry the request after.
			t.txs.EnqueueRetry(m)
			return
		}
	}
	t.cache.Install(v, m.Addr)
	v.Busy = true
	t.txs.New(m.Addr, txMemFetch, m, 0)
	lat := t.accessLat + t.mem.Latency(m.Addr)
	addr := m.Addr
	t.timers.At(now+lat, func(nw sim.Cycle) {
		way := t.cache.Peek(addr)
		if way == nil {
			panic(fmt.Sprintf("mesi: L2 %d cycle %d: fetched line vanished %#x", t.id, now, addr))
		}
		t.mem.ReadBlock(addr, way.Data[:])
		t.trans(addr, 0, dirV)
		way.Meta.state = dirV
		way.Busy = false
		tx, _ := t.txs.Get(addr)
		req := tx.Req
		t.txs.Del(addr, tx, false)
		// The request's ownership flows back through the dispatch path:
		// the line is now present, so Consume re-serves it (recycling
		// the message unless a fresh transaction retains it).
		t.txs.Consume(nw, req)
	})
}

// evictLine evicts v. It returns true if the eviction completed
// synchronously (line now invalid); false if an asynchronous recall /
// invalidation transaction was started.
func (t *L2) evictLine(now sim.Cycle, v *memsys.Way[l2Line]) bool {
	addr := v.Tag
	switch v.Meta.state {
	case dirV:
		if v.Meta.dirty {
			t.mem.WriteBlock(addr, v.Data[:])
		}
		t.trans(addr, dirV, 0)
		t.cache.Invalidate(v)
		return true
	case dirS:
		n := 0
		for c := 0; c < t.cores; c++ {
			if v.Meta.sharers.Has(c) {
				t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: coherence.L1ID(c), Addr: addr}, nil)
				n++
			}
		}
		v.Busy = true
		t.txs.New(addr, txEvict, nil, n)
		return false
	case dirX:
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: v.Meta.owner, Addr: addr}, nil)
		v.Busy = true
		t.txs.New(addr, txEvict, nil, 1)
		return false
	}
	panic(fmt.Sprintf("mesi: L2 %d cycle %d: evictLine on invalid state %d for %#x", t.id, now, v.Meta.state, v.Tag))
}

func (t *L2) serveGetS(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line]) {
	switch w.Meta.state {
	case dirV:
		// Grant Exclusive (the E optimization: no other sharers).
		w.Busy = true
		tx := t.txs.New(m.Addr, txAwaitAck, m, 0)
		tx.NextOwner = m.Requestor
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data[:])
	case dirS:
		w.Meta.sharers.Add(int(m.Requestor))
		t.respond(now, m.Requestor, coherence.MsgDataS, m.Addr, w.Data[:])
	case dirX:
		if w.Meta.owner == m.Requestor {
			panic(fmt.Sprintf("mesi: L2 %d cycle %d: GetS from current owner %s", t.id, now, m))
		}
		w.Busy = true
		t.txs.New(m.Addr, txFwdGetS, m, 0)
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgFwdGetS, Dst: w.Meta.owner, Addr: m.Addr, Requestor: m.Requestor}, nil)
	}
}

func (t *L2) serveGetX(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line]) {
	switch w.Meta.state {
	case dirV:
		w.Busy = true
		tx := t.txs.New(m.Addr, txAwaitAck, m, 0)
		tx.NextOwner = m.Requestor
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data[:])
	case dirS:
		isUpgrade := w.Meta.sharers.Has(int(m.Requestor))
		others := 0
		for c := 0; c < t.cores; c++ {
			if w.Meta.sharers.Has(c) && coherence.L1ID(c) != m.Requestor {
				t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: coherence.L1ID(c), Addr: m.Addr}, nil)
				others++
			}
		}
		w.Busy = true
		if others == 0 {
			tx := t.txs.New(m.Addr, txAwaitAck, m, 0)
			tx.NextOwner, tx.IsUpgrade = m.Requestor, isUpgrade
			t.grantX(now, m, w, isUpgrade)
		} else {
			tx := t.txs.New(m.Addr, txInvColl, m, others)
			tx.NextOwner, tx.IsUpgrade = m.Requestor, isUpgrade
		}
	case dirX:
		if w.Meta.owner == m.Requestor {
			panic(fmt.Sprintf("mesi: L2 %d cycle %d: GetX from current owner %s", t.id, now, m))
		}
		w.Busy = true
		tx := t.txs.New(m.Addr, txFwdGetX, m, 0)
		tx.NextOwner = m.Requestor
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgFwdGetX, Dst: w.Meta.owner, Addr: m.Addr, Requestor: m.Requestor}, nil)
	}
}

func (t *L2) grantX(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line], isUpgrade bool) {
	if isUpgrade {
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgUpgAck, Dst: m.Requestor, Addr: m.Addr}, nil)
	} else {
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data[:])
	}
}

func (t *L2) respond(now sim.Cycle, dst coherence.NodeID, typ coherence.MsgType, addr uint64, data []byte) {
	t.sendAfterAccess(now, coherence.Msg{Type: typ, Dst: dst, Addr: addr}, data)
}

func (t *L2) handleAck(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.txs.Get(m.Addr)
	if !ok || (tx.Kind != txAwaitAck && tx.Kind != txFwdGetX) {
		panic(fmt.Sprintf("mesi: L2 %d cycle %d: stray Ack %s", t.id, now, m))
	}
	w := t.cache.Peek(m.Addr)
	t.trans(m.Addr, w.Meta.state, dirX)
	w.Meta.state = dirX
	w.Meta.owner = tx.NextOwner
	w.Meta.sharers = coherence.CoreSet{}
	w.Busy = false
	t.txs.Del(m.Addr, tx, true)
	t.txs.DrainWaiting(now, m.Addr)
}

func (t *L2) handleInvAck(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.txs.Get(m.Addr)
	if !ok {
		panic(fmt.Sprintf("mesi: L2 %d cycle %d: stray InvAck %s", t.id, now, m))
	}
	tx.AcksLeft--
	if tx.AcksLeft > 0 {
		return
	}
	w := t.cache.Peek(m.Addr)
	switch tx.Kind {
	case txInvColl:
		// All sharers gone; grant exclusivity, stay busy until Ack.
		tx.Kind = txAwaitAck
		w.Meta.sharers = coherence.CoreSet{}
		t.grantX(now, tx.Req, w, tx.IsUpgrade)
	case txEvict:
		t.finishEvict(now, w)
	default:
		panic(fmt.Sprintf("mesi: L2 %d cycle %d: InvAck in tx kind %d", t.id, now, tx.Kind))
	}
}

func (t *L2) handleWBData(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.txs.Get(m.Addr)
	if !ok {
		panic(fmt.Sprintf("mesi: L2 %d cycle %d: stray WBData %s", t.id, now, m))
	}
	w := t.cache.Peek(m.Addr)
	switch tx.Kind {
	case txFwdGetS:
		copy(w.Data[:], m.Data)
		if m.Dirty {
			w.Meta.dirty = true
		}
		prevOwner := w.Meta.owner
		t.trans(m.Addr, w.Meta.state, dirS)
		w.Meta.state = dirS
		w.Meta.sharers = coherence.CoreSet{}
		w.Meta.sharers.Add(int(tx.Req.Requestor))
		if !m.NoCopy {
			// Previous owner kept a downgraded Shared copy.
			w.Meta.sharers.Add(int(prevOwner))
		}
		w.Meta.owner = 0
		w.Busy = false
		t.txs.Del(m.Addr, tx, true)
		t.txs.DrainWaiting(now, m.Addr)
	case txEvict:
		if m.Dirty {
			copy(w.Data[:], m.Data)
			w.Meta.dirty = true
		}
		t.finishEvict(now, w)
	default:
		panic(fmt.Sprintf("mesi: L2 %d cycle %d: WBData in tx kind %d", t.id, now, tx.Kind))
	}
}

func (t *L2) finishEvict(now sim.Cycle, w *memsys.Way[l2Line]) {
	addr := w.Tag
	if w.Meta.dirty {
		t.mem.WriteBlock(addr, w.Data[:])
	}
	tx, _ := t.txs.Get(addr)
	t.txs.Del(addr, tx, false)
	t.trans(addr, w.Meta.state, 0)
	t.cache.Invalidate(w)
	// Requests that queued behind the eviction now miss and refetch.
	t.txs.DrainWaiting(now, addr)
}

func (t *L2) handlePutS(now sim.Cycle, m *coherence.Msg) {
	w := t.cache.Peek(m.Addr)
	if w == nil || w.Meta.state != dirS {
		return
	}
	if t.txs.BusyLine(m.Addr) {
		// An invalidation round may be counting this sharer; let the
		// crossing InvAck from the (now absent) sharer settle it.
		t.txs.EnqueueWaiting(m)
		return
	}
	w.Meta.sharers.Remove(int(m.Src))
	if w.Meta.sharers.Empty() {
		t.trans(m.Addr, dirS, dirV)
		w.Meta.state = dirV
	}
}

func (t *L2) handlePut(now sim.Cycle, m *coherence.Msg) {
	if t.txs.BusyLine(m.Addr) {
		t.txs.EnqueueWaiting(m)
		return
	}
	w := t.cache.Peek(m.Addr)
	if w == nil || w.Meta.state != dirX || w.Meta.owner != m.Src {
		// Stale writeback: ownership already moved on. Ack and drop.
		t.sendPutAck(now, m.Src, m.Addr)
		return
	}
	if m.Type == coherence.MsgPutM {
		copy(w.Data[:], m.Data)
		w.Meta.dirty = true
	}
	t.trans(m.Addr, dirX, dirV)
	w.Meta.state = dirV
	w.Meta.owner = 0
	t.sendPutAck(now, m.Src, m.Addr)
}

// sendPutAck schedules an eviction acknowledgement. The victim fault
// profile adds extra cycles here, deliberately outside the shared
// sendAfterAccess delay so a late PutAck can be overtaken by later
// directory traffic — the requester's evict-buffer machinery must absorb
// the reorder (PutAck only clears the buffered entry, so it is legal).
func (t *L2) sendPutAck(now sim.Cycle, dst coherence.NodeID, addr uint64) {
	extra := sim.Cycle(0)
	if t.ackDelayFault != nil {
		extra = t.ackDelayFault()
	}
	t.timers.AtMsg(now+t.accessLat+extra, t.sendFn,
		t.pool.NewFrom(coherence.Msg{Type: coherence.MsgPutAck, Dst: dst, Addr: addr}, nil))
}

// Debug renders outstanding transaction state (deadlock diagnostics).
func (t *L2) Debug() string {
	return fmt.Sprintf("L2 %d:%s timers=%d", t.id, t.txs.Debug(), t.timers.Pending())
}

// PrewarmStorage implements coherence.StoragePrewarmer.
func (t *L2) PrewarmStorage() { t.cache.Prewarm() }
