package mesi

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// L2 directory line states (invalid way = not present).
const (
	dirV = iota + 1 // valid at L2, no L1 copies
	dirS            // shared by the cores in the sharing vector
	dirX            // exclusive at owner (E or M in its L1)
)

type l2Line struct {
	state   int
	sharers uint64 // full sharing vector (bit per core; cores <= 64)
	owner   coherence.NodeID
	dirty   bool // data newer than memory
}

type txKind int

const (
	txMemFetch txKind = iota + 1
	txAwaitAck        // exclusive grant sent; waiting for requester Ack
	txFwdGetS         // forwarded read; waiting for owner WBData
	txFwdGetX         // forwarded write; waiting for requester Ack
	txInvColl         // invalidations outstanding; counting InvAcks
	txEvict           // evicting this line; waiting for acks/WBData
)

type l2Tx struct {
	kind      txKind
	req       *coherence.Msg // original request (nil for evictions)
	acksLeft  int
	nextOwner coherence.NodeID
	isUpgrade bool
}

// L2 is one NUCA directory tile.
type L2 struct {
	id    coherence.NodeID
	tile  int
	cores int
	cache *memsys.Cache[l2Line]
	net   *mesh.Network
	pool  *coherence.MsgPool
	mem   *memsys.Memory

	accessLat sim.Cycle

	timers  coherence.Timers
	sendFn  func(now sim.Cycle, m *coherence.Msg) // bound once; see sendAfterAccess
	inbox   []*coherence.Msg
	tx      map[uint64]*l2Tx
	txFree  []*l2Tx
	waiting map[uint64][]*coherence.Msg

	// retryQ swaps with retryScratch each Tick: handlers may re-append
	// to retryQ while the drained batch is still being iterated.
	retryQ       []*coherence.Msg
	retryScratch []*coherence.Msg

	// retained marks whether the message currently being handled was
	// stored (tx request, waiting queue, retry queue) and must not be
	// recycled by the consume wrapper.
	retained bool
}

// NewL2 builds directory tile `tile`.
func NewL2(tile, cores int, sizeBytes, ways int, accessLat sim.Cycle, net *mesh.Network, mem *memsys.Memory) *L2 {
	if cores > 64 {
		panic("mesi: full sharing vector limited to 64 cores in this model")
	}
	l2 := &L2{
		id:        coherence.L2ID(tile, cores),
		tile:      tile,
		cores:     cores,
		cache:     memsys.NewCache[l2Line](sizeBytes, ways),
		net:       net,
		pool:      &net.Pool,
		mem:       mem,
		accessLat: accessLat,
		tx:        make(map[uint64]*l2Tx),
		waiting:   make(map[uint64][]*coherence.Msg),
	}
	l2.sendFn = l2.send
	return l2
}

func (t *L2) send(now sim.Cycle, m *coherence.Msg) {
	m.Src = t.id
	t.net.Send(now, m)
}

// sendAfterAccess sends m after the tile access latency. Every
// directory-originated message to an L1 must leave through the same
// delay so that per-destination FIFO order matches processing order —
// an invalidation must never overtake an earlier data response.
func (t *L2) sendAfterAccess(now sim.Cycle, tmpl coherence.Msg, data []byte) {
	t.timers.AtMsg(now+t.accessLat, t.sendFn, t.pool.NewFrom(tmpl, data))
}

// newTx builds a transaction record from the free list and registers it.
func (t *L2) newTx(addr uint64, kind txKind, req *coherence.Msg, acks int) *l2Tx {
	var tx *l2Tx
	if n := len(t.txFree); n > 0 {
		tx = t.txFree[n-1]
		t.txFree = t.txFree[:n-1]
	} else {
		tx = &l2Tx{}
	}
	tx.kind, tx.req, tx.acksLeft = kind, req, acks
	tx.nextOwner, tx.isUpgrade = 0, false
	t.tx[addr] = tx
	if req != nil {
		t.retained = true
	}
	return tx
}

// delTx retires a transaction, recycling it and (optionally) the request
// message it retained.
func (t *L2) delTx(addr uint64, tx *l2Tx, freeReq bool) {
	delete(t.tx, addr)
	if freeReq && tx.req != nil {
		t.pool.Put(tx.req)
	}
	tx.req = nil
	t.txFree = append(t.txFree, tx)
}

// enqueueWaiting parks m behind a busy line; drainWaiting re-dispatches
// it when the transaction retires. Owns the retained flag.
func (t *L2) enqueueWaiting(m *coherence.Msg) {
	t.waiting[m.Addr] = append(t.waiting[m.Addr], m)
	t.retained = true
}

// enqueueRetry re-queues m for the next Tick. Owns the retained flag.
func (t *L2) enqueueRetry(m *coherence.Msg) {
	t.retryQ = append(t.retryQ, m)
	t.retained = true
}

// consume dispatches a message the tile owns, recycling it unless a
// handler retained it. Save/restore keeps nested consumption (a handler
// draining the waiting queue) from clobbering the caller's flag.
func (t *L2) consume(now sim.Cycle, m *coherence.Msg) {
	saved := t.retained
	t.retained = false
	t.handle(now, m)
	if !t.retained {
		t.pool.Put(m)
	}
	t.retained = saved
}

// Deliver implements mesh.Endpoint.
func (t *L2) Deliver(now sim.Cycle, m *coherence.Msg) { t.inbox = append(t.inbox, m) }

// Busy reports outstanding work (completion/deadlock checks).
func (t *L2) Busy() bool {
	return len(t.tx) > 0 || len(t.retryQ) > 0 || len(t.inbox) > 0 || t.timers.Pending() > 0
}

// NextWake implements sim.WakeHinter: queued messages and retries need
// the very next cycle; otherwise the earliest due timer.
func (t *L2) NextWake(now sim.Cycle) sim.Cycle {
	if len(t.inbox) > 0 || len(t.retryQ) > 0 {
		return now + 1
	}
	if due, ok := t.timers.NextDue(); ok {
		return due
	}
	return sim.WakeNever
}

// Tick processes timers, retries and inbox messages.
func (t *L2) Tick(now sim.Cycle) {
	t.timers.Tick(now)
	if len(t.retryQ) > 0 {
		rq := t.retryQ
		t.retryQ = t.retryScratch[:0]
		for _, m := range rq {
			t.consume(now, m)
		}
		t.retryScratch = rq[:0]
	}
	if len(t.inbox) == 0 {
		return
	}
	// Deliveries happen only inside Network.Tick, so nothing appends to
	// the inbox while this batch drains; the backing array is reusable.
	msgs := t.inbox
	t.inbox = t.inbox[:0]
	for _, m := range msgs {
		t.consume(now, m)
	}
}

func (t *L2) handle(now sim.Cycle, m *coherence.Msg) {
	switch m.Type {
	case coherence.MsgGetS, coherence.MsgGetX:
		t.handleRequest(now, m)
	case coherence.MsgPutS:
		t.handlePutS(now, m)
	case coherence.MsgPutE, coherence.MsgPutM:
		t.handlePut(now, m)
	case coherence.MsgAck:
		t.handleAck(now, m)
	case coherence.MsgInvAck:
		t.handleInvAck(now, m)
	case coherence.MsgWBData:
		t.handleWBData(now, m)
	default:
		panic(fmt.Sprintf("mesi: L2 %d: unexpected message %s", t.id, m))
	}
}

func (t *L2) busyLine(addr uint64) bool {
	_, ok := t.tx[addr]
	return ok
}

func (t *L2) handleRequest(now sim.Cycle, m *coherence.Msg) {
	if t.busyLine(m.Addr) {
		t.enqueueWaiting(m)
		return
	}
	w := t.cache.Peek(m.Addr)
	if w == nil {
		t.startFetch(now, m)
		return
	}
	if m.Type == coherence.MsgGetS {
		t.serveGetS(now, m, w)
	} else {
		t.serveGetX(now, m, w)
	}
}

// startFetch allocates a line and fills it from memory.
func (t *L2) startFetch(now sim.Cycle, m *coherence.Msg) {
	v := t.cache.Victim(m.Addr)
	if v == nil {
		// Every way busy: retry next cycle.
		t.enqueueRetry(m)
		return
	}
	if v.Valid {
		if t.cache.AnyBusy(m.Addr) {
			// Another transaction (possibly an eviction) is active in
			// this set; wait rather than evicting way after way.
			t.enqueueRetry(m)
			return
		}
		if !t.evictLine(now, v) {
			// Asynchronous eviction started; retry the request after.
			t.enqueueRetry(m)
			return
		}
	}
	t.cache.Install(v, m.Addr)
	v.Busy = true
	t.newTx(m.Addr, txMemFetch, m, 0)
	lat := t.accessLat + t.mem.Latency(m.Addr)
	addr := m.Addr
	t.timers.At(now+lat, func(nw sim.Cycle) {
		way := t.cache.Peek(addr)
		if way == nil {
			panic(fmt.Sprintf("mesi: L2 %d: fetched line vanished %#x", t.id, addr))
		}
		t.mem.ReadBlock(addr, way.Data)
		way.Meta.state = dirV
		way.Busy = false
		tx := t.tx[addr]
		req := tx.req
		t.delTx(addr, tx, false)
		// The request's ownership flows into serve*: recycled here
		// unless a fresh transaction retains it.
		saved := t.retained
		t.retained = false
		if req.Type == coherence.MsgGetS {
			t.serveGetS(nw, req, way)
		} else {
			t.serveGetX(nw, req, way)
		}
		if !t.retained {
			t.pool.Put(req)
		}
		t.retained = saved
	})
}

// evictLine evicts v. It returns true if the eviction completed
// synchronously (line now invalid); false if an asynchronous recall /
// invalidation transaction was started.
func (t *L2) evictLine(now sim.Cycle, v *memsys.Way[l2Line]) bool {
	addr := v.Tag
	switch v.Meta.state {
	case dirV:
		if v.Meta.dirty {
			t.mem.WriteBlock(addr, v.Data)
		}
		t.cache.Invalidate(v)
		return true
	case dirS:
		n := 0
		for c := 0; c < t.cores; c++ {
			if v.Meta.sharers&(1<<uint(c)) != 0 {
				t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: coherence.L1ID(c), Addr: addr}, nil)
				n++
			}
		}
		v.Busy = true
		t.newTx(addr, txEvict, nil, n)
		return false
	case dirX:
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: v.Meta.owner, Addr: addr}, nil)
		v.Busy = true
		t.newTx(addr, txEvict, nil, 1)
		return false
	}
	panic("mesi: evictLine on invalid state")
}

func (t *L2) serveGetS(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line]) {
	switch w.Meta.state {
	case dirV:
		// Grant Exclusive (the E optimization: no other sharers).
		w.Busy = true
		tx := t.newTx(m.Addr, txAwaitAck, m, 0)
		tx.nextOwner = m.Requestor
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data)
	case dirS:
		w.Meta.sharers |= 1 << uint(int(m.Requestor))
		t.respond(now, m.Requestor, coherence.MsgDataS, m.Addr, w.Data)
	case dirX:
		if w.Meta.owner == m.Requestor {
			panic(fmt.Sprintf("mesi: L2 %d: GetS from current owner %s", t.id, m))
		}
		w.Busy = true
		t.newTx(m.Addr, txFwdGetS, m, 0)
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgFwdGetS, Dst: w.Meta.owner, Addr: m.Addr, Requestor: m.Requestor}, nil)
	}
}

func (t *L2) serveGetX(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line]) {
	reqBit := uint64(1) << uint(int(m.Requestor))
	switch w.Meta.state {
	case dirV:
		w.Busy = true
		tx := t.newTx(m.Addr, txAwaitAck, m, 0)
		tx.nextOwner = m.Requestor
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data)
	case dirS:
		isUpgrade := w.Meta.sharers&reqBit != 0
		others := 0
		for c := 0; c < t.cores; c++ {
			bit := uint64(1) << uint(c)
			if w.Meta.sharers&bit != 0 && coherence.L1ID(c) != m.Requestor {
				t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: coherence.L1ID(c), Addr: m.Addr}, nil)
				others++
			}
		}
		w.Busy = true
		if others == 0 {
			tx := t.newTx(m.Addr, txAwaitAck, m, 0)
			tx.nextOwner, tx.isUpgrade = m.Requestor, isUpgrade
			t.grantX(now, m, w, isUpgrade)
		} else {
			tx := t.newTx(m.Addr, txInvColl, m, others)
			tx.nextOwner, tx.isUpgrade = m.Requestor, isUpgrade
		}
	case dirX:
		if w.Meta.owner == m.Requestor {
			panic(fmt.Sprintf("mesi: L2 %d: GetX from current owner %s", t.id, m))
		}
		w.Busy = true
		tx := t.newTx(m.Addr, txFwdGetX, m, 0)
		tx.nextOwner = m.Requestor
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgFwdGetX, Dst: w.Meta.owner, Addr: m.Addr, Requestor: m.Requestor}, nil)
	}
}

func (t *L2) grantX(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line], isUpgrade bool) {
	if isUpgrade {
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgUpgAck, Dst: m.Requestor, Addr: m.Addr}, nil)
	} else {
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data)
	}
}

func (t *L2) respond(now sim.Cycle, dst coherence.NodeID, typ coherence.MsgType, addr uint64, data []byte) {
	t.sendAfterAccess(now, coherence.Msg{Type: typ, Dst: dst, Addr: addr}, data)
}

func (t *L2) handleAck(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.tx[m.Addr]
	if !ok || (tx.kind != txAwaitAck && tx.kind != txFwdGetX) {
		panic(fmt.Sprintf("mesi: L2 %d: stray Ack %s", t.id, m))
	}
	w := t.cache.Peek(m.Addr)
	w.Meta.state = dirX
	w.Meta.owner = tx.nextOwner
	w.Meta.sharers = 0
	w.Busy = false
	t.delTx(m.Addr, tx, true)
	t.drainWaiting(now, m.Addr)
}

func (t *L2) handleInvAck(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.tx[m.Addr]
	if !ok {
		panic(fmt.Sprintf("mesi: L2 %d: stray InvAck %s", t.id, m))
	}
	tx.acksLeft--
	if tx.acksLeft > 0 {
		return
	}
	w := t.cache.Peek(m.Addr)
	switch tx.kind {
	case txInvColl:
		// All sharers gone; grant exclusivity, stay busy until Ack.
		tx.kind = txAwaitAck
		w.Meta.sharers = 0
		t.grantX(now, tx.req, w, tx.isUpgrade)
	case txEvict:
		t.finishEvict(now, w)
	default:
		panic(fmt.Sprintf("mesi: L2 %d: InvAck in tx kind %d", t.id, tx.kind))
	}
}

func (t *L2) handleWBData(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.tx[m.Addr]
	if !ok {
		panic(fmt.Sprintf("mesi: L2 %d: stray WBData %s", t.id, m))
	}
	w := t.cache.Peek(m.Addr)
	switch tx.kind {
	case txFwdGetS:
		copy(w.Data, m.Data)
		if m.Dirty {
			w.Meta.dirty = true
		}
		prevOwner := w.Meta.owner
		w.Meta.state = dirS
		w.Meta.sharers = 1 << uint(int(tx.req.Requestor))
		if !m.NoCopy {
			// Previous owner kept a downgraded Shared copy.
			w.Meta.sharers |= 1 << uint(int(prevOwner))
		}
		w.Meta.owner = 0
		w.Busy = false
		t.delTx(m.Addr, tx, true)
		t.drainWaiting(now, m.Addr)
	case txEvict:
		if m.Dirty {
			copy(w.Data, m.Data)
			w.Meta.dirty = true
		}
		t.finishEvict(now, w)
	default:
		panic(fmt.Sprintf("mesi: L2 %d: WBData in tx kind %d", t.id, tx.kind))
	}
}

func (t *L2) finishEvict(now sim.Cycle, w *memsys.Way[l2Line]) {
	addr := w.Tag
	if w.Meta.dirty {
		t.mem.WriteBlock(addr, w.Data)
	}
	t.delTx(addr, t.tx[addr], false)
	t.cache.Invalidate(w)
	// Requests that queued behind the eviction now miss and refetch.
	t.drainWaiting(now, addr)
}

func (t *L2) handlePutS(now sim.Cycle, m *coherence.Msg) {
	w := t.cache.Peek(m.Addr)
	if w == nil || w.Meta.state != dirS {
		return
	}
	if t.busyLine(m.Addr) {
		// An invalidation round may be counting this sharer; let the
		// crossing InvAck from the (now absent) sharer settle it.
		t.enqueueWaiting(m)
		return
	}
	w.Meta.sharers &^= 1 << uint(int(m.Src))
	if w.Meta.sharers == 0 {
		w.Meta.state = dirV
	}
}

func (t *L2) handlePut(now sim.Cycle, m *coherence.Msg) {
	if t.busyLine(m.Addr) {
		t.enqueueWaiting(m)
		return
	}
	w := t.cache.Peek(m.Addr)
	if w == nil || w.Meta.state != dirX || w.Meta.owner != m.Src {
		// Stale writeback: ownership already moved on. Ack and drop.
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgPutAck, Dst: m.Src, Addr: m.Addr}, nil)
		return
	}
	if m.Type == coherence.MsgPutM {
		copy(w.Data, m.Data)
		w.Meta.dirty = true
	}
	w.Meta.state = dirV
	w.Meta.owner = 0
	t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgPutAck, Dst: m.Src, Addr: m.Addr}, nil)
}

func (t *L2) drainWaiting(now sim.Cycle, addr uint64) {
	q, ok := t.waiting[addr]
	if !ok || len(q) == 0 {
		delete(t.waiting, addr)
		return
	}
	delete(t.waiting, addr)
	for _, m := range q {
		t.consume(now, m)
	}
}

// Debug renders outstanding transaction state (deadlock diagnostics).
func (t *L2) Debug() string {
	s := fmt.Sprintf("L2 %d:", t.id)
	for a, tx := range t.tx {
		s += fmt.Sprintf(" tx=%#x(kind=%d acks=%d)", a, tx.kind, tx.acksLeft)
	}
	for a, q := range t.waiting {
		s += fmt.Sprintf(" wait=%#x(%d)", a, len(q))
	}
	s += fmt.Sprintf(" retry=%d timers=%d inbox=%d", len(t.retryQ), t.timers.Pending(), len(t.inbox))
	return s
}
