// Baseline-behaviour tests: these pin down the eager-MESI properties the
// paper contrasts TSO-CC against (invalidation fan-out on writes,
// exclusive grants, directory recalls on L2 evictions).
package mesi_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/mesi"
	"repro/internal/program"
	"repro/internal/system"
)

func run(t *testing.T, cfg config.System, w *program.Workload) *system.Result {
	t.Helper()
	res, err := system.Run(cfg, mesi.New(), w)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if res.CheckErr != nil {
		t.Fatalf("%s: %v", w.Name, res.CheckErr)
	}
	// The TxTable/controller ownership discipline must return every
	// pooled message once the run quiesces.
	if res.PoolLive != 0 {
		t.Fatalf("%s: MsgPool leak: %d of %d messages not returned",
			w.Name, res.PoolLive, res.PoolGets)
	}
	// Likewise every registered directory transaction must have retired.
	if res.TxLive != 0 {
		t.Fatalf("%s: TxTable leak: %d transaction(s) never retired", w.Name, res.TxLive)
	}
	return res
}

// TestEagerInvalidationFanout: a write to a line with sharers must
// invalidate every sharer.
func TestEagerInvalidationFanout(t *testing.T) {
	const line = 0x5000
	reader := func(id int) *program.Program {
		b := program.NewBuilder(fmt.Sprintf("r%d", id))
		b.Nop(int64(50 + id*20))
		b.Li(1, line)
		b.Ld(2, 1, 0)
		b.Nop(600)
		b.Halt()
		return b.MustBuild()
	}
	wr := program.NewBuilder("w")
	wr.Li(1, line).Li(2, 1)
	wr.St(1, 0, 2)
	wr.Nop(400)
	wr.Li(2, 2)
	wr.St(1, 0, 2) // second write: sharers must be invalidated
	wr.Halt()
	w := &program.Workload{Name: "fanout",
		Programs: []*program.Program{reader(0), reader(1), reader(2), wr.MustBuild()}}
	res := run(t, config.Small(4), w)
	if res.L1.InvalidationsReceived.Value() < 3 {
		t.Fatalf("invalidations = %d, want >= 3 (one per sharer)",
			res.L1.InvalidationsReceived.Value())
	}
}

// TestExclusiveGrantOnSoleReader: the first reader of an uncached line
// gets E and silently upgrades to M on a write (no second transaction).
func TestExclusiveGrantOnSoleReader(t *testing.T) {
	b := program.NewBuilder("solo")
	b.Li(1, 0x6000)
	b.Ld(2, 1, 0) // E grant
	b.Li(3, 5)
	b.St(1, 0, 3) // silent E->M: a write HIT, not a miss
	b.Fence()
	b.Halt()
	w := &program.Workload{Name: "egrant", Programs: []*program.Program{b.MustBuild()}}
	res := run(t, config.Small(2), w)
	if res.L1.WriteHitPrivate.Value() != 1 {
		t.Fatalf("write hits = %d, want 1 (silent E->M)", res.L1.WriteHitPrivate.Value())
	}
	if res.L1.WriteMissInvalid.Value()+res.L1.WriteMissShared.Value() != 0 {
		t.Fatal("the write after an E grant should not miss")
	}
}

// TestReadSharingNoInvalidations: read-only sharing must not generate
// invalidations.
func TestReadSharingNoInvalidations(t *testing.T) {
	progs := make([]*program.Program, 4)
	for i := range progs {
		b := program.NewBuilder(fmt.Sprintf("r%d", i))
		b.Li(1, 0x7000)
		b.Li(2, 0)
		b.Li(3, 100)
		b.Label("loop")
		b.Ld(4, 1, 0)
		b.Addi(2, 2, 1)
		b.Blt(2, 3, "loop")
		b.Halt()
		progs[i] = b.MustBuild()
	}
	w := &program.Workload{Name: "roshare", Programs: progs,
		InitMem: map[uint64]uint64{0x7000: 9}}
	res := run(t, config.Small(4), w)
	if res.L1.InvalidationsReceived.Value() != 0 {
		t.Fatalf("invalidations = %d on read-only sharing", res.L1.InvalidationsReceived.Value())
	}
	// After the first reads, everything hits locally.
	if res.L1.ReadHitShared.Value()+res.L1.ReadHitPrivate.Value() < 350 {
		t.Fatalf("hits = %d, sharing not effective",
			res.L1.ReadHitShared.Value()+res.L1.ReadHitPrivate.Value())
	}
}

// TestOwnershipMigration: write, then another core writes; ownership
// moves via FwdGetX and the final value is the last writer's.
func TestOwnershipMigration(t *testing.T) {
	const line = 0x8000
	a := program.NewBuilder("a")
	a.Li(1, line).Li(2, 1)
	a.St(1, 0, 2)
	a.Fence()
	a.Halt()
	b := program.NewBuilder("b")
	b.Li(1, line).Li(2, 1)
	b.SpinUntilEq(3, 1, 0, 2) // wait until a's write is visible
	b.Li(2, 2)
	b.St(1, 0, 2)
	b.Fence()
	b.Halt()
	w := &program.Workload{Name: "migrate",
		Programs: []*program.Program{a.MustBuild(), b.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(line); got != 2 {
				return fmt.Errorf("final = %d, want 2", got)
			}
			return nil
		}}
	run(t, config.Small(2), w)
}

// TestTinyCacheRecalls: an L2 small enough to thrash forces directory
// recalls of exclusive lines; data must survive.
func TestTinyCacheRecalls(t *testing.T) {
	cfg := config.Small(2)
	cfg.L2TileSize = 1 << 10 // 16 lines per tile: heavy conflict
	cfg.L2Ways = 2
	b := program.NewBuilder("thrash")
	b.Li(1, 0x10000)
	b.Li(2, 0)
	b.Li(3, 256)
	b.Li(6, 7)
	b.Label("loop")
	b.Shl(4, 2, 6)
	b.Add(4, 4, 1)
	b.St(4, 0, 2)
	b.Ld(5, 4, 0)
	b.Bne(5, 2, "fail")
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Li(7, 0x500)
	b.Li(8, 1)
	b.St(7, 0, 8)
	b.Fence()
	b.Halt()
	b.Label("fail")
	b.Li(7, 0x500)
	b.Li(8, 2)
	b.St(7, 0, 8)
	b.Fence()
	b.Halt()
	w := &program.Workload{Name: "recalls",
		Programs: []*program.Program{b.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(0x500); got != 1 {
				return fmt.Errorf("readback flag = %d, want 1", got)
			}
			return nil
		}}
	run(t, cfg, w)
}

// TestUpgradePath: a Shared holder writing takes the data-less upgrade
// (WriteMissShared) rather than a full refill.
func TestUpgradePath(t *testing.T) {
	const line = 0x9000
	a := program.NewBuilder("a")
	a.Li(1, line).Li(2, 1)
	a.St(1, 0, 2) // become owner, dirty
	a.Nop(300)
	a.Halt()
	b := program.NewBuilder("b")
	b.Li(1, line).Li(2, 1)
	b.SpinUntilEq(3, 1, 0, 2) // pulls the line Shared
	b.Li(2, 2)
	b.St(1, 0, 2) // upgrade from S
	b.Fence()
	b.Halt()
	w := &program.Workload{Name: "upgrade",
		Programs: []*program.Program{a.MustBuild(), b.MustBuild()}}
	res := run(t, config.Small(2), w)
	if res.L1.WriteMissShared.Value() == 0 {
		t.Fatal("no Shared-state upgrade recorded")
	}
}

// TestMESIHasNoSelfInvalidations: the eager baseline never sweeps.
func TestMESIHasNoSelfInvalidations(t *testing.T) {
	b := program.NewBuilder("x")
	b.Li(1, 0x1000).Li(2, 1)
	b.St(1, 0, 2)
	b.Fence()
	b.Ld(3, 1, 0)
	b.Halt()
	w := &program.Workload{Name: "noselfinv", Programs: []*program.Program{b.MustBuild()}}
	res := run(t, config.Small(2), w)
	if res.L1.SelfInvTotal() != 0 {
		t.Fatalf("MESI recorded %d self-invalidations", res.L1.SelfInvTotal())
	}
}
