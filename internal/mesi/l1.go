// Package mesi implements the paper's baseline: a full-map MESI directory
// protocol. Each private L1 holds lines in Invalid/Shared/Exclusive/
// Modified; the NUCA L2 tiles keep an inclusive directory with a full
// sharing vector, eagerly invalidating sharers on writes. Transient
// races are serialized with a blocking directory (see DESIGN.md §6).
package mesi

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// L1 line states.
const (
	stateS = iota + 1
	stateE
	stateM
)

type l1Line struct {
	state int
}

type readTx struct {
	addr     uint64 // block address
	wordAddr uint64
	cb       func(uint64)
	squashed bool
}

type writeTx struct {
	addr     uint64
	wordAddr uint64
	isRMW    bool
	val      uint64 // plain store value
	f        func(old uint64) (uint64, bool)
	storeCb  func()
	rmwCb    func(uint64)
	issued   sim.Cycle
	upgrade  bool // line was Shared locally when requested
}

// L1 is one core's private cache controller.
type L1 struct {
	id     coherence.NodeID
	cores  int
	cache  *memsys.Cache[l1Line]
	net    *mesh.Network
	hitLat sim.Cycle

	timers coherence.Timers
	inbox  []*coherence.Msg

	rd *readTx
	wr *writeTx

	evict map[uint64]*evictEntry

	Stats coherence.L1Stats
}

type evictEntry struct {
	data        []byte
	dirty       bool
	transferred bool // ownership passed to another core while in flight
}

// NewL1 builds the L1 controller for the given core.
func NewL1(core, cores int, sizeBytes, ways int, hitLat sim.Cycle, net *mesh.Network) *L1 {
	return &L1{
		id:     coherence.L1ID(core),
		cores:  cores,
		cache:  memsys.NewCache[l1Line](sizeBytes, ways),
		net:    net,
		hitLat: hitLat,
		evict:  make(map[uint64]*evictEntry),
	}
}

func (l *L1) home(addr uint64) coherence.NodeID {
	tile := int(addr>>coherence.BlockShift) % l.cores
	return coherence.L2ID(tile, l.cores)
}

func (l *L1) send(now sim.Cycle, m *coherence.Msg) {
	m.Src = l.id
	l.net.Send(now, m)
}

// Deliver implements mesh.Endpoint.
func (l *L1) Deliver(now sim.Cycle, m *coherence.Msg) { l.inbox = append(l.inbox, m) }

// Tick processes due timers and delivered messages.
func (l *L1) Tick(now sim.Cycle) {
	l.timers.Tick(now)
	if len(l.inbox) == 0 {
		return
	}
	msgs := l.inbox
	l.inbox = nil
	for _, m := range msgs {
		l.handle(now, m)
	}
}

// Busy reports whether any transaction is outstanding (completion check).
func (l *L1) Busy() bool {
	return l.rd != nil || l.wr != nil || len(l.evict) > 0 || l.timers.Pending() > 0 || len(l.inbox) > 0
}

// ---- CorePort ----

// Load implements coherence.CorePort.
func (l *L1) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	blk := coherence.BlockAddr(addr)
	if l.rd != nil {
		return false
	}
	if l.wr != nil && l.wr.addr == blk {
		return false // serialize same-block read/write transactions
	}
	if w := l.cache.Lookup(addr); w != nil {
		if w.Meta.state == stateS {
			l.Stats.ReadHitShared.Inc()
		} else {
			l.Stats.ReadHitPrivate.Inc()
		}
		val := memsys.GetWord(w.Data, addr)
		l.timers.At(now+l.hitLat, func(sim.Cycle) { cb(val) })
		return true
	}
	l.Stats.ReadMissInvalid.Inc()
	l.rd = &readTx{addr: blk, wordAddr: addr, cb: cb}
	l.send(now, &coherence.Msg{Type: coherence.MsgGetS, Dst: l.home(addr), Addr: blk, Requestor: l.id})
	return true
}

// Store implements coherence.CorePort.
func (l *L1) Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool {
	blk := coherence.BlockAddr(addr)
	if l.wr != nil {
		return false
	}
	if l.rd != nil && l.rd.addr == blk {
		return false
	}
	if w := l.cache.Lookup(addr); w != nil && w.Meta.state != stateS {
		w.Meta.state = stateM
		memsys.PutWord(w.Data, addr, val)
		l.Stats.WriteHitPrivate.Inc()
		l.timers.At(now+1, func(sim.Cycle) { cb() })
		return true
	}
	upgrade := false
	if w := l.cache.Peek(addr); w != nil && w.Meta.state == stateS {
		upgrade = true
		// Pin the Shared copy: a concurrent read's fill must not evict
		// it while the upgrade is in flight (a data-less UpgAck would
		// then have nothing to upgrade).
		w.Busy = true
		l.Stats.WriteMissShared.Inc()
	} else {
		l.Stats.WriteMissInvalid.Inc()
	}
	l.wr = &writeTx{addr: blk, wordAddr: addr, val: val, storeCb: cb, issued: now, upgrade: upgrade}
	l.send(now, &coherence.Msg{Type: coherence.MsgGetX, Dst: l.home(addr), Addr: blk, Requestor: l.id})
	return true
}

// RMW implements coherence.CorePort.
func (l *L1) RMW(now sim.Cycle, addr uint64, f func(uint64) (uint64, bool), cb func(uint64)) bool {
	blk := coherence.BlockAddr(addr)
	if l.wr != nil {
		return false
	}
	if l.rd != nil && l.rd.addr == blk {
		return false
	}
	if w := l.cache.Lookup(addr); w != nil && w.Meta.state != stateS {
		old := memsys.GetWord(w.Data, addr)
		if nv, doWrite := f(old); doWrite {
			memsys.PutWord(w.Data, addr, nv)
			w.Meta.state = stateM
		}
		l.Stats.WriteHitPrivate.Inc()
		l.Stats.RMWLat.Observe(int64(l.hitLat))
		l.timers.At(now+l.hitLat, func(sim.Cycle) { cb(old) })
		return true
	}
	upgrade := false
	if w := l.cache.Peek(addr); w != nil && w.Meta.state == stateS {
		upgrade = true
		w.Busy = true
		l.Stats.WriteMissShared.Inc()
	} else {
		l.Stats.WriteMissInvalid.Inc()
	}
	l.wr = &writeTx{addr: blk, wordAddr: addr, isRMW: true, f: f, rmwCb: cb, issued: now, upgrade: upgrade}
	l.send(now, &coherence.Msg{Type: coherence.MsgGetX, Dst: l.home(addr), Addr: blk, Requestor: l.id})
	return true
}

// Fence implements coherence.CorePort. MESI is eagerly coherent; a fence
// needs no cache actions beyond the core's write-buffer drain.
func (l *L1) Fence(now sim.Cycle, cb func()) bool {
	l.timers.At(now+1, func(sim.Cycle) { cb() })
	return true
}

// ---- Message handling ----

func (l *L1) handle(now sim.Cycle, m *coherence.Msg) {
	switch m.Type {
	case coherence.MsgDataE:
		l.Stats.DataResponses.Inc()
		if l.wr != nil && l.wr.addr == m.Addr {
			l.completeWrite(now, m.Data)
			l.send(now, &coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr})
			return
		}
		l.completeRead(now, m, stateE)
		l.send(now, &coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr})

	case coherence.MsgDataS:
		l.Stats.DataResponses.Inc()
		l.completeRead(now, m, stateS)

	case coherence.MsgDataOwner:
		l.Stats.DataResponses.Inc()
		if l.wr != nil && l.wr.addr == m.Addr {
			l.completeWrite(now, m.Data)
			l.send(now, &coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr})
			return
		}
		l.completeRead(now, m, stateS)

	case coherence.MsgUpgAck:
		if l.wr == nil || l.wr.addr != m.Addr {
			panic(fmt.Sprintf("mesi: L1 %d: unexpected UpgAck %s", l.id, m))
		}
		w := l.cache.Peek(m.Addr)
		if w == nil || w.Meta.state != stateS {
			panic(fmt.Sprintf("mesi: L1 %d: UpgAck without Shared line %s", l.id, m))
		}
		l.completeWrite(now, nil)
		l.send(now, &coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr})

	case coherence.MsgFwdGetS:
		l.handleFwdGetS(now, m)

	case coherence.MsgFwdGetX:
		l.handleFwdGetX(now, m)

	case coherence.MsgInv:
		l.handleInv(now, m)

	case coherence.MsgPutAck:
		delete(l.evict, m.Addr)

	default:
		panic(fmt.Sprintf("mesi: L1 %d: unexpected message %s", l.id, m))
	}
}

func (l *L1) completeWrite(now sim.Cycle, data []byte) {
	tx := l.wr
	w := l.cache.Peek(tx.addr)
	if data != nil {
		// Fresh data arrived; (re)install the line.
		w = l.install(now, tx.addr, data)
	}
	if w == nil {
		panic(fmt.Sprintf("mesi: L1 %d: write completion without line %#x", l.id, tx.addr))
	}
	w.Busy = false
	w.Meta.state = stateM
	old := memsys.GetWord(w.Data, tx.wordAddr)
	if tx.isRMW {
		if nv, doWrite := tx.f(old); doWrite {
			memsys.PutWord(w.Data, tx.wordAddr, nv)
		}
		l.Stats.RMWLat.Observe(int64(now - tx.issued))
	} else {
		memsys.PutWord(w.Data, tx.wordAddr, tx.val)
	}
	l.wr = nil
	if tx.isRMW {
		tx.rmwCb(old)
	} else {
		tx.storeCb()
	}
}

func (l *L1) completeRead(now sim.Cycle, m *coherence.Msg, state int) {
	tx := l.rd
	if tx == nil || tx.addr != m.Addr {
		panic(fmt.Sprintf("mesi: L1 %d: data response without read tx %s", l.id, m))
	}
	val := memsys.GetWord(m.Data, tx.wordAddr)
	// Responses sent by the L2 itself are FIFO-ordered after any Inv the
	// L2 issued, so they are always fresh; only owner-forwarded data can
	// be overtaken by a later invalidation (the squash case).
	if !tx.squashed || m.Type != coherence.MsgDataOwner {
		w := l.install(now, m.Addr, m.Data)
		w.Meta.state = state
	}
	l.rd = nil
	tx.cb(val)
}

func (l *L1) install(now sim.Cycle, addr uint64, data []byte) *memsys.Way[l1Line] {
	if w := l.cache.Peek(addr); w != nil {
		copy(w.Data, data)
		return w
	}
	w := l.cache.Victim(addr)
	if w == nil {
		panic(fmt.Sprintf("mesi: L1 %d: no victim for %#x", l.id, addr))
	}
	if w.Valid {
		l.evictLine(now, w)
	}
	l.cache.Install(w, addr)
	copy(w.Data, data)
	return w
}

func (l *L1) evictLine(now sim.Cycle, w *memsys.Way[l1Line]) {
	addr := w.Tag
	switch w.Meta.state {
	case stateS:
		l.send(now, &coherence.Msg{Type: coherence.MsgPutS, Dst: l.home(addr), Addr: addr})
	case stateE:
		l.evict[addr] = &evictEntry{data: append([]byte(nil), w.Data...), dirty: false}
		l.send(now, &coherence.Msg{Type: coherence.MsgPutE, Dst: l.home(addr), Addr: addr})
	case stateM:
		l.evict[addr] = &evictEntry{data: append([]byte(nil), w.Data...), dirty: true}
		l.send(now, &coherence.Msg{Type: coherence.MsgPutM, Dst: l.home(addr), Addr: addr,
			Data: append([]byte(nil), w.Data...), Dirty: true})
	}
	l.cache.Invalidate(w)
}

func (l *L1) handleFwdGetS(now sim.Cycle, m *coherence.Msg) {
	if w := l.cache.Peek(m.Addr); w != nil && w.Meta.state != stateS {
		dirty := w.Meta.state == stateM
		w.Meta.state = stateS
		l.send(now, &coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Data: append([]byte(nil), w.Data...)})
		l.send(now, &coherence.Msg{Type: coherence.MsgWBData, Dst: l.home(m.Addr), Addr: m.Addr,
			Data: append([]byte(nil), w.Data...), Dirty: dirty})
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		l.send(now, &coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Data: append([]byte(nil), e.data...)})
		l.send(now, &coherence.Msg{Type: coherence.MsgWBData, Dst: l.home(m.Addr), Addr: m.Addr,
			Data: append([]byte(nil), e.data...), Dirty: e.dirty, NoCopy: true})
		return
	}
	panic(fmt.Sprintf("mesi: L1 %d: FwdGetS for absent line %s", l.id, m))
}

func (l *L1) handleFwdGetX(now sim.Cycle, m *coherence.Msg) {
	if w := l.cache.Peek(m.Addr); w != nil && w.Meta.state != stateS {
		l.send(now, &coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Data: append([]byte(nil), w.Data...), Dirty: w.Meta.state == stateM})
		l.cache.Invalidate(w)
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		l.send(now, &coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Data: append([]byte(nil), e.data...), Dirty: e.dirty})
		return
	}
	panic(fmt.Sprintf("mesi: L1 %d: FwdGetX for absent line %s", l.id, m))
}

func (l *L1) handleInv(now sim.Cycle, m *coherence.Msg) {
	l.Stats.InvalidationsReceived.Inc()
	if l.rd != nil && l.rd.addr == m.Addr {
		l.rd.squashed = true
	}
	if w := l.cache.Peek(m.Addr); w != nil {
		if w.Meta.state != stateS {
			// Directory recall of an exclusive line (L2 eviction).
			l.send(now, &coherence.Msg{Type: coherence.MsgWBData, Dst: m.Src, Addr: m.Addr,
				Data: append([]byte(nil), w.Data...), Dirty: w.Meta.state == stateM})
			l.cache.Invalidate(w)
			return
		}
		l.cache.Invalidate(w)
		l.send(now, &coherence.Msg{Type: coherence.MsgInvAck, Dst: m.Src, Addr: m.Addr})
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		l.send(now, &coherence.Msg{Type: coherence.MsgWBData, Dst: m.Src, Addr: m.Addr,
			Data: append([]byte(nil), e.data...), Dirty: e.dirty})
		return
	}
	// Invalidation for a line we no longer hold (crossed a PutS).
	l.send(now, &coherence.Msg{Type: coherence.MsgInvAck, Dst: m.Src, Addr: m.Addr})
}

// Debug renders outstanding transaction state (deadlock diagnostics).
func (l *L1) Debug() string {
	s := fmt.Sprintf("L1 %d:", l.id)
	if l.rd != nil {
		s += fmt.Sprintf(" rd=%#x(squash=%v)", l.rd.addr, l.rd.squashed)
	}
	if l.wr != nil {
		s += fmt.Sprintf(" wr=%#x(upg=%v rmw=%v issued=%d)", l.wr.addr, l.wr.upgrade, l.wr.isRMW, l.wr.issued)
	}
	for a, e := range l.evict {
		s += fmt.Sprintf(" evict=%#x(dirty=%v xfer=%v)", a, e.dirty, e.transferred)
	}
	s += fmt.Sprintf(" timers=%d%v inbox=%d", l.timers.Pending(), l.timers.DueCycles(), len(l.inbox))
	return s
}
