// Package mesi implements the paper's baseline: a full-map MESI directory
// protocol. Each private L1 holds lines in Invalid/Shared/Exclusive/
// Modified; the NUCA L2 tiles keep an inclusive directory with a full
// sharing vector, eagerly invalidating sharers on writes. Transient
// races are serialized with a blocking directory (see DESIGN.md §6).
package mesi

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/memsys"
	"repro/internal/sim"
)

// L1 line states.
const (
	stateS = iota + 1
	stateE
	stateM
)

type l1Line struct {
	state int
}

type readTx struct {
	addr     uint64 // block address
	wordAddr uint64
	cb       func(uint64)
	issued   sim.Cycle
	squashed bool
}

type writeTx struct {
	addr     uint64
	wordAddr uint64
	isRMW    bool
	val      uint64 // plain store value
	f        func(old uint64) (uint64, bool)
	storeCb  func()
	rmwCb    func(uint64)
	issued   sim.Cycle
	upgrade  bool // line was Shared locally when requested
}

// L1 is one core's private cache controller.
type L1 struct {
	id     coherence.NodeID
	cores  int
	cache  *memsys.Cache[l1Line]
	net    coherence.Network
	pool   *coherence.MsgPool
	hitLat sim.Cycle

	timers coherence.Timers
	inbox  []*coherence.Msg
	waker  sim.Waker

	// rd/wr point at rdBuf/wrBuf when active: one read and one write
	// transaction at a time, so the records are preallocated scratch.
	rd    *readTx
	wr    *writeTx
	rdBuf readTx
	wrBuf writeTx

	evict     map[uint64]*evictEntry
	evictFree []*evictEntry

	// Optional hooks, nil in nominal runs (see coherence hooks doc):
	// evictFault forces the eviction path on a valid-line access,
	// transSink reports line-state transitions to the legality oracle,
	// missSink reports per-miss issue-to-completion latency.
	evictFault func() bool
	transSink  func(addr uint64, from, to int)
	missSink   func(read bool, cycles sim.Cycle)

	Stats coherence.L1Stats
}

// SetEvictFault implements coherence.EvictFaulter.
func (l *L1) SetEvictFault(f func() bool) { l.evictFault = f }

// SetTransitionSink implements coherence.TransitionReporter.
func (l *L1) SetTransitionSink(f func(addr uint64, from, to int)) { l.transSink = f }

// SetMissLatencySink implements coherence.MissLatencyReporter.
func (l *L1) SetMissLatencySink(f func(read bool, cycles sim.Cycle)) { l.missSink = f }

// trans reports a line-state transition to the legality oracle;
// self-loops are dropped here so call sites stay simple.
func (l *L1) trans(addr uint64, from, to int) {
	if l.transSink != nil && from != to {
		l.transSink(addr, from, to)
	}
}

type evictEntry struct {
	data        []byte
	dirty       bool
	transferred bool // ownership passed to another core while in flight
}

// NewL1 builds the L1 controller for the given core.
func NewL1(core, cores int, sizeBytes, ways int, hitLat sim.Cycle, net coherence.Network) *L1 {
	return &L1{
		id:     coherence.L1ID(core),
		cores:  cores,
		cache:  memsys.NewCache[l1Line](sizeBytes, ways),
		net:    net,
		pool:   net.MsgPoolFor(core),
		hitLat: hitLat,
		evict:  make(map[uint64]*evictEntry),
	}
}

func (l *L1) home(addr uint64) coherence.NodeID {
	tile := int(addr>>coherence.BlockShift) % l.cores
	return coherence.L2ID(tile, l.cores)
}

// send stamps a pooled copy of tmpl (payload taken from data, not
// tmpl.Data) and injects it into the mesh.
func (l *L1) send(now sim.Cycle, tmpl coherence.Msg, data []byte) {
	m := l.pool.NewFrom(tmpl, data)
	m.Src = l.id
	l.net.Send(now, m)
}

// newEvict builds an eviction-buffer entry from the free list.
func (l *L1) newEvict(data []byte, dirty bool) *evictEntry {
	var e *evictEntry
	if n := len(l.evictFree); n > 0 {
		e = l.evictFree[n-1]
		l.evictFree = l.evictFree[:n-1]
	} else {
		e = &evictEntry{}
	}
	e.data = append(e.data[:0], data...)
	e.dirty, e.transferred = dirty, false
	return e
}

// BindWaker implements sim.WakeSink: stored for inbox deliveries and
// forwarded to the timer heap, so any work landing on this L1 from
// outside its own Tick (a mesh delivery, a hit latency scheduled during
// the core's tick) marks it due.
func (l *L1) BindWaker(w sim.Waker) {
	l.waker = w
	l.timers.SetWaker(w)
}

// Deliver implements mesh.Endpoint.
func (l *L1) Deliver(now sim.Cycle, m *coherence.Msg) {
	l.inbox = append(l.inbox, m)
	l.waker.Wake()
}

// Tick processes due timers and delivered messages.
func (l *L1) Tick(now sim.Cycle) {
	l.timers.Tick(now)
	if len(l.inbox) == 0 {
		return
	}
	msgs := l.inbox
	l.inbox = l.inbox[:0]
	for _, m := range msgs {
		l.handle(now, m)
		l.pool.Put(m) // L1 handlers never retain a delivered message
	}
}

// Busy reports whether any transaction is outstanding (completion check).
func (l *L1) Busy() bool {
	return l.rd != nil || l.wr != nil || len(l.evict) > 0 || l.timers.Pending() > 0 || len(l.inbox) > 0
}

// NextWake implements sim.WakeHinter: the earliest due timer, or next
// cycle if messages are queued. Outstanding transactions need no wake of
// their own — they advance only when a message or timer fires.
func (l *L1) NextWake(now sim.Cycle) sim.Cycle {
	if len(l.inbox) > 0 {
		return now + 1
	}
	if due, ok := l.timers.NextDue(); ok {
		return due
	}
	return sim.WakeNever
}

// ---- CorePort ----

// Load implements coherence.CorePort.
func (l *L1) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	blk := coherence.BlockAddr(addr)
	if l.rd != nil {
		return false
	}
	if l.wr != nil && l.wr.addr == blk {
		return false // serialize same-block read/write transactions
	}
	if w := l.cache.Lookup(addr); w != nil {
		if l.evictFault != nil && !w.Busy && l.evictFault() {
			l.evictLine(now, w) // forced early self-eviction; take the miss path
		} else {
			if w.Meta.state == stateS {
				l.Stats.ReadHitShared.Inc()
			} else {
				l.Stats.ReadHitPrivate.Inc()
			}
			l.timers.AtVal(now+l.hitLat, cb, memsys.GetWord(w.Data[:], addr))
			return true
		}
	}
	l.Stats.ReadMissInvalid.Inc()
	l.rdBuf = readTx{addr: blk, wordAddr: addr, cb: cb, issued: now}
	l.rd = &l.rdBuf
	l.send(now, coherence.Msg{Type: coherence.MsgGetS, Dst: l.home(addr), Addr: blk, Requestor: l.id}, nil)
	return true
}

// Store implements coherence.CorePort.
func (l *L1) Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool {
	blk := coherence.BlockAddr(addr)
	if l.wr != nil {
		return false
	}
	if l.rd != nil && l.rd.addr == blk {
		return false
	}
	if w := l.cache.Lookup(addr); w != nil && w.Meta.state != stateS {
		if l.evictFault != nil && !w.Busy && l.evictFault() {
			l.evictLine(now, w) // forced early self-eviction; take the miss path
		} else {
			l.trans(blk, w.Meta.state, stateM)
			w.Meta.state = stateM
			memsys.PutWord(w.Data[:], addr, val)
			l.Stats.WriteHitPrivate.Inc()
			l.timers.AtDone(now+1, cb)
			return true
		}
	}
	upgrade := false
	if w := l.cache.Peek(addr); w != nil && w.Meta.state == stateS {
		upgrade = true
		// Pin the Shared copy: a concurrent read's fill must not evict
		// it while the upgrade is in flight (a data-less UpgAck would
		// then have nothing to upgrade).
		w.Busy = true
		l.Stats.WriteMissShared.Inc()
	} else {
		l.Stats.WriteMissInvalid.Inc()
	}
	l.wrBuf = writeTx{addr: blk, wordAddr: addr, val: val, storeCb: cb, issued: now, upgrade: upgrade}
	l.wr = &l.wrBuf
	l.send(now, coherence.Msg{Type: coherence.MsgGetX, Dst: l.home(addr), Addr: blk, Requestor: l.id}, nil)
	return true
}

// RMW implements coherence.CorePort.
func (l *L1) RMW(now sim.Cycle, addr uint64, f func(uint64) (uint64, bool), cb func(uint64)) bool {
	blk := coherence.BlockAddr(addr)
	if l.wr != nil {
		return false
	}
	if l.rd != nil && l.rd.addr == blk {
		return false
	}
	if w := l.cache.Lookup(addr); w != nil && w.Meta.state != stateS {
		if l.evictFault != nil && !w.Busy && l.evictFault() {
			l.evictLine(now, w) // forced early self-eviction; take the miss path
		} else {
			old := memsys.GetWord(w.Data[:], addr)
			if nv, doWrite := f(old); doWrite {
				memsys.PutWord(w.Data[:], addr, nv)
				l.trans(blk, w.Meta.state, stateM)
				w.Meta.state = stateM
			}
			l.Stats.WriteHitPrivate.Inc()
			l.Stats.RMWLat.Observe(int64(l.hitLat))
			l.timers.AtVal(now+l.hitLat, cb, old)
			return true
		}
	}
	upgrade := false
	if w := l.cache.Peek(addr); w != nil && w.Meta.state == stateS {
		upgrade = true
		w.Busy = true
		l.Stats.WriteMissShared.Inc()
	} else {
		l.Stats.WriteMissInvalid.Inc()
	}
	l.wrBuf = writeTx{addr: blk, wordAddr: addr, isRMW: true, f: f, rmwCb: cb, issued: now, upgrade: upgrade}
	l.wr = &l.wrBuf
	l.send(now, coherence.Msg{Type: coherence.MsgGetX, Dst: l.home(addr), Addr: blk, Requestor: l.id}, nil)
	return true
}

// Fence implements coherence.CorePort. MESI is eagerly coherent; a fence
// needs no cache actions beyond the core's write-buffer drain.
func (l *L1) Fence(now sim.Cycle, cb func()) bool {
	l.timers.AtDone(now+1, cb)
	return true
}

// ---- Message handling ----

func (l *L1) handle(now sim.Cycle, m *coherence.Msg) {
	switch m.Type {
	case coherence.MsgDataE:
		l.Stats.DataResponses.Inc()
		if l.wr != nil && l.wr.addr == m.Addr {
			l.completeWrite(now, m.Data)
			l.send(now, coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr}, nil)
			return
		}
		l.completeRead(now, m, stateE)
		l.send(now, coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr}, nil)

	case coherence.MsgDataS:
		l.Stats.DataResponses.Inc()
		l.completeRead(now, m, stateS)

	case coherence.MsgDataOwner:
		l.Stats.DataResponses.Inc()
		if l.wr != nil && l.wr.addr == m.Addr {
			l.completeWrite(now, m.Data)
			l.send(now, coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr}, nil)
			return
		}
		l.completeRead(now, m, stateS)

	case coherence.MsgUpgAck:
		if l.wr == nil || l.wr.addr != m.Addr {
			panic(fmt.Sprintf("mesi: L1 %d cycle %d: unexpected UpgAck %s", l.id, now, m))
		}
		w := l.cache.Peek(m.Addr)
		if w == nil || w.Meta.state != stateS {
			panic(fmt.Sprintf("mesi: L1 %d cycle %d: UpgAck without Shared line %s", l.id, now, m))
		}
		l.completeWrite(now, nil)
		l.send(now, coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr}, nil)

	case coherence.MsgFwdGetS:
		l.handleFwdGetS(now, m)

	case coherence.MsgFwdGetX:
		l.handleFwdGetX(now, m)

	case coherence.MsgInv:
		l.handleInv(now, m)

	case coherence.MsgPutAck:
		if e, ok := l.evict[m.Addr]; ok {
			delete(l.evict, m.Addr)
			l.evictFree = append(l.evictFree, e)
		}

	default:
		panic(fmt.Sprintf("mesi: L1 %d cycle %d: unexpected message %s", l.id, now, m))
	}
}

func (l *L1) completeWrite(now sim.Cycle, data []byte) {
	tx := l.wr
	w := l.cache.Peek(tx.addr)
	from := 0
	if w != nil {
		from = w.Meta.state
	}
	if data != nil {
		// Fresh data arrived; (re)install the line.
		w, from = l.install(now, tx.addr, data)
	}
	if w == nil {
		panic(fmt.Sprintf("mesi: L1 %d cycle %d: write completion without line %#x", l.id, now, tx.addr))
	}
	w.Busy = false
	l.trans(tx.addr, from, stateM)
	w.Meta.state = stateM
	old := memsys.GetWord(w.Data[:], tx.wordAddr)
	if tx.isRMW {
		if nv, doWrite := tx.f(old); doWrite {
			memsys.PutWord(w.Data[:], tx.wordAddr, nv)
		}
		l.Stats.RMWLat.Observe(int64(now - tx.issued))
	} else {
		memsys.PutWord(w.Data[:], tx.wordAddr, tx.val)
	}
	if l.missSink != nil {
		l.missSink(false, now-tx.issued)
	}
	l.wr = nil
	if tx.isRMW {
		tx.rmwCb(old)
	} else {
		tx.storeCb()
	}
}

func (l *L1) completeRead(now sim.Cycle, m *coherence.Msg, state int) {
	tx := l.rd
	if tx == nil || tx.addr != m.Addr {
		panic(fmt.Sprintf("mesi: L1 %d cycle %d: data response without read tx %s", l.id, now, m))
	}
	val := memsys.GetWord(m.Data, tx.wordAddr)
	// Responses sent by the L2 itself are FIFO-ordered after any Inv the
	// L2 issued, so they are always fresh; only owner-forwarded data can
	// be overtaken by a later invalidation (the squash case).
	if !tx.squashed || m.Type != coherence.MsgDataOwner {
		w, from := l.install(now, m.Addr, m.Data)
		l.trans(m.Addr, from, state)
		w.Meta.state = state
	}
	if l.missSink != nil {
		l.missSink(true, now-tx.issued)
	}
	l.rd = nil
	tx.cb(val)
}

// install places data for addr and returns the way plus the line's
// prior state (0 when freshly installed) for transition reporting.
func (l *L1) install(now sim.Cycle, addr uint64, data []byte) (*memsys.Way[l1Line], int) {
	if w := l.cache.Peek(addr); w != nil {
		copy(w.Data[:], data)
		return w, w.Meta.state
	}
	w := l.cache.Victim(addr)
	if w == nil {
		panic(fmt.Sprintf("mesi: L1 %d cycle %d: no victim for %#x", l.id, now, addr))
	}
	if w.Valid {
		l.evictLine(now, w)
	}
	l.cache.Install(w, addr)
	copy(w.Data[:], data)
	return w, 0
}

func (l *L1) evictLine(now sim.Cycle, w *memsys.Way[l1Line]) {
	addr := w.Tag
	l.trans(addr, w.Meta.state, 0)
	switch w.Meta.state {
	case stateS:
		l.send(now, coherence.Msg{Type: coherence.MsgPutS, Dst: l.home(addr), Addr: addr}, nil)
	case stateE:
		l.evict[addr] = l.newEvict(w.Data[:], false)
		l.send(now, coherence.Msg{Type: coherence.MsgPutE, Dst: l.home(addr), Addr: addr}, nil)
	case stateM:
		l.evict[addr] = l.newEvict(w.Data[:], true)
		l.send(now, coherence.Msg{Type: coherence.MsgPutM, Dst: l.home(addr), Addr: addr,
			Dirty: true}, w.Data[:])
	}
	l.cache.Invalidate(w)
}

func (l *L1) handleFwdGetS(now sim.Cycle, m *coherence.Msg) {
	if w := l.cache.Peek(m.Addr); w != nil && w.Meta.state != stateS {
		dirty := w.Meta.state == stateM
		l.trans(m.Addr, w.Meta.state, stateS)
		w.Meta.state = stateS
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr}, w.Data[:])
		l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: l.home(m.Addr), Addr: m.Addr,
			Dirty: dirty}, w.Data[:])
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr}, e.data)
		l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: l.home(m.Addr), Addr: m.Addr,
			Dirty: e.dirty, NoCopy: true}, e.data)
		return
	}
	panic(fmt.Sprintf("mesi: L1 %d cycle %d: FwdGetS for absent line %s", l.id, now, m))
}

func (l *L1) handleFwdGetX(now sim.Cycle, m *coherence.Msg) {
	if w := l.cache.Peek(m.Addr); w != nil && w.Meta.state != stateS {
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Dirty: w.Meta.state == stateM}, w.Data[:])
		l.trans(m.Addr, w.Meta.state, 0)
		l.cache.Invalidate(w)
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Dirty: e.dirty}, e.data)
		return
	}
	panic(fmt.Sprintf("mesi: L1 %d cycle %d: FwdGetX for absent line %s", l.id, now, m))
}

func (l *L1) handleInv(now sim.Cycle, m *coherence.Msg) {
	l.Stats.InvalidationsReceived.Inc()
	if l.rd != nil && l.rd.addr == m.Addr {
		l.rd.squashed = true
	}
	if w := l.cache.Peek(m.Addr); w != nil {
		l.trans(m.Addr, w.Meta.state, 0)
		if w.Meta.state != stateS {
			// Directory recall of an exclusive line (L2 eviction).
			l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: m.Src, Addr: m.Addr,
				Dirty: w.Meta.state == stateM}, w.Data[:])
			l.cache.Invalidate(w)
			return
		}
		l.cache.Invalidate(w)
		l.send(now, coherence.Msg{Type: coherence.MsgInvAck, Dst: m.Src, Addr: m.Addr}, nil)
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: m.Src, Addr: m.Addr,
			Dirty: e.dirty}, e.data)
		return
	}
	// Invalidation for a line we no longer hold (crossed a PutS).
	l.send(now, coherence.Msg{Type: coherence.MsgInvAck, Dst: m.Src, Addr: m.Addr}, nil)
}

// ComponentLabel implements sim.Labeled (forensic reports).
func (l *L1) ComponentLabel() string { return fmt.Sprintf("mesi L1 %d", l.id) }

// Debug renders outstanding transaction state (deadlock diagnostics).
func (l *L1) Debug() string {
	s := fmt.Sprintf("L1 %d:", l.id)
	if l.rd != nil {
		s += fmt.Sprintf(" rd=%#x(squash=%v)", l.rd.addr, l.rd.squashed)
	}
	if l.wr != nil {
		s += fmt.Sprintf(" wr=%#x(upg=%v rmw=%v issued=%d)", l.wr.addr, l.wr.upgrade, l.wr.isRMW, l.wr.issued)
	}
	for a, e := range l.evict {
		s += fmt.Sprintf(" evict=%#x(dirty=%v xfer=%v)", a, e.dirty, e.transferred)
	}
	s += fmt.Sprintf(" timers=%d%v inbox=%d", l.timers.Pending(), l.timers.DueCycles(), len(l.inbox))
	return s
}

// PrewarmStorage implements coherence.StoragePrewarmer.
func (l *L1) PrewarmStorage() { l.cache.Prewarm() }
