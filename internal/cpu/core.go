// Package cpu models the processor cores. Each Core executes a
// program.Program over a TSO memory system: committed stores enter a
// FIFO write buffer and drain one at a time (each waits for its
// predecessor's coherence state change to complete, giving w→w order),
// loads bypass the write buffer with store→load forwarding (the TSO w→r
// relaxation), and atomics/fences drain the buffer first (x86 locked
// semantics). This is exactly the memory-event interface the paper's
// gem5 cores present to the Ruby coherence protocol.
package cpu

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
)

type wbEntry struct {
	addr uint64
	val  uint64
}

// Core is one simulated processor.
type Core struct {
	ID   int
	prog *program.Program
	port coherence.CorePort

	regs [program.NumRegs]int64
	pc   int

	// The write buffer is a fixed-capacity FIFO ring: entries enter at
	// (head+len)%cap and drain from head, so steady-state store traffic
	// allocates nothing.
	wb         []wbEntry
	wbHead     int
	wbLen      int
	wbInFlight bool
	wbStalled  bool // last drain attempt was rejected by the L1

	waiting    bool // blocked on an outstanding load/RMW/fence callback
	stallUntil sim.Cycle
	halted     bool

	// waker marks the core due when one of its completion callbacks
	// fires (inside the L1's tick, earlier in the same cycle): that is
	// the only way a blocked core is re-enabled, and under wake-set
	// scheduling the engine ticks only components that were marked due.
	waker sim.Waker

	// batched enables straight-line run execution: a whole block of
	// register/branch instructions retires in one Tick and the core
	// stalls over the cycles the block would have occupied, so the
	// idle-skip engine leaps them instead of re-entering the core.
	batched bool

	// Memory-trace capture (config.System.TraceOut). While enabled, the
	// core accumulates the compute delta since the last recorded event:
	// traceGap in cycles (the Gap contract documented on
	// config.TraceEvent), traceIns in retired instructions. Every hook
	// is guarded by a trace-nil check, so disabled capture costs one
	// predictable branch per retirement and zero allocations.
	trace    config.TraceSink
	traceGap int64
	traceIns int64

	// Completion callbacks handed to the L1. The core has at most one
	// outstanding operation of each kind, so a single preallocated
	// closure per kind (with the variable bits stored in fields) keeps
	// the issue path allocation-free.
	loadCb  func(val uint64)
	rmwCb   func(old uint64)
	storeCb func()
	fenceCb func()
	opDst   uint8 // destination register of the in-flight load/RMW

	// Preallocated RMW modify functions; the operands of the in-flight
	// atomic live in rmwA/rmwB.
	fAdd, fXchg, fCas func(old uint64) (uint64, bool)
	rmwA, rmwB        uint64

	// Stats.
	Loads        stats.Counter
	Stores       stats.Counter
	RMWs         stats.Counter
	Fences       stats.Counter
	Instructions stats.Counter
	WBForwards   stats.Counter
	WBFullStalls stats.Counter
	// FinishCycle is the first ticked cycle at which the core observed
	// itself fully done (diagnostic only; under idle-skip scheduling a
	// quiescent core may never tick again, leaving it zero).
	FinishCycle sim.Cycle

	rmwIssue sim.Cycle

	// Stall attribution (internal/obs), nil when disabled. Episodes are
	// interval-based because the wake-set engine skips a stalled core's
	// idle cycles entirely: an episode opens at the tick that detects
	// the stall and closes at the next tick that makes progress, so the
	// observed length covers skipped cycles too. Batched-run interior
	// cycles are attributed immediately (the engine leaps them).
	stalls     *obs.CoreStalls
	stallWhy   obs.StallReason
	stallStart sim.Cycle
}

// New builds a core executing prog against port, with a write buffer of
// wbEntries slots.
func New(id int, prog *program.Program, port coherence.CorePort, wbEntries int) *Core {
	if wbEntries <= 0 {
		panic("cpu: write buffer must have at least one entry")
	}
	c := &Core{ID: id, prog: prog, port: port, wb: make([]wbEntry, wbEntries)}
	c.Loads.SetName(fmt.Sprintf("core%d.loads", id))
	c.Stores.SetName(fmt.Sprintf("core%d.stores", id))
	c.RMWs.SetName(fmt.Sprintf("core%d.rmws", id))
	c.Fences.SetName(fmt.Sprintf("core%d.fences", id))
	c.Instructions.SetName(fmt.Sprintf("core%d.instructions", id))
	c.WBForwards.SetName(fmt.Sprintf("core%d.wb_forwards", id))
	c.WBFullStalls.SetName(fmt.Sprintf("core%d.wb_full_stalls", id))
	c.loadCb = func(val uint64) {
		c.regs[c.opDst] = int64(val)
		c.waiting = false
		c.waker.Wake()
	}
	c.rmwCb = func(old uint64) {
		c.regs[c.opDst] = int64(old)
		c.waiting = false
		c.waker.Wake()
	}
	c.storeCb = func() {
		c.wbHead = (c.wbHead + 1) % len(c.wb)
		c.wbLen--
		c.wbInFlight = false
		c.waker.Wake()
	}
	c.fenceCb = func() {
		c.waiting = false
		c.waker.Wake()
	}
	c.fAdd = func(old uint64) (uint64, bool) { return old + c.rmwA, true }
	c.fXchg = func(old uint64) (uint64, bool) { return c.rmwA, true }
	c.fCas = func(old uint64) (uint64, bool) {
		if old == c.rmwA {
			return c.rmwB, true
		}
		return 0, false
	}
	return c
}

// BindWaker implements sim.WakeSink (see the waker field).
func (c *Core) BindWaker(w sim.Waker) { c.waker = w }

// SetStalls attaches the stall-attribution histograms (see the stalls
// field). Nil (the default) keeps every stall path branch-only.
func (c *Core) SetStalls(s *obs.CoreStalls) {
	c.stalls = s
	c.stallWhy = obs.StallNone
}

// stallOpen begins a stall episode at now unless one is already open
// (a continuing stall keeps its original start and reason).
func (c *Core) stallOpen(now sim.Cycle, why obs.StallReason) {
	if c.stalls == nil || c.stallWhy != obs.StallNone {
		return
	}
	c.stallWhy = why
	c.stallStart = now
}

// stallClose observes and ends the open stall episode, if any.
func (c *Core) stallClose(now sim.Cycle) {
	if c.stalls == nil || c.stallWhy == obs.StallNone {
		return
	}
	c.stalls.Observe(c.stallWhy, int64(now-c.stallStart))
	c.stallWhy = obs.StallNone
}

// SetBatched toggles batched straight-line execution
// (config.System.BatchedCore). Both settings produce bit-identical
// simulations: batches contain only register/branch instructions, whose
// intermediate state nothing outside the core can observe, and the
// batch accounts for exactly the cycles per-cycle execution would have
// spent.
func (c *Core) SetBatched(on bool) { c.batched = on }

// SetTrace attaches a capture sink (config.System.TraceOut). Must be
// called before the first Tick: the gap accumulator starts at 1 because
// the first instruction dispatches on cycle 1, one cycle after the
// stream's cycle-0 anchor.
func (c *Core) SetTrace(sink config.TraceSink) {
	c.trace = sink
	c.traceGap = 1
	c.traceIns = 0
}

// Done reports whether the core has halted and fully drained its writes.
func (c *Core) Done() bool {
	return c.halted && c.wbLen == 0 && !c.wbInFlight && !c.waiting
}

// Counts implements system.Frontend: the core-level counters aggregated
// into a run's Result.
func (c *Core) Counts() (loads, stores, rmws, fences, instrs int64) {
	return c.Loads.Value(), c.Stores.Value(), c.RMWs.Value(),
		c.Fences.Value(), c.Instructions.Value()
}

// ObsCounters implements coherence.ObsCounterProvider.
func (c *Core) ObsCounters() []*stats.Counter {
	return []*stats.Counter{&c.Loads, &c.Stores, &c.RMWs, &c.Fences,
		&c.Instructions, &c.WBForwards, &c.WBFullStalls}
}

// Reg returns the architectural value of register r (for tests/litmus).
func (c *Core) Reg(r uint8) int64 { return c.regs[r] }

// SetReg seeds a register before execution (thread id, base pointers).
func (c *Core) SetReg(r uint8, v int64) { c.regs[r] = v }

// Tick advances the core one cycle.
func (c *Core) Tick(now sim.Cycle) {
	c.drainWriteBuffer(now)

	if c.halted {
		if c.Done() && c.FinishCycle == 0 {
			c.FinishCycle = now
		}
		return
	}
	if c.waiting || now < c.stallUntil {
		return
	}
	if c.stalls != nil {
		c.stallClose(now)
	}
	if c.prog == nil || c.pc >= len(c.prog.Instrs) {
		c.halted = true
		return
	}
	if c.batched {
		if n := c.prog.RunLen(c.pc); n > 1 {
			c.executeRun(now, n)
			return
		}
	}
	in := c.prog.Instrs[c.pc]
	c.execute(now, in)
}

// executeRun retires a straight-line run of n register/branch
// instructions in a single Tick, then stalls until now+n — exactly the
// cycle at which per-cycle execution would reach the next instruction.
// Runs contain no memory, fence, atomic, pause or halt ops (enforced by
// the program run-length analysis), so no other component can observe
// the difference; NextWake's stallUntil path reports the end of the run
// to the engine, which leaps the intervening idle cycles.
//
// The loop is a specialized copy of the register/branch arms of
// execute: no per-instruction call, no advance bookkeeping, one counter
// update for the whole run. Its semantics are pinned to execute's by
// the engine-mode conformance gates (batched × per-cycle × protocols)
// and the dense-compute checksum workload.
func (c *Core) executeRun(now sim.Cycle, n int) {
	pc := c.pc
	ins := c.prog.Instrs
	regs := &c.regs
	for k := 0; k < n; k++ {
		in := &ins[pc]
		pc++
		switch in.Op {
		case program.OpLI:
			regs[in.Dst] = in.Imm
		case program.OpMov:
			regs[in.Dst] = regs[in.A]
		case program.OpAdd:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case program.OpAddi:
			regs[in.Dst] = regs[in.A] + in.Imm
		case program.OpSub:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case program.OpMul:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case program.OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
		case program.OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
		case program.OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
		case program.OpMod:
			m := regs[in.A] % in.Imm
			if m < 0 {
				m += in.Imm
			}
			regs[in.Dst] = m
		case program.OpShl:
			regs[in.Dst] = regs[in.A] << uint(in.Imm)
		case program.OpBeq:
			if regs[in.A] == regs[in.B] {
				pc = in.Target
			}
		case program.OpBne:
			if regs[in.A] != regs[in.B] {
				pc = in.Target
			}
		case program.OpBlt:
			if regs[in.A] < regs[in.B] {
				pc = in.Target
			}
		case program.OpBge:
			if regs[in.A] >= regs[in.B] {
				pc = in.Target
			}
		case program.OpJmp:
			pc = in.Target
		default:
			panic(fmt.Sprintf("cpu: core %d: op %v inside a batched run", c.ID, in.Op))
		}
	}
	c.pc = pc
	c.stallUntil = now + sim.Cycle(n)
	c.Instructions.Add(int64(n))
	if c.stalls != nil && n > 1 {
		// The run's interior cycles never tick; attribute them now.
		c.stalls.Observe(obs.StallBatchInterior, int64(n-1))
	}
	if c.trace != nil {
		// A run of n register/branch instructions occupies exactly n
		// cycles — identical to the unbatched accounting of n single
		// retirements, so batched and unbatched runs record the same
		// trace.
		c.traceGap += int64(n)
		c.traceIns += int64(n)
	}
}

func (c *Core) drainWriteBuffer(now sim.Cycle) {
	if c.wbInFlight || c.wbLen == 0 {
		return
	}
	head := c.wb[c.wbHead]
	if c.port.Store(now, head.addr, head.val, c.storeCb) {
		c.wbInFlight = true
		c.wbStalled = false
	} else {
		// The L1 declined. Every decline reason is a transaction this
		// same core has in flight (a same-block load/RMW, or its own
		// write), and every such transaction completes by firing one of
		// this core's callbacks — which call waker.Wake — so the retry
		// is re-dispatched on exactly the cycle the L1 frees up. This
		// invariant is load-bearing under wake-set scheduling: a stalled
		// head with the core otherwise quiescent reports WakeNever, so
		// an L1 decline reason with no pending same-core callback would
		// be a lost-wakeup deadlock. Do not add one.
		c.wbStalled = true
	}
}

// NextWake implements sim.WakeHinter. The core must be ticked while it
// has self-driven work: an instruction to execute, a stall expiring, or
// a write-buffer head to (re)issue. While blocked on an L1 callback it
// is externally driven — the callback itself wakes the core through its
// Waker on the cycle it fires (inside the L1's tick, earlier in that
// same cycle, so the core's turn is still ahead).
func (c *Core) NextWake(now sim.Cycle) sim.Cycle {
	if c.wbLen > 0 && !c.wbInFlight && !c.wbStalled {
		return now + 1 // a freshly buffered store to issue
	}
	if c.halted || c.waiting {
		return sim.WakeNever
	}
	if now+1 < c.stallUntil {
		return c.stallUntil
	}
	return now + 1
}

// execute runs one instruction. Instructions counts retirements
// exactly: memory/fence ops count once at issue (inside their do*
// helper) or, for synchronous completions (a forwarded load, a
// buffered store), via retired here; rejected attempts (port busy,
// write buffer full, pending drain) retire nothing and are retried.
func (c *Core) execute(now sim.Cycle, in program.Instr) {
	advance := true
	retired := true
	switch in.Op {
	case program.OpLI:
		c.regs[in.Dst] = in.Imm
	case program.OpMov:
		c.regs[in.Dst] = c.regs[in.A]
	case program.OpAdd:
		c.regs[in.Dst] = c.regs[in.A] + c.regs[in.B]
	case program.OpAddi:
		c.regs[in.Dst] = c.regs[in.A] + in.Imm
	case program.OpSub:
		c.regs[in.Dst] = c.regs[in.A] - c.regs[in.B]
	case program.OpMul:
		c.regs[in.Dst] = c.regs[in.A] * c.regs[in.B]
	case program.OpAnd:
		c.regs[in.Dst] = c.regs[in.A] & c.regs[in.B]
	case program.OpOr:
		c.regs[in.Dst] = c.regs[in.A] | c.regs[in.B]
	case program.OpXor:
		c.regs[in.Dst] = c.regs[in.A] ^ c.regs[in.B]
	case program.OpMod:
		m := c.regs[in.A] % in.Imm
		if m < 0 {
			m += in.Imm
		}
		c.regs[in.Dst] = m
	case program.OpShl:
		c.regs[in.Dst] = c.regs[in.A] << uint(in.Imm)

	case program.OpLd:
		advance = c.doLoad(now, in)
		retired = advance // issued loads count at issue, retries not at all
	case program.OpSt:
		advance = c.doStore(now, in)
		retired = advance
	case program.OpRmwAdd, program.OpRmwXchg, program.OpCas:
		advance = c.doAtomic(now, in)
		retired = advance
	case program.OpFence:
		advance = c.doFence(now)
		retired = advance

	case program.OpBeq:
		if c.regs[in.A] == c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpBne:
		if c.regs[in.A] != c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpBlt:
		if c.regs[in.A] < c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpBge:
		if c.regs[in.A] >= c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpJmp:
		c.pc = in.Target
		advance = false
	case program.OpNop:
		c.stallUntil = now + sim.Cycle(in.Imm)
	case program.OpHalt:
		c.halted = true
		advance = false
	default:
		panic(fmt.Sprintf("cpu: core %d: bad opcode %v", c.ID, in.Op))
	}
	if advance {
		c.pc++
	}
	if retired {
		c.Instructions.Inc()
		if c.trace != nil {
			c.traceRetire(in)
		}
	}
}

// traceRetire accumulates the capture deltas for one retired
// instruction. Memory and fence operations record their own events (and
// reset the accumulators) inside their do* helpers at the moment the
// operation is accepted, so they contribute nothing here; note that an
// issued load/RMW/fence reaches this path with retired=false and is
// likewise skipped.
func (c *Core) traceRetire(in program.Instr) {
	switch {
	case in.Op.IsMem() || in.Op == program.OpFence:
		// Recorded at acceptance inside doLoad/doStore/doAtomic/doFence.
	case in.Op == program.OpNop:
		// A pause dispatches at T and releases the core at T+max(Imm,1).
		g := in.Imm
		if g < 1 {
			g = 1
		}
		c.traceGap += g
		c.traceIns++
	case in.Op == program.OpHalt:
		// Close the stream: the trailing compute distance lets replay
		// halt — and therefore quiesce — on the original cycle.
		c.trace.RecordOp(config.TraceEvent{Core: c.ID, Op: config.TraceHalt,
			Gap: c.traceGap, Instrs: c.traceIns + 1})
	default: // register op or branch: one cycle, one retirement
		c.traceGap++
		c.traceIns++
	}
}

func (c *Core) effAddr(in program.Instr) uint64 {
	a := uint64(c.regs[in.A] + in.Imm)
	if a%8 != 0 {
		panic(fmt.Sprintf("cpu: core %d pc %d: unaligned address %#x", c.ID, c.pc, a))
	}
	return a
}

func (c *Core) doLoad(now sim.Cycle, in program.Instr) bool {
	addr := c.effAddr(in)
	// Store→load forwarding: newest matching write-buffer entry wins.
	// TSO requires reads of pending writes to see them.
	for i := c.wbLen - 1; i >= 0; i-- {
		e := &c.wb[(c.wbHead+i)%len(c.wb)]
		if e.addr == addr {
			c.regs[in.Dst] = int64(e.val)
			c.Loads.Inc()
			c.WBForwards.Inc()
			if c.trace != nil {
				// Forwarded loads complete synchronously: like a store,
				// the instruction itself occupies one cycle before the
				// next dispatch, hence the gap re-seed of 1. Replay makes
				// the same forwarding decision against its identical
				// write buffer, so the trace needs no forwarded marker.
				c.trace.RecordOp(config.TraceEvent{Core: c.ID, Op: config.TraceLoad,
					Addr: addr, Gap: c.traceGap, Instrs: c.traceIns + 1})
				c.traceGap, c.traceIns = 1, 0
			}
			return true
		}
	}
	c.opDst = in.Dst
	if !c.port.Load(now, addr, c.loadCb) {
		c.stallOpen(now, obs.StallPortBusy)
		return false // port busy; retry next cycle without advancing pc
	}
	c.stallOpen(now, obs.StallMissOutstanding)
	c.Loads.Inc()
	if c.trace != nil {
		// Asynchronous completion: the next instruction dispatches on
		// the callback cycle itself, so the gap re-seeds to 0.
		c.trace.RecordOp(config.TraceEvent{Core: c.ID, Op: config.TraceLoad,
			Addr: addr, Gap: c.traceGap, Instrs: c.traceIns + 1})
		c.traceGap, c.traceIns = 0, 0
	}
	c.waiting = true
	c.pc++ // manually advance: completion is asynchronous
	c.Instructions.Inc()
	return false
}

func (c *Core) doStore(now sim.Cycle, in program.Instr) bool {
	if c.wbLen >= len(c.wb) {
		c.WBFullStalls.Inc()
		c.stallOpen(now, obs.StallWBFull)
		return false // write buffer full; retry
	}
	e := wbEntry{addr: c.effAddr(in), val: uint64(c.regs[in.B])}
	c.wb[(c.wbHead+c.wbLen)%len(c.wb)] = e
	c.wbLen++
	c.Stores.Inc()
	if c.trace != nil {
		c.trace.RecordOp(config.TraceEvent{Core: c.ID, Op: config.TraceStore,
			Addr: e.addr, Val: e.val, Gap: c.traceGap, Instrs: c.traceIns + 1})
		c.traceGap, c.traceIns = 1, 0
	}
	return true
}

func (c *Core) doAtomic(now sim.Cycle, in program.Instr) bool {
	// x86 locked operations drain the write buffer first (full barrier).
	if c.wbLen > 0 || c.wbInFlight {
		c.stallOpen(now, obs.StallFenceDrain)
		return false
	}
	addr := c.effAddr(in)
	var f func(old uint64) (uint64, bool)
	switch in.Op {
	case program.OpRmwAdd:
		c.rmwA = uint64(c.regs[in.B])
		f = c.fAdd
	case program.OpRmwXchg:
		c.rmwA = uint64(c.regs[in.B])
		f = c.fXchg
	case program.OpCas:
		c.rmwA = uint64(c.regs[in.B])
		c.rmwB = uint64(c.regs[in.C])
		f = c.fCas
	}
	c.opDst = in.Dst
	if !c.port.RMW(now, addr, f, c.rmwCb) {
		c.stallOpen(now, obs.StallPortBusy)
		return false
	}
	c.stallOpen(now, obs.StallMissOutstanding)
	c.RMWs.Inc()
	if c.trace != nil {
		var op config.TraceOp
		var val2 uint64
		switch in.Op {
		case program.OpRmwAdd:
			op = config.TraceRMWAdd
		case program.OpRmwXchg:
			op = config.TraceRMWXchg
		default:
			op = config.TraceCAS
			val2 = c.rmwB
		}
		c.trace.RecordOp(config.TraceEvent{Core: c.ID, Op: op, Addr: addr,
			Val: c.rmwA, Val2: val2, Gap: c.traceGap, Instrs: c.traceIns + 1})
		c.traceGap, c.traceIns = 0, 0
	}
	c.waiting = true
	c.pc++
	c.Instructions.Inc()
	return false
}

func (c *Core) doFence(now sim.Cycle) bool {
	if c.wbLen > 0 || c.wbInFlight {
		c.stallOpen(now, obs.StallFenceDrain)
		return false
	}
	if !c.port.Fence(now, c.fenceCb) {
		c.stallOpen(now, obs.StallPortBusy)
		return false
	}
	c.stallOpen(now, obs.StallFenceDrain)
	c.Fences.Inc()
	if c.trace != nil {
		c.trace.RecordOp(config.TraceEvent{Core: c.ID, Op: config.TraceFence,
			Gap: c.traceGap, Instrs: c.traceIns + 1})
		c.traceGap, c.traceIns = 0, 0
	}
	c.waiting = true
	c.pc++
	c.Instructions.Inc()
	return false
}

// ComponentLabel implements sim.Labeled (forensic reports).
func (c *Core) ComponentLabel() string { return fmt.Sprintf("core %d", c.ID) }

// Debug renders the core's execution state (deadlock diagnostics).
func (c *Core) Debug() string {
	instr := "?"
	if c.prog != nil && c.pc-1 >= 0 && c.pc-1 < len(c.prog.Instrs) {
		instr = c.prog.Instrs[c.pc-1].String()
	}
	return fmt.Sprintf("core %d: pc=%d (prev: %s) halted=%v waiting=%v wb=%d inflight=%v stallUntil=%d",
		c.ID, c.pc, instr, c.halted, c.waiting, c.wbLen, c.wbInFlight, c.stallUntil)
}
