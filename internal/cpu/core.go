// Package cpu models the processor cores. Each Core executes a
// program.Program over a TSO memory system: committed stores enter a
// FIFO write buffer and drain one at a time (each waits for its
// predecessor's coherence state change to complete, giving w→w order),
// loads bypass the write buffer with store→load forwarding (the TSO w→r
// relaxation), and atomics/fences drain the buffer first (x86 locked
// semantics). This is exactly the memory-event interface the paper's
// gem5 cores present to the Ruby coherence protocol.
package cpu

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
)

type wbEntry struct {
	addr uint64
	val  uint64
}

// Core is one simulated processor.
type Core struct {
	ID   int
	prog *program.Program
	port coherence.CorePort

	regs [program.NumRegs]int64
	pc   int

	wb         []wbEntry
	wbCap      int
	wbInFlight bool

	waiting    bool // blocked on an outstanding load/RMW/fence callback
	stallUntil sim.Cycle
	halted     bool

	// Stats.
	Loads        stats.Counter
	Stores       stats.Counter
	RMWs         stats.Counter
	Fences       stats.Counter
	Instructions stats.Counter
	WBForwards   stats.Counter
	WBFullStalls stats.Counter
	FinishCycle  sim.Cycle

	rmwIssue sim.Cycle
}

// New builds a core executing prog against port, with a write buffer of
// wbEntries slots.
func New(id int, prog *program.Program, port coherence.CorePort, wbEntries int) *Core {
	if wbEntries <= 0 {
		panic("cpu: write buffer must have at least one entry")
	}
	return &Core{ID: id, prog: prog, port: port, wbCap: wbEntries}
}

// Done reports whether the core has halted and fully drained its writes.
func (c *Core) Done() bool {
	return c.halted && len(c.wb) == 0 && !c.wbInFlight && !c.waiting
}

// Reg returns the architectural value of register r (for tests/litmus).
func (c *Core) Reg(r uint8) int64 { return c.regs[r] }

// SetReg seeds a register before execution (thread id, base pointers).
func (c *Core) SetReg(r uint8, v int64) { c.regs[r] = v }

// Tick advances the core one cycle.
func (c *Core) Tick(now sim.Cycle) {
	c.drainWriteBuffer(now)

	if c.halted {
		if c.Done() && c.FinishCycle == 0 {
			c.FinishCycle = now
		}
		return
	}
	if c.waiting || now < c.stallUntil {
		return
	}
	if c.prog == nil || c.pc >= len(c.prog.Instrs) {
		c.halted = true
		return
	}
	in := c.prog.Instrs[c.pc]
	c.execute(now, in)
}

func (c *Core) drainWriteBuffer(now sim.Cycle) {
	if c.wbInFlight || len(c.wb) == 0 {
		return
	}
	head := c.wb[0]
	ok := c.port.Store(now, head.addr, head.val, func() {
		c.wb = c.wb[1:]
		c.wbInFlight = false
	})
	if ok {
		c.wbInFlight = true
	}
}

func (c *Core) execute(now sim.Cycle, in program.Instr) {
	advance := true
	switch in.Op {
	case program.OpLI:
		c.regs[in.Dst] = in.Imm
	case program.OpMov:
		c.regs[in.Dst] = c.regs[in.A]
	case program.OpAdd:
		c.regs[in.Dst] = c.regs[in.A] + c.regs[in.B]
	case program.OpAddi:
		c.regs[in.Dst] = c.regs[in.A] + in.Imm
	case program.OpSub:
		c.regs[in.Dst] = c.regs[in.A] - c.regs[in.B]
	case program.OpMul:
		c.regs[in.Dst] = c.regs[in.A] * c.regs[in.B]
	case program.OpAnd:
		c.regs[in.Dst] = c.regs[in.A] & c.regs[in.B]
	case program.OpOr:
		c.regs[in.Dst] = c.regs[in.A] | c.regs[in.B]
	case program.OpXor:
		c.regs[in.Dst] = c.regs[in.A] ^ c.regs[in.B]
	case program.OpMod:
		m := c.regs[in.A] % in.Imm
		if m < 0 {
			m += in.Imm
		}
		c.regs[in.Dst] = m
	case program.OpShl:
		c.regs[in.Dst] = c.regs[in.A] << uint(in.Imm)

	case program.OpLd:
		advance = c.doLoad(now, in)
	case program.OpSt:
		advance = c.doStore(now, in)
	case program.OpRmwAdd, program.OpRmwXchg, program.OpCas:
		advance = c.doAtomic(now, in)
	case program.OpFence:
		advance = c.doFence(now)

	case program.OpBeq:
		if c.regs[in.A] == c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpBne:
		if c.regs[in.A] != c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpBlt:
		if c.regs[in.A] < c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpBge:
		if c.regs[in.A] >= c.regs[in.B] {
			c.pc = in.Target
			advance = false
		}
	case program.OpJmp:
		c.pc = in.Target
		advance = false
	case program.OpNop:
		c.stallUntil = now + sim.Cycle(in.Imm)
	case program.OpHalt:
		c.halted = true
		advance = false
	default:
		panic(fmt.Sprintf("cpu: core %d: bad opcode %v", c.ID, in.Op))
	}
	if advance {
		c.pc++
	}
	c.Instructions.Inc()
}

func (c *Core) effAddr(in program.Instr) uint64 {
	a := uint64(c.regs[in.A] + in.Imm)
	if a%8 != 0 {
		panic(fmt.Sprintf("cpu: core %d pc %d: unaligned address %#x", c.ID, c.pc, a))
	}
	return a
}

func (c *Core) doLoad(now sim.Cycle, in program.Instr) bool {
	addr := c.effAddr(in)
	// Store→load forwarding: newest matching write-buffer entry wins.
	// TSO requires reads of pending writes to see them.
	for i := len(c.wb) - 1; i >= 0; i-- {
		if c.wb[i].addr == addr {
			c.regs[in.Dst] = int64(c.wb[i].val)
			c.Loads.Inc()
			c.WBForwards.Inc()
			return true
		}
	}
	dst := in.Dst
	ok := c.port.Load(now, addr, func(val uint64) {
		c.regs[dst] = int64(val)
		c.waiting = false
	})
	if !ok {
		return false // port busy; retry next cycle without advancing pc
	}
	c.Loads.Inc()
	c.waiting = true
	c.pc++ // manually advance: completion is asynchronous
	c.Instructions.Inc()
	return false
}

func (c *Core) doStore(now sim.Cycle, in program.Instr) bool {
	if len(c.wb) >= c.wbCap {
		c.WBFullStalls.Inc()
		return false // write buffer full; retry
	}
	c.wb = append(c.wb, wbEntry{addr: c.effAddr(in), val: uint64(c.regs[in.B])})
	c.Stores.Inc()
	return true
}

func (c *Core) doAtomic(now sim.Cycle, in program.Instr) bool {
	// x86 locked operations drain the write buffer first (full barrier).
	if len(c.wb) > 0 || c.wbInFlight {
		return false
	}
	addr := c.effAddr(in)
	var f func(old uint64) (uint64, bool)
	switch in.Op {
	case program.OpRmwAdd:
		operand := uint64(c.regs[in.B])
		f = func(old uint64) (uint64, bool) { return old + operand, true }
	case program.OpRmwXchg:
		operand := uint64(c.regs[in.B])
		f = func(old uint64) (uint64, bool) { return operand, true }
	case program.OpCas:
		expect := uint64(c.regs[in.B])
		next := uint64(c.regs[in.C])
		f = func(old uint64) (uint64, bool) {
			if old == expect {
				return next, true
			}
			return 0, false
		}
	}
	dst := in.Dst
	ok := c.port.RMW(now, addr, f, func(old uint64) {
		c.regs[dst] = int64(old)
		c.waiting = false
	})
	if !ok {
		return false
	}
	c.RMWs.Inc()
	c.waiting = true
	c.pc++
	c.Instructions.Inc()
	return false
}

func (c *Core) doFence(now sim.Cycle) bool {
	if len(c.wb) > 0 || c.wbInFlight {
		return false
	}
	ok := c.port.Fence(now, func() { c.waiting = false })
	if !ok {
		return false
	}
	c.Fences.Inc()
	c.waiting = true
	c.pc++
	c.Instructions.Inc()
	return false
}

// Debug renders the core's execution state (deadlock diagnostics).
func (c *Core) Debug() string {
	instr := "?"
	if c.prog != nil && c.pc-1 >= 0 && c.pc-1 < len(c.prog.Instrs) {
		instr = c.prog.Instrs[c.pc-1].String()
	}
	return fmt.Sprintf("core %d: pc=%d (prev: %s) halted=%v waiting=%v wb=%d inflight=%v stallUntil=%d",
		c.ID, c.pc, instr, c.halted, c.waiting, len(c.wb), c.wbInFlight, c.stallUntil)
}
