package cpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/program"
	"repro/internal/sim"
)

// fakePort is an in-order memory with configurable latency, tracking the
// order operations became globally visible — enough to verify the core's
// TSO write buffer behaviour in isolation.
type fakePort struct {
	mem     map[uint64]uint64
	lat     sim.Cycle
	pending []func()
	fireAt  []sim.Cycle
	order   []string // visibility order log
	busy    bool
}

func newFakePort(lat sim.Cycle) *fakePort {
	return &fakePort{mem: make(map[uint64]uint64), lat: lat}
}

func (f *fakePort) schedule(now sim.Cycle, fn func()) {
	f.pending = append(f.pending, fn)
	f.fireAt = append(f.fireAt, now+f.lat)
}

// Tick fires due completions (call once per cycle before the core).
func (f *fakePort) Tick(now sim.Cycle) {
	var keepF []func()
	var keepT []sim.Cycle
	for i, at := range f.fireAt {
		if at <= now {
			f.pending[i]()
		} else {
			keepF = append(keepF, f.pending[i])
			keepT = append(keepT, at)
		}
	}
	f.pending, f.fireAt = keepF, keepT
}

func (f *fakePort) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	v := f.mem[addr]
	f.schedule(now, func() { cb(v) })
	return true
}

func (f *fakePort) Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool {
	f.schedule(now, func() {
		f.mem[addr] = val
		f.order = append(f.order, "st")
		cb()
	})
	return true
}

func (f *fakePort) RMW(now sim.Cycle, addr uint64, fn func(uint64) (uint64, bool), cb func(uint64)) bool {
	f.schedule(now, func() {
		old := f.mem[addr]
		if nv, w := fn(old); w {
			f.mem[addr] = nv
		}
		f.order = append(f.order, "rmw")
		cb(old)
	})
	return true
}

func (f *fakePort) Fence(now sim.Cycle, cb func()) bool {
	f.schedule(now, func() {
		f.order = append(f.order, "fence")
		cb()
	})
	return true
}

func runCore(t *testing.T, p *program.Program, port *fakePort, maxCycles int) *Core {
	t.Helper()
	c := New(0, p, port, 8)
	for cy := sim.Cycle(1); cy < sim.Cycle(maxCycles); cy++ {
		port.Tick(cy)
		c.Tick(cy)
		if c.Done() {
			return c
		}
	}
	t.Fatalf("core did not finish in %d cycles (%s)", maxCycles, c.Debug())
	return nil
}

func TestALUOps(t *testing.T) {
	b := program.NewBuilder("alu")
	b.Li(1, 6).Li(2, 7)
	b.Mul(3, 1, 2)  // 42
	b.Add(4, 3, 1)  // 48
	b.Sub(5, 4, 2)  // 41
	b.And(6, 1, 2)  // 6
	b.Or(7, 1, 2)   // 7
	b.Xor(8, 1, 2)  // 1
	b.Mod(9, 4, 5)  // 48 mod 5 = 3
	b.Shl(10, 1, 2) // 24
	b.Mov(11, 3)
	b.Halt()
	c := runCore(t, b.MustBuild(), newFakePort(1), 1000)
	want := map[uint8]int64{3: 42, 4: 48, 5: 41, 6: 6, 7: 7, 8: 1, 9: 3, 10: 24, 11: 42}
	for r, v := range want {
		if c.Reg(r) != v {
			t.Fatalf("r%d = %d, want %d", r, c.Reg(r), v)
		}
	}
}

func TestNegativeMod(t *testing.T) {
	b := program.NewBuilder("negmod")
	b.Li(1, -7)
	b.Mod(2, 1, 5) // Go's % would give -2; our mod is non-negative: 3
	b.Halt()
	c := runCore(t, b.MustBuild(), newFakePort(1), 100)
	if c.Reg(2) != 3 {
		t.Fatalf("mod = %d, want 3", c.Reg(2))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := program.NewBuilder("ldst")
	b.Li(1, 0x1000).Li(2, 99)
	b.St(1, 0, 2)
	b.Fence() // drain so the store is globally performed
	b.Ld(3, 1, 0)
	b.Halt()
	c := runCore(t, b.MustBuild(), newFakePort(2), 1000)
	if c.Reg(3) != 99 {
		t.Fatalf("loaded %d, want 99", c.Reg(3))
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A load of a buffered (not yet drained) store must see it without
	// any port traffic — the TSO forwarding requirement.
	port := newFakePort(50) // slow memory: the store sits in the WB
	b := program.NewBuilder("fwd")
	b.Li(1, 0x2000).Li(2, 7)
	b.St(1, 0, 2)
	b.Ld(3, 1, 0) // must forward from the write buffer
	b.Halt()
	c := runCore(t, b.MustBuild(), port, 1000)
	if c.Reg(3) != 7 {
		t.Fatalf("forwarded %d, want 7", c.Reg(3))
	}
	if c.WBForwards.Value() != 1 {
		t.Fatalf("WBForwards = %d, want 1", c.WBForwards.Value())
	}
}

func TestForwardingSeesNewestStore(t *testing.T) {
	port := newFakePort(60)
	b := program.NewBuilder("newest")
	b.Li(1, 0x2000).Li(2, 1).Li(3, 2)
	b.St(1, 0, 2)
	b.St(1, 0, 3) // newer value to the same address
	b.Ld(4, 1, 0)
	b.Halt()
	c := runCore(t, b.MustBuild(), port, 2000)
	if c.Reg(4) != 2 {
		t.Fatalf("forwarded %d, want newest (2)", c.Reg(4))
	}
}

func TestLoadBypassesPendingStores(t *testing.T) {
	// TSO's w→r relaxation: a load to a DIFFERENT address completes
	// while older stores are still buffered.
	port := newFakePort(1)
	port.mem[0x3000] = 5
	b := program.NewBuilder("bypass")
	b.Li(1, 0x2000).Li(2, 9).Li(3, 0x3000)
	b.St(1, 0, 2)
	b.Ld(4, 3, 0)
	b.Halt()
	c := runCore(t, b.MustBuild(), port, 1000)
	if c.Reg(4) != 5 {
		t.Fatalf("loaded %d", c.Reg(4))
	}
}

func TestWriteBufferFIFODrain(t *testing.T) {
	port := newFakePort(3)
	b := program.NewBuilder("fifo")
	b.Li(1, 0x1000)
	for i := int64(0); i < 4; i++ {
		b.Li(2, i+1)
		b.St(1, i*8, 2)
	}
	b.Halt()
	runCore(t, b.MustBuild(), port, 1000)
	for i := uint64(0); i < 4; i++ {
		if port.mem[0x1000+i*8] != i+1 {
			t.Fatalf("store %d not drained correctly", i)
		}
	}
}

func TestWriteBufferCapacityStalls(t *testing.T) {
	port := newFakePort(40)
	b := program.NewBuilder("full")
	b.Li(1, 0x1000)
	b.Li(2, 1)
	for i := int64(0); i < 12; i++ { // more than the 8-entry WB
		b.St(1, i*8, 2)
	}
	b.Halt()
	c := runCore(t, b.MustBuild(), port, 10_000)
	if c.WBFullStalls.Value() == 0 {
		t.Fatal("expected write-buffer-full stalls")
	}
	if c.Stores.Value() != 12 {
		t.Fatalf("stores = %d", c.Stores.Value())
	}
}

func TestAtomicsDrainWriteBufferFirst(t *testing.T) {
	// x86 locked semantics: the RMW must become visible after all
	// earlier stores.
	port := newFakePort(5)
	b := program.NewBuilder("atomic-order")
	b.Li(1, 0x1000).Li(2, 3).Li(3, 1)
	b.St(1, 0, 2)
	b.RmwAdd(4, 1, 8, 3)
	b.Halt()
	runCore(t, b.MustBuild(), port, 1000)
	if len(port.order) < 2 || port.order[0] != "st" || port.order[1] != "rmw" {
		t.Fatalf("visibility order %v, want [st rmw]", port.order)
	}
}

func TestFenceDrainsBeforeCompleting(t *testing.T) {
	port := newFakePort(5)
	b := program.NewBuilder("fence-order")
	b.Li(1, 0x1000).Li(2, 3)
	b.St(1, 0, 2)
	b.Fence()
	b.Halt()
	c := runCore(t, b.MustBuild(), port, 1000)
	if len(port.order) != 2 || port.order[0] != "st" || port.order[1] != "fence" {
		t.Fatalf("order %v, want [st fence]", port.order)
	}
	if c.Fences.Value() != 1 {
		t.Fatalf("fences = %d", c.Fences.Value())
	}
}

func TestCasSemantics(t *testing.T) {
	port := newFakePort(2)
	port.mem[0x1000] = 10
	b := program.NewBuilder("cas")
	b.Li(1, 0x1000)
	b.Li(2, 10) // expected
	b.Li(3, 20) // new
	b.Cas(4, 1, 0, 2, 3)
	b.Li(2, 999) // wrong expectation
	b.Cas(5, 1, 0, 2, 3)
	b.Halt()
	c := runCore(t, b.MustBuild(), port, 1000)
	if c.Reg(4) != 10 {
		t.Fatalf("first CAS returned %d, want 10", c.Reg(4))
	}
	if port.mem[0x1000] != 20 {
		t.Fatal("first CAS did not write")
	}
	if c.Reg(5) != 20 {
		t.Fatalf("second CAS returned %d, want 20", c.Reg(5))
	}
}

func TestRmwXchg(t *testing.T) {
	port := newFakePort(2)
	port.mem[0x1000] = 5
	b := program.NewBuilder("xchg")
	b.Li(1, 0x1000).Li(2, 9)
	b.RmwXchg(3, 1, 0, 2)
	b.Halt()
	c := runCore(t, b.MustBuild(), port, 1000)
	if c.Reg(3) != 5 || port.mem[0x1000] != 9 {
		t.Fatalf("xchg: got %d, mem %d", c.Reg(3), port.mem[0x1000])
	}
}

func TestBranchesAndLoops(t *testing.T) {
	b := program.NewBuilder("loop")
	b.Li(1, 0).Li(2, 10)
	b.Label("top")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "top")
	b.Halt()
	c := runCore(t, b.MustBuild(), newFakePort(1), 1000)
	if c.Reg(1) != 10 {
		t.Fatalf("loop counter = %d", c.Reg(1))
	}
}

func TestNopStalls(t *testing.T) {
	b := program.NewBuilder("nop")
	b.Nop(50)
	b.Halt()
	port := newFakePort(1)
	c := New(0, b.MustBuild(), port, 8)
	done := sim.Cycle(0)
	for cy := sim.Cycle(1); cy < 200; cy++ {
		port.Tick(cy)
		c.Tick(cy)
		if c.Done() {
			done = cy
			break
		}
	}
	if done < 50 {
		t.Fatalf("halted at %d, want >= 50", done)
	}
}

func TestDoneRequiresDrainedWriteBuffer(t *testing.T) {
	port := newFakePort(30)
	b := program.NewBuilder("drain")
	b.Li(1, 0x1000).Li(2, 1)
	b.St(1, 0, 2)
	b.Halt()
	c := New(0, b.MustBuild(), port, 8)
	sawHaltedNotDone := false
	for cy := sim.Cycle(1); cy < 500; cy++ {
		port.Tick(cy)
		c.Tick(cy)
		if c.Done() {
			break
		}
		if cy > 5 && !c.Done() {
			sawHaltedNotDone = true
		}
	}
	if !sawHaltedNotDone {
		t.Fatal("core reported done before draining its write buffer")
	}
	if port.mem[0x1000] != 1 {
		t.Fatal("store lost")
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	b := program.NewBuilder("unaligned")
	b.Li(1, 0x1001)
	b.Ld(2, 1, 0)
	b.Halt()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned access")
		}
	}()
	runCore(t, b.MustBuild(), newFakePort(1), 100)
}

func TestThreadIDConvention(t *testing.T) {
	b := program.NewBuilder("tid")
	b.Mov(1, 0)
	b.Halt()
	c := New(3, b.MustBuild(), newFakePort(1), 8)
	c.SetReg(0, 3)
	port := newFakePort(1)
	_ = port
	for cy := sim.Cycle(1); cy < 100 && !c.Done(); cy++ {
		c.Tick(cy)
	}
	if c.Reg(1) != 3 {
		t.Fatalf("r1 = %d, want thread id 3", c.Reg(1))
	}
}

// TestInstructionCountExact pins Instructions to retirements: issued
// memory ops count once (not again at the execute() epilogue), and
// rejected attempts — port busy, write buffer full — count nothing.
func TestInstructionCountExact(t *testing.T) {
	b := program.NewBuilder("count")
	b.Li(1, 0x1000) // 1
	b.Ld(2, 1, 0)   // 2
	b.St(1, 8, 2)   // 3
	b.Fence()       // 4
	b.RmwAdd(3, 1, 0, 2) // 5
	b.Halt()        // 6
	c := runCore(t, b.MustBuild(), newFakePort(40), 10_000)
	if got := c.Instructions.Value(); got != 6 {
		t.Fatalf("Instructions = %d, want 6 (one per retired instruction)", got)
	}
	// Write-buffer-full retries must not inflate the count either.
	b2 := program.NewBuilder("wbfull")
	b2.Li(1, 0x1000)
	b2.Li(2, 1)
	for i := int64(0); i < 12; i++ { // overflows the 8-entry WB
		b2.St(1, i*8, 2)
	}
	b2.Halt()
	c2 := runCore(t, b2.MustBuild(), newFakePort(40), 50_000)
	if got := c2.Instructions.Value(); got != 15 {
		t.Fatalf("Instructions = %d, want 15 despite WB-full stalls", got)
	}
	if c2.WBFullStalls.Value() == 0 {
		t.Fatal("test did not exercise WB-full stalls")
	}
}

// TestBatchedExecutionParity drives the same program through an
// unbatched and a batched core against identical fake ports and
// requires the same registers, memory, visibility order, instruction
// count and completion cycle — the core-level version of the engine
// A/B gates.
func TestBatchedExecutionParity(t *testing.T) {
	build := func() *program.Program {
		b := program.NewBuilder("mix")
		b.Li(1, 0x1000).Li(2, 3).Li(3, 0).Li(4, 6)
		b.Label("loop")
		b.Mul(5, 2, 2)
		b.Add(5, 5, 3)
		b.Xor(6, 5, 2)
		b.Shl(7, 6, 2)
		b.Mod(8, 7, 13)
		b.St(1, 0, 5) // memory op: batch boundary
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Fence()
		b.RmwAdd(9, 1, 8, 2)
		b.Nop(7)
		b.Ld(10, 1, 0)
		b.Halt()
		return b.MustBuild()
	}
	type run struct {
		c    *Core
		port *fakePort
		done sim.Cycle
	}
	var runs [2]run
	for i, batched := range []bool{false, true} {
		port := newFakePort(4)
		c := New(0, build(), port, 4)
		c.SetBatched(batched)
		for cy := sim.Cycle(1); cy < 5000; cy++ {
			port.Tick(cy)
			c.Tick(cy)
			if c.Done() {
				runs[i] = run{c: c, port: port, done: cy}
				break
			}
		}
		if runs[i].c == nil {
			t.Fatalf("batched=%v: did not finish (%s)", batched, c.Debug())
		}
	}
	a, b := runs[0], runs[1]
	if a.done != b.done {
		t.Fatalf("completion cycle diverged: unbatched %d, batched %d", a.done, b.done)
	}
	for r := uint8(0); r < program.NumRegs; r++ {
		if a.c.Reg(r) != b.c.Reg(r) {
			t.Fatalf("r%d diverged: unbatched %d, batched %d", r, a.c.Reg(r), b.c.Reg(r))
		}
	}
	if a.c.Instructions.Value() != b.c.Instructions.Value() {
		t.Fatalf("instruction count diverged: %d vs %d",
			a.c.Instructions.Value(), b.c.Instructions.Value())
	}
	if len(a.port.order) != len(b.port.order) {
		t.Fatalf("visibility order diverged: %v vs %v", a.port.order, b.port.order)
	}
	for i := range a.port.order {
		if a.port.order[i] != b.port.order[i] {
			t.Fatalf("visibility order diverged at %d: %v vs %v", i, a.port.order, b.port.order)
		}
	}
	for addr, v := range a.port.mem {
		if b.port.mem[addr] != v {
			t.Fatalf("mem[%#x] diverged: %d vs %d", addr, v, b.port.mem[addr])
		}
	}
}

var _ coherence.CorePort = (*fakePort)(nil)
