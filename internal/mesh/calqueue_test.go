package mesh

import (
	"sort"
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
)

type rec struct {
	at  sim.Cycle
	seq uint64
}

// drainAll pops every cycle from just after base until the queue empties,
// recording delivery order.
func drainAll(t *testing.T, q *calQueue, from sim.Cycle) []rec {
	t.Helper()
	var got []rec
	var scratch []delivery
	now := from
	for q.pending > 0 {
		now++
		if now > from+1_000_000 {
			t.Fatal("queue failed to drain")
		}
		due := q.pop(now, scratch)
		scratch = due[:0]
		for _, d := range due {
			got = append(got, rec{at: d.at, seq: d.key.seq})
		}
	}
	return got
}

// TestCalQueueOrdering schedules a deterministic pseudo-random mix of
// near (ring) and far (overflow) deadlines and requires deliveries in
// exact (deadline, send-sequence) order.
func TestCalQueueOrdering(t *testing.T) {
	q := &calQueue{}
	rng := sim.NewRNG(7)
	var want []rec
	seq := uint64(0)
	for i := 0; i < 5000; i++ {
		var at sim.Cycle
		switch rng.Intn(3) {
		case 0:
			at = sim.Cycle(1 + rng.Intn(16)) // hot: near-future ring
		case 1:
			at = sim.Cycle(1 + rng.Intn(calBuckets-1)) // anywhere in ring
		default:
			at = sim.Cycle(calBuckets + rng.Intn(4*calBuckets)) // overflow heap
		}
		q.schedule(delivery{at: at, key: dkey{seq: seq}})
		want = append(want, rec{at: at, seq: seq})
		seq++
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	got := drainAll(t, q, 0)
	if len(got) != len(want) {
		t.Fatalf("delivered %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCalQueueOverflowMigration schedules interleaved batches while
// draining, crossing the ring horizon repeatedly, and checks order and
// earliest-deadline tracking at every step.
func TestCalQueueOverflowMigration(t *testing.T) {
	q := &calQueue{}
	rng := sim.NewRNG(99)
	seq := uint64(0)
	now := sim.Cycle(0)
	var last rec
	sawAny := false
	var scratch []delivery
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			at := now + 1 + sim.Cycle(rng.Intn(3*calBuckets))
			q.schedule(delivery{at: at, key: dkey{seq: seq}})
			seq++
		}
		// Verify the earliest-deadline cache against brute force.
		e, ok := q.earliestDeadline()
		if !ok {
			t.Fatal("pending deliveries but no earliest deadline")
		}
		brute := sim.Cycle(-1)
		for i := range q.buckets {
			for _, d := range q.buckets[i] {
				if brute < 0 || d.at < brute {
					brute = d.at
				}
			}
		}
		q.overflow.Scan(func(c sim.Cycle, _ *delivery) {
			if brute < 0 || c < brute {
				brute = c
			}
		})
		if e != brute {
			t.Fatalf("earliestDeadline = %d, brute force = %d", e, brute)
		}
		// Drain a few cycles (possibly past idle stretches).
		steps := 1 + sim.Cycle(rng.Intn(40))
		for c := sim.Cycle(0); c < steps && q.pending > 0; c++ {
			now++
			due := q.pop(now, scratch)
			scratch = due[:0]
			for _, d := range due {
				r := rec{at: d.at, seq: d.key.seq}
				if sawAny {
					if r.at < last.at || (r.at == last.at && r.seq < last.seq) {
						t.Fatalf("out of order: %+v after %+v", r, last)
					}
				}
				last, sawAny = r, true
				if d.at != now {
					t.Fatalf("delivered at %d an event due %d", now, d.at)
				}
			}
		}
	}
}

// TestCalQueueMissedDeadlinePanics documents the engine contract: a pop
// that skips past a pending deadline must fail loudly, not deliver late.
func TestCalQueueMissedDeadlinePanics(t *testing.T) {
	q := &calQueue{}
	q.schedule(delivery{at: 5})
	if _, ok := q.earliestDeadline(); !ok {
		t.Fatal("expected a deadline")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("pop past a pending deadline should panic")
		}
	}()
	q.pop(9, nil)
}

// TestNetworkTickPastEmptyCycles exercises the Network-level idle jump:
// ticking only at delivery cycles (as the event engine does) must
// deliver everything that per-cycle ticking would.
func TestNetworkTickPastEmptyCycles(t *testing.T) {
	n := New(Config{Routers: 4})
	s := &sink{}
	for i := 0; i < 4; i++ {
		n.Attach(coherence.NodeID(i), i, s)
	}
	n.Send(0, &coherence.Msg{Type: coherence.MsgGetS, Src: 0, Dst: 3})
	n.Send(0, &coherence.Msg{Type: coherence.MsgDataS, Src: 1, Dst: 2,
		Data: make([]byte, coherence.BlockSize)})
	for n.Pending() > 0 {
		at := n.NextWake(0)
		if at == sim.WakeNever {
			t.Fatal("pending messages but no wake hint")
		}
		n.Tick(at)
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(s.got))
	}
}
