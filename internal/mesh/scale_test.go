package mesh

import (
	"math/rand"
	"testing"

	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/sim"
)

// sumOcc totals the per-directional-link occupancy accounting armed by
// InstallMetrics.
func sumOcc(n *Network) int64 {
	var sum int64
	for d := 0; d < 4; d++ {
		for _, v := range n.occ[d] {
			sum += v
		}
	}
	return sum
}

// TestFlitHopConservation: across random geometries, traffic mixes and
// seeds, the network-wide flit-hop counter must equal the sum of
// per-link flit-cycle occupancy — every flit-hop the contention model
// charges is attributed to exactly one directional link, and no link
// records traffic the aggregate counter missed. This ties the per-hop
// reservation loop (walkLinks) to its observability mirror at every
// machine size the repo supports, ragged grids included.
func TestFlitHopConservation(t *testing.T) {
	for _, routers := range []int{2, 5, 12, 16, 37, 64, 128, 200, 256} {
		for seed := int64(1); seed <= 3; seed++ {
			n, sinks := build(routers)
			reg := obs.NewRegistry()
			n.InstallMetrics(reg)
			rng := rand.New(rand.NewSource(seed*1000 + int64(routers)))
			const msgs = 200
			now := sim.Cycle(1)
			for i := 0; i < msgs; i++ {
				m := &coherence.Msg{
					Src: coherence.NodeID(rng.Intn(routers)),
					Dst: coherence.NodeID(rng.Intn(routers)),
				}
				if rng.Intn(2) == 0 {
					m.Type = coherence.MsgDataS
					m.Data = make([]byte, coherence.BlockSize)
				} else {
					m.Type = coherence.MsgInv
				}
				n.Send(now, m)
				now += sim.Cycle(rng.Intn(3))
			}
			drainByWake(t, n)
			delivered := 0
			for _, s := range sinks {
				delivered += len(s.got)
			}
			if delivered != msgs {
				t.Fatalf("routers=%d seed=%d: delivered %d of %d", routers, seed, delivered, msgs)
			}
			if got, want := sumOcc(n), n.FlitHops.Value(); got != want {
				t.Fatalf("routers=%d seed=%d: per-link occupancy sums to %d flit-hops, counter says %d",
					routers, seed, got, want)
			}
		}
	}
}

// TestHopDistanceMatchesXYRoute: at the scaling-target tile counts (and
// a ragged grid), HopDistance must agree with the path the router
// actually walks — a single-flit control message's FlitHops delta is
// exactly the number of links its XY route traversed.
func TestHopDistanceMatchesXYRoute(t *testing.T) {
	for _, routers := range []int{64, 128, 200, 256} {
		n, _ := build(routers)
		reg := obs.NewRegistry()
		n.InstallMetrics(reg)
		rng := rand.New(rand.NewSource(int64(routers)))
		now := sim.Cycle(1)
		for i := 0; i < 100; i++ {
			a := coherence.NodeID(rng.Intn(routers))
			b := coherence.NodeID(rng.Intn(routers))
			before := n.FlitHops.Value()
			n.Send(now, &coherence.Msg{Type: coherence.MsgAck, Src: a, Dst: b})
			drainByWake(t, n)
			walked := n.FlitHops.Value() - before
			if want := int64(n.HopDistance(a, b)); walked != want {
				t.Fatalf("routers=%d: route %d->%d walked %d links, HopDistance says %d",
					routers, a, b, walked, want)
			}
			now += 50
		}
	}
}
