// Package mesh models the on-chip interconnect: a 2D mesh with XY
// dimension-order routing, per-link serialization at one flit per cycle,
// and flit-level traffic accounting — the quantities GARNET reports in
// the paper's evaluation (total flits, Figure 4).
//
// The model is a timed-delivery network: when a message is sent, its
// route is walked immediately and a delivery time is computed from the
// per-link busy state, reserving link bandwidth along the way. This
// captures serialization and contention without per-flit ticking, and is
// fully deterministic.
package mesh

import (
	"fmt"
	"strconv"

	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Endpoint receives delivered messages.
type Endpoint interface {
	Deliver(now sim.Cycle, m *coherence.Msg)
}

// Config sets the mesh geometry and timing.
type Config struct {
	Routers     int       // number of routers (== cores in a tiled CMP)
	Rows        int       // mesh rows; 0 picks a near-square factorization
	LinkLatency sim.Cycle // cycles per hop for the head flit (default 1)
	LocalDelay  sim.Cycle // delivery delay between co-located endpoints
}

// Network is the mesh interconnect. It implements sim.Ticker; it must be
// ticked before the attached controllers each cycle so that messages due
// at cycle t are visible to controllers at cycle t. Pending deliveries
// live in a calendar queue (bucketed ring + overflow heap) that exposes
// the earliest deadline; every Send marks the network due at the
// delivery cycle through its sim.Waker, so the wake-set engine ticks it
// exactly at pending deadlines and never rescans it in between.
type Network struct {
	cfg  Config
	rows int
	cols int

	// nodes is the endpoint directory, indexed directly by NodeID.
	// NodeIDs are dense by construction (L1s are 0..cores-1, L2s are
	// cores..2*cores-1), so a flat slice replaces the map that used to
	// sit on every Send's source/destination lookup; a nil ep marks an
	// unattached slot.
	nodes []attachment

	// linkBusy[d][r] is the cycle through which the outgoing link of
	// router r in direction d is reserved, stored relative to linkBase.
	// Every linkEpoch cycles the entries are rebased (stale reservations
	// clamp to zero), so the stored values stay bounded by one epoch
	// plus the worst-case backlog instead of growing with absolute
	// simulation time — arbitrarily long runs cannot overflow them.
	linkBusy [4][]sim.Cycle
	linkBase sim.Cycle

	q       calQueue
	seq     uint64
	scratch []delivery
	waker   sim.Waker

	// delayHook, when set, may defer a delivery (fault injection: extra
	// latency within protocol-legal bounds). It sees the computed
	// delivery cycle and returns the cycle to use instead; implementations
	// must keep per-(src,dst) delivery order (see faults.Injector). Nil
	// on the hot path costs a single branch per Send.
	delayHook func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle

	// Pool recycles coherence messages flowing through this network.
	// Protocol controllers draw their messages from here and return them
	// once consumed.
	Pool coherence.MsgPool

	// Traffic accounting.
	MsgsSent     stats.Counter
	FlitsSent    stats.Counter    // flits injected (message size)
	FlitHops     stats.Counter    // flit-hops (size x hops traversed)
	FlitsByClass [2]stats.Counter // 0 = control, 1 = data

	// Sharded-delivery state (nil/empty in single-threaded mode). Each
	// shard owns a private delivery domain — calendar queue, send
	// sequence, message pool, traffic counters, outbox — touched only by
	// its own goroutine inside an epoch; linkBusy, FlitHops and the
	// cross-shard replay stay coordinator-owned (see shard.go).
	plan         *ShardPlan
	shards       []*netShard
	mergeDelay   func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle
	mergeIdx     []int
	mergeTouched []bool

	// Observability (internal/obs); all zero/nil when disabled.
	// metricsOn arms link-occupancy and queue-depth accounting: occ[d][r]
	// totals flit-cycles reserved on router r's direction-d link (touched
	// only where linkBusy is — serial Send or the barrier merge), and
	// qMax is the serial calendar queue's high-water mark. tl receives
	// send→deliver flow arrows and fault-delay instants; flowSeq numbers
	// serial-mode flows (shard domains number their own).
	metricsOn bool
	occ       [4][]int64
	qMax      int
	tl        *obs.Timeline
	flowSeq   uint64
}

type attachment struct {
	router int
	ep     Endpoint
}

const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// linkEpoch is the rebase period for link reservations (see linkBusy).
// Any power of two far above the worst-case link backlog works; the
// value only bounds how stale a reservation may get before the sweep
// clamps it.
const linkEpoch sim.Cycle = 1 << 20

// New builds a mesh network.
func New(cfg Config) *Network {
	if cfg.Routers <= 0 {
		panic("mesh: Routers must be positive")
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = 1
	}
	if cfg.LocalDelay <= 0 {
		cfg.LocalDelay = 1
	}
	rows := cfg.Rows
	if rows <= 0 {
		rows = nearSquareRows(cfg.Routers)
	}
	cols := (cfg.Routers + rows - 1) / rows
	n := &Network{
		cfg:  cfg,
		rows: rows,
		cols: cols,
	}
	for d := 0; d < 4; d++ {
		n.linkBusy[d] = make([]sim.Cycle, rows*cols)
	}
	n.MsgsSent.SetName("mesh.msgs_sent")
	n.FlitsSent.SetName("mesh.flits_sent")
	n.FlitHops.SetName("mesh.flit_hops")
	n.FlitsByClass[0].SetName("mesh.flits_control")
	n.FlitsByClass[1].SetName("mesh.flits_data")
	return n
}

func nearSquareRows(n int) int {
	best := 1
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = r
		}
	}
	if best == 1 && n > 3 {
		// Prime router count: fall back to a 2-row arrangement.
		best = 2
	}
	return best
}

// Rows reports the mesh row count.
func (n *Network) Rows() int { return n.rows }

// Cols reports the mesh column count.
func (n *Network) Cols() int { return n.cols }

// Attach registers an endpoint at a router. Multiple endpoints may share
// a router (the co-located L1 and L2 tile).
func (n *Network) Attach(id coherence.NodeID, router int, ep Endpoint) {
	if router < 0 || router >= n.rows*n.cols {
		panic(fmt.Sprintf("mesh: router %d out of range", router))
	}
	if id < 0 {
		panic(fmt.Sprintf("mesh: negative node id %d", id))
	}
	for int(id) >= len(n.nodes) {
		n.nodes = append(n.nodes, attachment{})
	}
	n.nodes[id] = attachment{router: router, ep: ep}
}

// node resolves a NodeID to its attachment (nil ep = unattached).
func (n *Network) node(id coherence.NodeID) attachment {
	if id < 0 || int(id) >= len(n.nodes) {
		return attachment{}
	}
	return n.nodes[id]
}

// SetDelayHook installs a delivery-delay hook (see the delayHook
// field). Install before the first Send; passing nil removes it.
func (n *Network) SetDelayHook(h func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle) {
	n.delayHook = h
}

var dirNames = [4]string{"east", "west", "north", "south"}

// InstallMetrics registers the mesh's traffic counters (every delivery
// domain) with the registry and arms link-occupancy and calendar-queue
// depth accounting. Call after SetShards, before any Send.
func (n *Network) InstallMetrics(reg *obs.Registry) {
	n.metricsOn = true
	for d := 0; d < 4; d++ {
		n.occ[d] = make([]int64, n.rows*n.cols)
	}
	reg.RegisterCounter(&n.MsgsSent, &n.FlitsSent, &n.FlitHops,
		&n.FlitsByClass[0], &n.FlitsByClass[1])
	for _, sh := range n.shards {
		reg.RegisterCounter(&sh.msgsSent, &sh.flitsSent,
			&sh.flitsByClass[0], &sh.flitsByClass[1])
	}
	for d := 0; d < 4; d++ {
		d := d
		reg.Gauge("mesh.link_occ_flit_cycles."+dirNames[d], func() int64 {
			var sum int64
			for _, v := range n.occ[d] {
				sum += v
			}
			return sum
		})
	}
	reg.Gauge("mesh.link_occ_flit_cycles.max_link", func() int64 {
		var m int64
		for d := 0; d < 4; d++ {
			for _, v := range n.occ[d] {
				if v > m {
					m = v
				}
			}
		}
		return m
	})
	reg.Gauge("mesh.calqueue_depth_max", func() int64 {
		m := n.qMax
		for _, sh := range n.shards {
			if sh.qMax > m {
				m = sh.qMax
			}
		}
		return int64(m)
	})
}

// SetTimeline installs a timeline sink for message send→deliver flow
// arrows (one thread per router on obs.PidMesh) and fault-delay
// instants. Call before any Send.
func (n *Network) SetTimeline(tl *obs.Timeline) {
	n.tl = tl
	tl.ProcessName(obs.PidMesh, fmt.Sprintf("mesh %dx%d", n.rows, n.cols))
	for r := 0; r < n.rows*n.cols; r++ {
		tl.ThreadName(obs.PidMesh, r, "router "+strconv.Itoa(r))
	}
}

// applyDelay runs a fault delay hook and, when a timeline is armed and
// the hook actually moved the delivery, drops a fault instant on the
// source router's track. Behavior is identical to calling the hook
// directly.
func (n *Network) applyDelay(hook func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle,
	now, at sim.Cycle, m *coherence.Msg, srcRouter int) sim.Cycle {
	at2 := hook(now, at, m.Src, m.Dst)
	if n.tl != nil && at2 != at {
		n.tl.Instant(obs.PidMesh, srcRouter, "fault.delay", int64(now))
	}
	return at2
}

// Send routes m from m.Src to m.Dst, reserving link bandwidth, and
// schedules delivery. It panics on unknown endpoints (a wiring bug).
func (n *Network) Send(now sim.Cycle, m *coherence.Msg) {
	src := n.node(m.Src)
	if src.ep == nil {
		panic(fmt.Sprintf("mesh: cycle %d: unknown src %d in %s", now, m.Src, m))
	}
	dst := n.node(m.Dst)
	if dst.ep == nil {
		panic(fmt.Sprintf("mesh: cycle %d: unknown dst %d in %s", now, m.Dst, m))
	}
	if TraceAll || (TraceAddr != 0 && m.Addr == TraceAddr) {
		TraceLog = append(TraceLog, fmt.Sprintf("cyc=%d %s", now, m))
	}
	if n.plan != nil {
		n.sendSharded(now, m, src, dst)
		return
	}
	flits := m.Type.Flits()
	n.MsgsSent.Inc()
	n.FlitsSent.Add(int64(flits))
	if m.Type.CarriesData() {
		n.FlitsByClass[1].Add(int64(flits))
	} else {
		n.FlitsByClass[0].Add(int64(flits))
	}
	var fid uint64
	if n.tl != nil {
		n.flowSeq++
		fid = n.flowSeq
		n.tl.FlowStart(fid, obs.PidMesh, src.router, m.Type.String(), int64(now))
	}

	if src.router == dst.router {
		// Co-located endpoints: one cycle of crossbar delay, no
		// link traffic.
		at := now + n.cfg.LocalDelay
		if n.delayHook != nil {
			at = n.applyDelay(n.delayHook, now, at, m, src.router)
		}
		n.schedule(now, at, m, dst.ep, fid)
		return
	}

	at := n.walkLinks(now, m.Type.Flits(), src.router, dst.router)
	if n.delayHook != nil {
		at = n.applyDelay(n.delayHook, now, at, m, src.router)
	}
	n.schedule(now, at, m, dst.ep, fid)
}

// walkLinks routes flits from router src to router dst at cycle now,
// reserving link bandwidth along the XY path, and returns the delivery
// cycle. Link state is global; in sharded mode only the barrier merge
// (coordinator goroutine) calls this, replaying cross-tile sends in
// serial key order so reservations are computed exactly as a serial run
// would.
func (n *Network) walkLinks(now sim.Cycle, flits, src, dst int) sim.Cycle {
	if now-n.linkBase >= linkEpoch {
		n.rebaseLinks(now)
	}
	t := now
	r := src
	hops := 0
	for r != dst {
		d, next := n.xyStep(r, dst)
		depart := t
		if busy := n.linkBase + n.linkBusy[d][r]; busy > depart {
			depart = busy
		}
		// The link is occupied while the message's flits stream
		// across it.
		n.linkBusy[d][r] = depart + sim.Cycle(flits) - n.linkBase
		if n.metricsOn {
			n.occ[d][r] += int64(flits)
		}
		t = depart + n.cfg.LinkLatency
		r = next
		hops++
	}
	// Tail-flit serialization at the destination.
	t += sim.Cycle(flits - 1)
	n.FlitHops.Add(int64(flits * hops))
	return t + 1
}

// rebaseLinks starts a new link-reservation epoch at now: reservations
// already in the past clamp to zero (an expired reservation and a free
// link are indistinguishable to Send), live ones shift to the new base.
// Observable behavior is unchanged — only the stored representation is
// re-anchored.
func (n *Network) rebaseLinks(now sim.Cycle) {
	delta := now - n.linkBase
	for d := 0; d < 4; d++ {
		for r := range n.linkBusy[d] {
			if b := n.linkBusy[d][r]; b > delta {
				n.linkBusy[d][r] = b - delta
			} else {
				n.linkBusy[d][r] = 0
			}
		}
	}
	n.linkBase = now
}

func (n *Network) xyStep(r, dst int) (dir, next int) {
	rx, ry := r%n.cols, r/n.cols
	dx, dy := dst%n.cols, dst/n.cols
	switch {
	case rx < dx:
		return dirEast, r + 1
	case rx > dx:
		return dirWest, r - 1
	case ry < dy:
		return dirSouth, r + n.cols
	case ry > dy:
		return dirNorth, r - n.cols
	}
	panic(fmt.Sprintf("mesh: xyStep called with router %d already at destination %d", r, dst))
}

// BindWaker implements sim.WakeSink: the engine hands the network its
// wake handle at registration. Every scheduled delivery self-wakes at
// its deadline, replacing the per-cycle NextWake rescans of the old
// scan-all engine.
func (n *Network) BindWaker(w sim.Waker) { n.waker = w }

func (n *Network) schedule(now, at sim.Cycle, m *coherence.Msg, ep Endpoint, fid uint64) {
	// The ring's base advances only on pop; on a long-idle network it may
	// be arbitrarily stale (the wake-set engine never ticks an empty
	// network), which would push near-future deliveries into the overflow
	// heap. Re-anchor the empty queue at the send cycle.
	if n.q.pending == 0 && now > n.q.base {
		n.q.base = now
	}
	n.q.schedule(delivery{at: at, key: dkey{seq: n.seq}, msg: m, dst: ep, fid: fid})
	n.seq++
	if n.metricsOn && n.q.pending > n.qMax {
		n.qMax = n.q.pending
	}
	n.waker.WakeAt(at)
}

// Tick delivers all messages due at cycle now, in send order. The
// engine must not skip past a pending deadline (Tick panics if it
// detects one was missed).
func (n *Network) Tick(now sim.Cycle) {
	if n.q.pending == 0 {
		n.q.base = now
		return
	}
	due := n.q.pop(now, n.scratch)
	n.scratch = due[:0]
	for i := range due {
		if TraceAll {
			TraceLog = append(TraceLog, fmt.Sprintf("cyc=%d DELIVER(seq=%d) %s", now, due[i].key.seq, due[i].msg))
		}
		if due[i].fid != 0 {
			// Flow arrival must be emitted before Deliver: the endpoint
			// may consume and recycle the message.
			m := due[i].msg
			n.tl.FlowEnd(due[i].fid, obs.PidMesh, n.nodes[m.Dst].router, m.Type.String(), int64(now))
		}
		due[i].dst.Deliver(now, due[i].msg)
	}
}

// MsgPool implements coherence.Network: the shared message free list
// (single-threaded mode; sharded controllers must use MsgPoolFor).
func (n *Network) MsgPool() *coherence.MsgPool { return &n.Pool }

// MsgPoolFor implements coherence.Network: the message free list a
// controller on the given tile must draw from. Single-threaded mode has
// one shared pool; sharded mode gives each shard a private pool so the
// allocation fast path stays unsynchronized. Messages may migrate
// between pools (allocated by the sender's shard, recycled into the
// consumer's), so per-pool News counts drift across modes but the sums
// Gets and Gets-Puts (the leak check) stay exact.
func (n *Network) MsgPoolFor(tile int) *coherence.MsgPool {
	if n.plan != nil {
		return &n.shards[n.plan.ShardOfRouter[tile]].pool
	}
	return &n.Pool
}

// PoolTotals reports pooled-message accounting summed over every
// delivery domain: total Gets and currently live (Gets - Puts).
func (n *Network) PoolTotals() (gets, live int64) {
	gets, live = n.Pool.Gets, n.Pool.Live()
	for _, sh := range n.shards {
		gets += sh.pool.Gets
		live += sh.pool.Live()
	}
	return gets, live
}

// Totals reports traffic counters summed over every delivery domain.
func (n *Network) Totals() (msgs, flits, hops, ctrl, data int64) {
	msgs, flits = n.MsgsSent.Value(), n.FlitsSent.Value()
	hops = n.FlitHops.Value()
	ctrl, data = n.FlitsByClass[0].Value(), n.FlitsByClass[1].Value()
	for _, sh := range n.shards {
		msgs += sh.msgsSent.Value()
		flits += sh.flitsSent.Value()
		ctrl += sh.flitsByClass[0].Value()
		data += sh.flitsByClass[1].Value()
	}
	return
}

// Lookahead reports the conservative cross-tile synchronization horizon:
// the minimum number of cycles between a cross-router send and its
// earliest possible delivery (one hop's head-flit latency plus the
// final-cycle handoff; the fault delay hook only ever adds latency).
// This is the sharded engine's epoch length.
func (n *Network) Lookahead() sim.Cycle { return n.cfg.LinkLatency + 1 }

// NextWake implements sim.WakeHinter: the earliest pending delivery.
func (n *Network) NextWake(now sim.Cycle) sim.Cycle {
	if at, ok := n.q.earliestDeadline(); ok {
		return at
	}
	return sim.WakeNever
}

// Pending reports the number of undelivered messages across every
// delivery domain, including cross-shard sends still awaiting their
// barrier merge (used by completion checks and deadlock diagnostics).
func (n *Network) Pending() int {
	p := n.q.pending
	for _, sh := range n.shards {
		p += sh.q.pending + len(sh.outbox)
	}
	return p
}

// ComponentLabel implements sim.Labeled (forensic reports).
func (n *Network) ComponentLabel() string {
	return fmt.Sprintf("mesh %dx%d", n.rows, n.cols)
}

// Debug implements sim.Debugger: queued-delivery state for forensic
// reports.
func (n *Network) Debug() string {
	s := fmt.Sprintf("mesh: %d pending deliveries", n.q.pending)
	if at, ok := n.q.earliestDeadline(); ok {
		s += fmt.Sprintf(", earliest due cycle %d", at)
	}
	return s
}

// HopDistance reports the XY hop count between two node IDs.
func (n *Network) HopDistance(a, b coherence.NodeID) int {
	sa := n.node(a)
	sb := n.node(b)
	if sa.ep == nil || sb.ep == nil {
		return 0
	}
	ax, ay := sa.router%n.cols, sa.router/n.cols
	bx, by := sb.router%n.cols, sb.router/n.cols
	return abs(ax-bx) + abs(ay-by)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TraceAddr enables message tracing for one block address (debug only).
var TraceAddr uint64

// TraceAll traces every message (debug only).
var TraceAll bool

// TraceLog accumulates traced messages.
var TraceLog []string
