package mesh

import (
	"fmt"
	"math/bits"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// dkey is a delivery's position in the serial engine's send order: the
// send cycle, the canonical (serial registration order) index of the
// component that was being dispatched when Send was called, and a
// per-queue-domain sequence number. In single-threaded mode only seq is
// used (cyc and pos stay zero, so comparisons degenerate to the global
// send sequence). In sharded mode the triple totally orders sends
// exactly as the serial engine's global sequence would — within one
// cycle components dispatch in canonical order, and within one
// component's dispatch its sends are numbered by the shard-local seq —
// independent of goroutine interleaving. That equivalence holds because
// no component ever sends from inside Deliver (deliveries only enqueue
// to inboxes and wake), so every send is attributable to exactly one
// (cycle, dispatched component) slot.
type dkey struct {
	cyc sim.Cycle
	pos int32
	seq uint64
}

func (a dkey) less(b dkey) bool {
	if a.cyc != b.cyc {
		return a.cyc < b.cyc
	}
	if a.pos != b.pos {
		return a.pos < b.pos
	}
	return a.seq < b.seq
}

type delivery struct {
	at  sim.Cycle
	key dkey
	msg *coherence.Msg
	dst Endpoint
	fid uint64 // timeline flow id (0 when no timeline is armed)
}

// calBuckets is the calendar horizon: deliveries due within this many
// cycles of the present live in the ring, everything further out in the
// overflow heap. Power of two so the bucket index is a mask. Mesh
// traversal plus contention rarely exceeds a few dozen cycles; memory
// fills (Base+Spread ≈ 230) are timer-side, not network-side, so 256
// comfortably covers the common case.
const calBuckets = 256

// calQueue is a calendar queue: a power-of-two bucketed ring buffer of
// pending deliveries indexed by delivery cycle, with the shared
// coherence.EventHeap for events beyond the ring horizon (ordered by
// the delivery's global send sequence, not heap insertion order). It
// replaces the former map[sim.Cycle][]delivery, which hashed and
// allocated on every send — the hottest path in the simulator. Bucket
// slices are recycled after delivery, so steady-state scheduling
// allocates nothing.
type calQueue struct {
	buckets  [calBuckets][]delivery
	occ      [calBuckets / 64]uint64 // occupancy bit per bucket
	base     sim.Cycle               // cycle of the most recent pop; ring holds (base, base+calBuckets)
	pending  int
	overflow coherence.EventHeap[delivery]
	heapSeq  uint64 // overflow insertion counter; pop re-sorts by key, so heap tie order is irrelevant

	earliest   sim.Cycle // cached earliest deadline
	earliestOK bool
}

func (q *calQueue) ringPut(d delivery) {
	idx := uint64(d.at) & (calBuckets - 1)
	q.buckets[idx] = append(q.buckets[idx], d)
	q.occ[idx>>6] |= 1 << (idx & 63)
}

// schedule inserts a delivery. at must be in the future relative to the
// last pop (the mesh always schedules at now+latency, latency >= 1).
func (q *calQueue) schedule(d delivery) {
	if d.at <= q.base {
		panic(fmt.Sprintf("mesh: scheduling delivery at %d, not after %d", d.at, q.base))
	}
	if d.at-q.base < calBuckets {
		q.ringPut(d)
	} else {
		q.heapSeq++
		q.overflow.Push(d.at, q.heapSeq, d)
	}
	if q.pending == 0 {
		q.earliest = d.at
		q.earliestOK = true
	} else if q.earliestOK && d.at < q.earliest {
		// Only a *valid* cache may be min-updated: adopting d.at while
		// the cache is stale could hide an earlier pending deadline.
		q.earliest = d.at
	}
	q.pending++
}

// pop removes and returns all deliveries due at exactly `now`, in send
// (seq) order, advancing the ring. Cycles between the previous pop and
// now must hold no deliveries: skipping a deadline is an engine
// scheduling bug, and silently dropping or late-delivering would corrupt
// the simulation, so it panics.
func (q *calQueue) pop(now sim.Cycle, scratch []delivery) []delivery {
	if q.earliestOK && q.earliest < now {
		panic(fmt.Sprintf("mesh: missed delivery deadline %d (now %d)", q.earliest, now))
	}
	q.base = now
	// Migrate overflow events that entered the horizon into the ring.
	for it := q.overflow.MinItem(); it != nil && it.Cycle-now < calBuckets; it = q.overflow.MinItem() {
		q.ringPut(q.overflow.Pop().Item)
	}
	b := now & (calBuckets - 1)
	due := q.buckets[b]
	if len(due) == 0 {
		return scratch[:0]
	}
	out := append(scratch[:0], due...)
	for i := range due {
		due[i] = delivery{}
	}
	q.buckets[b] = due[:0]
	q.occ[b>>6] &^= 1 << (b & 63)
	q.pending -= len(out)
	for i := range out {
		if out[i].at != now {
			panic(fmt.Sprintf("mesh: bucket entry for cycle %d popped at %d", out[i].at, now))
		}
	}
	// Entries may have been appended out of send order (a direct send
	// can land after an earlier-sent overflow migrant, and in sharded
	// mode barrier-merged deliveries interleave with shard-local ones);
	// restore serial send order by key.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].key.less(out[j-1].key); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if q.earliestOK && q.earliest == now {
		q.earliestOK = false // recompute lazily
	}
	return out
}

// earliestDeadline reports the soonest pending delivery cycle.
func (q *calQueue) earliestDeadline() (sim.Cycle, bool) {
	if q.pending == 0 {
		return 0, false
	}
	if !q.earliestOK {
		e := sim.Cycle(-1)
		// Walk the occupancy bitmask word-wise from base+1: at most
		// calBuckets/64 + 1 iterations.
		for c := q.base + 1; c < q.base+calBuckets; {
			idx := uint64(c) & (calBuckets - 1)
			bit := idx & 63
			if word := q.occ[idx>>6] >> bit; word != 0 {
				e = c + sim.Cycle(bits.TrailingZeros64(word))
				break
			}
			c += sim.Cycle(64 - bit)
		}
		if it := q.overflow.MinItem(); it != nil && (e < 0 || it.Cycle < e) {
			e = it.Cycle
		}
		if e < 0 {
			panic("mesh: pending deliveries but none found")
		}
		q.earliest = e
		q.earliestOK = true
	}
	return q.earliest, true
}
