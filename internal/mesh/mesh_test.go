package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/coherence"
	"repro/internal/sim"
)

type sink struct {
	got []arrival
}

type arrival struct {
	at  sim.Cycle
	msg *coherence.Msg
}

func (s *sink) Deliver(now sim.Cycle, m *coherence.Msg) {
	s.got = append(s.got, arrival{at: now, msg: m})
}

func build(routers int) (*Network, []*sink) {
	n := New(Config{Routers: routers})
	sinks := make([]*sink, routers)
	for i := 0; i < routers; i++ {
		sinks[i] = &sink{}
		n.Attach(coherence.NodeID(i), i, sinks[i])
	}
	return n, sinks
}

func run(n *Network, until sim.Cycle) {
	for c := sim.Cycle(1); c <= until; c++ {
		n.Tick(c)
	}
}

func TestLocalDelivery(t *testing.T) {
	n := New(Config{Routers: 2})
	a, b := &sink{}, &sink{}
	n.Attach(0, 0, a)
	n.Attach(100, 0, b) // co-located with router 0
	n.Send(0, &coherence.Msg{Type: coherence.MsgGetS, Src: 0, Dst: 100})
	run(n, 5)
	if len(b.got) != 1 || b.got[0].at != 1 {
		t.Fatalf("co-located delivery: %+v", b.got)
	}
	if n.FlitHops.Value() != 0 {
		t.Fatal("co-located message should not consume link bandwidth")
	}
}

func TestRemoteDeliveryLatencyAndFlits(t *testing.T) {
	n, sinks := build(16) // 4x4
	// Router 0 -> router 3: 3 hops east.
	n.Send(0, &coherence.Msg{Type: coherence.MsgGetS, Src: 0, Dst: 3})
	run(n, 20)
	if len(sinks[3].got) != 1 {
		t.Fatal("message not delivered")
	}
	// 3 hops, 1 cycle/hop + 1 delivery = small constant; control = 1 flit.
	if at := sinks[3].got[0].at; at < 3 || at > 6 {
		t.Fatalf("3-hop control message arrived at %d", at)
	}
	if n.FlitsSent.Value() != 1 || n.FlitHops.Value() != 3 {
		t.Fatalf("flits=%d hops=%d, want 1/3", n.FlitsSent.Value(), n.FlitHops.Value())
	}
}

func TestDataMessageFlitAccounting(t *testing.T) {
	n, _ := build(4)
	n.Send(0, &coherence.Msg{Type: coherence.MsgDataS, Src: 0, Dst: 3,
		Data: make([]byte, coherence.BlockSize)})
	run(n, 30)
	wantFlits := int64(coherence.BlockFlits)
	if n.FlitsSent.Value() != wantFlits {
		t.Fatalf("flits = %d, want %d", n.FlitsSent.Value(), wantFlits)
	}
	if n.FlitsByClass[1].Value() != wantFlits || n.FlitsByClass[0].Value() != 0 {
		t.Fatal("data/control class accounting wrong")
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	n, sinks := build(4) // 2x2
	// Two 5-flit data messages over the same link, same cycle: the
	// second must arrive later than the first.
	for i := 0; i < 2; i++ {
		n.Send(0, &coherence.Msg{Type: coherence.MsgDataS, Src: 0, Dst: 1,
			Data: make([]byte, coherence.BlockSize)})
	}
	run(n, 40)
	if len(sinks[1].got) != 2 {
		t.Fatalf("deliveries = %d", len(sinks[1].got))
	}
	d := sinks[1].got[1].at - sinks[1].got[0].at
	if d < sim.Cycle(coherence.BlockFlits) {
		t.Fatalf("second message arrived %d cycles after first, want >= %d (serialization)",
			d, coherence.BlockFlits)
	}
}

func TestPerPairFIFO(t *testing.T) {
	// Messages between one src-dst pair must never reorder, regardless
	// of size mix — the protocols rely on this.
	n, sinks := build(16)
	seq := 0
	for i := 0; i < 20; i++ {
		m := &coherence.Msg{Src: 0, Dst: 15, Addr: uint64(seq)}
		if i%3 == 0 {
			m.Type = coherence.MsgDataS
			m.Data = make([]byte, coherence.BlockSize)
		} else {
			m.Type = coherence.MsgInv
		}
		seq++
		n.Send(sim.Cycle(i), m)
	}
	run(n, 500)
	if len(sinks[15].got) != 20 {
		t.Fatalf("deliveries = %d, want 20", len(sinks[15].got))
	}
	for i, a := range sinks[15].got {
		if a.msg.Addr != uint64(i) {
			t.Fatalf("reordered: position %d has seq %d", i, a.msg.Addr)
		}
	}
}

func TestBroadcastFanOut(t *testing.T) {
	// Protocol broadcasts (TS resets, SRO invalidations) are per-copy
	// sends; fan-out from one source must reach every destination.
	n, sinks := build(8)
	dsts := []coherence.NodeID{1, 2, 3, 4, 5, 6, 7}
	for _, d := range dsts {
		n.Send(0, &coherence.Msg{Type: coherence.MsgTSResetL1, Src: 0, Dst: d})
	}
	run(n, 50)
	for _, d := range dsts {
		if len(sinks[d].got) != 1 {
			t.Fatalf("router %d missed broadcast", d)
		}
	}
	if n.MsgsSent.Value() != int64(len(dsts)) {
		t.Fatalf("msgs = %d", n.MsgsSent.Value())
	}
}

func TestHopDistance(t *testing.T) {
	n, _ := build(16) // 4x4
	cases := []struct {
		a, b coherence.NodeID
		want int
	}{
		{0, 0, 0}, {0, 3, 3}, {0, 12, 3}, {0, 15, 6}, {5, 10, 2},
	}
	for _, c := range cases {
		if got := n.HopDistance(c.a, c.b); got != c.want {
			t.Fatalf("HopDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	n, _ := build(32)
	check := func(a, b uint8) bool {
		x := coherence.NodeID(int(a) % 32)
		y := coherence.NodeID(int(b) % 32)
		return n.HopDistance(x, y) == n.HopDistance(y, x)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEveryPairDeliverable(t *testing.T) {
	n, sinks := build(12) // 3x4 or similar
	count := 0
	for s := 0; s < 12; s++ {
		for d := 0; d < 12; d++ {
			if s == d {
				continue
			}
			n.Send(0, &coherence.Msg{Type: coherence.MsgAck,
				Src: coherence.NodeID(s), Dst: coherence.NodeID(d)})
			count++
		}
	}
	run(n, 2000)
	got := 0
	for _, s := range sinks {
		got += len(s.got)
	}
	if got != count {
		t.Fatalf("delivered %d of %d", got, count)
	}
	if n.Pending() != 0 {
		t.Fatal("messages still pending")
	}
}

func TestNearSquareRows(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 16: 4, 32: 4, 8: 2, 64: 8, 7: 2, 12: 3}
	for n, want := range cases {
		if got := nearSquareRows(n); got != want {
			t.Fatalf("nearSquareRows(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestExplicitRows(t *testing.T) {
	n := New(Config{Routers: 32, Rows: 4})
	if n.Rows() != 4 || n.Cols() != 8 {
		t.Fatalf("rows=%d cols=%d, want 4x8 (Table 2)", n.Rows(), n.Cols())
	}
}

func TestUnknownEndpointPanics(t *testing.T) {
	n, _ := build(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown destination")
		}
	}()
	n.Send(0, &coherence.Msg{Type: coherence.MsgAck, Src: 0, Dst: 99})
}

// sendData injects a 5-flit data message 0 -> 1 at cycle now and returns
// nothing; deliveries are drained by the caller via wake hints.
func sendData(n *Network, now sim.Cycle) {
	n.Send(now, &coherence.Msg{Type: coherence.MsgDataS, Src: 0, Dst: 1,
		Data: make([]byte, coherence.BlockSize)})
}

// drainByWake ticks the network only at its advertised wake cycles,
// mirroring the event engine.
func drainByWake(t *testing.T, n *Network) {
	t.Helper()
	for n.Pending() > 0 {
		at := n.NextWake(0)
		if at == sim.WakeNever {
			t.Fatal("pending deliveries but no wake hint")
		}
		n.Tick(at)
	}
}

// TestLinkEpochRebase is the regression test for the linkBusy epoch
// reset: runs that advance far past a link-reservation epoch boundary
// must behave exactly like early-run traffic — uncontended sends see the
// base latency, back-to-back sends see identical serialization delay,
// and a reservation created just before the boundary still delays a send
// issued just after the rebase.
func TestLinkEpochRebase(t *testing.T) {
	n, sinks := build(2) // 1x2 mesh: one east link 0 -> 1
	arrivalAt := func(i int) sim.Cycle { return sinks[1].got[i].at }

	// Reference behavior, far from any boundary: two same-cycle sends.
	sendData(n, 10)
	sendData(n, 10)
	drainByWake(t, n)
	uncontended := arrivalAt(0) - 10
	contended := arrivalAt(1) - 10
	if contended <= uncontended {
		t.Fatalf("no serialization: %d vs %d", contended, uncontended)
	}

	// Straddle the first epoch boundary: send just before it, deliver
	// just after.
	pre := linkEpoch - 3
	sendData(n, pre)
	sendData(n, pre)
	drainByWake(t, n)
	if got := arrivalAt(2) - pre; got != uncontended {
		t.Fatalf("pre-boundary uncontended latency %d, want %d", got, uncontended)
	}
	if got := arrivalAt(3) - pre; got != contended {
		t.Fatalf("pre-boundary contended latency %d, want %d", got, contended)
	}

	// Past the boundary: the next send rebases the reservations; timing
	// must be unchanged.
	post := linkEpoch + 20
	sendData(n, post)
	sendData(n, post)
	if n.linkBase != post {
		t.Fatalf("linkBase = %d, want rebase to %d", n.linkBase, post)
	}
	drainByWake(t, n)
	if got := arrivalAt(4) - post; got != uncontended {
		t.Fatalf("post-rebase uncontended latency %d, want %d", got, uncontended)
	}
	if got := arrivalAt(5) - post; got != contended {
		t.Fatalf("post-rebase contended latency %d, want %d", got, contended)
	}

	// A live reservation must survive a rebase: reserve just below the
	// next threshold, then send two cycles later (triggering the rebase
	// with the reservation still in the future).
	reserveAt := n.linkBase + linkEpoch - 1
	sendData(n, reserveAt)
	after := reserveAt + 2
	sendData(n, after)
	if n.linkBase != after {
		t.Fatalf("linkBase = %d, want rebase to %d", n.linkBase, after)
	}
	drainByWake(t, n)
	// The second send departs when the first's flits clear the link:
	// contended latency minus the two elapsed cycles.
	if got := arrivalAt(7) - after; got != contended-2 {
		t.Fatalf("reservation lost across rebase: latency %d, want %d", got, contended-2)
	}
	// Stored reservations stay bounded after rebasing: no entry may
	// exceed the backlog horizon regardless of absolute time.
	for d := 0; d < 4; d++ {
		for r, b := range n.linkBusy[d] {
			if b > 4*linkEpoch {
				t.Fatalf("linkBusy[%d][%d] = %d grew unbounded", d, r, b)
			}
		}
	}
}
