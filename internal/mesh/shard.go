package mesh

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ShardPlan partitions the mesh's routers (tiles) across the sharded
// engine's time domains. DispatchPos reports, for a shard, the
// canonical serial-order registration index of the component the shard
// is currently dispatching (sim.ShardedEngine.DispatchPos); the mesh
// stamps it into every send's merge key.
type ShardPlan struct {
	NumShards     int
	ShardOfRouter []int
	DispatchPos   func(shard int) int
}

// netShard is one shard's private delivery domain. During an epoch it
// is touched only by its shard's goroutine: co-located (same-router)
// messages are scheduled straight into its calendar queue, cross-router
// messages are buffered in its outbox. At the barrier the coordinator
// drains every outbox in merge-key order (MergeEpoch) and schedules the
// resulting deliveries into the destination shards' queues — the only
// cross-domain access, serialized by the barrier.
//
// It registers first in its shard's engine (like the serial Network's
// index 0), so deliveries at cycle t are visible to the shard's
// controllers at cycle t, in canonical order.
type netShard struct {
	n       *Network
	id      int
	q       calQueue
	seq     uint64
	scratch []delivery
	waker   sim.Waker
	outbox  []outSend

	pool      coherence.MsgPool
	delayHook func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle

	msgsSent     stats.Counter
	flitsSent    stats.Counter
	flitsByClass [2]stats.Counter

	// Observability (zero when disabled): the shard queue's high-water
	// mark and the shard-local flow counter. Shard s numbers its flows
	// in the (s+1)<<48 namespace so ids never collide across domains.
	qMax    int
	flowSeq uint64
}

// outSend is a cross-router send awaiting its barrier replay.
type outSend struct {
	key dkey
	now sim.Cycle // send cycle (the replayed link walk's "now")
	m   *coherence.Msg
	fid uint64 // timeline flow id (0 when no timeline is armed)
}

// SetShards switches the network into sharded-delivery mode. Call after
// New and before the protocol builds its controllers (MsgPoolFor routes
// by plan) and before any Send.
func (n *Network) SetShards(plan ShardPlan) {
	if plan.NumShards <= 1 {
		panic("mesh: SetShards needs at least two shards")
	}
	if len(plan.ShardOfRouter) != n.rows*n.cols {
		panic(fmt.Sprintf("mesh: shard plan covers %d routers, mesh has %d",
			len(plan.ShardOfRouter), n.rows*n.cols))
	}
	p := plan
	n.plan = &p
	n.shards = make([]*netShard, plan.NumShards)
	n.mergeIdx = make([]int, plan.NumShards)
	for i := range n.shards {
		sh := &netShard{n: n, id: i}
		sh.msgsSent.SetName("mesh.msgs_sent")
		sh.flitsSent.SetName("mesh.flits_sent")
		sh.flitsByClass[0].SetName("mesh.flits_control")
		sh.flitsByClass[1].SetName("mesh.flits_data")
		n.shards[i] = sh
	}
}

// Sharded reports whether the network runs sharded delivery domains.
func (n *Network) Sharded() bool { return n.plan != nil }

// ShardTicker returns the delivery-domain component to register (first)
// in the given shard's engine.
func (n *Network) ShardTicker(shard int) interface {
	sim.Ticker
	sim.WakeHinter
	sim.WakeSink
	sim.Labeled
	sim.Debugger
} {
	return n.shards[shard]
}

// ShardPending reports undelivered messages owned by one shard: queued
// deliveries plus outbox entries not yet merged (counted at the sender
// so a quiescing shard with in-flight output never reports done).
func (n *Network) ShardPending(shard int) int {
	sh := n.shards[shard]
	return sh.q.pending + len(sh.outbox)
}

// SetShardDelayHook installs a fault-delay domain for one shard's
// co-located deliveries; SetMergeDelayHook installs the domain the
// barrier replay applies to cross-router deliveries. Mesh fault
// decisions are per-(src,dst)-pair functions and every pair is routed
// to exactly one domain (co-located pairs to their tile's shard,
// cross-router pairs to the merge), so the split decision streams are
// identical to a serial run's single stream.
func (n *Network) SetShardDelayHook(shard int, h func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle) {
	n.shards[shard].delayHook = h
}

// SetMergeDelayHook installs the cross-router fault-delay domain (see
// SetShardDelayHook).
func (n *Network) SetMergeDelayHook(h func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle) {
	n.mergeDelay = h
}

// sendSharded is Send's sharded-mode body, running on the sending
// shard's goroutine. The sending shard is always the shard owning
// m.Src's router: controllers only send during their own dispatch.
func (n *Network) sendSharded(now sim.Cycle, m *coherence.Msg, src, dst attachment) {
	s := n.plan.ShardOfRouter[src.router]
	sh := n.shards[s]
	flits := m.Type.Flits()
	sh.msgsSent.Inc()
	sh.flitsSent.Add(int64(flits))
	if m.Type.CarriesData() {
		sh.flitsByClass[1].Add(int64(flits))
	} else {
		sh.flitsByClass[0].Add(int64(flits))
	}
	key := dkey{cyc: now, pos: int32(n.plan.DispatchPos(s)), seq: sh.seq}
	sh.seq++
	var fid uint64
	if n.tl != nil {
		sh.flowSeq++
		fid = uint64(sh.id+1)<<48 | sh.flowSeq
		n.tl.FlowStart(fid, obs.PidMesh, src.router, m.Type.String(), int64(now))
	}

	if src.router == dst.router {
		// Co-located endpoints stay entirely inside the shard: no link
		// state is touched and the sender's own domain delivers.
		at := now + n.cfg.LocalDelay
		if sh.delayHook != nil {
			at = n.applyDelay(sh.delayHook, now, at, m, src.router)
		}
		sh.schedule(now, delivery{at: at, key: key, msg: m, dst: dst.ep, fid: fid})
		return
	}
	// Cross-router sends reserve global link state, which has zero
	// lookahead (reservations take effect at the send cycle), so the
	// walk is deferred to the barrier and replayed there in key order —
	// reproducing the serial engine's reservation sequence exactly.
	sh.outbox = append(sh.outbox, outSend{key: key, now: now, m: m, fid: fid})
}

// schedule inserts a delivery into this shard's queue and self-wakes at
// the deadline (the shard-local analogue of Network.schedule). floor is
// a cycle known to precede every delivery still to be scheduled — the
// send cycle for shard-local sends, the last window cycle for barrier
// merges (deliveries land in key order, not time order, so anchoring an
// idle queue at the current delivery's own cycle could strand a
// later-keyed, earlier-due one behind the base).
func (sh *netShard) schedule(floor sim.Cycle, d delivery) {
	if sh.q.pending == 0 && floor > sh.q.base {
		sh.q.base = floor
	}
	sh.q.schedule(d)
	if sh.n.metricsOn && sh.q.pending > sh.qMax {
		sh.qMax = sh.q.pending
	}
	sh.waker.WakeAt(d.at)
}

// MergeEpoch replays every shard's buffered cross-router sends in merge
// key order — the serial engine's send order — walking links, applying
// the cross-router fault domain, and scheduling each delivery into the
// destination shard's queue. Called single-threaded at the epoch
// barrier; the conservative lookahead guarantees every computed
// delivery cycle lies at or beyond windowEnd (the epoch's exclusive
// upper bound, which is also the earliest cycle any shard can dispatch
// next). It returns one bool per shard marking which received
// deliveries (the engine clears those shards' quiescence episodes). The
// returned slice is reused across calls.
func (n *Network) MergeEpoch(windowEnd sim.Cycle) []bool {
	touched := n.mergeTouched
	if touched == nil {
		touched = make([]bool, len(n.shards))
		n.mergeTouched = touched
	}
	for i := range touched {
		touched[i] = false
	}
	idx := n.mergeIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		for s, sh := range n.shards {
			if idx[s] >= len(sh.outbox) {
				continue
			}
			if best < 0 || sh.outbox[idx[s]].key.less(n.shards[best].outbox[idx[best]].key) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		os := &n.shards[best].outbox[idx[best]]
		idx[best]++
		m := os.m
		src, dst := n.node(m.Src), n.node(m.Dst)
		at := n.walkLinks(os.now, m.Type.Flits(), src.router, dst.router)
		if n.mergeDelay != nil {
			at = n.applyDelay(n.mergeDelay, os.now, at, m, src.router)
		}
		ds := n.plan.ShardOfRouter[dst.router]
		n.shards[ds].schedule(windowEnd-1, delivery{at: at, key: os.key, msg: m, dst: dst.ep, fid: os.fid})
		touched[ds] = true
		*os = outSend{}
	}
	for _, sh := range n.shards {
		sh.outbox = sh.outbox[:0]
	}
	return touched
}

// BindWaker implements sim.WakeSink for the shard's delivery domain.
func (sh *netShard) BindWaker(w sim.Waker) { sh.waker = w }

// Tick delivers all of this shard's messages due at cycle now, in
// serial send order.
func (sh *netShard) Tick(now sim.Cycle) {
	if sh.q.pending == 0 {
		sh.q.base = now
		return
	}
	due := sh.q.pop(now, sh.scratch)
	sh.scratch = due[:0]
	for i := range due {
		if due[i].fid != 0 {
			// Emit the arrival before Deliver: the endpoint may consume
			// and recycle the message.
			m := due[i].msg
			sh.n.tl.FlowEnd(due[i].fid, obs.PidMesh, sh.n.node(m.Dst).router, m.Type.String(), int64(now))
		}
		due[i].dst.Deliver(now, due[i].msg)
	}
}

// NextWake implements sim.WakeHinter: the earliest pending delivery.
func (sh *netShard) NextWake(now sim.Cycle) sim.Cycle {
	if at, ok := sh.q.earliestDeadline(); ok {
		return at
	}
	return sim.WakeNever
}

// ComponentLabel implements sim.Labeled (forensic reports).
func (sh *netShard) ComponentLabel() string {
	return fmt.Sprintf("mesh shard %d (%dx%d)", sh.id, sh.n.rows, sh.n.cols)
}

// Debug implements sim.Debugger.
func (sh *netShard) Debug() string {
	s := fmt.Sprintf("mesh shard %d: %d pending deliveries, %d unmerged sends",
		sh.id, sh.q.pending, len(sh.outbox))
	if at, ok := sh.q.earliestDeadline(); ok {
		s += fmt.Sprintf(", earliest due cycle %d", at)
	}
	return s
}
