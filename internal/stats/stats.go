// Package stats provides counters, latency accumulators and the text
// rendering helpers used to regenerate the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n    int64
	name string
}

// SetName labels the counter so a misuse panic can identify it. The
// label is diagnostic-only: unnamed counters behave identically.
func (c *Counter) SetName(name string) { c.name = name }

// Name reports the counter's label ("" if unnamed).
func (c *Counter) Name() string { return c.name }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		name := c.name
		if name == "" {
			name = "<unnamed>"
		}
		panic(fmt.Sprintf("stats: negative delta %d on counter %q (value %d)", delta, name, c.n))
	}
	c.n += delta
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Latency accumulates sample latencies and reports summary statistics.
type Latency struct {
	count int64
	sum   int64
	min   int64
	max   int64
}

// Observe records one latency sample.
func (l *Latency) Observe(v int64) {
	if l.count == 0 || v < l.min {
		l.min = v
	}
	if l.count == 0 || v > l.max {
		l.max = v
	}
	l.count++
	l.sum += v
}

// Count reports the number of samples.
func (l *Latency) Count() int64 { return l.count }

// Sum reports the total of all samples.
func (l *Latency) Sum() int64 { return l.sum }

// Mean reports the average sample, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return float64(l.sum) / float64(l.count)
}

// Min reports the smallest sample, or 0 with no samples.
func (l *Latency) Min() int64 { return l.min }

// Max reports the largest sample.
func (l *Latency) Max() int64 { return l.max }

// Geomean returns the geometric mean of xs, ignoring non-positive values.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Amean returns the arithmetic mean of xs, or 0 for empty input.
func Amean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table renders aligned rows of labelled numeric columns, in the style of
// the paper's figures rendered as text.
type Table struct {
	Title   string
	Columns []string
	rows    []row
}

type row struct {
	label string
	cells []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(label string, cells ...string) {
	t.rows = append(t.rows, row{label: label, cells: cells})
}

// AddFloats appends a row formatting each value with the given precision.
func (t *Table) AddFloats(label string, prec int, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf("%.*f", prec, v)
	}
	t.AddRow(label, cells...)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("benchmark")
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r.cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[i+1], c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.label)
		for i, c := range r.cells {
			w := 0
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			fmt.Fprintf(&b, "  %*s", w, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed map; used to make
// map iteration deterministic in reports.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
