package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("value = %d, want 42", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on negative Add")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value = %T, want string", r)
		}
		for _, want := range []string{"core0.loads", "-1", "7"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic message %q missing %q", msg, want)
			}
		}
	}()
	var c Counter
	c.SetName("core0.loads")
	c.Add(7)
	c.Add(-1)
}

func TestLatency(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, v := range []int64{10, 20, 30} {
		l.Observe(v)
	}
	if l.Count() != 3 || l.Sum() != 60 {
		t.Fatalf("count=%d sum=%d", l.Count(), l.Sum())
	}
	if l.Mean() != 20 {
		t.Fatalf("mean = %v, want 20", l.Mean())
	}
	if l.Min() != 10 || l.Max() != 30 {
		t.Fatalf("min=%d max=%d", l.Min(), l.Max())
	}
}

func TestLatencyMinMaxProperty(t *testing.T) {
	check := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		var l Latency
		min, max := vals[0], vals[0]
		for _, v := range vals {
			l.Observe(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return l.Min() == min && l.Max() == max && l.Count() == int64(len(vals))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("geomean of empty should be 0")
	}
	// Non-positive values are ignored.
	if g := Geomean([]float64{-1, 0, 2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean ignoring non-positives = %v, want 4", g)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v%100) + 1
			scaled[i] = xs[i] * 3
		}
		return math.Abs(Geomean(scaled)-3*Geomean(xs)) < 1e-9*Geomean(scaled)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAmean(t *testing.T) {
	if Amean(nil) != 0 {
		t.Fatal("amean of empty should be 0")
	}
	if got := Amean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("amean = %v, want 2", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "colA", "colB")
	tb.AddRow("first", "1", "2")
	tb.AddFloats("second", 2, 1.5, 2.25)
	out := tb.String()
	for _, want := range []string{"== Demo ==", "colA", "colB", "first", "second", "1.50", "2.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow("a-very-long-label", "1")
	tb.AddRow("x", "100000")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
