package check

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Report is the structured forensic dump emitted when a run fails to
// make progress (deadlock, cycle limit) or a component panics. All
// failure paths — the engine watchdog, recovered panics, oracle
// violations — render through the same format so a failing sweep
// always reads the same way.
type Report struct {
	Reason string    // "deadlock", "cycle limit", "panic"
	Cycle  sim.Cycle // cycle at which the run stopped

	// Components is the engine snapshot: per-component due cycles,
	// completion state, and each component's own Debug dump (in-flight
	// TxTable entries, timer queues, core state).
	Components []sim.PendingComponent

	// MeshPending counts undelivered mesh messages; PoolGets/PoolLive
	// are message-pool traffic and leak indicators.
	MeshPending int
	PoolGets    int64
	PoolLive    int64

	// PanicValue and Stack are set when a component panic was recovered
	// at the harness boundary.
	PanicValue any
	Stack      string

	// Oracle carries invariant-checker violations observed before the
	// failure, if checks were enabled.
	Oracle error

	// TxTables holds each directory tile's transaction-table dump
	// (coherence.TxDebugger), so a stuck transaction is visible in the
	// report without re-running under -tags txdebug.
	TxTables []string
}

// String renders the dump. Quiescent, completed components are
// summarized in one line; stalled or stateful ones get their detail.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== forensic report: %s at cycle %d ===\n", r.Reason, r.Cycle)
	if r.PanicValue != nil {
		fmt.Fprintf(&b, "panic: %v\n", r.PanicValue)
	}
	fmt.Fprintf(&b, "mesh: %d queued deliveries; pool: %d gets, %d live\n",
		r.MeshPending, r.PoolGets, r.PoolLive)
	if r.Oracle != nil {
		fmt.Fprintf(&b, "oracle: %v\n", r.Oracle)
	}
	quiet := 0
	for _, c := range r.Components {
		if c.Done && c.Detail == "" && c.Due == sim.WakeNever {
			quiet++
			continue
		}
		state := "done"
		if !c.Done {
			state = "PENDING"
		}
		due := "never"
		if c.Due != sim.WakeNever {
			due = fmt.Sprintf("%d", c.Due)
		}
		fmt.Fprintf(&b, "  [%d] %s due=%s %s", c.Index, c.Label, due, state)
		if c.Detail != "" {
			fmt.Fprintf(&b, " | %s", c.Detail)
		}
		b.WriteByte('\n')
	}
	if quiet > 0 {
		fmt.Fprintf(&b, "  (%d quiescent completed components omitted)\n", quiet)
	}
	if len(r.TxTables) > 0 {
		b.WriteString("tx tables:\n")
		for _, s := range r.TxTables {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	if r.Stack != "" {
		fmt.Fprintf(&b, "stack:\n%s\n", r.Stack)
	}
	b.WriteString("=== end forensic report ===")
	return b.String()
}
