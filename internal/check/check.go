// Package check provides runtime invariant oracles for the simulator:
// decorators and observers that catch coherence/consistency violations
// at the cycle they occur, instead of leaving them to surface as a
// diverged end-state fingerprint thousands of cycles later.
//
// Three oracle families run behind a per-core port decorator (Tracker):
//
//   - SWMR: after every committed store/RMW the checker snoops every
//     L1; at most one may hold the block in an authoritative (E/M)
//     state. (Shared copies are allowed arbitrarily — TSO-CC
//     deliberately keeps stale shared lines.)
//   - Data-value: every load must return a value that was actually
//     written to that address (or its lazily-learned initial value) —
//     the protocol may serve stale data, but never invented data.
//     Per-(core,addr) reads must additionally not regress: once a core
//     has observed a write, later loads must not return values
//     committed long before it (see skewWindow for the tolerance).
//   - TSO ordering: the port admission discipline of a TSO front end —
//     at most one blocking op (load/RMW/fence) outstanding per core,
//     no overlapping stores, atomics and fences only admitted with an
//     empty write buffer.
//
// Violations are recorded, not panicked: a broken protocol still runs
// to completion (or deadlock) deterministically, and the harness
// surfaces Err() after the run. The tracker observes committed writes
// in completion-callback order, which under message-delay injection may
// differ slightly from the directory's serialization order; ordering
// oracles therefore tolerate a bounded commit-time skew rather than
// demanding exact sequence agreement (a real regression in a broken
// protocol is unboundedly stale and still trips the oracle).
package check

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// skewWindow is the commit-time tolerance (in cycles) of the per-core
// read-regression oracle. Two writes' completion callbacks can fire in
// the opposite order of their directory serialization when their acks
// travel different mesh paths; the skew is bounded by a message
// round-trip (tens of cycles, even with injected delay), far below
// this window. A genuine stale-read bug (a line that self-invalidation
// should have refreshed) regresses by arbitrarily more.
const skewWindow = 512

// maxViolations bounds the recorded violation list; later violations
// only bump the counter.
const maxViolations = 32

// Violation is one oracle failure. Core is the reporting node's index:
// a core for the port oracles, a controller/tile index for the
// "legality" and "txlife" oracles.
type Violation struct {
	Cycle sim.Cycle
	Core  int
	Kind  string // "swmr", "value", "stale", "order", "legality", "txlife"
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d core %d [%s]: %s", v.Cycle, v.Core, v.Kind, v.Msg)
}

// writeRec is one committed write in completion order.
type writeRec struct {
	seq   uint64
	val   uint64
	cycle sim.Cycle
	core  int
}

// addrState is the oracle's view of one word address.
type addrState struct {
	hist      []writeRec // committed writes, completion-callback order
	pending   []uint64   // admitted, not yet committed values (multiset)
	init      uint64     // lazily learned pre-run value
	initKnown bool
}

// floor is the newest write a core has provably observed at an address.
type floor struct {
	seq   uint64
	cycle sim.Cycle
}

// Tracker is the shared oracle state for one machine. It is
// single-goroutine like the simulator. Wrap every core's port with
// WrapPort; the tracker then observes all admissions and completions.
type Tracker struct {
	l1s []coherence.Controller
	now func() sim.Cycle

	seq     uint64
	addrs   map[uint64]*addrState
	nViol   int
	viols   []Violation
	scratch []int // SWMR scan scratch: authoritative holders
}

// New builds a tracker. l1s are snooped for the SWMR oracle (pass every
// L1 controller); now reports the current cycle (completion callbacks
// carry no cycle argument).
func New(l1s []coherence.Controller, now func() sim.Cycle) *Tracker {
	return &Tracker{
		l1s:   l1s,
		now:   now,
		addrs: make(map[uint64]*addrState),
	}
}

// Violations returns the recorded violations (capped) and the total
// count, which may exceed the returned slice.
func (t *Tracker) Violations() ([]Violation, int) { return t.viols, t.nViol }

// Err summarizes recorded violations as an error, nil if none.
func (t *Tracker) Err() error {
	if t.nViol == 0 {
		return nil
	}
	s := fmt.Sprintf("check: %d invariant violation(s)", t.nViol)
	for _, v := range t.viols {
		s += "\n  " + v.String()
	}
	if t.nViol > len(t.viols) {
		s += fmt.Sprintf("\n  ... %d more", t.nViol-len(t.viols))
	}
	return fmt.Errorf("%s", s)
}

func (t *Tracker) violate(core int, kind, format string, args ...any) {
	t.nViol++
	if len(t.viols) < maxViolations {
		t.viols = append(t.viols, Violation{
			Cycle: t.now(),
			Core:  core,
			Kind:  kind,
			Msg:   fmt.Sprintf(format, args...),
		})
	}
}

func (t *Tracker) state(addr uint64) *addrState {
	a, ok := t.addrs[addr]
	if !ok {
		a = &addrState{}
		t.addrs[addr] = a
	}
	return a
}

func removeOne(s []uint64, v uint64) []uint64 {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// admit records a store admission (value enters the pending set).
func (t *Tracker) admit(addr, val uint64) {
	a := t.state(addr)
	a.pending = append(a.pending, val)
}

// commit records a completed write and runs the SWMR scan.
func (t *Tracker) commit(p *Port, addr, val uint64) {
	a := t.state(addr)
	a.pending = removeOne(a.pending, val)
	t.seq++
	a.hist = append(a.hist, writeRec{seq: t.seq, val: val, cycle: t.now(), core: p.core})
	// The writer has observed its own write.
	p.floors[addr] = floor{seq: t.seq, cycle: t.now()}

	// SWMR: at most one L1 may hold the block authoritatively (E/M).
	block := coherence.BlockAddr(addr)
	t.scratch = t.scratch[:0]
	for i, l1 := range t.l1s {
		if _, ok := l1.SnoopBlock(block); ok {
			t.scratch = append(t.scratch, i)
		}
	}
	if len(t.scratch) > 1 {
		t.violate(p.core, "swmr",
			"block %#x held authoritatively by %d L1s %v after write of %#x",
			block, len(t.scratch), t.scratch, val)
	}
}

// observe checks a load (or RMW-read) result against the legal value
// set and advances the core's per-address floor.
func (t *Tracker) observe(p *Port, addr, val uint64) {
	a := t.state(addr)
	if !a.initKnown && len(a.hist) == 0 && !contains(a.pending, val) {
		// First observation of an untouched address defines its initial
		// value; later reads hold each other to it.
		a.init = val
		a.initKnown = true
		return
	}
	inPending := contains(a.pending, val)
	best := writeRec{} // zero seq = "only the initial value matches"
	found := false
	for i := len(a.hist) - 1; i >= 0; i-- {
		if a.hist[i].val == val {
			best = a.hist[i]
			found = true
			break // hist is seq-ordered; first hit from the back is max
		}
	}
	isInit := a.initKnown && val == a.init
	if !found && !isInit && !inPending {
		t.violate(p.core, "value",
			"load of %#x returned %#x, never written there (writes seen: %d, pending: %d)",
			addr, val, len(a.hist), len(a.pending))
		return
	}
	fl := p.floors[addr]
	switch {
	case inPending && !found && !isInit:
		// Only an in-flight write matches: its commit record does not
		// exist yet, so the floor neither advances nor regresses.
	case found && best.seq >= fl.seq:
		p.floors[addr] = floor{seq: best.seq, cycle: best.cycle}
	case inPending:
		// An older committed copy matches, but so does an in-flight
		// write; give the read the benefit of the doubt.
	case found && fl.cycle-best.cycle <= skewWindow:
		// Apparent regression within commit-order skew tolerance.
	case found:
		t.violate(p.core, "stale",
			"load of %#x returned %#x (write seq %d, cycle %d) after core observed seq %d (cycle %d)",
			addr, val, best.seq, best.cycle, fl.seq, fl.cycle)
	case isInit && fl.seq > 0 && fl.cycle+skewWindow < t.now():
		t.violate(p.core, "stale",
			"load of %#x returned initial value %#x after core observed write seq %d (cycle %d)",
			addr, val, fl.seq, fl.cycle)
	}
}

// LegalitySink builds a transition sink for one controller that
// validates every reported state hop against the protocol's registered
// legality table (see coherence.TransitionReporter). node identifies
// the controller in violation records (core index for L1s, tile index
// for L2s); level labels the message ("L1"/"L2"). The sink runs
// continuously — an illegal hop is recorded the cycle it happens, with
// the protocol's own state names.
func (t *Tracker) LegalitySink(node int, level string, tbl *coherence.StateTable) func(addr uint64, from, to int) {
	return func(addr uint64, from, to int) {
		if !tbl.Legal(from, to) {
			t.violate(node, "legality", "%s line %#x took illegal transition %s -> %s",
				level, addr, tbl.Name(from), tbl.Name(to))
		}
	}
}

// TxLifeSink builds a report function for one directory tile's TxTable
// lifecycle audit (see coherence.TxAuditor): double registrations,
// unregistered retirements, and transactions outstanding past the audit
// age all land here as "txlife" violations instead of only surfacing in
// an end-of-run leak count.
func (t *Tracker) TxLifeSink(tile int) func(string) {
	return func(msg string) { t.violate(tile, "txlife", "%s", msg) }
}

// Port is the per-core oracle decorator. It implements
// coherence.CorePort and must be the outermost wrapper (it observes
// what the core actually sees, including injected faults below it).
type Port struct {
	t     *Tracker
	core  int
	inner coherence.CorePort

	floors map[uint64]floor

	blocked  bool // a load/RMW/fence is outstanding
	storeOut int  // admitted stores whose callbacks are pending

	rmwVal     uint64 // scratch: value the in-flight RMW will write
	rmwApplied bool
}

// WrapPort decorates a core's port with the oracles.
func (t *Tracker) WrapPort(core int, inner coherence.CorePort) *Port {
	return &Port{t: t, core: core, inner: inner, floors: make(map[uint64]floor)}
}

// Admission bookkeeping pattern: oracle state is set before the inner
// call and rolled back on decline, so a completion callback that fires
// during the inner call (however unlikely) still observes consistent
// state.

// Load implements coherence.CorePort.
func (p *Port) Load(now sim.Cycle, addr uint64, cb func(val uint64)) bool {
	wasBlocked := p.blocked
	p.blocked = true
	ok := p.inner.Load(now, addr, func(val uint64) {
		p.blocked = false
		p.t.observe(p, addr, val)
		cb(val)
	})
	if !ok {
		p.blocked = wasBlocked
		return false
	}
	if wasBlocked {
		p.t.violate(p.core, "order", "load of %#x admitted while another blocking op is outstanding", addr)
	}
	return true
}

// Store implements coherence.CorePort.
func (p *Port) Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool {
	wasOut := p.storeOut
	p.storeOut++
	p.t.admit(addr, val)
	ok := p.inner.Store(now, addr, val, func() {
		p.storeOut--
		p.t.commit(p, addr, val)
		cb()
	})
	if !ok {
		p.storeOut--
		a := p.t.state(addr)
		a.pending = removeOne(a.pending, val)
		return false
	}
	if wasOut > 0 {
		p.t.violate(p.core, "order", "store to %#x admitted while an older store is in flight", addr)
	}
	return true
}

// RMW implements coherence.CorePort. The modify function is wrapped so
// the oracle sees the read value at application time and learns the
// written value.
func (p *Port) RMW(now sim.Cycle, addr uint64, f func(old uint64) (uint64, bool), cb func(old uint64)) bool {
	wasBlocked := p.blocked
	p.blocked = true
	p.rmwApplied = false
	ok := p.inner.RMW(now, addr, func(old uint64) (uint64, bool) {
		nv, applied := f(old)
		p.t.observe(p, addr, old)
		if applied {
			p.t.admit(addr, nv)
			p.rmwVal, p.rmwApplied = nv, true
		}
		return nv, applied
	}, func(old uint64) {
		p.blocked = false
		if p.rmwApplied {
			p.t.commit(p, addr, p.rmwVal)
			p.rmwApplied = false
		}
		cb(old)
	})
	if !ok {
		p.blocked = wasBlocked
		return false
	}
	if wasBlocked {
		p.t.violate(p.core, "order", "RMW of %#x admitted while another blocking op is outstanding", addr)
	}
	if p.storeOut > 0 {
		p.t.violate(p.core, "order", "RMW of %#x admitted with a store in flight (write buffer not drained)", addr)
	}
	return true
}

// Fence implements coherence.CorePort.
func (p *Port) Fence(now sim.Cycle, cb func()) bool {
	wasBlocked := p.blocked
	p.blocked = true
	ok := p.inner.Fence(now, func() {
		p.blocked = false
		cb()
	})
	if !ok {
		p.blocked = wasBlocked
		return false
	}
	if wasBlocked {
		p.t.violate(p.core, "order", "fence admitted while another blocking op is outstanding")
	}
	if p.storeOut > 0 {
		p.t.violate(p.core, "order", "fence admitted with a store in flight (write buffer not drained)")
	}
	return true
}
