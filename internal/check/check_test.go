package check

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// memPort is a trivially correct synchronous CorePort over a flat word
// map: every op completes inside the call.
type memPort struct {
	mem map[uint64]uint64
}

func (m *memPort) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	cb(m.mem[addr])
	return true
}
func (m *memPort) Store(now sim.Cycle, addr, val uint64, cb func()) bool {
	m.mem[addr] = val
	cb()
	return true
}
func (m *memPort) RMW(now sim.Cycle, addr uint64, f func(uint64) (uint64, bool), cb func(uint64)) bool {
	old := m.mem[addr]
	if nv, ok := f(old); ok {
		m.mem[addr] = nv
	}
	cb(old)
	return true
}
func (m *memPort) Fence(now sim.Cycle, cb func()) bool {
	cb()
	return true
}

// lyingPort returns a constant bogus value for every load.
type lyingPort struct{ memPort }

func (l *lyingPort) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	cb(0xBAD)
	return true
}

// fakeL1 is a Controller stub whose SnoopBlock authority is test-set.
type fakeL1 struct {
	owns map[uint64]bool
}

func (f *fakeL1) Deliver(now sim.Cycle, m *coherence.Msg) {}
func (f *fakeL1) Tick(now sim.Cycle)                      {}
func (f *fakeL1) NextWake(now sim.Cycle) sim.Cycle        { return sim.WakeNever }
func (f *fakeL1) BindWaker(w sim.Waker)                   {}
func (f *fakeL1) Busy() bool                              { return false }
func (f *fakeL1) SnoopBlock(addr uint64) ([]byte, bool)   { return nil, f.owns[addr] }

type clock struct{ c sim.Cycle }

func (c *clock) now() sim.Cycle { return c.c }

func newTracker(l1s ...coherence.Controller) (*Tracker, *clock) {
	ck := &clock{}
	return New(l1s, ck.now), ck
}

func TestCleanRunNoViolations(t *testing.T) {
	tr, ck := newTracker(&fakeL1{})
	p := tr.WrapPort(0, &memPort{mem: map[uint64]uint64{}})
	for i := 0; i < 10; i++ {
		ck.c++
		if !p.Store(ck.c, 8, uint64(i), func() {}) {
			t.Fatal("store declined")
		}
		ck.c++
		var got uint64
		p.Load(ck.c, 8, func(v uint64) { got = v })
		if got != uint64(i) {
			t.Fatalf("load = %d, want %d", got, i)
		}
	}
	ck.c++
	p.RMW(ck.c, 8, func(old uint64) (uint64, bool) { return old + 1, true }, func(uint64) {})
	p.Fence(ck.c, func() {})
	if err := tr.Err(); err != nil {
		t.Fatalf("clean run tripped oracles: %v", err)
	}
}

func TestValueViolation(t *testing.T) {
	tr, ck := newTracker(&fakeL1{})
	lp := &lyingPort{memPort{mem: map[uint64]uint64{}}}
	p := tr.WrapPort(1, lp)
	// Establish the address (initial value learned from the underlying
	// correct store path), then read the lie.
	ck.c = 1
	p.Store(ck.c, 16, 7, func() {})
	ck.c = 2
	p.Load(ck.c, 16, func(uint64) {})
	vs, n := tr.Violations()
	if n == 0 {
		t.Fatal("invented value not caught")
	}
	if vs[0].Kind != "value" || vs[0].Core != 1 {
		t.Fatalf("violation = %+v, want kind=value core=1", vs[0])
	}
	if !strings.Contains(tr.Err().Error(), "0xbad") {
		t.Fatalf("error should carry the bogus value: %v", tr.Err())
	}
}

func TestSWMRViolation(t *testing.T) {
	a := &fakeL1{owns: map[uint64]bool{}}
	b := &fakeL1{owns: map[uint64]bool{}}
	tr, ck := newTracker(a, b)
	p := tr.WrapPort(0, &memPort{mem: map[uint64]uint64{}})
	block := coherence.BlockAddr(64)
	a.owns[block] = true
	b.owns[block] = true
	ck.c = 5
	p.Store(ck.c, 64, 1, func() {})
	vs, n := tr.Violations()
	if n != 1 || vs[0].Kind != "swmr" {
		t.Fatalf("violations = %v (n=%d), want one swmr", vs, n)
	}
	if !strings.Contains(vs[0].Msg, "2 L1s") {
		t.Fatalf("message should count holders: %q", vs[0].Msg)
	}
}

// stallPort defers completion callbacks so ordering violations can be
// provoked from the outside.
type stallPort struct {
	loadCb func(uint64)
}

func (s *stallPort) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	s.loadCb = cb
	return true
}
func (s *stallPort) Store(now sim.Cycle, addr, val uint64, cb func()) bool { return true }
func (s *stallPort) RMW(now sim.Cycle, addr uint64, f func(uint64) (uint64, bool), cb func(uint64)) bool {
	return true
}
func (s *stallPort) Fence(now sim.Cycle, cb func()) bool { return true }

func TestOrderViolationOverlappingLoads(t *testing.T) {
	tr, ck := newTracker(&fakeL1{})
	sp := &stallPort{}
	p := tr.WrapPort(0, sp)
	ck.c = 1
	p.Load(ck.c, 8, func(uint64) {})
	// A second blocking op admitted before the first completes is a TSO
	// front-end bug.
	p.Load(ck.c, 16, func(uint64) {})
	vs, n := tr.Violations()
	if n != 1 || vs[0].Kind != "order" {
		t.Fatalf("violations = %v (n=%d), want one order", vs, n)
	}
	// Completion clears the blocked state for later ops.
	sp.loadCb(0)
}

func TestDeclineRollsBackOracleState(t *testing.T) {
	tr, ck := newTracker(&fakeL1{})
	decline := &decliningPort{}
	p := tr.WrapPort(0, decline)
	ck.c = 1
	if p.Load(ck.c, 8, func(uint64) {}) {
		t.Fatal("decliningPort accepted")
	}
	if p.Store(ck.c, 8, 1, func() {}) {
		t.Fatal("decliningPort accepted")
	}
	// After declines, a correct port must be admissible with no
	// violations and no leaked pending values.
	mp := tr.WrapPort(1, &memPort{mem: map[uint64]uint64{}})
	mp.Store(ck.c, 8, 2, func() {})
	mp.Load(ck.c, 8, func(uint64) {})
	if err := tr.Err(); err != nil {
		t.Fatalf("decline left stale oracle state: %v", err)
	}
	if st := tr.state(8); len(st.pending) != 0 {
		t.Fatalf("pending not rolled back: %v", st.pending)
	}
}

type decliningPort struct{}

func (d *decliningPort) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool { return false }
func (d *decliningPort) Store(now sim.Cycle, addr, val uint64, cb func()) bool { return false }
func (d *decliningPort) RMW(now sim.Cycle, addr uint64, f func(uint64) (uint64, bool), cb func(uint64)) bool {
	return false
}
func (d *decliningPort) Fence(now sim.Cycle, cb func()) bool { return false }

// stalePort serves the initial value forever, ignoring stores.
type stalePort struct{}

func (s *stalePort) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	cb(0)
	return true
}
func (s *stalePort) Store(now sim.Cycle, addr, val uint64, cb func()) bool {
	cb()
	return true
}
func (s *stalePort) RMW(now sim.Cycle, addr uint64, f func(uint64) (uint64, bool), cb func(uint64)) bool {
	f(0)
	cb(0)
	return true
}
func (s *stalePort) Fence(now sim.Cycle, cb func()) bool {
	cb()
	return true
}

func TestStaleReadBeyondSkewWindow(t *testing.T) {
	tr, ck := newTracker(&fakeL1{})
	p := tr.WrapPort(0, &stalePort{})
	// Learn the initial value 0, then commit a write the core itself
	// observes (the writer's floor advances at commit).
	ck.c = 1
	p.Load(ck.c, 8, func(uint64) {})
	ck.c = 2
	p.Store(ck.c, 8, 42, func() {})
	// Within the skew window the stale initial value is tolerated...
	ck.c = 3
	p.Load(ck.c, 8, func(uint64) {})
	if err := tr.Err(); err != nil {
		t.Fatalf("skew tolerance failed: %v", err)
	}
	// ...but far beyond it the regression is a real staleness bug.
	ck.c = 2 + skewWindow + 10
	p.Load(ck.c, 8, func(uint64) {})
	vs, n := tr.Violations()
	if n != 1 || vs[0].Kind != "stale" {
		t.Fatalf("violations = %v (n=%d), want one stale", vs, n)
	}
}

func TestViolationCap(t *testing.T) {
	tr, ck := newTracker(&fakeL1{})
	lp := &lyingPort{memPort{mem: map[uint64]uint64{}}}
	p := tr.WrapPort(0, lp)
	ck.c = 1
	p.Store(ck.c, 8, 1, func() {})
	for i := 0; i < maxViolations+10; i++ {
		ck.c++
		p.Load(ck.c, 8, func(uint64) {})
	}
	vs, n := tr.Violations()
	if len(vs) != maxViolations {
		t.Fatalf("recorded %d, want cap %d", len(vs), maxViolations)
	}
	if n != maxViolations+10 {
		t.Fatalf("count = %d, want %d", n, maxViolations+10)
	}
	if !strings.Contains(tr.Err().Error(), "more") {
		t.Fatalf("error should note the overflow: %v", tr.Err())
	}
}

func TestReportString(t *testing.T) {
	r := &Report{
		Reason:      "deadlock",
		Cycle:       1234,
		MeshPending: 3,
		PoolGets:    100,
		PoolLive:    2,
		Components: []sim.PendingComponent{
			{Index: 0, Label: "core 0", Due: sim.WakeNever, Done: true},
			{Index: 1, Label: "tsocc L1 1", Due: sim.WakeNever, Done: false,
				Detail: "rd tx pending on 0x40"},
			{Index: 2, Label: "mesh 2x2", Due: 1300, Done: true, Detail: "3 pending"},
		},
		Oracle: nil,
	}
	out := r.String()
	for _, want := range []string{
		"forensic report: deadlock at cycle 1234",
		"mesh: 3 queued deliveries; pool: 100 gets, 2 live",
		"[1] tsocc L1 1 due=never PENDING | rd tx pending on 0x40",
		"[2] mesh 2x2 due=1300 done | 3 pending",
		"(1 quiescent completed components omitted)",
		"=== end forensic report ===",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[0] core 0") {
		t.Fatalf("quiescent component should be summarized, not listed:\n%s", out)
	}
}
