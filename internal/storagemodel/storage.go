// Package storagemodel computes the coherence storage overheads of
// Table 1 and Figure 2: bits per cache line and per node for MESI and
// every TSO-CC configuration, as a function of core count. This is an
// analytical model (as in the paper), independent of the simulator.
package storagemodel

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/stats"
)

// Geometry describes the cache hierarchy being costed (Figure 2 uses
// 32KB L1s and 1MB per L2 tile with as many tiles as cores).
type Geometry struct {
	Cores       int
	L1Bytes     int // per core
	L2TileBytes int // per tile; tiles == cores
	BlockBytes  int
}

// PaperGeometry returns the Figure 2 configuration for n cores.
func PaperGeometry(n int) Geometry {
	return Geometry{Cores: n, L1Bytes: 32 << 10, L2TileBytes: 1 << 20, BlockBytes: 64}
}

func (g Geometry) l1Lines() int     { return g.L1Bytes / g.BlockBytes }
func (g Geometry) l2TileLines() int { return g.L2TileBytes / g.BlockBytes }

// log2ceil returns ceil(log2(n)) with a minimum of 1.
func log2ceil(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Overhead is a storage accounting in bits.
type Overhead struct {
	Protocol    string
	L1PerLine   int // bits per L1 line
	L1PerNode   int // bits per core, excluding per-line
	L2PerLine   int // bits per L2 line
	L2PerTile   int // bits per tile, excluding per-line
	TotalBits   int64
	TotalMiB    float64
	L1TotalBits int64
	L2TotalBits int64
}

func (o *Overhead) finish(g Geometry) {
	o.L1TotalBits = int64(g.Cores) * (int64(o.L1PerLine)*int64(g.l1Lines()) + int64(o.L1PerNode))
	o.L2TotalBits = int64(g.Cores) * (int64(o.L2PerLine)*int64(g.l2TileLines()) + int64(o.L2PerTile))
	o.TotalBits = o.L1TotalBits + o.L2TotalBits
	o.TotalMiB = float64(o.TotalBits) / 8 / (1 << 20)
}

// stateBitsL1 and stateBitsL2 cover the stable-state encodings; both
// protocols need on the order of 2-3 bits per line for states (the paper
// compares the coherence-specific additions, so we charge both equally).
const (
	stateBitsL1 = 2
	stateBitsL2 = 3
)

// MESI computes the full-map directory overhead: a sharing vector of one
// bit per core on every L2 line.
func MESI(g Geometry) Overhead {
	o := Overhead{Protocol: "MESI"}
	o.L1PerLine = stateBitsL1
	o.L2PerLine = stateBitsL2 + g.Cores // full sharing vector
	o.finish(g)
	return o
}

// TSOCC computes Table 1's accounting for a TSO-CC configuration.
func TSOCC(g Geometry, c config.TSOCC) Overhead {
	o := Overhead{Protocol: c.Name()}
	bTS := c.TimestampBits
	if bTS > 31 {
		bTS = 31
	}
	bAcc := c.MaxAccBits
	if c.SharedAlwaysMiss {
		bAcc = 0
	}
	bEpoch := c.EpochBits
	ownerBits := log2ceil(g.Cores)

	// L1 per line: access counter + last-written timestamp (Table 1).
	o.L1PerLine = stateBitsL1 + bAcc + bTS

	// L1 per node: current timestamp, write-group counter, epoch-id,
	// timestamp table over L1 writers, epoch-ids for all L1s; plus the
	// SharedRO tables over L2 tiles.
	perNode := bTS + c.WriteGroupBits + bEpoch
	perNode += g.Cores * bTS    // ts_L1 (full table)
	perNode += g.Cores * bEpoch // epoch_ids_L1
	if c.SharedRO && c.Timestamps() {
		perNode += g.Cores * bTS    // ts_L2 (one entry per tile)
		perNode += g.Cores * bEpoch // epoch_ids_L2
	}
	o.L1PerNode = perNode

	// L2 per line: timestamp + owner/last-writer/sharer-count field.
	o.L2PerLine = stateBitsL2 + bTS + ownerBits

	// L2 per tile: last-seen table and epoch-ids for every L1; plus the
	// SharedRO timestamp source, epoch and the two increment flags.
	perTile := g.Cores*bTS + g.Cores*bEpoch
	if c.SharedRO && c.Timestamps() {
		perTile += bTS + bEpoch + 2
	}
	o.L2PerTile = perTile

	o.finish(g)
	return o
}

// ReductionVsMESI reports the storage saving of o relative to MESI on
// the same geometry, as a fraction (0.38 = 38% smaller).
func ReductionVsMESI(g Geometry, o Overhead) float64 {
	m := MESI(g)
	if m.TotalBits == 0 {
		return 0
	}
	return 1 - float64(o.TotalBits)/float64(m.TotalBits)
}

// Figure2Configs returns the configurations plotted in Figure 2.
func Figure2Configs() []config.TSOCC {
	return []config.TSOCC{config.C12x3(), config.C12x0(), config.C9x3(), config.Basic()}
}

// Figure2 renders the storage-overhead sweep (MiB of coherence state vs
// core count) for MESI and the Figure 2 TSO-CC configurations.
func Figure2(coreCounts []int) *stats.Table {
	cfgs := Figure2Configs()
	cols := []string{"MESI"}
	for _, c := range cfgs {
		cols = append(cols, c.Name())
	}
	t := stats.NewTable("Figure 2: coherence storage overhead (MiB)", cols...)
	for _, n := range coreCounts {
		g := PaperGeometry(n)
		vals := []float64{MESI(g).TotalMiB}
		for _, c := range cfgs {
			vals = append(vals, TSOCC(g, c).TotalMiB)
		}
		t.AddFloats(fmt.Sprintf("%d cores", n), 2, vals...)
	}
	return t
}

// Table1 renders the per-line / per-node bit accounting for one core
// count.
func Table1(n int) *stats.Table {
	g := PaperGeometry(n)
	t := stats.NewTable(
		fmt.Sprintf("Table 1: storage accounting at %d cores (bits)", n),
		"L1/line", "L1/node", "L2/line", "L2/tile", "total MiB", "vs MESI")
	m := MESI(g)
	t.AddRow("MESI",
		fmt.Sprintf("%d", m.L1PerLine), fmt.Sprintf("%d", m.L1PerNode),
		fmt.Sprintf("%d", m.L2PerLine), fmt.Sprintf("%d", m.L2PerTile),
		fmt.Sprintf("%.2f", m.TotalMiB), "-")
	for _, c := range []config.TSOCC{
		config.CCSharedToL2(), config.Basic(), config.C12x3(), config.C12x0(), config.C9x3(),
	} {
		o := TSOCC(g, c)
		t.AddRow(o.Protocol,
			fmt.Sprintf("%d", o.L1PerLine), fmt.Sprintf("%d", o.L1PerNode),
			fmt.Sprintf("%d", o.L2PerLine), fmt.Sprintf("%d", o.L2PerTile),
			fmt.Sprintf("%.2f", o.TotalMiB),
			fmt.Sprintf("-%.0f%%", 100*ReductionVsMESI(g, o)))
	}
	return t
}
