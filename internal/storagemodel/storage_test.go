package storagemodel

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func TestMESIVectorGrowsLinearly(t *testing.T) {
	m32 := MESI(PaperGeometry(32))
	m64 := MESI(PaperGeometry(64))
	// Per-line vector doubles with cores; total grows ~quadratically
	// (cores x per-tile lines x vector width).
	if m64.L2PerLine-m64.L2PerLine/2 < m32.L2PerLine/2 {
		t.Fatal("sharing vector not growing linearly per line")
	}
	if m64.TotalBits <= 2*m32.TotalBits {
		t.Fatalf("MESI total should grow superlinearly: 32c=%d 64c=%d", m32.TotalBits, m64.TotalBits)
	}
}

func TestTSOCCPerLineGrowsLogarithmically(t *testing.T) {
	c := config.C12x3()
	l32 := TSOCC(PaperGeometry(32), c).L2PerLine
	l128 := TSOCC(PaperGeometry(128), c).L2PerLine
	// log2(128)-log2(32) = 2 extra owner bits, nothing else.
	if l128-l32 != 2 {
		t.Fatalf("per-line growth 32->128 cores = %d bits, want 2 (log)", l128-l32)
	}
}

func TestPaperReductionsAt32And128(t *testing.T) {
	g32 := PaperGeometry(32)
	g128 := PaperGeometry(128)
	checks := []struct {
		name     string
		cfg      config.TSOCC
		g        Geometry
		lo, hi   float64
		paperRef string
	}{
		{"C12x3@32", config.C12x3(), g32, 0.33, 0.48, "38%"},
		{"C12x3@128", config.C12x3(), g128, 0.77, 0.88, "82%"},
		{"C9x3@32", config.C9x3(), g32, 0.42, 0.55, "47%"},
		{"CCSharedToL2@32", config.CCSharedToL2(), g32, 0.70, 0.82, "76%"},
		{"Basic@32", config.Basic(), g32, 0.69, 0.82, "75%"},
	}
	for _, c := range checks {
		r := ReductionVsMESI(c.g, TSOCC(c.g, c.cfg))
		if r < c.lo || r > c.hi {
			t.Errorf("%s: reduction %.2f outside [%.2f,%.2f] (paper: %s)",
				c.name, r, c.lo, c.hi, c.paperRef)
		}
	}
}

func TestReductionMonotoneInCores(t *testing.T) {
	// TSO-CC's advantage must grow with core count (the paper's thesis).
	prev := -1.0
	for _, n := range []int{16, 32, 64, 128} {
		g := PaperGeometry(n)
		r := ReductionVsMESI(g, TSOCC(g, config.C12x3()))
		if r < prev {
			t.Fatalf("reduction not monotone at %d cores: %.3f < %.3f", n, r, prev)
		}
		prev = r
	}
}

func TestOverheadAlwaysPositive(t *testing.T) {
	check := func(rawCores uint8) bool {
		n := int(rawCores%128) + 2
		g := PaperGeometry(n)
		for _, c := range []config.TSOCC{config.CCSharedToL2(), config.Basic(),
			config.C12x3(), config.C9x3()} {
			o := TSOCC(g, c)
			if o.TotalBits <= 0 || o.L1TotalBits <= 0 || o.L2TotalBits <= 0 {
				return false
			}
		}
		return MESI(g).TotalBits > 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampBitsReflectedPerLine(t *testing.T) {
	g := PaperGeometry(32)
	d12 := TSOCC(g, config.C12x3()).L1PerLine
	d9 := TSOCC(g, config.C9x3()).L1PerLine
	if d12-d9 != 3 {
		t.Fatalf("12-bit vs 9-bit per-line delta = %d, want 3", d12-d9)
	}
}

func TestBasicSkipsTimestampStorage(t *testing.T) {
	g := PaperGeometry(32)
	b := TSOCC(g, config.Basic())
	full := TSOCC(g, config.C12x3())
	if b.L1PerNode >= full.L1PerNode {
		t.Fatal("basic should carry far less per-node state than timestamped configs")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 32: 5, 33: 6, 128: 7}
	for in, want := range cases {
		if got := log2ceil(in); got != want {
			t.Fatalf("log2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTablesRender(t *testing.T) {
	tab := Table1(32)
	out := tab.String()
	for _, want := range []string{"MESI", "TSO-CC-4-12-3", "CC-shared-to-L2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
	fig := Figure2([]int{16, 32}).String()
	if !strings.Contains(fig, "16 cores") || !strings.Contains(fig, "32 cores") {
		t.Fatalf("Figure 2 rendering:\n%s", fig)
	}
}

func TestFigure2MESIMatchesPaperAxis(t *testing.T) {
	// The paper's Figure 2 shows MESI near 33 MB at 128 cores with 1MB
	// tiles; our accounting should land in that neighbourhood.
	m := MESI(PaperGeometry(128))
	if m.TotalMiB < 28 || m.TotalMiB > 38 {
		t.Fatalf("MESI @128 cores = %.1f MiB, expected ~33", m.TotalMiB)
	}
}
