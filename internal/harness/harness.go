// Package harness drives the paper's evaluation: it runs the benchmark ×
// protocol grid and renders each of Figures 3–9 as a text table, with
// results normalized against the MESI baseline exactly as the paper
// plots them.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/system"
	"repro/internal/workloads"

	// Protocol packages register themselves; importing them populates
	// the registry this harness enumerates.
	_ "repro/internal/mesi"
	_ "repro/internal/tsocc"
)

// Protocols returns every registered protocol configuration — the seven
// evaluated in §4.2/§5 — in the paper's plotting order. The list comes
// from the coherence protocol registry, so a newly registered protocol
// package joins every grid without touching this package.
func Protocols() []system.Protocol {
	return coherence.Protocols()
}

// ListWorkloads writes the canonical workload listing shared by every
// CLI's -list-workloads flag: the Table 3 registry followed by the
// synthetic extras, each with its suite and one-line description.
func ListWorkloads(w io.Writer) {
	fmt.Fprintln(w, "workloads (Table 3 registry):")
	for _, e := range workloads.Registry() {
		fmt.Fprintf(w, "  %-16s [%-9s] %s\n", e.Name, e.Suite, e.Desc)
	}
	fmt.Fprintln(w, "workloads (synthetic extras, excluded from default grids):")
	for _, e := range workloads.Extras() {
		fmt.Fprintf(w, "  %-16s [%-9s] %s\n", e.Name, e.Suite, e.Desc)
	}
}

// ListProtocols writes the canonical protocol listing shared by every
// CLI's -list-protocols flag: one registry name per line, in plotting
// order (script-friendly).
func ListProtocols(w io.Writer) {
	for _, name := range coherence.ProtocolNames() {
		fmt.Fprintln(w, name)
	}
}

// Grid holds the full result matrix.
type Grid struct {
	Benchmarks []string
	Protocols  []string
	Results    map[string]map[string]*system.Result // benchmark -> protocol
}

// Get returns one cell (nil if the run failed).
func (g *Grid) Get(bench, proto string) *system.Result {
	if m, ok := g.Results[bench]; ok {
		return m[proto]
	}
	return nil
}

// Baseline returns the MESI result for a benchmark.
func (g *Grid) Baseline(bench string) *system.Result { return g.Get(bench, "MESI") }

type gridJob struct {
	bench string
	proto system.Protocol
}

// RunGrid executes every benchmark under every protocol. Runs are
// independent simulations and execute in parallel across host cores.
// Progress lines go to w if non-nil.
func RunGrid(sys config.System, p workloads.Params, protos []system.Protocol,
	benches []string, w io.Writer) (*Grid, error) {

	if len(protos) == 0 {
		protos = Protocols()
	}
	if len(benches) == 0 {
		benches = workloads.Names()
	}
	// Grid legs run concurrently on one shared config value; a single
	// registry/timeline attached to all of them would race (and mix
	// unrelated runs' series), so metric/timeline sinks never apply to
	// grids. pprof labels survive: each machine owns its label contexts.
	if sys.Obs != nil {
		if sys.Obs.ProfileLabels {
			sys.Obs = &obs.Obs{ProfileLabels: true}
		} else {
			sys.Obs = nil
		}
	}
	g := &Grid{Benchmarks: benches, Results: make(map[string]map[string]*system.Result)}
	for _, pr := range protos {
		g.Protocols = append(g.Protocols, pr.Name())
	}
	for _, b := range benches {
		g.Results[b] = make(map[string]*system.Result)
	}

	jobs := make(chan gridJob)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(benches)*len(protos) {
		workers = len(benches) * len(protos)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				e := workloads.ByName(job.bench)
				if e == nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("harness: unknown benchmark %q", job.bench)
					}
					mu.Unlock()
					continue
				}
				res, err := system.Run(sys, job.proto, e.Gen(p))
				mu.Lock()
				switch {
				case err != nil && firstErr == nil:
					firstErr = fmt.Errorf("harness: %s on %s: %w", job.bench, job.proto.Name(), err)
				case err == nil && res.CheckErr != nil && firstErr == nil:
					firstErr = fmt.Errorf("harness: %s on %s: functional check: %w",
						job.bench, job.proto.Name(), res.CheckErr)
				case err == nil:
					g.Results[job.bench][job.proto.Name()] = res
					if w != nil {
						fmt.Fprintf(w, "  %-14s %-18s %10d cycles %12d flit-hops\n",
							job.bench, job.proto.Name(), res.Cycles, res.FlitHops)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range benches {
		for _, pr := range protos {
			jobs <- gridJob{bench: b, proto: pr}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}
