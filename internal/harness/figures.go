package harness

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/stats"
	"repro/internal/system"
)

// normalizedTable renders metric(bench,proto)/metric(bench,MESI) for the
// whole grid, with a geometric-mean row — the shape of Figures 3, 4, 8.
func (g *Grid) normalizedTable(title string, metric func(*system.Result) float64) *stats.Table {
	t := stats.NewTable(title, g.Protocols...)
	perProto := make(map[string][]float64)
	for _, b := range g.Benchmarks {
		base := g.Baseline(b)
		if base == nil {
			continue
		}
		bv := metric(base)
		if bv <= 0 {
			// The metric does not apply to this benchmark (e.g. RMW
			// latency for a workload without atomics): skip the row.
			continue
		}
		row := make([]float64, 0, len(g.Protocols))
		for _, p := range g.Protocols {
			r := g.Get(b, p)
			v := 0.0
			if r != nil && bv > 0 {
				v = metric(r) / bv
			}
			row = append(row, v)
			perProto[p] = append(perProto[p], v)
		}
		t.AddFloats(b, 3, row...)
	}
	gm := make([]float64, 0, len(g.Protocols))
	for _, p := range g.Protocols {
		gm = append(gm, stats.Geomean(perProto[p]))
	}
	t.AddFloats("gmean", 3, gm...)
	return t
}

// Figure3 renders normalized execution time.
func (g *Grid) Figure3() *stats.Table {
	return g.normalizedTable("Figure 3: execution time (normalized to MESI)",
		func(r *system.Result) float64 { return float64(r.Cycles) })
}

// Figure4 renders normalized network traffic (flit-hops, the GARNET
// "total flits" analogue).
func (g *Grid) Figure4() *stats.Table {
	return g.normalizedTable("Figure 4: network traffic, flit-hops (normalized to MESI)",
		func(r *system.Result) float64 { return float64(r.FlitHops) })
}

// Figure8 renders normalized mean RMW latency.
func (g *Grid) Figure8() *stats.Table {
	return g.normalizedTable("Figure 8: RMW latency (normalized to MESI)",
		func(r *system.Result) float64 { return r.L1.MeanRMWLatency() })
}

// Figure5 renders the L1 miss breakdown: each miss class as a percentage
// of total L1 accesses, per benchmark and protocol.
func (g *Grid) Figure5() *stats.Table {
	t := stats.NewTable("Figure 5: L1 misses (% of accesses) as rd-I/rd-S/wr-I/wr-S/wr-SRO",
		g.Protocols...)
	for _, b := range g.Benchmarks {
		cells := make([]string, 0, len(g.Protocols))
		for _, p := range g.Protocols {
			r := g.Get(b, p)
			if r == nil {
				cells = append(cells, "-")
				continue
			}
			acc := float64(r.L1.Accesses())
			pct := func(c int64) float64 {
				if acc == 0 {
					return 0
				}
				return 100 * float64(c) / acc
			}
			cells = append(cells, fmt.Sprintf("%.1f/%.1f/%.1f/%.1f/%.1f",
				pct(r.L1.ReadMissInvalid.Value()), pct(r.L1.ReadMissShared.Value()),
				pct(r.L1.WriteMissInvalid.Value()), pct(r.L1.WriteMissShared.Value()),
				pct(r.L1.WriteMissSRO.Value())))
		}
		t.AddRow(b, cells...)
	}
	return t
}

// Figure6 renders the hit/miss breakdown: miss%, and hits split by
// Shared / SharedRO / private, as percentages of all L1 accesses.
func (g *Grid) Figure6() *stats.Table {
	t := stats.NewTable("Figure 6: L1 accesses (%) as miss/hit-S/hit-SRO/hit-priv", g.Protocols...)
	for _, b := range g.Benchmarks {
		cells := make([]string, 0, len(g.Protocols))
		for _, p := range g.Protocols {
			r := g.Get(b, p)
			if r == nil {
				cells = append(cells, "-")
				continue
			}
			acc := float64(r.L1.Accesses())
			pct := func(c int64) float64 {
				if acc == 0 {
					return 0
				}
				return 100 * float64(c) / acc
			}
			priv := r.L1.ReadHitPrivate.Value() + r.L1.WriteHitPrivate.Value()
			cells = append(cells, fmt.Sprintf("%.1f/%.1f/%.1f/%.1f",
				pct(r.L1.Misses()), pct(r.L1.ReadHitShared.Value()),
				pct(r.L1.ReadHitSRO.Value()), pct(priv)))
		}
		t.AddRow(b, cells...)
	}
	return t
}

// tsoccProtocols filters the grid's protocol list to TSO-CC variants
// (Figures 7 and 9 exclude MESI and CC-shared-to-L2, as in the paper).
func (g *Grid) tsoccProtocols() []string {
	var out []string
	for _, p := range g.Protocols {
		if p != "MESI" && p != "CC-shared-to-L2" {
			out = append(out, p)
		}
	}
	return out
}

// Figure7 renders the percentage of L1 data responses that triggered a
// self-invalidation, split by trigger.
func (g *Grid) Figure7() *stats.Table {
	protos := g.tsoccProtocols()
	t := stats.NewTable("Figure 7: data responses triggering self-invalidation (%) as inv-ts/acq/acq-SRO",
		protos...)
	for _, b := range g.Benchmarks {
		cells := make([]string, 0, len(protos))
		for _, p := range protos {
			r := g.Get(b, p)
			if r == nil {
				cells = append(cells, "-")
				continue
			}
			dr := float64(r.L1.DataResponses.Value())
			pct := func(c int64) float64 {
				if dr == 0 {
					return 0
				}
				return 100 * float64(c) / dr
			}
			cells = append(cells, fmt.Sprintf("%.1f/%.1f/%.1f",
				pct(r.L1.SelfInvEvents[coherence.CauseInvalidTS].Value()),
				pct(r.L1.SelfInvEvents[coherence.CauseAcquireNonSRO].Value()),
				pct(r.L1.SelfInvEvents[coherence.CauseAcquireSRO].Value())))
		}
		t.AddRow(b, cells...)
	}
	return t
}

// Figure9 renders the breakdown of self-invalidation causes (summing to
// 100% per cell): invalid-ts / acquire / acquire-SRO / fence.
func (g *Grid) Figure9() *stats.Table {
	protos := g.tsoccProtocols()
	t := stats.NewTable("Figure 9: self-invalidation causes (%) as inv-ts/acq/acq-SRO/fence", protos...)
	for _, b := range g.Benchmarks {
		cells := make([]string, 0, len(protos))
		for _, p := range protos {
			r := g.Get(b, p)
			if r == nil {
				cells = append(cells, "-")
				continue
			}
			total := float64(r.L1.SelfInvTotal())
			pct := func(c coherence.SelfInvCause) float64 {
				if total == 0 {
					return 0
				}
				return 100 * float64(r.L1.SelfInvEvents[c].Value()) / total
			}
			cells = append(cells, fmt.Sprintf("%.1f/%.1f/%.1f/%.1f",
				pct(coherence.CauseInvalidTS), pct(coherence.CauseAcquireNonSRO),
				pct(coherence.CauseAcquireSRO), pct(coherence.CauseFence)))
		}
		t.AddRow(b, cells...)
	}
	return t
}

// SummaryHighlights extracts the paper's headline comparisons from a grid
// (gmean speedups, best/worst cases) for EXPERIMENTS.md.
func (g *Grid) SummaryHighlights() string {
	best := g.normalizedRow("TSO-CC-4-12-3")
	s := "Headline (TSO-CC-4-12-3 vs MESI, execution time):\n"
	if len(best) == 0 {
		return s + "  (no data)\n"
	}
	gm := stats.Geomean(best)
	lo, hi := best[0], best[0]
	for _, v := range best {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	s += fmt.Sprintf("  gmean %.3f, best case %.3f, worst case %.3f\n", gm, lo, hi)
	return s
}

func (g *Grid) normalizedRow(proto string) []float64 {
	var out []float64
	for _, b := range g.Benchmarks {
		base, r := g.Baseline(b), g.Get(b, proto)
		if base == nil || r == nil || base.Cycles == 0 {
			continue
		}
		out = append(out, float64(r.Cycles)/float64(base.Cycles))
	}
	return out
}
