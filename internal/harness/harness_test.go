package harness_test

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/mesi"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

func smallGrid(t *testing.T) *harness.Grid {
	t.Helper()
	cfg := config.Small(4)
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	protos := []system.Protocol{mesi.New(), tsocc.New(config.Basic()), tsocc.New(config.C12x3())}
	g, err := harness.RunGrid(cfg, p, protos, []string{"intruder", "x264", "ssca2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestProtocolsListMatchesPaper(t *testing.T) {
	ps := harness.Protocols()
	want := []string{"MESI", "CC-shared-to-L2", "TSO-CC-4-basic", "TSO-CC-4-noreset",
		"TSO-CC-4-12-3", "TSO-CC-4-12-0", "TSO-CC-4-9-3"}
	if len(ps) != len(want) {
		t.Fatalf("protocol count = %d, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Fatalf("protocol %d = %s, want %s", i, p.Name(), want[i])
		}
	}
}

func TestRunGridFillsEveryCell(t *testing.T) {
	g := smallGrid(t)
	for _, b := range g.Benchmarks {
		for _, p := range g.Protocols {
			r := g.Get(b, p)
			if r == nil {
				t.Fatalf("missing cell %s/%s", b, p)
			}
			if r.Cycles <= 0 || r.Msgs <= 0 {
				t.Fatalf("degenerate result for %s/%s", b, p)
			}
		}
	}
}

func TestBaselineNormalization(t *testing.T) {
	g := smallGrid(t)
	f3 := g.Figure3().String()
	// The MESI column must be exactly 1.000 on every benchmark row.
	for _, line := range strings.Split(f3, "\n") {
		for _, b := range g.Benchmarks {
			if strings.HasPrefix(line, b) {
				if !strings.Contains(line, "1.000") {
					t.Fatalf("row lacks MESI=1.000: %q", line)
				}
			}
		}
	}
}

func TestAllFiguresRender(t *testing.T) {
	g := smallGrid(t)
	figs := map[string]string{
		"Figure 3": g.Figure3().String(),
		"Figure 4": g.Figure4().String(),
		"Figure 5": g.Figure5().String(),
		"Figure 6": g.Figure6().String(),
		"Figure 7": g.Figure7().String(),
		"Figure 8": g.Figure8().String(),
		"Figure 9": g.Figure9().String(),
	}
	for name, out := range figs {
		if !strings.Contains(out, name) {
			t.Fatalf("%s missing title:\n%s", name, out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Fatalf("%s has no data rows:\n%s", name, out)
		}
	}
	// Figures 7 and 9 must exclude MESI and CC-shared-to-L2 columns.
	if strings.Contains(figs["Figure 7"], "MESI") {
		t.Fatal("Figure 7 should not include MESI")
	}
}

func TestGmeanRowPresent(t *testing.T) {
	g := smallGrid(t)
	if !strings.Contains(g.Figure3().String(), "gmean") {
		t.Fatal("Figure 3 missing gmean row")
	}
}

func TestSummaryHighlights(t *testing.T) {
	g := smallGrid(t)
	s := g.SummaryHighlights()
	if !strings.Contains(s, "gmean") {
		t.Fatalf("highlights: %s", s)
	}
}

func TestUnknownBenchmarkFails(t *testing.T) {
	cfg := config.Small(2)
	p := workloads.Params{Threads: 2, Scale: 1, Seed: 1}
	_, err := harness.RunGrid(cfg, p, []system.Protocol{mesi.New()}, []string{"nope"}, nil)
	if err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}
