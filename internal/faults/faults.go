// Package faults provides seeded, deterministic fault injection for the
// simulator: bounded perturbations of message delivery and admission
// timing that stay within protocol-legal bounds. The point is
// adversarial-timing coverage — shaking loose ordering bugs that
// nominal timing never exercises — while preserving the repo's
// bit-identity contract: for a fixed (profile, seed) every fault
// decision is a pure function of values that are themselves
// bit-identical across engine mode, core batching, and trace replay
// (per-site decision counters, delivery cycles, message send order).
// Fault-injected runs therefore fingerprint-compare exactly like
// nominal runs; they form the fifth conformance axis.
//
// Three profiles are built in:
//
//   - jitter: each mesh delivery independently risks a bounded extra
//     delay (rate per-mille, 1..delay extra cycles).
//   - pressure: L1 port admissions (loads, RMWs, fences — never
//     stores, see Port) and TxTable message consumption are forcibly
//     declined/stalled at a per-mille rate, capped per op/message so
//     forward progress is guaranteed.
//   - burst: time is divided into 2^window-cycle windows; a per-mille
//     fraction of windows delay every delivery scheduled inside them
//     by a fixed amount, clustering congestion instead of spreading it.
//
// Delay-based profiles preserve per-(src,dst) delivery order with a
// monotonic clamp: a delayed message never lets a later send on the
// same ordered pair overtake it, because the protocols rely on
// pairwise FIFO (an invalidation must never pass an earlier data
// response).
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// Profile names accepted by Parse.
const (
	Jitter   = "jitter"
	Pressure = "pressure"
	Burst    = "burst"
)

// Profile is a parsed, clamped fault profile. Zero value means "no
// injection" (Name empty).
type Profile struct {
	// Name is one of Jitter, Pressure, Burst.
	Name string
	// Rate is the injection probability in per-mille (0..1000): per
	// delivery for jitter, per admission attempt for pressure, per
	// window for burst.
	Rate uint32
	// MaxDelay bounds the extra delivery latency in cycles: jitter
	// draws uniformly from 1..MaxDelay, burst adds exactly MaxDelay.
	MaxDelay sim.Cycle
	// StallCap caps consecutive forced declines of one port op and
	// total forced stalls of one TxTable message (pressure), so
	// injection can slow but never starve an operation.
	StallCap uint8
	// WindowLog is the burst window size as log2 cycles.
	WindowLog uint8
}

// Defaults per profile; overridable via the spec string.
func defaults(name string) Profile {
	switch name {
	case Jitter:
		return Profile{Name: Jitter, Rate: 200, MaxDelay: 6}
	case Pressure:
		return Profile{Name: Pressure, Rate: 150, StallCap: 3}
	case Burst:
		return Profile{Name: Burst, Rate: 125, MaxDelay: 8, WindowLog: 6}
	}
	return Profile{}
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Parse parses a profile spec of the form "name" or
// "name:key=val,key=val". Keys: rate (per-mille), delay (cycles), cap
// (max consecutive stalls), window (log2 cycles). Out-of-range values
// are clamped rather than rejected so randomized specs (fuzzing) stay
// valid; only malformed syntax, unknown names, and unknown keys error.
func Parse(spec string) (Profile, error) {
	name, params, _ := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	p := defaults(name)
	if p.Name == "" {
		return Profile{}, fmt.Errorf("faults: unknown profile %q (want jitter, pressure, or burst)", name)
	}
	if params == "" {
		return p, nil
	}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Profile{}, fmt.Errorf("faults: malformed parameter %q in %q (want key=val)", kv, spec)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return Profile{}, fmt.Errorf("faults: parameter %q in %q: %v", kv, spec, err)
		}
		switch strings.TrimSpace(key) {
		case "rate":
			p.Rate = uint32(clamp(n, 0, 1000))
		case "delay":
			p.MaxDelay = sim.Cycle(clamp(n, 1, 64))
		case "cap":
			p.StallCap = uint8(clamp(n, 1, 8))
		case "window":
			p.WindowLog = uint8(clamp(n, 2, 16))
		default:
			return Profile{}, fmt.Errorf("faults: unknown parameter %q in %q", key, spec)
		}
	}
	return p, nil
}

// Injector makes all fault decisions for one run. It is
// single-goroutine, like the rest of the simulator, and is rebuilt
// fresh per system so identical (profile, seed) runs see identical
// decision streams.
type Injector struct {
	seed uint64
	prof Profile

	// Per-(src,dst) state for mesh delays: a decision counter (the
	// per-site sequence number jitter rolls against) and the latest
	// delivery cycle handed out (the FIFO clamp).
	pairSeq map[uint64]uint64
	lastOut map[uint64]sim.Cycle
}

// New builds an injector from a profile spec (see Parse) and a seed.
func New(spec string, seed uint64) (*Injector, error) {
	p, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return &Injector{
		seed:    seed,
		prof:    p,
		pairSeq: make(map[uint64]uint64),
		lastOut: make(map[uint64]sim.Cycle),
	}, nil
}

// Profile returns the parsed profile driving this injector.
func (in *Injector) Profile() Profile { return in.prof }

// MeshActive reports whether the injector perturbs mesh delivery times.
func (in *Injector) MeshActive() bool {
	return in.prof.Name == Jitter || in.prof.Name == Burst
}

// PortActive reports whether the injector declines L1 port admissions.
func (in *Injector) PortActive() bool { return in.prof.Name == Pressure }

// TxActive reports whether the injector stalls TxTable consumption.
func (in *Injector) TxActive() bool { return in.prof.Name == Pressure }

// Decision sites, mixed into the hash so the same counter value at
// different hook points draws independent rolls.
const (
	siteMesh = 0x6d657368 // "mesh"
	sitePort = 0x706f7274 // "port"
	siteTx   = 0x74787462 // "txtb"
)

// mix is the splitmix64/murmur finalizer: a cheap, well-distributed
// 64-bit hash used for all fault decisions.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// draw hashes (seed, site, a, b) to a 64-bit value; roll reduces it to
// a per-mille bucket. The inputs are all deterministic across engine
// modes, so the decision stream is too.
func (in *Injector) draw(site, a, b uint64) uint64 {
	x := in.seed
	x ^= site * 0x9e3779b97f4a7c15
	x ^= a * 0xc2b2ae3d27d4eb4f
	x ^= b * 0x165667b19e3779f9
	return mix(x)
}

func pairKey(src, dst coherence.NodeID) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// MeshDelay is the mesh.Network delay hook: given a delivery scheduled
// at cycle at for the (src, dst) endpoint pair, it returns the
// (possibly later) cycle the delivery should actually land. The result
// is clamped monotonically per pair so injected delay never reorders
// an ordered-pair FIFO.
func (in *Injector) MeshDelay(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle {
	key := pairKey(src, dst)
	out := at
	switch in.prof.Name {
	case Jitter:
		n := in.pairSeq[key]
		in.pairSeq[key] = n + 1
		if h := in.draw(siteMesh, key, n); uint32(h%1000) < in.prof.Rate {
			out = at + 1 + sim.Cycle((h>>32)%uint64(in.prof.MaxDelay))
		}
	case Burst:
		win := uint64(at) >> in.prof.WindowLog
		if uint32(in.draw(siteMesh, win, 0)%1000) < in.prof.Rate {
			out = at + in.prof.MaxDelay
		}
	}
	if last := in.lastOut[key]; out < last {
		out = last // FIFO clamp: never pass an earlier same-pair delivery
	}
	in.lastOut[key] = out
	return out
}

// MeshDelayer returns an independent mesh-delay decision domain: the
// same (profile, seed) as the parent but fresh per-pair state. All mesh
// fault decisions are functions of per-(src,dst)-pair state only (the
// jitter counter, the FIFO clamp; burst is a pure function of the
// window), so partitioning the ordered pairs across domains — as the
// sharded mesh does, co-located pairs to their tile's shard and
// cross-router pairs to the barrier merge — yields exactly the decision
// stream a single serial domain would, as long as each pair always hits
// the same domain.
func (in *Injector) MeshDelayer() func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle {
	d := &Injector{
		seed:    in.seed,
		prof:    in.prof,
		pairSeq: make(map[uint64]uint64),
		lastOut: make(map[uint64]sim.Cycle),
	}
	return d.MeshDelay
}

// TxStall returns a TxTable stall hook for one tile: each call decides
// whether the message about to be consumed is deferred one drain
// round. A per-message stall budget (Msg.FaultStalls, zeroed by the
// message pool) bounds how long any one message can be held.
func (in *Injector) TxStall(tile int) func(m *coherence.Msg) bool {
	var seq uint64
	rate, budget := in.prof.Rate, in.prof.StallCap
	return func(m *coherence.Msg) bool {
		seq++
		if m.FaultStalls >= budget {
			return false
		}
		if uint32(in.draw(siteTx, uint64(tile), seq)%1000) < rate {
			m.FaultStalls++
			return true
		}
		return false
	}
}

// Port is a coherence.CorePort decorator that injects admission
// declines (the pressure profile). Loads, RMWs, and fences are safe to
// decline: in both engine modes a core with a ready-but-unaccepted op
// reports NextWake = now+1 and retries every cycle, so the per-core
// attempt counter advances identically and the decision stream stays
// bit-identical.
//
// Stores are NEVER declined. The write-buffer drain relies on the
// invariant that every Store decline is caused by one of the core's own
// in-flight transactions, whose completion callback wakes the core (see
// cpu.Core.drainWriteBuffer). An injected decline has no such callback:
// under wake-set scheduling the core would report WakeNever with a
// pending store — a lost-wakeup deadlock. Per-cycle mode would also
// retry stores on cycles wake-set mode never ticks, diverging the
// decision counters.
type Port struct {
	inner coherence.CorePort
	inj   *Injector
	core  uint64

	attempts uint64 // decision counter across load/RMW/fence admissions
	streak   uint8  // consecutive injected declines of the current op
}

// WrapPort decorates inner with pressure-profile admission declines for
// one core. The wrapper is only installed when PortActive; a disabled
// injector adds nothing to the hot path.
func (in *Injector) WrapPort(core int, inner coherence.CorePort) *Port {
	return &Port{inner: inner, inj: in, core: uint64(core)}
}

// decline rolls the next admission decision; capped so at most
// StallCap consecutive declines hit one op.
func (p *Port) decline() bool {
	p.attempts++
	if p.streak >= p.inj.prof.StallCap {
		p.streak = 0
		return false
	}
	if uint32(p.inj.draw(sitePort, p.core, p.attempts)%1000) < p.inj.prof.Rate {
		p.streak++
		return true
	}
	p.streak = 0
	return false
}

// Load implements coherence.CorePort.
func (p *Port) Load(now sim.Cycle, addr uint64, cb func(val uint64)) bool {
	if p.decline() {
		return false
	}
	return p.inner.Load(now, addr, cb)
}

// Store implements coherence.CorePort. Stores pass through untouched —
// see the type comment for why declining one is a deadlock.
func (p *Port) Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool {
	return p.inner.Store(now, addr, val, cb)
}

// RMW implements coherence.CorePort.
func (p *Port) RMW(now sim.Cycle, addr uint64, f func(old uint64) (uint64, bool), cb func(old uint64)) bool {
	if p.decline() {
		return false
	}
	return p.inner.RMW(now, addr, f, cb)
}

// Fence implements coherence.CorePort.
func (p *Port) Fence(now sim.Cycle, cb func()) bool {
	if p.decline() {
		return false
	}
	return p.inner.Fence(now, cb)
}
