// Package faults provides seeded, deterministic fault injection for the
// simulator: bounded perturbations of message delivery, admission
// timing, and directory-side protocol events that stay within
// protocol-legal bounds. The point is adversarial-timing coverage —
// shaking loose ordering bugs that nominal timing never exercises —
// while preserving the repo's bit-identity contract: for a fixed
// (profile, seed) every fault decision is a pure function of values
// that are themselves bit-identical across engine mode, core batching,
// sharding, and trace replay (per-site decision counters, delivery
// cycles, message send order). Fault-injected runs therefore
// fingerprint-compare exactly like nominal runs; they form the fifth
// conformance axis.
//
// Six profiles are built in:
//
//   - jitter: each mesh delivery independently risks a bounded extra
//     delay (rate per-mille, 1..delay extra cycles).
//   - pressure: L1 port admissions (loads, RMWs, fences — never
//     stores, see Port) and TxTable message consumption are forcibly
//     declined/stalled at a per-mille rate, capped per op/message so
//     forward progress is guaranteed.
//   - burst: time is divided into 2^window-cycle windows; a per-mille
//     fraction of windows delay every delivery scheduled inside them
//     by a fixed amount, clustering congestion instead of spreading it.
//   - evict: L1 accesses that would hit a valid line instead force the
//     protocol's own eviction path first (rate per-mille), stressing
//     victim buffers, writeback races, and refetch ordering.
//   - reset-storm: TSO-CC bounded timestamps roll over early — L1
//     write-group timestamp assignment and L2 SharedRO timestamp
//     assignment trigger their reset broadcasts at a per-mille rate
//     instead of only at TSMax, stressing epoch-change handling.
//     No-op on protocols without timestamp state (MESI).
//   - victim: eviction acknowledgements (PutAck) at the L2 are held
//     back an extra 1..delay cycles (rate per-mille), widening the
//     window where a victim sits in the L1 evict buffer while
//     forwarded requests race the writeback.
//
// Profiles compose: a spec like "jitter+evict:rate=80" arms several at
// once (see Parse). Delay-based mesh profiles preserve per-(src,dst)
// delivery order with a monotonic clamp: a delayed message never lets
// a later send on the same ordered pair overtake it, because the
// protocols rely on pairwise FIFO (an invalidation must never pass an
// earlier data response). The victim profile deliberately has no such
// clamp — reordering acks against later traffic is the fault being
// injected, and the PutAck handler tolerates it by design.
//
// Every decision site draws against a per-site counter. The counters
// double as the shrinker's coordinate system: SetWindow restricts
// injection to counter values in [lo, hi), so a failure found by a
// sweep can be bisected down to the narrow band of decisions that
// matter (see internal/shrink).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// Profile names accepted by Parse.
const (
	Jitter     = "jitter"
	Pressure   = "pressure"
	Burst      = "burst"
	Evict      = "evict"
	ResetStorm = "reset-storm"
	Victim     = "victim"
)

// Profile is one parsed, clamped fault profile component. Zero value
// means "no injection" (Name empty).
type Profile struct {
	// Name is one of Jitter, Pressure, Burst, Evict, ResetStorm,
	// Victim.
	Name string
	// Rate is the injection probability in per-mille (0..1000): per
	// delivery for jitter, per admission attempt for pressure, per
	// window for burst, per valid-line access for evict, per timestamp
	// assignment for reset-storm, per eviction ack for victim.
	Rate uint32
	// MaxDelay bounds the extra latency in cycles: jitter and victim
	// draw uniformly from 1..MaxDelay, burst adds exactly MaxDelay.
	MaxDelay sim.Cycle
	// StallCap caps consecutive forced declines of one port op and
	// total forced stalls of one TxTable message (pressure), so
	// injection can slow but never starve an operation.
	StallCap uint8
	// WindowLog is the burst window size as log2 cycles.
	WindowLog uint8
}

// Defaults per profile; overridable via the spec string.
func defaults(name string) Profile {
	switch name {
	case Jitter:
		return Profile{Name: Jitter, Rate: 200, MaxDelay: 6}
	case Pressure:
		return Profile{Name: Pressure, Rate: 150, StallCap: 3}
	case Burst:
		return Profile{Name: Burst, Rate: 125, MaxDelay: 8, WindowLog: 6}
	case Evict:
		return Profile{Name: Evict, Rate: 40}
	case ResetStorm:
		return Profile{Name: ResetStorm, Rate: 60}
	case Victim:
		return Profile{Name: Victim, Rate: 250, MaxDelay: 12}
	}
	return Profile{}
}

// keys lists the parameters each profile accepts; anything else in a
// spec is an error that names both the profile and the offending key.
func allowedKeys(name string) map[string]bool {
	switch name {
	case Jitter:
		return map[string]bool{"rate": true, "delay": true}
	case Pressure:
		return map[string]bool{"rate": true, "cap": true}
	case Burst:
		return map[string]bool{"rate": true, "delay": true, "window": true}
	case Evict:
		return map[string]bool{"rate": true}
	case ResetStorm:
		return map[string]bool{"rate": true}
	case Victim:
		return map[string]bool{"rate": true, "delay": true}
	}
	return nil
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Parse parses a composite profile spec: one or more components
// separated by '+' or ',', each of the form "name" or
// "name:key=val,key=val". A bare name token starts a new component and
// key=val tokens attach to the most recent one, so
// "jitter:rate=300+evict:rate=80" and "jitter,rate=300,evict" both
// parse. Keys: rate (per-mille), delay (cycles), cap (max consecutive
// stalls), window (log2 cycles) — validated per profile, so e.g.
// "evict:window=4" is rejected naming the profile and the key.
// Out-of-range values are clamped rather than rejected so randomized
// specs (fuzzing) stay valid; only malformed syntax, unknown names,
// unknown or inapplicable keys, and duplicate profiles error.
func Parse(spec string) ([]Profile, error) {
	var profs []Profile
	cur := -1 // index into profs of the component accepting keys
	for _, tok := range strings.FieldsFunc(spec, func(r rune) bool {
		return r == '+' || r == ','
	}) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, params, hasParams := strings.Cut(tok, ":")
		name = strings.TrimSpace(name)
		if strings.Contains(name, "=") {
			// A key=val token: attach to the current component.
			if cur < 0 {
				return nil, fmt.Errorf("faults: parameter %q in %q precedes any profile name", tok, spec)
			}
			if err := applyKey(&profs[cur], name, spec); err != nil {
				return nil, err
			}
			if hasParams {
				return nil, fmt.Errorf("faults: malformed token %q in %q", tok, spec)
			}
			continue
		}
		p := defaults(name)
		if p.Name == "" {
			return nil, fmt.Errorf("faults: unknown profile %q (want %s)", name, strings.Join(Names(), ", "))
		}
		for _, prev := range profs {
			if prev.Name == p.Name {
				return nil, fmt.Errorf("faults: duplicate profile %q in %q", p.Name, spec)
			}
		}
		profs = append(profs, p)
		cur = len(profs) - 1
		if hasParams {
			for _, kv := range strings.Split(params, ",") {
				if err := applyKey(&profs[cur], kv, spec); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(profs) == 0 {
		return nil, fmt.Errorf("faults: empty profile spec %q", spec)
	}
	return profs, nil
}

// applyKey parses one "key=val" and applies it to p, enforcing p's
// allowed-key set.
func applyKey(p *Profile, kv, spec string) error {
	key, val, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("faults: profile %q: malformed parameter %q in %q (want key=val)", p.Name, kv, spec)
	}
	key = strings.TrimSpace(key)
	n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
	if err != nil {
		return fmt.Errorf("faults: profile %q: parameter %q in %q: %v", p.Name, kv, spec, err)
	}
	if !allowedKeys(p.Name)[key] {
		return fmt.Errorf("faults: profile %q: unknown parameter %q in %q", p.Name, key, spec)
	}
	switch key {
	case "rate":
		p.Rate = uint32(clamp(n, 0, 1000))
	case "delay":
		p.MaxDelay = sim.Cycle(clamp(n, 1, 64))
	case "cap":
		p.StallCap = uint8(clamp(n, 1, 8))
	case "window":
		p.WindowLog = uint8(clamp(n, 2, 16))
	}
	return nil
}

// Names returns every accepted profile name, sorted.
func Names() []string {
	names := []string{Jitter, Pressure, Burst, Evict, ResetStorm, Victim}
	sort.Strings(names)
	return names
}

// Injector makes all fault decisions for one run. Its decision state is
// either single-goroutine (the serial engine) or partitioned so each
// shard only touches its own closures and pair-local state; identical
// (profile, seed) runs see identical decision streams at every shard
// count.
type Injector struct {
	seed  uint64
	profs []Profile

	// Per-kind components (nil when the profile is absent from the
	// spec). Composite specs arm several at once.
	jitter   *Profile
	pressure *Profile
	burst    *Profile
	evict    *Profile
	reset    *Profile
	victim   *Profile

	// Decision-counter window: a site counter c only injects when
	// winLo <= c < winHi. Defaults to the full range; the shrinker
	// narrows it to bisect which decisions a failure needs.
	winLo, winHi uint64

	// When tracking is enabled (serial runs only — the closures run on
	// shard goroutines otherwise), maxCtr records the highest counter
	// any site reached, giving the shrinker its initial window bound.
	trackMax bool
	maxCtr   uint64

	// Per-(src,dst) state for mesh delays: a decision counter (the
	// per-site sequence number jitter rolls against) and the latest
	// delivery cycle handed out (the FIFO clamp).
	pairSeq map[uint64]uint64
	lastOut map[uint64]sim.Cycle
}

// New builds an injector from a profile spec (see Parse) and a seed.
func New(spec string, seed uint64) (*Injector, error) {
	profs, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	in := &Injector{
		seed:    seed,
		profs:   profs,
		winHi:   ^uint64(0),
		pairSeq: make(map[uint64]uint64),
		lastOut: make(map[uint64]sim.Cycle),
	}
	for i := range in.profs {
		p := &in.profs[i]
		switch p.Name {
		case Jitter:
			in.jitter = p
		case Pressure:
			in.pressure = p
		case Burst:
			in.burst = p
		case Evict:
			in.evict = p
		case ResetStorm:
			in.reset = p
		case Victim:
			in.victim = p
		}
	}
	return in, nil
}

// Profiles returns the parsed components driving this injector.
func (in *Injector) Profiles() []Profile { return in.profs }

// SetWindow restricts injection to decision-counter values in
// [lo, hi); hi == 0 means unbounded. Must be called before the run
// starts.
func (in *Injector) SetWindow(lo, hi uint64) {
	in.winLo = lo
	if hi == 0 {
		hi = ^uint64(0)
	}
	in.winHi = hi
}

// TrackDecisions enables max-counter tracking. Only legal for serial
// (shards=1) runs: the decision closures run on shard goroutines
// otherwise and the shared high-water mark would race.
func (in *Injector) TrackDecisions() { in.trackMax = true }

// MaxCounter reports the highest decision counter any site reached
// (valid after a tracked run); the shrinker uses MaxCounter()+1 as its
// initial window upper bound.
func (in *Injector) MaxCounter() uint64 { return in.maxCtr }

// MeshActive reports whether the injector perturbs mesh delivery times.
func (in *Injector) MeshActive() bool { return in.jitter != nil || in.burst != nil }

// PortActive reports whether the injector declines L1 port admissions.
func (in *Injector) PortActive() bool { return in.pressure != nil }

// TxActive reports whether the injector stalls TxTable consumption.
func (in *Injector) TxActive() bool { return in.pressure != nil }

// EvictActive reports whether the injector forces early L1 evictions.
func (in *Injector) EvictActive() bool { return in.evict != nil }

// ResetActive reports whether the injector storms timestamp resets.
func (in *Injector) ResetActive() bool { return in.reset != nil }

// VictimActive reports whether the injector delays L2 eviction acks.
func (in *Injector) VictimActive() bool { return in.victim != nil }

// Decision sites, mixed into the hash so the same counter value at
// different hook points draws independent rolls.
const (
	siteMesh   = 0x6d657368 // "mesh"
	sitePort   = 0x706f7274 // "port"
	siteTx     = 0x74787462 // "txtb"
	siteEvict  = 0x65766374 // "evct"
	siteReset  = 0x72736574 // "rset"
	siteVictim = 0x7663746d // "vctm"
)

// mix is the splitmix64/murmur finalizer: a cheap, well-distributed
// 64-bit hash used for all fault decisions.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// draw hashes (seed, site, a, b) to a 64-bit value; decisions reduce it
// to a per-mille bucket. The inputs are all deterministic across engine
// modes, so the decision stream is too.
func (in *Injector) draw(site, a, b uint64) uint64 {
	x := in.seed
	x ^= site * 0x9e3779b97f4a7c15
	x ^= a * 0xc2b2ae3d27d4eb4f
	x ^= b * 0x165667b19e3779f9
	return mix(x)
}

// gate applies the decision-counter window to counter value ctr and
// (when tracking) records the high-water mark. Every injection decision
// routes its counter through here, which is what makes the shrinker's
// window bisection sound: outside [winLo, winHi) a run behaves exactly
// as if the decisions there had rolled "no fault".
func (in *Injector) gate(ctr uint64) bool {
	if in.trackMax && ctr > in.maxCtr {
		in.maxCtr = ctr
	}
	return ctr >= in.winLo && ctr < in.winHi
}

func pairKey(src, dst coherence.NodeID) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// MeshDelay is the mesh.Network delay hook: given a delivery scheduled
// at cycle at for the (src, dst) endpoint pair, it returns the
// (possibly later) cycle the delivery should actually land. Jitter and
// burst components compose additively. The result is clamped
// monotonically per pair so injected delay never reorders an
// ordered-pair FIFO.
func (in *Injector) MeshDelay(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle {
	key := pairKey(src, dst)
	out := at
	if p := in.jitter; p != nil {
		n := in.pairSeq[key]
		in.pairSeq[key] = n + 1
		if in.gate(n) {
			if h := in.draw(siteMesh, key, n); uint32(h%1000) < p.Rate {
				out += 1 + sim.Cycle((h>>32)%uint64(p.MaxDelay))
			}
		}
	}
	if p := in.burst; p != nil {
		win := uint64(at) >> p.WindowLog
		if in.gate(win) && uint32(in.draw(siteMesh, win, 0)%1000) < p.Rate {
			out += p.MaxDelay
		}
	}
	if last := in.lastOut[key]; out < last {
		out = last // FIFO clamp: never pass an earlier same-pair delivery
	}
	in.lastOut[key] = out
	return out
}

// MeshDelayer returns an independent mesh-delay decision domain: the
// same (profiles, seed, window) as the parent but fresh per-pair state.
// All mesh fault decisions are functions of per-(src,dst)-pair state
// only (the jitter counter, the FIFO clamp; burst is a pure function of
// the window), so partitioning the ordered pairs across domains — as
// the sharded mesh does, co-located pairs to their tile's shard and
// cross-router pairs to the barrier merge — yields exactly the decision
// stream a single serial domain would, as long as each pair always hits
// the same domain. Children never track the high-water mark (they run
// on shard goroutines); shrink runs are serial.
func (in *Injector) MeshDelayer() func(now, at sim.Cycle, src, dst coherence.NodeID) sim.Cycle {
	d := &Injector{
		seed:    in.seed,
		profs:   in.profs,
		jitter:  in.jitter,
		burst:   in.burst,
		winLo:   in.winLo,
		winHi:   in.winHi,
		pairSeq: make(map[uint64]uint64),
		lastOut: make(map[uint64]sim.Cycle),
	}
	return d.MeshDelay
}

// TxStall returns a TxTable stall hook for one tile: each call decides
// whether the message about to be consumed is deferred one drain
// round. A per-message stall budget (Msg.FaultStalls, zeroed by the
// message pool) bounds how long any one message can be held.
func (in *Injector) TxStall(tile int) func(m *coherence.Msg) bool {
	var seq uint64
	rate, budget := in.pressure.Rate, in.pressure.StallCap
	return func(m *coherence.Msg) bool {
		seq++
		if m.FaultStalls >= budget {
			return false
		}
		if in.gate(seq) && uint32(in.draw(siteTx, uint64(tile), seq)%1000) < rate {
			m.FaultStalls++
			return true
		}
		return false
	}
}

// EvictHook returns an L1 forced-eviction decision hook for one core:
// consulted on accesses that hit a valid, unpinned line, a firing hook
// makes the controller run its own eviction path first and take the
// miss. The decision counter advances only on those consultations,
// which occur in the same order in every engine mode (successful
// admissions are bit-identical; see Port for why declined retries are
// not, and note declines happen before the cache is probed).
func (in *Injector) EvictHook(core int) func() bool {
	var seq uint64
	rate := in.evict.Rate
	return func() bool {
		seq++
		return in.gate(seq) && uint32(in.draw(siteEvict, uint64(core), seq)%1000) < rate
	}
}

// ResetHook returns a timestamp-reset-storm decision hook for one
// node (L1 core or L2 tile; node ids are disjoint across the two, so
// one site constant serves both). Consulted at each timestamp
// assignment; firing forces the node's reset/rollover path early.
func (in *Injector) ResetHook(node coherence.NodeID) func() bool {
	var seq uint64
	rate := in.reset.Rate
	return func() bool {
		seq++
		return in.gate(seq) && uint32(in.draw(siteReset, uint64(uint32(node)), seq)%1000) < rate
	}
}

// AckDelay returns an eviction-ack delay hook for one L2 tile:
// consulted when the directory is about to schedule a PutAck, it
// returns 0 (send on time) or an extra 1..delay cycles. Unlike mesh
// delays there is deliberately no FIFO clamp — letting later directory
// traffic overtake the ack is the victim/writeback race being
// injected.
func (in *Injector) AckDelay(tile int) func() sim.Cycle {
	var seq uint64
	rate, maxDelay := in.victim.Rate, uint64(in.victim.MaxDelay)
	return func() sim.Cycle {
		seq++
		if !in.gate(seq) {
			return 0
		}
		if h := in.draw(siteVictim, uint64(tile), seq); uint32(h%1000) < rate {
			return 1 + sim.Cycle((h>>32)%maxDelay)
		}
		return 0
	}
}

// Port is a coherence.CorePort decorator that injects admission
// declines (the pressure profile). Loads, RMWs, and fences are safe to
// decline: in both engine modes a core with a ready-but-unaccepted op
// reports NextWake = now+1 and retries every cycle, so the per-core
// attempt counter advances identically and the decision stream stays
// bit-identical.
//
// Stores are NEVER declined. The write-buffer drain relies on the
// invariant that every Store decline is caused by one of the core's own
// in-flight transactions, whose completion callback wakes the core (see
// cpu.Core.drainWriteBuffer). An injected decline has no such callback:
// under wake-set scheduling the core would report WakeNever with a
// pending store — a lost-wakeup deadlock. Per-cycle mode would also
// retry stores on cycles wake-set mode never ticks, diverging the
// decision counters.
type Port struct {
	inner coherence.CorePort
	inj   *Injector
	core  uint64

	attempts uint64 // decision counter across load/RMW/fence admissions
	streak   uint8  // consecutive injected declines of the current op
}

// WrapPort decorates inner with pressure-profile admission declines for
// one core. The wrapper is only installed when PortActive; a disabled
// injector adds nothing to the hot path.
func (in *Injector) WrapPort(core int, inner coherence.CorePort) *Port {
	return &Port{inner: inner, inj: in, core: uint64(core)}
}

// decline rolls the next admission decision; capped so at most
// StallCap consecutive declines hit one op.
func (p *Port) decline() bool {
	p.attempts++
	if p.streak >= p.inj.pressure.StallCap {
		p.streak = 0
		return false
	}
	if p.inj.gate(p.attempts) && uint32(p.inj.draw(sitePort, p.core, p.attempts)%1000) < p.inj.pressure.Rate {
		p.streak++
		return true
	}
	p.streak = 0
	return false
}

// Load implements coherence.CorePort.
func (p *Port) Load(now sim.Cycle, addr uint64, cb func(val uint64)) bool {
	if p.decline() {
		return false
	}
	return p.inner.Load(now, addr, cb)
}

// Store implements coherence.CorePort. Stores pass through untouched —
// see the type comment for why declining one is a deadlock.
func (p *Port) Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool {
	return p.inner.Store(now, addr, val, cb)
}

// RMW implements coherence.CorePort.
func (p *Port) RMW(now sim.Cycle, addr uint64, f func(old uint64) (uint64, bool), cb func(old uint64)) bool {
	if p.decline() {
		return false
	}
	return p.inner.RMW(now, addr, f, cb)
}

// Fence implements coherence.CorePort.
func (p *Port) Fence(now sim.Cycle, cb func()) bool {
	if p.decline() {
		return false
	}
	return p.inner.Fence(now, cb)
}
