package faults

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/coherence"
	"repro/internal/sim"
)

func parseOne(t *testing.T, spec string) Profile {
	t.Helper()
	ps, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	if len(ps) != 1 {
		t.Fatalf("Parse(%q) = %d components, want 1", spec, len(ps))
	}
	return ps[0]
}

func TestParseDefaults(t *testing.T) {
	cases := []struct {
		spec string
		want Profile
	}{
		{"jitter", Profile{Name: Jitter, Rate: 200, MaxDelay: 6}},
		{"pressure", Profile{Name: Pressure, Rate: 150, StallCap: 3}},
		{"burst", Profile{Name: Burst, Rate: 125, MaxDelay: 8, WindowLog: 6}},
		{"evict", Profile{Name: Evict, Rate: 40}},
		{"reset-storm", Profile{Name: ResetStorm, Rate: 60}},
		{"victim", Profile{Name: Victim, Rate: 250, MaxDelay: 12}},
	}
	for _, c := range cases {
		if got := parseOne(t, c.spec); got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseParams(t *testing.T) {
	p := parseOne(t, "jitter:rate=500,delay=10")
	if p.Rate != 500 || p.MaxDelay != 10 {
		t.Fatalf("got %+v", p)
	}
	// Out-of-range values clamp instead of erroring (fuzz-friendliness).
	p = parseOne(t, "pressure:rate=99999,cap=0")
	if p.Rate != 1000 || p.StallCap != 1 {
		t.Fatalf("clamping: got %+v", p)
	}
}

func TestParseComposite(t *testing.T) {
	ps, err := Parse("jitter:rate=300+evict:rate=80")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != Jitter || ps[0].Rate != 300 || ps[1].Name != Evict || ps[1].Rate != 80 {
		t.Fatalf("got %+v", ps)
	}
	// Comma separation works too: a bare name token starts a new
	// component, key=val tokens attach to the most recent one.
	ps, err = Parse("burst,rate=400,victim,delay=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Rate != 400 || ps[1].Name != Victim || ps[1].MaxDelay != 3 {
		t.Fatalf("got %+v", ps)
	}
	in, err := New("jitter+victim", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !in.MeshActive() || !in.VictimActive() || in.PortActive() {
		t.Fatalf("composite activity wrong: %+v", in.profs)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "jitter:rate", "jitter:rate=abc", "jitter:frobs=3",
		"jitter+jitter", "rate=5", "evict:window=4", "pressure:delay=3",
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q): expected error", spec)
		}
	}
	if _, err := Parse("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error should name the unknown profile: %v", err)
	}
	// Key errors must name both the profile and the offending key.
	_, err := Parse("jitter+evict:delay=4")
	if err == nil || !strings.Contains(err.Error(), `"evict"`) || !strings.Contains(err.Error(), `"delay"`) {
		t.Fatalf("error should name profile and key: %v", err)
	}
}

// TestMeshDelayDeterministic: two injectors with the same (spec, seed)
// given the same delivery stream produce identical outputs; a different
// seed produces a different stream (with overwhelming probability at
// rate=1000 sample sizes).
func TestMeshDelayDeterministic(t *testing.T) {
	mk := func(seed uint64) *Injector {
		in, err := New("jitter:rate=400,delay=8", seed)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b, c := mk(1), mk(1), mk(2)
	var diff bool
	for i := 0; i < 500; i++ {
		now := sim.Cycle(i)
		at := now + 3
		src := coherence.NodeID(i % 4)
		dst := coherence.NodeID((i + 1) % 4)
		da := a.MeshDelay(now, at, src, dst)
		if db := b.MeshDelay(now, at, src, dst); db != da {
			t.Fatalf("same-seed divergence at %d: %d vs %d", i, da, db)
		}
		if dc := c.MeshDelay(now, at, src, dst); dc != da {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 1 and 2 produced identical delay streams")
	}
}

// TestMeshDelayFIFO: for any delivery stream with non-decreasing
// nominal times on one (src,dst) pair, injected outputs never reorder.
func TestMeshDelayFIFO(t *testing.T) {
	for _, spec := range []string{"jitter:rate=900,delay=32", "burst:rate=900,delay=16,window=4"} {
		check := func(seed uint64, gaps []uint8) bool {
			in, err := New(spec, seed)
			if err != nil {
				return false
			}
			at := sim.Cycle(1)
			last := sim.Cycle(0)
			for _, g := range gaps {
				at += sim.Cycle(g % 8)
				out := in.MeshDelay(at-1, at, 3, 7)
				if out < at || out < last {
					return false
				}
				last = out
			}
			return true
		}
		if err := quick.Check(check, nil); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

// TestMeshDelayBounded: jitter never adds more than MaxDelay beyond the
// FIFO clamp.
func TestMeshDelayBounded(t *testing.T) {
	in, err := New("jitter:rate=1000,delay=5", 9)
	if err != nil {
		t.Fatal(err)
	}
	last := sim.Cycle(0)
	for i := 0; i < 200; i++ {
		at := sim.Cycle(10 * (i + 1))
		out := in.MeshDelay(at-1, at, 0, 1)
		hi := at + 5
		if last > hi {
			hi = last
		}
		if out < at || out > hi {
			t.Fatalf("delivery %d: out=%d not in [%d, %d]", i, out, at, hi)
		}
		last = out
	}
}

// TestTxStallBudget: one message is never stalled more than StallCap
// times, even at rate 1000.
func TestTxStallBudget(t *testing.T) {
	in, err := New("pressure:rate=1000,cap=3", 5)
	if err != nil {
		t.Fatal(err)
	}
	hook := in.TxStall(0)
	var m coherence.Msg
	stalls := 0
	for i := 0; i < 50; i++ {
		if hook(&m) {
			stalls++
		}
	}
	if stalls != 3 {
		t.Fatalf("stalls = %d, want exactly StallCap=3 at rate 1000", stalls)
	}
}

// fakePort accepts everything and counts calls.
type fakePort struct{ loads, stores, rmws, fences int }

func (f *fakePort) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	f.loads++
	cb(0)
	return true
}
func (f *fakePort) Store(now sim.Cycle, addr, val uint64, cb func()) bool {
	f.stores++
	cb()
	return true
}
func (f *fakePort) RMW(now sim.Cycle, addr uint64, fn func(uint64) (uint64, bool), cb func(uint64)) bool {
	f.rmws++
	cb(0)
	return true
}
func (f *fakePort) Fence(now sim.Cycle, cb func()) bool {
	f.fences++
	cb()
	return true
}

// TestPortNeverDeclinesStores: the pressure wrapper must pass stores
// through untouched (see the Port type comment for the deadlock
// argument) and must accept any load within StallCap+1 attempts.
func TestPortNeverDeclinesStores(t *testing.T) {
	in, err := New("pressure:rate=1000,cap=2", 11)
	if err != nil {
		t.Fatal(err)
	}
	inner := &fakePort{}
	p := in.WrapPort(0, inner)
	for i := 0; i < 100; i++ {
		if !p.Store(sim.Cycle(i), 8, 1, func() {}) {
			t.Fatal("store declined")
		}
	}
	if inner.stores != 100 {
		t.Fatalf("stores reaching inner = %d, want 100", inner.stores)
	}
	// rate=1000 declines every roll, so each load takes exactly
	// StallCap declines then a forced accept.
	accepted := 0
	attempts := 0
	for accepted < 10 {
		attempts++
		if attempts > 10*(2+1) {
			t.Fatalf("loads starved: %d accepts in %d attempts", accepted, attempts)
		}
		if p.Load(sim.Cycle(attempts), 16, func(uint64) {}) {
			accepted++
		}
	}
	if inner.loads != accepted {
		t.Fatalf("inner.loads = %d, want %d", inner.loads, accepted)
	}
}

// TestDirectoryHooksDeterministic: the evict / reset-storm / victim
// hooks are pure functions of (seed, node, counter) — same inputs, same
// decision stream; different seeds diverge.
func TestDirectoryHooksDeterministic(t *testing.T) {
	mk := func(seed uint64) *Injector {
		in, err := New("evict:rate=500+reset-storm:rate=500+victim:rate=500,delay=8", seed)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b, c := mk(4), mk(4), mk(5)
	ea, eb, ec := a.EvictHook(1), b.EvictHook(1), c.EvictHook(1)
	ra, rb := a.ResetHook(3), b.ResetHook(3)
	da, db := a.AckDelay(2), b.AckDelay(2)
	var diff bool
	for i := 0; i < 500; i++ {
		va := ea()
		if vb := eb(); vb != va {
			t.Fatalf("evict decision %d diverged", i)
		}
		if ec() != va {
			diff = true
		}
		if ra() != rb() {
			t.Fatalf("reset decision %d diverged", i)
		}
		if da() != db() {
			t.Fatalf("ack-delay decision %d diverged", i)
		}
	}
	if !diff {
		t.Fatal("seeds 4 and 5 produced identical evict streams")
	}
}

// TestAckDelayBounded: victim ack delays stay in [0, MaxDelay].
func TestAckDelayBounded(t *testing.T) {
	in, err := New("victim:rate=1000,delay=5", 7)
	if err != nil {
		t.Fatal(err)
	}
	d := in.AckDelay(0)
	hit := false
	for i := 0; i < 300; i++ {
		v := d()
		if v < 1 || v > 5 {
			t.Fatalf("decision %d: delay %d outside [1,5] at rate 1000", i, v)
		}
		hit = true
	}
	if !hit {
		t.Fatal("no delays at rate 1000")
	}
}

// TestWindowGate: SetWindow restricts injection to counter values in
// [lo, hi); outside it, decisions behave as if they rolled "no fault",
// and MaxCounter still tracks the full decision space.
func TestWindowGate(t *testing.T) {
	mk := func() *Injector {
		in, err := New("evict:rate=1000", 9)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	full := mk()
	full.TrackDecisions()
	h := full.EvictHook(0)
	for i := 0; i < 100; i++ {
		if !h() {
			t.Fatalf("decision %d: rate=1000 should always fire unwindowed", i)
		}
	}
	if full.MaxCounter() != 100 {
		t.Fatalf("MaxCounter = %d, want 100", full.MaxCounter())
	}

	win := mk()
	win.SetWindow(10, 20)
	win.TrackDecisions()
	h = win.EvictHook(0)
	fired := 0
	for i := 0; i < 100; i++ {
		if h() {
			fired++
		}
	}
	// Counters start at 1, so [10,20) admits counters 10..19.
	if fired != 10 {
		t.Fatalf("windowed fires = %d, want 10", fired)
	}
	if win.MaxCounter() != 100 {
		t.Fatalf("windowed MaxCounter = %d, want 100 (tracking ignores the window)", win.MaxCounter())
	}

	// hi=0 means unbounded.
	open := mk()
	open.SetWindow(0, 0)
	h = open.EvictHook(0)
	if !h() {
		t.Fatal("SetWindow(0, 0) should leave injection unbounded")
	}
}

// TestPortDeterministic: same (seed, core) port wrappers make identical
// decline decisions.
func TestPortDeterministic(t *testing.T) {
	mk := func(seed uint64) *Port {
		in, err := New("pressure:rate=300", seed)
		if err != nil {
			t.Fatal(err)
		}
		return in.WrapPort(2, &fakePort{})
	}
	a, b := mk(3), mk(3)
	for i := 0; i < 400; i++ {
		ra := a.Load(sim.Cycle(i), 8, func(uint64) {})
		rb := b.Load(sim.Cycle(i), 8, func(uint64) {})
		if ra != rb {
			t.Fatalf("decision %d diverged", i)
		}
	}
}
