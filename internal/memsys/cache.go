// Package memsys provides the storage substrate: generic set-associative
// cache arrays with LRU replacement (holding functional data blocks, so
// stale reads return genuinely stale values), and the backing memory
// model with the paper's 120–230 cycle latency band.
package memsys

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Way is one cache way: the tag/valid/LRU bookkeeping plus a functional
// data block and protocol-specific metadata of type L. The data block
// is embedded, not sliced from a shared array: as long as L is
// pointer-free the whole way array is too, so the GC never scans cache
// storage — at 64+ cores that storage is most of the live heap, and
// mark-phase scans of per-way Data slice headers were a top-five
// profile entry. Tag+data colocation also puts the block on the same
// cache lines the tag match just pulled in.
type Way[L any] struct {
	Tag     uint64
	Valid   bool
	Busy    bool // a transaction holds this line (blocking directory / MSHR)
	lastUse int64
	Data    [coherence.BlockSize]byte
	Meta    L
}

// Cache is a set-associative array indexed by block address. Storage is
// array-backed in chunks of contiguous sets: within a chunk every way
// lives in one slice and every data block is a window into one byte
// array, so walking a set touches adjacent memory instead of chasing
// per-way pointers. Chunks materialize on first install: a 256-tile
// machine builds hundreds of MB of nominal cache capacity, and eagerly
// zeroing it dominated large-machine profiles (41% of a 64-core run in
// memclr) while most sets were never touched. Lookups into an
// unmaterialized chunk are misses by construction — laziness is
// invisible to replacement order and simulation results.
type Cache[L any] struct {
	chunks     []cacheChunk[L]
	setMask    uint64
	perSet     int
	numSets    int
	chunkShift uint // set index >> chunkShift = chunk index
	chunkSets  int  // sets per chunk (power of two)
	useClock   int64
}

// cacheChunk is one lazily-allocated group of contiguous sets; ways is
// nil until the first Victim call targets the chunk.
type cacheChunk[L any] struct {
	ways []Way[L] // set-major within the chunk, data embedded per way
}

// chunkTargetSets bounds how many sets materialize per chunk: 64 sets
// of a 16-way L2 tile is 64KB of data — big enough to amortize the
// allocation, small enough that a tile touching one hot page doesn't
// pay for the whole megabyte.
const chunkTargetSets = 64

// NewCache builds a cache of sizeBytes capacity with the given
// associativity, 64-byte blocks. Only the chunk directory is allocated
// here; way and data storage materializes per chunk on first install.
func NewCache[L any](sizeBytes, ways int) *Cache[L] {
	if sizeBytes <= 0 || ways <= 0 {
		panic("memsys: invalid cache geometry")
	}
	blocks := sizeBytes / coherence.BlockSize
	numSets := blocks / ways
	if numSets == 0 {
		numSets = 1
	}
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("memsys: set count %d not a power of two", numSets))
	}
	chunkSets := chunkTargetSets
	if chunkSets > numSets {
		chunkSets = numSets
	}
	shift := uint(0)
	for 1<<shift < chunkSets {
		shift++
	}
	return &Cache[L]{
		chunks:     make([]cacheChunk[L], numSets/chunkSets),
		setMask:    uint64(numSets - 1),
		perSet:     ways,
		numSets:    numSets,
		chunkShift: shift,
		chunkSets:  chunkSets,
	}
}

// Prewarm materializes every chunk up front. Timing harnesses call it
// (via the machine) before starting the clock, so first-touch
// allocation cost lands in setup instead of the measured run; sparse
// workloads and conformance tests skip it and keep the lazy footprint.
func (c *Cache[L]) Prewarm() {
	for i := range c.chunks {
		if c.chunks[i].ways == nil {
			c.chunks[i].ways = make([]Way[L], c.chunkSets*c.perSet)
		}
	}
}

// Sets reports the number of sets.
func (c *Cache[L]) Sets() int { return c.numSets }

// WaysPerSet reports the associativity.
func (c *Cache[L]) WaysPerSet() int { return c.perSet }

// setFor returns the ways of addr's set, or nil when the owning chunk
// has never been installed into (every lookup outcome on a nil set —
// miss, no victim conflict, nothing busy — matches an all-invalid set).
func (c *Cache[L]) setFor(addr uint64) []Way[L] {
	s := int((addr >> coherence.BlockShift) & c.setMask)
	ch := &c.chunks[s>>c.chunkShift]
	if ch.ways == nil {
		return nil
	}
	base := (s & (c.chunkSets - 1)) * c.perSet
	return ch.ways[base : base+c.perSet]
}

// setForAlloc is setFor on the install path: it materializes the
// owning chunk when absent.
func (c *Cache[L]) setForAlloc(addr uint64) []Way[L] {
	s := int((addr >> coherence.BlockShift) & c.setMask)
	ch := &c.chunks[s>>c.chunkShift]
	if ch.ways == nil {
		ch.ways = make([]Way[L], c.chunkSets*c.perSet)
	}
	base := (s & (c.chunkSets - 1)) * c.perSet
	return ch.ways[base : base+c.perSet]
}

// Lookup returns the way holding addr and refreshes its LRU state, or
// nil on miss.
func (c *Cache[L]) Lookup(addr uint64) *Way[L] {
	addr = coherence.BlockAddr(addr)
	set := c.setFor(addr)
	for i := range set {
		if w := &set[i]; w.Valid && w.Tag == addr {
			c.useClock++
			w.lastUse = c.useClock
			return w
		}
	}
	return nil
}

// Peek returns the way holding addr without touching LRU state.
func (c *Cache[L]) Peek(addr uint64) *Way[L] {
	addr = coherence.BlockAddr(addr)
	set := c.setFor(addr)
	for i := range set {
		if w := &set[i]; w.Valid && w.Tag == addr {
			return w
		}
	}
	return nil
}

// Victim returns the way to allocate addr into: an invalid way if one
// exists, otherwise the least recently used non-busy way. It returns nil
// if every way in the set is busy (the caller must retry later).
// The returned way may still hold a valid line that needs eviction.
func (c *Cache[L]) Victim(addr uint64) *Way[L] {
	var lru *Way[L]
	set := c.setForAlloc(coherence.BlockAddr(addr))
	for i := range set {
		w := &set[i]
		if w.Busy {
			continue
		}
		if !w.Valid {
			return w
		}
		if lru == nil || w.lastUse < lru.lastUse {
			lru = w
		}
	}
	return lru
}

// Install claims way for addr, resetting data and metadata to zero
// values. The caller is responsible for having evicted any prior line.
func (c *Cache[L]) Install(w *Way[L], addr uint64) {
	w.Tag = coherence.BlockAddr(addr)
	w.Valid = true
	w.Busy = false
	w.Data = [coherence.BlockSize]byte{}
	var zero L
	w.Meta = zero
	c.useClock++
	w.lastUse = c.useClock
}

// Invalidate drops the line held by w.
func (c *Cache[L]) Invalidate(w *Way[L]) {
	w.Valid = false
	w.Busy = false
	var zero L
	w.Meta = zero
}

// AnyBusy reports whether any way in addr's set is transaction-busy.
func (c *Cache[L]) AnyBusy(addr uint64) bool {
	set := c.setFor(coherence.BlockAddr(addr))
	for i := range set {
		if set[i].Busy {
			return true
		}
	}
	return false
}

// ForEachValid visits every valid way in deterministic (set, way) order.
func (c *Cache[L]) ForEachValid(fn func(w *Way[L])) {
	for ci := range c.chunks {
		ways := c.chunks[ci].ways
		for i := range ways {
			if ways[i].Valid {
				fn(&ways[i])
			}
		}
	}
}

// CountValid reports the number of valid lines satisfying pred.
func (c *Cache[L]) CountValid(pred func(w *Way[L]) bool) int {
	n := 0
	c.ForEachValid(func(w *Way[L]) {
		if pred(w) {
			n++
		}
	})
	return n
}

// Memory is the off-chip backing store: an infinite sparse block store
// with a deterministic per-address latency in [Base, Base+Spread).
//
// By default all blocks live in one store, which is safe only when a
// single goroutine accesses memory. Interleave splits the store into
// banks keyed by block address; when every bank is accessed by exactly
// one goroutine (the sharded engine maps each block's home tile to one
// shard), accesses stay race-free without locks. Latency is a pure
// function of the address either way.
type Memory struct {
	blocks map[uint64][]byte
	Base   sim.Cycle
	Spread sim.Cycle

	Reads  stats.Counter
	Writes stats.Counter

	banks  []memBank
	bankOf func(blockAddr uint64) int
}

// memBank is one independently-owned slice of the block store, with its
// own access counters so hot-path accounting never crosses goroutines.
type memBank struct {
	blocks map[uint64][]byte
	reads  stats.Counter
	writes stats.Counter
}

// NewMemory builds a memory with the paper's latency band by default
// (120–230 cycles, Table 2).
func NewMemory() *Memory {
	m := &Memory{
		blocks: make(map[uint64][]byte),
		Base:   120,
		Spread: 110,
	}
	m.Reads.SetName("mem.reads")
	m.Writes.SetName("mem.writes")
	return m
}

// Interleave splits the block store into banks routed by bankOf (a pure
// function of the block address). Existing blocks migrate to their
// banks, so it may be called after initial state is written.
func (m *Memory) Interleave(banks int, bankOf func(blockAddr uint64) int) {
	if banks <= 0 {
		panic("memsys: Interleave needs at least one bank")
	}
	m.banks = make([]memBank, banks)
	for i := range m.banks {
		m.banks[i].blocks = make(map[uint64][]byte)
		m.banks[i].reads.SetName(fmt.Sprintf("mem.bank%d.reads", i))
		m.banks[i].writes.SetName(fmt.Sprintf("mem.bank%d.writes", i))
	}
	m.bankOf = bankOf
	for blk, b := range m.blocks {
		m.banks[bankOf(blk)].blocks[blk] = b
	}
	m.blocks = make(map[uint64][]byte)
}

// store returns the block map and counters owning blk.
func (m *Memory) store(blk uint64) (map[uint64][]byte, *stats.Counter, *stats.Counter) {
	if m.bankOf == nil {
		return m.blocks, &m.Reads, &m.Writes
	}
	bk := &m.banks[m.bankOf(blk)]
	return bk.blocks, &bk.reads, &bk.writes
}

// Stats reports total block reads and writes across all banks.
func (m *Memory) Stats() (reads, writes int64) {
	reads, writes = m.Reads.Value(), m.Writes.Value()
	for i := range m.banks {
		reads += m.banks[i].reads.Value()
		writes += m.banks[i].writes.Value()
	}
	return
}

// Counters returns every access counter (top-level plus per-bank) for
// metrics-registry registration.
func (m *Memory) Counters() []*stats.Counter {
	cs := []*stats.Counter{&m.Reads, &m.Writes}
	for i := range m.banks {
		cs = append(cs, &m.banks[i].reads, &m.banks[i].writes)
	}
	return cs
}

// Latency reports the deterministic access latency for addr.
func (m *Memory) Latency(addr uint64) sim.Cycle {
	if m.Spread <= 0 {
		return m.Base
	}
	h := (addr >> coherence.BlockShift) * 0x9E3779B97F4A7C15
	return m.Base + sim.Cycle(h%uint64(m.Spread))
}

// ReadBlock copies the block at addr into dst (allocating zeroes for
// untouched memory).
func (m *Memory) ReadBlock(addr uint64, dst []byte) {
	addr = coherence.BlockAddr(addr)
	blocks, reads, _ := m.store(addr)
	reads.Inc()
	if b, ok := blocks[addr]; ok {
		copy(dst, b)
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

// WriteBlock stores a copy of src as the block at addr.
func (m *Memory) WriteBlock(addr uint64, src []byte) {
	addr = coherence.BlockAddr(addr)
	blocks, _, writes := m.store(addr)
	writes.Inc()
	b, ok := blocks[addr]
	if !ok {
		b = make([]byte, coherence.BlockSize)
		blocks[addr] = b
	}
	copy(b, src)
}

// ReadWord returns the 8-byte little-endian word at addr (8-aligned).
func (m *Memory) ReadWord(addr uint64) uint64 {
	blk := coherence.BlockAddr(addr)
	blocks, _, _ := m.store(blk)
	b, ok := blocks[blk]
	if !ok {
		return 0
	}
	return GetWord(b, addr)
}

// WriteWord stores an 8-byte little-endian word at addr (8-aligned),
// bypassing latency modelling; used for initial state setup.
func (m *Memory) WriteWord(addr uint64, v uint64) {
	blk := coherence.BlockAddr(addr)
	blocks, _, _ := m.store(blk)
	b, ok := blocks[blk]
	if !ok {
		b = make([]byte, coherence.BlockSize)
		blocks[blk] = b
	}
	PutWord(b, addr, v)
}

// GetWord reads the 8-byte word containing addr from block data.
func GetWord(block []byte, addr uint64) uint64 {
	off := addr & (coherence.BlockSize - 1) &^ 7
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(block[off+uint64(i)]) << (8 * i)
	}
	return v
}

// PutWord writes the 8-byte word containing addr into block data.
func PutWord(block []byte, addr uint64, v uint64) {
	off := addr & (coherence.BlockSize - 1) &^ 7
	for i := 0; i < 8; i++ {
		block[off+uint64(i)] = byte(v >> (8 * i))
	}
}
