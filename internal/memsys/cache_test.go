package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/coherence"
)

type meta struct{ tag int }

func TestCacheGeometry(t *testing.T) {
	c := NewCache[meta](32<<10, 4) // 32KB, 4-way, 64B lines
	if c.Sets() != 128 || c.WaysPerSet() != 4 {
		t.Fatalf("sets=%d ways=%d, want 128/4", c.Sets(), c.WaysPerSet())
	}
}

func TestCacheNonPow2SetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache[meta](3*64*4, 4) // 3 sets
}

func TestLookupMissThenInstall(t *testing.T) {
	c := NewCache[meta](1<<10, 2)
	const addr = 0x1040
	if c.Lookup(addr) != nil {
		t.Fatal("unexpected hit in empty cache")
	}
	w := c.Victim(addr)
	if w == nil || w.Valid {
		t.Fatal("victim should be an invalid way")
	}
	c.Install(w, addr)
	if got := c.Lookup(addr); got != w {
		t.Fatal("lookup after install failed")
	}
	if got := c.Lookup(addr + 8); got != w {
		t.Fatal("same-block offset should hit the same way")
	}
	if c.Lookup(addr+64) != nil {
		t.Fatal("adjacent block should miss")
	}
}

func TestInstallResetsState(t *testing.T) {
	c := NewCache[meta](1<<10, 2)
	w := c.Victim(0x40)
	w.Data[0] = 0xAB
	w.Meta.tag = 7
	w.Busy = true
	c.Install(w, 0x40)
	if w.Data[0] != 0 || w.Meta.tag != 0 || w.Busy {
		t.Fatal("install did not reset way state")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := NewCache[meta](2*64, 2) // one set, two ways
	a := c.Victim(0x000)
	c.Install(a, 0x000)
	b := c.Victim(0x040) // maps to the same single set
	c.Install(b, 0x040)
	// Touch a, making b the LRU.
	c.Lookup(0x000)
	v := c.Victim(0x080)
	if v != b {
		t.Fatal("victim should be the least recently used way")
	}
	// Touch b (via lookup), now a is LRU.
	c.Lookup(0x040)
	if v := c.Victim(0x080); v != a {
		t.Fatal("LRU did not follow the second touch")
	}
}

func TestVictimSkipsBusy(t *testing.T) {
	c := NewCache[meta](2*64, 2)
	a := c.Victim(0x000)
	c.Install(a, 0x000)
	a.Busy = true
	b := c.Victim(0x040)
	c.Install(b, 0x040)
	b.Busy = true
	if c.Victim(0x080) != nil {
		t.Fatal("victim must be nil when every way is busy")
	}
	if !c.AnyBusy(0x080) {
		t.Fatal("AnyBusy should see the busy set")
	}
	b.Busy = false
	if c.Victim(0x080) != b {
		t.Fatal("victim should be the only non-busy way")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewCache[meta](1<<10, 2)
	w := c.Victim(0x40)
	c.Install(w, 0x40)
	w.Meta.tag = 9
	c.Invalidate(w)
	if w.Valid || w.Meta.tag != 0 {
		t.Fatal("invalidate did not clear the way")
	}
	if c.Lookup(0x40) != nil {
		t.Fatal("hit after invalidate")
	}
}

func TestForEachValidAndCount(t *testing.T) {
	c := NewCache[meta](1<<10, 2)
	for i := 0; i < 5; i++ {
		addr := uint64(i * 64)
		w := c.Victim(addr)
		c.Install(w, addr)
		w.Meta.tag = i
	}
	n := 0
	c.ForEachValid(func(w *Way[meta]) { n++ })
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
	even := c.CountValid(func(w *Way[meta]) bool { return w.Meta.tag%2 == 0 })
	if even != 3 {
		t.Fatalf("count = %d, want 3", even)
	}
}

func TestWordRoundTrip(t *testing.T) {
	check := func(addr uint64, val uint64) bool {
		block := make([]byte, coherence.BlockSize)
		a := addr &^ 7 // 8-aligned
		PutWord(block, a, val)
		return GetWord(block, a) == val
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordsDoNotOverlap(t *testing.T) {
	block := make([]byte, coherence.BlockSize)
	for i := uint64(0); i < 8; i++ {
		PutWord(block, i*8, i+1)
	}
	for i := uint64(0); i < 8; i++ {
		if got := GetWord(block, i*8); got != i+1 {
			t.Fatalf("word %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestMemoryReadWriteBlock(t *testing.T) {
	m := NewMemory()
	src := make([]byte, coherence.BlockSize)
	for i := range src {
		src[i] = byte(i)
	}
	m.WriteBlock(0x1000, src)
	dst := make([]byte, coherence.BlockSize)
	m.ReadBlock(0x1000, dst)
	for i := range dst {
		if dst[i] != byte(i) {
			t.Fatal("block round trip failed")
		}
	}
	// Untouched memory reads as zero.
	m.ReadBlock(0x2000, dst)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("untouched memory not zero")
		}
	}
	if m.Reads.Value() != 2 || m.Writes.Value() != 1 {
		t.Fatalf("reads=%d writes=%d", m.Reads.Value(), m.Writes.Value())
	}
}

func TestMemoryWords(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1008, 42)
	if got := m.ReadWord(0x1008); got != 42 {
		t.Fatalf("word = %d", got)
	}
	if got := m.ReadWord(0x1000); got != 0 {
		t.Fatalf("neighbor word = %d, want 0", got)
	}
}

func TestMemoryLatencyBand(t *testing.T) {
	m := NewMemory() // 120-230 per Table 2
	seen := map[int64]bool{}
	for a := uint64(0); a < 256; a++ {
		lat := int64(m.Latency(a * 64))
		if lat < 120 || lat >= 230 {
			t.Fatalf("latency %d outside [120,230)", lat)
		}
		seen[lat] = true
		if m.Latency(a*64) != m.Latency(a*64) {
			t.Fatal("latency not deterministic")
		}
	}
	if len(seen) < 10 {
		t.Fatalf("latency band has only %d distinct values", len(seen))
	}
}
