// Package benchfmt defines the BENCH_*.json simulator-throughput
// snapshot schema, shared by its writer (`tsocc-bench -perf`) and its
// reader (`tsocc-benchdiff`). Keeping one definition means a field
// rename cannot silently decode to zero values on the side that gates
// CI regressions.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Host records the measuring machine. Absolute ns/cycle numbers only
// transfer within one host; the engine-mode speedup ratios are
// meaningful anywhere.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// ChecksEnabled records whether runtime invariant oracles
	// (config.System.Checks) were active during measurement; checked
	// numbers are not comparable against unchecked baselines.
	ChecksEnabled bool `json:"checks_enabled"`
}

// Record is one benchmark × protocol measurement. Three configurations
// are timed: the per-cycle conformance engine, the event engine with
// the instruction-at-a-time core, and the event engine with the
// batched core (the production default, which fills the headline
// fields).
type Record struct {
	Benchmark       string  `json:"benchmark"`
	Protocol        string  `json:"protocol"`
	Cores           int     `json:"cores"`
	SimCycles       int64   `json:"sim_cycles"`
	WallNsPerCycle  float64 `json:"wall_ns_percycle_engine"`
	WallNsUnbatched float64 `json:"wall_ns_event_unbatched"`
	WallNsEvent     float64 `json:"wall_ns_event_engine"`
	CyclesPerSec    float64 `json:"sim_cycles_per_sec"`
	HostNsPerCycle  float64 `json:"host_ns_per_sim_cycle"`
	SkippedPct      float64 `json:"idle_skipped_pct"`
	Speedup         float64 `json:"event_vs_percycle_speedup"`
	BatchedSpeedup  float64 `json:"batched_vs_unbatched_speedup"`

	// Sharded-engine throughput: the batched event configuration re-timed
	// with the wake-set engine sharded across goroutines. Shards records
	// the shard count the parallel leg ran with, GOMAXPROCS the per-record
	// cap in effect while timing it (the Host value can differ when a
	// snapshot merges runs), and ParallelSpeedup the wall-time ratio
	// serial/parallel — meaningful only when GOMAXPROCS >= Shards. Zero
	// values mean the parallel leg was not timed (pre-PR-7 snapshot).
	Shards          int     `json:"shards,omitempty"`
	GOMAXPROCS      int     `json:"gomaxprocs,omitempty"`
	WallNsParallel  float64 `json:"wall_ns_parallel_engine,omitempty"`
	ParallelSpeedup float64 `json:"parallel_vs_serial_speedup,omitempty"`

	// Trace-subsystem throughput: the benchmark is recorded once, then
	// its trace is replayed (event engine) and round-tripped through
	// the codec.
	TraceOps          int64   `json:"trace_ops"`
	TraceBytesPerOp   float64 `json:"trace_bytes_per_op"`
	TraceReplayOpsSec float64 `json:"trace_replay_ops_per_sec"`
	TraceCodecMBps    float64 `json:"trace_codec_mb_per_sec"`

	// Observability series, measured on one extra metrics-armed run of
	// the batched event configuration (simulated-time quantities, so
	// they transfer across hosts). Zero values mean the snapshot
	// predates the observability layer (pre-PR-9); tsocc-benchdiff
	// skips the comparison rather than reporting a regression to zero.
	TxLatencyMean     float64 `json:"tx_latency_mean_cycles,omitempty"`
	L1MissLatencyMean float64 `json:"l1_miss_latency_mean_cycles,omitempty"`
	StallCycles       int64   `json:"stall_cycles_total,omitempty"`
}

// ScalingPoint is one sample of the scaling-curve leg: a benchmark ×
// protocol cell re-measured at a given core count (the Large presets'
// Table 2 per-tile shape). The curve answers "how does host-ns per
// simulated cycle grow with machine size" — flat is the goal — so the
// essential fields are Cores and the per-engine wall numbers; the
// sharded column is present only when the leg ran with >1 shard.
type ScalingPoint struct {
	Benchmark      string  `json:"benchmark"`
	Protocol       string  `json:"protocol"`
	Cores          int     `json:"cores"`
	SimCycles      int64   `json:"sim_cycles"`
	WallNsPerCycle float64 `json:"wall_ns_percycle_engine"`
	WallNsEvent    float64 `json:"wall_ns_event_engine"`
	Speedup        float64 `json:"event_vs_percycle_speedup"`
	Shards         int     `json:"shards,omitempty"`
	GOMAXPROCS     int     `json:"gomaxprocs,omitempty"`
	WallNsParallel float64 `json:"wall_ns_parallel_engine,omitempty"`
}

// Snapshot is the -perf output document. (Snapshots before PR 5 were a
// bare Record array; Load reads both shapes. Scaling arrived in PR 10
// and is empty in older snapshots.)
type Snapshot struct {
	Host    Host           `json:"host"`
	Results []Record       `json:"results"`
	Scaling []ScalingPoint `json:"scaling,omitempty"`
}

// Key names a record within a snapshot.
func (r Record) Key() string { return r.Benchmark + "/" + r.Protocol }

// Load reads a snapshot file in either shape: the current
// {host, results} document or the legacy bare record array. The shape
// is decided by the document's top-level JSON type, so an empty
// results array is still a valid (empty) snapshot.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			var s Snapshot
			if err := json.Unmarshal(data, &s); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return &s, nil
		case '[':
			var recs []Record
			if err := json.Unmarshal(data, &recs); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return &Snapshot{Results: recs}, nil
		default:
			return nil, fmt.Errorf("%s: not a perf snapshot (top-level %q)", path, b)
		}
	}
	return nil, fmt.Errorf("%s: empty file", path)
}
