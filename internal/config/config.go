// Package config defines the system parameters (the paper's Table 2) and
// the protocol configuration presets evaluated in the paper (§4.2),
// using the paper's TSO-CC-<Bmaxacc>-<Bts>-<Bwg> naming convention.
package config

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// System holds the CMP parameters (Table 2 equivalents).
type System struct {
	Cores int

	L1Size int // bytes, private data cache per core
	L1Ways int

	L2TileSize int // bytes per NUCA tile (one tile per core)
	L2Ways     int

	L1HitLat    sim.Cycle // L1 array access latency
	L2AccessLat sim.Cycle // L2 tile array access latency (network adds the rest)

	MemBase   sim.Cycle // memory latency band start
	MemSpread sim.Cycle // band width

	WriteBuffer int // FIFO entries per core
	MeshRows    int // 0 = auto

	MaxCycles sim.Cycle // simulation safety limit

	// PerCycleEngine forces the engine's per-cycle conformance mode
	// instead of event-driven idle-skip scheduling. Both modes produce
	// bit-identical results; per-cycle exists as the A/B baseline.
	PerCycleEngine bool

	// BatchedCore lets each core retire straight-line runs of
	// register/branch instructions as a single batch per tick, stalling
	// over the cycles the run would have occupied so the idle-skip
	// engine can leap them. Memory ops, atomics, fences, pauses and
	// write-buffer drains remain cycle-exact boundaries, so results are
	// bit-identical either way; the toggle exists as the A/B conformance
	// baseline. All preset constructors default it on.
	BatchedCore bool

	// TraceOut, when non-nil, receives one TraceEvent per retired memory
	// operation from every core (see trace.Recorder). Capture does not
	// perturb the simulation — recorded runs are bit-identical to
	// unrecorded ones — and a nil sink costs a single predictable branch
	// per retired instruction. The capture deltas are identical across
	// engine modes and core models, so the same workload records the
	// same trace under every conformance combination.
	TraceOut TraceSink

	// FaultProfile selects a deterministic fault-injection profile
	// ("jitter", "pressure", "burst", optionally parameterized — see
	// internal/faults.Parse). Empty disables injection entirely: no
	// hooks are installed and the hot paths are untouched. For a fixed
	// (FaultProfile, FaultSeed) pair, injected runs remain bit-identical
	// across engine mode, core batching, and trace replay.
	FaultProfile string

	// FaultSeed seeds the fault injector's decision hash. Independent of
	// the workload seed so the same program can be swept across fault
	// schedules.
	FaultSeed uint64

	// FaultFrom/FaultUntil bound the injector's decision-counter window
	// [FaultFrom, FaultUntil): decisions outside it never fire, while the
	// hash streams stay untouched, so narrowing the window isolates which
	// injected faults matter without perturbing the others' draws. Both
	// zero (the default) means unbounded. Used by the violation shrinker
	// (tsocc-sim -shrink) to bisect a failing run down to a minimal
	// fault window.
	FaultFrom  uint64
	FaultUntil uint64

	// Checks enables the runtime invariant oracles (internal/check):
	// SWMR, data-value, and TSO-ordering checking at every core port.
	// Off by default; checking observes but never perturbs the
	// simulation, so checked runs stay bit-identical to unchecked ones.
	Checks bool

	// Obs, when non-nil, arms the observability layer (internal/obs):
	// the metrics registry, the Chrome-trace timeline sink, and pprof
	// labels, per its fields. Observation never perturbs the
	// simulation — obs-on runs are bit-identical to obs-off runs
	// across every engine mode and shard count — and a nil Obs leaves
	// the hot paths untouched (0 allocs/op). The field is excluded
	// from trace metadata: sinks are per-run, not part of geometry.
	Obs *obs.Obs `json:"-"`

	// Shards selects the parallel wake-set engine: the system's tiles
	// (core + L1 + directory slice) are partitioned contiguously across
	// this many goroutines, each running the wake-set scheduler locally
	// and synchronizing at conservative-lookahead epoch barriers (the
	// minimum cross-tile mesh latency). Cross-shard messages are merged
	// at the barrier in a deterministic order, so sharded runs are
	// bit-identical to single-threaded ones. 0 or 1 selects today's
	// single-threaded engine; values above Cores clamp to Cores. The
	// per-cycle conformance engine and the invariant oracles are
	// single-threaded referees: PerCycleEngine or Checks force the
	// effective shard count back to 1.
	Shards int
}

// Table2 returns the paper's 32-core configuration.
func Table2() System {
	return System{
		Cores:       32,
		L1Size:      32 << 10,
		L1Ways:      4,
		L2TileSize:  1 << 20,
		L2Ways:      16,
		L1HitLat:    3,
		L2AccessLat: 12,
		MemBase:     120,
		MemSpread:   110,
		WriteBuffer: 32,
		MeshRows:    4,
		MaxCycles:   200_000_000,
		BatchedCore: true,
	}
}

// Scaled returns a Table2-shaped system with a different core count
// (used for the storage sweep and small functional tests).
func Scaled(cores int) System {
	s := Table2()
	s.Cores = cores
	s.MeshRows = 0
	return s
}

// MaxCores bounds the machine sizes Validate accepts. It matches the
// widest fixed-width directory sharing vector in the tree
// (coherence.CoreSet); TSO-CC itself has no structural cap, but every
// harness validates configurations before choosing a protocol, so the
// bound is enforced uniformly.
const MaxCores = 256

// Large returns a Table2-shaped system scaled to a large tiled machine:
// same per-tile cache geometry and latencies, auto-factorized mesh, and
// a raised cycle ceiling for the longer runs hundreds of cores produce.
func Large(cores int) System {
	s := Table2()
	s.Cores = cores
	s.MeshRows = 0
	s.MaxCycles = 500_000_000
	return s
}

// Large64 is the 64-core (8x8 mesh) scaling preset.
func Large64() System { return Large(64) }

// Large128 is the 128-core scaling preset.
func Large128() System { return Large(128) }

// Large256 is the 256-core (16x16 mesh) scaling preset.
func Large256() System { return Large(256) }

// Small returns a reduced configuration for unit tests: few cores, tiny
// caches (to exercise evictions), fast memory.
func Small(cores int) System {
	return System{
		Cores:       cores,
		L1Size:      1 << 10, // 16 lines
		L1Ways:      2,
		L2TileSize:  4 << 10, // 64 lines per tile
		L2Ways:      4,
		L1HitLat:    1,
		L2AccessLat: 2,
		MemBase:     20,
		MemSpread:   10,
		WriteBuffer: 8,
		MeshRows:    0,
		MaxCycles:   80_000_000,
		BatchedCore: true,
	}
}

// Validate checks structural sanity, including arbitrary core counts:
// any count in [1, MaxCores] is accepted — non-square counts get a
// near-square (possibly ragged) mesh factorization that XY routing
// handles — while counts beyond the widest directory sharing vector are
// rejected explicitly rather than overflowing at run time. An explicit
// MeshRows must leave at least one column and place every core on the
// grid.
func (s System) Validate() error {
	if s.Cores <= 0 {
		return fmt.Errorf("config: cores must be positive")
	}
	if s.Cores > MaxCores {
		return fmt.Errorf("config: %d cores exceeds the supported maximum of %d (directory sharing-vector width)",
			s.Cores, MaxCores)
	}
	if s.MeshRows < 0 {
		return fmt.Errorf("config: mesh rows must be non-negative (0 = auto)")
	}
	if s.MeshRows > s.Cores {
		return fmt.Errorf("config: %d mesh rows exceed %d cores (empty rows are not routable geometry)",
			s.MeshRows, s.Cores)
	}
	if s.L1Size <= 0 || s.L1Ways <= 0 || s.L2TileSize <= 0 || s.L2Ways <= 0 {
		return fmt.Errorf("config: cache geometry must be positive")
	}
	if s.WriteBuffer <= 0 {
		return fmt.Errorf("config: write buffer must be positive")
	}
	if s.Shards < 0 {
		return fmt.Errorf("config: shards must be non-negative")
	}
	return nil
}

// TSOCC parameterizes the TSO-CC protocol family. The zero value is not
// valid; use a preset or fill every field.
type TSOCC struct {
	// MaxAccBits is Bmaxacc: Shared lines may hit 2^MaxAccBits times
	// before re-requesting from L2. SharedAlwaysMiss (CC-shared-to-L2)
	// overrides it.
	MaxAccBits       int
	SharedAlwaysMiss bool

	// TimestampBits is Bts. 0 disables timestamps entirely (the basic
	// protocol: every remote data response is a potential acquire).
	TimestampBits int
	// WriteGroupBits is Bwg: 2^WriteGroupBits consecutive writes share
	// one timestamp.
	WriteGroupBits int
	// EpochBits sizes the epoch-id used to disambiguate timestamp
	// resets (Bepoch-id, 3 in the paper's storage analysis).
	EpochBits int

	// SharedRO enables the shared read-only optimization (§3.4).
	SharedRO bool
	// TSTableEntries bounds the per-node last-seen timestamp tables
	// (§3.3 allows fewer entries than cores, with an eviction policy).
	// 0 means one entry per possible source (unbounded).
	TSTableEntries int
	// DecayWrites is the timestamp distance after which a Shared line
	// decays to SharedRO (256 writes in the paper).
	DecayWrites uint32
}

// Timestamps reports whether the configuration uses timestamps.
func (c TSOCC) Timestamps() bool { return c.TimestampBits > 0 }

// MaxAccesses reports the Shared-line hit budget (0 = always miss).
func (c TSOCC) MaxAccesses() uint32 {
	if c.SharedAlwaysMiss {
		return 0
	}
	return 1 << uint(c.MaxAccBits)
}

// WriteGroupSize reports how many writes share one timestamp.
func (c TSOCC) WriteGroupSize() uint32 { return 1 << uint(c.WriteGroupBits) }

// TSMax reports the largest usable timestamp value.
func (c TSOCC) TSMax() uint32 {
	bits := c.TimestampBits
	if bits <= 0 {
		return 0
	}
	if bits > 31 {
		bits = 31
	}
	return (1 << uint(bits)) - 1
}

// Presets from §4.2. All include the SharedRO optimization, as the paper
// only evaluates configurations with it.

// CCSharedToL2 removes the sharing list entirely: Shared reads always
// miss to L2. No timestamps, no decay.
func CCSharedToL2() TSOCC {
	return TSOCC{SharedAlwaysMiss: true, SharedRO: true, EpochBits: 3}
}

// Basic is TSO-CC-4-basic: the §3.2 protocol plus SharedRO, without
// transitive reduction (no timestamps).
func Basic() TSOCC {
	return TSOCC{MaxAccBits: 4, SharedRO: true, EpochBits: 3, DecayWrites: 256}
}

// NoReset is TSO-CC-4-noreset: effectively infinite timestamps
// (31 bits, as in the paper's simulator) and write-group size 1.
func NoReset() TSOCC {
	return TSOCC{MaxAccBits: 4, TimestampBits: 31, WriteGroupBits: 0, SharedRO: true,
		EpochBits: 3, DecayWrites: 256}
}

// C12x3 is TSO-CC-4-12-3, the paper's best realistic configuration.
func C12x3() TSOCC {
	return TSOCC{MaxAccBits: 4, TimestampBits: 12, WriteGroupBits: 3, SharedRO: true,
		EpochBits: 3, DecayWrites: 256}
}

// C12x0 is TSO-CC-4-12-0 (write-group size 1).
func C12x0() TSOCC {
	return TSOCC{MaxAccBits: 4, TimestampBits: 12, WriteGroupBits: 0, SharedRO: true,
		EpochBits: 3, DecayWrites: 256}
}

// C9x3 is TSO-CC-4-9-3 (9-bit timestamps).
func C9x3() TSOCC {
	return TSOCC{MaxAccBits: 4, TimestampBits: 9, WriteGroupBits: 3, SharedRO: true,
		EpochBits: 3, DecayWrites: 256}
}

// Presets returns the paper's six evaluated TSO-CC configurations in
// plotting order (§4.2). The protocol registry is seeded from this list,
// so adding a preset here adds it to every harness grid and CLI sweep.
func Presets() []TSOCC {
	return []TSOCC{
		CCSharedToL2(),
		Basic(),
		NoReset(),
		C12x3(),
		C12x0(),
		C9x3(),
	}
}

// Name renders the paper's configuration name.
func (c TSOCC) Name() string {
	switch {
	case c.SharedAlwaysMiss:
		return "CC-shared-to-L2"
	case !c.Timestamps():
		return fmt.Sprintf("TSO-CC-%d-basic", c.MaxAccBits)
	case c.TimestampBits >= 31:
		return fmt.Sprintf("TSO-CC-%d-noreset", c.MaxAccBits)
	default:
		return fmt.Sprintf("TSO-CC-%d-%d-%d", c.MaxAccBits, c.TimestampBits, c.WriteGroupBits)
	}
}
