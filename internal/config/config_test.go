package config

import "testing"

func TestPresetNames(t *testing.T) {
	cases := map[string]TSOCC{
		"CC-shared-to-L2":  CCSharedToL2(),
		"TSO-CC-4-basic":   Basic(),
		"TSO-CC-4-noreset": NoReset(),
		"TSO-CC-4-12-3":    C12x3(),
		"TSO-CC-4-12-0":    C12x0(),
		"TSO-CC-4-9-3":     C9x3(),
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestMaxAccesses(t *testing.T) {
	if CCSharedToL2().MaxAccesses() != 0 {
		t.Fatal("CC-shared-to-L2 must always miss on Shared")
	}
	if got := C12x3().MaxAccesses(); got != 16 {
		t.Fatalf("4-bit access counter allows %d hits, want 16", got)
	}
}

func TestWriteGroupSize(t *testing.T) {
	if C12x3().WriteGroupSize() != 8 {
		t.Fatalf("Bwg=3 group size = %d, want 8", C12x3().WriteGroupSize())
	}
	if C12x0().WriteGroupSize() != 1 {
		t.Fatal("Bwg=0 group size must be 1")
	}
}

func TestTSMax(t *testing.T) {
	if got := C12x3().TSMax(); got != 4095 {
		t.Fatalf("12-bit TSMax = %d", got)
	}
	if got := C9x3().TSMax(); got != 511 {
		t.Fatalf("9-bit TSMax = %d", got)
	}
	if Basic().TSMax() != 0 {
		t.Fatal("basic (no timestamps) TSMax must be 0")
	}
	if got := NoReset().TSMax(); got != (1<<31)-1 {
		t.Fatalf("noreset TSMax = %d", got)
	}
}

func TestTimestampsFlag(t *testing.T) {
	if Basic().Timestamps() || CCSharedToL2().Timestamps() {
		t.Fatal("timestamp-less configs report Timestamps() true")
	}
	if !C12x3().Timestamps() || !NoReset().Timestamps() {
		t.Fatal("timestamped configs report Timestamps() false")
	}
}

func TestAllPresetsUseSharedRO(t *testing.T) {
	// §4.2: every evaluated configuration includes the SharedRO opt.
	for _, c := range []TSOCC{CCSharedToL2(), Basic(), NoReset(), C12x3(), C12x0(), C9x3()} {
		if !c.SharedRO {
			t.Fatalf("%s missing SharedRO", c.Name())
		}
	}
}

func TestTable2Parameters(t *testing.T) {
	s := Table2()
	if s.Cores != 32 {
		t.Fatalf("cores = %d", s.Cores)
	}
	if s.L1Size != 32<<10 || s.L1Ways != 4 {
		t.Fatal("L1 geometry mismatch with Table 2")
	}
	if s.L2TileSize != 1<<20 || s.L2Ways != 16 {
		t.Fatal("L2 geometry mismatch with Table 2")
	}
	if s.L1HitLat != 3 {
		t.Fatal("L1 hit latency mismatch")
	}
	if s.WriteBuffer != 32 {
		t.Fatal("write buffer mismatch")
	}
	if s.MeshRows != 4 {
		t.Fatal("mesh rows mismatch")
	}
	if s.MemBase != 120 || s.MemBase+s.MemSpread != 230 {
		t.Fatal("memory latency band mismatch")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []System{
		{},
		{Cores: 4},
		{Cores: 4, L1Size: 1024, L1Ways: 2, L2TileSize: 4096, L2Ways: 4},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestScaledKeepsShape(t *testing.T) {
	s := Scaled(64)
	if s.Cores != 64 || s.L1Size != Table2().L1Size {
		t.Fatal("Scaled should only change core count")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
