package config

import "testing"

func TestPresetNames(t *testing.T) {
	cases := map[string]TSOCC{
		"CC-shared-to-L2":  CCSharedToL2(),
		"TSO-CC-4-basic":   Basic(),
		"TSO-CC-4-noreset": NoReset(),
		"TSO-CC-4-12-3":    C12x3(),
		"TSO-CC-4-12-0":    C12x0(),
		"TSO-CC-4-9-3":     C9x3(),
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestMaxAccesses(t *testing.T) {
	if CCSharedToL2().MaxAccesses() != 0 {
		t.Fatal("CC-shared-to-L2 must always miss on Shared")
	}
	if got := C12x3().MaxAccesses(); got != 16 {
		t.Fatalf("4-bit access counter allows %d hits, want 16", got)
	}
}

func TestWriteGroupSize(t *testing.T) {
	if C12x3().WriteGroupSize() != 8 {
		t.Fatalf("Bwg=3 group size = %d, want 8", C12x3().WriteGroupSize())
	}
	if C12x0().WriteGroupSize() != 1 {
		t.Fatal("Bwg=0 group size must be 1")
	}
}

func TestTSMax(t *testing.T) {
	if got := C12x3().TSMax(); got != 4095 {
		t.Fatalf("12-bit TSMax = %d", got)
	}
	if got := C9x3().TSMax(); got != 511 {
		t.Fatalf("9-bit TSMax = %d", got)
	}
	if Basic().TSMax() != 0 {
		t.Fatal("basic (no timestamps) TSMax must be 0")
	}
	if got := NoReset().TSMax(); got != (1<<31)-1 {
		t.Fatalf("noreset TSMax = %d", got)
	}
}

func TestTimestampsFlag(t *testing.T) {
	if Basic().Timestamps() || CCSharedToL2().Timestamps() {
		t.Fatal("timestamp-less configs report Timestamps() true")
	}
	if !C12x3().Timestamps() || !NoReset().Timestamps() {
		t.Fatal("timestamped configs report Timestamps() false")
	}
}

func TestAllPresetsUseSharedRO(t *testing.T) {
	// §4.2: every evaluated configuration includes the SharedRO opt.
	for _, c := range []TSOCC{CCSharedToL2(), Basic(), NoReset(), C12x3(), C12x0(), C9x3()} {
		if !c.SharedRO {
			t.Fatalf("%s missing SharedRO", c.Name())
		}
	}
}

func TestTable2Parameters(t *testing.T) {
	s := Table2()
	if s.Cores != 32 {
		t.Fatalf("cores = %d", s.Cores)
	}
	if s.L1Size != 32<<10 || s.L1Ways != 4 {
		t.Fatal("L1 geometry mismatch with Table 2")
	}
	if s.L2TileSize != 1<<20 || s.L2Ways != 16 {
		t.Fatal("L2 geometry mismatch with Table 2")
	}
	if s.L1HitLat != 3 {
		t.Fatal("L1 hit latency mismatch")
	}
	if s.WriteBuffer != 32 {
		t.Fatal("write buffer mismatch")
	}
	if s.MeshRows != 4 {
		t.Fatal("mesh rows mismatch")
	}
	if s.MemBase != 120 || s.MemBase+s.MemSpread != 230 {
		t.Fatal("memory latency band mismatch")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []System{
		{},
		{Cores: 4},
		{Cores: 4, L1Size: 1024, L1Ways: 2, L2TileSize: 4096, L2Ways: 4},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

// TestValidateArbitraryCores: any core count up to MaxCores validates —
// non-square counts included, since the mesh auto-factorizes and XY
// routes ragged grids — while out-of-range counts and impossible mesh
// shapes are rejected with explicit errors.
func TestValidateArbitraryCores(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 5, 7, 10, 12, 13, 48, 63, 64, 96, 100, 128, 200, 255, 256} {
		s := Scaled(cores)
		if err := s.Validate(); err != nil {
			t.Errorf("cores=%d (auto mesh): unexpected validation error: %v", cores, err)
		}
	}
	for _, tc := range []struct{ cores, rows int }{
		{6, 2},  // 2x3 rectangle
		{10, 3}, // ragged 3x4 grid, last row short
		{13, 2}, // prime count on an explicit 2-row grid
	} {
		s := Scaled(tc.cores)
		s.MeshRows = tc.rows
		if err := s.Validate(); err != nil {
			t.Errorf("cores=%d rows=%d: unexpected validation error: %v", tc.cores, tc.rows, err)
		}
	}
	bad := []System{
		func() System { s := Scaled(MaxCores + 1); return s }(),       // beyond sharing-vector width
		func() System { s := Scaled(512); return s }(),                // far beyond
		func() System { s := Scaled(4); s.MeshRows = 5; return s }(),  // more rows than cores
		func() System { s := Scaled(8); s.MeshRows = -1; return s }(), // negative rows
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad case %d (cores=%d rows=%d): expected validation error", i, s.Cores, s.MeshRows)
		}
	}
}

// TestLargePresets: the scaling presets keep Table2's per-tile shape.
func TestLargePresets(t *testing.T) {
	for _, tc := range []struct {
		sys   System
		cores int
	}{
		{Large64(), 64},
		{Large128(), 128},
		{Large256(), 256},
	} {
		if tc.sys.Cores != tc.cores {
			t.Fatalf("preset has %d cores, want %d", tc.sys.Cores, tc.cores)
		}
		if tc.sys.L1Size != Table2().L1Size || tc.sys.L2TileSize != Table2().L2TileSize {
			t.Fatalf("Large(%d) changed per-tile cache geometry", tc.cores)
		}
		if err := tc.sys.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScaledKeepsShape(t *testing.T) {
	s := Scaled(64)
	if s.Cores != 64 || s.L1Size != Table2().L1Size {
		t.Fatal("Scaled should only change core count")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
