package config

// The memory-trace capture contract. The types live in config (rather
// than the trace package itself) so the capture hook in cpu.Core can be
// switched on through System.TraceOut without the cpu package depending
// on the codec: cpu emits TraceEvents, the trace package's Recorder
// consumes them, and nothing else in the simulator knows traces exist.

// TraceOp classifies one captured memory-stream event. The first six are
// the operations a core issues through coherence.CorePort (loads
// including write-buffer-forwarded ones, buffered stores, the three
// atomic flavors, fences); TraceHalt closes a core's stream and carries
// the trailing compute so replay quiesces on the original cycle.
type TraceOp uint8

// Trace event kinds.
const (
	TraceLoad TraceOp = iota
	TraceStore
	TraceRMWAdd
	TraceRMWXchg
	TraceCAS
	TraceFence
	TraceHalt
	NumTraceOps
)

var traceOpNames = [NumTraceOps]string{
	"load", "store", "rmwadd", "rmwxchg", "cas", "fence", "halt",
}

func (op TraceOp) String() string {
	if int(op) < len(traceOpNames) {
		return traceOpNames[op]
	}
	return "traceop(?)"
}

// HasAddr reports whether the event kind carries an address.
func (op TraceOp) HasAddr() bool { return op <= TraceCAS }

// HasVal reports whether the event kind carries a value operand
// (store value, RMW addend/exchange value, CAS expected value).
func (op TraceOp) HasVal() bool { return op >= TraceStore && op <= TraceCAS }

// TraceEvent is one captured memory-stream record. Gap and Instrs are
// the compute-delta encoding that makes replay timing-exact without
// recording every register instruction:
//
//   - Gap is the number of cycles from the previous operation's
//     completion (its retirement for synchronous ops — a buffered store
//     or a forwarded load — or its completion callback for asynchronous
//     ones) to this operation's first issue attempt. The interval covers
//     only core-deterministic work (register runs, branches, pauses), so
//     it is independent of the memory system: a replay core that waits
//     Gap cycles after the previous completion re-issues the op on
//     exactly the original cycle when the coherence stack behaves
//     identically.
//   - Instrs is the number of instructions the core retired since the
//     previous event, including this operation itself, so replay
//     reproduces the Instructions counter exactly.
type TraceEvent struct {
	Core   int
	Op     TraceOp
	Addr   uint64
	Val    uint64 // store value / RMW operand / CAS expected value
	Val2   uint64 // CAS swap value
	Gap    int64
	Instrs int64
}

// TraceSink receives capture events from cores as they retire memory
// operations. Implemented by trace.Recorder. A sink must not retain the
// event beyond the call (it is passed by value, so this is natural) and
// is invoked from the simulation goroutine only.
type TraceSink interface {
	RecordOp(ev TraceEvent)
}
