// Package shrink reduces a failing fault-injected run to a minimal
// reproducer. The fault injector draws every decision from a pure hash
// of (seed, site, counter) and gates firing on a per-site counter
// window [from, until) — narrowing the window masks decisions without
// perturbing any other decision's draw. That makes the failure a
// function of (workload scale, window) alone, so the shrinker can
// bisect both: first the workload length, then the window's upper and
// lower bounds, re-verifying that the reduced tuple still trips the
// same violation kind.
//
// Shrinking is a heuristic on a non-monotone space (masking one fault
// can unmask a different schedule), so every probe that fails with the
// original violation kind is remembered and the best surviving tuple is
// returned — the search never "loses" a reproducer it has already seen.
package shrink

import (
	"errors"
	"fmt"
)

// Outcome classifies one probe run.
type Outcome struct {
	// Failed reports whether the run tripped anything: an oracle
	// violation, a simulator error, or a functional-check failure.
	Failed bool
	// Kind is the failure class used to decide "same violation": the
	// first oracle violation's kind ("swmr", "legality", ...), or
	// "error" / "functional" for non-oracle failures. Empty when the
	// run passed.
	Kind string
	// Detail is a one-line description of the failure (first violation
	// or error text), carried into the final Repro.
	Detail string
	// MaxCounter is the injector's decision-counter high-water mark
	// (faults.Injector.MaxCounter) — the baseline run's value seeds the
	// initial window upper bound.
	MaxCounter uint64
}

// Input configures a shrink search.
type Input struct {
	// Scale is the failing run's workload scale (>= 1).
	Scale int
	// Run executes one probe at the given workload scale and fault
	// window [from, until); until == 0 means unbounded. It must be
	// deterministic: the same arguments always produce the same
	// Outcome.
	Run func(scale int, from, until uint64) Outcome
	// MaxProbes caps the number of Run invocations (0 = default).
	MaxProbes int
}

// Repro is the reduced reproducer.
type Repro struct {
	Scale       int
	From, Until uint64 // counter window; replay with -fault-from/-fault-until
	Kind        string // the violation kind the tuple reproduces
	Detail      string
	Probes      int // total runs spent (baseline + search + verify)
}

const defaultMaxProbes = 96

// Shrink reduces a failing configuration. It returns an error if the
// baseline run does not fail, or if probing exhausts its budget before
// any reproducer is confirmed (the baseline tuple itself always counts
// as one).
func Shrink(in Input) (*Repro, error) {
	if in.Scale < 1 {
		in.Scale = 1
	}
	if in.MaxProbes <= 0 {
		in.MaxProbes = defaultMaxProbes
	}
	s := &search{in: in}

	base := s.probe(in.Scale, 0, 0)
	if !base.Failed {
		return nil, errors.New("shrink: baseline run does not fail; nothing to reduce")
	}
	s.kind = base.Kind
	// Window covering every decision the baseline drew: counters start
	// at 1, so [0, max+1) behaves exactly like the unbounded run.
	until := base.MaxCounter + 1
	s.remember(in.Scale, 0, until, base)

	// Phase 1: halve the workload until it stops failing.
	scale := in.Scale
	for scale > 1 && !s.exhausted() {
		cand := scale / 2
		if out := s.probe(cand, 0, until); s.matches(out) {
			s.remember(cand, 0, until, out)
			scale = cand
		} else {
			break
		}
	}

	// Phase 2: bisect the window's upper bound down.
	from, lo, hi := uint64(0), uint64(1), until
	for lo < hi && !s.exhausted() {
		mid := lo + (hi-lo)/2
		if out := s.probe(scale, from, mid); s.matches(out) {
			s.remember(scale, from, mid, out)
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	until = hi

	// Phase 3: bisect the lower bound up.
	lo, hi = from, until-1
	for lo < hi && !s.exhausted() {
		mid := lo + (hi-lo+1)/2
		if out := s.probe(scale, mid, until); s.matches(out) {
			s.remember(scale, mid, until, out)
			lo = mid
		} else {
			hi = mid - 1
		}
	}

	if s.best == nil {
		return nil, fmt.Errorf("shrink: no reproducer confirmed within %d probes", in.MaxProbes)
	}
	// The best tuple was observed failing; re-verify it end to end so a
	// stale intermediate can never be reported.
	r := *s.best
	if out := s.probe(r.Scale, r.From, r.Until); s.matches(out) {
		r.Detail = out.Detail
	} else {
		return nil, fmt.Errorf("shrink: reduced tuple (scale=%d window=[%d,%d)) did not re-fail — run is not deterministic",
			r.Scale, r.From, r.Until)
	}
	r.Probes = s.probes
	return &r, nil
}

type search struct {
	in     Input
	kind   string
	probes int
	best   *Repro
}

func (s *search) exhausted() bool { return s.probes >= s.in.MaxProbes }

func (s *search) probe(scale int, from, until uint64) Outcome {
	if s.exhausted() {
		return Outcome{}
	}
	s.probes++
	return s.in.Run(scale, from, until)
}

func (s *search) matches(out Outcome) bool {
	return out.Failed && out.Kind == s.kind
}

// remember keeps the smallest confirmed-failing tuple: narrower window
// first, smaller scale as tie-break.
func (s *search) remember(scale int, from, until uint64, out Outcome) {
	width := until - from
	if s.best != nil {
		bw := s.best.Until - s.best.From
		if bw < width || (bw == width && s.best.Scale <= scale) {
			return
		}
	}
	s.best = &Repro{Scale: scale, From: from, Until: until, Kind: out.Kind, Detail: out.Detail}
}

// CommandLine renders the canonical replay invocation for a reproducer.
func (r *Repro) CommandLine(bench, proto string, cores int, seed uint64, faults string, faultSeed uint64) string {
	return fmt.Sprintf("tsocc-sim -bench %s -proto %s -cores %d -scale %d -seed %d -faults '%s' -fault-seed %d -fault-from %d -fault-until %d -checks -shards 1",
		bench, proto, cores, r.Scale, seed, faults, faultSeed, r.From, r.Until)
}
