package shrink

import (
	"strings"
	"testing"
)

// synthProbe models a deterministic failing run: the violation fires
// iff the fault window admits decision counter `trigger` and the
// workload scale is at least `minScale`. MaxCounter mimics the
// injector's high-water mark.
func synthProbe(trigger uint64, minScale int, maxCounter uint64) func(scale int, from, until uint64) Outcome {
	return func(scale int, from, until uint64) Outcome {
		out := Outcome{MaxCounter: maxCounter}
		admitted := from <= trigger && (until == 0 || trigger < until)
		if admitted && scale >= minScale {
			out.Failed = true
			out.Kind = "legality"
			out.Detail = "synthetic violation"
		}
		return out
	}
}

func TestShrinkReducesToSingleCounter(t *testing.T) {
	const trigger, maxCounter = 37, 100
	r, err := Shrink(Input{Scale: 8, Run: synthProbe(trigger, 1, maxCounter)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "legality" {
		t.Fatalf("kind = %q", r.Kind)
	}
	// A monotone single-trigger failure shrinks exactly to [37, 38) at
	// scale 1.
	if r.Scale != 1 || r.From != trigger || r.Until != trigger+1 {
		t.Fatalf("reduced to scale=%d window=[%d,%d), want scale=1 window=[37,38)",
			r.Scale, r.From, r.Until)
	}
	if r.Probes <= 0 || r.Probes > defaultMaxProbes {
		t.Fatalf("probes = %d", r.Probes)
	}
}

func TestShrinkKeepsRequiredScale(t *testing.T) {
	// The failure needs scale >= 3, so halving 8 -> 4 succeeds but
	// 4 -> 2 must be rejected and scale 4 kept.
	r, err := Shrink(Input{Scale: 8, Run: synthProbe(10, 3, 40)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scale != 4 {
		t.Fatalf("scale = %d, want 4 (halving below the failure threshold must stop)", r.Scale)
	}
	if r.From != 10 || r.Until != 11 {
		t.Fatalf("window = [%d,%d), want [10,11)", r.From, r.Until)
	}
}

func TestShrinkBaselineMustFail(t *testing.T) {
	_, err := Shrink(Input{Scale: 2, Run: func(int, uint64, uint64) Outcome {
		return Outcome{MaxCounter: 10}
	}})
	if err == nil || !strings.Contains(err.Error(), "does not fail") {
		t.Fatalf("err = %v", err)
	}
}

func TestShrinkIgnoresDifferentViolationKind(t *testing.T) {
	// The probe fails with a *different* kind once the window narrows:
	// the search must not chase it, and the surviving reproducer must
	// still carry the baseline kind.
	probe := func(scale int, from, until uint64) Outcome {
		out := Outcome{MaxCounter: 20}
		width := until - from
		switch {
		case until == 0 || width > 10:
			out.Failed, out.Kind, out.Detail = true, "legality", "the real bug"
		default:
			out.Failed, out.Kind, out.Detail = true, "swmr", "a decoy"
		}
		return out
	}
	r, err := Shrink(Input{Scale: 1, Run: probe})
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "legality" || r.Detail != "the real bug" {
		t.Fatalf("chased the decoy: kind=%q detail=%q", r.Kind, r.Detail)
	}
	if w := r.Until - r.From; w <= 10 {
		t.Fatalf("window [%d,%d) narrower than the real bug allows", r.From, r.Until)
	}
}

func TestShrinkNonDeterministicRunDetected(t *testing.T) {
	// A probe that fails only on odd invocations breaks the re-verify
	// contract; Shrink must report it instead of returning a tuple that
	// does not replay.
	calls := 0
	probe := func(scale int, from, until uint64) Outcome {
		calls++
		out := Outcome{MaxCounter: 4}
		if calls%2 == 1 {
			out.Failed, out.Kind = true, "legality"
		}
		return out
	}
	_, err := Shrink(Input{Scale: 1, Run: probe})
	if err == nil || !strings.Contains(err.Error(), "not deterministic") {
		t.Fatalf("err = %v", err)
	}
}

func TestCommandLine(t *testing.T) {
	r := &Repro{Scale: 2, From: 5, Until: 9}
	got := r.CommandLine("ssca2", "MESI", 4, 1, "evict:rate=400", 11)
	for _, want := range []string{
		"-bench ssca2", "-proto MESI", "-scale 2",
		"-faults 'evict:rate=400'", "-fault-seed 11",
		"-fault-from 5", "-fault-until 9", "-checks", "-shards 1",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("command line %q missing %q", got, want)
		}
	}
}
