package workloads

import (
	"repro/internal/program"
	"repro/internal/trace"
)

// Entry is one benchmark in the suite.
type Entry struct {
	Name  string
	Suite string // PARSEC / SPLASH-2 / STAMP
	Gen   Generator
	Desc  string
}

// Registry returns the Table 3 benchmark suite in the paper's order.
// Parameter choices reproduce each program's dominant sharing pattern;
// iteration counts are sized so a 32-core run completes in seconds of
// host time (use Params.Scale to grow them).
func Registry() []Entry {
	return []Entry{
		{
			Name: "blackscholes", Suite: "PARSEC",
			Desc: "data-parallel over read-only option data; hot shared params block",
			Gen: func(p Params) *program.Workload {
				return dataParallel("blackscholes", p, dataParallelCfg{
					iters: 160, tableWords: 4096, paramsReads: 4, computeNops: 6,
				})
			},
		},
		{
			Name: "canneal", Suite: "PARSEC",
			Desc: "random element swaps over a large array; very low locality",
			Gen: func(p Params) *program.Workload {
				return scatterSwap("canneal", p, scatterSwapCfg{
					iters: 120, arrayWords: 65536, rmwEvery: 16,
				})
			},
		},
		{
			Name: "dedup", Suite: "PARSEC",
			Desc: "lock-protected hash table inserts (pipeline hash stage)",
			Gen: func(p Params) *program.Workload {
				return lockHash("dedup", p, lockHashCfg{
					iters: 100, buckets: 256, computeNops: 8,
				})
			},
		},
		{
			Name: "fluidanimate", Suite: "PARSEC",
			Desc: "mostly-private grid updates with fine-grained boundary locks",
			Gen: func(p Params) *program.Workload {
				return neighbor("fluidanimate", p, neighborCfg{
					iters: 60, cells: 512, locks: 64,
					privateOps: 24, computeNops: 4, phases: 4,
				})
			},
		},
		{
			Name: "x264", Suite: "PARSEC",
			Desc: "frame pipeline: flag handshakes between stages (Figure 1 at scale)",
			Gen: func(p Params) *program.Workload {
				return pipeline("x264", p, pipelineCfg{items: 80, computeNops: 12})
			},
		},
		{
			Name: "fft", Suite: "SPLASH-2",
			Desc: "phased all-to-all transpose with barriers",
			Gen: func(p Params) *program.Workload {
				return allToAll("fft", p, allToAllCfg{phases: 6, words: 96})
			},
		},
		{
			Name: "lu-cont", Suite: "SPLASH-2",
			Desc: "blocked LU, contiguous allocation (no false sharing)",
			Gen: func(p Params) *program.Workload {
				return blocked("lu-cont", p, blockedCfg{
					phases: 10, pivotWords: 32, updateWords: 96, falseSharing: false,
				})
			},
		},
		{
			Name: "lu-noncont", Suite: "SPLASH-2",
			Desc: "blocked LU, word-interleaved rows (heavy false sharing)",
			Gen: func(p Params) *program.Workload {
				return blocked("lu-noncont", p, blockedCfg{
					phases: 10, pivotWords: 32, updateWords: 96, falseSharing: true,
				})
			},
		},
		{
			Name: "radix", Suite: "SPLASH-2",
			Desc: "counting sort: private histogram, fetch-add offsets, scattered permutation writes",
			Gen: func(p Params) *program.Workload {
				return radixSort("radix", p, radixCfg{
					keysPerThread: 120, bucketsN: 64, arrayWords: 32768,
				})
			},
		},
		{
			Name: "raytrace", Suite: "SPLASH-2",
			Desc: "read-only scene traversal with a fetch-add work queue",
			Gen: func(p Params) *program.Workload {
				return dataParallel("raytrace", p, dataParallelCfg{
					iters: 120, tableWords: 16384, paramsReads: 2,
					computeNops: 10, workQueue: true,
				})
			},
		},
		{
			Name: "water-nsq", Suite: "SPLASH-2",
			Desc: "per-molecule locked force updates with phase barriers",
			Gen: func(p Params) *program.Workload {
				return neighbor("water-nsq", p, neighborCfg{
					iters: 70, cells: 512, locks: 128,
					privateOps: 8, computeNops: 6, phases: 2,
				})
			},
		},
		{
			Name: "bayes", Suite: "STAMP",
			Desc: "STM: long transactions, large write sets",
			Gen: func(p Params) *program.Workload {
				return stm("bayes", p, stmCfg{
					txns: 24, txReads: 12, txWrites: 8,
					tableWords: 8192, thinkNops: 20,
				})
			},
		},
		{
			Name: "genome", Suite: "STAMP",
			Desc: "STM: hash-table segment insertion, medium transactions",
			Gen: func(p Params) *program.Workload {
				return stm("genome", p, stmCfg{
					txns: 36, txReads: 8, txWrites: 3,
					tableWords: 16384, thinkNops: 8,
				})
			},
		},
		{
			Name: "intruder", Suite: "STAMP",
			Desc: "short high-contention queue transactions (pop/process/push)",
			Gen: func(p Params) *program.Workload {
				return hotQueue("intruder", p, hotQueueCfg{
					iters: 80, queues: 3, slots: 4096, thinkNops: 10,
				})
			},
		},
		{
			Name: "ssca2", Suite: "STAMP",
			Desc: "scattered atomic adds over graph node weights",
			Gen: func(p Params) *program.Workload {
				return atomicScatter("ssca2", p, atomicScatterCfg{
					iters: 140, nodes: 8192,
				})
			},
		},
		{
			Name: "vacation", Suite: "STAMP",
			Desc: "STM: read-dominated reservation-table transactions",
			Gen: func(p Params) *program.Workload {
				return stm("vacation", p, stmCfg{
					txns: 28, txReads: 16, txWrites: 2,
					tableWords: 16384, thinkNops: 12,
				})
			},
		},
	}
}

// Extras lists synthetic workloads resolvable by name but deliberately
// outside the Table 3 registry: they never join default grids or
// figures (Names covers only the registry), yet every -bench selection
// path can run them. The synth-* entries are the trace package's
// seeded generators run through the trace→program conversion
// (trace.Trace.Workload), so the same access streams drive both the
// program pipeline here and ReplayCore in tsocc-trace.
func Extras() []Entry {
	synth := func(gen func(trace.SynthParams) *trace.Trace) Generator {
		return func(p Params) *program.Workload {
			return gen(trace.SynthParams{
				Cores:      p.Threads,
				OpsPerCore: int(p.scale(256)),
				Seed:       p.Seed,
			}).Workload()
		}
	}
	return []Entry{
		{
			Name: "dense-compute", Suite: "synthetic",
			Desc: "unrolled ALU mix chains; the batched-core acceptance workload",
			Gen:  DenseCompute,
		},
		{
			Name: "synth-zipf", Suite: "trace",
			Desc: "zipf-popularity shared working set, 1-in-4 writes (synthesized trace)",
			Gen:  synth(trace.Zipf),
		},
		{
			Name: "synth-migratory", Suite: "trace",
			Desc: "read-then-write objects migrating core to core (synthesized trace)",
			Gen:  synth(trace.Migratory),
		},
		{
			Name: "synth-scan", Suite: "trace",
			Desc: "staggered streaming scans over one shared array (synthesized trace)",
			Gen:  synth(trace.Scan),
		},
	}
}

// ByName finds a benchmark by name in the registry or the synthetic
// extras, or nil.
func ByName(name string) *Entry {
	for _, e := range Registry() {
		if e.Name == name {
			e := e
			return &e
		}
	}
	for _, e := range Extras() {
		if e.Name == name {
			e := e
			return &e
		}
	}
	return nil
}

// Names lists all benchmark names in suite order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, e := range reg {
		out[i] = e.Name
	}
	return out
}
