package workloads_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/mesi"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

func TestRegistryHas16Benchmarks(t *testing.T) {
	reg := workloads.Registry()
	if len(reg) != 16 {
		t.Fatalf("registry has %d entries, want 16 (Table 3)", len(reg))
	}
	suites := map[string]int{}
	for _, e := range reg {
		suites[e.Suite]++
		if e.Name == "" || e.Desc == "" || e.Gen == nil {
			t.Fatalf("incomplete entry %+v", e)
		}
	}
	if suites["PARSEC"] != 5 || suites["SPLASH-2"] != 6 || suites["STAMP"] != 5 {
		t.Fatalf("suite breakdown %v, want PARSEC 5 / SPLASH-2 6 / STAMP 5", suites)
	}
}

func TestAllWorkloadsValidate(t *testing.T) {
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, e := range workloads.Registry() {
		w := e.Gen(p)
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

// TestAllWorkloadsFunctional runs every benchmark on MESI and on the
// paper's best TSO-CC configuration, checking each workload's built-in
// functional assertions (mutual exclusion sums, RMW atomicity, barrier
// phase counts).
func TestAllWorkloadsFunctional(t *testing.T) {
	cfg := config.Small(4)
	protos := []system.Protocol{mesi.New(), tsocc.New(config.C12x3())}
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 42}
	for _, e := range workloads.Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			for _, proto := range protos {
				w := e.Gen(p)
				res, err := system.Run(cfg, proto, w)
				if err != nil {
					t.Fatalf("%s: %v", proto.Name(), err)
				}
				if res.CheckErr != nil {
					t.Fatalf("%s: functional check: %v", proto.Name(), res.CheckErr)
				}
				if res.PoolLive != 0 || res.TxLive != 0 {
					t.Fatalf("%s: leak after clean run: %d pooled message(s), %d transaction(s)",
						proto.Name(), res.PoolLive, res.TxLive)
				}
			}
		})
	}
}

// TestWorkloadsAllTSOCCConfigs runs a representative subset of kernels
// across every TSO-CC configuration, including a reset-heavy one.
func TestWorkloadsAllTSOCCConfigs(t *testing.T) {
	cfg := config.Small(4)
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 7}
	names := []string{"x264", "intruder", "lu-noncont", "radix"}
	cfgs := []config.TSOCC{
		config.CCSharedToL2(), config.Basic(), config.NoReset(),
		config.C12x3(), config.C12x0(), config.C9x3(),
		{MaxAccBits: 2, TimestampBits: 5, WriteGroupBits: 1, SharedRO: true, EpochBits: 2, DecayWrites: 16},
	}
	for _, name := range names {
		e := workloads.ByName(name)
		if e == nil {
			t.Fatalf("unknown benchmark %s", name)
		}
		for _, tc := range cfgs {
			w := e.Gen(p)
			res, err := system.Run(cfg, tsocc.New(tc), w)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, tc.Name(), err)
			}
			if res.CheckErr != nil {
				t.Fatalf("%s on %s: %v", name, tc.Name(), res.CheckErr)
			}
			if res.PoolLive != 0 || res.TxLive != 0 {
				t.Fatalf("%s on %s: leak after clean run: %d pooled message(s), %d transaction(s)",
					name, tc.Name(), res.PoolLive, res.TxLive)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Small(4)
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 9}
	e := workloads.ByName("intruder")
	r1, err := system.Run(cfg, tsocc.New(config.C12x3()), e.Gen(p))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := system.Run(cfg, tsocc.New(config.C12x3()), e.Gen(p))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Flits != r2.Flits || r1.Msgs != r2.Msgs {
		t.Fatalf("non-deterministic: run1 (%d cycles, %d flits), run2 (%d cycles, %d flits)",
			r1.Cycles, r1.Flits, r2.Cycles, r2.Flits)
	}
}
