package workloads

import (
	"fmt"

	"repro/internal/program"
)

// Dense-compute mix constants (Knuth's MMIX LCG multiplier/increment).
const (
	denseMulA   = 6364136223846793005
	denseAddB   = 1442695040888963407
	denseUnroll = 24
)

// DenseCompute is the ALU-density microbenchmark behind
// BenchmarkDenseCompute and the tsocc-bench -perf "dense-compute"
// record. It is deliberately not part of the Table 3 registry (the
// paper does not evaluate it): its only job is to fill the pipeline
// with back-to-back register instructions — the dense phase the
// batched core model exists for. Each thread runs scale(200) rounds of
// a 120-instruction unrolled integer mix chain (one maximal
// straight-line run per round, closed by the loop branch), then
// publishes its final checksum to its per-thread result slot, which
// the functional check verifies against a host-side replay of the same
// chain.
func DenseCompute(p Params) *program.Workload {
	rounds := p.scale(200)
	progs := make([]*program.Program, p.Threads)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("dense-t%d", t))
		b.Li(1, resultBase+int64(t)*64)
		b.Li(5, denseMulA)
		b.Li(6, denseAddB)
		b.Li(7, denseSeed(p.Seed, t))
		b.Li(3, 0)
		b.Li(4, rounds)
		b.Label("loop")
		for j := 0; j < denseUnroll; j++ {
			b.Mul(7, 7, 5)
			b.Add(7, 7, 6)
			b.Shl(9, 7, 7)
			b.Xor(7, 7, 9)
			b.Addi(7, 7, int64(j+1))
		}
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.St(1, 0, 7)
		b.Fence()
		b.Halt()
		progs[t] = b.MustBuild()
	}
	threads := p.Threads
	return &program.Workload{
		Name:     "dense-compute",
		Programs: progs,
		Check: func(mem program.MemReader) error {
			for t := 0; t < threads; t++ {
				want := uint64(denseChecksum(denseSeed(p.Seed, t), rounds))
				addr := uint64(resultBase + int64(t)*64)
				if got := mem.ReadWord(addr); got != want {
					return fmt.Errorf("dense-compute: thread %d checksum %#x, want %#x", t, got, want)
				}
			}
			return nil
		},
	}
}

func denseSeed(seed uint64, tid int) int64 {
	return int64(seed)*2654435761 + int64(tid+1)*40503
}

// denseChecksum replays the simulated mix chain on the host: Go's int64
// arithmetic wraps exactly like the core's register ops.
func denseChecksum(acc, rounds int64) int64 {
	for i := int64(0); i < rounds; i++ {
		for j := 0; j < denseUnroll; j++ {
			acc *= denseMulA
			acc += denseAddB
			acc ^= acc << 7
			acc += int64(j + 1)
		}
	}
	return acc
}
