// Package workloads provides the benchmark suite of Table 3: sixteen
// synthetic kernels, one per PARSEC / SPLASH-2 / STAMP program the paper
// evaluates. Each kernel is built from a sharing-pattern archetype tuned
// to the dominant behaviour the paper reports for that benchmark
// (false sharing for lu non-contiguous, scattered writes for radix,
// RMW-heavy STM transactions for STAMP, ...). See DESIGN.md §2 for the
// substitution argument.
package workloads

import (
	"fmt"

	"repro/internal/program"
)

// Shared memory layout used by every kernel. Regions are block-aligned
// and far apart; per-thread slots are one cache block each to avoid
// accidental false sharing except where a kernel wants it.
const (
	barrierBase = 0x0001_0000 // [count, sense]
	locksBase   = 0x0002_0000 // lock i at +i*64
	flagsBase   = 0x0004_0000 // flag i at +i*64
	resultBase  = 0x0008_0000 // per-thread result word at +tid*64
	roBase      = 0x0040_0000 // read-only / read-mostly tables
	dataBase    = 0x0100_0000 // main shared data
	privBase    = 0x0800_0000 // per-thread private regions (+tid*1MB)
)

// Register conventions (r0 is preloaded with the thread id by the
// system; the barrier helper owns r11–r14; lock helpers clobber r15).
const (
	regTID   = 0
	regSense = 14
)

// Params control workload size.
type Params struct {
	Threads int
	Scale   int // iteration multiplier; 1 = default benchmark size
	Seed    uint64
}

func (p Params) scale(n int64) int64 {
	s := int64(p.Scale)
	if s <= 0 {
		s = 1
	}
	return n * s
}

// Generator builds a workload for the given parameters.
type Generator func(p Params) *program.Workload

// emitBarrier emits a sense-reversing barrier over all threads.
// Clobbers r10-r13 and leaves the thread's sense in regSense.
func emitBarrier(b *program.Builder, nthreads int64) {
	b.Li(10, barrierBase)
	b.Barrier(10, regSense, 12, 13, nthreads)
}

// emitLock acquires lock `idx` (test-and-test-and-set; clobbers r8, r9,
// r15 and leaves the lock address in r10).
func emitLock(b *program.Builder, idxReg uint8) {
	b.Li(10, locksBase)
	b.Shl(9, idxReg, 6) // idx * 64
	b.Add(10, 10, 9)
	b.LockAcquire(8, 9, 10, 0)
}

// emitLockConst acquires the fixed lock `idx`.
func emitLockConst(b *program.Builder, idx int64) {
	b.Li(10, locksBase+idx*64)
	b.LockAcquire(8, 9, 10, 0)
}

// emitUnlock releases the lock whose address is in r10.
func emitUnlock(b *program.Builder) {
	b.LockRelease(10, 0)
}

// emitLCG advances the per-thread linear congruential generator held in
// rndReg: rnd = (rnd*6364136223846793005 + 1442695040888963407) and
// leaves (rnd >> 33) mod modImm in outReg.
func emitLCG(b *program.Builder, rndReg, outReg uint8, tmp uint8, modImm int64) {
	b.Li(tmp, 6364136223846793005)
	b.Mul(rndReg, rndReg, tmp)
	b.Li(tmp, 1442695040888963407)
	b.Add(rndReg, rndReg, tmp)
	b.Mod(outReg, rndReg, modImm)
}

// publishResult stores reg to the thread's result slot and fences, so
// functional checks can read it back from the hierarchy.
func publishResult(b *program.Builder, reg uint8) {
	b.Li(10, resultBase)
	b.Shl(9, regTID, 6)
	b.Add(10, 10, 9)
	b.St(10, 0, reg)
	b.Fence()
}

// checkResults returns a Check asserting every thread's result equals
// want.
func checkResults(threads int, want uint64) func(program.MemReader) error {
	return func(mem program.MemReader) error {
		for t := 0; t < threads; t++ {
			addr := uint64(resultBase + t*64)
			if got := mem.ReadWord(addr); got != want {
				return fmt.Errorf("thread %d result = %d, want %d", t, got, want)
			}
		}
		return nil
	}
}

// checkResultSum returns a Check asserting the thread results sum to
// want.
func checkResultSum(threads int, want uint64) func(program.MemReader) error {
	return func(mem program.MemReader) error {
		var sum uint64
		for t := 0; t < threads; t++ {
			sum += mem.ReadWord(uint64(resultBase + t*64))
		}
		if sum != want {
			return fmt.Errorf("result sum = %d, want %d", sum, want)
		}
		return nil
	}
}
