package workloads

import (
	"fmt"

	"repro/internal/program"
)

// ---- Archetype: data-parallel over read-only tables ----
// (blackscholes, raytrace). Threads stream a shared read-only table,
// re-read a hot shared params block, and write private outputs. The
// read-mostly data is what the SharedRO optimization targets.

type dataParallelCfg struct {
	iters       int64
	tableWords  int64
	paramsReads int64 // hot-block re-reads per iteration
	computeNops int64
	workQueue   bool // raytrace: fetch-add a shared work counter per item
}

func dataParallel(name string, p Params, c dataParallelCfg) *program.Workload {
	paramsAddr := int64(roBase + 0x0020_0000)
	queueAddr := int64(dataBase + 0x0020_0000)
	progs := make([]*program.Program, p.Threads)
	iters := p.scale(c.iters)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(1, roBase)
		b.Li(2, privBase)
		b.Shl(3, regTID, 20)
		b.Add(2, 2, 3) // r2 = private out region
		b.Li(3, 0)     // i
		b.Li(4, iters)
		b.Li(5, int64(p.Seed)*2654435761+int64(t+1)*40503) // rnd
		b.Label("loop")
		if c.workQueue {
			b.Li(6, queueAddr)
			b.Li(7, 1)
			b.RmwAdd(7, 6, 0, 7) // grab a work item
		}
		emitLCG(b, 5, 6, 7, c.tableWords)
		b.Shl(6, 6, 3)
		b.Add(6, 6, 1)
		b.Ld(7, 6, 0) // shared read-only table read
		for k := int64(0); k < c.paramsReads; k++ {
			b.Li(6, paramsAddr+k*8)
			b.Ld(7, 6, 0) // hot params block
		}
		if c.computeNops > 0 {
			b.Nop(c.computeNops)
		}
		b.Mod(6, 3, 4096)
		b.Shl(6, 6, 3)
		b.Add(6, 6, 2)
		b.St(6, 0, 3) // private output
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check:    checkResults(p.Threads, uint64(iters)),
	}
}

// ---- Archetype: scattered swaps (canneal) ----
// Low-locality reads and writes over a large shared array, with an
// occasional shared RMW; sharers are effectively random.

type scatterSwapCfg struct {
	iters      int64
	arrayWords int64
	rmwEvery   int64
}

func scatterSwap(name string, p Params, c scatterSwapCfg) *program.Workload {
	acceptAddr := int64(dataBase + 0x0040_0000)
	progs := make([]*program.Program, p.Threads)
	iters := p.scale(c.iters)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(1, dataBase)
		b.Li(3, 0)
		b.Li(4, iters)
		b.Li(5, int64(p.Seed)+int64(t+1)*95279)
		b.Label("loop")
		emitLCG(b, 5, 6, 7, c.arrayWords)
		b.Shl(6, 6, 3)
		b.Add(6, 6, 1) // &arr[idx1]
		emitLCG(b, 5, 7, 2, c.arrayWords)
		b.Shl(7, 7, 3)
		b.Add(7, 7, 1) // &arr[idx2]
		b.Ld(8, 6, 0)
		b.Ld(9, 7, 0)
		b.St(6, 0, 9) // swap
		b.St(7, 0, 8)
		if c.rmwEvery > 0 {
			b.Mod(2, 3, c.rmwEvery)
			b.Li(9, 0)
			b.Bne(2, 9, "skiprmw")
			b.Li(2, acceptAddr)
			b.Li(9, 1)
			b.RmwAdd(9, 2, 0, 9)
			b.Label("skiprmw")
		}
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check:    checkResults(p.Threads, uint64(iters)),
	}
}

// ---- Archetype: lock-protected hash table (dedup, genome) ----
// Bucket counters guarded by per-bucket spinlocks; the check verifies
// mutual exclusion exactly (lost updates would break the sum).

type lockHashCfg struct {
	iters       int64
	buckets     int64
	computeNops int64
}

func lockHash(name string, p Params, c lockHashCfg) *program.Workload {
	bucketBase := int64(dataBase) // bucket i counter at +i*64
	progs := make([]*program.Program, p.Threads)
	iters := p.scale(c.iters)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(3, 0)
		b.Li(4, iters)
		b.Li(5, int64(p.Seed)+int64(t+1)*48271)
		b.Label("loop")
		emitLCG(b, 5, 6, 7, c.buckets)
		emitLock(b, 6) // lock bucket r6; lock addr in r10
		b.Li(7, bucketBase)
		b.Shl(2, 6, 6) // bucket * 64
		b.Add(7, 7, 2)
		b.Ld(2, 7, 0) // non-atomic increment under the lock
		b.Addi(2, 2, 1)
		b.St(7, 0, 2)
		emitUnlock(b)
		if c.computeNops > 0 {
			b.Nop(c.computeNops)
		}
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	total := uint64(iters) * uint64(p.Threads)
	buckets := c.buckets
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check: func(mem program.MemReader) error {
			var sum uint64
			for i := int64(0); i < buckets; i++ {
				sum += mem.ReadWord(uint64(bucketBase + i*64))
			}
			if sum != total {
				return fmt.Errorf("bucket sum = %d, want %d (mutual exclusion violated)", sum, total)
			}
			return checkResults(p.Threads, uint64(iters))(mem)
		},
	}
}

// ---- Archetype: pipeline with flag handshakes (x264) ----
// Thread t consumes thread t-1's output, item by item, synchronizing
// through polling flag acquires — the paper's Figure 1 pattern at scale.

type pipelineCfg struct {
	items       int64
	computeNops int64
}

func pipeline(name string, p Params, c pipelineCfg) *program.Workload {
	progs := make([]*program.Program, p.Threads)
	items := p.scale(c.items)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(1, int64(dataBase)+int64(t)*0x10000)   // own output region
		b.Li(2, int64(dataBase)+int64(t-1)*0x10000) // upstream region
		b.Li(3, 0)                                  // item i
		b.Li(4, items)
		b.Label("loop")
		if t > 0 {
			// Acquire: wait until upstream published item i+1.
			b.Li(6, flagsBase+int64(t-1)*64)
			b.Addi(7, 3, 1)
			b.Label("spin")
			b.Ld(5, 6, 0)
			b.Blt(5, 7, "spin")
			// Consume upstream value.
			b.Mod(6, 3, 1024)
			b.Shl(6, 6, 3)
			b.Add(6, 6, 2)
			b.Ld(5, 6, 0)
		}
		if c.computeNops > 0 {
			b.Nop(c.computeNops)
		}
		// Produce own value.
		b.Mod(6, 3, 1024)
		b.Shl(6, 6, 3)
		b.Add(6, 6, 1)
		b.Addi(5, 3, 100)
		b.St(6, 0, 5)
		// Release: publish item count.
		b.Li(6, flagsBase+int64(t)*64)
		b.Addi(7, 3, 1)
		b.St(6, 0, 7)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check:    checkResults(p.Threads, uint64(items)),
	}
}

// ---- Archetype: phased all-to-all exchange (fft transpose) ----

type allToAllCfg struct {
	phases int64
	words  int64 // words produced/consumed per thread per phase
}

func allToAll(name string, p Params, c allToAllCfg) *program.Workload {
	progs := make([]*program.Program, p.Threads)
	phases := p.scale(c.phases)
	region := func(t int64) int64 { return int64(dataBase) + t*0x10000 }
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(4, phases)
		b.Li(5, 0) // phase
		b.Label("phase")
		// Produce into own region.
		b.Li(1, region(int64(t)))
		b.Li(3, 0)
		b.Li(6, c.words)
		b.Label("produce")
		b.Shl(7, 3, 3)
		b.Add(7, 7, 1)
		b.Add(2, 3, 5)
		b.St(7, 0, 2)
		b.Addi(3, 3, 1)
		b.Blt(3, 6, "produce")
		emitBarrier(b, int64(p.Threads))
		// Consume a rotating partner's region (all-to-all over phases).
		b.Addi(2, 5, int64(t)+1)
		b.Mod(2, 2, int64(p.Threads))
		b.Shl(2, 2, 16)
		b.Li(1, dataBase)
		b.Add(1, 1, 2)
		b.Li(3, 0)
		b.Label("consume")
		b.Shl(7, 3, 3)
		b.Add(7, 7, 1)
		b.Ld(2, 7, 0)
		b.Addi(3, 3, 1)
		b.Blt(3, 6, "consume")
		emitBarrier(b, int64(p.Threads))
		b.Addi(5, 5, 1)
		b.Blt(5, 4, "phase")
		publishResult(b, 5)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check:    checkResults(p.Threads, uint64(phases)),
	}
}

// ---- Archetype: blocked factorization (lu cont / non-cont) ----
// Phase k: the pivot owner writes the pivot block; everyone reads it and
// updates their own portion. With falseSharing, per-thread updates are
// word-interleaved so unrelated threads write the same cache lines —
// the contiguous layout gives each thread whole blocks.

type blockedCfg struct {
	phases       int64
	pivotWords   int64
	updateWords  int64
	falseSharing bool
}

func blocked(name string, p Params, c blockedCfg) *program.Workload {
	pivotBase := int64(dataBase + 0x0080_0000)
	progs := make([]*program.Program, p.Threads)
	phases := p.scale(c.phases)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(4, phases)
		b.Li(5, 0) // k
		b.Label("phase")
		// Pivot owner writes the pivot block.
		b.Mod(2, 5, int64(p.Threads))
		b.Li(3, int64(t))
		b.Bne(2, 3, "notowner")
		b.Li(1, pivotBase)
		b.Li(3, 0)
		b.Li(6, c.pivotWords)
		b.Label("wpivot")
		b.Shl(7, 3, 3)
		b.Add(7, 7, 1)
		b.St(7, 0, 5)
		b.Addi(3, 3, 1)
		b.Blt(3, 6, "wpivot")
		b.Label("notowner")
		emitBarrier(b, int64(p.Threads))
		// Everyone reads the pivot block.
		b.Li(1, pivotBase)
		b.Li(3, 0)
		b.Li(6, c.pivotWords)
		b.Label("rpivot")
		b.Shl(7, 3, 3)
		b.Add(7, 7, 1)
		b.Ld(2, 7, 0)
		b.Addi(3, 3, 1)
		b.Blt(3, 6, "rpivot")
		// Update own portion of the matrix.
		b.Li(3, 0)
		b.Li(6, c.updateWords)
		b.Label("update")
		if c.falseSharing {
			// Word i of thread t lives at (i*T + t): threads
			// interleave within cache lines.
			b.Li(7, int64(p.Threads))
			b.Mul(7, 3, 7)
			b.Addi(7, 7, int64(t))
			b.Shl(7, 7, 3)
			b.Li(2, dataBase)
			b.Add(7, 7, 2)
		} else {
			// Contiguous: thread t owns a dense region.
			b.Shl(7, 3, 3)
			b.Li(2, int64(dataBase)+int64(t)*0x20000)
			b.Add(7, 7, 2)
		}
		b.Ld(2, 7, 0)
		b.Add(2, 2, 5)
		b.St(7, 0, 2)
		b.Addi(3, 3, 1)
		b.Blt(3, 6, "update")
		emitBarrier(b, int64(p.Threads))
		b.Addi(5, 5, 1)
		b.Blt(5, 4, "phase")
		publishResult(b, 5)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check:    checkResults(p.Threads, uint64(phases)),
	}
}

// ---- Archetype: histogram + scatter (radix) ----
// Private counting, a fetch-add offset phase, then permutation writes
// scattered over a shared array: a high shared-write-miss benchmark.

type radixCfg struct {
	keysPerThread int64
	bucketsN      int64
	arrayWords    int64
}

func radixSort(name string, p Params, c radixCfg) *program.Workload {
	histBase := int64(dataBase + 0x0040_0000) // global bucket counters
	progs := make([]*program.Program, p.Threads)
	keys := p.scale(c.keysPerThread)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		// Phase 1: count keys into a private histogram.
		b.Li(1, privBase)
		b.Shl(2, regTID, 20)
		b.Add(1, 1, 2)
		b.Li(3, 0)
		b.Li(4, keys)
		b.Li(5, int64(p.Seed)+int64(t+1)*69621)
		b.Label("count")
		emitLCG(b, 5, 6, 7, c.bucketsN)
		b.Shl(6, 6, 3)
		b.Add(6, 6, 1)
		b.Ld(7, 6, 0)
		b.Addi(7, 7, 1)
		b.St(6, 0, 7)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "count")
		emitBarrier(b, int64(p.Threads))
		// Phase 2: publish counts with fetch-adds on global buckets.
		b.Li(3, 0)
		b.Li(4, c.bucketsN)
		b.Label("offsets")
		b.Shl(6, 3, 3)
		b.Add(6, 6, 1)
		b.Ld(7, 6, 0) // private count
		b.Li(2, histBase)
		b.Shl(6, 3, 3)
		b.Add(6, 6, 2)
		b.RmwAdd(2, 6, 0, 7)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "offsets")
		emitBarrier(b, int64(p.Threads))
		// Phase 3: scattered permutation writes.
		b.Li(1, dataBase)
		b.Li(3, 0)
		b.Li(4, keys)
		b.Label("scatter")
		emitLCG(b, 5, 6, 7, c.arrayWords)
		b.Shl(6, 6, 3)
		b.Add(6, 6, 1)
		b.St(6, 0, 3)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "scatter")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	total := uint64(keys) * uint64(p.Threads)
	buckets := c.bucketsN
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check: func(mem program.MemReader) error {
			var sum uint64
			for i := int64(0); i < buckets; i++ {
				sum += mem.ReadWord(uint64(histBase + i*8))
			}
			if sum != total {
				return fmt.Errorf("global histogram = %d, want %d (RMW atomicity violated)", sum, total)
			}
			return checkResults(p.Threads, uint64(keys))(mem)
		},
	}
}

// ---- Archetype: neighbor updates under fine-grained locks ----
// (fluidanimate, water-nsquared): mostly-private compute with locked
// updates to shared cells; lock density and compute differ per kernel.

type neighborCfg struct {
	iters       int64
	cells       int64
	locks       int64
	privateOps  int64 // private updates between locked updates
	computeNops int64
	phases      int64 // barriers between phases (0 = none)
}

func neighbor(name string, p Params, c neighborCfg) *program.Workload {
	cellBase := int64(dataBase) // cell i at +i*64
	progs := make([]*program.Program, p.Threads)
	iters := p.scale(c.iters)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(3, 0)
		b.Li(4, iters)
		b.Li(5, int64(p.Seed)+int64(t+1)*31337)
		b.Label("loop")
		// Private compute region.
		if c.privateOps > 0 {
			b.Li(1, privBase)
			b.Shl(2, regTID, 20)
			b.Add(1, 1, 2)
			b.Li(2, 0)
			b.Li(6, c.privateOps)
			b.Label("priv")
			b.Shl(7, 2, 3)
			b.Add(7, 7, 1)
			b.Ld(8, 7, 0)
			b.Addi(8, 8, 1)
			b.St(7, 0, 8)
			b.Addi(2, 2, 1)
			b.Blt(2, 6, "priv")
		}
		if c.computeNops > 0 {
			b.Nop(c.computeNops)
		}
		// Locked shared-cell update.
		emitLCG(b, 5, 6, 7, c.cells)
		b.Mod(7, 6, c.locks)
		b.Mov(2, 6) // save cell index (emitLock clobbers r6-r10)
		emitLock(b, 7)
		b.Li(7, cellBase)
		b.Shl(6, 2, 6)
		b.Add(7, 7, 6)
		b.Ld(6, 7, 0)
		b.Addi(6, 6, 1)
		b.St(7, 0, 6)
		emitUnlock(b)
		b.Addi(3, 3, 1)
		if c.phases > 0 {
			b.Mod(2, 3, iters/c.phases+1)
			b.Li(6, 0)
			b.Bne(2, 6, "nobar")
			emitBarrier(b, int64(p.Threads))
			b.Label("nobar")
		}
		b.Blt(3, 4, "loop")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	total := uint64(iters) * uint64(p.Threads)
	cells := c.cells
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check: func(mem program.MemReader) error {
			var sum uint64
			for i := int64(0); i < cells; i++ {
				sum += mem.ReadWord(uint64(cellBase + i*64))
			}
			if sum != total {
				return fmt.Errorf("cell sum = %d, want %d (lock mutual exclusion violated)", sum, total)
			}
			return checkResults(p.Threads, uint64(iters))(mem)
		},
	}
}

// ---- Archetype: NOrec-style STM transactions (STAMP) ----
// NOrec serializes commits through a global sequence lock: a transaction
// snapshots the version clock, reads its read set speculatively, and
// commits by CAS-ing the clock from its snapshot (retrying the whole
// transaction on conflict), writing its write set, and releasing with a
// plain store of snapshot+2. This makes the version clock an extremely
// hot RMW target read by every transaction — the pattern behind the
// paper's intruder result (TSO-CC writes to shared lines need no
// invalidation fan-out; Figure 8's RMW latencies).

type stmCfg struct {
	txns       int64
	txReads    int64
	txWrites   int64
	tableWords int64
	thinkNops  int64
}

func stm(name string, p Params, c stmCfg) *program.Workload {
	clockAddr := int64(dataBase + 0x0040_0000)
	progs := make([]*program.Program, p.Threads)
	txns := p.scale(c.txns)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(3, 0)
		b.Li(4, txns)
		b.Li(5, int64(p.Seed)+int64(t+1)*86243)
		b.Label("tx")
		// Snapshot the version clock; wait out an in-flight commit
		// (odd snapshot), as NOrec does.
		b.Li(1, clockAddr)
		b.Ld(11, 1, 0) // r11 = snapshot
		b.Mod(2, 11, 2)
		b.Li(6, 0)
		b.Bne(2, 6, "tx")
		// Speculative read set.
		b.Li(6, 0)
		b.Li(7, c.txReads)
		b.Label("reads")
		emitLCG(b, 5, 2, 1, c.tableWords)
		b.Shl(2, 2, 3)
		b.Li(1, dataBase)
		b.Add(2, 2, 1)
		b.Ld(1, 2, 0)
		b.Addi(6, 6, 1)
		b.Blt(6, 7, "reads")
		// Commit: CAS the clock from snapshot to snapshot+1 (odd =
		// committing). Failure means a concurrent commit — retry the
		// transaction after a thread-specific backoff (breaks lockstep).
		b.Li(1, clockAddr)
		b.Addi(12, 11, 1) // r12 = snapshot+1
		b.Cas(2, 1, 0, 11, 12)
		b.Beq(2, 11, "commit")
		b.Nop(int64(t%7) + 2)
		b.Jmp("tx")
		b.Label("commit")
		// Write set.
		b.Li(6, 0)
		b.Li(7, c.txWrites)
		b.Label("writes")
		emitLCG(b, 5, 2, 1, c.tableWords)
		b.Shl(2, 2, 3)
		b.Li(1, dataBase)
		b.Add(2, 2, 1)
		b.Ld(1, 2, 0)
		b.Addi(1, 1, 1)
		b.St(2, 0, 1)
		b.Addi(6, 6, 1)
		b.Blt(6, 7, "writes")
		// Release: clock = snapshot+2 (even again).
		b.Li(1, clockAddr)
		b.Addi(12, 11, 2)
		b.St(1, 0, 12)
		// Non-transactional work between transactions (packet
		// processing, tree rebalancing, ...).
		if c.thinkNops > 0 {
			b.Nop(c.thinkNops)
		}
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "tx")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	total := uint64(txns) * uint64(p.Threads)
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(uint64(clockAddr)); got != 2*total {
				return fmt.Errorf("version clock = %d, want %d (seqlock commit violated)", got, 2*total)
			}
			return checkResults(p.Threads, uint64(txns))(mem)
		},
	}
}

// ---- Archetype: scattered atomic adds (ssca2 graph updates) ----

type atomicScatterCfg struct {
	iters int64
	nodes int64
}

func atomicScatter(name string, p Params, c atomicScatterCfg) *program.Workload {
	nodeBase := int64(dataBase)
	progs := make([]*program.Program, p.Threads)
	iters := p.scale(c.iters)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(3, 0)
		b.Li(4, iters)
		b.Li(5, int64(p.Seed)+int64(t+1)*75321)
		b.Li(2, 1)
		b.Label("loop")
		emitLCG(b, 5, 6, 7, c.nodes)
		b.Shl(6, 6, 3)
		b.Li(7, nodeBase)
		b.Add(6, 6, 7)
		b.RmwAdd(7, 6, 0, 2)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	total := uint64(iters) * uint64(p.Threads)
	nodes := c.nodes
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check: func(mem program.MemReader) error {
			var sum uint64
			for i := int64(0); i < nodes; i++ {
				sum += mem.ReadWord(uint64(nodeBase + i*8))
			}
			if sum != total {
				return fmt.Errorf("node weight sum = %d, want %d (RMW atomicity violated)", sum, total)
			}
			return checkResults(p.Threads, uint64(iters))(mem)
		},
	}
}

// ---- Archetype: hot work-queue operations (intruder) ----
// Threads check a queue's bounds (plain loads, creating Shared copies
// everywhere) and then pop/push with fetch-adds on the head/tail
// counters. Under MESI every fetch-add pays an invalidation round over
// all the reader copies; TSO-CC's GetX to Shared lines is granted
// immediately (§5's second explanation for outperforming MESI, and the
// RMW latencies of Figure 8).

type hotQueueCfg struct {
	iters     int64
	queues    int64 // distinct queues (head+tail counter pairs)
	slots     int64 // shared slot array words
	thinkNops int64
}

func hotQueue(name string, p Params, c hotQueueCfg) *program.Workload {
	counterBase := int64(dataBase + 0x0040_0000) // queue q: head at +q*128, tail at +q*128+64
	progs := make([]*program.Program, p.Threads)
	iters := p.scale(c.iters)
	for t := 0; t < p.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", name, t))
		b.Li(3, 0)
		b.Li(4, iters)
		b.Li(5, int64(p.Seed)+int64(t+1)*52361)
		b.Li(13, 1) // constant operand for fetch-adds
		b.Label("loop")
		// Pick a queue and locate its counters.
		emitLCG(b, 5, 6, 7, c.queues)
		b.Shl(6, 6, 7) // q * 128
		b.Li(7, counterBase)
		b.Add(6, 6, 7) // r6 = &head
		// Bounds check: plain loads of head and tail (spreads Shared
		// copies of both counter lines across all cores).
		b.Ld(7, 6, 0)  // head
		b.Ld(8, 6, 64) // tail
		// Pop: fetch-add the head counter.
		b.RmwAdd(7, 6, 0, 13)
		// Process the claimed slot: a shared-array write.
		b.Mod(8, 7, c.slots)
		b.Shl(8, 8, 3)
		b.Li(9, dataBase)
		b.Add(8, 8, 9)
		b.St(8, 0, 7)
		// Push: fetch-add the tail counter.
		b.RmwAdd(8, 6, 64, 13)
		if c.thinkNops > 0 {
			b.Nop(c.thinkNops)
		}
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		emitBarrier(b, int64(p.Threads))
		publishResult(b, 3)
		b.Halt()
		progs[t] = b.MustBuild()
	}
	total := uint64(iters) * uint64(p.Threads)
	queues := c.queues
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check: func(mem program.MemReader) error {
			var heads, tails uint64
			for q := int64(0); q < queues; q++ {
				heads += mem.ReadWord(uint64(counterBase + q*128))
				tails += mem.ReadWord(uint64(counterBase + q*128 + 64))
			}
			if heads != total || tails != total {
				return fmt.Errorf("queue counters head=%d tail=%d, want %d (RMW atomicity violated)",
					heads, tails, total)
			}
			return checkResults(p.Threads, uint64(iters))(mem)
		},
	}
}
