package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). It is used for workload address perturbation and litmus
// timing jitter; determinism across runs with the same seed is required
// for reproducible experiments, so math/rand's global state is avoided.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns a pseudo-random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator; used to give each simulated
// thread its own stream without correlating with siblings.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}
