package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

type countTicker struct {
	ticks int
	limit int
}

func (c *countTicker) Tick(now Cycle) { c.ticks++ }
func (c *countTicker) Done() bool     { return c.ticks >= c.limit }

func TestEngineRunsUntilDone(t *testing.T) {
	e := NewEngine(1000)
	ct := &countTicker{limit: 42}
	e.Register(ct)
	cycles, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 42 || ct.ticks != 42 {
		t.Fatalf("cycles=%d ticks=%d, want 42", cycles, ct.ticks)
	}
}

func TestEngineCycleLimit(t *testing.T) {
	e := NewEngine(10)
	e.Register(&countTicker{limit: 100})
	_, err := e.Run()
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
}

func TestEngineNoDoners(t *testing.T) {
	e := NewEngine(10)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected error with no completion conditions")
	}
}

func TestEngineMultipleDoners(t *testing.T) {
	e := NewEngine(1000)
	a := &countTicker{limit: 10}
	b := &countTicker{limit: 30}
	e.Register(a)
	e.Register(b)
	cycles, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 30 {
		t.Fatalf("cycles = %d, want 30 (slowest doner)", cycles)
	}
}

type orderTicker struct {
	id    int
	trace *[]int
}

func (o *orderTicker) Tick(now Cycle) {
	if now == 1 {
		*o.trace = append(*o.trace, o.id)
	}
}

func TestEngineTickOrderIsRegistrationOrder(t *testing.T) {
	e := NewEngine(10)
	var trace []int
	for i := 0; i < 5; i++ {
		e.Register(&orderTicker{id: i, trace: &trace})
	}
	e.RunFor(1)
	for i, id := range trace {
		if id != i {
			t.Fatalf("tick order %v, want ascending", trace)
		}
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine(0)
	ct := &countTicker{limit: 1 << 30}
	e.Register(ct)
	e.RunFor(17)
	if e.Now() != 17 || ct.ticks != 17 {
		t.Fatalf("now=%d ticks=%d, want 17", e.Now(), ct.ticks)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(54321)
	same := 0
	a = NewRNG(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 17, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%32) + 1
		p := NewRNG(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == size
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	check := func(seed uint64) bool {
		f := NewRNG(seed).Float64()
		return f >= 0 && f < 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Fork()
	// The fork advances the parent; two forks from identical parents
	// must themselves be identical (deterministic).
	p2 := NewRNG(99)
	c2 := p2.Fork()
	for i := 0; i < 100; i++ {
		if child.Uint64() != c2.Uint64() {
			t.Fatal("fork not deterministic")
		}
	}
}

func TestRNGInt63nBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(97)
		if v < 0 || v >= 97 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}
