// Package sim provides the deterministic simulation kernel used by the
// TSO-CC reproduction. All simulated components implement Ticker and are
// advanced in a fixed registration order, which makes every simulation
// run bit-for-bit reproducible for a given seed and configuration.
//
// The engine runs in one of two time-advancement modes that produce
// identical results:
//
//   - Per-cycle: every ticker is ticked once per cycle, in registration
//     order. Simple and the conformance baseline.
//   - Wake-set (default): the engine tracks a per-component due cycle
//     and, on every simulated cycle, ticks only the components that are
//     due — in registration order, so intra-cycle ordering is identical
//     to per-cycle execution. Cycles where no component is due are
//     leapt over entirely. A component becomes due through its own
//     NextWake hint (refreshed after each of its ticks) or through an
//     explicit cross-component wake (Engine.WakeAt / a Waker handle)
//     issued when external work — a mesh delivery, a completion
//     callback, a freshly scheduled timer — lands on it.
//
// Because a correct NextWake never overshoots the component's next
// self-driven action, and every external stimulation marks its receiver
// due, the sequence of effective (non-no-op) ticks — and therefore all
// simulated state — is bit-identical to per-cycle execution.
//
// If any ticker does not implement WakeHinter, the engine transparently
// falls back to per-cycle ticking.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"strings"

	"repro/internal/obs"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle int64

// WakeNever is the NextWake sentinel for "no self-scheduled work": the
// component has nothing to do until some other component's activity
// (a message delivery, a callback) re-enables it via a wake.
const WakeNever Cycle = 1<<63 - 1

// Ticker is a component advanced once per simulated cycle.
// Components must not assume any particular ordering relative to other
// tickers beyond the engine's fixed registration order.
type Ticker interface {
	// Tick advances the component to the given cycle.
	Tick(now Cycle)
}

// WakeHinter is the self-scheduling half of the wake-set contract.
// NextWake reports the earliest cycle strictly after now at which the
// component may perform work on its own (a due timer, a pending retry,
// an instruction to execute), or WakeNever if it is quiescent until
// externally stimulated.
//
// The hint must never be later than the component's true next action:
// returning now+1 is always safe (it degenerates to per-cycle ticking),
// returning too large a value skips real work and breaks determinism.
// The engine re-polls NextWake only after ticking the component, so the
// hint must cover every pending obligation visible in the component's
// own state (its timer heap, its inbox, its pending deliveries) — a
// wake delivered earlier via WakeAt does not survive the next tick.
type WakeHinter interface {
	NextWake(now Cycle) Cycle
}

// Waker is a component's handle for marking a registered component due.
// It is handed out at registration (see WakeSink) and is what lets
// external events — a mesh delivery into an inbox, a completion
// callback into a core, a timer scheduled from another component's tick
// — reach a component without the engine rescanning every hint. The
// zero Waker is valid and wakes nothing (standalone component tests).
type Waker struct {
	e  *Engine
	id int
}

// WakeAt marks the component due at cycle c. A wake at or before the
// cycle currently being dispatched means "as soon as possible": the
// component is ticked later this same cycle if its turn (registration
// order) has not passed yet, and next cycle otherwise — exactly when
// per-cycle execution would first act on the stimulation.
func (w Waker) WakeAt(c Cycle) {
	if w.e != nil {
		w.e.WakeAt(w.id, c)
	}
}

// Wake marks the component due now (the engine's current cycle): the
// receiver of an intra-cycle stimulation calls this from the entry
// point that accepted the work (Deliver, a completion callback).
func (w Waker) Wake() {
	if w.e != nil {
		w.e.WakeAt(w.id, w.e.now)
	}
}

// WakeSink is implemented by components that need a Waker — any
// component that can be stimulated from outside its own Tick. The
// engine binds the handle during Register.
type WakeSink interface {
	BindWaker(w Waker)
}

// Doner is implemented by components that can report completion.
// The engine stops when every registered Doner reports done.
type Doner interface {
	Done() bool
}

// Engine drives a set of tickers in deterministic order.
type Engine struct {
	now      Cycle
	tickers  []Ticker
	hinters  []WakeHinter // parallel to tickers; nil = no hint
	allHint  bool
	perCycle bool
	doners   []Doner
	donerFor []int // parallel to doners: ticker index, -1 for RegisterDoner
	maxCycle Cycle

	// Wake-set scheduling state. dueAt[i] is the earliest cycle
	// component i must be ticked at (WakeNever = quiescent); curMask is
	// the per-cycle dispatch bitmask over registration order, rebuilt at
	// each active cycle and mutated mid-dispatch by same-cycle wakes.
	// nextDueC caches the exact minimum of dueAt, maintained
	// incrementally: every lowering of a dueAt entry mins into it, and
	// dispatch — the only place entries are raised — recomputes the
	// minimum over the non-dispatched remainder during the mask-build
	// scan it already does. This removes the second O(components) pass
	// per active cycle (the nextDue scan), which matters once the
	// machine carries hundreds of registered components.
	dueAt       []Cycle
	nextDueC    Cycle
	curMask     []uint64
	pos         int // highest registration index already dispatched this cycle
	dispatching bool

	// Shard-local quiescence tracking (RunWindow). doneAt is the cycle
	// of the last dispatch after which every Doner reported done while
	// the engine stayed done since; it reconstructs the exact completion
	// cycle of a serial run when this engine is one shard of a
	// ShardedEngine (spurious no-op dispatches after quiescence do not
	// move it). wasDone is the episode flag: cleared whenever the engine
	// is observed non-done after a dispatch, or when the merge phase
	// injects new work (MarkActive).
	doneAt  Cycle
	wasDone bool

	// IdleSkipped counts cycles the wake-set mode never simulated
	// (throughput diagnostics; not part of any Result).
	IdleSkipped int64

	// Observability hooks (internal/obs). All nil/false by default;
	// they observe dispatch without influencing it, and the wake-set
	// loop pays one predictable branch per hook when disabled.
	// dispatchHist records how many components each wake-set dispatch
	// ticked; tl receives per-component tick spans (tlTid maps a
	// registration index to its timeline thread id — canonical serial
	// index on sharded engines — nil meaning identity); labelCtx holds
	// prebuilt pprof label contexts applied around each component tick.
	dispatchHist *obs.Hist
	tl           *obs.Timeline
	tlPid        int
	tlTid        []int
	labelCtx     []context.Context
	baseCtx      context.Context
}

// ErrCycleLimit is returned by Run when the cycle limit is reached
// before all Doners report completion (usually a deadlock or livelock
// in the simulated system).
var ErrCycleLimit = errors.New("sim: cycle limit reached before completion")

// Labeled is an optional component interface: a human-readable name
// used in forensic reports. Components without one are labeled by type.
type Labeled interface {
	ComponentLabel() string
}

// Debugger is an optional component interface: a one-line dump of the
// component's pending state (in-flight transactions, queued timers),
// included in forensic reports.
type Debugger interface {
	Debug() string
}

// PendingComponent is one registered component's state at the moment a
// run failed to complete, captured for forensic reports.
type PendingComponent struct {
	Index  int    // registration index
	Label  string // ComponentLabel() or the component's type
	Due    Cycle  // next cycle the component would act (WakeNever = quiescent)
	Done   bool   // false if the component is a Doner still pending
	Detail string // Debug() output, if implemented
}

// DeadlockError is returned by Run when the simulation cannot complete:
// either no component will ever act again while Doners are still
// pending (Stalled), or the cycle limit was hit first. It unwraps to
// ErrCycleLimit in both cases so existing errors.Is checks keep
// working; use errors.As to reach the forensic detail.
type DeadlockError struct {
	Cycle      Cycle // cycle at which progress stopped
	Limit      Cycle // the engine's cycle limit
	Stalled    bool  // true: WakeNever with pending Doners (a true deadlock)
	Components []PendingComponent
}

// Error summarizes the failure and names the components that are not
// done; the full per-component dump is in Components.
func (e *DeadlockError) Error() string {
	var pending []string
	for _, c := range e.Components {
		if !c.Done {
			pending = append(pending, c.Label)
		}
	}
	if e.Stalled {
		return fmt.Sprintf("sim: deadlock at cycle %d: no component has scheduled work but %d completion check(s) are pending (%s)",
			e.Cycle, len(pending), strings.Join(pending, ", "))
	}
	return fmt.Sprintf("%v (limit %d, %d pending: %s)",
		ErrCycleLimit, e.Limit, len(pending), strings.Join(pending, ", "))
}

// Unwrap lets errors.Is(err, ErrCycleLimit) match both flavors.
func (e *DeadlockError) Unwrap() error { return ErrCycleLimit }

// NewEngine returns an engine that refuses to run past maxCycle.
// A maxCycle of 0 selects a generous default.
func NewEngine(maxCycle Cycle) *Engine {
	if maxCycle <= 0 {
		maxCycle = 500_000_000
	}
	return &Engine{maxCycle: maxCycle, allHint: true, nextDueC: WakeNever}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// SetPerCycle forces per-cycle ticking even when every component offers
// wake hints (the conformance baseline for A/B determinism testing).
func (e *Engine) SetPerCycle(on bool) { e.perCycle = on }

// EventDriven reports whether the engine will use wake-set scheduling.
func (e *Engine) EventDriven() bool { return !e.perCycle && e.allHint }

// Register adds a ticker. If the ticker also implements Doner it
// participates in the completion check. Registration order defines
// execution order within a cycle. Tickers that also implement
// WakeHinter enable wake-set time advancement; a single ticker without
// a hint reverts the whole engine to per-cycle ticking (conformance
// fallback). Tickers implementing WakeSink receive their Waker here.
func (e *Engine) Register(t Ticker) {
	id := len(e.tickers)
	e.tickers = append(e.tickers, t)
	h, ok := t.(WakeHinter)
	if !ok {
		e.allHint = false
	}
	e.hinters = append(e.hinters, h)
	e.dueAt = append(e.dueAt, e.now+1)
	if e.now+1 < e.nextDueC {
		e.nextDueC = e.now + 1
	}
	if id>>6 >= len(e.curMask) {
		e.curMask = append(e.curMask, 0)
	}
	if d, ok := t.(Doner); ok {
		e.doners = append(e.doners, d)
		e.donerFor = append(e.donerFor, id)
	}
	if ws, ok := t.(WakeSink); ok {
		ws.BindWaker(Waker{e: e, id: id})
	}
}

// componentLabel names a registered component for observability
// (timeline thread names, pprof labels).
func (e *Engine) componentLabel(i int) string {
	if lb, ok := e.tickers[i].(Labeled); ok {
		return lb.ComponentLabel()
	}
	return fmt.Sprintf("component %d", i)
}

// SetDispatchHist installs a histogram observing the number of
// components ticked per wake-set dispatch (the wake-set occupancy
// series). Call after registration, before Run.
func (e *Engine) SetDispatchHist(h *obs.Hist) { e.dispatchHist = h }

// SetTimeline installs a timeline sink for per-component tick spans on
// process pid. tids maps registration index to timeline thread id (nil
// = identity; the ShardedEngine passes canonical serial indices).
// Thread-name metadata for every registered component is emitted
// immediately, so call after registration. Tick spans are produced by
// wake-set dispatch only — the per-cycle conformance mode ticks every
// component every cycle, which is exactly the information-free case.
func (e *Engine) SetTimeline(tl *obs.Timeline, pid int, tids []int) {
	e.tl, e.tlPid, e.tlTid = tl, pid, tids
	for i := range e.tickers {
		tl.ThreadName(pid, e.timelineTid(i), e.componentLabel(i))
	}
}

func (e *Engine) timelineTid(i int) int {
	if e.tlTid != nil {
		return e.tlTid[i]
	}
	return i
}

// EnableProfileLabels precomputes a pprof label context per component
// and applies it around each tick, so -cpuprofile samples attribute
// host time to simulated components. Call after registration. The
// labels only describe the host profile — they never touch simulated
// state — but label switching has host-time cost, so it is opt-in
// (config.Obs.ProfileLabels).
func (e *Engine) EnableProfileLabels(shard string) {
	e.baseCtx = context.Background()
	e.labelCtx = make([]context.Context, len(e.tickers))
	for i := range e.tickers {
		e.labelCtx[i] = pprof.WithLabels(e.baseCtx,
			pprof.Labels("shard", shard, "component", e.componentLabel(i)))
	}
}

// RegisterDoner adds a completion check that is not a ticker.
func (e *Engine) RegisterDoner(d Doner) {
	e.doners = append(e.doners, d)
	e.donerFor = append(e.donerFor, -1)
}

// Snapshot captures every registered component's pending state for a
// forensic report: label, next due cycle, completion status, and the
// component's own Debug dump when it offers one. Non-ticker Doners
// (external completion checks) that are still pending are appended with
// Index -1.
func (e *Engine) Snapshot() []PendingComponent {
	done := make(map[int]bool, len(e.doners))
	for di, d := range e.doners {
		if i := e.donerFor[di]; i >= 0 {
			done[i] = d.Done()
		}
	}
	out := make([]PendingComponent, 0, len(e.tickers))
	for i, t := range e.tickers {
		pc := PendingComponent{Index: i, Due: e.dueAt[i], Done: true}
		if !e.EventDriven() {
			// dueAt is not maintained in per-cycle mode; fall back to the
			// component's own hint when it has one.
			pc.Due = WakeNever
			if e.hinters[i] != nil {
				pc.Due = e.hinters[i].NextWake(e.now)
			}
		}
		if lb, ok := t.(Labeled); ok {
			pc.Label = lb.ComponentLabel()
		} else {
			pc.Label = fmt.Sprintf("%T", t)
		}
		if d, ok := done[i]; ok {
			pc.Done = d
		}
		if dbg, ok := t.(Debugger); ok {
			pc.Detail = dbg.Debug()
		}
		out = append(out, pc)
	}
	for di, d := range e.doners {
		if e.donerFor[di] >= 0 || d.Done() {
			continue
		}
		pc := PendingComponent{Index: -1, Due: WakeNever}
		if lb, ok := d.(Labeled); ok {
			pc.Label = lb.ComponentLabel()
		} else {
			pc.Label = fmt.Sprintf("%T", d)
		}
		if dbg, ok := d.(Debugger); ok {
			pc.Detail = dbg.Debug()
		}
		out = append(out, pc)
	}
	return out
}

// deadlockError builds the typed failure for the current engine state.
func (e *Engine) deadlockError(stalled bool) *DeadlockError {
	return &DeadlockError{
		Cycle:      e.now,
		Limit:      e.maxCycle,
		Stalled:    stalled,
		Components: e.Snapshot(),
	}
}

// WakeAt marks component id due at cycle c (the Waker handle calls
// this). Wakes at or before the current cycle fold into the in-flight
// dispatch when the component's turn has not passed, and defer to
// now+1 when it has — the first cycle per-cycle execution could act.
func (e *Engine) WakeAt(id int, c Cycle) {
	if c <= e.now {
		if e.dispatching && id > e.pos {
			e.curMask[id>>6] |= 1 << (uint(id) & 63)
			return
		}
		c = e.now + 1
	}
	if c < e.dueAt[id] {
		e.dueAt[id] = c
		if c < e.nextDueC {
			e.nextDueC = c
		}
	}
}

// Step advances the simulation a single cycle, ticking every component
// (per-cycle semantics).
func (e *Engine) Step() {
	e.now++
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
}

// nextDue reports the earliest cycle any component is due at — the
// incrementally maintained cache, not a scan (see nextDueC).
func (e *Engine) nextDue() Cycle { return e.nextDueC }

// dispatch ticks every due component at the current cycle in
// registration order. Components woken mid-dispatch for this same cycle
// (a mesh delivery into an inbox, a completion callback into a core)
// are picked up in the same pass as long as their turn has not passed;
// bit identity with per-cycle execution holds because stimulation only
// flows forward in registration order within a cycle (network → L2s →
// L1s → frontends), which mirrors per-cycle tick order.
func (e *Engine) dispatch() {
	now := e.now
	for w := range e.curMask {
		e.curMask[w] = 0
	}
	// One pass builds the dispatch mask and recomputes the due-cache
	// floor over the components NOT dispatched this cycle. Dispatched
	// components' entries are consumed below and re-enter the cache
	// through their post-tick hints; every other lowering during the
	// tick loop (WakeAt) mins into nextDueC as it happens, so the cache
	// is exact again by the time dispatch returns. The rare legal
	// staleness — a component ticked via same-cycle mask folding whose
	// previously scanned future due evaporates — only makes the cache
	// early, never late: the engine performs one empty dispatch at the
	// stale cycle and the scan below heals the cache.
	m1 := WakeNever
	for i, d := range e.dueAt {
		if d <= now {
			e.curMask[i>>6] |= 1 << (uint(i) & 63)
		} else if d < m1 {
			m1 = d
		}
	}
	e.nextDueC = m1
	e.dispatching = true
	e.pos = -1
	ticked := 0
	for w := 0; w < len(e.curMask); {
		wordBits := e.curMask[w]
		if wordBits == 0 {
			// Word exhausted: everything below the next word has had its
			// turn; later same-cycle wakes for these indices defer to now+1.
			e.pos = (w+1)<<6 - 1
			w++
			continue
		}
		i := w<<6 + bits.TrailingZeros64(wordBits)
		e.curMask[w] = wordBits & (wordBits - 1)
		e.pos = i
		// Consume the due entry before ticking: wakes issued during the
		// tick (timers the component schedules on itself, messages it
		// receives) min into a clean slate, and the post-tick hint covers
		// all remaining self-visible work.
		e.dueAt[i] = WakeNever
		if e.labelCtx != nil {
			pprof.SetGoroutineLabels(e.labelCtx[i])
		}
		e.tickers[i].Tick(now)
		ticked++
		if e.tl != nil {
			e.tl.Tick(e.tlPid, e.timelineTid(i), int64(now))
		}
		if h := e.hinters[i].NextWake(now); h < e.dueAt[i] {
			if h <= now {
				h = now + 1 // a hint at or before now means "tick me next cycle"
			}
			e.dueAt[i] = h
			if h < e.nextDueC {
				e.nextDueC = h
			}
		}
	}
	e.dispatching = false
	e.pos = len(e.tickers)
	if e.labelCtx != nil {
		pprof.SetGoroutineLabels(e.baseCtx)
	}
	if e.dispatchHist != nil {
		e.dispatchHist.Observe(int64(ticked))
	}
}

// Run advances the simulation until every Doner reports done, or the
// cycle limit is hit. It returns the final cycle count.
func (e *Engine) Run() (Cycle, error) {
	if len(e.doners) == 0 {
		return e.now, fmt.Errorf("sim: no completion conditions registered")
	}
	if !e.EventDriven() {
		for {
			if e.allDone() {
				return e.now, nil
			}
			if e.now >= e.maxCycle {
				return e.now, e.deadlockError(false)
			}
			e.Step()
		}
	}
	// Wake-set mode. Start from a clean slate: every component is due on
	// the first cycle (mirroring per-cycle execution, which ticks
	// everything from cycle 1), and hints are collected as they tick.
	for i := range e.dueAt {
		e.dueAt[i] = e.now + 1
	}
	if len(e.dueAt) > 0 {
		e.nextDueC = e.now + 1
	}
	for {
		if e.allDone() {
			return e.now, nil
		}
		if e.now >= e.maxCycle {
			return e.now, e.deadlockError(false)
		}
		next := e.nextDue()
		if next == WakeNever {
			// No component will ever act again, yet Doners are pending: a
			// true deadlock. Report it at the stall cycle instead of
			// silently advancing to the cycle limit.
			return e.now, e.deadlockError(true)
		}
		if next > e.maxCycle {
			// The earliest scheduled work lies beyond the limit (a
			// livelock against the clock); stop at the limit like
			// per-cycle mode would.
			e.IdleSkipped += int64(e.maxCycle - e.now - 1)
			e.now = e.maxCycle
			return e.now, e.deadlockError(false)
		}
		e.IdleSkipped += int64(next - e.now - 1)
		e.now = next
		e.dispatch()
	}
}

// RunFor advances exactly n cycles regardless of completion state,
// ticking every component every cycle.
func (e *Engine) RunFor(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		e.Step()
	}
}

// RunWindow advances the wake-set scheduler through every due cycle
// strictly before end, then returns. It is the shard-local epoch body of
// the ShardedEngine: the caller (a shard goroutine) owns this engine
// exclusively while the window runs, and the conservative lookahead
// guarantees no cross-shard stimulation can land inside the window.
// Unlike Run it enforces no completion or cycle-limit policy — the
// coordinator does, across all shards at the barrier.
func (e *Engine) RunWindow(end Cycle) {
	for {
		next := e.nextDue()
		if next >= end {
			return
		}
		e.now = next
		e.dispatch()
		if e.allDone() {
			if !e.wasDone {
				e.wasDone = true
				e.doneAt = e.now
			}
		} else {
			e.wasDone = false
		}
	}
}

// NextDue reports the earliest cycle any component is due at
// (WakeNever when the engine is fully quiescent). Only meaningful in
// wake-set mode; the ShardedEngine coordinator uses it to pick the next
// epoch window across shards.
func (e *Engine) NextDue() Cycle { return e.nextDue() }

// Quiesced reports whether every registered Doner is done.
func (e *Engine) Quiesced() bool { return e.allDone() }

// DoneAt reports the cycle of the engine's last effective dispatch
// before it (most recently) quiesced — see RunWindow. Zero if the
// engine never dispatched.
func (e *Engine) DoneAt() Cycle { return e.doneAt }

// MarkActive clears the quiescence episode flag. The ShardedEngine's
// merge phase calls it on every shard it schedules a cross-shard
// delivery into, so the shard's next quiescence records a fresh DoneAt
// instead of reusing the pre-delivery one.
func (e *Engine) MarkActive() { e.wasDone = false }

// DispatchIndex reports the registration index of the component
// currently being ticked (meaningful only during a dispatch). The
// sharded mesh uses it to stamp outbound messages with the sender's
// position in the serial engine's intra-cycle order.
func (e *Engine) DispatchIndex() int { return e.pos }

func (e *Engine) allDone() bool {
	for _, d := range e.doners {
		if !d.Done() {
			return false
		}
	}
	return true
}
