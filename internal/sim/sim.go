// Package sim provides the deterministic, cycle-driven simulation kernel
// used by the TSO-CC reproduction. All simulated components implement
// Ticker and are advanced in a fixed registration order once per cycle,
// which makes every simulation run bit-for-bit reproducible for a given
// seed and configuration.
package sim

import (
	"errors"
	"fmt"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle int64

// Ticker is a component advanced once per simulated cycle.
// Components must not assume any particular ordering relative to other
// tickers beyond the engine's fixed registration order.
type Ticker interface {
	// Tick advances the component to the given cycle.
	Tick(now Cycle)
}

// Doner is implemented by components that can report completion.
// The engine stops when every registered Doner reports done.
type Doner interface {
	Done() bool
}

// Engine drives a set of tickers in deterministic order.
type Engine struct {
	now      Cycle
	tickers  []Ticker
	doners   []Doner
	maxCycle Cycle
}

// ErrCycleLimit is returned by Run when the cycle limit is reached
// before all Doners report completion (usually a deadlock or livelock
// in the simulated system).
var ErrCycleLimit = errors.New("sim: cycle limit reached before completion")

// NewEngine returns an engine that refuses to run past maxCycle.
// A maxCycle of 0 selects a generous default.
func NewEngine(maxCycle Cycle) *Engine {
	if maxCycle <= 0 {
		maxCycle = 500_000_000
	}
	return &Engine{maxCycle: maxCycle}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Register adds a ticker. If the ticker also implements Doner it
// participates in the completion check. Registration order defines
// per-cycle execution order.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
	if d, ok := t.(Doner); ok {
		e.doners = append(e.doners, d)
	}
}

// RegisterDoner adds a completion check that is not a ticker.
func (e *Engine) RegisterDoner(d Doner) { e.doners = append(e.doners, d) }

// Step advances the simulation a single cycle.
func (e *Engine) Step() {
	e.now++
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
}

// Run advances the simulation until every Doner reports done, or the
// cycle limit is hit. It returns the final cycle count.
func (e *Engine) Run() (Cycle, error) {
	if len(e.doners) == 0 {
		return e.now, fmt.Errorf("sim: no completion conditions registered")
	}
	for {
		if e.allDone() {
			return e.now, nil
		}
		if e.now >= e.maxCycle {
			return e.now, fmt.Errorf("%w (limit %d)", ErrCycleLimit, e.maxCycle)
		}
		e.Step()
	}
}

// RunFor advances exactly n cycles regardless of completion state.
func (e *Engine) RunFor(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		e.Step()
	}
}

func (e *Engine) allDone() bool {
	for _, d := range e.doners {
		if !d.Done() {
			return false
		}
	}
	return true
}
