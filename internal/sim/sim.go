// Package sim provides the deterministic simulation kernel used by the
// TSO-CC reproduction. All simulated components implement Ticker and are
// advanced in a fixed registration order, which makes every simulation
// run bit-for-bit reproducible for a given seed and configuration.
//
// The engine runs in one of two time-advancement modes that produce
// identical results:
//
//   - Per-cycle: every ticker is ticked once per cycle, in registration
//     order. Simple and the conformance baseline.
//   - Event-driven (default): when every registered ticker also
//     implements WakeHinter, the engine asks each component for the
//     earliest cycle at which it may act and leaps `now` directly there,
//     skipping cycles in which every component would have been a no-op.
//     Because a correct NextWake never overshoots the component's next
//     action, the sequence of non-idle ticks — and therefore all
//     simulated state — is bit-identical to per-cycle execution.
//
// If any ticker does not implement WakeHinter, the engine transparently
// falls back to per-cycle ticking.
package sim

import (
	"errors"
	"fmt"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle int64

// WakeNever is the NextWake sentinel for "no self-scheduled work": the
// component has nothing to do until some other component's activity
// (a message delivery, a callback) re-enables it at an already-active
// cycle.
const WakeNever Cycle = 1<<63 - 1

// Ticker is a component advanced once per simulated cycle.
// Components must not assume any particular ordering relative to other
// tickers beyond the engine's fixed registration order.
type Ticker interface {
	// Tick advances the component to the given cycle.
	Tick(now Cycle)
}

// WakeHinter is the optional scheduling contract that enables idle-skip
// execution. NextWake reports the earliest cycle strictly after now at
// which the component may perform work on its own (a due timer, a
// pending retry, an instruction to execute), or WakeNever if it is
// quiescent until externally stimulated.
//
// The hint must never be later than the component's true next action:
// returning now+1 is always safe (it degenerates to per-cycle ticking),
// returning too large a value skips real work and breaks determinism.
// Work triggered by another component within a cycle (e.g. a callback
// fired by an earlier-registered ticker) needs no hint: the engine ticks
// every component at every active cycle.
type WakeHinter interface {
	NextWake(now Cycle) Cycle
}

// Doner is implemented by components that can report completion.
// The engine stops when every registered Doner reports done.
type Doner interface {
	Done() bool
}

// Engine drives a set of tickers in deterministic order.
type Engine struct {
	now       Cycle
	tickers   []Ticker
	hinters   []WakeHinter // parallel to tickers; nil = no hint
	allHint   bool
	perCycle  bool
	scanStart int
	doners    []Doner
	maxCycle  Cycle

	// IdleSkipped counts cycles the event-driven mode never simulated
	// (throughput diagnostics; not part of any Result).
	IdleSkipped int64
}

// ErrCycleLimit is returned by Run when the cycle limit is reached
// before all Doners report completion (usually a deadlock or livelock
// in the simulated system).
var ErrCycleLimit = errors.New("sim: cycle limit reached before completion")

// NewEngine returns an engine that refuses to run past maxCycle.
// A maxCycle of 0 selects a generous default.
func NewEngine(maxCycle Cycle) *Engine {
	if maxCycle <= 0 {
		maxCycle = 500_000_000
	}
	return &Engine{maxCycle: maxCycle, allHint: true}
}

// Now reports the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// SetPerCycle forces per-cycle ticking even when every component offers
// wake hints (the conformance baseline for A/B determinism testing).
func (e *Engine) SetPerCycle(on bool) { e.perCycle = on }

// EventDriven reports whether the engine will use idle-skip scheduling.
func (e *Engine) EventDriven() bool { return !e.perCycle && e.allHint }

// Register adds a ticker. If the ticker also implements Doner it
// participates in the completion check. Registration order defines
// per-cycle execution order. Tickers that also implement WakeHinter
// enable event-driven time advancement; a single ticker without a hint
// reverts the whole engine to per-cycle ticking (conformance fallback).
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
	h, ok := t.(WakeHinter)
	if !ok {
		e.allHint = false
	}
	e.hinters = append(e.hinters, h)
	if d, ok := t.(Doner); ok {
		e.doners = append(e.doners, d)
	}
}

// RegisterDoner adds a completion check that is not a ticker.
func (e *Engine) RegisterDoner(d Doner) { e.doners = append(e.doners, d) }

// Step advances the simulation a single cycle.
func (e *Engine) Step() {
	e.now++
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
}

// nextWake computes the earliest cycle any component may act at, never
// earlier than now+1 (a hint at or before now means "tick me next
// cycle"). The scan starts at the component that bound the previous
// decision: during dense phases (a spinning core) the first probe
// answers immediately, making the scan O(1) instead of O(components).
// Scan order cannot affect the result — only the early exit.
func (e *Engine) nextWake() Cycle {
	n := len(e.hinters)
	earliest := WakeNever
	for k := 0; k < n; k++ {
		i := e.scanStart + k
		if i >= n {
			i -= n
		}
		if w := e.hinters[i].NextWake(e.now); w < earliest {
			earliest = w
			if earliest <= e.now+1 {
				e.scanStart = i
				return e.now + 1
			}
		}
	}
	if earliest <= e.now {
		earliest = e.now + 1
	}
	return earliest
}

// Run advances the simulation until every Doner reports done, or the
// cycle limit is hit. It returns the final cycle count.
func (e *Engine) Run() (Cycle, error) {
	if len(e.doners) == 0 {
		return e.now, fmt.Errorf("sim: no completion conditions registered")
	}
	event := e.EventDriven()
	for {
		if e.allDone() {
			return e.now, nil
		}
		if e.now >= e.maxCycle {
			return e.now, fmt.Errorf("%w (limit %d)", ErrCycleLimit, e.maxCycle)
		}
		if event {
			next := e.nextWake()
			if next > e.now+1 {
				// Everything is idle until `next`: leap straight there.
				// WakeNever with pending Doners is a deadlock; advance to
				// the limit so the error path matches per-cycle mode.
				if next > e.maxCycle {
					next = e.maxCycle
				}
				e.IdleSkipped += int64(next - e.now - 1)
				e.now = next - 1
			}
		}
		e.Step()
	}
}

// RunFor advances exactly n cycles regardless of completion state.
func (e *Engine) RunFor(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		e.Step()
	}
}

func (e *Engine) allDone() bool {
	for _, d := range e.doners {
		if !d.Done() {
			return false
		}
	}
	return true
}
