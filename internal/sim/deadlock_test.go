package sim

import (
	"errors"
	"strings"
	"testing"
)

// wakeDropper models the classic lost-wakeup bug: it has real pending
// work (it is not Done) but, after its first tick, reports WakeNever
// and never self-schedules again — the wake that should have driven its
// next step was "dropped". The watchdog must catch this as a deadlock
// and name the component in the report.
type wakeDropper struct {
	ticks int
}

func (w *wakeDropper) Tick(now Cycle)           { w.ticks++ }
func (w *wakeDropper) Done() bool               { return w.ticks >= 10 }
func (w *wakeDropper) NextWake(now Cycle) Cycle { return WakeNever }
func (w *wakeDropper) ComponentLabel() string   { return "dropper-7" }
func (w *wakeDropper) Debug() string            { return "stuck after first tick; 9 ticks owed" }

// healthy is a quiescent, completed component registered alongside the
// dropper so the report has to distinguish stalled from done.
type healthy struct{}

func (healthy) Tick(now Cycle)           {}
func (healthy) Done() bool               { return true }
func (healthy) NextWake(now Cycle) Cycle { return WakeNever }
func (healthy) ComponentLabel() string   { return "healthy-0" }

// TestWatchdogNamesStalledComponent: a wake-dropping component must
// surface as a typed DeadlockError whose report names the stalled
// component (and only it) with its label, due cycle, and debug detail.
func TestWatchdogNamesStalledComponent(t *testing.T) {
	e := NewEngine(10_000)
	e.Register(healthy{})
	d := &wakeDropper{}
	e.Register(d)

	_, err := e.Run()
	if err == nil {
		t.Fatal("wake-dropping component must deadlock the run")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %T (%v), want *DeadlockError", err, err)
	}
	if !dl.Stalled {
		t.Fatalf("deadlock not flagged as stalled: %+v", dl)
	}
	if dl.Cycle >= 10_000 {
		t.Fatalf("deadlock reported at the cycle limit (%d), want the stall cycle", dl.Cycle)
	}
	if !strings.Contains(err.Error(), "dropper-7") {
		t.Fatalf("error does not name the stalled component: %v", err)
	}
	if strings.Contains(err.Error(), "healthy-0") {
		t.Fatalf("error names a healthy component as pending: %v", err)
	}
	var stalled *PendingComponent
	for i := range dl.Components {
		if dl.Components[i].Label == "dropper-7" {
			stalled = &dl.Components[i]
		}
	}
	if stalled == nil {
		t.Fatalf("snapshot missing the stalled component: %+v", dl.Components)
	}
	if stalled.Done {
		t.Fatal("stalled component reported as done")
	}
	if stalled.Due != WakeNever {
		t.Fatalf("stalled component due = %d, want WakeNever", stalled.Due)
	}
	if !strings.Contains(stalled.Detail, "9 ticks owed") {
		t.Fatalf("snapshot missing the component's Debug detail: %q", stalled.Detail)
	}
}

// TestDeadlockErrorAtLimit: per-cycle mode reports the same typed error
// at the cycle limit, with component labels resolved from NextWake
// hints where available.
func TestDeadlockErrorAtLimit(t *testing.T) {
	e := NewEngine(25)
	e.SetPerCycle(true)
	d := &wakeDropper{}
	d.ticks = -1 << 30 // never reaches Done even when ticked every cycle
	e.Register(d)
	_, err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %T, want *DeadlockError", err)
	}
	if dl.Stalled || dl.Cycle != 25 || dl.Limit != 25 {
		t.Fatalf("want cycle-limit exit at 25, got %+v", dl)
	}
	if !strings.Contains(err.Error(), "dropper-7") {
		t.Fatalf("error does not name the pending component: %v", err)
	}
}
