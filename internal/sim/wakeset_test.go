package sim

import (
	"fmt"
	"testing"
)

// workRec is one unit of observable work: toy `id` acted at cycle `at`.
// The property below asserts the full (id, at) sequence — including
// intra-cycle order — is identical between the wake-set engine and a
// scan-all reference.
type workRec struct {
	id int
	at Cycle
}

// stimToy is a randomized component for the wake-set property test. It
// has a scripted schedule of self-driven work (selfDue, covered by
// NextWake) and accepts external stimulations (AddStim — the analogue
// of a mesh delivery or a completion callback), which wake it through
// its Waker. Whenever it does work it may, deterministically from its
// own RNG, stimulate a random peer at a random near-future cycle —
// including the current cycle, in both the forward (peer not yet
// ticked) and backward (peer's turn already passed) directions.
type stimToy struct {
	id    int
	peers []*stimToy
	waker Waker // zero in reference mode

	selfDue []Cycle // ascending; consumed from the front
	stim    []Cycle // pending external stimulations
	rng     *RNG
	log     *[]workRec

	// Sharded-property-test fields (zero in the single-engine tests):
	// toys on different shards may only stimulate each other at least
	// `look` cycles ahead, and when `route` is set those stimulations go
	// through it (the sharded run's cross-shard outbox) instead of
	// landing directly.
	shard int
	look  Cycle
	route func(target *stimToy, at Cycle)
}

func (t *stimToy) BindWaker(w Waker) { t.waker = w }

// AddStim lands external work on the toy: recorded in its own state
// (visible to NextWake, like an inbox) and self-woken (like Deliver).
func (t *stimToy) AddStim(c Cycle) {
	t.stim = append(t.stim, c)
	t.waker.WakeAt(c)
}

func (t *stimToy) Tick(now Cycle) {
	worked := false
	for len(t.selfDue) > 0 && t.selfDue[0] <= now {
		t.selfDue = t.selfDue[1:]
		worked = true
	}
	kept := t.stim[:0]
	for _, c := range t.stim {
		if c <= now {
			worked = true
		} else {
			kept = append(kept, c)
		}
	}
	t.stim = kept
	if !worked {
		return
	}
	*t.log = append(*t.log, workRec{id: t.id, at: now})
	// Deterministically derived side effects: the RNG is consumed only on
	// work events, so both engines (which must agree on the work
	// sequence) draw identical streams.
	if t.rng != nil && t.rng.Intn(2) == 0 {
		target := t.peers[t.rng.Intn(len(t.peers))]
		delta := Cycle(t.rng.Intn(4)) // 0..3; 0 = same-cycle stimulation
		if target.shard != t.shard {
			if delta < t.look {
				delta = t.look // cross-shard: conservative lookahead floor
			}
			if t.route != nil {
				t.route(target, now+delta)
				return
			}
		}
		target.AddStim(now + delta)
	}
}

func (t *stimToy) NextWake(now Cycle) Cycle {
	earliest := WakeNever
	if len(t.selfDue) > 0 {
		earliest = t.selfDue[0]
	}
	for _, c := range t.stim {
		if c < earliest {
			earliest = c
		}
	}
	return earliest
}

func (t *stimToy) Done() bool { return len(t.selfDue) == 0 && len(t.stim) == 0 }

// buildToys constructs one seeded scenario: n toys with sparse random
// self-schedules, wired as mutual peers.
func buildToys(seed uint64, log *[]workRec) []*stimToy {
	rng := NewRNG(seed)
	n := 1 + rng.Intn(8)
	toys := make([]*stimToy, n)
	for i := range toys {
		toys[i] = &stimToy{id: i, rng: NewRNG(seed*1000 + uint64(i)), log: log}
	}
	for i, t := range toys {
		t.peers = toys
		c := Cycle(0)
		for k := 0; k < rng.Intn(20); k++ {
			c += 1 + Cycle(rng.Intn(200))
			t.selfDue = append(t.selfDue, c)
		}
		_ = i
	}
	// Guarantee at least one unit of work so Run has something to do.
	if allEmpty := func() bool {
		for _, t := range toys {
			if len(t.selfDue) > 0 {
				return false
			}
		}
		return true
	}(); allEmpty {
		toys[0].selfDue = append(toys[0].selfDue, 1)
	}
	return toys
}

// runReference executes the scan-all baseline: at every step, poll every
// component's NextWake, leap to the earliest, tick ALL components in
// registration order. This is the old event engine's contract; toys
// record work only when they actually have some, so its log is directly
// comparable to the wake-set engine's.
func runReference(t *testing.T, toys []*stimToy, maxCycle Cycle) Cycle {
	t.Helper()
	now := Cycle(0)
	done := func() bool {
		for _, toy := range toys {
			if !toy.Done() {
				return false
			}
		}
		return true
	}
	for !done() {
		if now >= maxCycle {
			t.Fatal("reference run hit the cycle limit")
		}
		next := WakeNever
		for _, toy := range toys {
			if h := toy.NextWake(now); h < next {
				next = h
			}
		}
		if next == WakeNever {
			t.Fatal("reference run stuck: pending work but no wake")
		}
		if next <= now {
			next = now + 1
		}
		now = next
		for _, toy := range toys {
			toy.Tick(now)
		}
	}
	return now
}

// TestWakeSetMatchesScanAllReference is the wake-set scheduler's
// property gate: across many random interleavings of self-scheduled
// work, cross-component WakeAt stimulation (same-cycle forward and
// backward, and future-cycle), NextWake polling and ticking, the
// wake-set engine must produce exactly the scan-all reference's work
// sequence — same cycles, same intra-cycle order, same final cycle.
func TestWakeSetMatchesScanAllReference(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const limit = 1_000_000

			var refLog []workRec
			refToys := buildToys(seed, &refLog)
			refCycles := runReference(t, refToys, limit)

			var wsLog []workRec
			wsToys := buildToys(seed, &wsLog)
			e := NewEngine(limit)
			for _, toy := range wsToys {
				e.Register(toy)
			}
			if !e.EventDriven() {
				t.Fatal("toys should enable wake-set mode")
			}
			wsCycles, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}

			if wsCycles != refCycles {
				t.Fatalf("final cycles differ: wake-set %d, reference %d", wsCycles, refCycles)
			}
			if len(wsLog) != len(refLog) {
				t.Fatalf("work counts differ: wake-set %d, reference %d", len(wsLog), len(refLog))
			}
			for i := range wsLog {
				if wsLog[i] != refLog[i] {
					t.Fatalf("work[%d]: wake-set %+v, reference %+v", i, wsLog[i], refLog[i])
				}
			}
		})
	}
}

// TestWakeAtBeforeOwnTurnSameCycle pins the mid-dispatch semantics
// directly: a component stimulated at the current cycle by an
// earlier-registered component must act this same cycle (its turn is
// still ahead), while a stimulation flowing backward — to a component
// whose turn already passed — must land exactly one cycle later.
func TestWakeAtBeforeOwnTurnSameCycle(t *testing.T) {
	var log []workRec
	back := &stimToy{id: 0, log: &log}    // registered before the source
	forward := &stimToy{id: 2, log: &log} // registered after the source
	src := &scriptTicker{at: 5, run: func(now Cycle) {
		back.AddStim(now)    // backward: turn passed -> acts at 6
		forward.AddStim(now) // forward: turn ahead -> acts at 5
	}}
	e := NewEngine(100)
	e.Register(back)
	e.Register(src)
	e.Register(forward)
	cycles, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []workRec{{id: 2, at: 5}, {id: 0, at: 6}}
	if len(log) != len(want) {
		t.Fatalf("log %+v, want %+v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log %+v, want %+v", log, want)
		}
	}
	if cycles != 6 {
		t.Fatalf("cycles = %d, want 6", cycles)
	}
}

// scriptTicker runs a callback at one scripted cycle.
type scriptTicker struct {
	at   Cycle
	run  func(now Cycle)
	done bool
}

func (s *scriptTicker) Tick(now Cycle) {
	if !s.done && now == s.at {
		s.done = true
		s.run(now)
	}
}

func (s *scriptTicker) NextWake(now Cycle) Cycle {
	if s.done {
		return WakeNever
	}
	return s.at
}

func (s *scriptTicker) Done() bool { return s.done }
