package sim

import (
	"fmt"
	"sort"
	"testing"
)

// stimOut is one buffered cross-shard stimulation awaiting its epoch
// barrier. Each sending shard's outbox preserves emission order; the
// merge drains outboxes in shard order, which is deterministic (and
// sufficient: stimulation application order is not observable to toys).
type stimOut struct {
	target *stimToy
	at     Cycle
}

// toyDoner reports one shard's toys all idle.
type toyDoner struct{ toys []*stimToy }

func (d *toyDoner) Done() bool {
	for _, t := range d.toys {
		if !t.Done() {
			return false
		}
	}
	return true
}

// buildShardedToys is buildToys plus a shard assignment: toy i lands on
// shard i*k/n (contiguous ranges, like the system's tile plan), and the
// cross-shard lookahead floor is wired into every toy so the reference
// and sharded runs draw identical stimulation schedules.
func buildShardedToys(seed uint64, look Cycle, log *[]workRec) (toys []*stimToy, shards int) {
	toys = buildToys(seed, log)
	n := len(toys)
	shards = 1 + int(seed%4)
	if shards > n {
		shards = n
	}
	for i, t := range toys {
		t.shard = i * shards / n
		t.look = look
	}
	return toys, shards
}

// TestShardedEngineMatchesScanAllReference is the parallel engine's
// property gate, mirroring TestWakeSetMatchesScanAllReference one level
// up: across many random scenarios of self-scheduled work, same-cycle
// intra-shard stimulation, and cross-shard stimulation (floored at the
// lookahead and routed through per-shard outboxes merged at epoch
// barriers), the sharded engine must produce exactly the scan-all
// reference's work — same cycles, same per-cycle component order, same
// final cycle — for every seed and its derived shard count.
func TestShardedEngineMatchesScanAllReference(t *testing.T) {
	const look = Cycle(2)
	const limit = 1_000_000
	for seed := uint64(1); seed <= 60; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var refLog []workRec
			refToys, shards := buildShardedToys(seed, look, &refLog)
			refCycles := runReference(t, refToys, limit)

			// The sharded run keeps one work log per shard (each is
			// appended to by its own goroutine) and one outbox per shard.
			shLogs := make([]*[]workRec, shards)
			outboxes := make([][]stimOut, shards)
			var shToys []*stimToy
			shToys, _ = buildShardedToys(seed, look, nil)
			for _, toy := range shToys {
				l := shLogs[toy.shard]
				if l == nil {
					l = new([]workRec)
					shLogs[toy.shard] = l
				}
				toy.log = l
				s := toy.shard
				toy.route = func(target *stimToy, at Cycle) {
					outboxes[s] = append(outboxes[s], stimOut{target: target, at: at})
				}
			}
			se := NewShardedEngine(shards, look, limit)
			for _, toy := range shToys {
				se.Register(toy.shard, toy.id, toy)
			}
			for s := 0; s < shards; s++ {
				d := &toyDoner{}
				for _, toy := range shToys {
					if toy.shard == s {
						d.toys = append(d.toys, toy)
					}
				}
				se.RegisterDoner(s, d)
			}
			se.SetMerge(func(windowEnd Cycle) {
				for s := range outboxes {
					for _, o := range outboxes[s] {
						if o.at < windowEnd {
							t.Errorf("cross-shard stim for cycle %d inside window ending %d", o.at, windowEnd)
						}
						o.target.AddStim(o.at)
						se.MarkShardActive(o.target.shard)
					}
					outboxes[s] = outboxes[s][:0]
				}
			})
			shCycles, err := se.Run()
			if err != nil {
				t.Fatal(err)
			}
			if shCycles != refCycles {
				t.Fatalf("final cycles differ: sharded %d, reference %d", shCycles, refCycles)
			}

			// Merge the per-shard logs into global (cycle, id) order — the
			// order the reference logged in, since it ticks components by
			// ascending id within each cycle.
			var merged []workRec
			for _, l := range shLogs {
				if l != nil {
					merged = append(merged, *l...)
				}
			}
			sort.Slice(merged, func(i, j int) bool {
				if merged[i].at != merged[j].at {
					return merged[i].at < merged[j].at
				}
				return merged[i].id < merged[j].id
			})
			if len(merged) != len(refLog) {
				t.Fatalf("work counts differ: sharded %d, reference %d", len(merged), len(refLog))
			}
			for i := range merged {
				if merged[i] != refLog[i] {
					t.Fatalf("work[%d]: sharded %+v, reference %+v", i, merged[i], refLog[i])
				}
			}
		})
	}
}
