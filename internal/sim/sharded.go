package sim

import (
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ShardedEngine runs the wake-set scheduler in parallel across shards:
// each shard is a private Engine owning a disjoint subset of the
// system's components (whole tiles — a core, its L1, its directory
// slice — so every intra-cycle stimulation stays shard-local), advanced
// by its own goroutine. Shards synchronize at epoch barriers whose
// length is the caller-supplied conservative lookahead: the minimum
// latency of any cross-shard interaction. Inside a window [S, S+L) a
// shard may freely dispatch every due cycle, because nothing another
// shard does during the same window can become visible to it before
// S+L. Cross-shard traffic generated inside the window is buffered by
// the communication layer (the sharded mesh) and replayed at the
// barrier by the merge hook — single-threaded, in a deterministic order
// keyed by (send cycle, sender's serial registration index, per-shard
// sequence) — so every run is bit-identical to the single-threaded
// wake-set engine regardless of goroutine interleaving.
//
// Registration carries the component's canonical index: its position in
// the registration order the serial engine would have used. The merge
// key and forensic snapshots are expressed in canonical order, which is
// what makes the parallel schedule indistinguishable from the serial
// one.
type ShardedEngine struct {
	shards   []*Engine
	canon    [][]int // canon[s][localIdx] = canonical registration index
	maxCycle Cycle
	look     Cycle
	merge    func(windowEnd Cycle)

	windowEnd Cycle
	stopped   bool
	started   bool
	start     barrier
	finish    barrier

	// Observability (internal/obs). barrierNs, when armed, accumulates
	// each shard goroutine's host time spent waiting at the two epoch
	// barriers (written only by that shard's goroutine, read after the
	// run); tl receives epoch and per-shard barrier-wait spans from the
	// coordinator between epochs; profLabels tags each shard goroutine
	// with a pprof label.
	barrierNs  []int64
	tl         *obs.Timeline
	profLabels bool
}

// NewShardedEngine builds a sharded engine with the given shard count,
// conservative lookahead (the epoch length; must be the minimum
// cross-shard latency or less), and cycle limit (0 selects the same
// generous default as NewEngine).
func NewShardedEngine(shards int, lookahead, maxCycle Cycle) *ShardedEngine {
	if shards <= 0 {
		panic("sim: sharded engine needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: lookahead must be positive")
	}
	if maxCycle <= 0 {
		maxCycle = 500_000_000
	}
	se := &ShardedEngine{
		shards:   make([]*Engine, shards),
		canon:    make([][]int, shards),
		maxCycle: maxCycle,
		look:     lookahead,
	}
	for i := range se.shards {
		se.shards[i] = NewEngine(maxCycle)
	}
	se.start.n = int32(shards)
	se.finish.n = int32(shards)
	if runtime.NumCPU() < shards {
		// Oversubscribed host: a waiting goroutine's spin only steals the
		// CPU from the shard it is waiting for. Yield immediately.
		se.start.spin = 0
		se.finish.spin = 0
	} else {
		se.start.spin = 128
		se.finish.spin = 128
	}
	return se
}

// SetMerge installs the barrier merge hook: called once per epoch, on
// the coordinator goroutine, after every shard has finished the window
// and before the next window is chosen. It must drain all cross-shard
// buffers deterministically (the sharded mesh's MergeEpoch).
func (se *ShardedEngine) SetMerge(m func(windowEnd Cycle)) { se.merge = m }

// Shards reports the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Lookahead reports the epoch length.
func (se *ShardedEngine) Lookahead() Cycle { return se.look }

// Register adds a ticker to a shard, recording its canonical (serial
// registration order) index. Within each shard, components must be
// registered in ascending canonical order — local dispatch order is
// local registration order, and it must agree with the serial engine's.
func (se *ShardedEngine) Register(shard, canonical int, t Ticker) {
	sh := se.shards[shard]
	if n := len(se.canon[shard]); n > 0 && se.canon[shard][n-1] >= canonical {
		panic(fmt.Sprintf("sim: shard %d registration out of canonical order (%d after %d)",
			shard, canonical, se.canon[shard][n-1]))
	}
	se.canon[shard] = append(se.canon[shard], canonical)
	sh.Register(t)
}

// RegisterDoner adds a completion check to a shard. The sharded run
// completes when every shard's checks pass at a barrier.
func (se *ShardedEngine) RegisterDoner(shard int, d Doner) {
	se.shards[shard].RegisterDoner(d)
}

// DispatchPos reports the canonical index of the component a shard is
// currently dispatching. The sharded mesh calls this (from the shard's
// own goroutine) to stamp outbound messages with their serial-order
// merge key.
func (se *ShardedEngine) DispatchPos(shard int) int {
	return se.canon[shard][se.shards[shard].DispatchIndex()]
}

// Shard exposes one shard's private engine for observability wiring
// (per-shard dispatch histograms); the caller must not touch it while
// a run is in flight.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// EnableBarrierClock arms per-shard host-time accounting of epoch
// barrier waits; read the totals with BarrierWaitNs after the run.
// Host time is never part of a Result, so the clock cannot perturb
// simulation state.
func (se *ShardedEngine) EnableBarrierClock() {
	se.barrierNs = make([]int64, len(se.shards))
}

// BarrierWaitNs reports the host nanoseconds shard i spent waiting at
// epoch barriers (0 when the clock was never armed).
func (se *ShardedEngine) BarrierWaitNs(i int) int64 {
	if se.barrierNs == nil {
		return 0
	}
	return se.barrierNs[i]
}

// SetTimeline installs a timeline sink: every shard engine emits its
// component tick spans on process = shard id with canonical-serial
// thread ids, and the coordinator emits epoch spans plus per-shard
// barrier-wait spans (the simulated-time tail of each window after the
// shard's last dispatch — the lopsided-shard signature) on
// obs.PidEngine. Call after registration.
func (se *ShardedEngine) SetTimeline(tl *obs.Timeline) {
	se.tl = tl
	tl.ProcessName(obs.PidEngine, "engine epochs")
	tl.ThreadName(obs.PidEngine, 0, "epoch window")
	for s, sh := range se.shards {
		tl.ProcessName(s, "shard "+strconv.Itoa(s))
		tl.ThreadName(obs.PidEngine, 1+s, "shard "+strconv.Itoa(s)+" barrier wait")
		sh.SetTimeline(tl, s, se.canon[s])
	}
}

// EnableProfileLabels arms pprof labeling: each shard goroutine is
// labeled shard=<i> and every component tick switches to its
// per-component label context (Engine.EnableProfileLabels).
func (se *ShardedEngine) EnableProfileLabels() {
	se.profLabels = true
	for s, sh := range se.shards {
		sh.EnableProfileLabels(strconv.Itoa(s))
	}
}

// await waits at b, accounting the wait to shard i's barrier clock
// when armed.
func (se *ShardedEngine) await(b *barrier, i int) {
	if se.barrierNs == nil {
		b.await()
		return
	}
	t0 := time.Now()
	b.await()
	se.barrierNs[i] += time.Since(t0).Nanoseconds()
}

// MarkShardActive clears a shard's quiescence episode (see
// Engine.MarkActive); the merge hook calls it for every shard it
// delivered cross-shard work into.
func (se *ShardedEngine) MarkShardActive(shard int) {
	se.shards[shard].MarkActive()
}

// Now reports the most advanced shard-local cycle (forensics; during a
// run this is only safe to call from the coordinator between epochs).
func (se *ShardedEngine) Now() Cycle {
	now := Cycle(0)
	for _, sh := range se.shards {
		if sh.Now() > now {
			now = sh.Now()
		}
	}
	return now
}

// Snapshot merges every shard's component snapshot into canonical
// order, for forensic reports that look exactly like serial ones.
func (se *ShardedEngine) Snapshot() []PendingComponent {
	type entry struct {
		canonical int
		shard     int
		pc        PendingComponent
	}
	var all []entry
	var external []PendingComponent
	for s, sh := range se.shards {
		for _, pc := range sh.Snapshot() {
			if pc.Index < 0 {
				external = append(external, pc)
				continue
			}
			e := entry{canonical: se.canon[s][pc.Index], shard: s, pc: pc}
			e.pc.Index = e.canonical
			all = append(all, e)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].canonical != all[j].canonical {
			return all[i].canonical < all[j].canonical
		}
		return all[i].shard < all[j].shard
	})
	out := make([]PendingComponent, 0, len(all)+len(external))
	for _, e := range all {
		out = append(out, e.pc)
	}
	return append(out, external...)
}

func (se *ShardedEngine) deadlockError(at Cycle, stalled bool) *DeadlockError {
	return &DeadlockError{
		Cycle:      at,
		Limit:      se.maxCycle,
		Stalled:    stalled,
		Components: se.Snapshot(),
	}
}

// Run advances all shards until every shard's Doners report done at a
// barrier, or the cycle limit is hit. The returned cycle is exactly
// what the serial engine would have returned: the latest cycle at which
// any shard performed the dispatch that (most recently) quiesced it.
func (se *ShardedEngine) Run() (Cycle, error) {
	for s, sh := range se.shards {
		if len(sh.doners) == 0 {
			return 0, fmt.Errorf("sim: shard %d has no completion conditions registered", s)
		}
		if !sh.EventDriven() {
			return 0, fmt.Errorf("sim: shard %d cannot run wake-set scheduling (missing hints)", s)
		}
	}
	for i := 1; i < len(se.shards); i++ {
		go se.worker(i)
	}
	se.started = true
	defer se.shutdown()
	for {
		quiesced := true
		for _, sh := range se.shards {
			if !sh.Quiesced() {
				quiesced = false
				break
			}
		}
		if quiesced {
			done := Cycle(0)
			for _, sh := range se.shards {
				if sh.DoneAt() > done {
					done = sh.DoneAt()
				}
			}
			return done, nil
		}
		next := WakeNever
		for _, sh := range se.shards {
			if d := sh.NextDue(); d < next {
				next = d
			}
		}
		if next == WakeNever {
			// No shard will ever act again, yet completion checks are
			// pending: a true deadlock, reported at the stall cycle.
			return se.Now(), se.deadlockError(se.Now(), true)
		}
		if next > se.maxCycle {
			return se.maxCycle, se.deadlockError(se.maxCycle, false)
		}
		end := next + se.look
		if end > se.maxCycle+1 {
			// Never dispatch past the limit: serial execution stops there.
			end = se.maxCycle + 1
		}
		se.windowEnd = end
		se.start.await()
		se.shards[0].RunWindow(end)
		se.await(&se.finish, 0)
		if se.tl != nil {
			// Between the finish barrier and the merge every shard is
			// parked, so reading shard state here is safe. Each shard's
			// barrier-wait span covers the simulated tail of the window
			// after its last dispatch — a lopsided shard shows as one
			// short-wait track among long-wait ones.
			se.tl.Span(obs.PidEngine, 0, "epoch", int64(next), int64(end))
			for s, sh := range se.shards {
				last := sh.Now()
				if last < next-1 {
					last = next - 1
				}
				se.tl.Span(obs.PidEngine, 1+s, "barrier_wait", int64(last)+1, int64(end))
			}
		}
		if se.merge != nil {
			se.merge(end)
		}
	}
}

// worker is the epoch loop of one non-coordinator shard.
func (se *ShardedEngine) worker(i int) {
	if se.profLabels {
		pprof.SetGoroutineLabels(pprof.WithLabels(se.shards[i].baseCtx,
			pprof.Labels("shard", strconv.Itoa(i))))
	}
	for {
		se.await(&se.start, i)
		if se.stopped {
			return
		}
		se.shards[i].RunWindow(se.windowEnd)
		se.await(&se.finish, i)
	}
}

// shutdown releases the workers: they observe stopped after the start
// barrier and exit without touching shard state again.
func (se *ShardedEngine) shutdown() {
	if !se.started || len(se.shards) == 1 {
		se.started = false
		return
	}
	se.stopped = true
	se.start.await()
	se.started = false
}

// barrier is a sense-reversing spin barrier. Epochs are short (a few
// cycles of simulated work), so the synchronization cost must stay in
// the nanosecond range when a core is available; after a bounded spin
// it yields so oversubscribed hosts (fewer cores than shards) make
// progress instead of burning a scheduling quantum. Atomic operations
// order the coordinator's window/stop writes before the workers' reads.
type barrier struct {
	n     int32
	spin  int
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *barrier) await() {
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == gen; spins++ {
		if spins >= b.spin {
			runtime.Gosched()
		}
	}
}
