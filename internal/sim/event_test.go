package sim

import (
	"errors"
	"testing"
)

// timedTicker does work at a fixed set of cycles and records every cycle
// at which it was ticked while having work.
type timedTicker struct {
	due  map[Cycle]bool
	last Cycle // largest due cycle
	work []Cycle
}

func newTimedTicker(due ...Cycle) *timedTicker {
	t := &timedTicker{due: map[Cycle]bool{}}
	for _, c := range due {
		t.due[c] = true
		if c > t.last {
			t.last = c
		}
	}
	return t
}

func (t *timedTicker) Tick(now Cycle) {
	if t.due[now] {
		t.work = append(t.work, now)
		delete(t.due, now)
	}
}

func (t *timedTicker) NextWake(now Cycle) Cycle {
	earliest := WakeNever
	for c := range t.due {
		if c > now && c < earliest {
			earliest = c
		}
	}
	return earliest
}

func (t *timedTicker) Done() bool { return len(t.due) == 0 }

// TestEventDrivenMatchesPerCycle: same components, both modes, identical
// work cycles and final cycle count — with most cycles skipped.
func TestEventDrivenMatchesPerCycle(t *testing.T) {
	mk := func() []*timedTicker {
		return []*timedTicker{
			newTimedTicker(3, 90, 91, 4000),
			newTimedTicker(1, 250, 4000, 7777),
			newTimedTicker(500),
		}
	}
	run := func(perCycle bool) ([]*timedTicker, Cycle, int64) {
		ts := mk()
		e := NewEngine(100_000)
		e.SetPerCycle(perCycle)
		for _, tk := range ts {
			e.Register(tk)
		}
		cycles, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return ts, cycles, e.IdleSkipped
	}
	pcTicks, pcCycles, _ := run(true)
	evTicks, evCycles, skipped := run(false)
	if pcCycles != evCycles {
		t.Fatalf("cycle counts differ: per-cycle %d, event %d", pcCycles, evCycles)
	}
	for i := range pcTicks {
		if len(pcTicks[i].work) != len(evTicks[i].work) {
			t.Fatalf("ticker %d work counts differ", i)
		}
		for j := range pcTicks[i].work {
			if pcTicks[i].work[j] != evTicks[i].work[j] {
				t.Fatalf("ticker %d work[%d]: per-cycle %d, event %d",
					i, j, pcTicks[i].work[j], evTicks[i].work[j])
			}
		}
	}
	if skipped == 0 {
		t.Fatal("event mode skipped nothing on a sparse schedule")
	}
	if skipped < 7000 {
		t.Fatalf("expected most of the 7777 cycles skipped, got %d", skipped)
	}
}

// TestEventDrivenFallback: one ticker without a wake hint reverts the
// engine to per-cycle conformance ticking.
func TestEventDrivenFallback(t *testing.T) {
	e := NewEngine(1000)
	e.Register(newTimedTicker(500))
	if !e.EventDriven() {
		t.Fatal("hinting ticker should allow event-driven mode")
	}
	plain := &countTicker{limit: 10}
	e.Register(plain)
	if e.EventDriven() {
		t.Fatal("non-hinting ticker must force per-cycle fallback")
	}
	cycles, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 500 {
		t.Fatalf("cycles = %d, want 500", cycles)
	}
	if plain.ticks != 500 {
		t.Fatalf("plain ticker ticked %d times, want every cycle (500)", plain.ticks)
	}
}

// TestEventDrivenCycleLimit: a deadlocked (never-waking) system errors
// out in both modes, and the error stays ErrCycleLimit-compatible.
// Per-cycle mode cannot detect the stall early and grinds to the cycle
// limit; wake-set mode sees the empty wake set and reports the deadlock
// at the cycle progress actually stopped.
func TestEventDrivenCycleLimit(t *testing.T) {
	for _, pc := range []bool{true, false} {
		e := NewEngine(50)
		e.SetPerCycle(pc)
		e.Register(newTimedTicker()) // no work, but Done() == true... use a stuck doner instead
		e.RegisterDoner(doneNever{})
		_, err := e.Run()
		if !errors.Is(err, ErrCycleLimit) {
			t.Fatalf("perCycle=%v: err = %v, want ErrCycleLimit compatibility", pc, err)
		}
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("perCycle=%v: err = %T, want *DeadlockError", pc, err)
		}
		if pc {
			if e.Now() != 50 || dl.Stalled {
				t.Fatalf("per-cycle: stopped at %d (stalled=%v), want cycle-limit exit at 50", e.Now(), dl.Stalled)
			}
		} else {
			if !dl.Stalled {
				t.Fatalf("wake-set: want a stalled deadlock report, got %v", err)
			}
			if e.Now() >= 50 {
				t.Fatalf("wake-set: deadlock should be reported before the limit, stopped at %d", e.Now())
			}
		}
	}
}

type doneNever struct{}

func (doneNever) Done() bool { return false }
