package program

import "fmt"

// MemReader lets a workload's Check function inspect final memory state.
type MemReader interface {
	ReadWord(addr uint64) uint64
}

// Workload is a complete multi-threaded benchmark: one program per core
// (nil entries are idle cores), initial memory words, and an optional
// functional correctness check run against final memory.
type Workload struct {
	Name     string
	Programs []*Program
	InitMem  map[uint64]uint64
	Check    func(mem MemReader) error
}

// Threads reports the number of non-idle programs.
func (w *Workload) Threads() int {
	n := 0
	for _, p := range w.Programs {
		if p != nil {
			n++
		}
	}
	return n
}

// Validate checks every program in the workload.
func (w *Workload) Validate() error {
	if w.Threads() == 0 {
		return fmt.Errorf("workload %q: no threads", w.Name)
	}
	for i, p := range w.Programs {
		if p == nil {
			continue
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload %q core %d: %w", w.Name, i, err)
		}
	}
	for a := range w.InitMem {
		if a%8 != 0 {
			return fmt.Errorf("workload %q: init address %#x not 8-aligned", w.Name, a)
		}
	}
	return nil
}
