package program

import "fmt"

// Builder assembles a Program with symbolic labels. Branches may
// reference labels defined later; they are resolved by Build.
type Builder struct {
	name   string
	instrs []Instr
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

func (b *Builder) emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

// Label marks the next instruction's address with the given name.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
	return b
}

// Li loads an immediate: R[dst] = imm.
func (b *Builder) Li(dst uint8, imm int64) *Builder {
	return b.emit(Instr{Op: OpLI, Dst: dst, Imm: imm})
}

// Mov copies a register.
func (b *Builder) Mov(dst, src uint8) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: dst, A: src})
}

// Add computes R[dst] = R[a] + R[c2].
func (b *Builder) Add(dst, a, c2 uint8) *Builder {
	return b.emit(Instr{Op: OpAdd, Dst: dst, A: a, B: c2})
}

// Addi computes R[dst] = R[a] + imm.
func (b *Builder) Addi(dst, a uint8, imm int64) *Builder {
	return b.emit(Instr{Op: OpAddi, Dst: dst, A: a, Imm: imm})
}

// Sub computes R[dst] = R[a] - R[c2].
func (b *Builder) Sub(dst, a, c2 uint8) *Builder {
	return b.emit(Instr{Op: OpSub, Dst: dst, A: a, B: c2})
}

// Mul computes R[dst] = R[a] * R[c2].
func (b *Builder) Mul(dst, a, c2 uint8) *Builder {
	return b.emit(Instr{Op: OpMul, Dst: dst, A: a, B: c2})
}

// And computes R[dst] = R[a] & R[c2].
func (b *Builder) And(dst, a, c2 uint8) *Builder {
	return b.emit(Instr{Op: OpAnd, Dst: dst, A: a, B: c2})
}

// Or computes R[dst] = R[a] | R[c2].
func (b *Builder) Or(dst, a, c2 uint8) *Builder {
	return b.emit(Instr{Op: OpOr, Dst: dst, A: a, B: c2})
}

// Xor computes R[dst] = R[a] ^ R[c2].
func (b *Builder) Xor(dst, a, c2 uint8) *Builder {
	return b.emit(Instr{Op: OpXor, Dst: dst, A: a, B: c2})
}

// Mod computes R[dst] = R[a] mod imm.
func (b *Builder) Mod(dst, a uint8, imm int64) *Builder {
	return b.emit(Instr{Op: OpMod, Dst: dst, A: a, Imm: imm})
}

// Shl computes R[dst] = R[a] << imm.
func (b *Builder) Shl(dst, a uint8, imm int64) *Builder {
	return b.emit(Instr{Op: OpShl, Dst: dst, A: a, Imm: imm})
}

// Ld loads R[dst] = Mem[R[base]+off].
func (b *Builder) Ld(dst, base uint8, off int64) *Builder {
	return b.emit(Instr{Op: OpLd, Dst: dst, A: base, Imm: off})
}

// St stores Mem[R[base]+off] = R[val].
func (b *Builder) St(base uint8, off int64, val uint8) *Builder {
	return b.emit(Instr{Op: OpSt, A: base, Imm: off, B: val})
}

// RmwAdd performs R[dst] = fetch-and-add(Mem[R[base]+off], R[val]).
func (b *Builder) RmwAdd(dst, base uint8, off int64, val uint8) *Builder {
	return b.emit(Instr{Op: OpRmwAdd, Dst: dst, A: base, Imm: off, B: val})
}

// RmwXchg performs R[dst] = exchange(Mem[R[base]+off], R[val]).
func (b *Builder) RmwXchg(dst, base uint8, off int64, val uint8) *Builder {
	return b.emit(Instr{Op: OpRmwXchg, Dst: dst, A: base, Imm: off, B: val})
}

// Cas performs R[dst] = old; if old == R[expect] then Mem[..] = R[next].
func (b *Builder) Cas(dst, base uint8, off int64, expect, next uint8) *Builder {
	return b.emit(Instr{Op: OpCas, Dst: dst, A: base, Imm: off, B: expect, C: next})
}

// Fence emits a full memory barrier.
func (b *Builder) Fence() *Builder { return b.emit(Instr{Op: OpFence}) }

// Beq branches to label when R[a] == R[c2].
func (b *Builder) Beq(a, c2 uint8, label string) *Builder { return b.branch(OpBeq, a, c2, label) }

// Bne branches to label when R[a] != R[c2].
func (b *Builder) Bne(a, c2 uint8, label string) *Builder { return b.branch(OpBne, a, c2, label) }

// Blt branches to label when R[a] < R[c2].
func (b *Builder) Blt(a, c2 uint8, label string) *Builder { return b.branch(OpBlt, a, c2, label) }

// Bge branches to label when R[a] >= R[c2].
func (b *Builder) Bge(a, c2 uint8, label string) *Builder { return b.branch(OpBge, a, c2, label) }

// Jmp jumps unconditionally to label.
func (b *Builder) Jmp(label string) *Builder { return b.branch(OpJmp, 0, 0, label) }

func (b *Builder) branch(op OpCode, a, c2 uint8, label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), label: label})
	return b.emit(Instr{Op: op, A: a, B: c2, Target: -1})
}

// Nop stalls for cycles cycles, modelling local compute.
func (b *Builder) Nop(cycles int64) *Builder {
	if cycles < 1 {
		cycles = 1
	}
	return b.emit(Instr{Op: OpNop, Imm: cycles})
}

// Halt terminates the thread.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// Build resolves labels and validates the program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("undefined label %q", f.label))
			continue
		}
		b.instrs[f.pc].Target = pc
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("program %q: %v", b.name, b.errs[0])
	}
	p := &Program{Name: b.name, Instrs: b.instrs}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.ComputeRunLens()
	return p, nil
}

// MustBuild is Build, panicking on error; for statically known-good
// workload construction.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ---- Synchronization idioms ----
// These emit the exact instruction patterns the paper's workloads use:
// polling acquires, release stores, test-and-test-and-set locks,
// sense-reversing barriers.

// SpinUntilEq loads Mem[R[base]+off] into R[tmp] in a polling loop until
// it equals R[want] — the canonical TSO acquire (Figure 1's b1).
func (b *Builder) SpinUntilEq(tmp, base uint8, off int64, want uint8) *Builder {
	l := fmt.Sprintf(".spin%d", len(b.instrs))
	b.Label(l)
	b.Ld(tmp, base, off)
	b.Bne(tmp, want, l)
	return b
}

// LockAcquire implements a test-and-test-and-set spinlock on
// Mem[R[base]+off] using registers tmp and one.
func (b *Builder) LockAcquire(tmp, one, base uint8, off int64) *Builder {
	retry := fmt.Sprintf(".lock%d", len(b.instrs))
	gotIt := fmt.Sprintf(".lockok%d", len(b.instrs))
	b.Li(one, 1)
	b.Li(regZeroScratch, 0)
	b.Label(retry)
	// Test: spin on a plain load while the lock is held.
	b.Ld(tmp, base, off)
	b.Bne(tmp, regZeroScratch, retry)
	// Test-and-set.
	b.RmwXchg(tmp, base, off, one)
	b.Beq(tmp, regZeroScratch, gotIt)
	b.Jmp(retry)
	b.Label(gotIt)
	return b
}

// regZeroScratch is the register conventionally holding zero for lock
// idioms; callers must initialize it with Li(15, 0).
const regZeroScratch = 15

// LockRelease releases the spinlock (a plain store, TSO release).
func (b *Builder) LockRelease(base uint8, off int64) *Builder {
	return b.St(base, off, regZeroScratch)
}

// LockAcquirePause is LockAcquire with a backoff pause after each failed
// probe — the x86 PAUSE hint every production spinlock issues in its
// spin body. Contending cores go quiet for pauseCycles between probes,
// which both models real hardware and exposes idle time the
// event-driven engine can skip.
func (b *Builder) LockAcquirePause(tmp, one, base uint8, off, pauseCycles int64) *Builder {
	id := len(b.instrs)
	retry := fmt.Sprintf(".lockp%d", id)
	test := fmt.Sprintf(".lockptest%d", id)
	gotIt := fmt.Sprintf(".lockpok%d", id)
	b.Li(one, 1)
	b.Li(regZeroScratch, 0)
	b.Jmp(test)
	b.Label(retry)
	b.Nop(pauseCycles)
	b.Label(test)
	// Test: spin on a plain load while the lock is held.
	b.Ld(tmp, base, off)
	b.Bne(tmp, regZeroScratch, retry)
	// Test-and-set.
	b.RmwXchg(tmp, base, off, one)
	b.Beq(tmp, regZeroScratch, gotIt)
	b.Jmp(retry)
	b.Label(gotIt)
	return b
}

// Barrier implements a sense-reversing centralized barrier.
// barrierBase points at two words: [count, sense]. senseReg must hold the
// thread's current sense (flipped by this call); nthreads is total
// participants. tmp1/tmp2 are scratch.
func (b *Builder) Barrier(barrierBase uint8, senseReg, tmp1, tmp2 uint8, nthreads int64) *Builder {
	id := len(b.instrs)
	wait := fmt.Sprintf(".barwait%d", id)
	done := fmt.Sprintf(".bardone%d", id)
	// Flip local sense.
	b.Li(tmp1, 1)
	b.Xor(senseReg, senseReg, tmp1)
	// arrived = fetch_add(count, 1) + 1
	b.Li(tmp2, 1)
	b.RmwAdd(tmp1, barrierBase, 0, tmp2)
	b.Addi(tmp1, tmp1, 1)
	b.Li(tmp2, nthreads)
	b.Bne(tmp1, tmp2, wait)
	// Last arrival: reset count, publish sense.
	b.Li(tmp1, 0)
	b.St(barrierBase, 0, tmp1)
	b.St(barrierBase, 8, senseReg)
	b.Jmp(done)
	b.Label(wait)
	b.Ld(tmp1, barrierBase, 8)
	b.Bne(tmp1, senseReg, wait)
	b.Label(done)
	// Restore tmp2 = 1 for the next barrier call.
	b.Li(tmp2, 1)
	return b
}
