// Package program defines the mini thread ISA that simulated cores
// execute. It is a small register machine with loads, stores, atomic
// read-modify-writes, fences and branches — exactly the memory-event
// vocabulary a TSO coherence protocol observes — plus a builder for
// writing synchronization idioms (spinlocks, barriers, flag handshakes)
// the way the paper's benchmarks do.
package program

import "fmt"

// NumRegs is the architectural register count per thread.
const NumRegs = 16

// OpCode enumerates instruction kinds.
type OpCode uint8

// Instruction set. Memory operands are 8-byte words; addresses are
// computed as R[A]+Imm.
const (
	OpLI   OpCode = iota // R[Dst] = Imm
	OpMov                // R[Dst] = R[A]
	OpAdd                // R[Dst] = R[A] + R[B]
	OpAddi               // R[Dst] = R[A] + Imm
	OpSub                // R[Dst] = R[A] - R[B]
	OpMul                // R[Dst] = R[A] * R[B]
	OpAnd                // R[Dst] = R[A] & R[B]
	OpOr                 // R[Dst] = R[A] | R[B]
	OpXor                // R[Dst] = R[A] ^ R[B]
	OpMod                // R[Dst] = R[A] mod Imm (Imm > 0)
	OpShl                // R[Dst] = R[A] << Imm

	OpLd      // R[Dst] = Mem[R[A]+Imm]
	OpSt      // Mem[R[A]+Imm] = R[B]
	OpRmwAdd  // atomic: R[Dst] = Mem[R[A]+Imm]; Mem[...] += R[B]
	OpRmwXchg // atomic: R[Dst] = Mem[R[A]+Imm]; Mem[...] = R[B]
	OpCas     // atomic: R[Dst] = old; if old == R[B] { Mem[R[A]+Imm] = R[C] }
	OpFence   // full memory barrier (drains the write buffer)

	OpBeq // if R[A] == R[B] jump Target
	OpBne // if R[A] != R[B] jump Target
	OpBlt // if R[A] <  R[B] jump Target
	OpBge // if R[A] >= R[B] jump Target
	OpJmp // jump Target
	OpNop // stall for Imm cycles (models compute)
	OpHalt

	numOpCodes
)

var opNames = [numOpCodes]string{
	"li", "mov", "add", "addi", "sub", "mul", "and", "or", "xor", "mod", "shl",
	"ld", "st", "rmwadd", "rmwxchg", "cas", "fence",
	"beq", "bne", "blt", "bge", "jmp", "nop", "halt",
}

func (op OpCode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsMem reports whether the opcode accesses memory.
func (op OpCode) IsMem() bool {
	switch op {
	case OpLd, OpSt, OpRmwAdd, OpRmwXchg, OpCas:
		return true
	}
	return false
}

// IsAtomic reports whether the opcode is an atomic read-modify-write.
func (op OpCode) IsAtomic() bool {
	switch op {
	case OpRmwAdd, OpRmwXchg, OpCas:
		return true
	}
	return false
}

// Batchable reports whether the opcode may execute inside a batched
// straight-line run: pure register ops with no memory access, no time
// side effect (pause/stall) and no completion side effect (halt). These
// are exactly the instructions a core can retire back-to-back without
// any other component being able to observe intermediate state.
func (op OpCode) Batchable() bool {
	switch op {
	case OpLI, OpMov, OpAdd, OpAddi, OpSub, OpMul, OpAnd, OpOr, OpXor, OpMod, OpShl:
		return true
	}
	return false
}

// IsBranch reports whether the opcode is a control-flow op resolved
// entirely inside the core (conditional branches and unconditional
// jumps). A branch may terminate a batched run — it only moves the pc —
// but never starts or continues one.
func (op OpCode) IsBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	}
	return false
}

// Instr is one decoded instruction.
type Instr struct {
	Op      OpCode
	Dst     uint8
	A, B, C uint8
	Imm     int64
	Target  int
}

func (in Instr) String() string {
	switch in.Op {
	case OpLI:
		return fmt.Sprintf("li r%d, %d", in.Dst, in.Imm)
	case OpLd:
		return fmt.Sprintf("ld r%d, [r%d+%d]", in.Dst, in.A, in.Imm)
	case OpSt:
		return fmt.Sprintf("st [r%d+%d], r%d", in.A, in.Imm, in.B)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.A, in.B, in.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	default:
		return fmt.Sprintf("%s d=%d a=%d b=%d c=%d imm=%d", in.Op, in.Dst, in.A, in.B, in.C, in.Imm)
	}
}

// Program is an executable instruction sequence for one thread.
type Program struct {
	Name   string
	Instrs []Instr

	// runLens[pc] is the batched-execution run length starting at pc
	// (see RunLen). Builder.Build precomputes it; RunLen fills it lazily
	// for hand-assembled programs (single-goroutine construction only —
	// share a Program across concurrent machines only after Build or an
	// explicit ComputeRunLens).
	runLens []int32
}

// Len reports the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// RunLen reports how many instructions a batched core may retire as one
// straight-line run starting at pc: a maximal block of Batchable
// register ops plus at most one trailing branch/jump. A run never
// crosses a load, store, atomic, fence, pause or halt — those stay
// cycle-exact boundaries — and never extends past the end of the
// program. 0 means pc does not start a run (execute singly).
func (p *Program) RunLen(pc int) int {
	if p.runLens == nil {
		p.ComputeRunLens()
	}
	return int(p.runLens[pc])
}

// ComputeRunLens precomputes the per-instruction run lengths consumed by
// RunLen. It is idempotent and cheap (one backward pass).
func (p *Program) ComputeRunLens() {
	n := len(p.Instrs)
	rl := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		if !p.Instrs[i].Op.Batchable() {
			continue // memory, fence, pause, halt, branch: not a run start
		}
		run := int32(1)
		if i+1 < n {
			switch next := p.Instrs[i+1].Op; {
			case next.Batchable():
				run += rl[i+1]
			case next.IsBranch():
				run++ // the branch resolves locally: fold it into the run
			}
		}
		rl[i] = run
	}
	p.runLens = rl
}

// Validate checks structural well-formedness (register indices, branch
// targets, halting).
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	for i, in := range p.Instrs {
		if in.Op >= numOpCodes {
			return fmt.Errorf("program %q @%d: bad opcode %d", p.Name, i, in.Op)
		}
		for _, r := range []uint8{in.Dst, in.A, in.B, in.C} {
			if r >= NumRegs {
				return fmt.Errorf("program %q @%d: register r%d out of range", p.Name, i, r)
			}
		}
		switch in.Op {
		case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("program %q @%d: branch target %d out of range", p.Name, i, in.Target)
			}
		case OpMod:
			if in.Imm <= 0 {
				return fmt.Errorf("program %q @%d: mod with non-positive modulus", p.Name, i)
			}
		}
	}
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != OpHalt && last.Op != OpJmp {
		return fmt.Errorf("program %q: does not end in halt or jmp", p.Name)
	}
	return nil
}
