package program

import (
	"testing"
)

// checkRunLenInvariants asserts the properties the batched core relies
// on, for every pc of p:
//
//  1. a run never extends past the end of the program;
//  2. only Batchable ops start a run (length > 0), and every run
//     instruction except possibly the last is Batchable;
//  3. the last instruction of a run is Batchable or a branch/jump —
//     a run never crosses (or contains) a load, store, atomic, fence,
//     pause or halt;
//  4. runs are maximal: a run not ending in a branch stops only at the
//     program end or at a non-batchable instruction.
func checkRunLenInvariants(t *testing.T, p *Program) {
	t.Helper()
	n := len(p.Instrs)
	for pc := 0; pc < n; pc++ {
		l := p.RunLen(pc)
		if l < 0 || pc+l > n {
			t.Fatalf("pc %d: run length %d exceeds program end %d", pc, l, n)
		}
		if l == 0 {
			if p.Instrs[pc].Op.Batchable() {
				t.Fatalf("pc %d: batchable op %v did not start a run", pc, p.Instrs[pc].Op)
			}
			continue
		}
		if !p.Instrs[pc].Op.Batchable() {
			t.Fatalf("pc %d: non-batchable op %v starts a run of %d", pc, p.Instrs[pc].Op, l)
		}
		for k := 0; k < l; k++ {
			op := p.Instrs[pc+k].Op
			if op.IsMem() || op == OpFence || op == OpNop || op == OpHalt {
				t.Fatalf("pc %d: run of %d crosses %v at +%d", pc, l, op, k)
			}
			if k < l-1 && !op.Batchable() {
				t.Fatalf("pc %d: run of %d has non-batchable %v at interior +%d", pc, l, op, k)
			}
		}
		last := p.Instrs[pc+l-1].Op
		if !last.Batchable() && !last.IsBranch() {
			t.Fatalf("pc %d: run of %d ends in %v", pc, l, last)
		}
		// Maximality: a run ending in a plain register op must have hit
		// the program end or a non-batchable, non-branch successor.
		if last.Batchable() && pc+l < n {
			next := p.Instrs[pc+l].Op
			if next.Batchable() || next.IsBranch() {
				t.Fatalf("pc %d: run of %d stopped early before %v", pc, l, next)
			}
		}
	}
}

func TestRunLenKnownShapes(t *testing.T) {
	b := NewBuilder("shapes")
	b.Li(1, 0x1000) // pc 0: run of 3 (li, li, addi)
	b.Li(2, 5)
	b.Addi(2, 2, 1)
	b.Ld(3, 1, 0) // pc 3: boundary
	b.Add(2, 2, 3)
	b.Label("loop") // pc 5
	b.Mul(2, 2, 2)
	b.Blt(2, 3, "loop") // folded into the run from pc 5
	b.St(1, 0, 2)
	b.Fence()
	b.Halt()
	p := b.MustBuild()
	checkRunLenInvariants(t, p)
	for pc, want := range map[int]int{
		0: 3, // li li addi
		1: 2,
		3: 0, // ld
		4: 3, // add, mul, blt
		5: 2, // mul, blt
		6: 0, // branch alone is not a run start
		7: 0, // st
		8: 0, // fence
		9: 0, // halt
	} {
		if got := p.RunLen(pc); got != want {
			t.Errorf("RunLen(%d) = %d, want %d", pc, got, want)
		}
	}
}

func TestRunLenLazyForHandBuiltPrograms(t *testing.T) {
	p := &Program{Name: "hand", Instrs: []Instr{
		{Op: OpLI, Dst: 1, Imm: 2},
		{Op: OpAdd, Dst: 1, A: 1, B: 1},
		{Op: OpHalt},
	}}
	if got := p.RunLen(0); got != 2 {
		t.Fatalf("RunLen(0) = %d, want 2", got)
	}
	checkRunLenInvariants(t, p)
}

// decodeFuzzProgram turns arbitrary bytes into a structurally plausible
// instruction stream (opcodes in range, registers masked, positive
// moduli, in-range branch targets). It deliberately does NOT force a
// trailing halt: RunLen must respect the block end on its own.
func decodeFuzzProgram(data []byte) *Program {
	if len(data) == 0 {
		return nil
	}
	n := len(data) / 4
	if n == 0 {
		return nil
	}
	if n > 256 {
		n = 256
	}
	ins := make([]Instr, n)
	for i := 0; i < n; i++ {
		b0, b1, b2, b3 := data[i*4], data[i*4+1], data[i*4+2], data[i*4+3]
		in := Instr{
			Op:  OpCode(b0) % numOpCodes,
			Dst: b1 % NumRegs,
			A:   b2 % NumRegs,
			B:   b3 % NumRegs,
			C:   (b1 >> 4) % NumRegs,
			Imm: int64(b2)%7 + 1, // positive: keeps OpMod well-formed
		}
		if in.Op.IsBranch() {
			in.Target = int(b3) % n
		}
		ins[i] = in
	}
	return &Program{Name: "fuzz", Instrs: ins}
}

// FuzzRunLens feeds arbitrary instruction streams to the run-length
// analysis and checks the batching invariants hold for every pc.
func FuzzRunLens(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{2, 1, 2, 3, 11, 1, 2, 3, 17, 0, 0, 1}) // add, ld, beq
	f.Add([]byte{0, 1, 0, 0, 21, 0, 0, 0, 2, 1, 1, 2, 23, 0, 0, 0}) // li, jmp, add, halt
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeFuzzProgram(data)
		if p == nil {
			return
		}
		checkRunLenInvariants(t, p)
	})
}
