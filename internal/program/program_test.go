package program

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	p, err := NewBuilder("demo").
		Li(1, 42).
		Addi(2, 1, 8).
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Instrs[0].Op != OpLI || p.Instrs[0].Imm != 42 {
		t.Fatalf("first instr %+v", p.Instrs[0])
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("labels")
	b.Li(1, 0)
	b.Label("top")
	b.Addi(1, 1, 1)
	b.Li(2, 3)
	b.Blt(1, 2, "top") // backward
	b.Beq(1, 2, "end") // forward
	b.Li(3, 99)
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Backward branch targets instruction index 1.
	if p.Instrs[3].Target != 1 {
		t.Fatalf("backward target = %d", p.Instrs[3].Target)
	}
	if p.Instrs[4].Target != 6 {
		t.Fatalf("forward target = %d", p.Instrs[4].Target)
	}
}

func TestUndefinedLabel(t *testing.T) {
	_, err := NewBuilder("bad").Jmp("nowhere").Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x").Li(1, 1).Label("x").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate label error")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"empty", &Program{Name: "e"}},
		{"no-halt", &Program{Name: "nh", Instrs: []Instr{{Op: OpLI}}}},
		{"bad-target", &Program{Name: "bt", Instrs: []Instr{
			{Op: OpJmp, Target: 5}, {Op: OpHalt}}}},
		{"bad-reg", &Program{Name: "br", Instrs: []Instr{
			{Op: OpLI, Dst: 16}, {Op: OpHalt}}}},
		{"bad-mod", &Program{Name: "bm", Instrs: []Instr{
			{Op: OpMod, Imm: 0}, {Op: OpHalt}}}},
		{"bad-op", &Program{Name: "bo", Instrs: []Instr{
			{Op: numOpCodes}, {Op: OpHalt}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", c.name)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("p").Jmp("missing").MustBuild()
}

func TestOpcodeClassification(t *testing.T) {
	memOps := []OpCode{OpLd, OpSt, OpRmwAdd, OpRmwXchg, OpCas}
	for _, op := range memOps {
		if !op.IsMem() {
			t.Fatalf("%v should be a memory op", op)
		}
	}
	atomics := []OpCode{OpRmwAdd, OpRmwXchg, OpCas}
	for _, op := range atomics {
		if !op.IsAtomic() {
			t.Fatalf("%v should be atomic", op)
		}
	}
	if OpLd.IsAtomic() || OpAdd.IsMem() || OpFence.IsMem() {
		t.Fatal("misclassified opcode")
	}
}

func TestInstrStrings(t *testing.T) {
	b := NewBuilder("strs")
	b.Li(1, 5).Ld(2, 1, 8).St(1, 0, 2).Beq(1, 2, "end").Label("end").Halt()
	p := b.MustBuild()
	for _, in := range p.Instrs {
		if in.String() == "" {
			t.Fatalf("empty rendering for %v", in.Op)
		}
	}
	if s := p.Instrs[1].String(); !strings.Contains(s, "ld r2, [r1+8]") {
		t.Fatalf("load rendering: %s", s)
	}
}

func TestSpinUntilEqStructure(t *testing.T) {
	b := NewBuilder("spin")
	b.Li(1, 0x100).Li(2, 1)
	b.SpinUntilEq(3, 1, 0, 2)
	b.Halt()
	p := b.MustBuild()
	// The spin is a load followed by a bne back to the load.
	var loads, branches int
	for _, in := range p.Instrs {
		switch in.Op {
		case OpLd:
			loads++
		case OpBne:
			branches++
			if p.Instrs[in.Target].Op != OpLd {
				t.Fatal("spin branch must target the polling load")
			}
		}
	}
	if loads != 1 || branches != 1 {
		t.Fatalf("loads=%d branches=%d", loads, branches)
	}
}

func TestLockIdiomsBuild(t *testing.T) {
	b := NewBuilder("lock")
	b.Li(10, 0x1000)
	b.LockAcquire(8, 9, 10, 0)
	b.LockRelease(10, 0)
	b.Halt()
	p := b.MustBuild()
	var xchgs int
	for _, in := range p.Instrs {
		if in.Op == OpRmwXchg {
			xchgs++
		}
	}
	if xchgs != 1 {
		t.Fatalf("lock should use exactly one xchg, got %d", xchgs)
	}
}

func TestBarrierBuilds(t *testing.T) {
	b := NewBuilder("bar")
	b.Li(10, 0x2000)
	b.Barrier(10, 14, 12, 13, 4)
	b.Halt()
	p := b.MustBuild()
	var rmws int
	for _, in := range p.Instrs {
		if in.Op == OpRmwAdd {
			rmws++
		}
	}
	if rmws != 1 {
		t.Fatalf("barrier should use one fetch-add, got %d", rmws)
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := &Workload{
		Name:     "w",
		Programs: []*Program{NewBuilder("t0").Halt().MustBuild()},
		InitMem:  map[uint64]uint64{0x1000: 5},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Threads() != 1 {
		t.Fatalf("threads = %d", good.Threads())
	}

	empty := &Workload{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Fatal("expected error for empty workload")
	}
	misaligned := &Workload{
		Name:     "m",
		Programs: good.Programs,
		InitMem:  map[uint64]uint64{0x1001: 1},
	}
	if err := misaligned.Validate(); err == nil {
		t.Fatal("expected error for misaligned init")
	}
}

func TestWorkloadNilProgramsAreIdleCores(t *testing.T) {
	w := &Workload{
		Name:     "sparse",
		Programs: []*Program{nil, NewBuilder("t1").Halt().MustBuild(), nil},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Threads() != 1 {
		t.Fatalf("threads = %d, want 1", w.Threads())
	}
}

// TestRandomStraightLineProgramsValidate builds random branch-free
// programs and checks they always validate.
func TestRandomStraightLineProgramsValidate(t *testing.T) {
	check := func(ops []uint8) bool {
		b := NewBuilder("rand")
		for _, o := range ops {
			switch o % 6 {
			case 0:
				b.Li(uint8(o%NumRegs), int64(o))
			case 1:
				b.Addi(uint8(o%NumRegs), uint8((o+1)%NumRegs), 1)
			case 2:
				b.Ld(uint8(o%NumRegs), uint8((o+2)%NumRegs), int64(o&^7))
			case 3:
				b.St(uint8(o%NumRegs), int64(o&^7), uint8((o+3)%NumRegs))
			case 4:
				b.Nop(int64(o%10) + 1)
			case 5:
				b.Fence()
			}
		}
		b.Halt()
		p, err := b.Build()
		return err == nil && p.Validate() == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
