package litmus

// Suite returns the TSO litmus tests used to verify every protocol
// configuration (§4.3). Shapes and verdicts follow Sewell et al.,
// "x86-TSO: a rigorous and usable programmer's model" [38].
func Suite() []*Test {
	return []*Test{
		// SB (store buffering): the one reordering TSO allows.
		// T0: x=1; r0=y    T1: y=1; r1=x    (0,0) allowed.
		{
			Name: "SB",
			Threads: [][]Op{
				{St("x", 1), LdTo("y", 0)},
				{St("y", 1), LdTo("x", 1)},
			},
			NumOut:      2,
			Forbidden:   nil, // all four outcomes allowed under TSO
			Interesting: func(v []int64) bool { return v[0] == 0 && v[1] == 0 },
		},
		// SB+mfence: fences restore SC; (0,0) forbidden.
		{
			Name: "SB+fences",
			Threads: [][]Op{
				{St("x", 1), Fn(), LdTo("y", 0)},
				{St("y", 1), Fn(), LdTo("x", 1)},
			},
			NumOut:    2,
			Forbidden: func(v []int64) bool { return v[0] == 0 && v[1] == 0 },
		},
		// SB with locked xchg: x86 atomics fence; (0,0) forbidden.
		{
			Name: "SB+xchg",
			Threads: [][]Op{
				{XchgTo("x", 1, 2), LdTo("y", 0)},
				{XchgTo("y", 1, 3), LdTo("x", 1)},
			},
			NumOut: 4,
			Forbidden: func(v []int64) bool {
				return v[0] == 0 && v[1] == 0
			},
		},
		// MP (message passing / Figure 1): seeing the flag implies
		// seeing the data — w→w at the producer, r→r at the consumer.
		{
			Name: "MP",
			Threads: [][]Op{
				{St("x", 1), St("y", 1)},
				{LdTo("y", 0), LdTo("x", 1)},
			},
			NumOut:    2,
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 0 },
		},
		// MP with a spinning acquire (the paper's running example).
		{
			Name: "MP+spin",
			Threads: [][]Op{
				{St("x", 42), St("y", 1)},
				{Spin("y", 1), LdTo("x", 0)},
			},
			NumOut:    1,
			Forbidden: func(v []int64) bool { return v[0] != 42 },
		},
		// LB (load buffering): forbidden under TSO (r→w ordering).
		{
			Name: "LB",
			Threads: [][]Op{
				{LdTo("x", 0), St("y", 1)},
				{LdTo("y", 1), St("x", 1)},
			},
			NumOut:    2,
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 1 },
		},
		// IRIW: TSO stores are multi-copy atomic; the split-brain
		// outcome is forbidden.
		{
			Name: "IRIW",
			Threads: [][]Op{
				{St("x", 1)},
				{St("y", 1)},
				{LdTo("x", 0), LdTo("y", 1)},
				{LdTo("y", 2), LdTo("x", 3)},
			},
			NumOut: 4,
			Forbidden: func(v []int64) bool {
				return v[0] == 1 && v[1] == 0 && v[2] == 1 && v[3] == 0
			},
		},
		// WRC (write-to-read causality): transitive visibility.
		{
			Name: "WRC",
			Threads: [][]Op{
				{St("x", 1)},
				{LdTo("x", 0), St("y", 1)},
				{LdTo("y", 1), LdTo("x", 2)},
			},
			NumOut: 3,
			Forbidden: func(v []int64) bool {
				return v[0] == 1 && v[1] == 1 && v[2] == 0
			},
		},
		// CoRR: same-location reads may not go backwards in coherence
		// order — the key check for a protocol that serves stale hits.
		{
			Name: "CoRR",
			Threads: [][]Op{
				{St("x", 1)},
				{LdTo("x", 0), LdTo("x", 1)},
			},
			NumOut:    2,
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 0 },
		},
		// CoWW via final state: program-order stores to one location.
		{
			Name: "CoWW",
			Threads: [][]Op{
				{St("x", 1), St("x", 2)},
			},
			FinalVars: []string{"x"},
			Forbidden: func(v []int64) bool { return v[0] != 2 },
		},
		// 2+2W: final state must be consistent with some interleaving
		// of the two store pairs; under TSO each thread's pair stays
		// ordered, so (x,y) == (1,1) — both "first" stores last — is
		// forbidden.
		{
			Name: "2+2W",
			Threads: [][]Op{
				{St("x", 1), St("y", 2)},
				{St("y", 1), St("x", 2)},
			},
			FinalVars: []string{"x", "y"},
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 1 },
		},
		// S: w→w at T0 vs a read at T1 that then overwrites x.
		{
			Name: "S",
			Threads: [][]Op{
				{St("x", 2), St("y", 1)},
				{LdTo("y", 0), St("x", 1)},
			},
			NumOut:    1,
			FinalVars: []string{"x"},
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 2 },
		},
		// R: store-store vs store-load. The outcome (r0=0, y final 2)
		// needs T1's load to bypass its own buffered store to y — the
		// relaxed w→r edge — so TSO allows it (unlike SC).
		{
			Name: "R",
			Threads: [][]Op{
				{St("x", 1), St("y", 1)},
				{St("y", 2), LdTo("x", 0)},
			},
			NumOut:      1,
			FinalVars:   []string{"y"},
			Forbidden:   nil,
			Interesting: func(v []int64) bool { return v[0] == 0 && v[1] == 2 },
		},
		// MP on the SAME cache block (word granularity): exercises
		// store->load interplay within one line.
		{
			Name: "MP+sameline",
			Threads: [][]Op{
				{St("a0", 1), St("a1", 1)},
				{LdTo("a1", 0), LdTo("a0", 1)},
			},
			NumOut:    2,
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 0 },
		},
		// ISA2: causality chain across three threads through two
		// locations; TSO's w→w, r→w and store atomicity forbid the
		// stale tail read.
		{
			Name: "ISA2",
			Threads: [][]Op{
				{St("x", 1), St("y", 1)},
				{LdTo("y", 0), St("z", 1)},
				{LdTo("z", 1), LdTo("x", 2)},
			},
			NumOut: 3,
			Forbidden: func(v []int64) bool {
				return v[0] == 1 && v[1] == 1 && v[2] == 0
			},
		},
		// MP with fences on both sides: still forbidden, and exercises
		// the fence self-invalidation path on TSO-CC.
		{
			Name: "MP+fences",
			Threads: [][]Op{
				{St("x", 1), Fn(), St("y", 1)},
				{LdTo("y", 0), Fn(), LdTo("x", 1)},
			},
			NumOut:    2,
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 0 },
		},
		// LB with fences: also forbidden (already forbidden under bare
		// TSO; fences must not break anything).
		{
			Name: "LB+fences",
			Threads: [][]Op{
				{LdTo("x", 0), Fn(), St("y", 1)},
				{LdTo("y", 1), Fn(), St("x", 1)},
			},
			NumOut:    2,
			Forbidden: func(v []int64) bool { return v[0] == 1 && v[1] == 1 },
		},
		// WRC with an xchg producer: the locked write is a release with
		// full-barrier semantics; causality must still hold.
		{
			Name: "WRC+xchg",
			Threads: [][]Op{
				{XchgTo("x", 1, 3)},
				{LdTo("x", 0), St("y", 1)},
				{LdTo("y", 1), LdTo("x", 2)},
			},
			NumOut: 4,
			Forbidden: func(v []int64) bool {
				return v[0] == 1 && v[1] == 1 && v[2] == 0
			},
		},
		// xchg atomicity: two exchanges on one location; exactly one
		// must observe the initial value.
		{
			Name: "xchg-atomic",
			Threads: [][]Op{
				{XchgTo("x", 1, 0)},
				{XchgTo("x", 2, 1)},
			},
			NumOut: 2,
			Forbidden: func(v []int64) bool {
				// Both saw 0, or each saw the other: atomicity broken.
				return (v[0] == 0 && v[1] == 0) || (v[0] == 2 && v[1] == 1)
			},
		},
	}
}
