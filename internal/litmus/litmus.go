// Package litmus provides the TSO verification methodology of §4.3: a
// suite of diy-style litmus tests (store buffering, message passing,
// IRIW, coherence shapes, ...) run many times with randomized timing
// perturbation and cache pre-warming, checking that outcomes forbidden
// by x86-TSO never occur — and that the one reordering TSO allows
// (store buffering) is actually observable.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/system"
)

// Op is one memory event in a litmus thread.
type Op struct {
	Kind  OpKind
	Var   string // symbolic location ("x", "y", ...)
	Val   int64  // store value / RMW operand
	Out   int    // observation index written by loads/RMWs (-1 = none)
	Until int64  // SpinLoad: loop until the loaded value equals Until
}

// OpKind enumerates litmus event kinds.
type OpKind int

// Litmus event kinds.
const (
	Store OpKind = iota
	Load
	SpinLoad // polling load, loops until the value is seen
	Xchg     // atomic exchange (x86 locked, fences)
	Fence
)

// St builds a store event.
func St(v string, val int64) Op { return Op{Kind: Store, Var: v, Val: val, Out: -1} }

// LdTo builds a load observed at index out.
func LdTo(v string, out int) Op { return Op{Kind: Load, Var: v, Out: out} }

// Spin builds a polling load that waits for val.
func Spin(v string, val int64) Op { return Op{Kind: SpinLoad, Var: v, Until: val, Out: -1} }

// XchgTo builds an atomic exchange observed at index out.
func XchgTo(v string, val int64, out int) Op { return Op{Kind: Xchg, Var: v, Val: val, Out: out} }

// Fn builds a fence.
func Fn() Op { return Op{Kind: Fence, Out: -1} }

// Test is one litmus test: named threads over symbolic locations, with a
// predicate over the observation tuple (register observations first, then
// final values of FinalVars in order).
type Test struct {
	Name      string
	Threads   [][]Op
	NumOut    int      // observation slots filled by loads
	FinalVars []string // locations whose final value extends the tuple
	// Forbidden reports whether an outcome violates TSO.
	Forbidden func(vals []int64) bool
	// Interesting marks the relaxed outcome that a TSO (non-SC)
	// implementation should be able to produce (nil = none).
	Interesting func(vals []int64) bool
}

// Result summarizes a litmus campaign.
type Result struct {
	Test           string
	Iterations     int
	Outcomes       map[string]int
	Violations     []string
	SawInteresting bool
}

// Ok reports whether no forbidden outcome was observed.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// String renders the outcome histogram.
func (r *Result) String() string {
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d runs, %d distinct outcomes", r.Test, r.Iterations, len(r.Outcomes))
	if len(r.Violations) > 0 {
		fmt.Fprintf(&b, ", FORBIDDEN: %v", r.Violations)
	}
	for _, k := range keys {
		fmt.Fprintf(&b, "\n  %-24s %d", k, r.Outcomes[k])
	}
	return b.String()
}

const (
	varBase    = 0x100000 // symbolic variables, one block apart
	resultBase = 0x200000 // per-thread observation spill area
)

func varAddr(syms []string, v string) uint64 {
	// Symbols of the form "aN" share a single cache block at word
	// offset N, for same-line litmus shapes.
	if len(v) == 2 && v[0] == 'a' && v[1] >= '0' && v[1] <= '7' {
		return varBase + 0x2000 + uint64(v[1]-'0')*8
	}
	for i, s := range syms {
		if s == v {
			return varBase + uint64(i)*0x40
		}
	}
	panic("litmus: unknown variable " + v)
}

func resultAddr(out int) uint64 { return resultBase + uint64(out)*0x40 }

// symbols returns the sorted distinct locations of a test.
func symbols(t *Test) []string {
	set := map[string]bool{}
	for _, th := range t.Threads {
		for _, op := range th {
			if op.Kind != Fence {
				set[op.Var] = true
			}
		}
	}
	for _, v := range t.FinalVars {
		set[v] = true
	}
	syms := make([]string, 0, len(set))
	for s := range set {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}

// buildWorkload lowers a test into thread programs with the given timing
// perturbation (per-thread initial delays) and optional cache warming
// (each thread pre-reads every location, creating Shared copies that a
// lazy protocol must prove it invalidates in time).
func buildWorkload(t *Test, delays []int64, warm bool) (*program.Workload, []uint64) {
	syms := symbols(t)
	var outAddrs []uint64
	for i := 0; i < t.NumOut; i++ {
		outAddrs = append(outAddrs, resultAddr(i))
	}

	progs := make([]*program.Program, len(t.Threads))
	for ti, th := range t.Threads {
		b := program.NewBuilder(fmt.Sprintf("%s-t%d", t.Name, ti))
		if warm {
			for _, s := range syms {
				b.Li(1, int64(varAddr(syms, s)))
				b.Ld(2, 1, 0)
			}
		}
		if delays[ti] > 0 {
			b.Nop(delays[ti])
		}
		// Observation registers start at r8.
		nextObs := uint8(8)
		obsFor := map[int]uint8{}
		for _, op := range th {
			switch op.Kind {
			case Store:
				b.Li(1, int64(varAddr(syms, op.Var)))
				b.Li(2, op.Val)
				b.St(1, 0, 2)
			case Load:
				b.Li(1, int64(varAddr(syms, op.Var)))
				b.Ld(nextObs, 1, 0)
				obsFor[op.Out] = nextObs
				nextObs++
			case SpinLoad:
				b.Li(1, int64(varAddr(syms, op.Var)))
				b.Li(2, op.Until)
				b.SpinUntilEq(3, 1, 0, 2)
			case Xchg:
				b.Li(1, int64(varAddr(syms, op.Var)))
				b.Li(2, op.Val)
				b.RmwXchg(nextObs, 1, 0, 2)
				if op.Out >= 0 {
					obsFor[op.Out] = nextObs
					nextObs++
				}
			case Fence:
				b.Fence()
			}
		}
		// Publish observations to per-slot result blocks, in slot order
		// for determinism.
		outs := make([]int, 0, len(obsFor))
		for k := range obsFor {
			outs = append(outs, k)
		}
		sort.Ints(outs)
		for _, out := range outs {
			b.Li(1, int64(resultAddr(out)))
			b.St(1, 0, obsFor[out])
		}
		b.Halt()
		progs[ti] = b.MustBuild()
	}

	w := &program.Workload{Name: t.Name, Programs: progs}
	return w, outAddrs
}

// Run executes the test `iters` times under proto, with seeded random
// perturbation, alternating cold and warmed cache states.
func Run(t *Test, proto system.Protocol, cfg config.System, iters int, seed uint64) (*Result, error) {
	rng := sim.NewRNG(seed)
	res := &Result{Test: t.Name, Iterations: iters, Outcomes: make(map[string]int)}
	for it := 0; it < iters; it++ {
		delays := make([]int64, len(t.Threads))
		for i := range delays {
			delays[i] = rng.Int63n(60)
		}
		warm := it%2 == 1
		w, outAddrs := buildWorkload(t, delays, warm)

		vals := make([]int64, 0, t.NumOut+len(t.FinalVars))
		syms := symbols(t)
		w.Check = func(mem program.MemReader) error {
			for _, a := range outAddrs {
				vals = append(vals, int64(mem.ReadWord(a)))
			}
			for _, v := range t.FinalVars {
				vals = append(vals, int64(mem.ReadWord(varAddr(syms, v))))
			}
			return nil
		}
		r, err := system.Run(cfg, proto, w)
		if err != nil {
			return nil, fmt.Errorf("litmus %s iter %d: %w", t.Name, it, err)
		}
		if r.CheckErr != nil {
			return nil, r.CheckErr
		}
		key := outcomeKey(vals)
		res.Outcomes[key]++
		if t.Forbidden != nil && t.Forbidden(vals) {
			res.Violations = append(res.Violations, key)
		}
		if t.Interesting != nil && t.Interesting(vals) {
			res.SawInteresting = true
		}
	}
	return res, nil
}

func outcomeKey(vals []int64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}
