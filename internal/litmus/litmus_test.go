package litmus_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/litmus"
	"repro/internal/mesi"
	"repro/internal/system"

	"repro/internal/tsocc" // also registers the TSO-CC presets
)

// protocols enumerates the registry: every registered protocol — the
// MESI baseline plus all six TSO-CC presets — is litmus-tested without
// this file naming them.
func protocols() map[string]system.Protocol {
	out := make(map[string]system.Protocol)
	for _, p := range coherence.Protocols() {
		out[p.Name()] = p
	}
	return out
}

const itersPerTest = 24

func TestLitmusSuiteAllProtocols(t *testing.T) {
	cfg := config.Small(4)
	if got := len(protocols()); got < 7 {
		t.Fatalf("registry lists %d protocols, want >= 7", got)
	}
	for name, proto := range protocols() {
		name, proto := name, proto
		t.Run(name, func(t *testing.T) {
			for _, lt := range litmus.Suite() {
				lt := lt
				t.Run(lt.Name, func(t *testing.T) {
					res, err := litmus.Run(lt, proto, cfg, itersPerTest, 0xC0FFEE)
					if err != nil {
						t.Fatalf("litmus run failed: %v", err)
					}
					if !res.Ok() {
						t.Fatalf("TSO violation:\n%s", res)
					}
				})
			}
		})
	}
}

// TestStoreBufferingObservable checks that the simulated cores really do
// exhibit TSO's w→r relaxation: over many SB runs, the (0,0) outcome
// must appear (otherwise the write buffer model is vacuous).
func TestStoreBufferingObservable(t *testing.T) {
	cfg := config.Small(4)
	var sb *litmus.Test
	for _, lt := range litmus.Suite() {
		if lt.Name == "SB" {
			sb = lt
		}
	}
	res, err := litmus.Run(sb, mesi.New(), cfg, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SawInteresting {
		t.Fatalf("SB relaxed outcome never observed on MESI:\n%s", res)
	}
	res, err = litmus.Run(sb, tsocc.New(config.C12x3()), cfg, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SawInteresting {
		t.Fatalf("SB relaxed outcome never observed on TSO-CC:\n%s", res)
	}
}

// TestLitmusWithTinyTimestamps stresses the reset/epoch machinery under
// litmus scrutiny.
func TestLitmusWithTinyTimestamps(t *testing.T) {
	cfg := config.Small(4)
	proto := tsocc.New(config.TSOCC{MaxAccBits: 2, TimestampBits: 4, WriteGroupBits: 1,
		SharedRO: true, EpochBits: 2, DecayWrites: 8})
	for _, lt := range litmus.Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			res, err := litmus.Run(lt, proto, cfg, itersPerTest, 0xBEEF)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Fatalf("TSO violation:\n%s", res)
			}
		})
	}
}
