package system_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/mesi"
	"repro/internal/program"
	"repro/internal/system"
	"repro/internal/tsocc"
)

// counterWorkload has n threads each incrementing a shared counter with
// fetch-and-add `iters` times, plus a private accumulator.
func counterWorkload(n int, iters int64) *program.Workload {
	const counterAddr = 0x1000
	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("counter-t%d", i))
		b.Li(1, counterAddr) // r1 = &counter
		b.Li(2, 1)           // r2 = 1
		b.Li(3, 0)           // r3 = loop count
		b.Li(4, iters)
		b.Label("loop")
		b.RmwAdd(5, 1, 0, 2) // old = fetch_add(counter, 1)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Halt()
		progs[i] = b.MustBuild()
	}
	total := uint64(int64(n) * iters)
	return &program.Workload{
		Name:     "counter",
		Programs: progs,
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(counterAddr); got != total {
				return fmt.Errorf("counter = %d, want %d", got, total)
			}
			return nil
		},
	}
}

// producerConsumer reproduces Figure 1: A writes data then flag; B spins
// on flag, then must read A's data.
func producerConsumer() *program.Workload {
	const dataAddr, flagAddr = 0x2000, 0x3000
	a := program.NewBuilder("producer")
	a.Li(1, dataAddr).Li(2, flagAddr).Li(3, 42).Li(4, 1)
	a.St(1, 0, 3) // data = 42
	a.St(2, 0, 4) // flag = 1
	a.Halt()

	b := program.NewBuilder("consumer")
	b.Li(1, dataAddr).Li(2, flagAddr).Li(4, 1)
	b.SpinUntilEq(5, 2, 0, 4) // while (flag == 0);
	b.Ld(6, 1, 0)             // r6 = data
	b.Li(7, 0x4000)
	b.St(7, 0, 6) // publish observation
	b.Fence()
	b.Halt()

	return &program.Workload{
		Name:     "producer-consumer",
		Programs: []*program.Program{a.MustBuild(), b.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(0x4000); got != 42 {
				return fmt.Errorf("consumer observed data = %d, want 42", got)
			}
			return nil
		},
	}
}

func runOn(t *testing.T, proto system.Protocol, w *program.Workload, cores int) *system.Result {
	t.Helper()
	cfg := config.Small(cores)
	res, err := system.Run(cfg, proto, w)
	if err != nil {
		t.Fatalf("%s on %s: %v", proto.Name(), w.Name, err)
	}
	if res.CheckErr != nil {
		t.Fatalf("%s on %s: functional check: %v", proto.Name(), w.Name, res.CheckErr)
	}
	if res.PoolLive != 0 || res.TxLive != 0 {
		t.Fatalf("%s on %s: leak after clean run: %d pooled message(s), %d transaction(s)",
			proto.Name(), w.Name, res.PoolLive, res.TxLive)
	}
	return res
}

func TestMESIProducerConsumer(t *testing.T) {
	res := runOn(t, mesi.New(), producerConsumer(), 4)
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestMESISharedCounter(t *testing.T) {
	res := runOn(t, mesi.New(), counterWorkload(4, 50), 4)
	if res.RMWs != 200 {
		t.Fatalf("RMWs = %d, want 200", res.RMWs)
	}
}

func TestMESIManyCores(t *testing.T) {
	runOn(t, mesi.New(), counterWorkload(8, 25), 8)
}

func TestMESICapacityEvictions(t *testing.T) {
	// Touch far more blocks than the tiny L1 (and L2 sets) can hold to
	// exercise both L1 and L2 eviction paths.
	b := program.NewBuilder("streamer")
	b.Li(1, 0x10000) // base
	b.Li(2, 0)       // i
	b.Li(3, 512)     // blocks
	b.Li(6, 7)
	b.Label("loop")
	b.Shl(4, 2, 6) // offset = i * 128
	b.Add(4, 4, 1)
	b.St(4, 0, 2) // mem[base+off] = i
	b.Ld(5, 4, 0)
	b.Bne(5, 2, "fail")
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Li(7, 0x5000)
	b.Li(8, 1)
	b.St(7, 0, 8)
	b.Halt()
	b.Label("fail")
	b.Li(7, 0x5000)
	b.Li(8, 2)
	b.St(7, 0, 8)
	b.Halt()

	w := &program.Workload{
		Name:     "streamer",
		Programs: []*program.Program{b.MustBuild()},
		Check: func(mem program.MemReader) error {
			switch mem.ReadWord(0x5000) {
			case 1:
				return nil
			case 2:
				return fmt.Errorf("readback mismatch inside stream")
			default:
				return fmt.Errorf("streamer did not finish")
			}
		},
	}
	runOn(t, mesi.New(), w, 2)
}

// ---- TSO-CC variants on the same workloads ----

func allTSOCCConfigs() []config.TSOCC {
	return []config.TSOCC{
		config.CCSharedToL2(),
		config.Basic(),
		config.NoReset(),
		config.C12x3(),
		config.C12x0(),
		config.C9x3(),
	}
}

func TestTSOCCProducerConsumerAllConfigs(t *testing.T) {
	for _, c := range allTSOCCConfigs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			runOn(t, tsocc.New(c), producerConsumer(), 4)
		})
	}
}

func TestTSOCCSharedCounterAllConfigs(t *testing.T) {
	for _, c := range allTSOCCConfigs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			res := runOn(t, tsocc.New(c), counterWorkload(4, 50), 4)
			if res.RMWs != 200 {
				t.Fatalf("RMWs = %d, want 200", res.RMWs)
			}
		})
	}
}

func TestTSOCCCapacityEvictions(t *testing.T) {
	b := program.NewBuilder("streamer")
	b.Li(1, 0x10000)
	b.Li(2, 0)
	b.Li(3, 512)
	b.Li(6, 7)
	b.Label("loop")
	b.Shl(4, 2, 6)
	b.Add(4, 4, 1)
	b.St(4, 0, 2)
	b.Ld(5, 4, 0)
	b.Bne(5, 2, "fail")
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Li(7, 0x5000)
	b.Li(8, 1)
	b.St(7, 0, 8)
	b.Halt()
	b.Label("fail")
	b.Li(7, 0x5000)
	b.Li(8, 2)
	b.St(7, 0, 8)
	b.Halt()
	w := &program.Workload{
		Name:     "streamer",
		Programs: []*program.Program{b.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(0x5000); got != 1 {
				return fmt.Errorf("streamer result = %d, want 1", got)
			}
			return nil
		},
	}
	for _, c := range allTSOCCConfigs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			runOn(t, tsocc.New(c), w, 2)
		})
	}
}

// TestTSOCCTimestampResets forces many timestamp-source wraps with a tiny
// timestamp width and checks the epoch machinery keeps the system correct.
func TestTSOCCTimestampResets(t *testing.T) {
	c := config.TSOCC{MaxAccBits: 2, TimestampBits: 4, WriteGroupBits: 0,
		SharedRO: true, EpochBits: 3, DecayWrites: 16}
	res := runOn(t, tsocc.New(c), counterWorkload(4, 100), 4)
	if res.L1.TimestampResets.Value() == 0 {
		t.Fatalf("expected timestamp resets with 4-bit timestamps, got none")
	}
}

// ---- System-level plumbing tests ----

func TestTooManyProgramsRejected(t *testing.T) {
	w := counterWorkload(8, 1)
	if _, err := system.Run(config.Small(4), mesi.New(), w); err == nil {
		t.Fatal("expected error: 8 programs on 4 cores")
	}
}

func TestIdleCoresAllowed(t *testing.T) {
	w := counterWorkload(2, 10)
	res, err := system.Run(config.Small(8), mesi.New(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckErr != nil {
		t.Fatal(res.CheckErr)
	}
}

func TestNilProgramSlotsSkipped(t *testing.T) {
	base := counterWorkload(1, 10)
	w := &program.Workload{
		Name:     "sparse",
		Programs: []*program.Program{nil, base.Programs[0], nil},
		Check:    base.Check,
	}
	res, err := system.Run(config.Small(4), tsocc.New(config.C12x3()), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckErr != nil {
		t.Fatal(res.CheckErr)
	}
}

// TestHierarchyReaderSeesDirtyL1 verifies functional checks observe
// modified-but-unwritten-back data.
func TestHierarchyReaderSeesDirtyL1(t *testing.T) {
	b := program.NewBuilder("dirty")
	b.Li(1, 0x1000).Li(2, 77)
	b.St(1, 0, 2) // stays Modified in the L1; never written back
	b.Halt()
	w := &program.Workload{
		Name:     "dirty-l1",
		Programs: []*program.Program{b.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(0x1000); got != 77 {
				return fmt.Errorf("hierarchy reader saw %d, want 77", got)
			}
			return nil
		},
	}
	for _, proto := range []system.Protocol{mesi.New(), tsocc.New(config.C12x3())} {
		res, err := system.Run(config.Small(2), proto, w)
		if err != nil {
			t.Fatalf("%s: %v", proto.Name(), err)
		}
		if res.CheckErr != nil {
			t.Fatalf("%s: %v", proto.Name(), res.CheckErr)
		}
	}
}

func TestInitMemVisibleToPrograms(t *testing.T) {
	b := program.NewBuilder("reader")
	b.Li(1, 0x2000)
	b.Ld(2, 1, 0)
	b.Li(3, 0x3000)
	b.St(3, 0, 2)
	b.Fence()
	b.Halt()
	w := &program.Workload{
		Name:     "init",
		Programs: []*program.Program{b.MustBuild()},
		InitMem:  map[uint64]uint64{0x2000: 1234},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(0x3000); got != 1234 {
				return fmt.Errorf("program read %d from initialized memory", got)
			}
			return nil
		},
	}
	res, err := system.Run(config.Small(2), tsocc.New(config.Basic()), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckErr != nil {
		t.Fatal(res.CheckErr)
	}
}

func TestResultSummaryRenders(t *testing.T) {
	res := runOn(t, mesi.New(), counterWorkload(2, 5), 2)
	s := res.Summary()
	for _, want := range []string{"cycles", "rmws", "network flits"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestCrossProtocolFunctionalEquivalence: the same workload must compute
// the same final values under every protocol (only timing may differ).
func TestCrossProtocolFunctionalEquivalence(t *testing.T) {
	read := func(proto system.Protocol) uint64 {
		w := counterWorkload(4, 25)
		res, err := system.Run(config.Small(4), proto, w)
		if err != nil {
			t.Fatal(err)
		}
		if res.CheckErr != nil {
			t.Fatal(res.CheckErr)
		}
		return uint64(res.RMWs)
	}
	base := read(mesi.New())
	for _, c := range allTSOCCConfigs() {
		if got := read(tsocc.New(c)); got != base {
			t.Fatalf("%s: RMW count %d != MESI %d", c.Name(), got, base)
		}
	}
}
