package system

import (
	"fmt"
	"strconv"

	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// installObs wires the observability layer (cfg.Obs) into every built
// component. It runs after registration (engine timeline/label hooks
// enumerate registered tickers) and before Run. Everything installed
// here is strictly read-only with respect to simulated state: sinks
// observe cycle counts and event edges the simulation produces anyway,
// so an observed run's Result is bit-identical to an unobserved one
// (the TestObsOnOffBitIdentical gate).
func (m *Machine) installObs() {
	o := m.Cfg.Obs
	if o == nil || !o.Enabled() {
		return
	}
	reg, tl := o.Metrics, o.Timeline

	// Engine: wake-set occupancy, tick spans, epoch/barrier spans,
	// pprof labels. Each shard engine gets its own histogram instance
	// (single-goroutine ownership); same-named series merge at dump.
	if m.SE != nil {
		if reg != nil {
			m.SE.EnableBarrierClock()
			for s := 0; s < m.SE.Shards(); s++ {
				s := s
				m.SE.Shard(s).SetDispatchHist(reg.NewHist("engine.dispatch_ticks"))
				reg.Gauge("engine.shard"+strconv.Itoa(s)+".barrier_wait_ns",
					func() int64 { return m.SE.BarrierWaitNs(s) })
			}
		}
		if tl != nil {
			m.SE.SetTimeline(tl)
		}
		if o.ProfileLabels {
			m.SE.EnableProfileLabels()
		}
	} else {
		if reg != nil {
			m.Engine.SetDispatchHist(reg.NewHist("engine.dispatch_ticks"))
		}
		if tl != nil {
			tl.ProcessName(0, "components")
			m.Engine.SetTimeline(tl, 0, nil)
		}
		if o.ProfileLabels {
			m.Engine.EnableProfileLabels("0")
		}
	}

	// Mesh: traffic counters, link occupancy and calendar-queue depth
	// gauges, send→deliver flow arrows, fault-delay instants.
	if reg != nil {
		m.Net.InstallMetrics(reg)
		reg.RegisterCounter(m.Mem.Counters()...)
	}
	if tl != nil {
		m.Net.SetTimeline(tl)
	}

	// L1s: hit/miss/self-invalidation counters and per-miss
	// issue-to-completion latency histograms.
	if reg != nil {
		for i, l1 := range m.L1s {
			s := l1.L1Stats()
			s.SetNames(fmt.Sprintf("l1.%d", i))
			reg.RegisterCounter(s.Counters()...)
			if mr, ok := l1.(coherence.MissLatencyReporter); ok {
				rh := reg.NewHist("l1.read_miss_latency")
				wh := reg.NewHist("l1.write_miss_latency")
				mr.SetMissLatencySink(func(read bool, cycles sim.Cycle) {
					if read {
						rh.Observe(int64(cycles))
					} else {
						wh.Observe(int64(cycles))
					}
				})
			}
		}
	}

	// Directory tiles: TxTable lifecycle counters, birth-to-death
	// transaction latency, and per-transaction async timeline spans
	// named in protocol terms (mem-fetch, await-ack, sro-inv, ...).
	if tl != nil {
		tl.ProcessName(obs.PidTx, "directory tx")
	}
	for tile, l2 := range m.L2s {
		if reg != nil {
			if cp, ok := l2.(coherence.ObsCounterProvider); ok {
				reg.RegisterCounter(cp.ObsCounters()...)
			}
		}
		to, ok := l2.(coherence.TxObserver)
		if !ok {
			continue
		}
		var lat func(sim.Cycle)
		if reg != nil {
			h := reg.NewHist("coherence.tx_latency")
			lat = func(cycles sim.Cycle) { h.Observe(int64(cycles)) }
		}
		var span func(bool, sim.Cycle, uint64, int)
		if tl != nil {
			tile := tile
			tl.ThreadName(obs.PidTx, tile, "tile "+strconv.Itoa(tile))
			cat := "tx.t" + strconv.Itoa(tile)
			namer, hasNames := l2.(coherence.TxKindNamer)
			kindName := func(kind int) string {
				if hasNames {
					return namer.TxKindName(kind)
				}
				return "kind-" + strconv.Itoa(kind)
			}
			span = func(begin bool, now sim.Cycle, addr uint64, kind int) {
				if begin {
					tl.AsyncBegin(cat, addr, obs.PidTx, tile, kindName(kind), int64(now))
				} else {
					tl.AsyncEnd(cat, addr, obs.PidTx, tile, kindName(kind), int64(now))
				}
			}
		}
		to.SetTxObs(lat, span)
	}

	// Frontends: retirement counters and stall-attribution histograms
	// (why each stalled cycle happened, bucketed by duration).
	if reg != nil {
		for i, f := range m.Fronts {
			prefix := "core" + strconv.Itoa(m.frontCore[i])
			if _, replay := f.(*trace.ReplayCore); replay {
				prefix = "replay" + strconv.Itoa(m.frontCore[i])
			}
			if cp, ok := f.(coherence.ObsCounterProvider); ok {
				reg.RegisterCounter(cp.ObsCounters()...)
			}
			if sr, ok := f.(interface{ SetStalls(*obs.CoreStalls) }); ok {
				sr.SetStalls(reg.NewCoreStalls(prefix))
			}
		}
	}
}
