// Package system wires a complete simulated CMP: cores, a coherence
// protocol's L1/L2 controllers, the mesh interconnect and memory — and
// runs a workload on it to completion, collecting the statistics the
// paper's figures are built from.
package system

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/check"
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/faults"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Protocol is the coherence-protocol factory interface, defined in the
// coherence package next to the registry that names every implementation.
// Protocols are resolved by name (coherence.ProtocolByName) or passed as
// values; this package never enumerates the known set.
type Protocol = coherence.Protocol

// Frontend is the engine-facing contract of a workload driver — the
// component that owns one core slot and issues memory operations into
// its L1. cpu.Core (program execution) and trace.ReplayCore
// (trace-driven replay) both implement it, which is what lets
// NewReplayMachine swap the instruction-executing front end for a
// recorded stream while every layer below stays untouched.
type Frontend interface {
	sim.Ticker
	sim.WakeHinter
	sim.WakeSink
	// Done reports whether the frontend has retired its full stream and
	// drained its write buffer.
	Done() bool
	// Counts reports the core-level counters aggregated into Result.
	Counts() (loads, stores, rmws, fences, instrs int64)
}

// Result captures one run's outcome.
type Result struct {
	Protocol string
	Workload string

	Cycles sim.Cycle

	// Aggregated L1 statistics across all cores.
	L1 coherence.L1Stats

	// Network traffic.
	Msgs      int64
	Flits     int64 // flits injected (message sizes)
	FlitHops  int64 // flits x links traversed (reported as "traffic")
	DataFlits int64
	CtrlFlits int64

	// Core-level counts.
	Loads, Stores, RMWs, Fences, Instructions int64

	// L2 tile events (TSO-CC only; zero for MESI).
	SROTransitions int64 // lines that entered SharedRO
	DecayEvents    int64 // Shared->SharedRO decays
	SROInvBcasts   int64 // writes to SharedRO lines (broadcast rounds)
	L2TSResets     int64 // tile timestamp-source wraps

	// Message-pool accounting. PoolLive must be zero after a clean run:
	// the TxTable/controller ownership discipline returns every pooled
	// message once the system quiesces, so a non-zero value is a leak.
	PoolGets int64
	PoolLive int64

	// TxLive counts directory transactions registered but never retired
	// across all tiles; like PoolLive it must be zero after a clean run.
	TxLive int64

	Mem *memsys.Memory // final memory state (for workload checks)

	CheckErr error // workload functional check outcome
}

// quiesceDoner declares the system done when all cores have halted and
// the memory system has gone idle. The check runs every engine
// iteration, so it probes the component that was busy last time first:
// while the system is running, that single probe usually answers.
type quiesceDoner struct {
	cores []Frontend
	l1s   []coherence.L1Like
	l2s   []coherence.Controller
	net   *mesh.Network

	lastBusyCore int
	lastBusyL1   int
	lastBusyL2   int
}

func (q *quiesceDoner) Done() bool {
	if !q.cores[q.lastBusyCore].Done() {
		return false
	}
	if q.l1s[q.lastBusyL1].Busy() || q.l2s[q.lastBusyL2].Busy() {
		return false
	}
	for i, c := range q.cores {
		if !c.Done() {
			q.lastBusyCore = i
			return false
		}
	}
	if q.net.Pending() > 0 {
		return false
	}
	for i, l := range q.l1s {
		if l.Busy() {
			q.lastBusyL1 = i
			return false
		}
	}
	for i, l := range q.l2s {
		if l.Busy() {
			q.lastBusyL2 = i
			return false
		}
	}
	return true
}

// Machine is a fully wired system ready to run one workload.
type Machine struct {
	Cfg config.System
	// Engine is the single-threaded wake-set engine; nil when the
	// machine runs sharded (SE set instead). Exactly one of the two is
	// non-nil.
	Engine *sim.Engine
	// SE is the sharded parallel engine (cfg.Shards >= 2 after
	// resolution); nil in single-threaded mode.
	SE     *sim.ShardedEngine
	Net    *mesh.Network
	Mem    *memsys.Memory
	Cores  []*cpu.Core // program-mode cores (empty for replay machines)
	Fronts []Frontend  // every workload driver, program or replay
	L1s    []coherence.L1Like
	L2s    []coherence.Controller
	proto  Protocol

	// shardOfTile maps each tile to its owning shard (nil when serial);
	// frontCore maps each Fronts slot to its core/tile number.
	shardOfTile []int
	frontCore   []int

	// inj is the fault injector (nil unless cfg.FaultProfile is set);
	// checks the invariant-oracle tracker (nil unless cfg.Checks).
	inj    *faults.Injector
	checks *check.Tracker

	workload string // result label (workload or trace name)
}

// Checks exposes the oracle tracker (nil when cfg.Checks is off), so
// tests can inspect recorded violations directly.
func (m *Machine) Checks() *check.Tracker { return m.checks }

// Prewarm materializes every controller's lazily-allocated cache
// storage (coherence.StoragePrewarmer). Timing harnesses call it
// before starting the clock so first-touch chunk allocation is setup
// cost, not measured run cost; conformance and litmus runs skip it and
// keep the sparse footprint.
func (m *Machine) Prewarm() {
	for _, l1 := range m.L1s {
		if p, ok := l1.(coherence.StoragePrewarmer); ok {
			p.PrewarmStorage()
		}
	}
	for _, l2 := range m.L2s {
		if p, ok := l2.(coherence.StoragePrewarmer); ok {
			p.PrewarmStorage()
		}
	}
}

// Shards reports the effective shard count the machine runs with (1 in
// single-threaded mode).
func (m *Machine) Shards() int {
	if m.SE == nil {
		return 1
	}
	return m.SE.Shards()
}

// resolveShards maps cfg.Shards to the effective shard count: 0 and 1
// select the single-threaded engine, larger values clamp to the core
// count, and PerCycleEngine or Checks force 1 (the per-cycle baseline
// is inherently serial; the oracle tracker observes cross-core order
// through shared state).
func resolveShards(cfg config.System) int {
	k := cfg.Shards
	if k > cfg.Cores {
		k = cfg.Cores
	}
	if k <= 1 || cfg.PerCycleEngine || cfg.Checks {
		return 1
	}
	return k
}

// newBase wires everything below the frontends: engine (serial or
// sharded), mesh, memory (with the initial image loaded) and the
// protocol's L1/L2 controllers.
func newBase(cfg config.System, proto Protocol, initMem map[uint64]uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shards := resolveShards(cfg)
	net := mesh.New(mesh.Config{Routers: cfg.Cores, Rows: cfg.MeshRows})
	m := &Machine{Cfg: cfg, Net: net, proto: proto}
	if shards > 1 {
		// Each shard owns a contiguous run of whole tiles (core + L1 +
		// directory slice), so every intra-cycle stimulation stays
		// shard-local; only mesh messages cross shards. The epoch length
		// is the mesh's conservative lookahead.
		se := sim.NewShardedEngine(shards, net.Lookahead(), cfg.MaxCycles)
		m.SE = se
		m.shardOfTile = make([]int, cfg.Cores)
		for t := range m.shardOfTile {
			m.shardOfTile[t] = t * shards / cfg.Cores
		}
		net.SetShards(mesh.ShardPlan{
			NumShards:     shards,
			ShardOfRouter: m.shardOfTile,
			DispatchPos:   se.DispatchPos,
		})
		se.SetMerge(func(windowEnd sim.Cycle) {
			for s, touched := range net.MergeEpoch(windowEnd) {
				if touched {
					se.MarkShardActive(s)
				}
			}
		})
	} else {
		engine := sim.NewEngine(cfg.MaxCycles)
		engine.SetPerCycle(cfg.PerCycleEngine)
		m.Engine = engine
	}
	mem := memsys.NewMemory()
	mem.Base = cfg.MemBase
	mem.Spread = cfg.MemSpread
	for addr, val := range initMem {
		mem.WriteWord(addr, val)
	}
	if shards > 1 {
		// Bank the backing store by home tile so each bank is only ever
		// accessed by its owning shard's goroutine.
		shardOf, cores := m.shardOfTile, uint64(cfg.Cores)
		mem.Interleave(shards, func(blk uint64) int {
			return shardOf[(blk>>coherence.BlockShift)%cores]
		})
	}
	m.Mem = mem
	l1s, l2s := proto.Build(cfg, net, mem)
	for i := 0; i < cfg.Cores; i++ {
		net.Attach(coherence.L1ID(i), i, endpoint{l1s[i]})
		net.Attach(coherence.L2ID(i, cfg.Cores), i, endpoint{l2s[i]})
	}
	m.L1s, m.L2s = l1s, l2s
	if cfg.FaultProfile != "" {
		inj, err := faults.New(cfg.FaultProfile, cfg.FaultSeed)
		if err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
		m.inj = inj
		if inj.MeshActive() {
			if shards > 1 {
				// One independent decision domain per delivery domain;
				// every (src,dst) pair always lands in the same domain, so
				// the per-pair decision streams match a serial run's.
				for s := 0; s < shards; s++ {
					net.SetShardDelayHook(s, inj.MeshDelayer())
				}
				net.SetMergeDelayHook(inj.MeshDelayer())
			} else {
				net.SetDelayHook(inj.MeshDelay)
			}
		}
		if inj.TxActive() {
			for tile, l2 := range l2s {
				if st, ok := l2.(interface {
					SetStall(func(m *coherence.Msg) bool)
				}); ok {
					st.SetStall(inj.TxStall(tile))
				}
			}
		}
		if inj.EvictActive() {
			for core, l1 := range l1s {
				if ef, ok := l1.(coherence.EvictFaulter); ok {
					ef.SetEvictFault(inj.EvictHook(core))
				}
			}
		}
		if inj.ResetActive() {
			// Timestamp-reset storms hit every bounded-timestamp domain:
			// L1 epochs and L2 timestamp sources. Protocols without
			// timestamps simply don't implement the interface.
			for core, l1 := range l1s {
				if rf, ok := l1.(coherence.ResetFaulter); ok {
					rf.SetResetFault(inj.ResetHook(coherence.L1ID(core)))
				}
			}
			for tile, l2 := range l2s {
				if rf, ok := l2.(coherence.ResetFaulter); ok {
					rf.SetResetFault(inj.ResetHook(coherence.L2ID(tile, cfg.Cores)))
				}
			}
		}
		if inj.VictimActive() {
			for tile, l2 := range l2s {
				if af, ok := l2.(coherence.AckDelayFaulter); ok {
					af.SetAckDelayFault(inj.AckDelay(tile))
				}
			}
		}
		inj.SetWindow(cfg.FaultFrom, cfg.FaultUntil)
		if shards == 1 {
			// Decision tracking feeds the shrinker's initial window; the
			// counter is only maintained on serial runs (hooks fire on
			// shard goroutines otherwise).
			inj.TrackDecisions()
		}
	}
	if cfg.Checks {
		ctrls := make([]coherence.Controller, len(l1s))
		for i, l := range l1s {
			ctrls[i] = l
		}
		m.checks = check.New(ctrls, m.Engine.Now)
		if leg := coherence.LegalityByName(proto.Name()); leg != nil {
			for core, l1 := range l1s {
				if tr, ok := l1.(coherence.TransitionReporter); ok {
					tr.SetTransitionSink(m.checks.LegalitySink(core, "L1", &leg.L1))
				}
			}
			for tile, l2 := range l2s {
				if tr, ok := l2.(coherence.TransitionReporter); ok {
					tr.SetTransitionSink(m.checks.LegalitySink(tile, "L2", &leg.L2))
				}
			}
		}
		for tile, l2 := range l2s {
			if ta, ok := l2.(coherence.TxAuditor); ok {
				ta.ArmTxAudit(txAuditAge, m.checks.TxLifeSink(tile))
			}
		}
	}
	return m, nil
}

// txAuditAge is the outstanding-transaction age (cycles) at which the
// continuous TxTable lifecycle audit reports a "txlife" violation. A
// directory transaction normally completes within a message round trip
// (tens of cycles); injected delays and stalls stretch that by at most
// a few hundred. Anything outstanding this long is stuck, not slow.
const txAuditAge = 8192

// portFor builds the core-port decorator chain for one core slot:
// core → oracle checks (outermost, so they observe exactly what the
// core sees) → fault injection → L1. With faults and checks disabled
// the raw L1 is returned and the hot path is untouched.
func (m *Machine) portFor(core int) coherence.CorePort {
	var p coherence.CorePort = m.L1s[core]
	if m.inj != nil && m.inj.PortActive() {
		p = m.inj.WrapPort(core, p)
	}
	if m.checks != nil {
		p = m.checks.WrapPort(core, p)
	}
	return p
}

// CorePort returns the port chain a core in slot `core` is wired with:
// the raw L1 when faults and checks are disabled, decorated otherwise.
// Benchmark/test access — the zero-alloc gate drives the L1 hit path
// through this to prove disabled decorators cost nothing.
func (m *Machine) CorePort(core int) coherence.CorePort { return m.portFor(core) }

// finish registers every component in the deterministic intra-cycle
// order: network delivery, then L2 tiles, then L1s (timers + message
// handling), then frontends. Controllers are registered directly:
// coherence.Controller is a superset of sim.Ticker + sim.WakeHinter +
// sim.WakeSink (Register binds each component's Waker). This order is
// also what makes same-cycle wake-set dispatch exact: within a cycle,
// stimulation only flows forward (mesh deliveries into controllers,
// controller callbacks into frontends), so a woken component's turn is
// always still ahead.
func (m *Machine) finish() {
	if m.SE != nil {
		m.finishSharded()
		m.installObs()
		return
	}
	m.Engine.Register(m.Net)
	for _, t := range m.L2s {
		m.Engine.Register(t)
	}
	for _, l := range m.L1s {
		m.Engine.Register(l)
	}
	for _, c := range m.Fronts {
		m.Engine.Register(c)
	}
	m.Engine.RegisterDoner(&quiesceDoner{cores: m.Fronts, l1s: m.L1s, l2s: m.L2s, net: m.Net})
	m.installObs()
}

// finishSharded distributes the components across the sharded engine's
// shards, tagging each with its canonical index — the position it would
// have held in the serial registration order above (network 0, L2 tile
// t at 1+t, L1 t at 1+N+t, frontend i at 1+2N+i). Each shard receives
// its own mesh delivery domain (canonical 0: netShards never send, so
// the duplicate canonical position never reaches a merge key) followed
// by the controllers and frontends of its tiles, in ascending canonical
// order — making shard-local dispatch order agree with the serial
// engine's intra-cycle order.
func (m *Machine) finishSharded() {
	n := m.Cfg.Cores
	k := m.SE.Shards()
	for s := 0; s < k; s++ {
		m.SE.Register(s, 0, m.Net.ShardTicker(s))
	}
	for t, l2 := range m.L2s {
		m.SE.Register(m.shardOfTile[t], 1+t, l2)
	}
	for t, l1 := range m.L1s {
		m.SE.Register(m.shardOfTile[t], 1+n+t, l1)
	}
	for i, c := range m.Fronts {
		m.SE.Register(m.shardOfTile[m.frontCore[i]], 1+2*n+i, c)
	}
	for s := 0; s < k; s++ {
		d := &shardDoner{net: m.Net, shard: s}
		for t := 0; t < n; t++ {
			if m.shardOfTile[t] != s {
				continue
			}
			d.l1s = append(d.l1s, m.L1s[t])
			d.l2s = append(d.l2s, m.L2s[t])
		}
		for i, c := range m.Fronts {
			if m.shardOfTile[m.frontCore[i]] == s {
				d.fronts = append(d.fronts, c)
			}
		}
		m.SE.RegisterDoner(s, d)
	}
}

// shardDoner is quiesceDoner scoped to one shard: its frontends,
// controllers, and the shard's slice of undelivered mesh traffic
// (queued deliveries plus unmerged outbox entries, so a shard that just
// sent cross-shard work never reports done before the merge lands it).
type shardDoner struct {
	fronts []Frontend
	l1s    []coherence.L1Like
	l2s    []coherence.Controller
	net    *mesh.Network
	shard  int
}

func (q *shardDoner) Done() bool {
	for _, c := range q.fronts {
		if !c.Done() {
			return false
		}
	}
	if q.net.ShardPending(q.shard) > 0 {
		return false
	}
	for _, l := range q.l1s {
		if l.Busy() {
			return false
		}
	}
	for _, l := range q.l2s {
		if l.Busy() {
			return false
		}
	}
	return true
}

// ComponentLabel implements sim.Labeled (forensic reports).
func (q *shardDoner) ComponentLabel() string {
	return fmt.Sprintf("shard %d quiesce check", q.shard)
}

// NewMachine builds a machine for cfg running proto with the workload's
// programs loaded (w may have fewer programs than cores; extras idle).
// When cfg.TraceOut is set, every core streams its retired memory
// operations into the sink.
func NewMachine(cfg config.System, proto Protocol, w *program.Workload) (*Machine, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(w.Programs) > cfg.Cores {
		return nil, fmt.Errorf("system: workload %q needs %d cores, have %d",
			w.Name, len(w.Programs), cfg.Cores)
	}
	m, err := newBase(cfg, proto, w.InitMem)
	if err != nil {
		return nil, err
	}
	m.workload = w.Name
	for i := 0; i < cfg.Cores; i++ {
		var p *program.Program
		if i < len(w.Programs) {
			p = w.Programs[i]
		}
		if p == nil {
			continue
		}
		core := cpu.New(i, p, m.portFor(i), cfg.WriteBuffer)
		core.SetBatched(cfg.BatchedCore)
		core.SetReg(0, int64(i)) // convention: r0 = thread id
		if cfg.TraceOut != nil {
			core.SetTrace(cfg.TraceOut)
		}
		m.Cores = append(m.Cores, core)
		m.Fronts = append(m.Fronts, core)
		m.frontCore = append(m.frontCore, i)
	}
	m.finish()
	return m, nil
}

// NewReplayMachine builds a machine whose frontends replay tr's
// recorded per-core operation streams instead of executing programs.
// Any registered protocol can consume any trace; replaying on the
// recording protocol and geometry reproduces the original run's Result
// bit for bit (the TestTraceReplayBitIdentical gate). The trace's
// initial memory image seeds main memory so value-dependent operations
// (CAS) take their recorded outcomes.
func NewReplayMachine(cfg config.System, proto Protocol, tr *trace.Trace) (*Machine, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if len(tr.Streams) == 0 {
		return nil, fmt.Errorf("system: trace %q has no streams", tr.Meta.Workload)
	}
	if last := tr.Streams[len(tr.Streams)-1].Core; last >= cfg.Cores {
		return nil, fmt.Errorf("system: trace %q needs core %d, have %d",
			tr.Meta.Workload, last, cfg.Cores)
	}
	initMem := make(map[uint64]uint64, len(tr.InitMem))
	for _, w := range tr.InitMem {
		initMem[w.Addr] = w.Val
	}
	m, err := newBase(cfg, proto, initMem)
	if err != nil {
		return nil, err
	}
	m.workload = tr.Meta.Workload
	for _, s := range tr.Streams {
		m.Fronts = append(m.Fronts,
			trace.NewReplayCore(s.Core, s.Ops, m.portFor(s.Core), cfg.WriteBuffer))
		m.frontCore = append(m.frontCore, s.Core)
	}
	m.finish()
	return m, nil
}

// endpoint adapts a coherence.Controller to mesh.Endpoint.
type endpoint struct{ c coherence.Controller }

func (e endpoint) Deliver(now sim.Cycle, m *coherence.Msg) { e.c.Deliver(now, m) }

// engineNow, engineSnapshot and engineRun dispatch to whichever engine
// flavor the machine was built with.
func (m *Machine) engineNow() sim.Cycle {
	if m.SE != nil {
		return m.SE.Now()
	}
	return m.Engine.Now()
}

func (m *Machine) engineSnapshot() []sim.PendingComponent {
	if m.SE != nil {
		return m.SE.Snapshot()
	}
	return m.Engine.Snapshot()
}

func (m *Machine) engineRun() (sim.Cycle, error) {
	if m.SE != nil {
		return m.SE.Run()
	}
	return m.Engine.Run()
}

// forensics assembles the structured dump for a failed run: the engine
// component snapshot plus mesh/pool state and any oracle findings.
func (m *Machine) forensics(reason string, panicValue any, stack []byte) *check.Report {
	gets, live := m.Net.PoolTotals()
	var txd []string
	for _, l2 := range m.L2s {
		if d, ok := l2.(coherence.TxDebugger); ok {
			txd = append(txd, d.TxDebug())
		}
	}
	return &check.Report{
		Reason:      reason,
		Cycle:       m.engineNow(),
		Components:  m.engineSnapshot(),
		MeshPending: m.Net.Pending(),
		PoolGets:    gets,
		PoolLive:    live,
		PanicValue:  panicValue,
		Stack:       string(stack),
		Oracle:      m.oracleErr(),
		TxTables:    txd,
	}
}

// txLive sums live (registered, never retired) directory transactions
// across all tiles; zero after any clean run.
func (m *Machine) txLive() int64 {
	var n int64
	for _, l2 := range m.L2s {
		if tl, ok := l2.(interface{ TxLive() int64 }); ok {
			n += tl.TxLive()
		}
	}
	return n
}

func (m *Machine) oracleErr() error {
	if m.checks == nil {
		return nil
	}
	return m.checks.Err()
}

// runEngine is the harness boundary around Engine.Run: component panics
// (L1/mesh internals) are recovered into the forensic-report format,
// deadlock/cycle-limit errors are annotated with the same dump, and
// oracle violations from an otherwise clean run surface as the error.
func (m *Machine) runEngine() (cycles sim.Cycle, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep := m.forensics("panic", r, debug.Stack())
			err = fmt.Errorf("component panic: %v\n%s", r, rep)
		}
	}()
	cycles, err = m.engineRun()
	if err != nil {
		reason := "cycle limit"
		var dl *sim.DeadlockError
		if errors.As(err, &dl) && dl.Stalled {
			reason = "deadlock"
		}
		return cycles, fmt.Errorf("%w\n%s", err, m.forensics(reason, nil, nil))
	}
	if oerr := m.oracleErr(); oerr != nil {
		return cycles, oerr
	}
	if m.checks != nil {
		// Leak oracles: a clean, quiesced run must have returned every
		// pooled message and retired every directory transaction.
		if _, live := m.Net.PoolTotals(); live != 0 {
			return cycles, fmt.Errorf("check: %d pooled message(s) leaked after clean run\n%s",
				live, m.forensics("leak", nil, nil))
		}
		if tl := m.txLive(); tl != 0 {
			return cycles, fmt.Errorf("check: %d directory transaction(s) leaked after clean run\n%s",
				tl, m.forensics("leak", nil, nil))
		}
	}
	return cycles, nil
}

// Execute runs the wired machine's engine through the same harness
// boundary Run uses (forensics on failure, oracle and leak checks on
// completion) and returns the cycle count. It exists for harnesses —
// the violation shrinker — that build a Machine themselves and then
// need to inspect its oracle tracker or fault injector afterwards.
func (m *Machine) Execute() (sim.Cycle, error) { return m.runEngine() }

// Collect assembles the Result for a finished run (Execute callers).
func (m *Machine) Collect(cycles sim.Cycle) *Result { return m.collect(cycles) }

// Injector exposes the fault injector (nil when cfg.FaultProfile is
// empty), so harnesses can read its decision-counter high-water mark.
func (m *Machine) Injector() *faults.Injector { return m.inj }

// Run executes a workload on proto under cfg and returns the collected
// result. The workload's Check (if any) is evaluated on final memory;
// its outcome lands in Result.CheckErr, not the returned error, so
// harnesses can distinguish simulator failures from functional failures.
func Run(cfg config.System, proto Protocol, w *program.Workload) (*Result, error) {
	m, err := NewMachine(cfg, proto, w)
	if err != nil {
		return nil, err
	}
	cycles, err := m.runEngine()
	if err != nil {
		return nil, fmt.Errorf("system: %s on %s: %w", proto.Name(), w.Name, err)
	}
	r := m.collect(cycles)
	if w.Check != nil {
		r.CheckErr = w.Check(m.Reader())
	}
	return r, nil
}

// RunRecorded is Run with memory-trace capture: it wires a trace
// recorder into every core, executes the workload, and returns both the
// (unperturbed) result and the captured trace. The trace embeds cfg's
// geometry, the protocol name and the workload's initial memory image,
// so it is self-contained for later replay.
func RunRecorded(cfg config.System, proto Protocol, w *program.Workload, seed uint64) (*Result, *trace.Trace, error) {
	rec := trace.NewRecorder(cfg, proto.Name(), w.Name, seed)
	cfg.TraceOut = rec
	res, err := Run(cfg, proto, w)
	if err != nil {
		return nil, nil, err
	}
	rec.SetInitMem(w.InitMem)
	tr, err := rec.Trace()
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

// Replay executes a trace on proto under cfg and returns the collected
// result (Workload carries the recorded name; there is no functional
// check to evaluate).
func Replay(cfg config.System, proto Protocol, tr *trace.Trace) (*Result, error) {
	m, err := NewReplayMachine(cfg, proto, tr)
	if err != nil {
		return nil, err
	}
	cycles, err := m.runEngine()
	if err != nil {
		return nil, fmt.Errorf("system: %s replaying %s: %w", proto.Name(), tr.Meta.Workload, err)
	}
	return m.collect(cycles), nil
}

func (m *Machine) collect(cycles sim.Cycle) *Result {
	msgs, flits, hops, ctrl, data := m.Net.Totals()
	gets, live := m.Net.PoolTotals()
	r := &Result{
		Protocol:  m.proto.Name(),
		Workload:  m.workload,
		Cycles:    cycles,
		Msgs:      msgs,
		Flits:     flits,
		FlitHops:  hops,
		CtrlFlits: ctrl,
		DataFlits: data,
		PoolGets:  gets,
		PoolLive:  live,
		TxLive:    m.txLive(),
		Mem:       m.Mem,
	}
	for _, l := range m.L1s {
		r.L1.Merge(l.L1Stats())
	}
	for _, l2 := range m.L2s {
		if ts, ok := l2.(interface {
			TileStats() (int64, int64, int64, int64)
		}); ok {
			sro, decay, bc, rs := ts.TileStats()
			r.SROTransitions += sro
			r.DecayEvents += decay
			r.SROInvBcasts += bc
			r.L2TSResets += rs
		}
	}
	for _, c := range m.Fronts {
		loads, stores, rmws, fences, instrs := c.Counts()
		r.Loads += loads
		r.Stores += stores
		r.RMWs += rmws
		r.Fences += fences
		r.Instructions += instrs
	}
	return r
}

// Reader returns a MemReader observing the freshest value of every word:
// exclusive L1 copies first, then the home L2 tile, then memory.
func (m *Machine) Reader() program.MemReader {
	return hierReader{m}
}

type hierReader struct{ m *Machine }

// ownerSnooper is implemented by directory tiles that can name the L1
// holding a block exclusively. It lets the reader consult the single
// cache that can hold a fresher copy instead of scanning every L1 per
// word read.
type ownerSnooper interface {
	SnoopOwner(addr uint64) (coherence.NodeID, bool)
}

func (r hierReader) ReadWord(addr uint64) uint64 {
	// Resolve the home tile once; on a quiesced machine its directory
	// state is exact (exclusive L2 lines are inclusive of their L1 copy),
	// so only the recorded owner can hold the block dirty.
	tile := int(addr>>coherence.BlockShift) % r.m.Cfg.Cores
	home := r.m.L2s[tile]
	if os, ok := home.(ownerSnooper); ok {
		if owner, held := os.SnoopOwner(addr); held {
			if blk, ok := r.m.L1s[int(owner)].SnoopBlock(addr); ok {
				return memsys.GetWord(blk, addr)
			}
		}
	} else {
		// Unknown directory flavor: fall back to scanning every L1.
		for _, l1 := range r.m.L1s {
			if blk, ok := l1.SnoopBlock(addr); ok {
				return memsys.GetWord(blk, addr)
			}
		}
	}
	if blk, ok := home.SnoopBlock(addr); ok {
		return memsys.GetWord(blk, addr)
	}
	return r.m.Mem.ReadWord(addr)
}

// Summary renders a one-run overview for the CLI tools.
func (r *Result) Summary() string {
	t := stats.NewTable(fmt.Sprintf("%s / %s", r.Workload, r.Protocol), "value")
	t.AddRow("cycles", fmt.Sprintf("%d", r.Cycles))
	t.AddRow("instructions", fmt.Sprintf("%d", r.Instructions))
	t.AddRow("loads", fmt.Sprintf("%d", r.Loads))
	t.AddRow("stores", fmt.Sprintf("%d", r.Stores))
	t.AddRow("rmws", fmt.Sprintf("%d", r.RMWs))
	t.AddRow("L1 accesses", fmt.Sprintf("%d", r.L1.Accesses()))
	t.AddRow("L1 misses", fmt.Sprintf("%d", r.L1.Misses()))
	t.AddRow("self-invalidations", fmt.Sprintf("%d", r.L1.SelfInvTotal()))
	t.AddRow("network msgs", fmt.Sprintf("%d", r.Msgs))
	t.AddRow("network flits", fmt.Sprintf("%d", r.Flits))
	t.AddRow("flit-hops", fmt.Sprintf("%d", r.FlitHops))
	t.AddRow("mean RMW latency", fmt.Sprintf("%.1f", r.L1.MeanRMWLatency()))
	return t.String()
}
