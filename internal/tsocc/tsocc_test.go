// Protocol-mechanism tests: each test builds a tiny system and drives a
// workload crafted to exercise one TSO-CC mechanism (bounded Shared
// staleness, acquire detection, SharedRO decay and broadcast
// invalidation, timestamp resets), then asserts on the protocol's
// statistics counters and functional outcome.
package tsocc_test

import (
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/program"
	"repro/internal/system"
	"repro/internal/tsocc"
)

func run(t *testing.T, cfg config.System, tc config.TSOCC, w *program.Workload) *system.Result {
	t.Helper()
	res, err := system.Run(cfg, tsocc.New(tc), w)
	if err != nil {
		t.Fatalf("%s on %s: %v", tc.Name(), w.Name, err)
	}
	if res.CheckErr != nil {
		t.Fatalf("%s on %s: %v", tc.Name(), w.Name, res.CheckErr)
	}
	// The TxTable/controller ownership discipline must return every
	// pooled message once the run quiesces.
	if res.PoolLive != 0 {
		t.Fatalf("%s on %s: MsgPool leak: %d of %d messages not returned",
			tc.Name(), w.Name, res.PoolLive, res.PoolGets)
	}
	// Likewise every registered directory transaction must have retired.
	if res.TxLive != 0 {
		t.Fatalf("%s on %s: TxTable leak: %d transaction(s) never retired",
			tc.Name(), w.Name, res.TxLive)
	}
	return res
}

// TestBoundedSharedStaleness: a reader polling a flag must re-request
// from L2 after at most 2^MaxAccBits local hits, so the writer's update
// becomes visible within a bounded number of reads (write propagation).
func TestBoundedSharedStaleness(t *testing.T) {
	const flag = 0x1000
	// The writer first writes 1 (making the line dirty so readers get a
	// Shared — not Exclusive or SharedRO — copy), then 2 much later.
	writer := program.NewBuilder("writer")
	writer.Li(1, flag).Li(2, 1)
	writer.St(1, 0, 2)
	writer.Nop(600) // let the reader settle into polling hits on "1"
	writer.Li(2, 2)
	writer.St(1, 0, 2)
	writer.Halt()

	reader := program.NewBuilder("reader")
	reader.Li(1, flag).Li(2, 2)
	reader.SpinUntilEq(3, 1, 0, 2)
	reader.Halt()

	w := &program.Workload{Name: "staleness",
		Programs: []*program.Program{writer.MustBuild(), reader.MustBuild()}}

	res := run(t, config.Small(2), config.C12x3(), w)
	// The spin must have produced Shared hits (staleness tolerated)...
	if res.L1.ReadHitShared.Value() == 0 {
		t.Fatal("no Shared hits: the access counter is not allowing local polling")
	}
	// ...and Shared re-requests (the access budget forcing misses).
	if res.L1.ReadMissShared.Value() == 0 {
		t.Fatal("no Shared-state misses: the access budget never expired")
	}
}

// TestAccessCounterBudget compares hit/miss ratios across Bmaxacc
// settings: a bigger budget must produce more hits per re-request.
func TestAccessCounterBudget(t *testing.T) {
	mk := func(bits int) config.TSOCC {
		c := config.C12x3()
		c.MaxAccBits = bits
		return c
	}
	ratio := func(bits int) float64 {
		const flag = 0x1000
		writer := program.NewBuilder("writer")
		writer.Li(1, flag).Li(2, 1)
		writer.St(1, 0, 2)
		writer.Nop(2000)
		writer.Li(2, 2)
		writer.St(1, 0, 2)
		writer.Halt()
		reader := program.NewBuilder("reader")
		reader.Li(1, flag).Li(2, 2)
		reader.SpinUntilEq(3, 1, 0, 2)
		reader.Halt()
		w := &program.Workload{Name: fmt.Sprintf("budget%d", bits),
			Programs: []*program.Program{writer.MustBuild(), reader.MustBuild()}}
		res := run(t, config.Small(2), mk(bits), w)
		return float64(res.L1.ReadHitShared.Value()) / float64(1+res.L1.ReadMissShared.Value())
	}
	small, large := ratio(1), ratio(5)
	if large <= small {
		t.Fatalf("hit/re-request ratio: bits=1 %.1f, bits=5 %.1f — budget has no effect", small, large)
	}
}

// TestAcquireTriggersSelfInvalidation: Figure 1's pattern must record a
// potential acquire and drop the stale Shared copy of data.
func TestAcquireTriggersSelfInvalidation(t *testing.T) {
	const data, flag = 0x1000, 0x2000
	a := program.NewBuilder("A")
	a.Li(1, data).Li(2, flag).Li(3, 1)
	a.Nop(200)
	a.St(1, 0, 3)
	a.St(2, 0, 3)
	a.Halt()

	b := program.NewBuilder("B")
	b.Li(1, data).Li(2, flag).Li(3, 1)
	b.Ld(4, 1, 0) // warm a stale copy of data
	b.SpinUntilEq(4, 2, 0, 3)
	b.Ld(5, 1, 0)
	b.Li(6, 0x3000)
	b.St(6, 0, 5)
	b.Fence()
	b.Halt()

	w := &program.Workload{Name: "figure1",
		Programs: []*program.Program{a.MustBuild(), b.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(0x3000); got != 1 {
				return fmt.Errorf("b2 observed %d, want 1", got)
			}
			return nil
		}}

	res := run(t, config.Small(2), config.C12x3(), w)
	if res.L1.SelfInvTotal() == 0 {
		t.Fatal("no self-invalidations recorded for an acquire-dependent pattern")
	}
	if res.L1.SelfInvLines.Value() == 0 {
		t.Fatal("self-invalidation sweeps never dropped a Shared line")
	}
}

// TestTransitiveReductionSkipsInvalidations: repeated reads of the same
// unmodified line from the same writer must not keep self-invalidating
// once the writer's timestamp has been seen (with write-group size 1,
// where the > rule applies).
func TestTransitiveReductionSkipsInvalidations(t *testing.T) {
	const data = 0x1000
	writer := program.NewBuilder("writer")
	writer.Li(1, data).Li(2, 7)
	writer.St(1, 0, 2)
	writer.Fence()
	writer.Halt()

	// Reader: many polling rounds on the same (written once) word.
	reader := program.NewBuilder("reader")
	reader.Li(1, data).Li(2, 7)
	reader.SpinUntilEq(3, 1, 0, 2) // until the write is visible
	reader.Li(4, 0)
	reader.Li(5, 600) // plenty of re-requests after exhaustion
	reader.Label("more")
	reader.Ld(3, 1, 0)
	reader.Addi(4, 4, 1)
	reader.Blt(4, 5, "more")
	reader.Halt()

	w := &program.Workload{Name: "tr",
		Programs: []*program.Program{writer.MustBuild(), reader.MustBuild()}}

	basic := run(t, config.Small(2), config.Basic(), w)
	ts := run(t, config.Small(2), config.C12x0(), w) // write-group 1

	if ts.L1.SelfInvTotal() >= basic.L1.SelfInvTotal() {
		t.Fatalf("transitive reduction did not reduce self-invalidations: basic=%d ts=%d",
			basic.L1.SelfInvTotal(), ts.L1.SelfInvTotal())
	}
	// The timestamped run must skip at least some re-requests without
	// invalidating (same ts <= last-seen).
	acq := ts.L1.SelfInvEvents[coherence.CauseAcquireNonSRO].Value() +
		ts.L1.SelfInvEvents[coherence.CauseInvalidTS].Value()
	if acq >= ts.L1.ReadMissShared.Value() {
		t.Fatalf("every Shared re-request still self-invalidated (%d of %d)",
			acq, ts.L1.ReadMissShared.Value())
	}
}

// TestFenceCauseCounted: explicit fences must self-invalidate with the
// fence cause (Figure 9's fourth category).
func TestFenceCauseCounted(t *testing.T) {
	b := program.NewBuilder("fencer")
	b.Li(1, 0x1000).Li(2, 1)
	b.Fence()
	b.Fence()
	b.Halt()
	w := &program.Workload{Name: "fences", Programs: []*program.Program{b.MustBuild()}}
	res := run(t, config.Small(2), config.C12x3(), w)
	if got := res.L1.SelfInvEvents[coherence.CauseFence].Value(); got != 2 {
		t.Fatalf("fence self-invalidations = %d, want 2", got)
	}
}

// TestSharedROHitsUnbounded: read-only data must settle into SharedRO
// and then hit locally without any access budget.
func TestSharedROHitsUnbounded(t *testing.T) {
	const table = 0x4000
	progs := make([]*program.Program, 2)
	for i := range progs {
		b := program.NewBuilder(fmt.Sprintf("reader%d", i))
		b.Li(1, table)
		b.Li(2, 0)
		b.Li(3, 400)
		b.Label("loop")
		b.Ld(4, 1, 0)
		b.Ld(4, 1, 8)
		b.Addi(2, 2, 1)
		b.Blt(2, 3, "loop")
		b.Halt()
		progs[i] = b.MustBuild()
	}
	w := &program.Workload{Name: "rodata", Programs: progs,
		InitMem: map[uint64]uint64{table: 11, table + 8: 22}}

	res := run(t, config.Small(2), config.C12x3(), w)
	if res.L1.ReadHitSRO.Value() == 0 {
		t.Fatal("read-only data never reached SharedRO hits")
	}
	// SRO hits should dominate Shared re-requests by a wide margin.
	if res.L1.ReadHitSRO.Value() < 10*res.L1.ReadMissShared.Value() {
		t.Fatalf("SRO hits %d vs Shared re-requests %d: SharedRO not effective",
			res.L1.ReadHitSRO.Value(), res.L1.ReadMissShared.Value())
	}
}

// TestWriteToSharedROBroadcasts: writing a SharedRO line must invalidate
// the read-only copies (eager coherence for SRO) so readers never see a
// stale value indefinitely — and the write itself must complete.
func TestWriteToSharedROBroadcasts(t *testing.T) {
	const table = 0x4000
	// Two readers establish SharedRO; then one thread writes it; the
	// readers re-read and must observe the new value promptly.
	reader := func(id int) *program.Program {
		b := program.NewBuilder(fmt.Sprintf("r%d", id))
		b.Li(1, table)
		b.Li(2, 0)
		b.Li(3, 200)
		b.Label("warm")
		b.Ld(4, 1, 0)
		b.Addi(2, 2, 1)
		b.Blt(2, 3, "warm")
		// Now poll until the writer's value (99) appears.
		b.Li(5, 99)
		b.SpinUntilEq(4, 1, 0, 5)
		b.Halt()
		return b.MustBuild()
	}
	wr := program.NewBuilder("w")
	wr.Li(1, table).Li(2, 99)
	wr.Nop(3000) // give readers time to decay the line to SharedRO
	wr.St(1, 0, 2)
	wr.Halt()

	w := &program.Workload{Name: "sro-write",
		Programs: []*program.Program{reader(0), reader(1), wr.MustBuild()},
		InitMem:  map[uint64]uint64{table: 5}}

	res := run(t, config.Small(4), config.C12x3(), w)
	if res.L1.WriteMissSRO.Value() == 0 && res.L1.InvalidationsReceived.Value() == 0 {
		t.Log("line may not have decayed to SharedRO before the write; acceptable but weak")
	}
	// Functional completion of the spin proves visibility either way.
}

// TestTimestampResetEpochs: with tiny timestamps the system must issue
// resets, and remain functionally correct across many epochs.
func TestTimestampResetEpochs(t *testing.T) {
	tc := config.TSOCC{MaxAccBits: 3, TimestampBits: 4, WriteGroupBits: 0,
		SharedRO: true, EpochBits: 2, DecayWrites: 8}
	const counter = 0x1000
	progs := make([]*program.Program, 4)
	for i := range progs {
		b := program.NewBuilder(fmt.Sprintf("t%d", i))
		b.Li(1, counter)
		b.Li(2, 1)
		b.Li(3, 0)
		b.Li(4, 120)
		b.Label("loop")
		b.RmwAdd(5, 1, 0, 2)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Halt()
		progs[i] = b.MustBuild()
	}
	w := &program.Workload{Name: "epochs", Programs: progs,
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(counter); got != 480 {
				return fmt.Errorf("counter = %d, want 480", got)
			}
			return nil
		}}
	res := run(t, config.Small(4), tc, w)
	if res.L1.TimestampResets.Value() < 4 {
		t.Fatalf("timestamp resets = %d, want several with 4-bit timestamps",
			res.L1.TimestampResets.Value())
	}
}

// TestCCSharedToL2NeverCachesShared: in the degenerate configuration,
// Shared reads must never hit locally.
func TestCCSharedToL2NeverCachesShared(t *testing.T) {
	const flag = 0x1000
	writer := program.NewBuilder("writer")
	writer.Li(1, flag).Li(2, 1)
	writer.Nop(400)
	writer.St(1, 0, 2)
	writer.Halt()
	reader := program.NewBuilder("reader")
	reader.Li(1, flag).Li(2, 1)
	reader.SpinUntilEq(3, 1, 0, 2)
	reader.Halt()
	w := &program.Workload{Name: "ccl2",
		Programs: []*program.Program{writer.MustBuild(), reader.MustBuild()}}
	res := run(t, config.Small(2), config.CCSharedToL2(), w)
	if res.L1.ReadHitShared.Value() != 0 {
		t.Fatalf("CC-shared-to-L2 recorded %d Shared hits, want 0",
			res.L1.ReadHitShared.Value())
	}
	if res.L1.ReadMissShared.Value() == 0 && res.L1.ReadMissInvalid.Value() == 0 {
		t.Fatal("reader never missed — impossible while polling")
	}
}

// TestDataResponsesCounted: Figure 7's denominator must track fills.
func TestDataResponsesCounted(t *testing.T) {
	b := program.NewBuilder("toucher")
	b.Li(1, 0x8000)
	b.Li(2, 0)
	b.Li(3, 20)
	b.Label("loop")
	b.Shl(4, 2, 6)
	b.Add(4, 4, 1)
	b.Ld(5, 4, 0)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Halt()
	w := &program.Workload{Name: "fills", Programs: []*program.Program{b.MustBuild()}}
	res := run(t, config.Small(2), config.C12x3(), w)
	if res.L1.DataResponses.Value() < 20 {
		t.Fatalf("data responses = %d, want >= 20", res.L1.DataResponses.Value())
	}
}

// TestLazyWriteNoInvalidationFanout: a write to a line with (untracked)
// sharers must not send invalidations under TSO-CC.
func TestLazyWriteNoInvalidationFanout(t *testing.T) {
	const line = 0x5000
	// The writer dirties the line first so the readers' copies are
	// Shared (a clean first owner would put the line in SharedRO, whose
	// writes legitimately broadcast invalidations).
	reader := func(id int) *program.Program {
		b := program.NewBuilder(fmt.Sprintf("r%d", id))
		b.Nop(100)
		b.Li(1, line)
		b.Ld(2, 1, 0) // become an (untracked) sharer
		b.Nop(500)
		b.Halt()
		return b.MustBuild()
	}
	wr := program.NewBuilder("w")
	wr.Li(1, line).Li(2, 1)
	wr.St(1, 0, 2)
	wr.Nop(400) // after the readers cached it
	wr.Li(2, 2)
	wr.St(1, 0, 2)
	wr.Halt()
	w := &program.Workload{Name: "lazy-write",
		Programs: []*program.Program{reader(0), reader(1), reader(2), wr.MustBuild()}}
	res := run(t, config.Small(4), config.C12x3(), w)
	if res.L1.InvalidationsReceived.Value() != 0 {
		t.Fatalf("lazy protocol sent %d invalidations for a Shared write",
			res.L1.InvalidationsReceived.Value())
	}
}

// TestBoundedTimestampTable: limiting ts_L1 entries must stay correct
// (conservative extra self-invalidations at worst).
func TestBoundedTimestampTable(t *testing.T) {
	tc := config.C12x0()
	tc.TSTableEntries = 1 // pathologically small
	const counter = 0x1000
	progs := make([]*program.Program, 4)
	for i := range progs {
		b := program.NewBuilder(fmt.Sprintf("t%d", i))
		b.Li(1, counter)
		b.Li(2, 1)
		b.Li(3, 0)
		b.Li(4, 40)
		b.Label("loop")
		b.RmwAdd(5, 1, 0, 2)
		b.Ld(5, 1, 64) // read a neighbour line others write
		b.St(1, 128+int64(i)*8, 3)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Halt()
		progs[i] = b.MustBuild()
	}
	w := &program.Workload{Name: "tiny-table", Programs: progs,
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(counter); got != 160 {
				return fmt.Errorf("counter = %d, want 160", got)
			}
			return nil
		}}
	full := run(t, config.Small(4), config.C12x0(), w)
	tiny := run(t, config.Small(4), tc, w)
	if tiny.L1.SelfInvTotal() < full.L1.SelfInvTotal() {
		t.Fatalf("bounded table self-invs %d < unbounded %d — eviction lost conservatism",
			tiny.L1.SelfInvTotal(), full.L1.SelfInvTotal())
	}
}

// TestSharedDecaysToSharedRO: a written-once line whose writer keeps
// writing other lines at the same tile must decay Shared→SharedRO
// (§3.4), after which readers hit without an access budget.
func TestSharedDecaysToSharedRO(t *testing.T) {
	tc := config.C12x0()
	tc.DecayWrites = 8
	const threads = 4
	target := int64(0x100000)
	stride := int64(threads) * 64
	wr := program.NewBuilder("writer")
	wr.Li(1, target).Li(2, 1)
	wr.St(1, 0, 2)
	wr.Li(3, 0)
	wr.Li(4, 300)
	wr.Label("churn")
	wr.Mod(5, 3, 64)
	wr.Addi(5, 5, 1)
	wr.Li(6, stride)
	wr.Mul(5, 5, 6)
	wr.Add(5, 5, 1)
	wr.St(5, 0, 2)
	wr.Addi(3, 3, 1)
	wr.Blt(3, 4, "churn")
	wr.Halt()
	progs := []*program.Program{wr.MustBuild()}
	for i := 1; i < threads; i++ {
		rd := program.NewBuilder("reader")
		rd.Li(1, target)
		rd.Li(3, 0)
		rd.Li(4, 400)
		rd.Label("loop")
		rd.Ld(2, 1, 0)
		rd.Addi(3, 3, 1)
		rd.Blt(3, 4, "loop")
		rd.Halt()
		progs = append(progs, rd.MustBuild())
	}
	w := &program.Workload{Name: "decay", Programs: progs}
	res := run(t, config.Small(threads), tc, w)
	if res.DecayEvents == 0 {
		t.Fatal("no Shared->SharedRO decay events")
	}
	if res.L1.ReadHitSRO.Value() == 0 {
		t.Fatal("decay produced no SharedRO hits")
	}
	// Control: an enormous threshold must never decay.
	tc.DecayWrites = 1 << 20
	res2 := run(t, config.Small(threads), tc, w)
	if res2.DecayEvents != 0 {
		t.Fatalf("decay fired %d times despite a 2^20 threshold", res2.DecayEvents)
	}
}

// TestSROInvBcastCounted: a write to a decayed SharedRO line must run a
// broadcast invalidation round (counted at the tile).
func TestSROInvBcastCounted(t *testing.T) {
	tc := config.C12x0()
	tc.DecayWrites = 8
	const threads = 4
	target := int64(0x100000)
	stride := int64(threads) * 64
	wr := program.NewBuilder("writer")
	wr.Li(1, target).Li(2, 1)
	wr.St(1, 0, 2)
	wr.Li(3, 0)
	wr.Li(4, 200)
	wr.Label("churn")
	wr.Mod(5, 3, 64)
	wr.Addi(5, 5, 1)
	wr.Li(6, stride)
	wr.Mul(5, 5, 6)
	wr.Add(5, 5, 1)
	wr.St(5, 0, 2)
	wr.Addi(3, 3, 1)
	wr.Blt(3, 4, "churn")
	// Late write to the (by now SharedRO) target.
	wr.Li(2, 2)
	wr.St(1, 0, 2)
	wr.Fence()
	wr.Halt()
	progs := []*program.Program{wr.MustBuild()}
	for i := 1; i < threads; i++ {
		rd := program.NewBuilder("reader")
		rd.Li(1, target)
		rd.Li(3, 0)
		rd.Li(4, 500)
		rd.Label("loop")
		rd.Ld(2, 1, 0)
		rd.Addi(3, 3, 1)
		rd.Blt(3, 4, "loop")
		// The readers must eventually observe the late write.
		rd.Li(5, 2)
		rd.SpinUntilEq(2, 1, 0, 5)
		rd.Halt()
		progs = append(progs, rd.MustBuild())
	}
	w := &program.Workload{Name: "sro-bcast", Programs: progs}
	res := run(t, config.Small(threads), tc, w)
	if res.DecayEvents == 0 {
		t.Skip("line did not decay before the late write in this timing; covered by decay test")
	}
	if res.SROInvBcasts == 0 {
		t.Fatal("write to a SharedRO line did not run a broadcast round")
	}
}
