// Package tsocc implements the paper's contribution: TSO-CC, a lazy,
// consistency-directed coherence protocol for Total Store Order. It
// tracks no sharers for Shared data. Writes propagate to the shared L2
// in program order; reads of Shared lines hit locally only a bounded
// number of times (write propagation); potential acquires — detected
// with per-line timestamps against per-core last-seen tables (transitive
// reduction) — self-invalidate all Shared lines (r→r ordering). A
// SharedRO state excludes read-only data from self-invalidation, and a
// timestamp-reset/epoch-id scheme keeps timestamps finite (§3.2–§3.6).
package tsocc

import "repro/internal/coherence"

// Timestamp value conventions. 0 marks "never written / unknown". The
// smallest valid timestamp (1) is reserved as the value the L2 reports
// for lines whose timestamp predates the writer's last reset; receivers
// treat it as forcing self-invalidation, so fresh sources start above it
// (§3.5: "the next timestamp assigned after a reset must always be
// larger than the smallest valid timestamp").
const (
	tsInvalid  uint32 = 0
	tsSmallest uint32 = 1
	tsFirst    uint32 = 2
)

// lastSeen is a timestamp table: last-seen timestamp per source node
// (ts_L1 / ts_L2 in the paper's Table 1). The paper notes the table may
// hold fewer entries than there are cores, at the cost of an eviction
// policy (§3.3); a capacity of 0 means unbounded. Losing an entry is
// always safe — the reader treats the source as never-seen and
// self-invalidates conservatively.
//
// The unbounded table is slice-backed, indexed by source id: the common
// configurations hold one entry per possible source, and the get/update
// pair sits on the data-response path (every remote response consults
// it), where the map's hashing dominated. tsInvalid (0) marks an absent
// entry — stored timestamps are always > tsSmallest (callers filter
// invalid/smallest before updating). Bounded tables are a fixed-size
// array of (src, ts) pairs — capacities are a handful of entries
// (that's the point of §3.3), so a linear scan beats hashing, and the
// update scan finds the eviction victim in the same pass.
type lastSeen struct {
	s   []uint32  // unbounded: timestamp per source, 0 = absent
	e   []lsEntry // bounded (cap > 0): fixed-size, linearly scanned
	cap int
}

// lsEntry is one bounded-table slot; src -1 marks an empty slot.
type lsEntry struct {
	src int32
	ts  uint32
}

// newLastSeen builds a table: capacity 0 is unbounded (one slot per
// possible source id in [0, sources)), otherwise a fixed-size array
// with the §3.3 smallest-timestamp eviction policy.
func newLastSeen(capacity, sources int) lastSeen {
	if capacity <= 0 {
		return lastSeen{s: make([]uint32, sources)}
	}
	e := make([]lsEntry, capacity)
	for i := range e {
		e[i].src = -1
	}
	return lastSeen{e: e, cap: capacity}
}

func (t lastSeen) get(src int) (uint32, bool) {
	if t.cap <= 0 {
		v := t.s[src]
		return v, v != tsInvalid
	}
	for i := range t.e {
		if t.e[i].src == int32(src) {
			return t.e[i].ts, true
		}
	}
	return 0, false
}

// update records ts for src (monotonic: stale timestamps are ignored).
// On a bounded table a single pass both looks the source up and tracks
// the insertion slot: the first empty slot if one exists, otherwise the
// eviction victim — the entry with the smallest timestamp, ties broken
// by the lowest source id, matching the order the map-backed version
// produced. Smallest-timestamp entries are the ones whose loss costs
// the fewest skipped self-invalidations.
func (t lastSeen) update(src int, ts uint32) {
	if t.cap <= 0 {
		if ts > t.s[src] {
			t.s[src] = ts
		}
		return
	}
	empty, victim := -1, -1
	for i := range t.e {
		e := &t.e[i]
		if e.src == int32(src) {
			if ts > e.ts {
				e.ts = ts
			}
			return
		}
		if e.src < 0 {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if victim < 0 || e.ts < t.e[victim].ts ||
			(e.ts == t.e[victim].ts && e.src < t.e[victim].src) {
			victim = i
		}
	}
	slot := empty
	if slot < 0 {
		slot = victim
	}
	t.e[slot] = lsEntry{src: int32(src), ts: ts}
}

func (t lastSeen) drop(src int) {
	if t.cap <= 0 {
		t.s[src] = tsInvalid
		return
	}
	for i := range t.e {
		if t.e[i].src == int32(src) {
			t.e[i] = lsEntry{src: -1}
			return
		}
	}
}

func (t lastSeen) len() int {
	if t.cap <= 0 {
		n := 0
		for _, v := range t.s {
			if v != tsInvalid {
				n++
			}
		}
		return n
	}
	n := 0
	for i := range t.e {
		if t.e[i].src >= 0 {
			n++
		}
	}
	return n
}

// coarseGroups returns the number of coarse-vector groups used when the
// L2's owner field is reused as a sharing vector for SharedRO lines
// (§3.4): log2(cores) bits, each covering a contiguous group of cores.
func coarseGroups(cores int) int {
	g := 0
	for v := cores - 1; v > 0; v >>= 1 {
		g++
	}
	if g == 0 {
		g = 1
	}
	return g
}

// coarseBit returns the group bit covering the given core.
func coarseBit(core coherence.NodeID, cores int) uint64 {
	g := coarseGroups(cores)
	return 1 << uint(int(core)*g/cores)
}

// appendCoarseMembers appends the cores covered by the set bits of vec
// to dst — the single implementation of the coarse-group mapping.
func appendCoarseMembers(dst []int, vec uint64, cores int) []int {
	g := coarseGroups(cores)
	for c := 0; c < cores; c++ {
		if vec&(1<<uint(c*g/cores)) != 0 {
			dst = append(dst, c)
		}
	}
	return dst
}

// coarseMembers lists the cores covered by the set bits of vec.
func coarseMembers(vec uint64, cores int) []int {
	return appendCoarseMembers(nil, vec, cores)
}
