package tsocc

import (
	"testing"

	"repro/internal/coherence"
)

// TestLastSeenEviction checks the bounded table's smallest-timestamp
// eviction policy.
func TestLastSeenEviction(t *testing.T) {
	tbl := newLastSeen(2, 8)
	tbl.update(1, 10)
	tbl.update(2, 20)
	tbl.update(3, 30) // evicts src 1 (smallest ts)
	if _, ok := tbl.get(1); ok {
		t.Fatal("smallest-ts entry not evicted")
	}
	if v, ok := tbl.get(2); !ok || v != 20 {
		t.Fatal("entry 2 lost")
	}
	if v, ok := tbl.get(3); !ok || v != 30 {
		t.Fatal("entry 3 missing")
	}
	if tbl.len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.len())
	}
	// Updating an existing entry never evicts.
	tbl.update(2, 25)
	if tbl.len() != 2 {
		t.Fatal("in-place update changed occupancy")
	}
	// Monotonicity: stale updates are ignored.
	tbl.update(2, 5)
	if v, _ := tbl.get(2); v != 25 {
		t.Fatalf("stale update regressed entry to %d", v)
	}
}

// TestLastSeenUnbounded checks the slice-backed unbounded table keeps
// the map-backed semantics: never-seen sources miss, updates are
// monotonic, drops forget.
func TestLastSeenUnbounded(t *testing.T) {
	tbl := newLastSeen(0, 4)
	if _, ok := tbl.get(3); ok {
		t.Fatal("never-seen source reported present")
	}
	tbl.update(3, 10)
	if v, ok := tbl.get(3); !ok || v != 10 {
		t.Fatalf("get(3) = %d,%v after update", v, ok)
	}
	tbl.update(3, 5) // stale: ignored
	if v, _ := tbl.get(3); v != 10 {
		t.Fatalf("stale update regressed entry to %d", v)
	}
	tbl.update(3, 12)
	if v, _ := tbl.get(3); v != 12 {
		t.Fatalf("monotonic update lost: %d", v)
	}
	if tbl.len() != 1 {
		t.Fatalf("len = %d, want 1", tbl.len())
	}
	tbl.drop(3)
	if _, ok := tbl.get(3); ok {
		t.Fatal("dropped source still present")
	}
	if tbl.len() != 0 {
		t.Fatalf("len = %d after drop, want 0", tbl.len())
	}
}

// TestCoarseVectorCoversAllCores: every core must be covered by the
// group bit the coarse vector assigns it.
func TestCoarseVectorCoversAllCores(t *testing.T) {
	for _, cores := range []int{2, 4, 8, 16, 32} {
		for c := 0; c < cores; c++ {
			vec := coarseBit(coherence.NodeID(c), cores)
			members := coarseMembers(vec, cores)
			found := false
			for _, m := range members {
				if m == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("cores=%d: core %d not covered by its own group bit", cores, c)
			}
		}
		// All groups together must cover every core exactly once set-wise.
		full := uint64(0)
		for c := 0; c < cores; c++ {
			full |= coarseBit(coherence.NodeID(c), cores)
		}
		if got := len(coarseMembers(full, cores)); got != cores {
			t.Fatalf("cores=%d: full vector covers %d cores", cores, got)
		}
	}
}
