package tsocc

import (
	"testing"

	"repro/internal/coherence"
)

// TestLastSeenEviction checks the table's smallest-timestamp policy.
func TestLastSeenEviction(t *testing.T) {
	tbl := newLastSeen(2)
	tbl.update(1, 10)
	tbl.update(2, 20)
	tbl.update(3, 30) // evicts src 1 (smallest ts)
	if _, ok := tbl.get(1); ok {
		t.Fatal("smallest-ts entry not evicted")
	}
	if v, ok := tbl.get(2); !ok || v != 20 {
		t.Fatal("entry 2 lost")
	}
	if v, ok := tbl.get(3); !ok || v != 30 {
		t.Fatal("entry 3 missing")
	}
	if tbl.len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.len())
	}
	// Updating an existing entry never evicts.
	tbl.update(2, 25)
	if tbl.len() != 2 {
		t.Fatal("in-place update changed occupancy")
	}
	// Monotonicity: stale updates are ignored.
	tbl.update(2, 5)
	if v, _ := tbl.get(2); v != 25 {
		t.Fatalf("stale update regressed entry to %d", v)
	}
}

// TestCoarseVectorCoversAllCores: every core must be covered by the
// group bit the coarse vector assigns it.
func TestCoarseVectorCoversAllCores(t *testing.T) {
	for _, cores := range []int{2, 4, 8, 16, 32} {
		for c := 0; c < cores; c++ {
			vec := coarseBit(coherence.NodeID(c), cores)
			members := coarseMembers(vec, cores)
			found := false
			for _, m := range members {
				if m == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("cores=%d: core %d not covered by its own group bit", cores, c)
			}
		}
		// All groups together must cover every core exactly once set-wise.
		full := uint64(0)
		for c := 0; c < cores; c++ {
			full |= coarseBit(coherence.NodeID(c), cores)
		}
		if got := len(coarseMembers(full, cores)); got != cores {
			t.Fatalf("cores=%d: full vector covers %d cores", cores, got)
		}
	}
}
