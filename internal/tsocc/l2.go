package tsocc

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/stats"
)

// L2 directory states (invalid way = not present).
const (
	dirV = iota + 1 // Uncached: valid at L2, no tracked L1 copy
	dirX            // Exclusive: owned by one L1 (owner pointer)
	dirS            // Shared: untracked sharers, last-writer + timestamp
	dirR            // SharedRO: read-only, coarse sharing vector
)

type l2Line struct {
	state       int
	owner       coherence.NodeID // owner (X) / last writer (V, S)
	sharerBits  uint64           // coarse vector (R); reuses the owner field's storage
	ts          uint32           // writer ts (V/S) or tile SRO ts (R)
	dirty       bool             // data newer than memory
	wasModified bool             // written since the L2 obtained this copy
}

// Transaction kinds (coherence.Tx.Kind).
const (
	txMemFetch = iota + 1
	txAwaitAck // DataE sent; waiting for requester Ack
	txFwdGetS  // waiting for owner WBData
	txFwdGetX  // waiting for requester Ack after owner handoff
	txSROInv   // SharedRO write: counting broadcast InvAcks
	txEvict    // evicting: waiting for recall WBData / InvAcks
)

// L2 is one TSO-CC NUCA tile.
type L2 struct {
	id    coherence.NodeID
	tile  int
	cores int
	cfg   config.TSOCC
	cache *memsys.Cache[l2Line]
	net   coherence.Network
	pool  *coherence.MsgPool
	mem   coherence.Memory

	accessLat sim.Cycle

	timers coherence.Timers
	sendFn func(now sim.Cycle, m *coherence.Msg) // bound once; see sendAfterAccess

	// txs owns the transaction lifecycle and message-ownership
	// discipline (see coherence.TxTable).
	txs coherence.TxTable

	membersBuf []int // scratch for coarse sharer expansion

	// Last-seen writer timestamps and epochs per L1 (Table 1, L2 side).
	tsL1    lastSeen
	epochL1 []uint8

	// SharedRO timestamp source (§3.4) and its reset epoch (§3.5), plus
	// the two increment flags (dirty-eviction/modified-uncached, and
	// entered-Shared).
	sroSrc   uint32
	sroEpoch uint8
	flag1    bool
	flag2    bool

	// Optional hooks, nil in nominal runs (see coherence hooks doc):
	// resetFault forces early SharedRO timestamp rollovers,
	// ackDelayFault holds back eviction acknowledgements, transSink
	// reports directory-state transitions to the legality oracle.
	resetFault    func() bool
	ackDelayFault func() sim.Cycle
	transSink     func(addr uint64, from, to int)

	// Tile-level stats.
	SROTransitions  stats.Counter
	SROInvBcasts    stats.Counter
	DecayEvents     stats.Counter
	TimestampResets stats.Counter
}

// SetResetFault implements coherence.ResetFaulter.
func (t *L2) SetResetFault(f func() bool) { t.resetFault = f }

// SetAckDelayFault implements coherence.AckDelayFaulter.
func (t *L2) SetAckDelayFault(f func() sim.Cycle) { t.ackDelayFault = f }

// SetTransitionSink implements coherence.TransitionReporter.
func (t *L2) SetTransitionSink(f func(addr uint64, from, to int)) { t.transSink = f }

// ArmTxAudit implements coherence.TxAuditor.
func (t *L2) ArmTxAudit(maxAge sim.Cycle, report func(string)) { t.txs.ArmAudit(maxAge, report) }

// TxDebug implements coherence.TxDebugger (forensic TxTable dumps).
func (t *L2) TxDebug() string { return fmt.Sprintf("tsocc L2 tile %d:%s", t.tile, t.txs.Debug()) }

// SetTxObs implements coherence.TxObserver.
func (t *L2) SetTxObs(lat func(cycles sim.Cycle), span func(begin bool, now sim.Cycle, addr uint64, kind int)) {
	t.txs.SetObsSinks(lat, span)
}

var txKindNames = [...]string{
	txMemFetch: "mem-fetch",
	txAwaitAck: "await-ack",
	txFwdGetS:  "fwd-gets",
	txFwdGetX:  "fwd-getx",
	txSROInv:   "sro-inv",
	txEvict:    "evict",
}

// TxKindName implements coherence.TxKindNamer.
func (t *L2) TxKindName(kind int) string {
	if kind > 0 && kind < len(txKindNames) {
		return txKindNames[kind]
	}
	return fmt.Sprintf("kind-%d", kind)
}

// TxLive reports registered-but-unretired transactions (leak check).
func (t *L2) TxLive() int64 { return t.txs.LiveTx() }

// ObsCounters implements coherence.ObsCounterProvider.
func (t *L2) ObsCounters() []*stats.Counter {
	return append(t.txs.Counters(),
		&t.SROTransitions, &t.SROInvBcasts, &t.DecayEvents, &t.TimestampResets)
}

// trans reports a directory-state transition to the legality oracle;
// self-loops are dropped here so call sites stay simple.
func (t *L2) trans(addr uint64, from, to int) {
	if t.transSink != nil && from != to {
		t.transSink(addr, from, to)
	}
}

// NewL2 builds TSO-CC tile `tile`.
func NewL2(tile, cores int, sys config.System, cfg config.TSOCC, net coherence.Network, mem coherence.Memory) *L2 {
	l2 := &L2{
		id:        coherence.L2ID(tile, cores),
		tile:      tile,
		cores:     cores,
		cfg:       cfg,
		cache:     memsys.NewCache[l2Line](sys.L2TileSize, sys.L2Ways),
		net:       net,
		pool:      net.MsgPoolFor(tile),
		mem:       mem,
		accessLat: sys.L2AccessLat,
		tsL1:      newLastSeen(0, cores),
		epochL1:   make([]uint8, cores),
		sroSrc:    tsFirst,
	}
	l2.sendFn = l2.send
	l2.txs.Init(l2.pool, l2.handle)
	label := fmt.Sprintf("tsocc.l2.%d", tile)
	l2.SROTransitions.SetName(label + ".sro_transitions")
	l2.SROInvBcasts.SetName(label + ".sro_inv_bcasts")
	l2.DecayEvents.SetName(label + ".decay_events")
	l2.TimestampResets.SetName(label + ".timestamp_resets")
	l2.txs.SetLabel(label)
	return l2
}

func (t *L2) send(now sim.Cycle, m *coherence.Msg) {
	m.Src = t.id
	t.net.Send(now, m)
}

// sendAfterAccess sends m after the tile access latency so that every
// directory-originated message to a given L1 leaves in processing order
// (an invalidation must never overtake an earlier data response).
func (t *L2) sendAfterAccess(now sim.Cycle, tmpl coherence.Msg, data []byte) {
	t.timers.AtMsg(now+t.accessLat, t.sendFn, t.pool.NewFrom(tmpl, data))
}

// sendPutAck schedules an eviction acknowledgement, adding any victim
// fault delay. PutAck is the one directory-originated message allowed
// to slip behind later traffic to the same L1: its handler only clears
// an evict-buffer entry, so reordering it is protocol-legal and is
// exactly the victim/writeback race the profile injects.
func (t *L2) sendPutAck(now sim.Cycle, dst coherence.NodeID, addr uint64) {
	extra := sim.Cycle(0)
	if t.ackDelayFault != nil {
		extra = t.ackDelayFault()
	}
	t.timers.AtMsg(now+t.accessLat+extra, t.sendFn,
		t.pool.NewFrom(coherence.Msg{Type: coherence.MsgPutAck, Dst: dst, Addr: addr}, nil))
}

// coarseMembersBuf expands a coarse sharer vector into preallocated
// scratch (valid until the next call).
func (t *L2) coarseMembersBuf(vec uint64) []int {
	t.membersBuf = appendCoarseMembers(t.membersBuf[:0], vec, t.cores)
	return t.membersBuf
}

// BindWaker implements sim.WakeSink: the wake handle flows into the
// timer heap and the transaction table, which mark this tile due for
// scheduled actions and delivered messages respectively.
func (t *L2) BindWaker(w sim.Waker) {
	t.timers.SetWaker(w)
	t.txs.SetWaker(w)
}

// Deliver implements mesh.Endpoint.
func (t *L2) Deliver(now sim.Cycle, m *coherence.Msg) { t.txs.Deliver(m) }

// SetStall installs a TxTable consumption-stall hook (fault injection;
// see faults.Injector.TxStall).
func (t *L2) SetStall(f func(m *coherence.Msg) bool) { t.txs.SetStall(f) }

// ComponentLabel implements sim.Labeled (forensic reports).
func (t *L2) ComponentLabel() string { return fmt.Sprintf("tsocc L2 tile %d", t.tile) }

// Debug renders outstanding directory state (deadlock diagnostics).
func (t *L2) Debug() string {
	return fmt.Sprintf("L2 %d:%s timers=%d", t.tile, t.txs.Debug(), t.timers.Pending())
}

// TileStats reports SharedRO transitions, Shared->SharedRO decay events,
// SharedRO write broadcasts and tile timestamp resets (used by the
// system-level result collection and the decay ablation).
func (t *L2) TileStats() (sro, decay, bcasts, resets int64) {
	return t.SROTransitions.Value(), t.DecayEvents.Value(),
		t.SROInvBcasts.Value(), t.TimestampResets.Value()
}

// Busy implements coherence.Controller.
func (t *L2) Busy() bool {
	return t.txs.Outstanding() || t.timers.Pending() > 0
}

// NextWake implements sim.WakeHinter: queued messages and retries need
// the very next cycle; otherwise the earliest due timer.
func (t *L2) NextWake(now sim.Cycle) sim.Cycle {
	if t.txs.QueuedWork() {
		return now + 1
	}
	if due, ok := t.timers.NextDue(); ok {
		return due
	}
	return sim.WakeNever
}

// SnoopBlock implements coherence.Controller.
func (t *L2) SnoopBlock(addr uint64) ([]byte, bool) {
	if w := t.cache.Peek(addr); w != nil && w.Meta.state != dirX {
		return w.Data[:], true
	}
	return nil, false
}

// SnoopOwner reports the L1 holding addr exclusively, if any (used by
// post-run functional reads to snoop only the cache that can hold the
// freshest copy).
func (t *L2) SnoopOwner(addr uint64) (coherence.NodeID, bool) {
	if w := t.cache.Peek(addr); w != nil && w.Meta.state == dirX {
		return w.Meta.owner, true
	}
	return 0, false
}

// Tick implements sim.Ticker.
func (t *L2) Tick(now sim.Cycle) {
	t.timers.Tick(now)
	t.txs.Drain(now)
}

func (t *L2) handle(now sim.Cycle, m *coherence.Msg) {
	switch m.Type {
	case coherence.MsgGetS, coherence.MsgGetX:
		t.handleRequest(now, m)
	case coherence.MsgPutE, coherence.MsgPutM:
		t.handlePut(now, m)
	case coherence.MsgAck:
		t.handleAck(now, m)
	case coherence.MsgInvAck:
		t.handleInvAck(now, m)
	case coherence.MsgWBData:
		t.handleWBData(now, m)
	case coherence.MsgTSResetL1:
		src := int(m.Src)
		t.tsL1.drop(src)
		t.epochL1[src] = m.Epoch
	default:
		panic(fmt.Sprintf("tsocc: L2 %d cycle %d: unexpected message %s", t.id, now, m))
	}
}

// ---- Timestamp helpers ----

// respTS computes the (ts, epoch, valid) triple for a non-SharedRO data
// response (§3.5): the line's timestamp if it provably belongs to the
// writer's current epoch (tsL1[writer] >= b.ts), otherwise the smallest
// valid timestamp.
func (t *L2) respTS(w *l2Line) (uint32, uint8, bool) {
	if !t.cfg.Timestamps() || w.ts == tsInvalid {
		return tsInvalid, 0, false
	}
	writer := int(w.owner)
	if writer < 0 || writer >= t.cores {
		return tsInvalid, 0, false
	}
	last, ok := t.tsL1.get(writer)
	if ok && last >= w.ts {
		return w.ts, t.epochL1[writer], true
	}
	return tsSmallest, t.epochL1[writer], true
}

// sroTS computes the response timestamp for a SharedRO line.
func (t *L2) sroTS(w *l2Line) (uint32, uint8, bool) {
	if !t.cfg.Timestamps() || w.ts == tsInvalid {
		return tsInvalid, 0, false
	}
	if w.ts > t.sroSrc {
		return tsSmallest, t.sroEpoch, true
	}
	return w.ts, t.sroEpoch, true
}

// assignSROTS produces the timestamp for a line transitioning to
// SharedRO, incrementing the tile source when either condition flag is
// set (timestamp grouping for SharedRO lines, §3.4).
func (t *L2) assignSROTS(now sim.Cycle) uint32 {
	if !t.cfg.Timestamps() {
		return tsInvalid
	}
	if t.resetFault != nil && t.resetFault() {
		// Reset-storm fault: roll the SharedRO timestamp space over as
		// if TSMax were reached before assigning.
		t.resetSRO(now)
	}
	if t.flag1 || t.flag2 {
		t.flag1, t.flag2 = false, false
		if t.sroSrc >= t.cfg.TSMax() {
			t.resetSRO(now)
		} else {
			t.sroSrc++
		}
	}
	return t.sroSrc
}

func (t *L2) resetSRO(now sim.Cycle) {
	t.TimestampResets.Inc()
	t.sroEpoch = (t.sroEpoch + 1) & uint8((1<<uint(t.cfg.EpochBits))-1)
	t.sroSrc = tsFirst
	for c := 0; c < t.cores; c++ {
		t.send(now, t.pool.NewFrom(coherence.Msg{Type: coherence.MsgTSResetL2,
			Dst: coherence.L1ID(c), Epoch: t.sroEpoch}, nil))
	}
}

// noteWriterTS records a writer's timestamp observed in an ack or
// writeback, advancing the tile's last-seen table.
func (t *L2) noteWriterTS(writer coherence.NodeID, m *coherence.Msg) {
	if !m.TSValid || m.TS <= tsSmallest {
		return
	}
	w := int(writer)
	if m.Epoch != t.epochL1[w] {
		// A reset raced ahead of us; adopt the new epoch first.
		t.tsL1.drop(w)
		t.epochL1[w] = m.Epoch
	}
	t.tsL1.update(w, m.TS)
}

// ---- Request handling ----

func (t *L2) handleRequest(now sim.Cycle, m *coherence.Msg) {
	if t.txs.BusyLine(m.Addr) {
		t.txs.EnqueueWaiting(m)
		return
	}
	w := t.cache.Peek(m.Addr)
	if w == nil {
		t.startFetch(now, m)
		return
	}
	if m.Type == coherence.MsgGetS {
		t.serveGetS(now, m, w)
	} else {
		t.serveGetX(now, m, w)
	}
}

func (t *L2) startFetch(now sim.Cycle, m *coherence.Msg) {
	v := t.cache.Victim(m.Addr)
	if v == nil {
		t.txs.EnqueueRetry(m)
		return
	}
	if v.Valid {
		if t.cache.AnyBusy(m.Addr) {
			t.txs.EnqueueRetry(m)
			return
		}
		if !t.evictLine(now, v) {
			t.txs.EnqueueRetry(m)
			return
		}
	}
	t.cache.Install(v, m.Addr)
	v.Busy = true
	t.txs.New(m.Addr, txMemFetch, m, 0)
	addr := m.Addr
	t.timers.At(now+t.accessLat+t.mem.Latency(addr), func(nw sim.Cycle) {
		way := t.cache.Peek(addr)
		t.mem.ReadBlock(addr, way.Data[:])
		t.trans(addr, 0, dirV)
		way.Meta = l2Line{state: dirV, owner: -1}
		way.Busy = false
		tx, _ := t.txs.Get(addr)
		req := tx.Req
		t.txs.Del(addr, tx, false)
		// The request's ownership flows back through the dispatch path:
		// the line is now present, so Consume re-serves it (recycling
		// the message unless a fresh transaction retains it).
		t.txs.Consume(nw, req)
	})
}

// evictLine evicts v; true = completed synchronously.
func (t *L2) evictLine(now sim.Cycle, v *memsys.Way[l2Line]) bool {
	addr := v.Tag
	switch v.Meta.state {
	case dirV, dirS:
		// Shared lines are untracked: evict silently; sharers will
		// self-invalidate their stale copies eventually (§3.2). Their
		// timestamps are lost, which later forces mandatory
		// self-invalidation at readers (invalid-ts responses).
		if v.Meta.dirty {
			t.mem.WriteBlock(addr, v.Data[:])
			t.flag1 = true // condition 1: dirty line left the L2
		}
		t.trans(addr, v.Meta.state, 0)
		t.cache.Invalidate(v)
		return true
	case dirR:
		// SharedRO lines are eagerly coherent; recall the coarse
		// groups before dropping (keeps R copies inclusive — see
		// DESIGN.md interpretation notes).
		members := t.coarseMembersBuf(v.Meta.sharerBits)
		if len(members) == 0 {
			if v.Meta.dirty {
				t.mem.WriteBlock(addr, v.Data[:])
				t.flag1 = true
			}
			t.trans(addr, dirR, 0)
			t.cache.Invalidate(v)
			return true
		}
		for _, c := range members {
			t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: coherence.L1ID(c), Addr: addr}, nil)
		}
		v.Busy = true
		t.txs.New(addr, txEvict, nil, len(members))
		return false
	case dirX:
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: v.Meta.owner, Addr: addr}, nil)
		v.Busy = true
		t.txs.New(addr, txEvict, nil, 1)
		return false
	}
	panic(fmt.Sprintf("tsocc: L2 %d cycle %d: evictLine on invalid state %d for %#x", t.id, now, v.Meta.state, v.Tag))
}

func (t *L2) serveGetS(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line]) {
	switch w.Meta.state {
	case dirV:
		// Uncached: grant Exclusive (§3.2).
		if w.Meta.wasModified {
			t.flag1 = true // condition 1: modified line re-enters circulation
		}
		ts, ep, valid := t.respTS(&w.Meta)
		w.Busy = true
		t.txs.New(m.Addr, txAwaitAck, m, 0)
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data[:], w.Meta.owner, ts, ep, valid)
	case dirX:
		if w.Meta.owner == m.Requestor {
			panic(fmt.Sprintf("tsocc: L2 %d cycle %d: GetS from current owner %s", t.id, now, m))
		}
		w.Busy = true
		t.txs.New(m.Addr, txFwdGetS, m, 0)
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgFwdGetS, Dst: w.Meta.owner, Addr: m.Addr, Requestor: m.Requestor}, nil)
	case dirS:
		if t.shouldDecay(&w.Meta) {
			t.DecayEvents.Inc()
			t.toSharedRO(now, w)
			t.serveGetS(now, m, w)
			return
		}
		ts, ep, valid := t.respTS(&w.Meta)
		t.respond(now, m.Requestor, coherence.MsgDataS, m.Addr, w.Data[:], w.Meta.owner, ts, ep, valid)
	case dirR:
		ts, ep, valid := t.sroTS(&w.Meta)
		w.Meta.sharerBits |= coarseBit(m.Requestor, t.cores)
		t.respond(now, m.Requestor, coherence.MsgDataSRO, m.Addr, w.Data[:], -1, ts, ep, valid)
	}
}

// shouldDecay applies the Shared→SharedRO decay rule (§3.4): the line has
// not been written for DecayWrites writes of its last writer, measured in
// timestamp distance scaled by the write-group size.
func (t *L2) shouldDecay(w *l2Line) bool {
	if !t.cfg.SharedRO || !t.cfg.Timestamps() || t.cfg.DecayWrites == 0 {
		return false
	}
	if w.ts <= tsSmallest {
		return false
	}
	writer := int(w.owner)
	if writer < 0 || writer >= t.cores {
		return false
	}
	last, ok := t.tsL1.get(writer)
	if !ok || last < w.ts {
		return false
	}
	decayTS := t.cfg.DecayWrites >> uint(t.cfg.WriteGroupBits)
	if decayTS == 0 {
		decayTS = 1
	}
	return last-w.ts >= decayTS
}

// toSharedRO transitions a line to SharedRO, assigning a tile timestamp.
func (t *L2) toSharedRO(now sim.Cycle, w *memsys.Way[l2Line]) {
	t.SROTransitions.Inc()
	t.trans(w.Tag, w.Meta.state, dirR)
	w.Meta.state = dirR
	w.Meta.sharerBits = 0
	w.Meta.ts = t.assignSROTS(now)
	w.Meta.owner = -1
}

func (t *L2) serveGetX(now sim.Cycle, m *coherence.Msg, w *memsys.Way[l2Line]) {
	switch w.Meta.state {
	case dirV:
		ts, ep, valid := t.respTS(&w.Meta)
		w.Busy = true
		t.txs.New(m.Addr, txAwaitAck, m, 0)
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data[:], w.Meta.owner, ts, ep, valid)
	case dirX:
		if w.Meta.owner == m.Requestor {
			panic(fmt.Sprintf("tsocc: L2 %d cycle %d: GetX from current owner %s", t.id, now, m))
		}
		w.Busy = true
		t.txs.New(m.Addr, txFwdGetX, m, 0)
		t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgFwdGetX, Dst: w.Meta.owner, Addr: m.Addr, Requestor: m.Requestor}, nil)
	case dirS:
		// The lazy write path: respond immediately with the full line;
		// unaware sharers keep stale copies until they self-invalidate
		// (§3.2). No invalidation fan-out.
		ts, ep, valid := t.respTS(&w.Meta)
		w.Busy = true
		t.txs.New(m.Addr, txAwaitAck, m, 0)
		t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data[:], w.Meta.owner, ts, ep, valid)
	case dirR:
		// Writes to SharedRO lines broadcast invalidations to the
		// coarse sharer groups (§3.4).
		members := t.coarseMembersBuf(w.Meta.sharerBits)
		// The requester's own copy is handled by FIFO ordering: its
		// Inv (if any) arrives before the later DataE.
		t.SROInvBcasts.Inc()
		if len(members) == 0 {
			ts, ep, valid := t.sroTS(&w.Meta)
			w.Busy = true
			t.txs.New(m.Addr, txAwaitAck, m, 0)
			t.respond(now, m.Requestor, coherence.MsgDataE, m.Addr, w.Data[:], -1, ts, ep, valid)
			return
		}
		for _, c := range members {
			t.sendAfterAccess(now, coherence.Msg{Type: coherence.MsgInv, Dst: coherence.L1ID(c), Addr: m.Addr}, nil)
		}
		w.Busy = true
		t.txs.New(m.Addr, txSROInv, m, len(members))
	}
}

func (t *L2) respond(now sim.Cycle, dst coherence.NodeID, typ coherence.MsgType, addr uint64,
	data []byte, owner coherence.NodeID, ts uint32, epoch uint8, tsValid bool) {
	t.sendAfterAccess(now, coherence.Msg{Type: typ, Dst: dst, Addr: addr, Owner: owner,
		TS: ts, Epoch: epoch, TSValid: tsValid}, data)
}

// ---- Completion handling ----

func (t *L2) handleAck(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.txs.Get(m.Addr)
	if !ok || (tx.Kind != txAwaitAck && tx.Kind != txFwdGetX) {
		panic(fmt.Sprintf("tsocc: L2 %d cycle %d: stray Ack %s", t.id, now, m))
	}
	w := t.cache.Peek(m.Addr)
	t.trans(m.Addr, w.Meta.state, dirX)
	w.Meta.state = dirX
	w.Meta.owner = tx.Req.Requestor
	w.Meta.sharerBits = 0
	if m.TSValid {
		// The ack finalizes a write: record its timestamp (§3.5's
		// "updated when the L2 updates a line's timestamp").
		w.Meta.wasModified = true
		w.Meta.ts = m.TS
		t.noteWriterTS(tx.Req.Requestor, m)
	}
	w.Busy = false
	t.txs.Del(m.Addr, tx, true)
	t.txs.DrainWaiting(now, m.Addr)
}

func (t *L2) handleInvAck(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.txs.Get(m.Addr)
	if !ok {
		panic(fmt.Sprintf("tsocc: L2 %d cycle %d: stray InvAck %s", t.id, now, m))
	}
	tx.AcksLeft--
	if tx.AcksLeft > 0 {
		return
	}
	w := t.cache.Peek(m.Addr)
	switch tx.Kind {
	case txSROInv:
		// All SharedRO copies invalidated; grant exclusivity.
		ts, ep, valid := t.sroTS(&w.Meta)
		tx.Kind = txAwaitAck
		w.Meta.sharerBits = 0
		t.respond(now, tx.Req.Requestor, coherence.MsgDataE, m.Addr, w.Data[:], -1, ts, ep, valid)
	case txEvict:
		t.finishEvict(now, w)
	default:
		panic(fmt.Sprintf("tsocc: L2 %d cycle %d: InvAck in tx kind %d", t.id, now, tx.Kind))
	}
}

func (t *L2) handleWBData(now sim.Cycle, m *coherence.Msg) {
	tx, ok := t.txs.Get(m.Addr)
	if !ok {
		panic(fmt.Sprintf("tsocc: L2 %d cycle %d: stray WBData %s", t.id, now, m))
	}
	w := t.cache.Peek(m.Addr)
	switch tx.Kind {
	case txFwdGetS:
		prevOwner := w.Meta.owner
		copy(w.Data[:], m.Data)
		if m.Dirty {
			w.Meta.dirty = true
			w.Meta.wasModified = true
			if m.TSValid {
				w.Meta.ts = m.TS
			} else {
				w.Meta.ts = tsInvalid
			}
			t.noteWriterTS(prevOwner, m)
			// Modified by the previous owner: enters Shared (§3.4),
			// last writer = previous owner.
			t.trans(m.Addr, w.Meta.state, dirS)
			w.Meta.state = dirS
			w.Meta.owner = prevOwner
			t.flag2 = true // condition 2: line entered Shared
		} else if t.cfg.SharedRO {
			// Unmodified by the previous owner: SharedRO.
			t.toSharedRO(now, w)
			w.Meta.sharerBits = coarseBit(tx.Req.Requestor, t.cores)
			if !m.NoCopy {
				w.Meta.sharerBits |= coarseBit(prevOwner, t.cores)
			}
		} else {
			t.trans(m.Addr, w.Meta.state, dirS)
			w.Meta.state = dirS
			w.Meta.owner = prevOwner
			t.flag2 = true
		}
		w.Busy = false
		t.txs.Del(m.Addr, tx, true)
		t.txs.DrainWaiting(now, m.Addr)
	case txEvict:
		if m.Dirty {
			copy(w.Data[:], m.Data)
			w.Meta.dirty = true
		}
		t.finishEvict(now, w)
	default:
		panic(fmt.Sprintf("tsocc: L2 %d cycle %d: WBData in tx kind %d", t.id, now, tx.Kind))
	}
}

func (t *L2) finishEvict(now sim.Cycle, w *memsys.Way[l2Line]) {
	addr := w.Tag
	if w.Meta.dirty {
		t.mem.WriteBlock(addr, w.Data[:])
		t.flag1 = true
	}
	tx, _ := t.txs.Get(addr)
	t.txs.Del(addr, tx, false)
	t.trans(addr, w.Meta.state, 0)
	t.cache.Invalidate(w)
	t.txs.DrainWaiting(now, addr)
}

func (t *L2) handlePut(now sim.Cycle, m *coherence.Msg) {
	if t.txs.BusyLine(m.Addr) {
		t.txs.EnqueueWaiting(m)
		return
	}
	w := t.cache.Peek(m.Addr)
	if w == nil || w.Meta.state != dirX || w.Meta.owner != m.Src {
		// Stale writeback (ownership moved while the Put was in
		// flight): acknowledge and drop.
		t.sendPutAck(now, m.Src, m.Addr)
		return
	}
	if m.Type == coherence.MsgPutM {
		copy(w.Data[:], m.Data)
		w.Meta.dirty = true
		w.Meta.wasModified = true
		if m.TSValid {
			w.Meta.ts = m.TS
		} else {
			w.Meta.ts = tsInvalid
		}
		t.noteWriterTS(m.Src, m)
	}
	t.trans(m.Addr, w.Meta.state, dirV)
	w.Meta.state = dirV
	// Keep owner as last-writer for timestamp responses.
	t.sendPutAck(now, m.Src, m.Addr)
}

// PrewarmStorage implements coherence.StoragePrewarmer.
func (t *L2) PrewarmStorage() { t.cache.Prewarm() }
