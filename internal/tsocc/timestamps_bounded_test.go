package tsocc

import (
	"fmt"
	"testing"
)

// mapLastSeen is the map-backed bounded table this package used before
// the fixed-size array landed — kept here as the reference model for
// eviction-order parity testing and as the benchmark baseline.
type mapLastSeen struct {
	m   map[int]uint32
	cap int
}

func newMapLastSeen(capacity int) *mapLastSeen {
	return &mapLastSeen{m: make(map[int]uint32), cap: capacity}
}

func (t *mapLastSeen) get(src int) (uint32, bool) {
	v, ok := t.m[src]
	return v, ok
}

func (t *mapLastSeen) update(src int, ts uint32) {
	if cur, ok := t.m[src]; ok {
		if ts > cur {
			t.m[src] = ts
		}
		return
	}
	if len(t.m) >= t.cap {
		victim, victimTS := -1, ^uint32(0)
		for src, ts := range t.m {
			if ts < victimTS || (ts == victimTS && (victim < 0 || src < victim)) {
				victim, victimTS = src, ts
			}
		}
		if victim >= 0 {
			delete(t.m, victim)
		}
	}
	t.m[src] = ts
}

func (t *mapLastSeen) drop(src int) { delete(t.m, src) }

func (t *mapLastSeen) len() int { return len(t.m) }

// TestBoundedLastSeenParityWithMap drives the array-backed bounded
// table and the historical map-backed version through the same
// deterministic pseudo-random update/drop sequence and requires
// identical observable state after every operation — same hits, same
// timestamps, same occupancy, and therefore the same eviction order.
func TestBoundedLastSeenParityWithMap(t *testing.T) {
	const sources = 8
	for _, capacity := range []int{1, 2, 3, 5, 8, 12} {
		t.Run(fmt.Sprintf("cap=%d", capacity), func(t *testing.T) {
			arr := newLastSeen(capacity, sources)
			ref := newMapLastSeen(capacity)
			rng := uint64(0x9E3779B97F4A7C15) ^ uint64(capacity)
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for op := 0; op < 4000; op++ {
				src := int(next() % sources)
				switch next() % 8 {
				case 0:
					arr.drop(src)
					ref.drop(src)
				default:
					// Timestamps from a small range so eviction ties
					// (equal smallest timestamps) actually occur.
					ts := tsFirst + uint32(next()%12)
					arr.update(src, ts)
					ref.update(src, ts)
				}
				if got, want := arr.len(), ref.len(); got != want {
					t.Fatalf("op %d: len = %d, map reference %d", op, got, want)
				}
				for s := 0; s < sources; s++ {
					gv, gok := arr.get(s)
					wv, wok := ref.get(s)
					if gv != wv || gok != wok {
						t.Fatalf("op %d: get(%d) = (%d,%v), map reference (%d,%v)",
							op, s, gv, gok, wv, wok)
					}
				}
			}
		})
	}
}

// BenchmarkLastSeenBounded measures the bounded-table hot pair (update
// then get, the data-response path shape) for the fixed-size array
// against the historical map implementation.
func BenchmarkLastSeenBounded(b *testing.B) {
	const sources = 32
	for _, capacity := range []int{4, 16} {
		b.Run(fmt.Sprintf("array/cap=%d", capacity), func(b *testing.B) {
			tbl := newLastSeen(capacity, sources)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := i & (sources - 1)
				tbl.update(src, tsFirst+uint32(i&1023))
				tbl.get(src)
			}
		})
		b.Run(fmt.Sprintf("map/cap=%d", capacity), func(b *testing.B) {
			tbl := newMapLastSeen(capacity)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := i & (sources - 1)
				tbl.update(src, tsFirst+uint32(i&1023))
				tbl.get(src)
			}
		})
	}
}
