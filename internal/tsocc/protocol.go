package tsocc

import (
	"repro/internal/coherence"
	"repro/internal/config"
)

// Protocol is the TSO-CC protocol factory, parameterized by a
// config.TSOCC preset (TSO-CC-4-12-3, CC-shared-to-L2, ...).
type Protocol struct {
	Cfg config.TSOCC
}

// New returns a TSO-CC protocol with the given configuration.
func New(cfg config.TSOCC) Protocol { return Protocol{Cfg: cfg} }

// init publishes every §4.2 preset in the protocol registry, in the
// paper's plotting order (after the MESI baseline at order 0). Adding a
// TSO-CC variant to the evaluated set means adding a config preset;
// adding a new protocol means registering a new package — no call site
// enumerates the known protocols anymore.
func init() {
	leg := legality()
	for i, preset := range config.Presets() {
		cfg := preset
		coherence.RegisterProtocol(cfg.Name(), i+1, func() coherence.Protocol { return New(cfg) })
		// All presets share the same state machine, so they share one
		// legality table registered under each preset name.
		coherence.RegisterLegality(cfg.Name(), leg)
	}
}

// legality builds the TSO-CC state-transition legality table consumed
// by the protocol-legality oracle (see coherence.RegisterLegality).
// Every direct hop a correct run can take is enumerated; anything else
// — e.g. Modified reverting to Exclusive, or Exclusive decaying into a
// stale-tolerant state without passing through invalid — is a
// violation.
func legality() *coherence.Legality {
	l1 := coherence.StateTable{
		Names: map[int]string{stateS: "S", stateR: "R", stateE: "E", stateM: "M"},
		Edges: map[coherence.Edge]bool{},
	}
	l1.Allow(0, stateS, stateR, stateE, stateM) // fills
	l1.Allow(stateS, stateR, stateE, stateM, 0) // refetch upgrades; self-inv
	l1.Allow(stateR, stateS, stateE, stateM, 0) // decay refetch; write upgrade
	l1.Allow(stateE, stateM, stateS, 0)         // write; FwdGetS; recall
	l1.Allow(stateM, stateS, 0)                 // FwdGetS downgrade; recall

	l2 := coherence.StateTable{
		Names: map[int]string{dirV: "V", dirX: "X", dirS: "Sh", dirR: "RO"},
		Edges: map[coherence.Edge]bool{},
	}
	l2.Allow(0, dirV)                   // memory fetch
	l2.Allow(dirV, dirX, dirR, 0)       // exclusive grant; SharedRO promotion
	l2.Allow(dirS, dirX, dirR, 0)       // write upgrade; SharedRO promotion
	l2.Allow(dirR, dirX, 0)             // write to read-only data; decay/evict
	l2.Allow(dirX, dirS, dirR, dirV, 0) // owner writeback / put / evict
	return &coherence.Legality{L1: l1, L2: l2}
}

// Name implements coherence.Protocol.
func (p Protocol) Name() string { return p.Cfg.Name() }

// Build implements coherence.Protocol: one TSO-CC L1 per core and one
// tile per core.
func (p Protocol) Build(cfg config.System, net coherence.Network, mem coherence.Memory) ([]coherence.L1Like, []coherence.Controller) {
	l1s := make([]coherence.L1Like, cfg.Cores)
	l2s := make([]coherence.Controller, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		l1s[i] = NewL1(i, cfg.Cores, cfg, p.Cfg, net)
		l2s[i] = NewL2(i, cfg.Cores, cfg, p.Cfg, net, mem)
	}
	return l1s, l2s
}
