package tsocc

import (
	"repro/internal/coherence"
	"repro/internal/config"
)

// Protocol is the TSO-CC protocol factory, parameterized by a
// config.TSOCC preset (TSO-CC-4-12-3, CC-shared-to-L2, ...).
type Protocol struct {
	Cfg config.TSOCC
}

// New returns a TSO-CC protocol with the given configuration.
func New(cfg config.TSOCC) Protocol { return Protocol{Cfg: cfg} }

// init publishes every §4.2 preset in the protocol registry, in the
// paper's plotting order (after the MESI baseline at order 0). Adding a
// TSO-CC variant to the evaluated set means adding a config preset;
// adding a new protocol means registering a new package — no call site
// enumerates the known protocols anymore.
func init() {
	for i, preset := range config.Presets() {
		cfg := preset
		coherence.RegisterProtocol(cfg.Name(), i+1, func() coherence.Protocol { return New(cfg) })
	}
}

// Name implements coherence.Protocol.
func (p Protocol) Name() string { return p.Cfg.Name() }

// Build implements coherence.Protocol: one TSO-CC L1 per core and one
// tile per core.
func (p Protocol) Build(cfg config.System, net coherence.Network, mem coherence.Memory) ([]coherence.L1Like, []coherence.Controller) {
	l1s := make([]coherence.L1Like, cfg.Cores)
	l2s := make([]coherence.Controller, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		l1s[i] = NewL1(i, cfg.Cores, cfg, p.Cfg, net)
		l2s[i] = NewL2(i, cfg.Cores, cfg, p.Cfg, net, mem)
	}
	return l1s, l2s
}
