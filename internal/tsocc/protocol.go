package tsocc

import (
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/mesh"
)

// Protocol is the TSO-CC protocol factory, parameterized by a
// config.TSOCC preset (TSO-CC-4-12-3, CC-shared-to-L2, ...).
type Protocol struct {
	Cfg config.TSOCC
}

// New returns a TSO-CC protocol with the given configuration.
func New(cfg config.TSOCC) Protocol { return Protocol{Cfg: cfg} }

// Name implements the system protocol interface.
func (p Protocol) Name() string { return p.Cfg.Name() }

// Build constructs one TSO-CC L1 per core and one tile per core.
func (p Protocol) Build(cfg config.System, net *mesh.Network, mem *memsys.Memory) ([]coherence.L1Like, []coherence.Controller) {
	l1s := make([]coherence.L1Like, cfg.Cores)
	l2s := make([]coherence.Controller, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		l1s[i] = NewL1(i, cfg.Cores, cfg, p.Cfg, net)
		l2s[i] = NewL2(i, cfg.Cores, cfg, p.Cfg, net, mem)
	}
	return l1s, l2s
}
