package tsocc

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/sim"
)

// L1 line states (invalid way = Invalid).
const (
	stateS = iota + 1 // Shared: stale-tolerated, bounded hits, self-invalidated
	stateR            // SharedRO: eagerly invalidated on (rare) writes
	stateE            // Exclusive, clean
	stateM            // Modified
)

type l1Line struct {
	state  int
	acnt   uint32 // accesses since last L2 fill (b.acnt)
	ts     uint32 // last-written timestamp (b.ts)
	tsOwn  bool   // ts was assigned by this core's own writes
	listed bool   // way sits in the L1's shared-way sweep index
}

type readTx struct {
	addr     uint64
	wordAddr uint64
	cb       func(uint64)
	issued   sim.Cycle
	squashed bool
}

type writeTx struct {
	addr     uint64
	wordAddr uint64
	isRMW    bool
	val      uint64
	f        func(old uint64) (uint64, bool)
	storeCb  func()
	rmwCb    func(uint64)
	issued   sim.Cycle
}

type evictEntry struct {
	data        []byte
	dirty       bool
	ts          uint32
	tsOwn       bool
	transferred bool
}

// L1 is one core's TSO-CC private cache controller.
type L1 struct {
	id     coherence.NodeID
	cores  int
	cfg    config.TSOCC
	cache  *memsys.Cache[l1Line]
	net    coherence.Network
	pool   *coherence.MsgPool
	hitLat sim.Cycle

	timers coherence.Timers
	inbox  []*coherence.Msg
	waker  sim.Waker

	// rd/wr point at rdBuf/wrBuf when active: the L1 serves one read and
	// one write transaction at a time, so the transaction records are
	// preallocated scratch, not per-miss allocations.
	rd        *readTx
	wr        *writeTx
	rdBuf     readTx
	wrBuf     writeTx
	evict     map[uint64]*evictEntry
	evictFree []*evictEntry

	// sharedWays indexes the ways that entered Shared since the last
	// self-invalidation sweep (every transition into stateS appends the
	// way once, guarded by Meta.listed). Sweeps walk this list instead
	// of the whole array — self-invalidation on a potential acquire is
	// the protocol's most frequent array operation, and at large cache
	// geometries a full ForEachValid walk dominated 64-core profiles.
	// Invalidate/Install zero Meta (clearing listed), so a recycled way
	// can re-appear in the list; the sweep's listed check makes the
	// duplicate a no-op. Way pointers are stable: cache chunks allocate
	// once and never move. Invariant: a stateS line is always listed —
	// an empty list proves the cache holds no Shared line.
	sharedWays []*memsys.Way[l1Line]

	// Timestamp source (§3.3): a core-local counter incremented every
	// write-group, plus the reset epoch.
	tsSrc   uint32
	wgCount uint32
	epoch   uint8

	// Last-seen timestamp tables and epoch tables (Table 1).
	tsL1    lastSeen // per writer L1
	epochL1 []uint8
	tsL2    lastSeen // per L2 tile (SharedRO timestamps)
	epochL2 []uint8

	// Optional hooks, nil in nominal runs (see coherence hooks doc):
	// evictFault forces the eviction path on a valid-line access,
	// resetFault forces an early timestamp rollover, transSink reports
	// line-state transitions to the legality oracle, missSink reports
	// per-miss issue-to-completion latency.
	evictFault func() bool
	resetFault func() bool
	transSink  func(addr uint64, from, to int)
	missSink   func(read bool, cycles sim.Cycle)

	Stats coherence.L1Stats
}

// SetEvictFault implements coherence.EvictFaulter.
func (l *L1) SetEvictFault(f func() bool) { l.evictFault = f }

// SetResetFault implements coherence.ResetFaulter.
func (l *L1) SetResetFault(f func() bool) { l.resetFault = f }

// SetTransitionSink implements coherence.TransitionReporter.
func (l *L1) SetTransitionSink(f func(addr uint64, from, to int)) { l.transSink = f }

// SetMissLatencySink implements coherence.MissLatencyReporter.
func (l *L1) SetMissLatencySink(f func(read bool, cycles sim.Cycle)) { l.missSink = f }

// trans reports a line-state transition to the legality oracle;
// self-loops are dropped here so call sites stay simple.
func (l *L1) trans(addr uint64, from, to int) {
	if l.transSink != nil && from != to {
		l.transSink(addr, from, to)
	}
}

// NewL1 builds core `core`'s TSO-CC L1.
func NewL1(core, cores int, sys config.System, cfg config.TSOCC, net coherence.Network) *L1 {
	return &L1{
		id:      coherence.L1ID(core),
		cores:   cores,
		cfg:     cfg,
		cache:   memsys.NewCache[l1Line](sys.L1Size, sys.L1Ways),
		net:     net,
		pool:    net.MsgPoolFor(core),
		hitLat:  sys.L1HitLat,
		evict:   make(map[uint64]*evictEntry),
		tsSrc:   tsFirst,
		tsL1:    newLastSeen(cfg.TSTableEntries, cores),
		epochL1: make([]uint8, cores),
		tsL2:    newLastSeen(cfg.TSTableEntries, cores),
		epochL2: make([]uint8, cores),
	}
}

func (l *L1) home(addr uint64) coherence.NodeID {
	return coherence.L2ID(int(addr>>coherence.BlockShift)%l.cores, l.cores)
}

// send stamps a pooled copy of tmpl (payload taken from data, not
// tmpl.Data) and injects it into the mesh.
func (l *L1) send(now sim.Cycle, tmpl coherence.Msg, data []byte) {
	m := l.pool.NewFrom(tmpl, data)
	m.Src = l.id
	l.net.Send(now, m)
}

// newEvict builds an eviction-buffer entry from the free list.
func (l *L1) newEvict(data []byte, dirty bool, ts uint32, tsOwn bool) *evictEntry {
	var e *evictEntry
	if n := len(l.evictFree); n > 0 {
		e = l.evictFree[n-1]
		l.evictFree = l.evictFree[:n-1]
	} else {
		e = &evictEntry{}
	}
	e.data = append(e.data[:0], data...)
	e.dirty, e.ts, e.tsOwn, e.transferred = dirty, ts, tsOwn, false
	return e
}

// BindWaker implements sim.WakeSink: stored for inbox deliveries and
// forwarded to the timer heap, so any work landing on this L1 from
// outside its own Tick (a mesh delivery, a hit latency scheduled during
// the core's tick) marks it due.
func (l *L1) BindWaker(w sim.Waker) {
	l.waker = w
	l.timers.SetWaker(w)
}

// Deliver implements mesh.Endpoint.
func (l *L1) Deliver(now sim.Cycle, m *coherence.Msg) {
	l.inbox = append(l.inbox, m)
	l.waker.Wake()
}

// Busy implements coherence.Controller.
func (l *L1) Busy() bool {
	return l.rd != nil || l.wr != nil || len(l.evict) > 0 || l.timers.Pending() > 0 || len(l.inbox) > 0
}

// ComponentLabel implements sim.Labeled (forensic reports).
func (l *L1) ComponentLabel() string { return fmt.Sprintf("tsocc L1 %d", l.id) }

// Debug renders in-flight transaction state (deadlock diagnostics).
func (l *L1) Debug() string {
	s := fmt.Sprintf("L1 %d:", l.id)
	if l.rd != nil {
		s += fmt.Sprintf(" rd=%#x(squash=%v)", l.rd.addr, l.rd.squashed)
	}
	if l.wr != nil {
		s += fmt.Sprintf(" wr=%#x(rmw=%v issued=%d)", l.wr.addr, l.wr.isRMW, l.wr.issued)
	}
	for a, e := range l.evict {
		s += fmt.Sprintf(" evict=%#x(dirty=%v xfer=%v)", a, e.dirty, e.transferred)
	}
	s += fmt.Sprintf(" timers=%d%v inbox=%d", l.timers.Pending(), l.timers.DueCycles(), len(l.inbox))
	return s
}

// NextWake implements sim.WakeHinter: the earliest due timer, or next
// cycle if messages are queued. Outstanding transactions need no wake of
// their own — they advance only when a message or timer fires.
func (l *L1) NextWake(now sim.Cycle) sim.Cycle {
	if len(l.inbox) > 0 {
		return now + 1
	}
	if due, ok := l.timers.NextDue(); ok {
		return due
	}
	return sim.WakeNever
}

// Tick implements sim.Ticker.
func (l *L1) Tick(now sim.Cycle) {
	l.timers.Tick(now)
	if len(l.inbox) == 0 {
		return
	}
	msgs := l.inbox
	l.inbox = l.inbox[:0]
	for _, m := range msgs {
		l.handle(now, m)
		l.pool.Put(m) // L1 handlers never retain a delivered message
	}
}

// L1Stats implements coherence.L1Like.
func (l *L1) L1Stats() *coherence.L1Stats { return &l.Stats }

// SnoopBlock implements coherence.Controller.
func (l *L1) SnoopBlock(addr uint64) ([]byte, bool) {
	if w := l.cache.Peek(addr); w != nil && (w.Meta.state == stateE || w.Meta.state == stateM) {
		return w.Data[:], true
	}
	return nil, false
}

// ---- Timestamp source ----

// assignTS returns the timestamp for a write and advances the write-group
// counter, triggering a timestamp reset broadcast on wrap (§3.5).
func (l *L1) assignTS(now sim.Cycle) uint32 {
	if !l.cfg.Timestamps() {
		return tsInvalid
	}
	if l.resetFault != nil && l.resetFault() {
		// Reset-storm fault: roll the timestamp space over as if TSMax
		// were reached; the write below takes the first timestamp of
		// the new epoch, exactly like a write straddling a real wrap.
		l.wgCount = 0
		l.resetTS(now)
	}
	ts := l.tsSrc
	l.wgCount++
	if l.wgCount >= l.cfg.WriteGroupSize() {
		l.wgCount = 0
		if l.tsSrc >= l.cfg.TSMax() {
			l.resetTS(now)
		} else {
			l.tsSrc++
		}
	}
	return ts
}

func (l *L1) resetTS(now sim.Cycle) {
	l.Stats.TimestampResets.Inc()
	l.epoch = (l.epoch + 1) & uint8((1<<uint(l.cfg.EpochBits))-1)
	l.tsSrc = tsFirst
	for c := 0; c < l.cores; c++ {
		if coherence.L1ID(c) != l.id {
			l.send(now, coherence.Msg{Type: coherence.MsgTSResetL1,
				Dst: coherence.L1ID(c), Epoch: l.epoch}, nil)
		}
		l.send(now, coherence.Msg{Type: coherence.MsgTSResetL1,
			Dst: coherence.L2ID(c, l.cores), Epoch: l.epoch}, nil)
	}
}

// sendableTS converts a line's stored timestamp into the (ts, valid)
// pair safe to put on the wire: timestamps ahead of the current source
// are from a previous epoch and are reported as the smallest valid
// timestamp, forcing conservative self-invalidation at the receiver.
func (l *L1) sendableTS(w *l1Line) (uint32, bool) {
	if !w.tsOwn || w.ts == tsInvalid || !l.cfg.Timestamps() {
		return tsInvalid, false
	}
	if w.ts > l.tsSrc {
		return tsSmallest, true
	}
	return w.ts, true
}

// ---- CorePort ----

// Load implements coherence.CorePort.
func (l *L1) Load(now sim.Cycle, addr uint64, cb func(uint64)) bool {
	blk := coherence.BlockAddr(addr)
	if l.rd != nil {
		return false
	}
	if l.wr != nil && l.wr.addr == blk {
		return false
	}
	if w := l.cache.Lookup(addr); w != nil {
		if l.evictFault != nil && l.evictFault() {
			// Evict fault: run the normal eviction path (silent for
			// S/R, PutE/PutM for E/M) and take the miss below.
			l.evictLine(now, w)
		} else {
			switch w.Meta.state {
			case stateE, stateM:
				l.Stats.ReadHitPrivate.Inc()
				l.timers.AtVal(now+l.hitLat, cb, memsys.GetWord(w.Data[:], addr))
				return true
			case stateR:
				l.Stats.ReadHitSRO.Inc()
				l.timers.AtVal(now+l.hitLat, cb, memsys.GetWord(w.Data[:], addr))
				return true
			case stateS:
				if w.Meta.acnt < l.cfg.MaxAccesses() {
					// Bounded Shared hit: stale data is permitted until
					// the access budget forces a re-request (write
					// propagation, §3.1).
					w.Meta.acnt++
					l.Stats.ReadHitShared.Inc()
					l.timers.AtVal(now+l.hitLat, cb, memsys.GetWord(w.Data[:], addr))
					return true
				}
				l.Stats.ReadMissShared.Inc()
				l.rdBuf = readTx{addr: blk, wordAddr: addr, cb: cb, issued: now}
				l.rd = &l.rdBuf
				l.send(now, coherence.Msg{Type: coherence.MsgGetS, Dst: l.home(addr), Addr: blk, Requestor: l.id}, nil)
				return true
			}
		}
	}
	l.Stats.ReadMissInvalid.Inc()
	l.rdBuf = readTx{addr: blk, wordAddr: addr, cb: cb, issued: now}
	l.rd = &l.rdBuf
	l.send(now, coherence.Msg{Type: coherence.MsgGetS, Dst: l.home(addr), Addr: blk, Requestor: l.id}, nil)
	return true
}

// Store implements coherence.CorePort.
func (l *L1) Store(now sim.Cycle, addr uint64, val uint64, cb func()) bool {
	blk := coherence.BlockAddr(addr)
	if l.wr != nil {
		return false
	}
	if l.rd != nil && l.rd.addr == blk {
		return false
	}
	if w := l.cache.Lookup(addr); w != nil && (w.Meta.state == stateE || w.Meta.state == stateM) {
		if l.evictFault != nil && l.evictFault() {
			l.evictLine(now, w) // fall through to the write miss below
		} else {
			l.trans(blk, w.Meta.state, stateM)
			w.Meta.state = stateM
			memsys.PutWord(w.Data[:], addr, val)
			w.Meta.ts = l.assignTS(now)
			w.Meta.tsOwn = true
			l.Stats.WriteHitPrivate.Inc()
			l.timers.AtDone(now+1, cb)
			return true
		}
	}
	l.countWriteMiss(blk)
	l.wrBuf = writeTx{addr: blk, wordAddr: addr, val: val, storeCb: cb, issued: now}
	l.wr = &l.wrBuf
	l.send(now, coherence.Msg{Type: coherence.MsgGetX, Dst: l.home(addr), Addr: blk, Requestor: l.id}, nil)
	return true
}

// RMW implements coherence.CorePort.
func (l *L1) RMW(now sim.Cycle, addr uint64, f func(uint64) (uint64, bool), cb func(uint64)) bool {
	blk := coherence.BlockAddr(addr)
	if l.wr != nil {
		return false
	}
	if l.rd != nil && l.rd.addr == blk {
		return false
	}
	if w := l.cache.Lookup(addr); w != nil && (w.Meta.state == stateE || w.Meta.state == stateM) {
		if l.evictFault != nil && l.evictFault() {
			l.evictLine(now, w) // fall through to the write miss below
		} else {
			old := memsys.GetWord(w.Data[:], addr)
			if nv, doWrite := f(old); doWrite {
				memsys.PutWord(w.Data[:], addr, nv)
				l.trans(blk, w.Meta.state, stateM)
				w.Meta.state = stateM
				w.Meta.ts = l.assignTS(now)
				w.Meta.tsOwn = true
			}
			l.Stats.WriteHitPrivate.Inc()
			l.Stats.RMWLat.Observe(int64(l.hitLat))
			l.timers.AtVal(now+l.hitLat, cb, old)
			return true
		}
	}
	l.countWriteMiss(blk)
	l.wrBuf = writeTx{addr: blk, wordAddr: addr, isRMW: true, f: f, rmwCb: cb, issued: now}
	l.wr = &l.wrBuf
	l.send(now, coherence.Msg{Type: coherence.MsgGetX, Dst: l.home(addr), Addr: blk, Requestor: l.id}, nil)
	return true
}

func (l *L1) countWriteMiss(blk uint64) {
	w := l.cache.Peek(blk)
	switch {
	case w == nil:
		l.Stats.WriteMissInvalid.Inc()
	case w.Meta.state == stateS:
		l.Stats.WriteMissShared.Inc()
	case w.Meta.state == stateR:
		l.Stats.WriteMissSRO.Inc()
	default:
		l.Stats.WriteMissInvalid.Inc()
	}
}

// Fence implements coherence.CorePort: fences unconditionally
// self-invalidate Shared lines (§3.6).
func (l *L1) Fence(now sim.Cycle, cb func()) bool {
	l.selfInvalidate(coherence.CauseFence)
	l.timers.AtDone(now+1, cb)
	return true
}

// noteShared records w's transition into Shared in the sweep index.
func (l *L1) noteShared(w *memsys.Way[l1Line]) {
	if !w.Meta.listed {
		w.Meta.listed = true
		l.sharedWays = append(l.sharedWays, w)
	}
}

// selfInvalidate drops every Shared line (SharedRO, Exclusive and
// Modified lines survive). The walk covers only the shared-way index:
// listed ways that since left stateS (written, recycled, downgraded)
// are skipped, and an empty index proves the sweep would drop nothing.
func (l *L1) selfInvalidate(cause coherence.SelfInvCause) {
	l.Stats.SelfInvEvents[cause].Inc()
	if len(l.sharedWays) == 0 {
		return
	}
	var dropped int64
	for _, w := range l.sharedWays {
		if w.Meta.listed && w.Valid && w.Meta.state == stateS {
			l.trans(w.Tag, stateS, 0)
			l.cache.Invalidate(w)
			dropped++
		}
		w.Meta.listed = false
	}
	l.sharedWays = l.sharedWays[:0]
	l.Stats.SelfInvLines.Add(dropped)
}

// maybeSelfInvalidate applies the potential-acquire detection rules
// (§3.1 basic; §3.3 transitive reduction; §3.4 SharedRO; §3.5 epochs)
// to an incoming data response.
func (l *L1) maybeSelfInvalidate(m *coherence.Msg, sro bool) {
	l.Stats.DataResponses.Inc()
	if !sro {
		if m.Owner == l.id {
			return // last writer is this core: no invalidation needed
		}
		if !l.cfg.Timestamps() {
			// Basic protocol: every remote data response is treated as
			// a potential acquire.
			l.selfInvalidate(coherence.CauseInvalidTS)
			return
		}
		writer := int(m.Owner)
		if writer < 0 || writer >= l.cores {
			l.selfInvalidate(coherence.CauseInvalidTS)
			return
		}
		if m.Epoch != l.epochL1[writer] {
			// Missed or raced a timestamp reset: same action as the
			// reset message (§3.5 epoch-ids), then re-evaluate.
			l.tsL1.drop(writer)
			l.epochL1[writer] = m.Epoch
		}
		if !m.TSValid || m.TS == tsInvalid || m.TS == tsSmallest {
			l.selfInvalidate(coherence.CauseInvalidTS)
			return
		}
		last, ok := l.tsL1.get(writer)
		l.tsL1.update(writer, m.TS)
		if !ok {
			// Never read from this writer (or entry lost to a reset).
			l.selfInvalidate(coherence.CauseInvalidTS)
			return
		}
		acquire := m.TS > last || (l.cfg.WriteGroupBits > 0 && m.TS == last)
		if acquire {
			l.selfInvalidate(coherence.CauseAcquireNonSRO)
		}
		return
	}

	// SharedRO response: timestamps come from the L2 tile (§3.4).
	if !l.cfg.Timestamps() {
		l.selfInvalidate(coherence.CauseInvalidTS)
		return
	}
	tile := coherence.Router(m.Src, l.cores)
	if m.Epoch != l.epochL2[tile] {
		l.tsL2.drop(tile)
		l.epochL2[tile] = m.Epoch
	}
	if !m.TSValid || m.TS <= tsSmallest {
		l.selfInvalidate(coherence.CauseInvalidTS)
		return
	}
	last, ok := l.tsL2.get(tile)
	l.tsL2.update(tile, m.TS)
	if !ok {
		l.selfInvalidate(coherence.CauseInvalidTS)
		return
	}
	if m.TS > last {
		l.selfInvalidate(coherence.CauseAcquireSRO)
	}
}

// ---- Message handling ----

func (l *L1) handle(now sim.Cycle, m *coherence.Msg) {
	switch m.Type {
	case coherence.MsgDataE:
		if l.wr != nil && l.wr.addr == m.Addr {
			l.maybeSelfInvalidate(m, false)
			l.completeWrite(now, m)
			return
		}
		l.maybeSelfInvalidate(m, false)
		l.completeRead(now, m, stateE)
		l.send(now, coherence.Msg{Type: coherence.MsgAck, Dst: l.home(m.Addr), Addr: m.Addr}, nil)

	case coherence.MsgDataS:
		l.maybeSelfInvalidate(m, false)
		l.completeRead(now, m, stateS)

	case coherence.MsgDataOwner:
		if l.wr != nil && l.wr.addr == m.Addr {
			l.maybeSelfInvalidate(m, false)
			l.completeWrite(now, m)
			return
		}
		l.maybeSelfInvalidate(m, false)
		l.completeRead(now, m, stateS)

	case coherence.MsgDataSRO:
		l.maybeSelfInvalidate(m, true)
		l.completeRead(now, m, stateR)

	case coherence.MsgFwdGetS:
		l.handleFwdGetS(now, m)

	case coherence.MsgFwdGetX:
		l.handleFwdGetX(now, m)

	case coherence.MsgInv:
		l.handleInv(now, m)

	case coherence.MsgPutAck:
		if e, ok := l.evict[m.Addr]; ok {
			delete(l.evict, m.Addr)
			l.evictFree = append(l.evictFree, e)
		}

	case coherence.MsgTSResetL1:
		src := int(m.Src)
		l.tsL1.drop(src)
		l.epochL1[src] = m.Epoch

	case coherence.MsgTSResetL2:
		tile := coherence.Router(m.Src, l.cores)
		l.tsL2.drop(tile)
		l.epochL2[tile] = m.Epoch

	default:
		panic(fmt.Sprintf("tsocc: L1 %d cycle %d: unexpected message %s", l.id, now, m))
	}
}

func (l *L1) completeWrite(now sim.Cycle, m *coherence.Msg) {
	tx := l.wr
	w, from := l.install(now, tx.addr, m.Data)
	l.trans(tx.addr, from, stateM)
	w.Meta.state = stateM
	old := memsys.GetWord(w.Data[:], tx.wordAddr)
	wrote := true
	if tx.isRMW {
		nv, doWrite := tx.f(old)
		if doWrite {
			memsys.PutWord(w.Data[:], tx.wordAddr, nv)
		}
		wrote = doWrite
		l.Stats.RMWLat.Observe(int64(now - tx.issued))
	} else {
		memsys.PutWord(w.Data[:], tx.wordAddr, tx.val)
	}
	ackTS := tsInvalid
	if wrote {
		ackTS = l.assignTS(now)
		w.Meta.ts = ackTS
		w.Meta.tsOwn = true
	}
	// Finalize with the L2 (it stays busy until this ack, serializing
	// writers and carrying the new write's timestamp, §3.2).
	l.send(now, coherence.Msg{Type: coherence.MsgAck, Dst: l.home(tx.addr), Addr: tx.addr,
		TS: ackTS, TSValid: wrote && l.cfg.Timestamps(), Epoch: l.epoch}, nil)
	if l.missSink != nil {
		l.missSink(false, now-tx.issued)
	}
	l.wr = nil
	if tx.isRMW {
		tx.rmwCb(old)
	} else {
		tx.storeCb()
	}
}

func (l *L1) completeRead(now sim.Cycle, m *coherence.Msg, state int) {
	tx := l.rd
	if tx == nil || tx.addr != m.Addr {
		panic(fmt.Sprintf("tsocc: L1 %d cycle %d: data response without read tx %s", l.id, now, m))
	}
	val := memsys.GetWord(m.Data, tx.wordAddr)
	// Only owner-forwarded data can be overtaken by a later L2
	// invalidation; the L2's own responses are FIFO-fresh.
	install := !tx.squashed || m.Type != coherence.MsgDataOwner
	if state == stateS && l.cfg.MaxAccesses() == 0 {
		// CC-shared-to-L2: Shared data is never cached locally.
		install = false
	}
	if install {
		w, from := l.install(now, m.Addr, m.Data)
		l.trans(m.Addr, from, state)
		w.Meta.state = state
		w.Meta.acnt = 0
		w.Meta.ts = m.TS
		w.Meta.tsOwn = false
		if state == stateS {
			l.noteShared(w)
		}
	} else if w := l.cache.Peek(m.Addr); w != nil && w.Meta.state == stateS {
		// Not re-installing (always-miss mode) but a stale Shared copy
		// exists from before: refresh it rather than leaving it stale.
		copy(w.Data[:], m.Data)
		w.Meta.acnt = 0
	}
	if l.missSink != nil {
		l.missSink(true, now-tx.issued)
	}
	l.rd = nil
	tx.cb(val)
}

// install places data for addr, returning the way and the state the
// line held before this fill (0 for a fresh install) so callers can
// report the transition once they assign the new state.
func (l *L1) install(now sim.Cycle, addr uint64, data []byte) (*memsys.Way[l1Line], int) {
	if w := l.cache.Peek(addr); w != nil {
		copy(w.Data[:], data)
		w.Meta.acnt = 0
		return w, w.Meta.state
	}
	w := l.cache.Victim(addr)
	if w == nil {
		panic(fmt.Sprintf("tsocc: L1 %d cycle %d: no victim for %#x", l.id, now, addr))
	}
	if w.Valid {
		l.evictLine(now, w)
	}
	l.cache.Install(w, addr)
	copy(w.Data[:], data)
	return w, 0
}

func (l *L1) evictLine(now sim.Cycle, w *memsys.Way[l1Line]) {
	addr := w.Tag
	l.trans(addr, w.Meta.state, 0)
	switch w.Meta.state {
	case stateS, stateR:
		// Shared and SharedRO evictions are silent (§3.2, §3.4).
	case stateE:
		l.evict[addr] = l.newEvict(w.Data[:], false, w.Meta.ts, w.Meta.tsOwn)
		l.send(now, coherence.Msg{Type: coherence.MsgPutE, Dst: l.home(addr), Addr: addr}, nil)
	case stateM:
		ts, valid := l.sendableTS(&w.Meta)
		l.evict[addr] = l.newEvict(w.Data[:], true, w.Meta.ts, w.Meta.tsOwn)
		l.send(now, coherence.Msg{Type: coherence.MsgPutM, Dst: l.home(addr), Addr: addr,
			Dirty: true, TS: ts, TSValid: valid, Epoch: l.epoch}, w.Data[:])
	}
	l.cache.Invalidate(w)
}

func (l *L1) handleFwdGetS(now sim.Cycle, m *coherence.Msg) {
	if w := l.cache.Peek(m.Addr); w != nil && (w.Meta.state == stateE || w.Meta.state == stateM) {
		dirty := w.Meta.state == stateM
		ts, valid := l.sendableTS(&w.Meta)
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Owner: l.id, TS: ts, TSValid: valid, Epoch: l.epoch, Dirty: dirty}, w.Data[:])
		l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: l.home(m.Addr), Addr: m.Addr,
			Dirty: dirty, TS: ts, TSValid: valid, Epoch: l.epoch}, w.Data[:])
		// Downgrade to Shared, keeping the copy with a fresh budget.
		l.trans(m.Addr, w.Meta.state, stateS)
		w.Meta.state = stateS
		w.Meta.acnt = 0
		l.noteShared(w)
		if l.cfg.MaxAccesses() == 0 {
			l.trans(m.Addr, stateS, 0)
			l.cache.Invalidate(w)
		}
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		meta := l1Line{ts: e.ts, tsOwn: e.tsOwn}
		ts, valid := l.sendableTS(&meta)
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Owner: l.id, TS: ts, TSValid: valid, Epoch: l.epoch, Dirty: e.dirty}, e.data)
		l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: l.home(m.Addr), Addr: m.Addr,
			Dirty: e.dirty, TS: ts, TSValid: valid, Epoch: l.epoch, NoCopy: true}, e.data)
		return
	}
	panic(fmt.Sprintf("tsocc: L1 %d cycle %d: FwdGetS for absent line %s", l.id, now, m))
}

func (l *L1) handleFwdGetX(now sim.Cycle, m *coherence.Msg) {
	if w := l.cache.Peek(m.Addr); w != nil && (w.Meta.state == stateE || w.Meta.state == stateM) {
		ts, valid := l.sendableTS(&w.Meta)
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Owner: l.id, TS: ts, TSValid: valid, Epoch: l.epoch,
			Dirty: w.Meta.state == stateM}, w.Data[:])
		l.trans(m.Addr, w.Meta.state, 0)
		l.cache.Invalidate(w)
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		meta := l1Line{ts: e.ts, tsOwn: e.tsOwn}
		ts, valid := l.sendableTS(&meta)
		l.send(now, coherence.Msg{Type: coherence.MsgDataOwner, Dst: m.Requestor, Addr: m.Addr,
			Owner: l.id, TS: ts, TSValid: valid, Epoch: l.epoch, Dirty: e.dirty}, e.data)
		return
	}
	panic(fmt.Sprintf("tsocc: L1 %d cycle %d: FwdGetX for absent line %s", l.id, now, m))
}

func (l *L1) handleInv(now sim.Cycle, m *coherence.Msg) {
	l.Stats.InvalidationsReceived.Inc()
	if l.rd != nil && l.rd.addr == m.Addr {
		l.rd.squashed = true
	}
	if w := l.cache.Peek(m.Addr); w != nil {
		if w.Meta.state == stateE || w.Meta.state == stateM {
			// Directory recall (L2 eviction of an Exclusive line).
			ts, valid := l.sendableTS(&w.Meta)
			l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: m.Src, Addr: m.Addr,
				Dirty: w.Meta.state == stateM,
				TS:    ts, TSValid: valid, Epoch: l.epoch}, w.Data[:])
			l.trans(m.Addr, w.Meta.state, 0)
			l.cache.Invalidate(w)
			return
		}
		// SharedRO broadcast invalidation (or a stale Shared copy).
		l.trans(m.Addr, w.Meta.state, 0)
		l.cache.Invalidate(w)
		l.send(now, coherence.Msg{Type: coherence.MsgInvAck, Dst: m.Src, Addr: m.Addr}, nil)
		return
	}
	if e, ok := l.evict[m.Addr]; ok {
		e.transferred = true
		meta := l1Line{ts: e.ts, tsOwn: e.tsOwn}
		ts, valid := l.sendableTS(&meta)
		l.send(now, coherence.Msg{Type: coherence.MsgWBData, Dst: m.Src, Addr: m.Addr,
			Dirty: e.dirty, TS: ts, TSValid: valid, Epoch: l.epoch}, e.data)
		return
	}
	l.send(now, coherence.Msg{Type: coherence.MsgInvAck, Dst: m.Src, Addr: m.Addr}, nil)
}

// PrewarmStorage implements coherence.StoragePrewarmer.
func (l *L1) PrewarmStorage() { l.cache.Prewarm() }
