// Package obs is the simulator's observability layer: a metrics
// registry (counters, gauges, power-of-two-bucket histograms), a
// Chrome-trace-event timeline sink, per-core stall attribution, and
// pprof label plumbing.
//
// Two contracts govern every hook the rest of the tree installs:
//
//   - Zero cost when disabled. Every hot-path call site is nil-guarded
//     (one predictable branch) and TestHotPathZeroAlloc pins the
//     disabled paths at 0 allocs/op.
//   - Zero perturbation when enabled. Observation reads simulation
//     state and writes only obs-owned storage; it never feeds a value
//     back into scheduling, protocol, or timing decisions. The on-vs-off
//     fingerprint gate (TestObsOnOffBitIdentical) enforces this across
//     engine mode × batched core × shard count.
//
// Cycle timestamps cross this package's API as plain int64 so obs can
// sit below internal/sim in the import graph (sim itself installs obs
// hooks).
package obs

import (
	"fmt"
	"os"
	"strings"
)

// Obs bundles the per-run observability configuration carried on
// config.System. A nil *Obs (the default) means fully disabled; each
// field arms one subsystem independently.
type Obs struct {
	// Metrics, when non-nil, collects counters/gauges/histograms from
	// every component during machine construction.
	Metrics *Registry
	// Timeline, when non-nil, receives Chrome trace-event spans.
	Timeline *Timeline
	// ProfileLabels wraps shard goroutines and per-component tick
	// dispatch in runtime/pprof labels so -cpuprofile output
	// attributes host time to shard/component.
	ProfileLabels bool
}

// Enabled reports whether any observation subsystem is armed.
func (o *Obs) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Timeline != nil || o.ProfileLabels)
}

// FromPaths builds the Obs configuration implied by the shared CLI
// flags: -metrics arms the registry, -timeline arms the trace sink.
// Both empty returns nil (observability fully disabled).
func FromPaths(metricsPath, timelinePath string) *Obs {
	if metricsPath == "" && timelinePath == "" {
		return nil
	}
	o := &Obs{}
	if metricsPath != "" {
		o.Metrics = NewRegistry()
	}
	if timelinePath != "" {
		o.Timeline = NewTimeline()
	}
	return o
}

// WriteFiles dumps the armed sinks after a run: the registry to
// metricsPath (JSON when the path ends in .json, text otherwise) and
// the timeline — flushed at finalCycle so every span is closed even
// when the engine terminated early — to timelinePath. Paths matching
// the disarmed sinks are ignored.
func (o *Obs) WriteFiles(metricsPath, timelinePath string, finalCycle int64) error {
	if o == nil {
		return nil
	}
	if o.Metrics != nil && metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		if strings.HasSuffix(metricsPath, ".json") {
			err = o.Metrics.WriteJSON(f)
		} else {
			err = o.Metrics.WriteText(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: metrics %s: %w", metricsPath, err)
		}
	}
	if o.Timeline != nil && timelinePath != "" {
		o.Timeline.Flush(finalCycle)
		f, err := os.Create(timelinePath)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		err = o.Timeline.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: timeline %s: %w", timelinePath, err)
		}
	}
	return nil
}

// StallReason classifies why a core could not retire work on a cycle.
// The taxonomy is documented in README "Observability".
type StallReason uint8

const (
	// StallPortBusy: the L1 port rejected the request (MSHR busy,
	// directory conflict) and the core is retrying.
	StallPortBusy StallReason = iota
	// StallWBFull: a store found the write buffer full.
	StallWBFull
	// StallFenceDrain: a fence or atomic is draining the write buffer,
	// or a fence is waiting for its completion callback.
	StallFenceDrain
	// StallMissOutstanding: a load or RMW is waiting on the memory
	// system (the classic miss-latency stall).
	StallMissOutstanding
	// StallBatchInterior: cycles skipped inside a batched straight-line
	// run (BatchedCore) — retired compute, not a true stall, but
	// attributed so the per-core cycle budget sums up.
	StallBatchInterior
	// NumStallReasons sizes per-reason arrays.
	NumStallReasons
	// StallNone marks "no stall episode open" in core-side state.
	StallNone StallReason = NumStallReasons
)

var stallNames = [NumStallReasons]string{
	"port_busy",
	"wb_full",
	"fence_drain",
	"miss_outstanding",
	"batch_interior",
}

// String returns the snake_case taxonomy name used in metric series.
func (r StallReason) String() string {
	if r < NumStallReasons {
		return stallNames[r]
	}
	return "none"
}

// CoreStalls holds one core's per-reason stall histograms: each
// observation is one stall episode, its value the episode length in
// cycles (so Count = episodes and Sum = total stalled cycles per
// reason). A nil *CoreStalls ignores observations.
type CoreStalls struct {
	h [NumStallReasons]*Hist
}

// NewCoreStalls registers a per-reason stall histogram set under
// prefix (series "<prefix>.stall.<reason>").
func (r *Registry) NewCoreStalls(prefix string) *CoreStalls {
	s := &CoreStalls{}
	for i := StallReason(0); i < NumStallReasons; i++ {
		s.h[i] = r.NewHist(prefix + ".stall." + i.String())
	}
	return s
}

// Observe records one stall episode of the given length.
func (s *CoreStalls) Observe(reason StallReason, cycles int64) {
	if s == nil || reason >= NumStallReasons {
		return
	}
	s.h[reason].Observe(cycles)
}
