package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

func namedCounter(name string, v int64) *stats.Counter {
	var c stats.Counter
	c.SetName(name)
	c.Add(v)
	return &c
}

// TestRegistryCounterMerge: same-named counters (per-shard, per-bank
// instances) sum at dump time; CounterNames stays per-registration so
// the unnamed-counter test can see every instance.
func TestRegistryCounterMerge(t *testing.T) {
	r := obs.NewRegistry()
	r.RegisterCounter(namedCounter("mesh.flits", 3), namedCounter("mesh.flits", 4))
	r.RegisterCounter(namedCounter("l1.hits", 10))
	r.RegisterCounter(nil) // ignored

	got := r.Counters()
	want := []obs.MetricValue{{Name: "l1.hits", Value: 10}, {Name: "mesh.flits", Value: 7}}
	if len(got) != len(want) {
		t.Fatalf("Counters() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Counters()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if names := r.CounterNames(); len(names) != 3 {
		t.Errorf("CounterNames() = %v, want one entry per registration", names)
	}
}

// TestRegistryGaugeMax: same-named gauges keep the maximum (per-shard
// high-water marks dump as the global high-water mark).
func TestRegistryGaugeMax(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("q.depth_max", func() int64 { return 5 })
	r.Gauge("q.depth_max", func() int64 { return 9 })
	r.Gauge("q.depth_max", func() int64 { return 2 })
	g := r.Gauges()
	if len(g) != 1 || g[0].Value != 9 {
		t.Fatalf("Gauges() = %v, want [{q.depth_max 9}]", g)
	}
}

// TestHistMergeQuantiles: same-named histograms (one per owning shard)
// merge at dump time; quantile upper bounds follow the power-of-two
// bucket boundaries and clamp to the observed max.
func TestHistMergeQuantiles(t *testing.T) {
	r := obs.NewRegistry()
	a := r.NewHist("lat")
	b := r.NewHist("lat")
	for i := 0; i < 50; i++ {
		a.Observe(3) // bucket 2: [2,4)
	}
	b.Observe(0)    // bucket 0: exactly 0
	b.Observe(-7)   // clamps to 0
	b.Observe(1000) // bucket 10: [512,1024)

	var nilHist *obs.Hist
	nilHist.Observe(42) // nil receiver is a no-op

	s := r.HistSnapshotFor("lat")
	if s.Count != 53 || s.Sum != 150+1000 || s.Min != 0 || s.Max != 1000 {
		t.Fatalf("merged snapshot = %+v", s)
	}
	if m := s.Mean(); m < 21.6 || m > 21.8 {
		t.Errorf("Mean() = %v, want ~21.7", m)
	}
	// The median observation is a 3, in bucket [2,4): upper bound 3.
	if q := s.Quantile(0.50); q != 3 {
		t.Errorf("Quantile(0.5) = %d, want 3", q)
	}
	// The 99th-percentile rank lands on the single 1000 in [512,1024):
	// the bucket top (1023) clamps to the observed max.
	if q := s.Quantile(0.99); q != 1000 {
		t.Errorf("Quantile(0.99) = %d, want 1000", q)
	}
	if q := s.Quantile(0.0); q != 0 {
		t.Errorf("Quantile(0) = %d, want 0 (zero bucket)", q)
	}

	empty := r.HistSnapshotFor("no.such.series")
	if empty.Count != 0 || empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Errorf("missing series should snapshot as zero, got %+v", empty)
	}
}

// TestRegistryWriteJSON: the JSON dump parses and carries every series
// under its section with the documented field names.
func TestRegistryWriteJSON(t *testing.T) {
	r := obs.NewRegistry()
	r.RegisterCounter(namedCounter("c.one", 1))
	r.Gauge("g.one", func() int64 { return 7 })
	r.NewHist("h.one").Observe(8)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Hists    map[string]struct {
			Count   int64   `json:"count"`
			Sum     int64   `json:"sum"`
			Mean    float64 `json:"mean"`
			P99     int64   `json:"p99_upper"`
			Buckets []int64 `json:"pow2_buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Counters["c.one"] != 1 || d.Gauges["g.one"] != 7 {
		t.Errorf("scalar series wrong: %+v", d)
	}
	h, ok := d.Hists["h.one"]
	if !ok || h.Count != 1 || h.Sum != 8 || h.P99 != 8 {
		t.Errorf("histogram series wrong: %+v", h)
	}
	// 8 has bit length 4: buckets 0..4 present after trailing trim.
	if len(h.Buckets) != 5 || h.Buckets[4] != 1 {
		t.Errorf("pow2_buckets = %v, want observation in bucket 4", h.Buckets)
	}
}

// TestRegistryWriteText: one line per series with the section prefix.
func TestRegistryWriteText(t *testing.T) {
	r := obs.NewRegistry()
	r.RegisterCounter(namedCounter("c.one", 2))
	r.Gauge("g.one", func() int64 { return 3 })
	r.NewHist("h.one").Observe(4)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter c.one", "gauge   g.one", "hist    h.one", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

// TestCoreStalls: NewCoreStalls registers one series per taxonomy
// reason under the prefix, episodes land in the right series, and a
// nil *CoreStalls ignores observations (the disabled hot path).
func TestCoreStalls(t *testing.T) {
	r := obs.NewRegistry()
	s := r.NewCoreStalls("core3")
	s.Observe(obs.StallWBFull, 12)
	s.Observe(obs.StallWBFull, 4)
	s.Observe(obs.StallMissOutstanding, 90)
	s.Observe(obs.StallNone, 1) // out-of-range sentinel: ignored

	var nilStalls *obs.CoreStalls
	nilStalls.Observe(obs.StallPortBusy, 5)

	wb := r.HistSnapshotFor("core3.stall.wb_full")
	if wb.Count != 2 || wb.Sum != 16 {
		t.Errorf("wb_full = %+v, want 2 episodes / 16 cycles", wb)
	}
	miss := r.HistSnapshotFor("core3.stall.miss_outstanding")
	if miss.Count != 1 || miss.Sum != 90 {
		t.Errorf("miss_outstanding = %+v, want 1 episode / 90 cycles", miss)
	}
	// Every taxonomy reason registers, observed or not.
	for _, reason := range []string{"port_busy", "wb_full", "fence_drain", "miss_outstanding", "batch_interior"} {
		found := false
		for _, h := range r.Hists() {
			if h.Name == "core3.stall."+reason {
				found = true
			}
		}
		if !found {
			t.Errorf("series core3.stall.%s not registered", reason)
		}
	}
}
