package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/stats"
)

// histBuckets is the fixed bucket count: bucket i holds values v with
// bits.Len64(v) == i, i.e. bucket 0 is exactly 0 and bucket i>0 spans
// [2^(i-1), 2^i). 64-bit values need at most Len64 = 64.
const histBuckets = 65

// Hist is a fixed-bucket power-of-two histogram. No floats touch the
// observe path and a nil receiver ignores observations, so hot-path
// call sites cost one branch when disabled. A Hist must be observed
// from a single goroutine (the owning component's shard); the registry
// merges same-named instances only at dump time, after the run.
type Hist struct {
	name    string
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records v (negative values clamp to 0).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	h.buckets[b]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the sum of observed values.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry collects the run's metric series. Registration happens
// single-threaded at machine-build time; observation happens on the
// owning component's goroutine; reads (dumps) happen after the run.
// The mutex covers registration only — post-run reads race with
// nothing.
type Registry struct {
	mu       sync.Mutex
	counters []*stats.Counter
	gauges   []gaugeEntry
	hists    []*Hist
}

type gaugeEntry struct {
	name string
	fn   func() int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterCounter adds already-owned stats.Counters to the dump set.
// The counter's own name (stats.Counter.SetName) is the series name;
// same-named counters (per-shard mesh counters, per-bank memory
// counters) are summed at dump time. Nil counters are ignored.
func (r *Registry) RegisterCounter(cs ...*stats.Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		if c != nil {
			r.counters = append(r.counters, c)
		}
	}
}

// Gauge registers a named value read at dump time (after the run), for
// state that is cheaper to inspect once than to track continuously
// (queue high-water marks, barrier wait clocks).
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gaugeEntry{name: name, fn: fn})
}

// NewHist registers and returns a histogram. Each call returns a fresh
// instance — components on different shards each own one — and
// same-named instances merge at dump time.
func (r *Registry) NewHist(name string) *Hist {
	h := &Hist{name: name}
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// MetricValue is one named scalar in a dump snapshot.
type MetricValue struct {
	Name  string
	Value int64
}

// HistSnapshot is one merged histogram in a dump snapshot.
type HistSnapshot struct {
	Name  string
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	// Buckets[i] counts values v with bits.Len64(v) == i: bucket 0 is
	// exactly 0, bucket i>0 spans [2^(i-1), 2^i). Trailing empty
	// buckets are trimmed.
	Buckets []int64
}

// Mean reports the arithmetic mean observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile reports an upper bound for the q-quantile (q in [0,1]) from
// the bucket boundaries: the top of the bucket holding the q-th
// observation, clamped to Max.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			top := int64(1)<<uint(i) - 1
			if top > s.Max {
				top = s.Max
			}
			return top
		}
	}
	return s.Max
}

// Counters returns the registered counters as name/value pairs,
// same-named counters summed, sorted by name.
func (r *Registry) Counters() []MetricValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	sums := make(map[string]int64, len(r.counters))
	for _, c := range r.counters {
		sums[c.Name()] += c.Value()
	}
	return sortedValues(sums)
}

// CounterNames returns the name of every registered counter, one entry
// per registration (not deduplicated), for the no-unnamed-counters
// test.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.counters))
	for i, c := range r.counters {
		names[i] = c.Name()
	}
	return names
}

// Gauges evaluates the registered gauges, sorted by name; same-named
// gauges (per-shard queue high-water marks) keep the maximum.
func (r *Registry) Gauges() []MetricValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	vals := make(map[string]int64, len(r.gauges))
	for _, g := range r.gauges {
		v := g.fn()
		if old, ok := vals[g.name]; !ok || v > old {
			vals[g.name] = v
		}
	}
	return sortedValues(vals)
}

// Hists returns the registered histograms merged by name, sorted.
func (r *Registry) Hists() []HistSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	merged := make(map[string]*HistSnapshot)
	for _, h := range r.hists {
		s, ok := merged[h.name]
		if !ok {
			s = &HistSnapshot{Name: h.name, Buckets: make([]int64, histBuckets)}
			merged[h.name] = s
		}
		if h.count > 0 {
			if s.Count == 0 || h.min < s.Min {
				s.Min = h.min
			}
			if h.max > s.Max {
				s.Max = h.max
			}
		}
		s.Count += h.count
		s.Sum += h.sum
		for i, n := range h.buckets {
			s.Buckets[i] += n
		}
	}
	out := make([]HistSnapshot, 0, len(merged))
	for _, s := range merged {
		last := 0
		for i, n := range s.Buckets {
			if n != 0 {
				last = i + 1
			}
		}
		s.Buckets = s.Buckets[:last]
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistSnapshotFor returns the merged snapshot for one series name
// (zero-valued if the series does not exist) — the benchfmt bridge.
func (r *Registry) HistSnapshotFor(name string) HistSnapshot {
	for _, s := range r.Hists() {
		if s.Name == name {
			return s
		}
	}
	return HistSnapshot{Name: name}
}

func sortedValues(m map[string]int64) []MetricValue {
	out := make([]MetricValue, 0, len(m))
	for n, v := range m {
		out = append(out, MetricValue{Name: n, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the registry as aligned name/value text: counters,
// then gauges, then histograms with count/sum/mean/p50/p99/max.
func (r *Registry) WriteText(w io.Writer) error {
	for _, c := range r.Counters() {
		if _, err := fmt.Fprintf(w, "counter %-44s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range r.Gauges() {
		if _, err := fmt.Fprintf(w, "gauge   %-44s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range r.Hists() {
		if _, err := fmt.Fprintf(w, "hist    %-44s count=%d sum=%d mean=%.2f p50<=%d p99<=%d max=%d\n",
			h.Name, h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max); err != nil {
			return err
		}
	}
	return nil
}

type jsonHist struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Mean    float64 `json:"mean"`
	P50     int64   `json:"p50_upper"`
	P99     int64   `json:"p99_upper"`
	Buckets []int64 `json:"pow2_buckets"`
}

type jsonDump struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]jsonHist `json:"histograms"`
}

// WriteJSON renders the registry as one JSON document (map keys are
// emitted sorted by encoding/json, so dumps are diffable).
func (r *Registry) WriteJSON(w io.Writer) error {
	d := jsonDump{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]jsonHist{},
	}
	for _, c := range r.Counters() {
		d.Counters[c.Name] = c.Value
	}
	for _, g := range r.Gauges() {
		d.Gauges[g.Name] = g.Value
	}
	for _, h := range r.Hists() {
		d.Histograms[h.Name] = jsonHist{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Mean: h.Mean(), P50: h.Quantile(0.50), P99: h.Quantile(0.99),
			Buckets: h.Buckets,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
