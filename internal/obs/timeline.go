package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Well-known timeline process IDs. Shard k's component tick spans live
// on pid k (serial runs use shard 0); the coordinator, mesh, and
// directory-transaction tracks get dedicated processes so Perfetto
// groups them.
const (
	PidEngine = 900 // shard epoch + barrier spans
	PidMesh   = 901 // message send→deliver arrows, one thread per router
	PidTx     = 902 // directory-transaction async spans, one thread per tile
)

// Event is one Chrome trace-event (the JSON Array Format understood by
// chrome://tracing and Perfetto). Timestamps are microseconds in the
// viewer; the simulator maps one cycle to one microsecond.
type Event struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Doc is the emitted document shape ({"traceEvents": [...]}).
type Doc struct {
	TraceEvents []Event `json:"traceEvents"`
}

type tickRun struct {
	start, end int64 // [start, end) cycles of consecutive ticks
}

type asyncKey struct {
	cat string
	id  uint64
}

type asyncOpen struct {
	name     string
	pid, tid int
	count    int
	lastTs   int64
}

// Timeline accumulates trace events in memory and serializes them once
// after the run. Emission is mutex-serialized because sharded engine
// goroutines emit concurrently; event order in the file is therefore
// not deterministic, but viewers sort by timestamp and the
// no-perturbation contract covers only simulation state. Consecutive
// per-component ticks at adjacent cycles coalesce into one span, which
// bounds memory on long runs (components tick in bursts).
type Timeline struct {
	mu     sync.Mutex
	events []Event
	ticks  map[uint64]*tickRun // pid<<32|tid -> open coalesced tick span
	open   map[asyncKey]*asyncOpen
}

// NewTimeline builds an empty timeline sink.
func NewTimeline() *Timeline {
	return &Timeline{
		ticks: make(map[uint64]*tickRun),
		open:  make(map[asyncKey]*asyncOpen),
	}
}

func tickKey(pid, tid int) uint64 { return uint64(uint32(pid))<<32 | uint64(uint32(tid)) }

// ProcessName attaches viewer metadata naming a process track.
func (t *Timeline) ProcessName(pid int, name string) {
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// ThreadName attaches viewer metadata naming a thread track.
func (t *Timeline) ThreadName(pid, tid int, name string) {
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// Tick records one component dispatch at cycle now. Adjacent-cycle
// ticks of the same (pid, tid) extend the open span instead of
// emitting a new event.
func (t *Timeline) Tick(pid, tid int, now int64) {
	t.mu.Lock()
	k := tickKey(pid, tid)
	if run, ok := t.ticks[k]; ok {
		if now == run.end {
			run.end = now + 1
			t.mu.Unlock()
			return
		}
		t.events = append(t.events, Event{
			Name: "tick", Ph: "X", Ts: run.start, Dur: run.end - run.start, Pid: pid, Tid: tid,
		})
		run.start, run.end = now, now+1
	} else {
		t.ticks[k] = &tickRun{start: now, end: now + 1}
	}
	t.mu.Unlock()
}

// Span records a closed duration span.
func (t *Timeline) Span(pid, tid int, name string, start, end int64) {
	if end <= start {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Ph: "X", Ts: start, Dur: end - start, Pid: pid, Tid: tid,
	})
	t.mu.Unlock()
}

// Instant records a point-in-time marker (thread scope).
func (t *Timeline) Instant(pid, tid int, name string, ts int64) {
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Ph: "i", S: "t", Ts: ts, Pid: pid, Tid: tid,
	})
	t.mu.Unlock()
}

// AsyncBegin opens an async span identified by (cat, id). Async spans
// carry interleaved per-address transactions on one track without the
// strict nesting duration events require. Unbalanced begins are closed
// by Flush so early engine termination still emits well-formed JSON.
func (t *Timeline) AsyncBegin(cat string, id uint64, pid, tid int, name string, ts int64) {
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "b", Ts: ts, Pid: pid, Tid: tid, ID: hexID(id),
	})
	k := asyncKey{cat: cat, id: id}
	o, ok := t.open[k]
	if !ok {
		o = &asyncOpen{name: name, pid: pid, tid: tid}
		t.open[k] = o
	}
	o.count++
	if ts > o.lastTs {
		o.lastTs = ts
	}
	t.mu.Unlock()
}

// AsyncEnd closes the async span identified by (cat, id).
func (t *Timeline) AsyncEnd(cat string, id uint64, pid, tid int, name string, ts int64) {
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "e", Ts: ts, Pid: pid, Tid: tid, ID: hexID(id),
	})
	k := asyncKey{cat: cat, id: id}
	if o, ok := t.open[k]; ok {
		o.count--
		if o.count <= 0 {
			delete(t.open, k)
		}
	}
	t.mu.Unlock()
}

// FlowStart emits a 1-cycle anchor slice plus a flow-start event bound
// to it — viewers draw arrows only between slices, so every arrow
// endpoint gets its own anchor.
func (t *Timeline) FlowStart(id uint64, pid, tid int, name string, ts int64) {
	t.mu.Lock()
	t.events = append(t.events,
		Event{Name: name, Ph: "X", Ts: ts, Dur: 1, Pid: pid, Tid: tid},
		Event{Name: name, Cat: "msg", Ph: "s", Ts: ts, Pid: pid, Tid: tid, ID: hexID(id)},
	)
	t.mu.Unlock()
}

// FlowEnd emits the arrival anchor slice plus the flow-finish event
// (bp:"e" binds to the enclosing slice).
func (t *Timeline) FlowEnd(id uint64, pid, tid int, name string, ts int64) {
	t.mu.Lock()
	t.events = append(t.events,
		Event{Name: name, Ph: "X", Ts: ts, Dur: 1, Pid: pid, Tid: tid},
		Event{Name: name, Cat: "msg", Ph: "f", BP: "e", Ts: ts, Pid: pid, Tid: tid, ID: hexID(id)},
	)
	t.mu.Unlock()
}

// Flush closes every open tick span and unbalanced async span at
// finalCycle, so the document stays well-formed when the engine
// terminated early (deadlock, cycle limit). Safe to call repeatedly;
// emission may continue afterwards (later flushes close the rest).
func (t *Timeline) Flush(finalCycle int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]uint64, 0, len(t.ticks))
	for k := range t.ticks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		run := t.ticks[k]
		t.events = append(t.events, Event{
			Name: "tick", Ph: "X", Ts: run.start, Dur: run.end - run.start,
			Pid: int(k >> 32), Tid: int(uint32(k)),
		})
		delete(t.ticks, k)
	}
	aks := make([]asyncKey, 0, len(t.open))
	for k := range t.open {
		aks = append(aks, k)
	}
	sort.Slice(aks, func(i, j int) bool {
		if aks[i].cat != aks[j].cat {
			return aks[i].cat < aks[j].cat
		}
		return aks[i].id < aks[j].id
	})
	for _, k := range aks {
		o := t.open[k]
		ts := finalCycle
		if o.lastTs > ts {
			ts = o.lastTs
		}
		for ; o.count > 0; o.count-- {
			t.events = append(t.events, Event{
				Name: o.name, Cat: k.cat, Ph: "e", Ts: ts,
				Pid: o.pid, Tid: o.tid, ID: hexID(k.id),
			})
		}
		delete(t.open, k)
	}
}

// Events returns the accumulated events (test hook; call after Flush).
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON serializes the document. Call Flush first.
func (t *Timeline) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(Doc{TraceEvents: t.events})
}

const hexDigits = "0123456789abcdef"

// hexID formats an async/flow id without fmt (called on hot-ish
// enabled paths; still allocates the string, which is fine — obs-on
// may allocate, it just may not perturb).
func hexID(id uint64) string {
	var buf [18]byte
	buf[0], buf[1] = '0', 'x'
	n := 2
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (id >> uint(shift)) & 0xf
		if d != 0 || started || shift == 0 {
			buf[n] = hexDigits[d]
			n++
			started = true
		}
	}
	return string(buf[:n])
}
