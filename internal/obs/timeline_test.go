package obs_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite timeline golden files")

// checkWellFormed asserts the trace-event invariants the viewers rely
// on: the document parses, every async begin ("b") has a matching end
// ("e") with the same (cat, id) at a timestamp >= the begin, and no
// flow finish arrives without its start. A flow start with no finish
// is legal — a message genuinely in flight when the engine dies — and
// viewers simply draw no arrow for it.
func checkWellFormed(t *testing.T, raw []byte) obs.Doc {
	t.Helper()
	var doc obs.Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	type key struct{ cat, id string }
	open := map[key][]int64{} // stack of begin timestamps
	flows := map[key]int{}
	for _, e := range doc.TraceEvents {
		k := key{e.Cat, e.ID}
		switch e.Ph {
		case "b":
			open[k] = append(open[k], e.Ts)
		case "e":
			st := open[k]
			if len(st) == 0 {
				t.Fatalf("async end without begin: cat=%q id=%q ts=%d", e.Cat, e.ID, e.Ts)
			}
			if begin := st[len(st)-1]; e.Ts < begin {
				t.Fatalf("async end before its begin: cat=%q id=%q begin=%d end=%d",
					e.Cat, e.ID, begin, e.Ts)
			}
			open[k] = st[:len(st)-1]
		case "s":
			flows[k]++
		case "f":
			flows[k]--
			if flows[k] < 0 {
				t.Fatalf("flow finish without start: cat=%q id=%q ts=%d", e.Cat, e.ID, e.Ts)
			}
		case "X":
			if e.Dur <= 0 {
				t.Fatalf("duration span with dur=%d: %+v", e.Dur, e)
			}
		}
	}
	for k, st := range open {
		if len(st) > 0 {
			t.Errorf("unclosed async span: cat=%q id=%q (%d open)", k.cat, k.id, len(st))
		}
	}
	return doc
}

// TestTimelineGolden pins the serialized document for a fixed emission
// sequence exercising every event kind: metadata, coalesced ticks,
// spans, instants, async begin/end, flow arrows, and a Flush that must
// close one deliberately-unbalanced async span. Regenerate with
// `go test ./internal/obs -run TestTimelineGolden -update`.
func TestTimelineGolden(t *testing.T) {
	tl := obs.NewTimeline()
	tl.ProcessName(0, "components")
	tl.ThreadName(0, 2, "l2 t2")
	tl.Tick(0, 2, 10)
	tl.Tick(0, 2, 11) // coalesces with the previous tick
	tl.Tick(0, 2, 20) // gap: flushes the [10,12) run, opens [20,21)
	tl.Span(obs.PidEngine, 1, "barrier", 5, 9)
	tl.Span(obs.PidEngine, 1, "empty", 7, 7) // zero-length: dropped
	tl.Instant(0, 3, "fault.drop", 15)
	tl.AsyncBegin("tx.t0", 0x80, obs.PidTx, 0, "mem-fetch", 12)
	tl.AsyncEnd("tx.t0", 0x80, obs.PidTx, 0, "mem-fetch", 19)
	tl.AsyncBegin("tx.t1", 0x2040, obs.PidTx, 1, "await-ack", 18) // left open
	tl.FlowStart(7, obs.PidMesh, 4, "GetS", 13)
	tl.FlowEnd(7, obs.PidMesh, 9, "GetS", 16)
	tl.Flush(25)

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, buf.Bytes())

	golden := filepath.Join("testdata", "timeline_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialized timeline drifted from golden file:\ngot:  %s\nwant: %s",
			buf.Bytes(), want)
	}
}

// TestTimelineFuzzLite drives the sink with seeded pseudo-random
// emission sequences — including begins that never see their end — and
// asserts the flushed document is always well-formed. This is the
// cheap stand-in for a real fuzz target: the property, not the corpus.
func TestTimelineFuzzLite(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tl := obs.NewTimeline()
		cats := []string{"tx.t0", "tx.t1", "tx.t2"}
		var ts int64
		for op := 0; op < 500; op++ {
			ts += rng.Int63n(3)
			switch rng.Intn(10) {
			case 0, 1:
				tl.Tick(rng.Intn(3), rng.Intn(8), ts)
			case 2:
				tl.Span(0, rng.Intn(4), "span", ts, ts+rng.Int63n(5))
			case 3:
				tl.Instant(0, 0, "instant", ts)
			case 4, 5, 6:
				tl.AsyncBegin(cats[rng.Intn(len(cats))], uint64(rng.Intn(40)),
					obs.PidTx, rng.Intn(3), "op", ts)
			case 7, 8:
				// Ends for ids that may or may not be open; the sink
				// emits them regardless, so only end-after-begin pairs
				// are generated here (viewer semantics require it).
				// Close a random open id by reusing AsyncBegin's range
				// only when a begin certainly happened at an earlier ts.
				if op > 50 {
					id := uint64(rng.Intn(40))
					cat := cats[rng.Intn(len(cats))]
					tl.AsyncBegin(cat, id, obs.PidTx, 0, "op", ts)
					tl.AsyncEnd(cat, id, obs.PidTx, 0, "op", ts+rng.Int63n(4))
				}
			case 9:
				tl.FlowStart(uint64(op), 1, 2, "msg", ts)
				tl.FlowEnd(uint64(op), 1, 3, "msg", ts+1+rng.Int63n(6))
			}
		}
		tl.Flush(ts) // must close every dangling begin
		var buf bytes.Buffer
		if err := tl.WriteJSON(&buf); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkWellFormed(t, buf.Bytes())
		})
	}
}

// TestTimelineEarlyTermination runs a real machine into its cycle
// limit with the timeline armed: directory transactions are in flight
// when the engine dies, and Flush must still produce a well-formed
// document (this is the forensic case — a deadlocked run's partial
// timeline is exactly what you want to look at).
func TestTimelineEarlyTermination(t *testing.T) {
	w := workloads.ByName("canneal")
	if w == nil {
		t.Fatal("canneal workload missing")
	}
	cfg := config.Small(4)
	cfg.MaxCycles = 300 // far short of completion
	tl := obs.NewTimeline()
	cfg.Obs = &obs.Obs{Timeline: tl}
	_, err := system.Run(cfg, tsocc.New(config.C12x3()),
		w.Gen(workloads.Params{Threads: 4, Scale: 1, Seed: 1}))
	if !errors.Is(err, sim.ErrCycleLimit) {
		t.Fatalf("expected the cycle limit, got err=%v", err)
	}
	tl.Flush(int64(cfg.MaxCycles))
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := checkWellFormed(t, buf.Bytes())
	if len(doc.TraceEvents) == 0 {
		t.Fatal("early-terminated run produced an empty timeline")
	}
}
