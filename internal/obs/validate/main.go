// Command validate checks that a -timeline dump is a well-formed
// Chrome trace-event document: it parses, every async begin has a
// matching end with the same (cat, id) at a timestamp no earlier than
// the begin, no flow finish precedes its start, and every duration
// span has positive length. `make obs-smoke` runs it over the files
// the CLIs emit; it is a build-time tool, not part of the simulator.
//
// With -metrics it instead checks registry dumps: valid JSON carrying
// non-empty counter and histogram sections.
//
// Usage: go run ./internal/obs/validate [-metrics] file.json...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	metrics := flag.Bool("metrics", false, "validate metrics-registry dumps instead of timelines")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: validate [-metrics] file.json...")
		os.Exit(2)
	}
	check := validate
	if *metrics {
		check = validateMetrics
	}
	bad := false
	for _, path := range flag.Args() {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("ok   %s\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

func validateMetrics(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var d struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(d.Counters) == 0 {
		return fmt.Errorf("no counter series (registry never installed?)")
	}
	if len(d.Histograms) == 0 {
		return fmt.Errorf("no histogram series (registry never installed?)")
	}
	return nil
}

func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc obs.Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	type key struct{ cat, id string }
	open := map[key][]int64{}
	flows := map[key]int{}
	for _, e := range doc.TraceEvents {
		k := key{e.Cat, e.ID}
		switch e.Ph {
		case "b":
			open[k] = append(open[k], e.Ts)
		case "e":
			st := open[k]
			if len(st) == 0 {
				return fmt.Errorf("async end without begin: cat=%q id=%q ts=%d", e.Cat, e.ID, e.Ts)
			}
			if begin := st[len(st)-1]; e.Ts < begin {
				return fmt.Errorf("async end before its begin: cat=%q id=%q begin=%d end=%d",
					e.Cat, e.ID, begin, e.Ts)
			}
			open[k] = st[:len(st)-1]
		case "s":
			flows[k]++
		case "f":
			flows[k]--
			if flows[k] < 0 {
				return fmt.Errorf("flow finish without start: cat=%q id=%q ts=%d", e.Cat, e.ID, e.Ts)
			}
		case "X":
			if e.Dur <= 0 {
				return fmt.Errorf("duration span with dur=%d at ts=%d (%s)", e.Dur, e.Ts, e.Name)
			}
		}
	}
	for k, st := range open {
		if len(st) > 0 {
			return fmt.Errorf("unclosed async span: cat=%q id=%q (%d open; missing Flush?)",
				k.cat, k.id, len(st))
		}
	}
	return nil
}
