// False sharing head-to-head: threads write disjoint words that share
// cache lines. Eager MESI ping-pongs ownership of every line; lazy
// TSO-CC lets stale Shared copies linger and wins — the paper's
// lu (non-contiguous) result.
//
//	go run ./examples/falsesharing
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/mesi"
	"repro/internal/program"
	"repro/internal/system"
	"repro/internal/tsocc"
)

const (
	threads = 8
	iters   = 200
	array   = 0x10000
)

// workload builds the interleaved-writes kernel; with spread=false the
// threads' words interleave inside cache lines (false sharing), with
// spread=true each thread gets its own lines.
func workload(spread bool) *program.Workload {
	progs := make([]*program.Program, threads)
	for t := 0; t < threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("writer-%d", t))
		b.Li(3, 0)
		b.Li(4, iters)
		b.Label("loop")
		for w := int64(0); w < 4; w++ {
			var addr int64
			if spread {
				addr = array + int64(t)*0x1000 + w*8
			} else {
				addr = array + (w*int64(threads)+int64(t))*8
			}
			b.Li(1, addr)
			b.Ld(2, 1, 0)
			b.Addi(2, 2, 1)
			b.St(1, 0, 2)
		}
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Fence()
		b.Halt()
		progs[t] = b.MustBuild()
	}
	name := "false-sharing"
	if spread {
		name = "contiguous"
	}
	return &program.Workload{
		Name:     name,
		Programs: progs,
		Check: func(mem program.MemReader) error {
			// Every word was incremented `iters` times by one thread.
			for t := 0; t < threads; t++ {
				for w := int64(0); w < 4; w++ {
					var addr uint64
					if spread {
						addr = uint64(array + int64(t)*0x1000 + w*8)
					} else {
						addr = uint64(array + (w*int64(threads)+int64(t))*8)
					}
					if got := mem.ReadWord(addr); got != iters {
						return fmt.Errorf("word %d/%d = %d, want %d", t, w, got, iters)
					}
				}
			}
			return nil
		},
	}
}

func main() {
	cfg := config.Scaled(threads)
	for _, spread := range []bool{false, true} {
		w := workload(spread)
		fmt.Printf("== %s layout ==\n", w.Name)
		var mesiCycles int64
		for _, proto := range []system.Protocol{mesi.New(), tsocc.New(config.C12x3())} {
			res, err := system.Run(cfg, proto, workload(spread))
			if err != nil {
				log.Fatalf("%s: %v", proto.Name(), err)
			}
			if res.CheckErr != nil {
				log.Fatalf("%s: %v", proto.Name(), res.CheckErr)
			}
			if proto.Name() == "MESI" {
				mesiCycles = int64(res.Cycles)
			}
			norm := float64(res.Cycles) / float64(mesiCycles)
			fmt.Printf("  %-14s %8d cycles (%.2fx MESI), %8d flit-hops, %5d invalidations received\n",
				proto.Name(), res.Cycles, norm, res.FlitHops, res.L1.InvalidationsReceived.Value())
		}
	}
	fmt.Println("\nlazy coherence shrugs off false sharing; eager MESI ping-pongs.")
}
