// Quickstart: build a 4-core simulated CMP running the TSO-CC protocol,
// execute a tiny two-thread program, and print the run statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/program"
	"repro/internal/system"
	"repro/internal/tsocc"
)

func main() {
	// A two-thread workload: thread 0 produces values, thread 1 sums
	// them after a flag handshake.
	const (
		dataAddr = 0x1000 // eight values
		flagAddr = 0x2000
		sumAddr  = 0x3000
	)

	producer := program.NewBuilder("producer")
	producer.Li(1, dataAddr)
	for i := int64(0); i < 8; i++ {
		producer.Li(2, (i+1)*10)
		producer.St(1, i*8, 2)
	}
	producer.Li(1, flagAddr).Li(2, 1)
	producer.St(1, 0, 2) // release: publish the flag
	producer.Halt()

	consumer := program.NewBuilder("consumer")
	consumer.Li(1, flagAddr).Li(2, 1)
	consumer.SpinUntilEq(3, 1, 0, 2) // acquire: poll the flag
	consumer.Li(1, dataAddr)
	consumer.Li(4, 0) // sum
	for i := int64(0); i < 8; i++ {
		consumer.Ld(5, 1, i*8)
		consumer.Add(4, 4, 5)
	}
	consumer.Li(1, sumAddr)
	consumer.St(1, 0, 4)
	consumer.Fence()
	consumer.Halt()

	w := &program.Workload{
		Name:     "quickstart",
		Programs: []*program.Program{producer.MustBuild(), consumer.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(sumAddr); got != 360 {
				return fmt.Errorf("sum = %d, want 360", got)
			}
			return nil
		},
	}

	// Run it on the paper's best configuration, scaled to 4 cores.
	cfg := config.Scaled(4)
	res, err := system.Run(cfg, tsocc.New(config.C12x3()), w)
	if err != nil {
		log.Fatal(err)
	}
	if res.CheckErr != nil {
		log.Fatal("functional check failed: ", res.CheckErr)
	}
	fmt.Print(res.Summary())
	fmt.Println("\nthe consumer observed every value written before the flag — TSO held.")
}
