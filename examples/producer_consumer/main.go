// Producer/consumer: the paper's Figure 1 scenario, run under every
// protocol configuration, showing how the lazy protocol propagates the
// flag write through the bounded-staleness Shared state and how the
// timestamped response triggers the self-invalidation that makes the
// data write visible.
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"log"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/program"
	"repro/internal/system"
)

func workload() *program.Workload {
	const dataAddr, flagAddr, outAddr = 0x1000, 0x2000, 0x3000

	// proc A (Figure 1): a1: data = 1;  a2: flag = 1;
	a := program.NewBuilder("procA")
	a.Li(1, dataAddr).Li(2, flagAddr).Li(3, 1)
	a.Nop(50) // let the consumer cache stale copies first
	a.St(1, 0, 3)
	a.St(2, 0, 3)
	a.Halt()

	// proc B: b1: while (flag == 0);  b2: r1 = data;
	b := program.NewBuilder("procB")
	b.Li(1, dataAddr).Li(2, flagAddr).Li(3, 1)
	b.Ld(4, 1, 0) // warm a stale Shared copy of data
	b.Ld(4, 2, 0) // ... and of flag
	b.SpinUntilEq(4, 2, 0, 3)
	b.Ld(5, 1, 0) // b2 must see a1's write
	b.Li(6, outAddr)
	b.St(6, 0, 5)
	b.Fence()
	b.Halt()

	return &program.Workload{
		Name:     "figure1",
		Programs: []*program.Program{a.MustBuild(), b.MustBuild()},
		Check: func(mem program.MemReader) error {
			if got := mem.ReadWord(outAddr); got != 1 {
				return fmt.Errorf("b2 read data = %d, want 1 (r→r violated)", got)
			}
			return nil
		},
	}
}

func main() {
	cfg := config.Scaled(4)
	fmt.Println("Figure 1 producer/consumer on every protocol configuration:")
	for _, proto := range harness.Protocols() {
		res, err := system.Run(cfg, proto, workload())
		if err != nil {
			log.Fatalf("%s: %v", proto.Name(), err)
		}
		if res.CheckErr != nil {
			log.Fatalf("%s: %v", proto.Name(), res.CheckErr)
		}
		fmt.Printf("  %-18s %6d cycles, %4d msgs, self-invalidations: %d (acquire-triggered: %d)\n",
			proto.Name(), res.Cycles, res.Msgs, res.L1.SelfInvTotal(),
			res.L1.SelfInvEvents[coherence.CauseAcquireNonSRO].Value())
	}
	fmt.Println("\nevery configuration made a1 visible to b2 once b1 observed a2 — TSO's")
	fmt.Println("write-propagation and r→r requirements hold without a sharing vector.")
}
