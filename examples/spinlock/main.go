// Spinlock: test-and-test-and-set critical sections under MESI vs
// TSO-CC, verifying mutual exclusion (a non-atomic counter inside the
// lock) and comparing RMW latency — the effect behind the paper's
// Figure 8.
//
//	go run ./examples/spinlock
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/mesi"
	"repro/internal/program"
	"repro/internal/system"
	"repro/internal/tsocc"
)

const (
	threads = 8
	rounds  = 50
	lockVar = 0x1000
	counter = 0x2000
)

func workload() *program.Workload {
	progs := make([]*program.Program, threads)
	for t := 0; t < threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("locker-%d", t))
		b.Li(3, 0)
		b.Li(4, rounds)
		b.Label("loop")
		b.Li(10, lockVar)
		// Contended probes back off 16 cycles (the x86 PAUSE hint),
		// giving the event-driven engine idle windows to skip.
		b.LockAcquirePause(8, 9, 10, 0, 16)
		// Critical section: non-atomic read-modify-write. Lost updates
		// here mean the lock (and the protocol under it) is broken.
		b.Li(6, counter)
		b.Ld(7, 6, 0)
		b.Addi(7, 7, 1)
		b.St(6, 0, 7)
		b.Li(10, lockVar)
		b.LockRelease(10, 0)
		b.Nop(int64(t)*3 + 5) // stagger re-acquisition
		b.Addi(3, 3, 1)
		b.Blt(3, 4, "loop")
		b.Fence()
		b.Halt()
		progs[t] = b.MustBuild()
	}
	return &program.Workload{
		Name:     "spinlock",
		Programs: progs,
		Check: func(mem program.MemReader) error {
			want := uint64(threads * rounds)
			if got := mem.ReadWord(counter); got != want {
				return fmt.Errorf("counter = %d, want %d (mutual exclusion broken)", got, want)
			}
			return nil
		},
	}
}

func main() {
	cfg := config.Scaled(threads)
	for _, proto := range []system.Protocol{mesi.New(), tsocc.New(config.C12x3())} {
		res, err := system.Run(cfg, proto, workload())
		if err != nil {
			log.Fatalf("%s: %v", proto.Name(), err)
		}
		if res.CheckErr != nil {
			log.Fatalf("%s: mutual exclusion check: %v", proto.Name(), res.CheckErr)
		}
		fmt.Printf("%-14s %7d cycles, %5d RMWs, mean RMW latency %6.1f cycles, traffic %7d flit-hops\n",
			proto.Name(), res.Cycles, res.RMWs, res.L1.MeanRMWLatency(), res.FlitHops)
	}
	fmt.Printf("\n%d threads × %d rounds: counter correct under both protocols.\n", threads, rounds)
}
