// Package repro_test hosts the benchmark harness that regenerates every
// table and figure in the paper's evaluation (Table 1, Figures 2–9), plus
// ablation benchmarks for the design choices called out in DESIGN.md §5.
//
// Each Figure benchmark runs a reduced benchmark × protocol grid per
// iteration (8 cores by default, representative workloads) and reports
// the figure's headline quantity via b.ReportMetric, normalized against
// MESI exactly as the paper plots it. Run the cmd/tsocc-bench binary for
// the full 32-core, 16-benchmark grid.
package repro_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/mesi"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/storagemodel"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// benchCores keeps the per-iteration grids fast while preserving
// cross-protocol shape; the cmd/tsocc-bench tool runs the paper's 32.
const benchCores = 8

// benchSubset is a representative slice of Table 3: read-only data
// (blackscholes), false sharing (lu-noncont), scattered shared writes
// (radix), and hot RMW queues (intruder).
var benchSubset = []string{"blackscholes", "lu-noncont", "radix", "intruder"}

func runGrid(b *testing.B, protos []system.Protocol, benches []string) *harness.Grid {
	b.Helper()
	cfg := benchSystem(benchCores)
	p := workloads.Params{Threads: benchCores, Scale: 1, Seed: 1}
	g, err := harness.RunGrid(cfg, p, protos, benches, nil)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func gmeanNormalized(g *harness.Grid, proto string, metric func(*system.Result) float64) float64 {
	var vals []float64
	for _, bench := range g.Benchmarks {
		base, r := g.Baseline(bench), g.Get(bench, proto)
		if base == nil || r == nil {
			continue
		}
		bv := metric(base)
		if bv <= 0 {
			continue
		}
		vals = append(vals, metric(r)/bv)
	}
	return stats.Geomean(vals)
}

// ---- Table 1 / Figure 2: storage model ----

func BenchmarkTable1Storage(b *testing.B) {
	var mib float64
	for i := 0; i < b.N; i++ {
		g := storagemodel.PaperGeometry(32)
		mib = storagemodel.TSOCC(g, config.C12x3()).TotalMiB
	}
	g := storagemodel.PaperGeometry(32)
	b.ReportMetric(100*storagemodel.ReductionVsMESI(g, storagemodel.TSOCC(g, config.C12x3())),
		"%reduction-vs-MESI/32c")
	_ = mib
}

func BenchmarkFigure2StorageSweep(b *testing.B) {
	cores := []int{8, 16, 32, 48, 64, 80, 96, 112, 128}
	for i := 0; i < b.N; i++ {
		_ = storagemodel.Figure2(cores)
	}
	g := storagemodel.PaperGeometry(128)
	b.ReportMetric(100*storagemodel.ReductionVsMESI(g, storagemodel.TSOCC(g, config.C12x3())),
		"%reduction-vs-MESI/128c")
}

// ---- Figures 3–9: simulation grid ----

func BenchmarkFigure3ExecutionTime(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = runGrid(b, nil, benchSubset)
	}
	b.ReportMetric(gmeanNormalized(g, "TSO-CC-4-12-3",
		func(r *system.Result) float64 { return float64(r.Cycles) }), "norm-exec-12-3")
	b.ReportMetric(gmeanNormalized(g, "CC-shared-to-L2",
		func(r *system.Result) float64 { return float64(r.Cycles) }), "norm-exec-ccL2")
}

func BenchmarkFigure4NetworkTraffic(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = runGrid(b, nil, benchSubset)
	}
	b.ReportMetric(gmeanNormalized(g, "TSO-CC-4-12-3",
		func(r *system.Result) float64 { return float64(r.FlitHops) }), "norm-traffic-12-3")
}

func BenchmarkFigure5MissBreakdown(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = runGrid(b, nil, benchSubset)
	}
	r := g.Get("intruder", "TSO-CC-4-12-3")
	b.ReportMetric(100*float64(r.L1.Misses())/float64(r.L1.Accesses()), "%miss-intruder-12-3")
	b.ReportMetric(100*float64(r.L1.WriteMissShared.Value())/float64(r.L1.Accesses()), "%wrmissShared")
}

func BenchmarkFigure6HitBreakdown(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = runGrid(b, nil, []string{"blackscholes", "raytrace"})
	}
	r := g.Get("blackscholes", "TSO-CC-4-12-3")
	b.ReportMetric(100*float64(r.L1.ReadHitSRO.Value())/float64(r.L1.Accesses()), "%hit-SRO-blacksch")
}

func BenchmarkFigure7SelfInvalidations(b *testing.B) {
	protos := []system.Protocol{mesi.New(), tsocc.New(config.Basic()), tsocc.New(config.C12x3())}
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = runGrid(b, protos, benchSubset)
	}
	basic := g.Get("radix", "TSO-CC-4-basic")
	ts := g.Get("radix", "TSO-CC-4-12-3")
	b.ReportMetric(100*float64(basic.L1.SelfInvTotal())/float64(basic.L1.DataResponses.Value()),
		"%selfinv-basic")
	b.ReportMetric(100*float64(ts.L1.SelfInvTotal())/float64(ts.L1.DataResponses.Value()),
		"%selfinv-12-3")
}

func BenchmarkFigure8RMWLatency(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = runGrid(b, nil, []string{"intruder", "ssca2", "radix"})
	}
	b.ReportMetric(gmeanNormalized(g, "TSO-CC-4-12-3",
		func(r *system.Result) float64 { return r.L1.MeanRMWLatency() }), "norm-rmwlat-12-3")
}

func BenchmarkFigure9InvalidationCauses(b *testing.B) {
	protos := []system.Protocol{mesi.New(), tsocc.New(config.C12x3())}
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = runGrid(b, protos, []string{"x264", "intruder"})
	}
	r := g.Get("x264", "TSO-CC-4-12-3")
	total := float64(r.L1.SelfInvTotal())
	if total > 0 {
		b.ReportMetric(100*float64(r.L1.SelfInvEvents[coherence.CauseAcquireNonSRO].Value())/total,
			"%cause-acquire-x264")
	}
}

// ---- Ablations (DESIGN.md §5) ----

func ablationGrid(b *testing.B, cfgs []config.TSOCC, benches []string) *harness.Grid {
	b.Helper()
	protos := []system.Protocol{mesi.New()}
	for _, c := range cfgs {
		protos = append(protos, tsocc.New(c))
	}
	return runGrid(b, protos, benches)
}

// BenchmarkAblationAccessCounter varies Bmaxacc: 0 bits effectively
// means one Shared hit per fill; more bits amortize re-requests.
func BenchmarkAblationAccessCounter(b *testing.B) {
	mk := func(bits int) config.TSOCC {
		c := config.C12x3()
		c.MaxAccBits = bits
		return c
	}
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = ablationGrid(b, []config.TSOCC{mk(1), mk(2), mk(4), mk(6)}, []string{"x264", "intruder"})
	}
	for _, bits := range []int{1, 2, 4, 6} {
		c := mk(bits)
		b.ReportMetric(gmeanNormalized(g, c.Name(),
			func(r *system.Result) float64 { return float64(r.Cycles) }),
			"norm-exec-acc"+itoa(bits))
	}
}

// BenchmarkAblationTransitiveReduction compares the basic protocol
// (every remote response self-invalidates) against timestamped configs.
func BenchmarkAblationTransitiveReduction(b *testing.B) {
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = ablationGrid(b, []config.TSOCC{config.Basic(), config.NoReset()}, benchSubset)
	}
	basic := 0.0
	noreset := 0.0
	for _, bench := range g.Benchmarks {
		rb := g.Get(bench, "TSO-CC-4-basic")
		rn := g.Get(bench, "TSO-CC-4-noreset")
		basic += float64(rb.L1.SelfInvTotal())
		noreset += float64(rn.L1.SelfInvTotal())
	}
	if basic > 0 {
		b.ReportMetric(100*(1-noreset/basic), "%selfinv-reduction")
	}
}

// BenchmarkAblationWriteGroup varies Bwg (the >= acquire rule makes
// coarser groups more conservative).
func BenchmarkAblationWriteGroup(b *testing.B) {
	mk := func(wg int) config.TSOCC {
		c := config.C12x3()
		c.WriteGroupBits = wg
		return c
	}
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = ablationGrid(b, []config.TSOCC{mk(0), mk(3), mk(6)}, []string{"x264", "lu-noncont"})
	}
	for _, wg := range []int{0, 3, 6} {
		b.ReportMetric(gmeanNormalized(g, mk(wg).Name(),
			func(r *system.Result) float64 { return float64(r.Cycles) }),
			"norm-exec-wg"+itoa(wg))
	}
}

// BenchmarkAblationTimestampBits varies Bts (reset frequency): halving
// the timestamp width multiplies resets; execution stays nearly flat
// (the paper's §3.5/§5 claim). Write-group size 1 maximizes source
// advancement so small widths wrap within these kernels.
func BenchmarkAblationTimestampBits(b *testing.B) {
	mk := func(bits int) config.TSOCC {
		c := config.C12x0()
		c.TimestampBits = bits
		return c
	}
	var g *harness.Grid
	for i := 0; i < b.N; i++ {
		g = ablationGrid(b, []config.TSOCC{mk(5), mk(7), mk(9)},
			[]string{"ssca2", "intruder", "lu-noncont"})
	}
	for _, bits := range []int{5, 7, 9} {
		c := mk(bits)
		var resets int64
		for _, bench := range g.Benchmarks {
			resets += g.Get(bench, c.Name()).L1.TimestampResets.Value()
		}
		b.ReportMetric(float64(resets), "resets-ts"+itoa(bits))
		b.ReportMetric(gmeanNormalized(g, c.Name(),
			func(r *system.Result) float64 { return float64(r.Cycles) }),
			"norm-exec-ts"+itoa(bits))
	}
}

// BenchmarkAblationSharedRO toggles the §3.4 optimization (the paper
// reports >35% execution time and >75% traffic improvement from it).
func BenchmarkAblationSharedRO(b *testing.B) {
	with := config.C12x3()
	without := config.C12x3()
	without.SharedRO = false
	cfg0 := config.Scaled(benchCores)
	p0 := workloads.Params{Threads: benchCores, Scale: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		// Both configs share the paper name; run them directly rather
		// than through a name-keyed grid.
		for _, c := range []config.TSOCC{with, without} {
			e := workloads.ByName("raytrace")
			if _, err := system.Run(cfg0, tsocc.New(c), e.Gen(p0)); err != nil {
				b.Fatal(err)
			}
		}
	}
	cfg := config.Scaled(benchCores)
	p := workloads.Params{Threads: benchCores, Scale: 1, Seed: 1}
	for _, bench := range []string{"blackscholes", "raytrace"} {
		e := workloads.ByName(bench)
		rw, err := system.Run(cfg, tsocc.New(with), e.Gen(p))
		if err != nil {
			b.Fatal(err)
		}
		rwo, err := system.Run(cfg, tsocc.New(without), e.Gen(p))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rwo.Cycles)/float64(rw.Cycles), "noSRO-over-SRO-"+bench)
	}
}

// BenchmarkAblationDecay varies the Shared→SharedRO decay threshold on
// a write-once/read-forever pattern (the case §3.4's decay targets).
func BenchmarkAblationDecay(b *testing.B) {
	mk := func(d uint32) config.TSOCC {
		c := config.C12x0()
		c.DecayWrites = d
		return c
	}
	cfg := config.Scaled(benchCores)
	measure := func(d uint32) *system.Result {
		r, err := system.Run(cfg, tsocc.New(mk(d)), decayWorkload(benchCores))
		if err != nil {
			b.Fatal(err)
		}
		if r.CheckErr != nil {
			b.Fatal(r.CheckErr)
		}
		return r
	}
	for i := 0; i < b.N; i++ {
		for _, d := range []uint32{8, 64, 1 << 20} {
			measure(d)
		}
	}
	for _, d := range []uint32{8, 64, 1 << 20} {
		r := measure(d)
		b.ReportMetric(float64(r.DecayEvents), "decays-"+itoa(int(d)))
		b.ReportMetric(100*float64(r.L1.ReadHitSRO.Value())/float64(r.L1.Accesses()),
			"%SRO-hits-decay"+itoa(int(d)))
	}
}

// ---- Microbenchmarks of the substrate ----

func BenchmarkSimCounterMESI(b *testing.B)  { benchProto(b, mesi.New()) }
func BenchmarkSimCounterTSOCC(b *testing.B) { benchProto(b, tsocc.New(config.C12x3())) }

func benchProto(b *testing.B, proto system.Protocol) {
	b.Helper()
	cfg := config.Scaled(benchCores)
	p := workloads.Params{Threads: benchCores, Scale: 1, Seed: 1}
	e := workloads.ByName("ssca2")
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := system.Run(cfg, proto, e.Gen(p))
		if err != nil {
			b.Fatal(err)
		}
		cycles = int64(r.Cycles)
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// decayWorkload: thread 0 writes a target line once, then keeps writing
// other lines homed at the SAME tile (advancing its last-seen timestamp
// there); the other threads read the target repeatedly. With a small
// decay threshold the target transitions to SharedRO and readers stop
// paying the Shared access budget.
func decayWorkload(threads int) *program.Workload {
	target := int64(0x100000)
	stride := int64(threads) * 64 // same home tile
	wr := program.NewBuilder("writer")
	wr.Li(1, target).Li(2, 1)
	wr.St(1, 0, 2) // write the target once (dirty -> Shared on downgrade)
	wr.Li(3, 0)
	wr.Li(4, 400)
	wr.Label("churn")
	wr.Mod(5, 3, 64)
	wr.Addi(5, 5, 1) // lines 1..64 relative to the target
	wr.Li(6, stride)
	wr.Mul(5, 5, 6)
	wr.Add(5, 5, 1)
	wr.St(5, 0, 2) // distinct lines, same home tile as the target
	wr.Addi(3, 3, 1)
	wr.Blt(3, 4, "churn")
	wr.Halt()
	progs := []*program.Program{wr.MustBuild()}
	for t := 1; t < threads; t++ {
		rd := program.NewBuilder("reader")
		rd.Li(1, target)
		rd.Li(3, 0)
		rd.Li(4, 500)
		rd.Label("loop")
		rd.Ld(2, 1, 0)
		rd.Addi(3, 3, 1)
		rd.Blt(3, 4, "loop")
		rd.Halt()
		progs = append(progs, rd.MustBuild())
	}
	return &program.Workload{Name: "decay-probe", Programs: progs}
}

// BenchmarkAblationTSTableEntries bounds the per-node last-seen tables
// (§3.3): smaller tables lose entries and self-invalidate more.
func BenchmarkAblationTSTableEntries(b *testing.B) {
	mk := func(entries int) config.TSOCC {
		c := config.C12x0()
		c.TSTableEntries = entries
		return c
	}
	cfg := config.Scaled(benchCores)
	p := workloads.Params{Threads: benchCores, Scale: 1, Seed: 1}
	e := workloads.ByName("lu-noncont")
	measure := func(entries int) *system.Result {
		r, err := system.Run(cfg, tsocc.New(mk(entries)), e.Gen(p))
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 0} {
			measure(n)
		}
	}
	for _, n := range []int{1, 2, 0} {
		r := measure(n)
		b.ReportMetric(float64(r.L1.SelfInvTotal()), "selfinv-entries"+itoa(n))
	}
}
