// Fault-injection conformance gates: the fifth conformance axis next to
// the engine-mode, batched-core, litmus A/B and trace-replay gates. A
// fixed (profile, seed) fault stream must be bit-identical across
// engine mode × core batching × trace record/replay, and randomized
// fault sweeps must pass every runtime invariant oracle on every
// registered protocol.
package repro_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/litmus"
	"repro/internal/mesi"
	"repro/internal/system"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

// faultProfiles are the built-in profile specs exercised by the
// conformance gates: every single profile plus a composite spec, so
// profile composition rides through the same bit-identity axes.
var faultProfiles = []string{
	"jitter", "pressure", "burst",
	"evict", "reset-storm", "victim",
	"jitter:rate=200+evict:rate=80",
}

// TestFaultModesBitIdentical: for every profile, the injected run is a
// pure function of (profile, seed) — identical fingerprints across both
// time-advancement modes, both core models, and a record → replay round
// trip.
func TestFaultModesBitIdentical(t *testing.T) {
	// The TSO-CC leg uses the timestamped flagship preset so reset-storm
	// actually fires (timestamp-free presets never consult the hook).
	protos := []system.Protocol{mesi.New(), tsocc.New(config.C12x3())}
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	for _, proto := range protos {
		for _, prof := range faultProfiles {
			t.Run(proto.Name()+"/"+prof, func(t *testing.T) {
				e := workloads.ByName("ssca2")
				mkCfg := func() config.System {
					cfg := config.Small(4)
					cfg.FaultProfile = prof
					cfg.FaultSeed = 7
					return cfg
				}
				fps := make([]string, len(engineModes))
				for i, mode := range engineModes {
					cfg := mkCfg()
					cfg.PerCycleEngine = mode.perCycle
					cfg.BatchedCore = mode.batched
					r, err := system.Run(cfg, proto, e.Gen(p))
					if err != nil {
						t.Fatalf("%s: %v", mode.name, err)
					}
					if r.CheckErr != nil {
						t.Fatalf("%s: functional check: %v", mode.name, r.CheckErr)
					}
					fps[i] = fingerprint(r)
				}
				for i := 1; i < len(fps); i++ {
					if fps[i] != fps[0] {
						t.Fatalf("fault-injected engine modes diverged:\n %s: %s\n %s: %s",
							engineModes[0].name, fps[0], engineModes[i].name, fps[i])
					}
				}

				// The shards axis must hold under injection too: the
				// sharded engine partitions the injector's mesh-delay
				// domains, and the partition must be invisible.
				for _, shards := range []int{2, 4} {
					cfg := mkCfg()
					cfg.Shards = shards
					r, err := system.Run(cfg, proto, e.Gen(p))
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if fp := fingerprint(r); fp != fps[0] {
						t.Fatalf("fault-injected sharded run diverged (shards=%d):\n serial:  %s\n sharded: %s",
							shards, fps[0], fp)
					}
				}

				// Record under faults, replay under the same faults: the
				// trace axis must hold with injection active too.
				res, tr, err := system.RunRecorded(mkCfg(), proto, e.Gen(p), p.Seed)
				if err != nil {
					t.Fatalf("record: %v", err)
				}
				if fp := fingerprint(res); fp != fps[0] {
					t.Fatalf("recording perturbed the faulted run:\n base: %s\n rec:  %s", fps[0], fp)
				}
				rep, err := system.Replay(tr.Meta.Sys, proto, tr)
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				if fp := fingerprint(rep); fp != fps[0] {
					t.Fatalf("faulted replay diverged:\n base:   %s\n replay: %s", fps[0], fp)
				}
			})
		}
	}
}

// TestFaultDifferentSeedsDiverge sanity-checks that injection actually
// does something: across a batch of seeds, at least one perturbs the
// run relative to the nominal (fault-free) execution.
func TestFaultDifferentSeedsDiverge(t *testing.T) {
	e := workloads.ByName("ssca2")
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 1}
	proto := tsocc.New(config.C12x3())
	base, err := system.Run(config.Small(4), proto, e.Gen(p))
	if err != nil {
		t.Fatal(err)
	}
	baseFP := fingerprint(base)
	for _, prof := range faultProfiles {
		diverged := false
		for seed := uint64(1); seed <= 5 && !diverged; seed++ {
			cfg := config.Small(4)
			cfg.FaultProfile = prof
			cfg.FaultSeed = seed
			r, err := system.Run(cfg, proto, e.Gen(p))
			if err != nil {
				t.Fatalf("%s seed %d: %v", prof, seed, err)
			}
			if fingerprint(r) != baseFP {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("profile %s: five seeds all matched the nominal run — injection inert?", prof)
		}
	}
}

// TestFaultSweepOracles is the randomized robustness gate: ≥20 seeds ×
// every profile × every registered protocol, with the runtime invariant
// oracles armed. Any SWMR, data-value, ordering, or functional-check
// violation — or a deadlock — fails the sweep. Each seed also runs on
// the sharded engine (oracles force the serial engine, so the sharded
// leg runs unchecked) and must fingerprint-match the checked run —
// bit-identity is what carries the oracle verdicts over to the
// parallel engine.
func TestFaultSweepOracles(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 3
	}
	e := workloads.ByName("ssca2")
	p := workloads.Params{Threads: 4, Scale: 1, Seed: 2}
	for _, proto := range coherence.Protocols() {
		for _, prof := range faultProfiles {
			t.Run(proto.Name()+"/"+prof, func(t *testing.T) {
				for seed := 1; seed <= seeds; seed++ {
					cfg := config.Small(4)
					cfg.FaultProfile = prof
					cfg.FaultSeed = uint64(seed)
					cfg.Checks = true
					r, err := system.Run(cfg, proto, e.Gen(p))
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if r.CheckErr != nil {
						t.Fatalf("seed %d: functional check: %v", seed, r.CheckErr)
					}
					scfg := config.Small(4)
					scfg.FaultProfile = prof
					scfg.FaultSeed = uint64(seed)
					scfg.Shards = 4
					sr, err := system.Run(scfg, proto, e.Gen(p))
					if err != nil {
						t.Fatalf("seed %d sharded: %v", seed, err)
					}
					if fingerprint(sr) != fingerprint(r) {
						t.Fatalf("seed %d: sharded run diverged from oracle-checked run:\n checked: %s\n sharded: %s",
							seed, fingerprint(r), fingerprint(sr))
					}
				}
			})
		}
	}
}

// TestLitmusUnderFaults runs the full litmus suite under every fault
// profile on every registered protocol: injected timing must never
// produce a TSO-forbidden outcome.
func TestLitmusUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted litmus sweep is slow")
	}
	for _, proto := range coherence.Protocols() {
		for _, prof := range faultProfiles {
			t.Run(proto.Name()+"/"+prof, func(t *testing.T) {
				cfg := config.Small(4)
				cfg.FaultProfile = prof
				cfg.FaultSeed = 3
				cfg.Checks = true
				for _, test := range litmus.Suite() {
					res, err := litmus.Run(test, proto, cfg, 15, 42)
					if err != nil {
						t.Fatalf("%s: %v", test.Name, err)
					}
					if !res.Ok() {
						t.Fatalf("%s: TSO violation under %s faults: %v",
							test.Name, prof, res.Violations)
					}
				}
			})
		}
	}
}

// FuzzFaultProfile: arbitrary profile parameters must never break
// determinism (per-cycle vs wake-set bit-identity) or trip the oracles
// on the MESI baseline. Parse clamps out-of-range values, so any
// syntactically valid spec is a legal configuration.
func FuzzFaultProfile(f *testing.F) {
	f.Add("jitter", uint64(1))
	f.Add("jitter:rate=1000,delay=64", uint64(2))
	f.Add("pressure:rate=900,cap=1", uint64(3))
	f.Add("burst:rate=1000,delay=32,window=2", uint64(4))
	f.Add("evict:rate=120", uint64(5))
	f.Add("reset-storm:rate=200", uint64(6))
	f.Add("victim:rate=500,delay=8", uint64(7))
	f.Add("jitter:rate=300+evict:rate=100", uint64(8))
	f.Add("burst,rate=400,victim,delay=3,reset-storm", uint64(9))
	proto := mesi.New()
	e := workloads.ByName("ssca2")
	p := workloads.Params{Threads: 2, Scale: 1, Seed: 1}
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		if _, err := faults.Parse(spec); err != nil {
			t.Skip()
		}
		fps := [2]string{}
		for i, perCycle := range []bool{true, false} {
			cfg := config.Small(2)
			cfg.PerCycleEngine = perCycle
			cfg.FaultProfile = spec
			cfg.FaultSeed = seed
			cfg.Checks = true
			r, err := system.Run(cfg, proto, e.Gen(p))
			if err != nil {
				t.Fatalf("perCycle=%v: %v", perCycle, err)
			}
			if r.CheckErr != nil {
				t.Fatalf("perCycle=%v: functional check: %v", perCycle, r.CheckErr)
			}
			fps[i] = fingerprint(r)
		}
		if fps[0] != fps[1] {
			t.Fatalf("spec %q seed %d diverged across engines:\n %s\n %s", spec, seed, fps[0], fps[1])
		}
	})
}
