// End-to-end gate for the protocol-legality oracle and the violation
// shrinker: a deliberately seeded legality bug — a test-only protocol
// wrapper that reports a Modified → Exclusive hop after enough forced
// evictions — must be (a) caught by the oracle the cycle it happens,
// (b) reduced by the shrinker to a minimal (scale, fault-window) tuple,
// and (c) reproduced by replaying that tuple, tripping the same
// violation kind.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/mesi"
	"repro/internal/shrink"
	"repro/internal/system"
	"repro/internal/workloads"
)

// MESI L1 state ids as the legality table names them (the package keeps
// them unexported; the oracle only sees the ints).
const (
	mesiL1S = 1
	mesiL1E = 2
	mesiL1M = 3
)

// buggyTrigger is the number of fired evict faults (on one L1) after
// which the seeded bug reports its illegal transition.
const buggyTrigger = 12

// buggyMESI wraps the MESI protocol: same name (so the registered
// legality table applies), same controllers, but every L1 is wrapped so
// its evict-fault hook counts fires and, on the buggyTrigger-th one,
// reports a bogus M → E hop to the legality sink. The bug is
// fault-dependent on purpose: narrowing the injector's decision window
// masks it, which is exactly what the shrinker bisects.
type buggyMESI struct{ inner system.Protocol }

func (p buggyMESI) Name() string { return p.inner.Name() }

func (p buggyMESI) Build(cfg config.System, net coherence.Network, mem coherence.Memory) ([]coherence.L1Like, []coherence.Controller) {
	l1s, l2s := p.inner.Build(cfg, net, mem)
	for i, l1 := range l1s {
		l1s[i] = &buggyL1{L1Like: l1}
	}
	return l1s, l2s
}

type buggyL1 struct {
	coherence.L1Like
	sink  func(addr uint64, from, to int)
	fires int
}

// SetTransitionSink intercepts the oracle's sink so the wrapper can
// inject its bogus report, then forwards it to the real L1.
func (b *buggyL1) SetTransitionSink(f func(addr uint64, from, to int)) {
	b.sink = f
	if tr, ok := b.L1Like.(coherence.TransitionReporter); ok {
		tr.SetTransitionSink(f)
	}
}

// SetEvictFault wraps the injector's hook: fires pass through, and the
// buggyTrigger-th one also reports the illegal M → E transition.
func (b *buggyL1) SetEvictFault(g func() bool) {
	wrapped := func() bool {
		fired := g()
		if fired {
			b.fires++
			if b.fires == buggyTrigger && b.sink != nil {
				b.sink(0xbad0, mesiL1M, mesiL1E)
			}
		}
		return fired
	}
	if ef, ok := b.L1Like.(coherence.EvictFaulter); ok {
		ef.SetEvictFault(wrapped)
	}
}

func TestSeededLegalityBugShrinks(t *testing.T) {
	e := workloads.ByName("ssca2")
	proto := buggyMESI{inner: mesi.New()}
	probe := func(scale int, from, until uint64) shrink.Outcome {
		cfg := config.Small(4)
		cfg.FaultProfile = "evict:rate=400"
		cfg.FaultSeed = 11
		cfg.FaultFrom, cfg.FaultUntil = from, until
		cfg.Checks = true
		w := e.Gen(workloads.Params{Threads: 4, Scale: scale, Seed: 5})
		m, err := system.NewMachine(cfg, proto, w)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		out := shrink.Outcome{}
		_, rerr := m.Execute()
		out.MaxCounter = m.Injector().MaxCounter()
		if viols, n := m.Checks().Violations(); n > 0 {
			out.Failed = true
			out.Kind = viols[0].Kind
			out.Detail = viols[0].String()
		} else if rerr != nil {
			out.Failed = true
			out.Kind = "error"
			out.Detail = rerr.Error()
		}
		return out
	}

	// (a) The oracle catches the seeded bug on the unrestricted run.
	base := probe(4, 0, 0)
	if !base.Failed || base.Kind != "legality" {
		t.Fatalf("seeded bug not caught by the legality oracle: failed=%v kind=%q detail=%q",
			base.Failed, base.Kind, base.Detail)
	}
	if !strings.Contains(base.Detail, "M -> E") {
		t.Fatalf("violation does not name the illegal hop with protocol state names: %q", base.Detail)
	}

	// (b) The shrinker reduces it.
	r, err := shrink.Shrink(shrink.Input{Scale: 4, Run: probe})
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if r.Kind != "legality" {
		t.Fatalf("shrinker wandered to a different failure: kind=%q detail=%q", r.Kind, r.Detail)
	}
	if full := base.MaxCounter + 1; r.Until >= full {
		t.Fatalf("window not reduced: [%d,%d) vs full [0,%d)", r.From, r.Until, full)
	}

	// (c) Replaying the reduced tuple trips the same violation.
	again := probe(r.Scale, r.From, r.Until)
	if !again.Failed || again.Kind != "legality" || !strings.Contains(again.Detail, "M -> E") {
		t.Fatalf("reduced tuple did not reproduce the violation: failed=%v kind=%q detail=%q",
			again.Failed, again.Kind, again.Detail)
	}
}
