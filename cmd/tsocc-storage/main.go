// Command tsocc-storage reproduces the storage analysis: Table 1's bit
// accounting and Figure 2's coherence-storage-overhead sweep over core
// counts.
//
// Usage:
//
//	tsocc-storage
//	tsocc-storage -cores 64
package main

import (
	"flag"
	"fmt"

	"repro/internal/config"
	"repro/internal/storagemodel"
)

func main() {
	cores := flag.Int("cores", 32, "core count for the Table 1 accounting")
	flag.Parse()

	fmt.Println(storagemodel.Table1(*cores))
	fmt.Println(storagemodel.Figure2([]int{8, 16, 32, 48, 64, 80, 96, 112, 128}))

	g := storagemodel.PaperGeometry(32)
	g128 := storagemodel.PaperGeometry(128)
	fmt.Printf("paper check: TSO-CC-4-12-3 reduction vs MESI: %.0f%% at 32 cores (paper: 38%%), %.0f%% at 128 cores (paper: 82%%)\n",
		100*storagemodel.ReductionVsMESI(g, storagemodel.TSOCC(g, config.C12x3())),
		100*storagemodel.ReductionVsMESI(g128, storagemodel.TSOCC(g128, config.C12x3())))
	fmt.Printf("             CC-shared-to-L2 reduction at 32 cores: %.0f%% (paper: 76%%)\n",
		100*storagemodel.ReductionVsMESI(g, storagemodel.TSOCC(g, config.CCSharedToL2())))
}
