// Command tsocc-litmus runs the diy-style TSO litmus suite (§4.3)
// against every protocol configuration and reports violations.
//
// Usage:
//
//	tsocc-litmus -iters 50 -cores 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/obs"
)

func main() {
	iters := flag.Int("iters", 40, "iterations per test per protocol")
	cores := flag.Int("cores", 4, "core count (tests use up to 4 threads)")
	seed := flag.Uint64("seed", 0xC0FFEE, "perturbation seed")
	faultSpec := flag.String("faults", "", "fault-injection profile(s): jitter, pressure, burst, evict, reset-storm, victim; parameterized name:key=val and composed with + or , (empty = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed")
	checks := flag.Bool("checks", false, "enable runtime invariant oracles (SWMR, value, TSO order)")
	shards := flag.Int("shards", 0, "engine shards (0 = auto from GOMAXPROCS, 1 = single-threaded)")
	protoList := flag.String("proto", "", "comma-separated protocol subset (registry names; default all)")
	verbose := flag.Bool("v", false, "print outcome histograms")
	listW := flag.Bool("list-workloads", false, "list workloads (registry + synthetic extras) and exit")
	listP := flag.Bool("list-protocols", false, "list registered protocols and exit")
	metricsOut := flag.String("metrics", "", "write the metrics-registry dump (accumulated across all tests) to this file (.json = JSON, else text)")
	timelineOut := flag.String("timeline", "", "write a Chrome trace-event timeline (Perfetto / chrome://tracing) to this file")
	flag.Parse()

	if *listW || *listP {
		if *listW {
			harness.ListWorkloads(os.Stdout)
		}
		if *listP {
			harness.ListProtocols(os.Stdout)
		}
		return
	}

	protos := coherence.Protocols()
	if *protoList != "" {
		protos = protos[:0]
		for _, name := range strings.Split(*protoList, ",") {
			p, err := coherence.ProtocolByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			protos = append(protos, p)
		}
	}

	cfg := config.Small(*cores)
	cfg.FaultProfile = *faultSpec
	cfg.FaultSeed = *faultSeed
	cfg.Checks = *checks
	cfg.Shards = *shards
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	// One registry/timeline accumulates over every test × iteration
	// (litmus iterations are sequential, so sharing is race-free);
	// same-named series across runs merge at dump time.
	cfg.Obs = obs.FromPaths(*metricsOut, *timelineOut)
	failed := false
	for _, proto := range protos {
		fmt.Printf("== %s ==\n", proto.Name())
		for _, t := range litmus.Suite() {
			res, err := litmus.Run(t, proto, cfg, *iters, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "  %-12s ERROR: %v\n", t.Name, err)
				failed = true
				continue
			}
			status := "ok"
			if !res.Ok() {
				status = fmt.Sprintf("TSO VIOLATION %v", res.Violations)
				failed = true
			}
			extra := ""
			if t.Interesting != nil {
				if res.SawInteresting {
					extra = " (relaxed outcome observed)"
				} else {
					extra = " (relaxed outcome not observed)"
				}
			}
			fmt.Printf("  %-12s %d outcomes, %s%s\n", t.Name, len(res.Outcomes), status, extra)
			if *verbose {
				fmt.Println(res)
			}
		}
	}
	if werr := cfg.Obs.WriteFiles(*metricsOut, *timelineOut, 0); werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nall protocols satisfy TSO on the litmus suite")
}
