package main

import (
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// oldRecord is a pre-observability snapshot record: the obs series
// (tx_latency_mean_cycles, l1_miss_latency_mean_cycles,
// stall_cycles_total) are absent and decode to zero.
func oldRecord() benchfmt.Record {
	return benchfmt.Record{
		Benchmark:      "canneal",
		Protocol:       "TSO-CC-4-12-3",
		Cores:          8,
		HostNsPerCycle: 100,
		Speedup:        2.0,
	}
}

func newRecord() benchfmt.Record {
	r := oldRecord()
	r.HostNsPerCycle = 90
	r.TxLatencyMean = 42.5
	r.L1MissLatencyMean = 130.25
	r.StallCycles = 9001
	return r
}

// TestDiffOldVsNewSnapshot diffs a pre-obs snapshot against one
// carrying the new series: the diff must not report a regression from
// zero, just the new values.
func TestDiffOldVsNewSnapshot(t *testing.T) {
	prev := &benchfmt.Snapshot{Results: []benchfmt.Record{oldRecord()}}
	cur := &benchfmt.Snapshot{Results: []benchfmt.Record{newRecord()}}
	var b strings.Builder
	renderDiff(&b, prev, cur)
	out := b.String()
	if !strings.Contains(out, "canneal/TSO-CC-4-12-3") {
		t.Fatalf("diff lost the record:\n%s", out)
	}
	if !strings.Contains(out, "-> 42.50") {
		t.Errorf("obs series with absent old side should render '-> new', got:\n%s", out)
	}
	if strings.Contains(out, "0.0 -> 42.5") {
		t.Errorf("obs series must not diff against a pre-obs zero:\n%s", out)
	}
}

// TestDiffBothOldSnapshots diffs two pre-obs snapshots: obs columns
// render "-" rather than zero deltas.
func TestDiffBothOldSnapshots(t *testing.T) {
	prev := &benchfmt.Snapshot{Results: []benchfmt.Record{oldRecord()}}
	cur := &benchfmt.Snapshot{Results: []benchfmt.Record{oldRecord()}}
	var b strings.Builder
	renderDiff(&b, prev, cur)
	line := ""
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.Contains(l, "canneal") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("record line missing:\n%s", b.String())
	}
	if !strings.Contains(line, " - ") && !strings.HasSuffix(strings.TrimRight(line, " "), "-") {
		t.Errorf("obs columns for two pre-obs snapshots should render '-': %q", line)
	}
}

// TestGateIgnoresObsSeries ensures the regression gate still passes on
// a snapshot with no obs series (they are informational, not gated).
func TestGateIgnoresObsSeries(t *testing.T) {
	cur := &benchfmt.Snapshot{Results: []benchfmt.Record{oldRecord()}}
	var out, errs strings.Builder
	if !runGate(&out, &errs, cur, "x.json") {
		t.Fatalf("gate failed on a healthy pre-obs snapshot: %s", errs.String())
	}
}

func scalingPoint(cores int, speedup float64) benchfmt.ScalingPoint {
	return benchfmt.ScalingPoint{
		Benchmark:      "canneal",
		Protocol:       "TSO-CC-4-12-3",
		Cores:          cores,
		SimCycles:      100000,
		WallNsPerCycle: 1000 * speedup,
		WallNsEvent:    1000,
		Speedup:        speedup,
	}
}

// TestGateScalingParity: a scaling point at >= 64 cores where the event
// engine loses to the per-cycle ticker fails the gate; small-machine
// points are informational only.
func TestGateScalingParity(t *testing.T) {
	cur := &benchfmt.Snapshot{
		Results: []benchfmt.Record{oldRecord()},
		Scaling: []benchfmt.ScalingPoint{scalingPoint(8, 0.5), scalingPoint(64, 1.3)},
	}
	var out, errs strings.Builder
	if !runGate(&out, &errs, cur, "x.json") {
		t.Fatalf("gate failed on a healthy scaling curve: %s", errs.String())
	}
	if !strings.Contains(out.String(), "scaling points at >= 64 cores") {
		t.Errorf("gate did not report the scaling parity check:\n%s", out.String())
	}

	cur.Scaling = append(cur.Scaling, scalingPoint(128, 0.9))
	out.Reset()
	errs.Reset()
	if runGate(&out, &errs, cur, "x.json") {
		t.Fatal("gate passed a 128-core point with event engine slower than per-cycle")
	}
	if !strings.Contains(errs.String(), "scaling canneal/TSO-CC-4-12-3@128") {
		t.Errorf("gate failure did not name the offending scaling point:\n%s", errs.String())
	}
}

// TestDiffRendersScalingCurve: the scaling series renders against an
// old snapshot that predates it (points marked new) and against one
// that carries it (deltas).
func TestDiffRendersScalingCurve(t *testing.T) {
	prev := &benchfmt.Snapshot{Results: []benchfmt.Record{oldRecord()}}
	cur := &benchfmt.Snapshot{
		Results: []benchfmt.Record{newRecord()},
		Scaling: []benchfmt.ScalingPoint{scalingPoint(64, 1.5)},
	}
	var b strings.Builder
	renderDiff(&b, prev, cur)
	if !strings.Contains(b.String(), "canneal/TSO-CC-4-12-3@64") {
		t.Fatalf("scaling point missing from diff:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "(new)") {
		t.Errorf("scaling point against a pre-scaling snapshot should render (new):\n%s", b.String())
	}

	prev.Scaling = []benchfmt.ScalingPoint{scalingPoint(64, 1.2)}
	b.Reset()
	renderDiff(&b, prev, cur)
	if !strings.Contains(b.String(), "1200.0 -> 1500.0") {
		t.Errorf("scaling deltas not rendered:\n%s", b.String())
	}
}
