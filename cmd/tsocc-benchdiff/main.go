// Command tsocc-benchdiff compares simulator-throughput snapshots
// (the BENCH_*.json files written by `tsocc-bench -perf` / `make
// bench-json`) and gates engine-performance regressions.
//
// Usage:
//
//	tsocc-benchdiff old.json new.json   # per-workload deltas
//	tsocc-benchdiff -gate new.json      # regression gate only
//	tsocc-benchdiff -gate old.json new.json
//
// The gate fails (exit 1) if any benchmark in the newest snapshot has
// event_vs_percycle_speedup < 1.0 — the event engine must never be
// slower than the per-cycle conformance ticker on any measured
// workload — or if the snapshot contains no measurements at all (a
// vacuously green gate is a disarmed gate). Records whose parallel leg
// ran at >= 4 shards with GOMAXPROCS >= 4 must additionally show
// parallel_vs_serial_speedup >= 1.0: with enough CPUs behind it the
// sharded engine must never lose to the single-threaded one. Records
// timed without the CPUs to back the shards (gomaxprocs < 4) carry the
// numbers but are exempt — a 1-CPU runner interleaving 4 shards proves
// nothing about the parallel engine. Speedups are within-host ratios,
// so the gate is meaningful on any machine; absolute ns/cycle deltas
// are only comparable when the recorded host metadata matches.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	gate := flag.Bool("gate", false, "fail (exit 1) if any benchmark's event_vs_percycle_speedup < 1.0")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 1:
		newPath = flag.Arg(0)
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: tsocc-benchdiff [-gate] [old.json] new.json")
		os.Exit(2)
	}

	cur, err := benchfmt.Load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if oldPath != "" {
		prev, err := benchfmt.Load(oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		renderDiff(os.Stdout, prev, cur)
	}

	if *gate {
		if !runGate(os.Stdout, os.Stderr, cur, newPath) {
			os.Exit(1)
		}
	}
}

// renderDiff writes the per-record comparison table. A zero value on
// the old side of a series means the snapshot predates that field
// (schema growth: parallel legs arrived in PR 7, obs series in PR 9),
// so those cells render "-> new" or "-" instead of a delta against
// zero — old snapshots stay diffable forever.
func renderDiff(w io.Writer, prev, cur *benchfmt.Snapshot) {
	if prev.Host != cur.Host && prev.Host != (benchfmt.Host{}) {
		fmt.Fprintf(w, "note: snapshots from different hosts (%s %s/%s %d cpu vs %s %s/%s %d cpu); "+
			"only speedup ratios are comparable\n\n",
			prev.Host.GoVersion, prev.Host.GOOS, prev.Host.GOARCH, prev.Host.NumCPU,
			cur.Host.GoVersion, cur.Host.GOOS, cur.Host.GOARCH, cur.Host.NumCPU)
	}
	byKey := map[string]benchfmt.Record{}
	for _, r := range prev.Results {
		byKey[r.Key()] = r
	}
	fmt.Fprintf(w, "%-28s %26s %22s %20s %24s %22s\n", "benchmark/protocol",
		"host_ns/cycle", "event/percycle", "trace B/op", "tx_lat cyc", "stall cyc")
	for _, r := range cur.Results {
		o, ok := byKey[r.Key()]
		if !ok {
			fmt.Fprintf(w, "%-28s %26s %22s %20s %24s %22s  (new)\n", r.Key(),
				fmt.Sprintf("%.1f", r.HostNsPerCycle),
				fmt.Sprintf("%.2f", r.Speedup),
				fmt.Sprintf("%.2f", r.TraceBytesPerOp),
				fmt.Sprintf("%.1f", r.TxLatencyMean),
				fmt.Sprintf("%d", r.StallCycles))
			continue
		}
		fmt.Fprintf(w, "%-28s %26s %22s %20s %24s %22s\n", r.Key(),
			deltaStr(o.HostNsPerCycle, r.HostNsPerCycle),
			deltaStr(o.Speedup, r.Speedup),
			deltaStr(o.TraceBytesPerOp, r.TraceBytesPerOp),
			obsDeltaStr(o.TxLatencyMean, r.TxLatencyMean),
			obsDeltaStr(float64(o.StallCycles), float64(r.StallCycles)))
	}
}

// runGate applies the regression gate to cur, reporting failures to
// errw; it returns false when the gate fails.
func runGate(w, errw io.Writer, cur *benchfmt.Snapshot, path string) bool {
	if len(cur.Results) == 0 {
		fmt.Fprintf(errw, "GATE FAIL: %s contains no measurements\n", path)
		return false
	}
	ok := true
	gated := 0
	for _, r := range cur.Results {
		if r.Speedup < 1.0 {
			fmt.Fprintf(errw, "GATE FAIL: %s event_vs_percycle_speedup = %.3f < 1.0\n",
				r.Key(), r.Speedup)
			ok = false
		}
		if r.Shards >= 4 && r.GOMAXPROCS >= 4 {
			gated++
			if r.ParallelSpeedup < 1.0 {
				fmt.Fprintf(errw,
					"GATE FAIL: %s parallel_vs_serial_speedup = %.3f < 1.0 (shards=%d, gomaxprocs=%d)\n",
					r.Key(), r.ParallelSpeedup, r.Shards, r.GOMAXPROCS)
				ok = false
			}
		}
	}
	if !ok {
		return false
	}
	fmt.Fprintf(w, "gate ok: event engine >= per-cycle on all %d benchmarks\n", len(cur.Results))
	if gated > 0 {
		fmt.Fprintf(w, "gate ok: sharded engine >= serial on all %d parallel-timed benchmarks\n", gated)
	}
	return true
}

// deltaStr renders "old -> new (+x%)" (the percentage is new vs old).
func deltaStr(o, n float64) string {
	if o == 0 {
		return fmt.Sprintf("-> %.2f", n)
	}
	pct := 100 * (n - o) / o
	return fmt.Sprintf("%.1f -> %.1f (%+.0f%%)", o, n, pct)
}

// obsDeltaStr is deltaStr for optional series: both sides absent
// (pre-obs snapshots) renders "-", an absent old side "-> new".
func obsDeltaStr(o, n float64) string {
	if o == 0 && n == 0 {
		return "-"
	}
	return deltaStr(o, n)
}
