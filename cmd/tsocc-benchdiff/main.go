// Command tsocc-benchdiff compares simulator-throughput snapshots
// (the BENCH_*.json files written by `tsocc-bench -perf` / `make
// bench-json`) and gates engine-performance regressions.
//
// Usage:
//
//	tsocc-benchdiff old.json new.json   # per-workload deltas
//	tsocc-benchdiff -gate new.json      # regression gate only
//	tsocc-benchdiff -gate old.json new.json
//
// The gate fails (exit 1) if any benchmark in the newest snapshot has
// event_vs_percycle_speedup < 1.0 — the event engine must never be
// slower than the per-cycle conformance ticker on any measured
// workload — or if the snapshot contains no measurements at all (a
// vacuously green gate is a disarmed gate). The same parity bound
// applies to every scaling-curve point at >= 64 cores: scale is where
// the wake-set engine pays for itself, so losing to the per-cycle
// ticker on a large machine is a regression even if the 32-core
// records stay green. Records whose parallel leg
// ran at >= 4 shards with GOMAXPROCS >= 4 must additionally show
// parallel_vs_serial_speedup >= 1.0: with enough CPUs behind it the
// sharded engine must never lose to the single-threaded one. Records
// timed without the CPUs to back the shards (gomaxprocs < 4) carry the
// numbers but are exempt — a 1-CPU runner interleaving 4 shards proves
// nothing about the parallel engine. Speedups are within-host ratios,
// so the gate is meaningful on any machine; absolute ns/cycle deltas
// are only comparable when the recorded host metadata matches.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	gate := flag.Bool("gate", false, "fail (exit 1) if any benchmark's event_vs_percycle_speedup < 1.0")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 1:
		newPath = flag.Arg(0)
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: tsocc-benchdiff [-gate] [old.json] new.json")
		os.Exit(2)
	}

	cur, err := benchfmt.Load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if oldPath != "" {
		prev, err := benchfmt.Load(oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		renderDiff(os.Stdout, prev, cur)
	}

	if *gate {
		if !runGate(os.Stdout, os.Stderr, cur, newPath) {
			os.Exit(1)
		}
	}
}

// renderDiff writes the per-record comparison table. A zero value on
// the old side of a series means the snapshot predates that field
// (schema growth: parallel legs arrived in PR 7, obs series in PR 9),
// so those cells render "-> new" or "-" instead of a delta against
// zero — old snapshots stay diffable forever.
func renderDiff(w io.Writer, prev, cur *benchfmt.Snapshot) {
	if prev.Host != cur.Host && prev.Host != (benchfmt.Host{}) {
		fmt.Fprintf(w, "note: snapshots from different hosts (%s %s/%s %d cpu vs %s %s/%s %d cpu); "+
			"only speedup ratios are comparable\n\n",
			prev.Host.GoVersion, prev.Host.GOOS, prev.Host.GOARCH, prev.Host.NumCPU,
			cur.Host.GoVersion, cur.Host.GOOS, cur.Host.GOARCH, cur.Host.NumCPU)
	}
	byKey := map[string]benchfmt.Record{}
	for _, r := range prev.Results {
		byKey[r.Key()] = r
	}
	fmt.Fprintf(w, "%-28s %26s %22s %20s %24s %22s\n", "benchmark/protocol",
		"host_ns/cycle", "event/percycle", "trace B/op", "tx_lat cyc", "stall cyc")
	for _, r := range cur.Results {
		o, ok := byKey[r.Key()]
		if !ok {
			fmt.Fprintf(w, "%-28s %26s %22s %20s %24s %22s  (new)\n", r.Key(),
				fmt.Sprintf("%.1f", r.HostNsPerCycle),
				fmt.Sprintf("%.2f", r.Speedup),
				fmt.Sprintf("%.2f", r.TraceBytesPerOp),
				fmt.Sprintf("%.1f", r.TxLatencyMean),
				fmt.Sprintf("%d", r.StallCycles))
			continue
		}
		fmt.Fprintf(w, "%-28s %26s %22s %20s %24s %22s\n", r.Key(),
			deltaStr(o.HostNsPerCycle, r.HostNsPerCycle),
			deltaStr(o.Speedup, r.Speedup),
			deltaStr(o.TraceBytesPerOp, r.TraceBytesPerOp),
			obsDeltaStr(o.TxLatencyMean, r.TxLatencyMean),
			obsDeltaStr(float64(o.StallCycles), float64(r.StallCycles)))
	}
	if len(cur.Scaling) > 0 {
		renderScaling(w, prev, cur)
	}
}

// renderScaling writes the scaling-curve comparison: host-ns per
// simulated cycle against core count, per engine. Points are keyed by
// benchmark/protocol@cores; an old snapshot without the series (or
// without a given point) renders the new numbers alone.
func renderScaling(w io.Writer, prev, cur *benchfmt.Snapshot) {
	key := func(p benchfmt.ScalingPoint) string {
		return fmt.Sprintf("%s/%s@%d", p.Benchmark, p.Protocol, p.Cores)
	}
	byKey := map[string]benchfmt.ScalingPoint{}
	for _, p := range prev.Scaling {
		byKey[key(p)] = p
	}
	fmt.Fprintf(w, "\nscaling curve (host ns / sim cycle)\n")
	fmt.Fprintf(w, "%-34s %26s %26s %22s\n", "benchmark/protocol@cores",
		"percycle", "event", "sharded")
	for _, p := range cur.Scaling {
		o, ok := byKey[key(p)]
		if !ok {
			fmt.Fprintf(w, "%-34s %26s %26s %22s  (new)\n", key(p),
				fmt.Sprintf("%.1f", p.WallNsPerCycle),
				fmt.Sprintf("%.1f", p.WallNsEvent),
				shardedStr(p))
			continue
		}
		fmt.Fprintf(w, "%-34s %26s %26s %22s\n", key(p),
			deltaStr(o.WallNsPerCycle, p.WallNsPerCycle),
			deltaStr(o.WallNsEvent, p.WallNsEvent),
			obsDeltaStr(o.WallNsParallel, p.WallNsParallel))
	}
}

// shardedStr renders a new point's sharded column ("-" when the leg
// did not run).
func shardedStr(p benchfmt.ScalingPoint) string {
	if p.WallNsParallel == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f (x%d)", p.WallNsParallel, p.Shards)
}

// runGate applies the regression gate to cur, reporting failures to
// errw; it returns false when the gate fails.
func runGate(w, errw io.Writer, cur *benchfmt.Snapshot, path string) bool {
	if len(cur.Results) == 0 {
		fmt.Fprintf(errw, "GATE FAIL: %s contains no measurements\n", path)
		return false
	}
	ok := true
	gated := 0
	for _, r := range cur.Results {
		if r.Speedup < 1.0 {
			fmt.Fprintf(errw, "GATE FAIL: %s event_vs_percycle_speedup = %.3f < 1.0\n",
				r.Key(), r.Speedup)
			ok = false
		}
		if r.Shards >= 4 && r.GOMAXPROCS >= 4 {
			gated++
			if r.ParallelSpeedup < 1.0 {
				fmt.Fprintf(errw,
					"GATE FAIL: %s parallel_vs_serial_speedup = %.3f < 1.0 (shards=%d, gomaxprocs=%d)\n",
					r.Key(), r.ParallelSpeedup, r.Shards, r.GOMAXPROCS)
				ok = false
			}
		}
	}
	scaleGated := 0
	for _, p := range cur.Scaling {
		if p.Cores < 64 {
			continue
		}
		scaleGated++
		if p.Speedup < 1.0 {
			fmt.Fprintf(errw,
				"GATE FAIL: scaling %s/%s@%d cores event_vs_percycle_speedup = %.3f < 1.0\n",
				p.Benchmark, p.Protocol, p.Cores, p.Speedup)
			ok = false
		}
	}
	if !ok {
		return false
	}
	fmt.Fprintf(w, "gate ok: event engine >= per-cycle on all %d benchmarks\n", len(cur.Results))
	if gated > 0 {
		fmt.Fprintf(w, "gate ok: sharded engine >= serial on all %d parallel-timed benchmarks\n", gated)
	}
	if scaleGated > 0 {
		fmt.Fprintf(w, "gate ok: event engine >= per-cycle on all %d scaling points at >= 64 cores\n", scaleGated)
	}
	return true
}

// deltaStr renders "old -> new (+x%)" (the percentage is new vs old).
func deltaStr(o, n float64) string {
	if o == 0 {
		return fmt.Sprintf("-> %.2f", n)
	}
	pct := 100 * (n - o) / o
	return fmt.Sprintf("%.1f -> %.1f (%+.0f%%)", o, n, pct)
}

// obsDeltaStr is deltaStr for optional series: both sides absent
// (pre-obs snapshots) renders "-", an absent old side "-> new".
func obsDeltaStr(o, n float64) string {
	if o == 0 && n == 0 {
		return "-"
	}
	return deltaStr(o, n)
}
