// Command tsocc-trace drives the memory-trace subsystem: it records
// benchmark runs into compact binary trace files, replays them through
// any registered protocol, synthesizes parameterized access-pattern
// traces, and inspects trace files.
//
// Usage:
//
//	tsocc-trace record -bench x264 -proto TSO-CC-4-12-3 -cores 8 -o x264.trc
//	tsocc-trace replay -i x264.trc
//	tsocc-trace replay -i x264.trc -proto MESI            # cross-protocol
//	tsocc-trace synth  -kind zipf -cores 8 -ops 4096 -o zipf.trc
//	tsocc-trace info   -i x264.trc
//
// Replaying a trace on its recording protocol and geometry reproduces
// the original run bit for bit (record with -stats A, replay with
// -stats B: the files diff clean — this is the CI trace gate). Replay
// on a different protocol is an elastic re-execution preserving op
// order and compute gaps.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workloads"

	// Protocol packages register themselves; importing them populates
	// the registry this command resolves -proto against.
	_ "repro/internal/mesi"
	_ "repro/internal/tsocc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tsocc-trace <record|replay|synth|info> [flags]

  record  run a benchmark with capture on and write the trace file
  replay  re-execute a trace file through a coherence protocol
  synth   generate a synthetic access-pattern trace (zipf|migratory|scan)
  info    print a trace file's header and stream statistics

run "tsocc-trace <subcommand> -h" for flags`)
}

// writeStats writes a run summary to path (the record/replay diff gate).
func writeStats(path string, res *system.Result) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte(res.Summary()), 0o644)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "x264", "benchmark name (see -list-workloads)")
	proto := fs.String("proto", "TSO-CC-4-12-3", "protocol to record under")
	cores := fs.Int("cores", 8, "core count")
	scale := fs.Int("scale", 1, "workload size multiplier")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "", "output trace file (required)")
	stats := fs.String("stats", "", "also write the run summary to this file")
	metricsOut := fs.String("metrics", "", "write the metrics-registry dump to this file (.json = JSON, else text)")
	timelineOut := fs.String("timeline", "", "write a Chrome trace-event timeline (Perfetto / chrome://tracing) to this file")
	listW := fs.Bool("list-workloads", false, "list workloads and exit")
	listP := fs.Bool("list-protocols", false, "list protocols and exit")
	fs.Parse(args)
	if handleLists(*listW, *listP) {
		return nil
	}
	if *out == "" {
		return fmt.Errorf("record: -o is required")
	}
	p, err := coherence.ProtocolByName(*proto)
	if err != nil {
		return err
	}
	e := workloads.ByName(*bench)
	if e == nil {
		return fmt.Errorf("unknown benchmark %q (see -list-workloads)", *bench)
	}
	cfg := config.Scaled(*cores)
	cfg.Obs = obs.FromPaths(*metricsOut, *timelineOut)
	w := e.Gen(workloads.Params{Threads: *cores, Scale: *scale, Seed: *seed})
	res, tr, err := system.RunRecorded(cfg, p, w, *seed)
	if werr := cfg.Obs.WriteFiles(*metricsOut, *timelineOut, resultCycles(res)); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return err
	}
	if res.CheckErr != nil {
		return fmt.Errorf("functional check failed: %w", res.CheckErr)
	}
	n, err := writeTrace(*out, tr)
	if err != nil {
		return err
	}
	fmt.Print(res.Summary())
	fmt.Printf("\nwrote %s: %d ops across %d streams, %d bytes (%.2f bytes/op)\n",
		*out, tr.Ops(), len(tr.Streams), n, float64(n)/float64(tr.Ops()))
	return writeStats(*stats, res)
}

// writeTrace encodes once, writes the file, and reports the byte size.
func writeTrace(path string, tr *trace.Trace) (int, error) {
	data, err := trace.Encode(tr)
	if err != nil {
		return 0, err
	}
	return len(data), os.WriteFile(path, data, 0o644)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	proto := fs.String("proto", "", "protocol to replay on (default: the recording protocol)")
	cores := fs.Int("cores", 0, "core count override (default: recorded geometry)")
	perCycle := fs.Bool("percycle", false, "use the per-cycle conformance engine")
	faultSpec := fs.String("faults", "", "fault-injection profile(s): jitter, pressure, burst, evict, reset-storm, victim; parameterized name:key=val and composed with + or , (empty = off)")
	faultSeed := fs.Uint64("fault-seed", 1, "fault-injection seed")
	checks := fs.Bool("checks", false, "enable runtime invariant oracles during replay")
	stats := fs.String("stats", "", "also write the run summary to this file")
	metricsOut := fs.String("metrics", "", "write the metrics-registry dump to this file (.json = JSON, else text)")
	timelineOut := fs.String("timeline", "", "write a Chrome trace-event timeline (Perfetto / chrome://tracing) to this file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("replay: -i is required")
	}
	tr, err := trace.ReadFile(*in)
	if err != nil {
		return err
	}
	name := *proto
	if name == "" {
		name = tr.Meta.Protocol
	}
	p, err := coherence.ProtocolByName(name)
	if err != nil {
		if *proto == "" {
			return fmt.Errorf("trace was recorded under unregistered protocol %q; select one with -proto: %w",
				tr.Meta.Protocol, err)
		}
		return err
	}
	cfg := tr.Meta.Sys
	cfg.PerCycleEngine = *perCycle
	cfg.FaultProfile = *faultSpec
	cfg.FaultSeed = *faultSeed
	cfg.Checks = *checks
	if *cores > 0 {
		cfg.Cores = *cores
		cfg.MeshRows = 0
	}
	cfg.Obs = obs.FromPaths(*metricsOut, *timelineOut)
	res, err := system.Replay(cfg, p, tr)
	if werr := cfg.Obs.WriteFiles(*metricsOut, *timelineOut, resultCycles(res)); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return err
	}
	fmt.Print(res.Summary())
	return writeStats(*stats, res)
}

// resultCycles reports a run's final cycle for the timeline flush (0
// when the run failed before producing a result).
func resultCycles(res *system.Result) int64 {
	if res == nil {
		return 0
	}
	return int64(res.Cycles)
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	kind := fs.String("kind", "zipf", "pattern: zipf | migratory | scan")
	cores := fs.Int("cores", 8, "core count")
	ops := fs.Int("ops", 1024, "memory operations per core")
	seed := fs.Uint64("seed", 1, "generator seed")
	blocks := fs.Int("blocks", 0, "working-set size in cache blocks (0 = pattern default)")
	maxGap := fs.Int64("maxgap", 0, "compute gap upper bound in cycles (0 = default)")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("synth: -o is required")
	}
	p := trace.SynthParams{Cores: *cores, OpsPerCore: *ops, Seed: *seed,
		Blocks: *blocks, MaxGap: *maxGap}
	var tr *trace.Trace
	switch *kind {
	case "zipf":
		tr = trace.Zipf(p)
	case "migratory":
		tr = trace.Migratory(p)
	case "scan":
		tr = trace.Scan(p)
	default:
		return fmt.Errorf("unknown synth kind %q (zipf | migratory | scan)", *kind)
	}
	n, err := writeTrace(*out, tr)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s, %d ops across %d streams, %d bytes (%.2f bytes/op)\n",
		*out, tr.Meta.Workload, tr.Ops(), len(tr.Streams), n, float64(n)/float64(tr.Ops()))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info: -i is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	tr, err := trace.Decode(data)
	if err != nil {
		return err
	}
	sys := tr.Meta.Sys
	fmt.Printf("trace %s (%d bytes, %.2f bytes/op)\n", *in,
		len(data), float64(len(data))/float64(max(tr.Ops(), 1)))
	fmt.Printf("  workload:  %s (seed %d)\n", tr.Meta.Workload, tr.Meta.Seed)
	fmt.Printf("  protocol:  %s\n", tr.Meta.Protocol)
	fmt.Printf("  geometry:  %d cores, L1 %dB/%dw, L2 tile %dB/%dw, WB %d, mesh rows %d\n",
		sys.Cores, sys.L1Size, sys.L1Ways, sys.L2TileSize, sys.L2Ways,
		sys.WriteBuffer, sys.MeshRows)
	fmt.Printf("  init mem:  %d words\n", len(tr.InitMem))
	var kinds [config.NumTraceOps]int64
	for _, s := range tr.Streams {
		for _, op := range s.Ops {
			kinds[op.Kind]++
		}
	}
	fmt.Printf("  streams:   %d (total %d ops)\n", len(tr.Streams), tr.Ops())
	for _, s := range tr.Streams {
		fmt.Printf("    core %-3d %d ops\n", s.Core, len(s.Ops))
	}
	fmt.Printf("  op mix:   ")
	for k := config.TraceOp(0); k < config.NumTraceOps; k++ {
		if kinds[k] > 0 {
			fmt.Printf(" %s=%d", k, kinds[k])
		}
	}
	fmt.Println()
	return nil
}

// handleLists serves the shared -list-workloads/-list-protocols flags.
func handleLists(listW, listP bool) bool {
	if listW {
		harness.ListWorkloads(os.Stdout)
	}
	if listP {
		harness.ListProtocols(os.Stdout)
	}
	return listW || listP
}
