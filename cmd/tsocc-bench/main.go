// Command tsocc-bench reproduces the paper's evaluation: it runs the
// full benchmark × protocol grid at 32 cores and prints Figures 3–9 (as
// text tables), plus the Table 1 / Figure 2 storage analysis.
//
// Usage:
//
//	tsocc-bench                  # everything
//	tsocc-bench -figure 3        # one figure
//	tsocc-bench -bench intruder  # restrict benchmarks
//	tsocc-bench -cores 16 -scale 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/storagemodel"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tsocc"
	"repro/internal/workloads"
)

func main() {
	cores := flag.Int("cores", 32, "core count")
	scale := flag.Int("scale", 1, "workload size multiplier")
	seed := flag.Uint64("seed", 1, "workload seed")
	figure := flag.Int("figure", 0, "single figure to produce (2-9; 0 = all)")
	benchList := flag.String("bench", "", "comma-separated benchmark subset")
	protoList := flag.String("proto", "", "comma-separated protocol subset (registry names; default all)")
	listProtos := flag.Bool("list-protocols", false, "list registered protocols and exit")
	listWorkloads := flag.Bool("list-workloads", false, "list workloads (registry + synthetic extras) and exit")
	traceOut := flag.String("trace-out", "", "record a single -bench × -proto run into this trace file and exit")
	traceIn := flag.String("trace-in", "", "replay this trace file (optionally under -proto) and exit")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	perf := flag.Bool("perf", false, "report simulator throughput (cycles/sec, ns/simcycle) as JSON and exit")
	scaling := flag.String("scaling", "", "-perf only: comma-separated core counts for the scaling-curve leg (e.g. 8,64,128,256; empty = off)")
	batched := flag.Bool("batched", true, "batched straight-line core execution (config.System.BatchedCore)")
	shards := flag.Int("shards", 0, "engine shards (0 = auto from GOMAXPROCS, 1 = single-threaded)")
	faultSpec := flag.String("faults", "", "fault-injection profile(s): jitter, pressure, burst, evict, reset-storm, victim; parameterized name:key=val and composed with + or , (empty = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed")
	checks := flag.Bool("checks", false, "enable runtime invariant oracles (SWMR, value, TSO order)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on (successful) exit")
	metricsOut := flag.String("metrics", "", "trace mode only: write the metrics-registry dump to this file (.json = JSON, else text)")
	timelineOut := flag.String("timeline", "", "trace mode only: write a Chrome trace-event timeline (Perfetto / chrome://tracing) to this file")
	pprofLabels := flag.Bool("pprof-labels", false, "label goroutines and component ticks for -cpuprofile attribution (adds host-time cost)")
	flag.Parse()

	// Profiles cover the whole selected mode (grid or -perf); error
	// paths exit through os.Exit and intentionally skip them.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	if *listProtos || *listWorkloads {
		if *listWorkloads {
			harness.ListWorkloads(os.Stdout)
		}
		if *listProtos {
			harness.ListProtocols(os.Stdout)
		}
		return
	}
	var protos []system.Protocol
	if *protoList != "" {
		for _, name := range strings.Split(*protoList, ",") {
			p, err := coherence.ProtocolByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			protos = append(protos, p)
		}
	}

	// 0 = auto: follow GOMAXPROCS (1 on a single-CPU runner, which is
	// exactly the single-threaded engine).
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}

	if *traceOut != "" || *traceIn != "" {
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if err := runTraceMode(*traceOut, *traceIn, *benchList, protos,
			*cores, *scale, *seed, *shards, explicit,
			*metricsOut, *timelineOut, *pprofLabels); err != nil {
			fmt.Fprintln(os.Stderr, "trace mode:", err)
			os.Exit(1)
		}
		return
	}

	if *metricsOut != "" || *timelineOut != "" {
		// Grid legs share one config across parallel workers and -perf
		// arms its own registry for the snapshot series; a per-run dump
		// belongs to the single-run CLIs.
		fmt.Fprintln(os.Stderr, "-metrics/-timeline apply to trace mode only; for a single observed run use tsocc-sim")
		os.Exit(1)
	}

	if *perf {
		// -perf times every engine/core mode itself; a -batched
		// selection would be silently meaningless, so reject it.
		explicitBatched := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "batched" {
				explicitBatched = true
			}
		})
		if explicitBatched {
			fmt.Fprintln(os.Stderr, "-batched has no effect under -perf (all modes are timed); drop it or use the grid mode")
			os.Exit(1)
		}
		var benches []string
		if *benchList != "" {
			benches = strings.Split(*benchList, ",")
		}
		scalingCores, err := parseScaling(*scaling)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runPerf(*cores, *scale, *seed, *shards, benches, protos,
			*faultSpec, *faultSeed, *checks, *pprofLabels, scalingCores); err != nil {
			fmt.Fprintln(os.Stderr, "perf failed:", err)
			os.Exit(1)
		}
		return
	}
	if *scaling != "" {
		fmt.Fprintln(os.Stderr, "-scaling applies to -perf only")
		os.Exit(1)
	}

	// Storage figures need no simulation.
	if *figure == 2 {
		fmt.Println(storagemodel.Figure2([]int{8, 16, 32, 48, 64, 80, 96, 112, 128}))
		return
	}

	var benches []string
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
	}
	cfg := config.Scaled(*cores)
	cfg.BatchedCore = *batched
	cfg.FaultProfile = *faultSpec
	cfg.FaultSeed = *faultSeed
	cfg.Checks = *checks
	cfg.Shards = *shards
	if *pprofLabels {
		cfg.Obs = &obs.Obs{ProfileLabels: true}
	}
	p := workloads.Params{Threads: *cores, Scale: *scale, Seed: *seed}

	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	t0 := time.Now()
	grid, err := harness.RunGrid(cfg, p, protos, benches, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grid failed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "grid complete in %v\n\n", time.Since(t0).Round(time.Millisecond))

	show := func(n int) bool { return *figure == 0 || *figure == n }
	if show(3) {
		fmt.Println(grid.Figure3())
	}
	if show(4) {
		fmt.Println(grid.Figure4())
	}
	if show(5) {
		fmt.Println(grid.Figure5())
	}
	if show(6) {
		fmt.Println(grid.Figure6())
	}
	if show(7) {
		fmt.Println(grid.Figure7())
	}
	if show(8) {
		fmt.Println(grid.Figure8())
	}
	if show(9) {
		fmt.Println(grid.Figure9())
	}
	if *figure == 0 {
		fmt.Println(storagemodel.Table1(*cores))
		fmt.Println(storagemodel.Figure2([]int{8, 16, 32, 48, 64, 80, 96, 112, 128}))
		fmt.Println(grid.SummaryHighlights())
	}
}

// runTraceMode serves -trace-out (record one benchmark × protocol cell
// into a trace file) and -trace-in (replay a trace file on its recorded
// geometry — or an explicit -cores override — optionally on a different
// protocol).
func runTraceMode(traceOut, traceIn, benchList string, protos []system.Protocol,
	cores, scale int, seed uint64, shards int, explicit map[string]bool,
	metricsOut, timelineOut string, pprofLabels bool) error {

	if traceOut != "" && traceIn != "" {
		return fmt.Errorf("-trace-out and -trace-in are mutually exclusive")
	}
	obsCfg := obs.FromPaths(metricsOut, timelineOut)
	if pprofLabels {
		if obsCfg == nil {
			obsCfg = &obs.Obs{}
		}
		obsCfg.ProfileLabels = true
	}
	if traceOut != "" {
		if strings.Contains(benchList, ",") || len(protos) > 1 {
			return fmt.Errorf("-trace-out records a single run: select exactly one -bench and at most one -proto")
		}
		bench := strings.TrimSpace(benchList)
		if bench == "" {
			return fmt.Errorf("-trace-out requires -bench")
		}
		e := workloads.ByName(bench)
		if e == nil {
			return fmt.Errorf("unknown benchmark %q", bench)
		}
		proto := system.Protocol(tsocc.New(config.C12x3()))
		if len(protos) == 1 {
			proto = protos[0]
		}
		cfg := config.Scaled(cores)
		cfg.Shards = shards
		cfg.Obs = obsCfg
		w := e.Gen(workloads.Params{Threads: cores, Scale: scale, Seed: seed})
		res, tr, err := system.RunRecorded(cfg, proto, w, seed)
		var final int64
		if res != nil {
			final = int64(res.Cycles)
		}
		if werr := obsCfg.WriteFiles(metricsOut, timelineOut, final); werr != nil && err == nil {
			err = werr
		}
		if err != nil {
			return err
		}
		if res.CheckErr != nil {
			return fmt.Errorf("functional check failed: %w", res.CheckErr)
		}
		if err := trace.WriteFile(traceOut, tr); err != nil {
			return err
		}
		fmt.Print(res.Summary())
		fmt.Printf("\nwrote %s: %d ops across %d streams\n", traceOut, tr.Ops(), len(tr.Streams))
		return nil
	}
	if explicit["bench"] || explicit["scale"] || explicit["seed"] {
		return fmt.Errorf("-trace-in replays the recorded stream; -bench/-scale/-seed have no effect — drop them")
	}
	tr, err := trace.ReadFile(traceIn)
	if err != nil {
		return err
	}
	cfg := tr.Meta.Sys
	cfg.Shards = shards
	if explicit["cores"] {
		cfg.Cores = cores
		cfg.MeshRows = 0
	}
	proto := protos
	if len(proto) == 0 {
		p, err := coherence.ProtocolByName(tr.Meta.Protocol)
		if err != nil {
			return fmt.Errorf("trace recorded under unregistered protocol %q; select one with -proto: %w",
				tr.Meta.Protocol, err)
		}
		proto = []system.Protocol{p}
	}
	if len(proto) > 1 && obsCfg != nil && (metricsOut != "" || timelineOut != "") {
		return fmt.Errorf("-metrics/-timeline observe a single replay: select one -proto")
	}
	cfg.Obs = obsCfg
	for _, p := range proto {
		res, err := system.Replay(cfg, p, tr)
		var final int64
		if res != nil {
			final = int64(res.Cycles)
		}
		if werr := obsCfg.WriteFiles(metricsOut, timelineOut, final); werr != nil && err == nil {
			err = werr
		}
		if err != nil {
			return err
		}
		fmt.Print(res.Summary())
		fmt.Println()
	}
	return nil
}

// perfModes are the timed configurations, slowest baseline first; the
// last entry is the production default whose numbers fill the headline
// throughput fields.
var perfModes = []struct {
	perCycle bool
	batched  bool
}{
	{perCycle: true, batched: false},
	{perCycle: false, batched: false},
	{perCycle: false, batched: true},
}

// parseScaling turns the -scaling flag value into a core-count list.
func parseScaling(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var cores []int
	for _, f := range strings.Split(spec, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c <= 0 || c > config.MaxCores {
			return nil, fmt.Errorf("-scaling: bad core count %q (want 1..%d)", f, config.MaxCores)
		}
		cores = append(cores, c)
	}
	return cores, nil
}

// runPerf measures simulated-cycles-per-second for each benchmark ×
// protocol under every engine/core mode and prints one JSON array. With
// no -proto selection it measures the paper's best realistic
// configuration. The synthetic "dense-compute" ALU workload (the
// batched-core acceptance case) is always appended to the selection.
func runPerf(cores, scale int, seed uint64, shards int, benches []string, protos []system.Protocol,
	faultSpec string, faultSeed uint64, checks bool, pprofLabels bool, scalingCores []int) error {
	// The scaling leg re-times real workloads at each requested machine
	// size; the synthetic ALU benchmark would only measure the batched
	// core, so it is excluded even when -bench selects it.
	var scalingBenches []string
	if len(benches) == 0 {
		scalingBenches = []string{"canneal", "ssca2"}
	} else {
		for _, b := range benches {
			if b != "dense-compute" {
				scalingBenches = append(scalingBenches, b)
			}
		}
	}
	if len(benches) == 0 {
		benches = []string{"canneal", "x264", "ssca2"}
	}
	hasDense := false
	for _, b := range benches {
		if b == "dense-compute" {
			hasDense = true
		}
	}
	if !hasDense {
		benches = append(benches, "dense-compute")
	}
	if len(protos) == 0 {
		protos = []system.Protocol{tsocc.New(config.C12x3())}
	}
	p := workloads.Params{Threads: cores, Scale: scale, Seed: seed}
	// The snapshot schema (host metadata + one record per benchmark ×
	// protocol) is shared with its reader, tsocc-benchdiff, via
	// internal/benchfmt.
	out := benchfmt.Snapshot{Host: benchfmt.Host{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ChecksEnabled: checks,
	}}
	for _, bench := range benches {
		e := workloads.ByName(bench)
		if e == nil {
			return fmt.Errorf("unknown benchmark %q", bench)
		}
		gen := e.Gen
		for _, proto := range protos {
			rec := benchfmt.Record{Benchmark: bench, Protocol: proto.Name(), Cores: cores}
			for _, mode := range perfModes {
				cfg := config.Scaled(cores)
				cfg.PerCycleEngine = mode.perCycle
				cfg.BatchedCore = mode.batched
				cfg.FaultProfile = faultSpec
				cfg.FaultSeed = faultSeed
				cfg.Checks = checks
				if pprofLabels {
					cfg.Obs = &obs.Obs{ProfileLabels: true}
				}
				best := time.Duration(0)
				var cycles int64
				var skipped int64
				for rep := 0; rep < 3; rep++ {
					m, err := system.NewMachine(cfg, proto, gen(p))
					if err != nil {
						return err
					}
					m.Prewarm()
					t0 := time.Now()
					cyc, err := m.Engine.Run()
					if err != nil {
						return err
					}
					if d := time.Since(t0); best == 0 || d < best {
						best = d
						skipped = m.Engine.IdleSkipped
					}
					cycles = int64(cyc)
				}
				nsPerCycle := float64(best.Nanoseconds()) / float64(cycles)
				switch {
				case mode.perCycle:
					rec.WallNsPerCycle = nsPerCycle
				case !mode.batched:
					rec.WallNsUnbatched = nsPerCycle
				default:
					rec.WallNsEvent = nsPerCycle
					rec.SimCycles = cycles
					rec.CyclesPerSec = float64(cycles) / best.Seconds()
					rec.HostNsPerCycle = nsPerCycle
					rec.SkippedPct = 100 * float64(skipped) / float64(cycles)
				}
			}
			if rec.WallNsEvent > 0 {
				rec.Speedup = rec.WallNsPerCycle / rec.WallNsEvent
				rec.BatchedSpeedup = rec.WallNsUnbatched / rec.WallNsEvent
			}
			if err := measureParallel(&rec, cores, shards, proto, gen, p,
				faultSpec, faultSeed, checks); err != nil {
				return err
			}
			if err := measureTrace(&rec, cores, proto, gen(p)); err != nil {
				return err
			}
			if err := measureObs(&rec, cores, proto, gen, p, faultSpec, faultSeed, checks); err != nil {
				return err
			}
			out.Results = append(out.Results, rec)
		}
	}
	for _, c := range scalingCores {
		for _, bench := range scalingBenches {
			e := workloads.ByName(bench)
			if e == nil {
				return fmt.Errorf("unknown benchmark %q", bench)
			}
			pt, err := measureScaling(c, scale, seed, shards, e.Gen, protos[0],
				faultSpec, faultSeed, checks)
			if err != nil {
				return fmt.Errorf("scaling leg %s@%d cores: %w", bench, c, err)
			}
			pt.Benchmark = bench
			out.Scaling = append(out.Scaling, pt)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// measureScaling times one benchmark × protocol cell at an arbitrary
// machine size (the Large preset: Table 2 per-tile shape, auto mesh)
// under the per-cycle and batched-event engines, plus the sharded
// engine when more than one shard is in play. Two reps best-of per
// engine: the curve spans up to 256 cores, so the leg trades a little
// timing stability for a bounded total run.
func measureScaling(cores, scale int, seed uint64, shards int, gen workloads.Generator,
	proto system.Protocol, faultSpec string, faultSeed uint64, checks bool) (benchfmt.ScalingPoint, error) {
	pt := benchfmt.ScalingPoint{Protocol: proto.Name(), Cores: cores}
	p := workloads.Params{Threads: cores, Scale: scale, Seed: seed}
	for _, perCycle := range []bool{true, false} {
		cfg := config.Large(cores)
		cfg.PerCycleEngine = perCycle
		cfg.BatchedCore = !perCycle
		cfg.FaultProfile = faultSpec
		cfg.FaultSeed = faultSeed
		cfg.Checks = checks
		best := time.Duration(0)
		var cycles int64
		for rep := 0; rep < 2; rep++ {
			m, err := system.NewMachine(cfg, proto, gen(p))
			if err != nil {
				return pt, err
			}
			m.Prewarm()
			t0 := time.Now()
			cyc, err := m.Engine.Run()
			if err != nil {
				return pt, err
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
			cycles = int64(cyc)
		}
		ns := float64(best.Nanoseconds()) / float64(cycles)
		if perCycle {
			pt.WallNsPerCycle = ns
		} else {
			pt.WallNsEvent = ns
			pt.SimCycles = cycles
		}
	}
	if pt.WallNsEvent > 0 {
		pt.Speedup = pt.WallNsPerCycle / pt.WallNsEvent
	}
	if shards > cores {
		shards = cores
	}
	if shards <= 1 || checks {
		return pt, nil
	}
	cfg := config.Large(cores)
	cfg.BatchedCore = true
	cfg.FaultProfile = faultSpec
	cfg.FaultSeed = faultSeed
	cfg.Shards = shards
	best := time.Duration(0)
	var cycles int64
	for rep := 0; rep < 2; rep++ {
		m, err := system.NewMachine(cfg, proto, gen(p))
		if err != nil {
			return pt, err
		}
		m.Prewarm()
		t0 := time.Now()
		cyc, err := m.SE.Run()
		if err != nil {
			return pt, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
		cycles = int64(cyc)
	}
	pt.Shards = shards
	pt.GOMAXPROCS = runtime.GOMAXPROCS(0)
	pt.WallNsParallel = float64(best.Nanoseconds()) / float64(cycles)
	return pt, nil
}

// measureParallel fills a record's sharded-engine fields: the batched
// event configuration (the production default, whose serial number is
// WallNsEvent) re-timed with the wake-set engine sharded across
// goroutines. The leg is skipped — fields left zero — when the resolved
// shard count is 1 (single-CPU runner or explicit -shards 1) or when
// the oracles are on (checks force the serial engine). ParallelSpeedup
// is a within-run wall-time ratio, but unlike the engine-mode speedups
// it only demonstrates anything when GOMAXPROCS >= Shards, so the
// per-record GOMAXPROCS is recorded alongside for the benchdiff gate.
func measureParallel(rec *benchfmt.Record, cores, shards int, proto system.Protocol,
	gen workloads.Generator, p workloads.Params, faultSpec string, faultSeed uint64, checks bool) error {
	if shards > cores {
		shards = cores
	}
	if shards <= 1 || checks {
		return nil
	}
	cfg := config.Scaled(cores)
	cfg.BatchedCore = true
	cfg.FaultProfile = faultSpec
	cfg.FaultSeed = faultSeed
	cfg.Shards = shards
	best := time.Duration(0)
	var cycles int64
	for rep := 0; rep < 3; rep++ {
		m, err := system.NewMachine(cfg, proto, gen(p))
		if err != nil {
			return err
		}
		m.Prewarm()
		t0 := time.Now()
		cyc, err := m.SE.Run()
		if err != nil {
			return err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
		cycles = int64(cyc)
	}
	rec.Shards = shards
	rec.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rec.WallNsParallel = float64(best.Nanoseconds()) / float64(cycles)
	if rec.WallNsEvent > 0 && rec.WallNsParallel > 0 {
		rec.ParallelSpeedup = rec.WallNsEvent / rec.WallNsParallel
	}
	return nil
}

// measureObs fills a record's observability series from one extra
// metrics-armed run of the production configuration (batched event
// engine, serial). Observation never perturbs simulation, but the run
// is done separately so the timed legs stay unobserved host-side.
func measureObs(rec *benchfmt.Record, cores int, proto system.Protocol,
	gen workloads.Generator, p workloads.Params, faultSpec string, faultSeed uint64, checks bool) error {
	cfg := config.Scaled(cores)
	cfg.BatchedCore = true
	cfg.FaultProfile = faultSpec
	cfg.FaultSeed = faultSeed
	cfg.Checks = checks
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Obs{Metrics: reg}
	m, err := system.NewMachine(cfg, proto, gen(p))
	if err != nil {
		return err
	}
	if _, err := m.Engine.Run(); err != nil {
		return err
	}
	rec.TxLatencyMean = reg.HistSnapshotFor("coherence.tx_latency").Mean()
	rd := reg.HistSnapshotFor("l1.read_miss_latency")
	wr := reg.HistSnapshotFor("l1.write_miss_latency")
	if n := rd.Count + wr.Count; n > 0 {
		rec.L1MissLatencyMean = float64(rd.Sum+wr.Sum) / float64(n)
	}
	// Total truly stalled cycles: every stall series except the
	// batch-interior attribution (retired compute, not a stall).
	for _, h := range reg.Hists() {
		if strings.Contains(h.Name, ".stall.") && !strings.HasSuffix(h.Name, ".stall.batch_interior") {
			rec.StallCycles += h.Sum
		}
	}
	return nil
}

// measureTrace fills a perfRecord's trace-subsystem fields: the
// benchmark is recorded once, the trace replayed three times on the
// event engine (best wall time wins), and the codec timed on an
// encode+decode round trip.
func measureTrace(rec *benchfmt.Record, cores int, proto system.Protocol, w *program.Workload) error {
	cfg := config.Scaled(cores)
	_, tr, err := system.RunRecorded(cfg, proto, w, 1)
	if err != nil {
		return err
	}
	data, err := trace.Encode(tr)
	if err != nil {
		return err
	}
	rec.TraceOps = int64(tr.Ops())
	rec.TraceBytesPerOp = float64(len(data)) / float64(tr.Ops())

	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		m, err := system.NewReplayMachine(cfg, proto, tr)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if _, err := m.Engine.Run(); err != nil {
			return err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	rec.TraceReplayOpsSec = float64(tr.Ops()) / best.Seconds()

	t0 := time.Now()
	const codecReps = 5
	for rep := 0; rep < codecReps; rep++ {
		enc2, err := trace.Encode(tr)
		if err != nil {
			return err
		}
		if _, err := trace.Decode(enc2); err != nil {
			return err
		}
	}
	codecBytes := 2 * codecReps * len(data) // encode + decode per rep
	rec.TraceCodecMBps = float64(codecBytes) / (1 << 20) / time.Since(t0).Seconds()
	return nil
}
