// Command tsocc-bench reproduces the paper's evaluation: it runs the
// full benchmark × protocol grid at 32 cores and prints Figures 3–9 (as
// text tables), plus the Table 1 / Figure 2 storage analysis.
//
// Usage:
//
//	tsocc-bench                  # everything
//	tsocc-bench -figure 3        # one figure
//	tsocc-bench -bench intruder  # restrict benchmarks
//	tsocc-bench -cores 16 -scale 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/storagemodel"
	"repro/internal/workloads"
)

func main() {
	cores := flag.Int("cores", 32, "core count")
	scale := flag.Int("scale", 1, "workload size multiplier")
	seed := flag.Uint64("seed", 1, "workload seed")
	figure := flag.Int("figure", 0, "single figure to produce (2-9; 0 = all)")
	benchList := flag.String("bench", "", "comma-separated benchmark subset")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	flag.Parse()

	// Storage figures need no simulation.
	if *figure == 2 {
		fmt.Println(storagemodel.Figure2([]int{8, 16, 32, 48, 64, 80, 96, 112, 128}))
		return
	}

	var benches []string
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
	}
	cfg := config.Scaled(*cores)
	p := workloads.Params{Threads: *cores, Scale: *scale, Seed: *seed}

	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	t0 := time.Now()
	grid, err := harness.RunGrid(cfg, p, nil, benches, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grid failed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "grid complete in %v\n\n", time.Since(t0).Round(time.Millisecond))

	show := func(n int) bool { return *figure == 0 || *figure == n }
	if show(3) {
		fmt.Println(grid.Figure3())
	}
	if show(4) {
		fmt.Println(grid.Figure4())
	}
	if show(5) {
		fmt.Println(grid.Figure5())
	}
	if show(6) {
		fmt.Println(grid.Figure6())
	}
	if show(7) {
		fmt.Println(grid.Figure7())
	}
	if show(8) {
		fmt.Println(grid.Figure8())
	}
	if show(9) {
		fmt.Println(grid.Figure9())
	}
	if *figure == 0 {
		fmt.Println(storagemodel.Table1(*cores))
		fmt.Println(storagemodel.Figure2([]int{8, 16, 32, 48, 64, 80, 96, 112, 128}))
		fmt.Println(grid.SummaryHighlights())
	}
}
