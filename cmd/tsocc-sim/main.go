// Command tsocc-sim runs one benchmark from the Table 3 suite on one
// protocol configuration and prints the run's statistics.
//
// Usage:
//
//	tsocc-sim -bench intruder -proto TSO-CC-4-12-3 -cores 32 -scale 1
//	tsocc-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/system"
	"repro/internal/workloads"
)

// resolveShards maps the CLI convention (0 = auto) onto a concrete
// engine shard count: auto follows GOMAXPROCS, 1 is the single-threaded
// wake-set engine, and anything larger runs the sharded parallel engine
// (results are bit-identical either way).
func resolveShards(flagVal int) int {
	if flagVal == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return flagVal
}

func main() {
	bench := flag.String("bench", "intruder", "benchmark name (see -list-workloads)")
	proto := flag.String("proto", "TSO-CC-4-12-3", "protocol configuration (see -list-protocols)")
	cores := flag.Int("cores", 32, "core count")
	scale := flag.Int("scale", 1, "workload size multiplier")
	seed := flag.Uint64("seed", 1, "workload seed")
	faultSpec := flag.String("faults", "", "fault-injection profile: jitter, pressure or burst, optionally name:key=val,... (empty = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed")
	checks := flag.Bool("checks", false, "enable runtime invariant oracles (SWMR, value, TSO order)")
	shards := flag.Int("shards", 0, "engine shards (0 = auto from GOMAXPROCS, 1 = single-threaded)")
	list := flag.Bool("list", false, "list workloads and protocols")
	listW := flag.Bool("list-workloads", false, "list workloads (registry + synthetic extras) and exit")
	listP := flag.Bool("list-protocols", false, "list registered protocols and exit")
	flag.Parse()

	if *list || *listW || *listP {
		if *list || *listW {
			harness.ListWorkloads(os.Stdout)
		}
		if *list {
			fmt.Println("protocols:")
		}
		if *list || *listP {
			harness.ListProtocols(os.Stdout)
		}
		return
	}

	var chosen system.Protocol
	for _, p := range harness.Protocols() {
		if p.Name() == *proto {
			chosen = p
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown protocol %q (see -list)\n", *proto)
		os.Exit(2)
	}
	e := workloads.ByName(*bench)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (see -list)\n", *bench)
		os.Exit(2)
	}

	cfg := config.Scaled(*cores)
	cfg.FaultProfile = *faultSpec
	cfg.FaultSeed = *faultSeed
	cfg.Checks = *checks
	cfg.Shards = resolveShards(*shards)
	w := e.Gen(workloads.Params{Threads: *cores, Scale: *scale, Seed: *seed})
	res, err := system.Run(cfg, chosen, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())
	fmt.Printf("\nself-invalidation causes:\n")
	for c := coherence.SelfInvCause(0); c < coherence.NumSelfInvCauses; c++ {
		fmt.Printf("  %-28s %d\n", c, res.L1.SelfInvEvents[c].Value())
	}
	if res.CheckErr != nil {
		fmt.Fprintln(os.Stderr, "FUNCTIONAL CHECK FAILED:", res.CheckErr)
		os.Exit(1)
	}
	fmt.Println("\nfunctional check: ok")
}
