// Command tsocc-sim runs one benchmark from the Table 3 suite on one
// protocol configuration and prints the run's statistics.
//
// Usage:
//
//	tsocc-sim -bench intruder -proto TSO-CC-4-12-3 -cores 32 -scale 1
//	tsocc-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/shrink"
	"repro/internal/system"
	"repro/internal/workloads"
)

// resolveShards maps the CLI convention (0 = auto) onto a concrete
// engine shard count: auto follows GOMAXPROCS, 1 is the single-threaded
// wake-set engine, and anything larger runs the sharded parallel engine
// (results are bit-identical either way).
func resolveShards(flagVal int) int {
	if flagVal == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return flagVal
}

func main() {
	bench := flag.String("bench", "intruder", "benchmark name (see -list-workloads)")
	proto := flag.String("proto", "TSO-CC-4-12-3", "protocol configuration (see -list-protocols)")
	cores := flag.Int("cores", 32, "core count")
	scale := flag.Int("scale", 1, "workload size multiplier")
	seed := flag.Uint64("seed", 1, "workload seed")
	faultSpec := flag.String("faults", "", "fault-injection profile(s): jitter, pressure, burst, evict, reset-storm, victim; parameterized name:key=val and composed with + or , (empty = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed")
	faultFrom := flag.Uint64("fault-from", 0, "fault decision-counter window start (shrinker replay)")
	faultUntil := flag.Uint64("fault-until", 0, "fault decision-counter window end, exclusive (0 = unbounded)")
	checks := flag.Bool("checks", false, "enable runtime invariant oracles (SWMR, value, TSO order, protocol legality, tx lifecycle)")
	doShrink := flag.Bool("shrink", false, "reduce a failing fault-injected run to a minimal (scale, fault-window) reproducer")
	shards := flag.Int("shards", 0, "engine shards (0 = auto from GOMAXPROCS, 1 = single-threaded)")
	list := flag.Bool("list", false, "list workloads and protocols")
	listW := flag.Bool("list-workloads", false, "list workloads (registry + synthetic extras) and exit")
	listP := flag.Bool("list-protocols", false, "list registered protocols and exit")
	metricsOut := flag.String("metrics", "", "write the metrics-registry dump to this file (.json = JSON, else text)")
	timelineOut := flag.String("timeline", "", "write a Chrome trace-event timeline (Perfetto / chrome://tracing) to this file")
	flag.Parse()

	if *list || *listW || *listP {
		if *list || *listW {
			harness.ListWorkloads(os.Stdout)
		}
		if *list {
			fmt.Println("protocols:")
		}
		if *list || *listP {
			harness.ListProtocols(os.Stdout)
		}
		return
	}

	var chosen system.Protocol
	for _, p := range harness.Protocols() {
		if p.Name() == *proto {
			chosen = p
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown protocol %q (see -list)\n", *proto)
		os.Exit(2)
	}
	e := workloads.ByName(*bench)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (see -list)\n", *bench)
		os.Exit(2)
	}

	cfg := config.Scaled(*cores)
	cfg.FaultProfile = *faultSpec
	cfg.FaultSeed = *faultSeed
	cfg.FaultFrom = *faultFrom
	cfg.FaultUntil = *faultUntil
	cfg.Checks = *checks
	cfg.Shards = resolveShards(*shards)

	if *doShrink {
		if *faultSpec == "" {
			fmt.Fprintln(os.Stderr, "-shrink needs a fault profile (-faults)")
			os.Exit(2)
		}
		runShrink(cfg, chosen, e, *bench, *proto, *cores, *scale, *seed, *faultSpec, *faultSeed)
		return
	}

	cfg.Obs = obs.FromPaths(*metricsOut, *timelineOut)

	w := e.Gen(workloads.Params{Threads: *cores, Scale: *scale, Seed: *seed})
	res, err := system.Run(cfg, chosen, w)
	// Dump the armed sinks even on failure: a deadlocked or
	// cycle-limited run's partial timeline is exactly what forensics
	// wants to look at.
	var final int64
	if res != nil {
		final = int64(res.Cycles)
	}
	if werr := cfg.Obs.WriteFiles(*metricsOut, *timelineOut, final); werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		if err == nil {
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())
	fmt.Printf("\nself-invalidation causes:\n")
	for c := coherence.SelfInvCause(0); c < coherence.NumSelfInvCauses; c++ {
		fmt.Printf("  %-28s %d\n", c, res.L1.SelfInvEvents[c].Value())
	}
	if res.CheckErr != nil {
		fmt.Fprintln(os.Stderr, "FUNCTIONAL CHECK FAILED:", res.CheckErr)
		os.Exit(1)
	}
	fmt.Println("\nfunctional check: ok")
}

// runShrink reduces a failing fault-injected run to a minimal
// (workload scale, fault-window) reproducer and prints the replay
// command line. Shrink probes force checks on and run serially: the
// oracle tracker and the injector's decision-counter tracking are both
// single-threaded referees.
func runShrink(cfg config.System, proto system.Protocol, e *workloads.Entry,
	bench, protoName string, cores, scale int, seed uint64, faultSpec string, faultSeed uint64) {
	cfg.Checks = true
	cfg.Shards = 1
	probe := func(scale int, from, until uint64) shrink.Outcome {
		c := cfg
		c.FaultFrom, c.FaultUntil = from, until
		w := e.Gen(workloads.Params{Threads: cores, Scale: scale, Seed: seed})
		m, err := system.NewMachine(c, proto, w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shrink probe failed to build:", err)
			os.Exit(1)
		}
		out := shrink.Outcome{}
		_, rerr := m.Execute()
		out.MaxCounter = m.Injector().MaxCounter()
		if viols, n := m.Checks().Violations(); n > 0 {
			out.Failed = true
			out.Kind = viols[0].Kind
			out.Detail = viols[0].String()
		} else if rerr != nil {
			out.Failed = true
			out.Kind = "error"
			out.Detail = rerr.Error()
		} else if w.Check != nil {
			if cerr := w.Check(m.Reader()); cerr != nil {
				out.Failed = true
				out.Kind = "functional"
				out.Detail = cerr.Error()
			}
		}
		return out
	}
	fmt.Printf("shrinking %s on %s with faults %q (seed %d)...\n", bench, protoName, faultSpec, faultSeed)
	r, err := shrink.Shrink(shrink.Input{Scale: scale, Run: probe})
	if err != nil {
		fmt.Fprintln(os.Stderr, "shrink:", err)
		os.Exit(1)
	}
	fmt.Printf("reduced to scale=%d fault window=[%d,%d) after %d probes\n", r.Scale, r.From, r.Until, r.Probes)
	fmt.Printf("violation [%s]: %s\n", r.Kind, r.Detail)
	fmt.Println("repro:", r.CommandLine(bench, protoName, cores, seed, faultSpec, faultSeed))
}
